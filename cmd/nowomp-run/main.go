// Command nowomp-run executes one of the paper's application kernels
// on the simulated NOW, optionally with an adapt-event schedule (the
// stand-in for the paper's event daemons) or a heterogeneous machine
// model with a load policy deriving the events, and reports the Table
// 1-style measurements plus a log of every adaptation.
//
// Examples:
//
//	nowomp-run -app jacobi -procs 8 -scale 0.2
//	nowomp-run -app nbf -procs 8 -hosts 10 -scale 0.3 \
//	    -schedule "6:leave:7,9:join:7,14:leave:4:grace=0.5"
//	nowomp-run -app jacobi -procs 4 -machines "2=0.5,3=0.5"
//	nowomp-run -app jacobi -procs 4 -load "3=4@5,0@12" \
//	    -policy "high=1.5,low=0.25,dwell=1"
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// options collects the run configuration parsed from flags.
type options struct {
	app      string
	procs    int
	hosts    int
	scale    float64
	schedule string
	grace    float64
	adaptive bool
	verify   bool
	machines string
	load     string
	links    string
	policy   string
	protocol string
}

func main() {
	var o options
	flag.StringVar(&o.app, "app", "jacobi", "application: gauss, jacobi, fft3d, nbf, mergesort or quadrature")
	flag.IntVar(&o.procs, "procs", 8, "initial team size")
	flag.IntVar(&o.hosts, "hosts", 10, "workstation pool size")
	flag.Float64Var(&o.scale, "scale", 0.2, "problem scale (1.0 = the paper's sizes)")
	flag.StringVar(&o.schedule, "schedule", "", "adapt events, e.g. \"6:leave:7,9:join:7\"")
	flag.Float64Var(&o.grace, "grace", 3.0, "default leave grace period in seconds")
	flag.BoolVar(&o.adaptive, "adaptive", true, "use the adaptive runtime variant")
	flag.BoolVar(&o.verify, "verify", true, "check the result against the sequential reference")
	flag.StringVar(&o.machines, "machines", "", "per-machine CPU speeds, e.g. \"4=0.5,7=2\"")
	flag.StringVar(&o.load, "load", "", "per-machine load traces, e.g. \"3=2@5,0@15;6=0.5@0\"")
	flag.StringVar(&o.links, "links", "", "per-link overrides, e.g. \"0-7=lat:4,bw:0.25\"")
	flag.StringVar(&o.policy, "policy", "", "derive adapt events from the load traces, e.g. \"high=1.5,low=0.25,dwell=2\"")
	flag.StringVar(&o.protocol, "protocol", "tmk", "DSM coherence protocol: tmk (TreadMarks homeless LRC) or hlrc (home-based LRC)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-run:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	runner, ok := apps.RunnerByName(o.app)
	if !ok {
		return fmt.Errorf("unknown application %q", o.app)
	}
	events, err := adapt.ParseSchedule(o.schedule)
	if err != nil {
		return err
	}
	if len(events) > 0 && !o.adaptive {
		return fmt.Errorf("a schedule requires -adaptive")
	}
	proto, err := dsm.ParseProtocol(o.protocol)
	if err != nil {
		return err
	}
	cfg := omp.Config{
		Hosts: o.hosts, Procs: o.procs, Adaptive: o.adaptive,
		Grace: simtime.Seconds(o.grace), Protocol: proto,
	}
	if o.machines != "" || o.load != "" {
		mm := machine.New(o.hosts)
		if err := machine.ParseSpeeds(mm, o.machines); err != nil {
			return err
		}
		if err := machine.ParseLoads(mm, o.load); err != nil {
			return err
		}
		cfg.Machine = mm
	}
	if o.links != "" {
		cfg.Links = func(f *simnet.Fabric) error { return machine.ParseLinks(f, o.links) }
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := rt.Submit(ev); err != nil {
			return err
		}
	}
	if o.policy != "" {
		p, err := adapt.ParsePolicy(o.policy)
		if err != nil {
			return err
		}
		if !o.adaptive {
			return fmt.Errorf("a policy requires -adaptive")
		}
		if o.load == "" {
			return fmt.Errorf("a policy needs -load traces to watch")
		}
		derived, err := rt.ApplyLoadPolicy(p)
		if err != nil {
			return err
		}
		fmt.Printf("policy %s derived %d events: %s\n\n",
			adapt.FormatPolicy(p), len(derived), adapt.FormatSchedule(derived))
	}

	res, err := runner.Run(rt, o.scale)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "app\t%s (scale %g)\n", res.App, o.scale)
	fmt.Fprintf(w, "protocol\t%s\n", rt.Cluster().Protocol())
	fmt.Fprintf(w, "team\t%d initial, %d final\n", res.Procs, rt.NProcs())
	fmt.Fprintf(w, "shared memory\t%.1f MB\n", float64(res.SharedBytes)/1e6)
	fmt.Fprintf(w, "virtual runtime\t%.2f s\n", float64(res.Time))
	fmt.Fprintf(w, "pages (4k)\t%d\n", res.Pages)
	fmt.Fprintf(w, "traffic\t%.2f MB in %d messages\n", res.MB(), res.Messages)
	fmt.Fprintf(w, "diffs\t%d\n", res.Diffs)
	w.Flush()

	if mgr := rt.Manager(); mgr != nil && mgr.PendingCount() > 0 {
		fmt.Printf("\nnote: %d scheduled events never matured (run ended at t=%.2fs; schedule times are virtual seconds)\n",
			mgr.PendingCount(), float64(rt.Now()))
	}
	if log := rt.AdaptLog(); len(log) > 0 {
		fmt.Println("\nadaptations:")
		w = tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "  at\tevent\thost\turgent\tcost\tpages moved\tmax-link bytes\tteam after")
		for _, ap := range log {
			for _, rec := range ap.Applied {
				fmt.Fprintf(w, "  %.2fs\t%v\t%d\t%v\t%.3fs\t%d\t%d\t%v\n",
					float64(ap.When), rec.Event.Kind, rec.Event.Host, rec.Urgent,
					float64(ap.Elapsed), rec.Transfer.PagesMoved, ap.WindowMaxLink, ap.TeamAfter)
			}
		}
		w.Flush()
	}

	if o.verify {
		want := runner.Reference(o.scale)
		if res.Checksum == want {
			fmt.Println("\nverified: result matches the sequential reference bit for bit")
		} else {
			return fmt.Errorf("verification FAILED: checksum %g, reference %g", res.Checksum, want)
		}
	}
	return nil
}
