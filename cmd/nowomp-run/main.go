// Command nowomp-run executes one of the paper's application kernels
// on the simulated NOW, optionally with an adapt-event schedule (the
// stand-in for the paper's event daemons) or a heterogeneous machine
// model with a load policy deriving the events, and reports the Table
// 1-style measurements plus a log of every adaptation. The flag
// surface is the shared scenario spec (internal/scenario) — the same
// canonical form the farm service hashes.
//
// Examples:
//
//	nowomp-run -app jacobi -procs 8 -scale 0.2
//	nowomp-run -app nbf -procs 8 -hosts 10 -scale 0.3 \
//	    -schedule "6:leave:7,9:join:7,14:leave:4:grace=0.5"
//	nowomp-run -app jacobi -procs 4 -machines "2=0.5,3=0.5"
//	nowomp-run -app jacobi -procs 4 -load "3=4@5,0@12" \
//	    -policy "high=1.5,low=0.25,dwell=1"
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/scenario"
)

func main() {
	spec := scenario.Spec{
		Kernel: "jacobi", Procs: 8, Hosts: 10, Scale: 0.2,
		Grace: 3.0, Protocol: "tmk",
	}
	spec.BindAll(flag.CommandLine)
	flag.BoolVar(&spec.Adaptive, "adaptive", true, "use the adaptive runtime variant")
	flag.BoolVar(&spec.Verify, "verify", true, "check the result against the sequential reference")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nowomp-run: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nowomp-run: -cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if err := run(spec); err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-run:", err)
		os.Exit(1)
	}
}

func run(spec scenario.Spec) error {
	norm, err := spec.Normalize()
	if err != nil {
		return err
	}
	rt, derived, err := norm.Build()
	if err != nil {
		return err
	}
	if norm.Policy != "" {
		fmt.Printf("policy %s derived %d events: %s\n\n",
			norm.Policy, len(derived), adapt.FormatSchedule(derived))
	}
	runner, err := norm.Runner()
	if err != nil {
		return err
	}
	res, err := runner.Run(rt, norm.Scale)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "app\t%s (scale %g)\n", res.App, norm.Scale)
	fmt.Fprintf(w, "protocol\t%s\n", rt.Cluster().Protocol())
	fmt.Fprintf(w, "team\t%d initial, %d final\n", res.Procs, rt.NProcs())
	fmt.Fprintf(w, "shared memory\t%.1f MB\n", float64(res.SharedBytes)/1e6)
	fmt.Fprintf(w, "virtual runtime\t%.2f s\n", float64(res.Time))
	fmt.Fprintf(w, "pages (4k)\t%d\n", res.Pages)
	fmt.Fprintf(w, "traffic\t%.2f MB in %d messages\n", res.MB(), res.Messages)
	fmt.Fprintf(w, "diffs\t%d\n", res.Diffs)
	w.Flush()

	if mgr := rt.Manager(); mgr != nil && mgr.PendingCount() > 0 {
		fmt.Printf("\nnote: %d scheduled events never matured (run ended at t=%.2fs; schedule times are virtual seconds)\n",
			mgr.PendingCount(), float64(rt.Now()))
	}
	if log := rt.AdaptLog(); len(log) > 0 {
		fmt.Println("\nadaptations:")
		w = tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "  at\tevent\thost\turgent\tcost\tpages moved\tmax-link bytes\tteam after")
		for _, ap := range log {
			for _, rec := range ap.Applied {
				fmt.Fprintf(w, "  %.2fs\t%v\t%d\t%v\t%.3fs\t%d\t%d\t%v\n",
					float64(ap.When), rec.Event.Kind, rec.Event.Host, rec.Urgent,
					float64(ap.Elapsed), rec.Transfer.PagesMoved, ap.WindowMaxLink, ap.TeamAfter)
			}
		}
		w.Flush()
	}

	if norm.Verify {
		want := runner.Reference(norm.Scale)
		if res.Checksum == want {
			fmt.Println("\nverified: result matches the sequential reference bit for bit")
		} else {
			return fmt.Errorf("verification FAILED: checksum %g, reference %g", res.Checksum, want)
		}
	}
	return nil
}
