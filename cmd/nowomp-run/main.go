// Command nowomp-run executes one of the paper's application kernels
// on the simulated NOW, optionally with an adapt-event schedule (the
// stand-in for the paper's event daemons), and reports the Table
// 1-style measurements plus a log of every adaptation.
//
// Examples:
//
//	nowomp-run -app jacobi -procs 8 -scale 0.2
//	nowomp-run -app nbf -procs 8 -hosts 10 -scale 0.3 \
//	    -schedule "6:leave:7,9:join:7,14:leave:4:grace=0.5"
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

func main() {
	var (
		app      = flag.String("app", "jacobi", "application: gauss, jacobi, fft3d, nbf, mergesort or quadrature")
		procs    = flag.Int("procs", 8, "initial team size")
		hosts    = flag.Int("hosts", 10, "workstation pool size")
		scale    = flag.Float64("scale", 0.2, "problem scale (1.0 = the paper's sizes)")
		schedule = flag.String("schedule", "", "adapt events, e.g. \"6:leave:7,9:join:7\"")
		grace    = flag.Float64("grace", 3.0, "default leave grace period in seconds")
		adaptive = flag.Bool("adaptive", true, "use the adaptive runtime variant")
		verify   = flag.Bool("verify", true, "check the result against the sequential reference")
	)
	flag.Parse()
	if err := run(*app, *procs, *hosts, *scale, *schedule, *grace, *adaptive, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-run:", err)
		os.Exit(1)
	}
}

func run(app string, procs, hosts int, scale float64, schedule string, grace float64, adaptive, verify bool) error {
	runner, ok := apps.RunnerByName(app)
	if !ok {
		return fmt.Errorf("unknown application %q", app)
	}
	events, err := adapt.ParseSchedule(schedule)
	if err != nil {
		return err
	}
	if len(events) > 0 && !adaptive {
		return fmt.Errorf("a schedule requires -adaptive")
	}
	rt, err := omp.New(omp.Config{
		Hosts: hosts, Procs: procs, Adaptive: adaptive,
		Grace: simtime.Seconds(grace),
	})
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := rt.Submit(ev); err != nil {
			return err
		}
	}

	res, err := runner.Run(rt, scale)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "app\t%s (scale %g)\n", res.App, scale)
	fmt.Fprintf(w, "team\t%d initial, %d final\n", res.Procs, rt.NProcs())
	fmt.Fprintf(w, "shared memory\t%.1f MB\n", float64(res.SharedBytes)/1e6)
	fmt.Fprintf(w, "virtual runtime\t%.2f s\n", float64(res.Time))
	fmt.Fprintf(w, "pages (4k)\t%d\n", res.Pages)
	fmt.Fprintf(w, "traffic\t%.2f MB in %d messages\n", res.MB(), res.Messages)
	fmt.Fprintf(w, "diffs\t%d\n", res.Diffs)
	w.Flush()

	if mgr := rt.Manager(); mgr != nil && mgr.PendingCount() > 0 {
		fmt.Printf("\nnote: %d scheduled events never matured (run ended at t=%.2fs; schedule times are virtual seconds)\n",
			mgr.PendingCount(), float64(rt.Now()))
	}
	if log := rt.AdaptLog(); len(log) > 0 {
		fmt.Println("\nadaptations:")
		w = tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "  at\tevent\thost\turgent\tcost\tpages moved\tmax-link bytes\tteam after")
		for _, ap := range log {
			for _, rec := range ap.Applied {
				fmt.Fprintf(w, "  %.2fs\t%v\t%d\t%v\t%.3fs\t%d\t%d\t%v\n",
					float64(ap.When), rec.Event.Kind, rec.Event.Host, rec.Urgent,
					float64(ap.Elapsed), rec.Transfer.PagesMoved, ap.WindowMaxLink, ap.TeamAfter)
			}
		}
		w.Flush()
	}

	if verify {
		want := runner.Reference(scale)
		if res.Checksum == want {
			fmt.Println("\nverified: result matches the sequential reference bit for bit")
		} else {
			return fmt.Errorf("verification FAILED: checksum %g, reference %g", res.Checksum, want)
		}
	}
	return nil
}
