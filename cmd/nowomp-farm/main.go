// Command nowomp-farm is the multi-tenant simulation service: a
// long-running HTTP/JSON server that accepts scenario jobs, runs them
// on concurrent engine instances under admission control (per-tenant
// FIFO queues, bounded global worker pool), and serves every result
// from a content-addressed cache keyed by the canonical scenario hash
// — determinism makes identical requests return identical bytes, so a
// cached result is valid forever.
//
// Endpoints: POST /v1/jobs (scenario spec body, X-Tenant header,
// ?wait=true to block), GET /v1/jobs/{id}, GET /v1/results/{hash},
// GET /v1/stats.
//
// Examples:
//
//	nowomp-farm -addr :8080 -workers 8
//	nowomp-farm -drive -jobs 128 -trace poisson -json BENCH_farm.json
//	nowomp-farm -selftest
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"nowomp/internal/bench"
	"nowomp/internal/farm"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address for serve mode")
		workers  = flag.Int("workers", 0, "global worker-pool size (0 = GOMAXPROCS)")
		queueCap = flag.Int("queue", 32, "per-tenant pending-queue capacity")
		inflight = flag.Int("inflight", 2, "per-tenant max concurrently running jobs")

		drive    = flag.Bool("drive", false, "run the synthetic load driver against an in-process server instead of serving")
		selftest = flag.Bool("selftest", false, "run the driver with small defaults and fail unless every response is byte-identical to a sequential re-run")
		jobs     = flag.Int("jobs", 96, "driver: jobs to generate")
		seed     = flag.Int64("seed", 1999, "driver: arrival/mix generator seed")
		scale    = flag.Float64("scale", 0.04, "driver: problem scale of the catalogue scenarios")
		tenants  = flag.Int("tenants", 4, "driver: synthetic tenant count")
		trace    = flag.String("trace", "mix", "driver: arrival process (poisson, diurnal or mix)")
		horizon  = flag.Duration("horizon", 3*time.Second, "driver: wall-clock window the arrivals spread over")
		jsonPath = flag.String("json", "", "driver: write the schema-3 BENCH_*.json report here")
	)
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	limits := farm.Limits{Workers: *workers, QueueCap: *queueCap, MaxInflight: *inflight}
	var err error
	switch {
	case *selftest:
		err = runDrive(limits, farm.DriveOptions{
			Jobs: 64, Seed: *seed, Scale: 0.03, Tenants: *tenants,
			Trace: *trace, Horizon: 2 * time.Second, Limits: limits,
		}, *jsonPath)
	case *drive:
		err = runDrive(limits, farm.DriveOptions{
			Jobs: *jobs, Seed: *seed, Scale: *scale, Tenants: *tenants,
			Trace: *trace, Horizon: *horizon, Limits: limits,
		}, *jsonPath)
	default:
		err = serve(*addr, limits)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-farm:", err)
		os.Exit(1)
	}
}

// serve runs the server until the process is killed.
func serve(addr string, limits farm.Limits) error {
	srv := farm.NewServer(limits)
	defer srv.Close()
	fmt.Printf("nowomp-farm serving on %s (%d workers, queue %d, inflight %d per tenant)\n",
		addr, limits.Workers, limits.QueueCap, limits.MaxInflight)
	return http.ListenAndServe(addr, srv.Handler())
}

// runDrive starts an in-process server on a loopback port, fires the
// load driver at it, prints the summary, and writes the report.
func runDrive(limits farm.Limits, opt farm.DriveOptions, jsonPath string) error {
	srv := farm.NewServer(limits)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	opt.BaseURL = "http://" + ln.Addr().String()
	opt.Progress = os.Stdout
	report, err := farm.Drive(opt)
	if err != nil {
		return err
	}
	printSummary(report)
	if jsonPath != "" {
		if err := report.Write(jsonPath); err != nil {
			return err
		}
		fmt.Printf("[json report written to %s]\n", jsonPath)
	}
	if !report.Farm.ByteIdentical {
		return fmt.Errorf("served responses were NOT byte-identical to sequential re-runs")
	}
	return nil
}

func printSummary(r *bench.Report) {
	f := r.Farm
	fmt.Printf("\nfarm load report (trace %s, seed %d)\n", f.Trace, f.Seed)
	fmt.Printf("  jobs          %d (%d unique scenarios)\n", f.Jobs, len(r.Results))
	fmt.Printf("  throughput    %.1f jobs/s over %.2fs wall\n", f.ThroughputJobsPerSec, r.WallSeconds)
	fmt.Printf("  latency       p50 %.0fms  p95 %.0fms  p99 %.0fms (total, wall clock)\n",
		f.P50Seconds*1e3, f.P95Seconds*1e3, f.P99Seconds*1e3)
	fmt.Printf("  cache         hit ratio %.2f, %d retries after 429\n", f.CacheHitRatio, f.Retries429)
	fmt.Printf("  byte-identity %v (every response vs a sequential re-run)\n", f.ByteIdentical)
	for name, t := range f.Tenants {
		fmt.Printf("  tenant %-10s submitted %3d  completed %3d  rejected %3d  max queue depth %d\n",
			name, t.Submitted, t.Completed, t.Rejected, t.MaxQueueDepth)
	}
}
