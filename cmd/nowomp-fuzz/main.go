// Command nowomp-fuzz is the deterministic batch face of the scenario
// fuzzer: generate -count random valid scenarios from -seed, run each
// under the differential oracle battery (determinism across
// GOMAXPROCS, sequential-reference checksum, cross-protocol output
// equivalence, adaptive transparency, no panics), shrink every failure
// to a minimal reproducing spec, and exit non-zero if anything failed.
// Stdout is byte-deterministic for a given (seed, count): CI diffs two
// runs as a determinism gate and commits minimal specs as testdata
// regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"nowomp/internal/scenfuzz"
)

func main() {
	seed := flag.Int64("seed", 1999, "generator seed (same seed, same specs, same verdicts)")
	count := flag.Int("count", 25, "number of scenarios to generate and check")
	budget := flag.Int("shrink-budget", 0, "oracle batteries per shrink (0 = default, negative = no shrinking)")
	jsonOut := flag.String("json", "", "write the full report as JSON to this file")
	quiet := flag.Bool("q", false, "suppress per-scenario progress lines")
	fullScale := flag.Bool("fullscale", false, "mix near-1.0 scale points into the generator grid (slow: full-scale oracle batteries)")
	flag.Parse()

	var progress io.Writer = os.Stdout
	if *quiet {
		progress = nil
	}
	rep := scenfuzz.Batch(scenfuzz.BatchOptions{
		Seed: *seed, Count: *count, ShrinkBudget: *budget, Progress: progress,
		FullScale: *fullScale,
	})

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "nowomp-fuzz:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "nowomp-fuzz:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("seed %d: %d/%d scenarios passed, %d failed\n",
		rep.Seed, rep.Passed, rep.Count, len(rep.Failures))
	for _, f := range rep.Failures {
		min, _ := json.Marshal(f.Minimal)
		fmt.Printf("FAIL spec %d oracle=%s hash=%s\n  detail: %s\n  minimal (%s): %s\n",
			f.Index, f.Oracle, f.Hash, f.Detail, f.MinimalHash, min)
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}
