// Command nowomp-bench regenerates the tables and figures of the
// paper's evaluation section. Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records a full run against
// the published numbers. With -json the experiments that have natural
// scenario rows (table1, tasking, hetero, protocols) also write a
// machine-readable BENCH_*.json report so the performance trajectory
// can be tracked across PRs.
//
// Every scenario cell is a self-contained deterministic simulation, so
// -parallel N fans the table1/tasking/hetero/protocols matrices out
// across N workers: the printed tables and the -json results are
// byte-identical at any parallelism level, only the wall clock
// changes.
//
// Examples:
//
//	nowomp-bench -exp table1 -scale 0.15
//	nowomp-bench -exp protocols -scale 0.1 -parallel 8
//	nowomp-bench -exp all -json BENCH_pr5.json -parallel 0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"nowomp/internal/adapt"
	"nowomp/internal/bench"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, table2, fig3, migration, micro, ablation, tasking, hetero, protocols or all")
		scale    = flag.Float64("scale", 0.15, "problem scale (1.0 = the paper's sizes; some experiments enforce larger floors)")
		hosts    = flag.Int("hosts", 10, "workstation pool size")
		pairs    = flag.Int("pairs", 3, "leave/join pairs per Table 2 run")
		grace    = flag.Float64("grace", 3.0, "leave grace period in seconds")
		machines = flag.String("machines", "", "per-machine CPU speeds, e.g. \"4=0.5,7=2\" (applies to every experiment)")
		load     = flag.String("load", "", "per-machine load traces, e.g. \"3=2@5,0@15;6=0.5@0\"")
		links    = flag.String("links", "", "per-link overrides, e.g. \"0-7=lat:4,bw:0.25\"")
		policy   = flag.String("policy", "", "load policy for the hetero custom scenario, e.g. \"high=1.5,low=0.25,dwell=2\"")
		protocol = flag.String("protocol", "tmk", "DSM coherence protocol every experiment runs on: tmk or hlrc (the protocols experiment always runs both)")
		jsonPath = flag.String("json", "", "write a machine-readable BENCH_*.json report to this path")
		parallel = flag.Int("parallel", 1, "worker-pool size for independent scenario cells (0 = GOMAXPROCS); results are byte-identical at any level")
	)
	flag.Parse()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	opt := bench.Options{
		Scale: *scale, Hosts: *hosts, Pairs: *pairs,
		Grace:    simtime.Seconds(*grace),
		Parallel: *parallel,
	}
	if err := heteroFlags(&opt, *machines, *load, *links, *policy); err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-bench:", err)
		os.Exit(1)
	}
	proto, err := dsm.ParseProtocol(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-bench:", err)
		os.Exit(1)
	}
	opt.Protocol = proto
	if err := run(*exp, opt, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-bench:", err)
		os.Exit(1)
	}
}

// heteroFlags folds the heterogeneity flags into the options: speeds
// and loads build a machine model every experiment runs on, links bend
// each run's fabric, and a policy reaches the hetero experiment's
// custom scenario.
func heteroFlags(opt *bench.Options, machines, load, links, policy string) error {
	if machines != "" || load != "" {
		mm := machine.New(opt.Hosts)
		if err := machine.ParseSpeeds(mm, machines); err != nil {
			return err
		}
		if err := machine.ParseLoads(mm, load); err != nil {
			return err
		}
		opt.Machine = mm
	}
	if links != "" {
		spec := links
		opt.Links = func(f *simnet.Fabric) error { return machine.ParseLinks(f, spec) }
	}
	if policy != "" {
		p, err := adapt.ParsePolicy(policy)
		if err != nil {
			return err
		}
		if load == "" {
			return fmt.Errorf("-policy needs -load traces to watch")
		}
		opt.Policy = &p
	}
	return nil
}

func run(exp string, opt bench.Options, jsonPath string) error {
	all := exp == "all"
	ran := false
	wallStart := time.Now()
	var report *bench.Report
	if jsonPath != "" {
		report = bench.NewReport(opt)
	}
	step := func(name string, f func() error) error {
		if !all && exp != name {
			return nil
		}
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s regenerated in %.1fs real time]\n\n", name, time.Since(start).Seconds())
		return nil
	}

	if err := step("table1", func() error {
		rows, err := bench.Table1(opt, nil)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddTable1(rows)
		}
		fmt.Print(bench.FormatTable1(rows, opt.Scale))
		return nil
	}); err != nil {
		return err
	}
	if err := step("table2", func() error {
		cells, err := bench.Table2(opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(cells))
		return nil
	}); err != nil {
		return err
	}
	if err := step("fig3", func() error {
		rows, err := bench.Fig3(opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig3(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("migration", func() error {
		rows, err := bench.Migration(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMigration(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("micro", func() error {
		m, err := bench.Micro(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMicro(m))
		return nil
	}); err != nil {
		return err
	}
	if err := step("ablation", func() error {
		a, err := bench.Ablation(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation(a))
		return nil
	}); err != nil {
		return err
	}
	if err := step("tasking", func() error {
		rows, err := bench.Tasking(opt)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddTasking(rows)
		}
		fmt.Print(bench.FormatTasking(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("hetero", func() error {
		rows, err := bench.Hetero(opt)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddHetero(rows)
		}
		fmt.Print(bench.FormatHetero(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("protocols", func() error {
		rows, err := bench.Protocols(opt)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddProtocols(rows)
		}
		fmt.Print(bench.FormatProtocols(rows))
		return nil
	}); err != nil {
		return err
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", exp,
			strings.Join([]string{"table1", "table2", "fig3", "migration", "micro", "ablation", "tasking", "hetero", "protocols", "all"}, ", "))
	}
	if report != nil {
		report.WallSeconds = time.Since(wallStart).Seconds()
		if err := report.Write(jsonPath); err != nil {
			return err
		}
		fmt.Printf("[json report written to %s]\n", jsonPath)
	}
	return nil
}
