// Command nowomp-bench regenerates the tables and figures of the
// paper's evaluation section. Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records a full run against
// the published numbers.
//
// Examples:
//
//	nowomp-bench -exp table1 -scale 0.15
//	nowomp-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nowomp/internal/bench"
	"nowomp/internal/simtime"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1, table2, fig3, migration, micro, ablation, tasking or all")
		scale = flag.Float64("scale", 0.15, "problem scale (1.0 = the paper's sizes; some experiments enforce larger floors)")
		hosts = flag.Int("hosts", 10, "workstation pool size")
		pairs = flag.Int("pairs", 3, "leave/join pairs per Table 2 run")
		grace = flag.Float64("grace", 3.0, "leave grace period in seconds")
	)
	flag.Parse()
	opt := bench.Options{
		Scale: *scale, Hosts: *hosts, Pairs: *pairs,
		Grace: simtime.Seconds(*grace),
	}
	if err := run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, opt bench.Options) error {
	all := exp == "all"
	ran := false
	step := func(name string, f func() error) error {
		if !all && exp != name {
			return nil
		}
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s regenerated in %.1fs real time]\n\n", name, time.Since(start).Seconds())
		return nil
	}

	if err := step("table1", func() error {
		rows, err := bench.Table1(opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable1(rows, opt.Scale))
		return nil
	}); err != nil {
		return err
	}
	if err := step("table2", func() error {
		cells, err := bench.Table2(opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(cells))
		return nil
	}); err != nil {
		return err
	}
	if err := step("fig3", func() error {
		rows, err := bench.Fig3(opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig3(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("migration", func() error {
		rows, err := bench.Migration(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMigration(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("micro", func() error {
		m, err := bench.Micro(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMicro(m))
		return nil
	}); err != nil {
		return err
	}
	if err := step("ablation", func() error {
		a, err := bench.Ablation(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation(a))
		return nil
	}); err != nil {
		return err
	}
	if err := step("tasking", func() error {
		rows, err := bench.Tasking(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTasking(rows))
		return nil
	}); err != nil {
		return err
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", exp,
			strings.Join([]string{"table1", "table2", "fig3", "migration", "micro", "ablation", "tasking", "all"}, ", "))
	}
	return nil
}
