// Command nowomp-bench regenerates the tables and figures of the
// paper's evaluation section. Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records a full run against
// the published numbers. With -json the experiments that have natural
// scenario rows (table1, tasking, hetero, protocols) also write a
// machine-readable BENCH_*.json report so the performance trajectory
// can be tracked across PRs.
//
// Every scenario cell is a self-contained deterministic simulation, so
// -parallel N fans the table1/tasking/hetero/protocols matrices out
// across N workers: the printed tables and the -json results are
// byte-identical at any parallelism level, only the wall clock
// changes.
//
// Examples:
//
//	nowomp-bench -exp table1 -scale 0.15
//	nowomp-bench -exp protocols -scale 0.1 -parallel 8
//	nowomp-bench -exp all -json BENCH_pr5.json -parallel 0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nowomp/internal/bench"
	"nowomp/internal/scenario"
	"nowomp/internal/simtime"
)

func main() {
	// The heterogeneity/protocol surface is the shared scenario spec;
	// bench-only knobs (-exp, -pairs, -json, -parallel) stay local, and
	// the spec fields every experiment overrides per cell (kernel,
	// procs, schedule) are not exposed. Procs 1 keeps Normalize's
	// hosts >= procs check out of the way of small -hosts pools.
	spec := scenario.Spec{
		Kernel: "jacobi", Procs: 1, Hosts: 10, Scale: 0.15,
		Grace: 3.0, Protocol: "tmk", Adaptive: true,
	}
	var (
		exp      = flag.String("exp", "all", "experiment: table1, table2, fig3, migration, micro, ablation, tasking, hetero, protocols or all")
		pairs    = flag.Int("pairs", 3, "leave/join pairs per Table 2 run")
		jsonPath = flag.String("json", "", "write a machine-readable BENCH_*.json report to this path")
		parallel = flag.Int("parallel", 1, "worker-pool size for independent scenario cells (0 = GOMAXPROCS); results are byte-identical at any level")
		quiet    = flag.Bool("q", false, "suppress the per-cell progress/ETA ticks on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path")
		memProf  = flag.String("memprofile", "", "write a pprof allocation profile taken at exit to this path")
	)
	flag.Float64Var(&spec.Scale, "scale", spec.Scale, "problem scale (1.0 = the paper's sizes; some experiments enforce larger floors)")
	flag.IntVar(&spec.Hosts, "hosts", spec.Hosts, "workstation pool size")
	flag.Float64Var(&spec.Grace, "grace", spec.Grace, "leave grace period in seconds")
	flag.StringVar(&spec.Policy, "policy", spec.Policy, "load policy for the hetero custom scenario, e.g. \"high=1.5,low=0.25,dwell=2\"")
	spec.BindHetero(flag.CommandLine)
	spec.BindProtocol(flag.CommandLine)
	flag.Parse()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	opt, err := options(spec, *pairs, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-bench:", err)
		os.Exit(1)
	}
	if !*quiet {
		// Progress ticks are stderr-only so the deterministic stdout
		// and -json contracts are unaffected.
		opt.Progress = os.Stderr
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-bench:", err)
		os.Exit(1)
	}
	if err := run(*exp, opt, *jsonPath); err != nil {
		stopProf()
		fmt.Fprintln(os.Stderr, "nowomp-bench:", err)
		os.Exit(1)
	}
	stopProf()
}

// startProfiles wires the optional pprof outputs: the CPU profile spans
// the whole run, the allocation profile is an at-exit snapshot (taken
// after a final GC so live objects are accurate). The returned stop
// function is idempotent.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stopped := false
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Printf("[cpu profile written to %s]\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nowomp-bench: -memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "nowomp-bench: -memprofile:", err)
			}
			f.Close()
			fmt.Printf("[mem profile written to %s]\n", memPath)
		}
	}, nil
}

// options folds the scenario spec into the bench options: speeds and
// loads build a machine model every experiment runs on, links bend
// each run's fabric, the policy reaches the hetero experiment's custom
// scenario, and the protocol applies everywhere (the protocols
// experiment keeps its own tmk/hlrc/hybrid matrix regardless).
func options(spec scenario.Spec, pairs, parallel int) (bench.Options, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return bench.Options{}, err
	}
	opt := bench.Options{
		Scale: norm.Scale, Hosts: norm.Hosts, Pairs: pairs,
		Grace:    simtime.Seconds(norm.Grace),
		Parallel: parallel,
	}
	if opt.Machine, err = norm.MachineModel(); err != nil {
		return bench.Options{}, err
	}
	if opt.Links, err = norm.LinksFunc(); err != nil {
		return bench.Options{}, err
	}
	if opt.Policy, err = norm.LoadPolicy(); err != nil {
		return bench.Options{}, err
	}
	if opt.Protocol, err = norm.ProtocolKind(); err != nil {
		return bench.Options{}, err
	}
	return opt, nil
}

func run(exp string, opt bench.Options, jsonPath string) error {
	all := exp == "all"
	ran := false
	wallStart := time.Now()
	var report *bench.Report
	if jsonPath != "" {
		report = bench.NewReport(opt)
	}
	step := func(name string, f func() error) error {
		if !all && exp != name {
			return nil
		}
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s regenerated in %.1fs real time]\n\n", name, time.Since(start).Seconds())
		return nil
	}

	if err := step("table1", func() error {
		rows, err := bench.Table1(opt, nil)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddTable1(rows)
		}
		fmt.Print(bench.FormatTable1(rows, opt.Scale))
		return nil
	}); err != nil {
		return err
	}
	if err := step("table2", func() error {
		cells, err := bench.Table2(opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(cells))
		return nil
	}); err != nil {
		return err
	}
	if err := step("fig3", func() error {
		rows, err := bench.Fig3(opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig3(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("migration", func() error {
		rows, err := bench.Migration(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMigration(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("micro", func() error {
		m, err := bench.Micro(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatMicro(m))
		return nil
	}); err != nil {
		return err
	}
	if err := step("ablation", func() error {
		a, err := bench.Ablation(opt)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation(a))
		return nil
	}); err != nil {
		return err
	}
	if err := step("tasking", func() error {
		rows, err := bench.Tasking(opt)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddTasking(rows)
		}
		fmt.Print(bench.FormatTasking(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("hetero", func() error {
		rows, err := bench.Hetero(opt)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddHetero(rows)
		}
		fmt.Print(bench.FormatHetero(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := step("protocols", func() error {
		rows, err := bench.Protocols(opt)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddProtocols(rows)
		}
		fmt.Print(bench.FormatProtocols(rows))
		return nil
	}); err != nil {
		return err
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", exp,
			strings.Join([]string{"table1", "table2", "fig3", "migration", "micro", "ablation", "tasking", "hetero", "protocols", "all"}, ", "))
	}
	if report != nil {
		report.WallSeconds = time.Since(wallStart).Seconds()
		if err := report.Write(jsonPath); err != nil {
			return err
		}
		fmt.Printf("[json report written to %s]\n", jsonPath)
	}
	return nil
}
