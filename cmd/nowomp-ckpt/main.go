// Command nowomp-ckpt demonstrates the section 4.3 fault tolerance: an
// iterative computation checkpoints the master at adaptation points;
// a simulated crash kills the run; restarting with -restore resumes
// from the last checkpoint and finishes with the correct result.
//
// Example:
//
//	nowomp-ckpt -file /tmp/demo.ckpt -crash-at 12   # dies mid-run
//	nowomp-ckpt -file /tmp/demo.ckpt -restore       # finishes the job
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"nowomp/internal/ckpt"
	"nowomp/internal/omp"
	"nowomp/internal/scenario"
)

const (
	iters  = 20
	every  = 4 // checkpoint every 4 outer iterations
	length = 64 * 1024
)

func main() {
	// The team/protocol surface is the shared scenario spec; the demo
	// fixes its own workload, so only -procs and -protocol are bound.
	spec := scenario.Spec{
		Kernel: "jacobi", Procs: 4, Scale: 0.2,
		Grace: 3.0, Protocol: "tmk", Adaptive: true,
	}
	var (
		file    = flag.String("file", "nowomp.ckpt", "checkpoint file")
		restore = flag.Bool("restore", false, "resume from the checkpoint file")
		crashAt = flag.Int("crash-at", 0, "simulate a crash before this iteration (0 = run to completion)")
	)
	flag.IntVar(&spec.Procs, "procs", spec.Procs, "team size")
	spec.BindProtocol(flag.CommandLine)
	flag.Parse()
	if err := run(*file, *restore, *crashAt, spec); err != nil {
		fmt.Fprintln(os.Stderr, "nowomp-ckpt:", err)
		os.Exit(1)
	}
}

var errCrash = errors.New("simulated crash (machine reboot)")

func run(file string, restore bool, crashAt int, spec scenario.Spec) error {
	// One spare host beyond the team, as the fault-tolerance demo always
	// ran; the save/restore cycle needs the same config on both sides.
	spec.Hosts = spec.Procs + 1
	norm, err := spec.Normalize()
	if err != nil {
		return err
	}
	cfg, err := norm.Config()
	if err != nil {
		return err
	}

	var (
		rt    *omp.Runtime
		start int
	)
	if restore {
		var restored *ckpt.Restored
		rt, restored, err = ckpt.RestoreFile(cfg, file)
		if err != nil {
			return err
		}
		if err := restored.State("iter", &start); err != nil {
			return err
		}
		fmt.Printf("restored from %s: resuming at iteration %d, team %v, t=%.2fs\n",
			file, start, rt.Team(), float64(rt.Now()))
	} else {
		rt, err = omp.New(cfg)
		if err != nil {
			return err
		}
	}

	// The program replays its allocations identically on restart; in
	// restore mode they rebind to the checkpointed contents.
	acc, err := omp.Alloc[float64](rt, "acc", length)
	if err != nil {
		return err
	}

	for it := start; it < iters; it++ {
		if crashAt > 0 && it == crashAt {
			return fmt.Errorf("%w at iteration %d; rerun with -restore", errCrash, it)
		}
		it := it
		rt.For("step", 0, length, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			acc.ReadRange(p.Mem(), lo, hi, buf)
			for i := range buf {
				buf[i] += float64(it + 1)
			}
			acc.WriteRange(p.Mem(), lo, buf)
			p.ChargeUnits(hi-lo, 50e-9)
		})
		done := it + 1
		if done%every == 0 && done < iters {
			// Between parallel constructs: an adaptation point, the
			// only place section 4.3 checkpoints.
			if _, err := ckpt.SaveFile(rt, file, map[string]any{"iter": done}); err != nil {
				return err
			}
			fmt.Printf("iteration %2d done, checkpointed to %s (t=%.2fs)\n", done, file, float64(rt.Now()))
		} else {
			fmt.Printf("iteration %2d done (t=%.2fs)\n", done, float64(rt.Now()))
		}
	}

	// Verify: every element accumulated 1+2+...+iters.
	want := float64(iters * (iters + 1) / 2)
	got := acc.Get(rt.MasterProc().Mem(), length/2)
	if got != want {
		return fmt.Errorf("result %g, want %g", got, want)
	}
	fmt.Printf("completed %d iterations; result verified (%g per element)\n", iters, got)
	return nil
}
