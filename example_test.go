package nowomp_test

import (
	"fmt"
	"log"

	"nowomp"
)

// ExampleNew shows the minimal fork-join program: a team fills a
// shared vector and reduces it.
func ExampleNew() {
	rt, err := nowomp.New(nowomp.Config{Hosts: 4, Procs: 4})
	if err != nil {
		log.Fatal(err)
	}
	v, err := rt.AllocFloat64("v", 1000)
	if err != nil {
		log.Fatal(err)
	}
	rt.ParallelFor("fill", 0, v.Len(), func(p *nowomp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = 1
		}
		v.WriteRange(p.Mem(), lo, buf)
	})
	sum := rt.ParallelForReduce("sum", 0, v.Len(), 0,
		func(a, b float64) float64 { return a + b },
		func(p *nowomp.Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += v.Get(p.Mem(), i)
			}
			return s
		})
	fmt.Println(int(sum))
	// Output: 1000
}

// ExampleRuntime_Submit shows transparent adaptation: a workstation
// leaves the running computation and the next construct runs on the
// smaller team with the iteration space re-partitioned automatically.
func ExampleRuntime_Submit() {
	rt, err := nowomp.New(nowomp.Config{Hosts: 4, Procs: 4, Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.AllocFloat64("v", 256); err != nil {
		log.Fatal(err)
	}
	fmt.Println("team before:", rt.NProcs())

	// Workstation 2's owner wants it back.
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Leave, Host: 2, At: rt.Now()}); err != nil {
		log.Fatal(err)
	}
	rt.Parallel("next-construct", func(p *nowomp.Proc) {})
	fmt.Println("team after:", rt.NProcs())
	// Output:
	// team before: 4
	// team after: 3
}

// ExampleRuntime_ParallelForTiled shows the section 7 extension:
// tiling one long loop into several constructs multiplies the
// adaptation points, so a leave takes effect mid-loop.
func ExampleRuntime_ParallelForTiled() {
	rt, err := nowomp.New(nowomp.Config{Hosts: 4, Procs: 4, Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.AllocFloat64("v", 256); err != nil {
		log.Fatal(err)
	}
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Leave, Host: 3, At: 0.001}); err != nil {
		log.Fatal(err)
	}
	var sizes []int
	rt.ParallelForTiled("loop", 0, 400, 4, func(p *nowomp.Proc, lo, hi int) {
		if p.ID == 0 {
			sizes = append(sizes, p.N)
		}
		p.ChargeUnits(hi-lo, 1e-4)
	})
	fmt.Println("team size per tile:", sizes)
	// Output: team size per tile: [4 3 3 3]
}
