package nowomp_test

import (
	"testing"

	"nowomp/internal/bench"
)

// One benchmark per table and figure of the paper's evaluation
// section. Each iteration regenerates the artifact at a reduced scale
// and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` doubles as a quick reproduction pass.
// The full tables, at larger scales and with formatted output, come
// from `go run ./cmd/nowomp-bench`.

func benchOpts() bench.Options { return bench.Options{Scale: 0.08, Hosts: 10} }

// BenchmarkTable1 regenerates Table 1 (adaptive vs non-adaptive, no
// adapt events): the headline is zero overhead and identical traffic.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchOpts(), []int{8, 4, 1})
		if err != nil {
			b.Fatal(err)
		}
		var overhead float64
		for _, r := range rows {
			if !r.TrafficIdentical || !r.ChecksumOK {
				b.Fatalf("%s/%d: adaptive parity broken", r.App, r.Procs)
			}
			overhead += float64(r.AdaTime - r.StdTime)
		}
		b.ReportMetric(overhead, "adaptive-overhead-s")
	}
}

// BenchmarkTable2 regenerates one representative Table 2 cell per
// iteration (Jacobi, n=8, end leaver); the metric is the average cost
// per adaptation, the quantity Table 2 reports (paper: 2-5 s typical).
func BenchmarkTable2(b *testing.B) {
	opt := benchOpts()
	opt.Pairs = 2
	for i := 0; i < b.N; i++ {
		cell, err := bench.Table2Cell1(opt, "jacobi", 8, "end")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cell.AvgCost), "s/adaptation")
	}
}

// BenchmarkFig3 regenerates Figure 3's two highlighted points: data
// moved for a leave of process 7 (up to 50%) versus process 3 (up to
// 30%).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3(benchOpts(), []int{3, 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[1].MovedFrac, "end-moved-%")
		b.ReportMetric(100*rows[0].MovedFrac, "middle-moved-%")
	}
}

// BenchmarkMigration regenerates the section 5.3 what-if: the direct
// cost of adaptation by migration alone, extrapolated to the paper's
// problem sizes (paper: 6.1-7.7 s).
func BenchmarkMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Migration(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if c := float64(r.FullScaleCost); c > worst {
				worst = c
			}
		}
		b.ReportMetric(worst, "worst-full-scale-migration-s")
	}
}

// BenchmarkMicro regenerates the section 5.4 micro-analysis; the
// metric is the cost-vs-max-link correlation (the paper's key claim).
func BenchmarkMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := bench.Micro(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.LinkCorr, "cost-vs-maxlink-corr")
		b.ReportMetric(float64(m.Simultaneous.SuccessiveCost-m.Simultaneous.TogetherCost), "simultaneous-savings-s")
	}
}

// BenchmarkAblation regenerates the design-choice ablations (id
// reassignment, leave handoff, grace sweep).
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.Ablation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.Handoff[0].MaxLinkBytes)/float64(a.Handoff[1].MaxLinkBytes), "handoff-bottleneck-relief-x")
	}
}
