package machine

import (
	"testing"

	"nowomp/internal/simnet"
)

// The spec parsers take operator input straight off tool flags, so
// they must never panic, and their formatters must round-trip: parsing
// a formatted model reproduces the same model (format -> parse ->
// format is a fixed point). The fuzzers assert both over arbitrary
// byte soup.

const fuzzPool = 8

func FuzzParseSpeeds(f *testing.F) {
	for _, seed := range []string{
		"", "4=0.5,7=2", "0=1", "3=0.25,3=4", " 1 = 0.5 ",
		"9=1", "-1=2", "a=b", "4=", "=1", "4=0", "4=-1", "4=1e300,5=1e-300",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m := New(fuzzPool)
		if err := ParseSpeeds(m, spec); err != nil {
			return // rejected input: only the no-panic property applies
		}
		out := FormatSpeeds(m)
		m2 := New(fuzzPool)
		if err := ParseSpeeds(m2, out); err != nil {
			t.Fatalf("ParseSpeeds(%q) accepted but its format %q did not re-parse: %v", spec, out, err)
		}
		if again := FormatSpeeds(m2); again != out {
			t.Fatalf("format not a fixed point: %q -> %q -> %q", spec, out, again)
		}
		for id := 0; id < fuzzPool; id++ {
			if a, b := m.Speed(simnet.MachineID(id)), m2.Speed(simnet.MachineID(id)); a != b {
				t.Fatalf("machine %d speed %g != reparsed %g (spec %q)", id, a, b, spec)
			}
		}
	})
}

func FuzzParseLoads(f *testing.F) {
	for _, seed := range []string{
		"", "3=2@5,0@15;6=0.5@0", "0=0@0", "1=1@1,2@0", "2=1@1,2@1",
		"x=1@1", "3=@", "3=1@", "3=@1", "3=1@1;3=2@2", "7=1e9@0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m := New(fuzzPool)
		if err := ParseLoads(m, spec); err != nil {
			return
		}
		out := FormatLoads(m)
		m2 := New(fuzzPool)
		if err := ParseLoads(m2, out); err != nil {
			t.Fatalf("ParseLoads(%q) accepted but its format %q did not re-parse: %v", spec, out, err)
		}
		if again := FormatLoads(m2); again != out {
			t.Fatalf("format not a fixed point: %q -> %q -> %q", spec, out, again)
		}
		for id := 0; id < fuzzPool; id++ {
			a := m.Load(simnet.MachineID(id)).Steps()
			b := m2.Load(simnet.MachineID(id)).Steps()
			if len(a) != len(b) {
				t.Fatalf("machine %d has %d steps, reparsed %d (spec %q)", id, len(a), len(b), spec)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("machine %d step %d %v != reparsed %v (spec %q)", id, i, a[i], b[i], spec)
				}
			}
		}
	})
}

func FuzzParseLinks(f *testing.F) {
	for _, seed := range []string{
		"", "0-7=lat:4,bw:0.25", "2-3=bw:0.5", "0-1=lat:1", "1-0=lat:2;2-3=bw:3",
		"0-0=lat:2", "0-9=bw:1", "a-b=lat:1", "0-1=", "0-1=x:1", "0-1=lat:0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fab := simnet.New(fuzzPool)
		if err := ParseLinks(fab, spec); err != nil {
			return
		}
		out := FormatLinks(fab)
		fab2 := simnet.New(fuzzPool)
		if err := ParseLinks(fab2, out); err != nil {
			t.Fatalf("ParseLinks(%q) accepted but its format %q did not re-parse: %v", spec, out, err)
		}
		if again := FormatLinks(fab2); again != out {
			t.Fatalf("format not a fixed point: %q -> %q -> %q", spec, out, again)
		}
		for a := 0; a < fuzzPool; a++ {
			for b := 0; b < fuzzPool; b++ {
				if a == b {
					continue
				}
				src, dst := simnet.MachineID(a), simnet.MachineID(b)
				if fab.LatencyScale(src, dst) != fab2.LatencyScale(src, dst) ||
					fab.BandwidthScale(src, dst) != fab2.BandwidthScale(src, dst) {
					t.Fatalf("link %d->%d scales diverge after round-trip (spec %q)", a, b, spec)
				}
			}
		}
	})
}
