package machine

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// finite reports whether f is a usable numeric value. ParseFloat
// happily accepts "NaN" and "Inf", but a NaN speed or load poisons
// every virtual-time comparison downstream (NaN compares false with
// everything, so the engine's wake ordering — and with it determinism —
// silently breaks), so the parsers reject non-finite values outright.
func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// ParseSpeeds parses a compact per-machine speed spec of the form
//
//	ID=FACTOR[,ID=FACTOR...]
//
// for example "4=0.5,5=0.5,7=2" (machines 4 and 5 at half speed,
// machine 7 twice the baseline). Unlisted machines stay at 1.0. The
// spec is applied to m, which must already span the pool; an empty
// spec is a no-op.
func ParseSpeeds(m *Model, spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		id, val, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("machine: speed %q: want ID=FACTOR", item)
		}
		mid, err := strconv.Atoi(id)
		if err != nil || mid < 0 || mid >= m.Machines() {
			return fmt.Errorf("machine: speed %q: machine %q not in [0,%d)", item, id, m.Machines())
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 || !finite(f) {
			return fmt.Errorf("machine: speed %q: factor %q must be a positive finite number", item, val)
		}
		m.SetSpeed(simnet.MachineID(mid), f)
	}
	return nil
}

// FormatSpeeds renders the non-default speeds of a model in ParseSpeeds
// form, machines ascending; the empty string means all speeds are 1.0.
func FormatSpeeds(m *Model) string {
	if m == nil {
		return ""
	}
	var parts []string
	for id := 0; id < m.Machines(); id++ {
		if f := m.Speed(simnet.MachineID(id)); f != 1 {
			parts = append(parts, fmt.Sprintf("%d=%s", id, strconv.FormatFloat(f, 'g', -1, 64)))
		}
	}
	return strings.Join(parts, ",")
}

// ParseLoads parses a compact per-machine load-trace spec of the form
//
//	ID=LOAD@TIME[,LOAD@TIME...][;ID=...]
//
// for example "3=2@5,0@15;6=0.5@0": machine 3 carries load 2.0 from
// t=5s until t=15s, machine 6 load 0.5 from the start. Times are
// virtual seconds, strictly ascending within one machine; the last
// load holds forever. The spec is applied to m; an empty spec is a
// no-op.
func ParseLoads(m *Model, spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		id, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("machine: load %q: want ID=LOAD@TIME,...", entry)
		}
		mid, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || mid < 0 || mid >= m.Machines() {
			return fmt.Errorf("machine: load %q: machine %q not in [0,%d)", entry, id, m.Machines())
		}
		var steps []Step
		for _, sp := range strings.Split(rest, ",") {
			sp = strings.TrimSpace(sp)
			load, at, ok := strings.Cut(sp, "@")
			if !ok {
				return fmt.Errorf("machine: load %q: step %q: want LOAD@TIME", entry, sp)
			}
			lv, err := strconv.ParseFloat(load, 64)
			if err != nil || lv < 0 || !finite(lv) {
				return fmt.Errorf("machine: load %q: step %q: load %q must be a non-negative finite number", entry, sp, load)
			}
			tv, err := strconv.ParseFloat(at, 64)
			if err != nil || tv < 0 || !finite(tv) {
				return fmt.Errorf("machine: load %q: step %q: time %q must be a non-negative finite number", entry, sp, at)
			}
			steps = append(steps, Step{At: simtime.Seconds(tv), Load: lv})
		}
		tr, err := NewTrace(steps...)
		if err != nil {
			return fmt.Errorf("machine: load %q: %w", entry, err)
		}
		m.SetLoad(simnet.MachineID(mid), tr)
	}
	return nil
}

// FormatLoads renders the non-empty traces of a model in ParseLoads
// form, machines ascending; the empty string means no machine carries
// load. FormatLoads(ParseLoads(s)) is canonical: parsing its output
// reproduces the same traces.
func FormatLoads(m *Model) string {
	if m == nil {
		return ""
	}
	var entries []string
	for id := 0; id < m.Machines(); id++ {
		steps := m.Load(simnet.MachineID(id)).Steps()
		if len(steps) == 0 {
			continue
		}
		parts := make([]string, len(steps))
		for i, s := range steps {
			parts[i] = fmt.Sprintf("%s@%s",
				strconv.FormatFloat(s.Load, 'g', -1, 64),
				strconv.FormatFloat(float64(s.At), 'g', -1, 64))
		}
		entries = append(entries, fmt.Sprintf("%d=%s", id, strings.Join(parts, ",")))
	}
	return strings.Join(entries, ";")
}

// ParseLinks parses a compact per-link override spec of the form
//
//	SRC-DST=lat:FACTOR[,bw:FACTOR][;...]
//
// for example "0-7=lat:4,bw:0.25;2-3=bw:0.5": the 0<->7 pair has 4x
// the baseline latency and a quarter of the bandwidth in both
// directions, 2<->3 half bandwidth. Factors apply symmetrically to the
// full-duplex pair. Overrides are applied to the fabric; an empty spec
// is a no-op.
func ParseLinks(f *simnet.Fabric, spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		pair, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("machine: link %q: want SRC-DST=lat:F,bw:F", entry)
		}
		a, b, ok := strings.Cut(pair, "-")
		if !ok {
			return fmt.Errorf("machine: link %q: endpoint pair %q: want SRC-DST", entry, pair)
		}
		src, err := strconv.Atoi(strings.TrimSpace(a))
		if err != nil || src < 0 || src >= f.Machines() {
			return fmt.Errorf("machine: link %q: machine %q not in [0,%d)", entry, a, f.Machines())
		}
		dst, err := strconv.Atoi(strings.TrimSpace(b))
		if err != nil || dst < 0 || dst >= f.Machines() {
			return fmt.Errorf("machine: link %q: machine %q not in [0,%d)", entry, b, f.Machines())
		}
		if src == dst {
			return fmt.Errorf("machine: link %q: loopback has no link", entry)
		}
		lat, bw := 1.0, 1.0
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			key, val, ok := strings.Cut(kv, ":")
			if !ok {
				return fmt.Errorf("machine: link %q: option %q: want lat:F or bw:F", entry, kv)
			}
			fv, err := strconv.ParseFloat(val, 64)
			if err != nil || fv <= 0 || !finite(fv) {
				return fmt.Errorf("machine: link %q: option %q: factor must be a positive finite number", entry, kv)
			}
			switch key {
			case "lat":
				lat = fv
			case "bw":
				bw = fv
			default:
				return fmt.Errorf("machine: link %q: unknown option %q (want lat or bw)", entry, kv)
			}
		}
		f.SetDuplexScale(simnet.MachineID(src), simnet.MachineID(dst), lat, bw)
	}
	return nil
}

// FormatLinks renders the non-default link overrides of a fabric in
// ParseLinks form, pairs ascending; the empty string means every link
// is at the baseline. ParseLinks only ever sets full-duplex pairs, so
// formatting reads the a->b direction of each pair;
// FormatLinks(ParseLinks(s)) is canonical on such fabrics.
func FormatLinks(f *simnet.Fabric) string {
	if f == nil {
		return ""
	}
	var entries []string
	for a := 0; a < f.Machines(); a++ {
		for b := a + 1; b < f.Machines(); b++ {
			lat := f.LatencyScale(simnet.MachineID(a), simnet.MachineID(b))
			bw := f.BandwidthScale(simnet.MachineID(a), simnet.MachineID(b))
			if lat == 1 && bw == 1 {
				continue
			}
			entries = append(entries, fmt.Sprintf("%d-%d=lat:%s,bw:%s", a, b,
				strconv.FormatFloat(lat, 'g', -1, 64),
				strconv.FormatFloat(bw, 'g', -1, 64)))
		}
	}
	return strings.Join(entries, ";")
}
