// Package machine models the heterogeneity of a real network of
// workstations: per-machine CPU speed factors, per-machine background
// load that varies over time, and (together with the per-link
// overrides on simnet.Fabric) per-link network characteristics. The
// calibrated simtime.CostModel remains the baseline — the homogeneous
// switched LAN of the paper's section 5.1 — and this package supplies
// the multipliers that turn it into a heterogeneous NOW: mixed-speed
// pools, machines slowed by their owners' work, and links of unequal
// quality.
//
// The zero configuration (nil Model, no link overrides) is the fast
// path: every cost reduces to exactly the baseline arithmetic, bit for
// bit, so a homogeneous run through this layer is indistinguishable
// from one that never heard of heterogeneity.
//
// Two scaling rules apply, chosen for determinism and fidelity:
//
//   - Compute charges (Proc.Charge in the omp layer) scale by the full
//     slowdown (1+load(t))/speed, integrated over the piecewise-
//     constant load trace, because background load competes with user
//     computation for the CPU.
//   - DSM software costs (twinning, diff creation/application, message
//     overhead) scale by 1/speed only: they are short kernel-side
//     bursts whose cost tracks the processor, not the instantaneous
//     load average.
package machine

import (
	"fmt"
	"sort"

	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// Step is one breakpoint of a piecewise-constant load trace: from At
// on, the machine carries Load background load (1.0 = one competing
// CPU-bound process).
type Step struct {
	At   simtime.Seconds
	Load float64
}

// Trace is a piecewise-constant background-load trace. The zero value
// is an empty trace: load 0 forever. Load is 0 before the first step;
// the last step's load holds forever after.
type Trace struct {
	steps []Step
}

// NewTrace builds a trace from steps, which must have strictly
// ascending times and non-negative loads.
func NewTrace(steps ...Step) (Trace, error) {
	for i, s := range steps {
		if s.Load < 0 {
			return Trace{}, fmt.Errorf("machine: load %g at %v is negative", s.Load, s.At)
		}
		if s.At < 0 {
			return Trace{}, fmt.Errorf("machine: step time %v is negative", s.At)
		}
		if i > 0 && steps[i-1].At >= s.At {
			return Trace{}, fmt.Errorf("machine: step times must strictly ascend, got %v then %v",
				steps[i-1].At, s.At)
		}
	}
	return Trace{steps: append([]Step(nil), steps...)}, nil
}

// Empty reports whether the trace carries no load anywhere.
func (tr Trace) Empty() bool {
	for _, s := range tr.steps {
		if s.Load != 0 {
			return false
		}
	}
	return true
}

// Steps returns a copy of the trace's breakpoints.
func (tr Trace) Steps() []Step { return append([]Step(nil), tr.steps...) }

// At returns the load at virtual instant t.
func (tr Trace) At(t simtime.Seconds) float64 {
	// Find the last step with At <= t.
	i := sort.Search(len(tr.steps), func(i int) bool { return tr.steps[i].At > t })
	if i == 0 {
		return 0
	}
	return tr.steps[i-1].Load
}

// Model gives each machine of a pool a CPU speed factor (1.0 = the
// baseline 300 MHz Pentium II of the paper) and a background-load
// trace. A nil *Model means a homogeneous pool.
type Model struct {
	speeds []float64
	loads  []Trace
}

// New returns a model for an n-machine pool, all speeds 1.0 and all
// load traces empty.
func New(n int) *Model {
	if n <= 0 {
		panic(fmt.Sprintf("machine: invalid machine count %d", n))
	}
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = 1
	}
	return &Model{speeds: speeds, loads: make([]Trace, n)}
}

// Machines returns the pool size the model describes.
func (m *Model) Machines() int { return len(m.speeds) }

func (m *Model) check(id simnet.MachineID) {
	if int(id) < 0 || int(id) >= len(m.speeds) {
		panic(fmt.Sprintf("machine: machine %d out of range [0,%d)", id, len(m.speeds)))
	}
}

// SetSpeed sets a machine's CPU speed factor; 2.0 is twice the
// baseline, 0.5 half. The factor must be positive.
func (m *Model) SetSpeed(id simnet.MachineID, f float64) {
	m.check(id)
	if f <= 0 {
		panic(fmt.Sprintf("machine: speed factor %g for machine %d must be positive", f, id))
	}
	m.speeds[id] = f
}

// Speed returns a machine's CPU speed factor.
func (m *Model) Speed(id simnet.MachineID) float64 {
	m.check(id)
	return m.speeds[id]
}

// SetLoad installs a machine's background-load trace.
func (m *Model) SetLoad(id simnet.MachineID, tr Trace) {
	m.check(id)
	m.loads[id] = tr
}

// Load returns a machine's trace.
func (m *Model) Load(id simnet.MachineID) Trace {
	m.check(id)
	return m.loads[id]
}

// LoadAt returns a machine's background load at virtual instant t.
func (m *Model) LoadAt(id simnet.MachineID, t simtime.Seconds) float64 {
	m.check(id)
	return m.loads[id].At(t)
}

// Homogeneous reports whether the model is indistinguishable from the
// baseline: every speed 1.0 and every load trace empty. Nil models are
// homogeneous by definition.
func (m *Model) Homogeneous() bool {
	if m == nil {
		return true
	}
	for _, s := range m.speeds {
		if s != 1 {
			return false
		}
	}
	for _, tr := range m.loads {
		if !tr.Empty() {
			return false
		}
	}
	return true
}

// Slowdown returns the compute-time multiplier of a machine at instant
// t: (1 + load) / speed. A loaded half-speed machine runs user work at
// slowdown (1+load)*2.
func (m *Model) Slowdown(id simnet.MachineID, t simtime.Seconds) float64 {
	m.check(id)
	return (1 + m.loads[id].At(t)) / m.speeds[id]
}

// CPUScale returns the multiplier for short kernel-side software costs
// (twinning, diff scans, message handling): 1/speed, load-independent.
func (m *Model) CPUScale(id simnet.MachineID) float64 {
	if m == nil {
		return 1
	}
	m.check(id)
	return 1 / m.speeds[id]
}

// Compute returns the elapsed virtual time for `work` baseline seconds
// of computation started on machine id at instant `start`, integrating
// the piecewise-constant slowdown across trace breakpoints: work done
// while the owner's load is up takes proportionally longer. With speed
// 1 and an empty trace it returns work exactly.
func (m *Model) Compute(id simnet.MachineID, start, work simtime.Seconds) simtime.Seconds {
	if m == nil {
		return work
	}
	m.check(id)
	if work <= 0 {
		return 0
	}
	speed := m.speeds[id]
	tr := m.loads[id]
	if len(tr.steps) == 0 {
		if speed == 1 {
			return work
		}
		return work / simtime.Seconds(speed)
	}

	now := start
	remaining := work
	var elapsed simtime.Seconds
	// Walk the segments from `start`; the segment after the last step
	// extends forever.
	i := sort.Search(len(tr.steps), func(i int) bool { return tr.steps[i].At > now })
	for {
		load := 0.0
		if i > 0 {
			load = tr.steps[i-1].Load
		}
		slow := simtime.Seconds((1 + load) / speed)
		if i >= len(tr.steps) {
			return elapsed + remaining*slow
		}
		seg := tr.steps[i].At - now
		capacity := seg / slow // baseline work the segment can absorb
		if capacity >= remaining {
			return elapsed + remaining*slow
		}
		elapsed += seg
		remaining -= capacity
		now = tr.steps[i].At
		i++
	}
}
