package machine

import (
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// Costs prices transfers and local DSM work on a possibly
// heterogeneous NOW: the calibrated simtime.CostModel supplies the
// baseline constants, the Fabric's per-link scales bend latency and
// bandwidth link by link, and the Model's speed factors scale the
// software-side components by the executing machine's CPU.
//
// Every method has a homogeneous fast path that reproduces the
// baseline arithmetic expression bit for bit, so a run with all
// factors at 1.0 is numerically indistinguishable from one priced
// straight off the CostModel. Heterogeneous pricing follows two
// conventions:
//
//   - Latency/wire components are priced on the actual directed link a
//     message crosses (requests src -> dst, payloads dst -> src).
//   - Fixed software components (page/diff handling bases, twinning,
//     diff scans, message overhead) scale by 1/speed of the machine
//     that executes them — the requester for fetches, since TreadMarks
//     charges the requester-observed cost.
//
// Background load deliberately does not scale these micro costs; it
// scales compute charges only (see Model.Compute).
type Costs struct {
	base simtime.CostModel
	fab  *simnet.Fabric
	m    *Model
	hom  bool
}

// NewCosts builds the cost layer for one cluster. model may be nil
// (homogeneous pool); fab must be the cluster's fabric.
func NewCosts(base simtime.CostModel, fab *simnet.Fabric, model *Model) *Costs {
	return &Costs{
		base: base,
		fab:  fab,
		m:    model,
		hom:  model.Homogeneous() && !fab.Heterogeneous(),
	}
}

// Base returns the baseline cost model.
func (k *Costs) Base() simtime.CostModel { return k.base }

// Model returns the machine model, possibly nil.
func (k *Costs) Model() *Model { return k.m }

// Homogeneous reports whether every factor is 1.0, i.e. the fast path
// is active and all costs equal the baseline.
func (k *Costs) Homogeneous() bool { return k.hom }

// cpu returns the software-cost multiplier of machine id (1/speed).
func (k *Costs) cpu(id simnet.MachineID) float64 {
	return k.m.CPUScale(id)
}

// Compute returns the elapsed virtual time for `work` baseline seconds
// of user computation started on machine id at instant `start` — the
// entry point Proc.Charge prices through. Unlike the software costs
// below, compute scales by the full slowdown (1+load)/speed,
// integrated over the load trace.
func (k *Costs) Compute(id simnet.MachineID, start, work simtime.Seconds) simtime.Seconds {
	if k.hom {
		return work
	}
	return k.m.Compute(id, start, work)
}

// Latency returns the one-way latency of the directed link src -> dst.
func (k *Costs) Latency(src, dst simnet.MachineID) simtime.Seconds {
	if k.hom {
		return k.base.OneWayLatency
	}
	return k.base.OneWayLatency * simtime.Seconds(k.fab.LatencyScale(src, dst))
}

// RoundTrip returns request-plus-reply latency between two machines.
func (k *Costs) RoundTrip(a, b simnet.MachineID) simtime.Seconds {
	if k.hom {
		return 2 * k.base.OneWayLatency
	}
	return k.Latency(a, b) + k.Latency(b, a)
}

// Wire returns the serialisation time of a payload on the directed
// link src -> dst.
func (k *Costs) Wire(src, dst simnet.MachineID, bytes int) simtime.Seconds {
	if k.hom {
		return k.base.Wire(bytes)
	}
	return simtime.Seconds(float64(bytes) / (k.base.LinkBandwidth * k.fab.BandwidthScale(src, dst)))
}

// PageFetch returns the requester-observed cost of fetching a full
// page of the given payload size: request req -> owner, payload
// owner -> req, software base scaled by the requester's CPU.
func (k *Costs) PageFetch(req, owner simnet.MachineID, bytes int) simtime.Seconds {
	if k.hom {
		return k.base.PageFetch(bytes)
	}
	return k.RoundTrip(req, owner) +
		k.base.PageFetchBase*simtime.Seconds(k.cpu(req)) +
		k.Wire(owner, req, bytes)
}

// DiffFetch returns the requester-observed cost of fetching and
// applying diffs totalling the given payload size from one writer.
// The per-byte create/apply cost scales by the requester's CPU.
func (k *Costs) DiffFetch(req, writer simnet.MachineID, bytes int) simtime.Seconds {
	if k.hom {
		return k.base.DiffFetch(bytes)
	}
	cpu := simtime.Seconds(k.cpu(req))
	return k.RoundTrip(req, writer) +
		k.base.DiffFetchBase*cpu +
		k.Wire(writer, req, bytes) +
		simtime.Seconds(float64(bytes))*k.base.DiffByteCost*cpu
}

// DiffFlush returns the writer-observed cost of pushing its interval's
// diff for one page to the page's home when the interval closes (the
// HLRC release path): one-way latency and wire time on the writer ->
// home link plus the send overhead on the writer. The home applies the
// diff off the writer's critical path; the apply scan is folded into
// the calibrated page-fetch base the next reader pays.
func (k *Costs) DiffFlush(writer, home simnet.MachineID, bytes int) simtime.Seconds {
	if k.hom {
		return k.base.OneWayLatency + k.base.Wire(bytes) + k.base.MsgOverhead
	}
	return k.Latency(writer, home) + k.Wire(writer, home, bytes) + k.MsgOverhead(writer)
}

// Twin returns the local cost of twinning one page on machine id.
func (k *Costs) Twin(id simnet.MachineID) simtime.Seconds {
	if k.hom {
		return k.base.TwinCost
	}
	return k.base.TwinCost * simtime.Seconds(k.cpu(id))
}

// DiffCreate returns the local cost of scanning `bytes` bytes of page
// against twin on machine id when an interval closes.
func (k *Costs) DiffCreate(id simnet.MachineID, bytes int) simtime.Seconds {
	if k.hom {
		return k.base.DiffCreateByteCost * simtime.Seconds(bytes)
	}
	return k.base.DiffCreateByteCost * simtime.Seconds(bytes) * simtime.Seconds(k.cpu(id))
}

// MsgOverhead returns the per-message software overhead executed on
// machine id.
func (k *Costs) MsgOverhead(id simnet.MachineID) simtime.Seconds {
	if k.hom {
		return k.base.MsgOverhead
	}
	return k.base.MsgOverhead * simtime.Seconds(k.cpu(id))
}

// rtScale returns the mean latency scale of the duplex pair a<->b,
// used to bend calibrated aggregates that are round trips at heart.
func (k *Costs) rtScale(a, b simnet.MachineID) simtime.Seconds {
	return simtime.Seconds((k.fab.LatencyScale(a, b) + k.fab.LatencyScale(b, a)) / 2)
}

// Lock returns the acquire cost of a Tmk lock for a requester on
// machine req, with the manager on manager and — when the request is
// forwarded — the current holder on holder. The calibrated LockBase
// (one round trip to the manager) bends with the req<->manager pair;
// the LockForward increment (manager -> holder -> req) bends with the
// mean of those two hops.
func (k *Costs) Lock(req, manager, holder simnet.MachineID, forwarded bool) simtime.Seconds {
	if k.hom {
		cost := k.base.LockBase
		if forwarded {
			cost += k.base.LockForward
		}
		return cost
	}
	cost := k.base.LockBase * k.rtScale(req, manager)
	if forwarded {
		fwd := simtime.Seconds((k.fab.LatencyScale(manager, holder) + k.fab.LatencyScale(holder, req)) / 2)
		cost += k.base.LockForward * fwd
	}
	return cost
}

// Barrier returns the synchronisation cost of a barrier across the
// given machines with the manager on master, excluding the wait for
// the slowest arrival. The calibrated base (two round trips) bends
// with the worst master<->member pair.
func (k *Costs) Barrier(master simnet.MachineID, members []simnet.MachineID) simtime.Seconds {
	n := len(members)
	if n <= 1 {
		return 0
	}
	if k.hom {
		return k.base.Barrier(n)
	}
	worst := simtime.Seconds(1)
	for _, m := range members {
		if m == master {
			continue
		}
		if s := k.rtScale(master, m); s > worst {
			worst = s
		}
	}
	return k.base.BarrierBase*worst + simtime.Seconds(n)*k.base.BarrierPerProc
}

// Fork returns the master's cost of broadcasting Tmk_fork to the team:
// the latency of the slowest master -> slave link plus per-slave send
// overhead on the master.
func (k *Costs) Fork(master simnet.MachineID, members []simnet.MachineID) simtime.Seconds {
	n := len(members)
	if n <= 1 {
		return 0
	}
	if k.hom {
		return k.base.Fork(n)
	}
	worst := k.base.OneWayLatency
	for _, m := range members {
		if m == master {
			continue
		}
		if l := k.Latency(master, m); l > worst {
			worst = l
		}
	}
	return worst + simtime.Seconds(n-1)*k.base.MsgOverhead*simtime.Seconds(k.cpu(master))
}

// Migration returns the cost of moving a process image from src to
// dst: spawn, then image transfer at the measured libckpt rate — or at
// the link's rate where an override makes the wire the bottleneck.
func (k *Costs) Migration(src, dst simnet.MachineID, imageBytes int) simtime.Seconds {
	if k.hom {
		return k.base.Migration(imageBytes)
	}
	rate := k.base.MigrationBandwidth
	if link := k.base.LinkBandwidth * k.fab.BandwidthScale(src, dst); link < rate {
		rate = link
	}
	return k.base.SpawnTime + simtime.Seconds(float64(imageBytes)/rate)
}

// JoinMap returns the joiner-observed cost of receiving the page-
// location map from the master at a join.
func (k *Costs) JoinMap(master, joiner simnet.MachineID, bytes int) simtime.Seconds {
	if k.hom {
		return 2*k.base.OneWayLatency + k.base.Wire(bytes) + k.base.MsgOverhead
	}
	return k.RoundTrip(joiner, master) + k.Wire(master, joiner, bytes) + k.MsgOverhead(joiner)
}
