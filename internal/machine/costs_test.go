package machine

import (
	"testing"

	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// TestHomogeneousBitIdentity pins the refactor's core contract: with a
// nil model and default links, every Costs method reproduces the
// baseline CostModel arithmetic bit for bit — and an explicit all-unit
// model prices identically to a nil one.
func TestHomogeneousBitIdentity(t *testing.T) {
	base := simtime.Default()
	for _, m := range []*Model{nil, New(8)} {
		f := simnet.New(8)
		k := NewCosts(base, f, m)
		if !k.Homogeneous() {
			t.Fatal("unit setup must take the fast path")
		}
		for _, bytes := range []int{1, 100, 4096, 65536} {
			if got, want := k.PageFetch(1, 2, bytes), base.PageFetch(bytes); got != want {
				t.Errorf("PageFetch(%d) = %v, want %v", bytes, got, want)
			}
			if got, want := k.DiffFetch(1, 2, bytes), base.DiffFetch(bytes); got != want {
				t.Errorf("DiffFetch(%d) = %v, want %v", bytes, got, want)
			}
			if got, want := k.Wire(3, 4, bytes), base.Wire(bytes); got != want {
				t.Errorf("Wire(%d) = %v, want %v", bytes, got, want)
			}
		}
		if got, want := k.RoundTrip(0, 5), 2*base.OneWayLatency; got != want {
			t.Errorf("RoundTrip = %v, want %v", got, want)
		}
		if got, want := k.Twin(3), base.TwinCost; got != want {
			t.Errorf("Twin = %v, want %v", got, want)
		}
		if got, want := k.DiffCreate(3, 4096), base.DiffCreateByteCost*simtime.Seconds(4096); got != want {
			t.Errorf("DiffCreate = %v, want %v", got, want)
		}
		if got, want := k.Lock(1, 0, 2, true), base.LockBase+base.LockForward; got != want {
			t.Errorf("Lock forwarded = %v, want %v", got, want)
		}
		if got, want := k.Lock(1, 0, 2, false), base.LockBase; got != want {
			t.Errorf("Lock = %v, want %v", got, want)
		}
		members := []simnet.MachineID{0, 1, 2, 3}
		if got, want := k.Barrier(0, members), base.Barrier(4); got != want {
			t.Errorf("Barrier = %v, want %v", got, want)
		}
		if got, want := k.Fork(0, members), base.Fork(4); got != want {
			t.Errorf("Fork = %v, want %v", got, want)
		}
		if got, want := k.Migration(1, 2, 5<<20), base.Migration(5<<20); got != want {
			t.Errorf("Migration = %v, want %v", got, want)
		}
		if got, want := k.Compute(2, 17, 0.125), simtime.Seconds(0.125); got != want {
			t.Errorf("Compute = %v, want %v", got, want)
		}
	}
}

func TestLinkScalesBendTransfers(t *testing.T) {
	base := simtime.Default()
	f := simnet.New(4)
	f.SetDuplexScale(0, 1, 4, 0.25)
	k := NewCosts(base, f, nil)
	if k.Homogeneous() {
		t.Fatal("link override must disable the fast path")
	}
	if got, want := k.Latency(0, 1), 4*base.OneWayLatency; got != want {
		t.Errorf("Latency over slow link = %v, want %v", got, want)
	}
	if got, want := k.Latency(0, 2), base.OneWayLatency; got != want {
		t.Errorf("Latency over default link = %v, want %v", got, want)
	}
	if got := k.Wire(0, 1, 4096); got <= base.Wire(4096)*3.9 {
		t.Errorf("quarter bandwidth wire time %v not ~4x baseline %v", got, base.Wire(4096))
	}
	slow := k.PageFetch(0, 1, 4096)
	fast := k.PageFetch(0, 2, 4096)
	if slow <= fast {
		t.Errorf("page fetch over slow link (%v) must cost more than default (%v)", slow, fast)
	}
	if fast != base.PageFetch(4096) {
		// The default-link path still bends nothing, but it is computed
		// through the heterogeneous arithmetic; allow only exactness.
		t.Errorf("default-link fetch %v differs from baseline %v", fast, base.PageFetch(4096))
	}
}

func TestSpeedScalesSoftwareCosts(t *testing.T) {
	base := simtime.Default()
	f := simnet.New(4)
	m := New(4)
	m.SetSpeed(2, 2) // double speed: half the software cost
	k := NewCosts(base, f, m)
	if got, want := k.Twin(2), base.TwinCost/2; got != want {
		t.Errorf("Twin on 2x machine = %v, want %v", got, want)
	}
	if got, want := k.Twin(1), base.TwinCost; got != want {
		t.Errorf("Twin on 1x machine = %v, want %v", got, want)
	}
	if got, want := k.MsgOverhead(2), base.MsgOverhead/2; got != want {
		t.Errorf("MsgOverhead on 2x machine = %v, want %v", got, want)
	}
	if k.DiffCreate(2, 4096) >= k.DiffCreate(1, 4096) {
		t.Error("diff create must be cheaper on the faster machine")
	}
	// Load must NOT affect software costs.
	tr, _ := NewTrace(Step{At: 0, Load: 10})
	m.SetLoad(1, tr)
	k = NewCosts(base, f, m)
	if got, want := k.Twin(1), base.TwinCost; got != want {
		t.Errorf("Twin on loaded 1x machine = %v, want %v (load-independent)", got, want)
	}
}

func TestMigrationLinkBottleneck(t *testing.T) {
	base := simtime.Default()
	f := simnet.New(4)
	// Scale 0->1 bandwidth so the link (12.5 MB/s * 0.1) undercuts the
	// 8.1 MB/s libckpt rate.
	f.SetLinkScale(0, 1, 1, 0.1)
	k := NewCosts(base, f, nil)
	img := 10 << 20
	slow := k.Migration(0, 1, img)
	if slow <= base.Migration(img) {
		t.Errorf("migration over starved link %v must exceed baseline %v", slow, base.Migration(img))
	}
	// A generous link leaves libckpt the bottleneck.
	f2 := simnet.New(4)
	f2.SetLinkScale(0, 1, 1, 10)
	k2 := NewCosts(base, f2, nil)
	if got, want := k2.Migration(0, 1, img), base.Migration(img); got != want {
		t.Errorf("migration over fat link = %v, want libckpt-limited %v", got, want)
	}
}

func TestBarrierAndForkWorstLink(t *testing.T) {
	base := simtime.Default()
	f := simnet.New(4)
	f.SetDuplexScale(0, 3, 5, 1)
	k := NewCosts(base, f, nil)
	members := []simnet.MachineID{0, 1, 2, 3}
	if k.Barrier(0, members) <= base.Barrier(4) {
		t.Error("barrier with one slow member must cost more than baseline")
	}
	if k.Fork(0, members) <= base.Fork(4) {
		t.Error("fork with one slow member must cost more than baseline")
	}
	near := []simnet.MachineID{0, 1, 2}
	if got, want := k.Barrier(0, near), base.Barrier(3); got != want {
		t.Errorf("barrier avoiding the slow link = %v, want %v", got, want)
	}
}
