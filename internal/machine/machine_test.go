package machine

import (
	"strings"
	"testing"

	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

func TestTraceAt(t *testing.T) {
	tr, err := NewTrace(Step{At: 5, Load: 2}, Step{At: 15, Load: 0.5}, Step{At: 20, Load: 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   simtime.Seconds
		want float64
	}{
		{0, 0}, {4.999, 0}, {5, 2}, {14.9, 2}, {15, 0.5}, {19, 0.5}, {20, 0}, {1000, 0},
	}
	for _, c := range cases {
		if got := tr.At(c.at); got != c.want {
			t.Errorf("At(%v) = %g, want %g", c.at, got, c.want)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(Step{At: 5, Load: -1}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := NewTrace(Step{At: -1, Load: 1}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := NewTrace(Step{At: 5, Load: 1}, Step{At: 5, Load: 2}); err == nil {
		t.Error("non-ascending times accepted")
	}
}

func TestHomogeneous(t *testing.T) {
	var nilModel *Model
	if !nilModel.Homogeneous() {
		t.Error("nil model must be homogeneous")
	}
	m := New(4)
	if !m.Homogeneous() {
		t.Error("fresh model must be homogeneous")
	}
	m.SetSpeed(2, 0.5)
	if m.Homogeneous() {
		t.Error("speed 0.5 still homogeneous")
	}
	m.SetSpeed(2, 1)
	tr, _ := NewTrace(Step{At: 0, Load: 1})
	m.SetLoad(1, tr)
	if m.Homogeneous() {
		t.Error("loaded machine still homogeneous")
	}
	// An all-zero trace carries no load and stays homogeneous.
	zero, _ := NewTrace(Step{At: 3, Load: 0})
	m2 := New(2)
	m2.SetLoad(1, zero)
	if !m2.Homogeneous() {
		t.Error("zero-load trace must not break homogeneity")
	}
}

func TestComputeIdentityFastPath(t *testing.T) {
	var nilModel *Model
	for _, w := range []simtime.Seconds{0, 1e-6, 0.125, 3.7} {
		if got := nilModel.Compute(0, 10, w); got != w {
			t.Errorf("nil model Compute(%v) = %v", w, got)
		}
	}
	m := New(3)
	if got := m.Compute(1, 2, 0.125); got != 0.125 {
		t.Errorf("unit model Compute = %v, want exact 0.125", got)
	}
}

func TestComputeSpeedScaling(t *testing.T) {
	m := New(2)
	m.SetSpeed(1, 2)
	if got := m.Compute(1, 0, 1); got != 0.5 {
		t.Errorf("double speed: Compute(1s) = %v, want 0.5s", got)
	}
	m.SetSpeed(1, 0.5)
	if got := m.Compute(1, 0, 1); got != 2 {
		t.Errorf("half speed: Compute(1s) = %v, want 2s", got)
	}
}

func TestComputeIntegratesTrace(t *testing.T) {
	// Load 1.0 (slowdown 2x) during [10, 12): 1.5s of work started at
	// t=9 does 1s in [9,10), then 1s wall per 0.5s work in [10,12) —
	// 0.5s of work takes 1s — leaving 0 work at t=12. Elapsed 3s... no:
	// work 1.5 = 1.0 (before) + 0.5 (during, costing 1.0 wall).
	m := New(1)
	tr, _ := NewTrace(Step{At: 10, Load: 1}, Step{At: 12, Load: 0})
	m.SetLoad(0, tr)
	if got, want := m.Compute(0, 9, 1.5), simtime.Seconds(2); got != want {
		t.Errorf("Compute across spike = %v, want %v", got, want)
	}
	// Work that outlives the spike: 4s of work at t=9: 1s before the
	// spike, 1s of work (2s wall) inside it, 2s after. Total 5s.
	if got, want := m.Compute(0, 9, 4), simtime.Seconds(5); got != want {
		t.Errorf("Compute past spike = %v, want %v", got, want)
	}
	// Started after the trace's last step: plain 1x.
	if got, want := m.Compute(0, 20, 4), simtime.Seconds(4); got != want {
		t.Errorf("Compute after trace = %v, want %v", got, want)
	}
	// Entirely inside the spike.
	if got, want := m.Compute(0, 10, 0.5), simtime.Seconds(1); got != want {
		t.Errorf("Compute inside spike = %v, want %v", got, want)
	}
}

func TestComputeLoadAndSpeedCombine(t *testing.T) {
	m := New(1)
	m.SetSpeed(0, 2)
	tr, _ := NewTrace(Step{At: 0, Load: 3})
	m.SetLoad(0, tr)
	// Slowdown (1+3)/2 = 2.
	if got, want := m.Compute(0, 0, 1), simtime.Seconds(2); got != want {
		t.Errorf("Compute = %v, want %v", got, want)
	}
}

func TestParseSpeedsRoundTrip(t *testing.T) {
	m := New(8)
	spec := "4=0.5,5=0.5,7=2"
	if err := ParseSpeeds(m, spec); err != nil {
		t.Fatal(err)
	}
	if m.Speed(4) != 0.5 || m.Speed(5) != 0.5 || m.Speed(7) != 2 || m.Speed(0) != 1 {
		t.Fatalf("speeds not applied: %v", m.speeds)
	}
	out := FormatSpeeds(m)
	m2 := New(8)
	if err := ParseSpeeds(m2, out); err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	for i := 0; i < 8; i++ {
		if m.Speed(simnet.MachineID(i)) != m2.Speed(simnet.MachineID(i)) {
			t.Fatalf("round trip changed speed of machine %d", i)
		}
	}
	if FormatSpeeds(New(3)) != "" {
		t.Error("all-default model must format to the empty string")
	}
}

func TestParseSpeedsErrors(t *testing.T) {
	m := New(4)
	for _, spec := range []string{
		"nope", "9=1", "-1=1", "1=0", "1=-2", "1=x", "=1", "1=",
	} {
		if err := ParseSpeeds(m, spec); err == nil {
			t.Errorf("ParseSpeeds(%q) accepted", spec)
		}
	}
	if err := ParseSpeeds(m, ""); err != nil {
		t.Errorf("empty spec must be a no-op, got %v", err)
	}
}

func TestParseLoadsRoundTrip(t *testing.T) {
	m := New(8)
	spec := "3=2@5,0@15;6=0.5@0"
	if err := ParseLoads(m, spec); err != nil {
		t.Fatal(err)
	}
	if got := m.LoadAt(3, 7); got != 2 {
		t.Errorf("machine 3 load at t=7 is %g, want 2", got)
	}
	if got := m.LoadAt(3, 16); got != 0 {
		t.Errorf("machine 3 load at t=16 is %g, want 0", got)
	}
	if got := m.LoadAt(6, 100); got != 0.5 {
		t.Errorf("machine 6 load at t=100 is %g, want 0.5", got)
	}
	out := FormatLoads(m)
	m2 := New(8)
	if err := ParseLoads(m2, out); err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if FormatLoads(m2) != out {
		t.Fatalf("round trip not canonical: %q vs %q", FormatLoads(m2), out)
	}
	if FormatLoads(New(3)) != "" {
		t.Error("no-load model must format to the empty string")
	}
}

func TestParseLoadsErrors(t *testing.T) {
	m := New(4)
	for _, spec := range []string{
		"x", "9=1@0", "1=1", "1=x@0", "1=1@x", "1=-1@0", "1=1@-1",
		"1=1@5,2@5", "1=1@5,2@3",
	} {
		if err := ParseLoads(m, spec); err == nil {
			t.Errorf("ParseLoads(%q) accepted", spec)
		}
	}
}

func TestParseLinks(t *testing.T) {
	f := simnet.New(8)
	if err := ParseLinks(f, "0-7=lat:4,bw:0.25;2-3=bw:0.5"); err != nil {
		t.Fatal(err)
	}
	if got := f.LatencyScale(0, 7); got != 4 {
		t.Errorf("lat scale 0->7 = %g, want 4", got)
	}
	if got := f.LatencyScale(7, 0); got != 4 {
		t.Errorf("lat scale 7->0 = %g, want 4 (duplex)", got)
	}
	if got := f.BandwidthScale(2, 3); got != 0.5 {
		t.Errorf("bw scale 2->3 = %g, want 0.5", got)
	}
	if got := f.LatencyScale(2, 3); got != 1 {
		t.Errorf("lat scale 2->3 = %g, want default 1", got)
	}
	if !f.Heterogeneous() {
		t.Error("fabric with overrides must report heterogeneous")
	}
	for _, spec := range []string{
		"0-0=lat:2", "0=lat:2", "0-9=lat:2", "0-1=zap:2", "0-1=lat:0", "0-1=lat:-1", "0-1=lat",
	} {
		if err := ParseLinks(simnet.New(8), spec); err == nil {
			t.Errorf("ParseLinks(%q) accepted", spec)
		}
	}
	if err := ParseLinks(f, ""); err != nil {
		t.Errorf("empty spec must be a no-op, got %v", err)
	}
}

func TestParseErrorsMentionContext(t *testing.T) {
	m := New(4)
	err := ParseLoads(m, "1=2@5,1@3")
	if err == nil || !strings.Contains(err.Error(), "ascend") {
		t.Errorf("descending step error unhelpful: %v", err)
	}
}
