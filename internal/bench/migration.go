package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/migrate"
	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// MigrationRow is the section 5.3 what-if for one application: the
// direct cost of adaptation by migration alone.
type MigrationRow struct {
	App string
	// SharedMB is the mapped shared space at the experiment scale.
	SharedMB float64
	// Cost is the measured migration cost at the experiment scale
	// (spawn + image transfer at 8.1 MB/s).
	Cost simtime.Seconds
	// FullScaleCost extrapolates to the paper's problem size.
	FullScaleCost simtime.Seconds
	// PaperCost is the figure reported in section 5.3.
	PaperCost simtime.Seconds
}

// paperMigrationCosts are the section 5.3 measurements.
var paperMigrationCosts = map[string]simtime.Seconds{
	"jacobi": 6.7,
	"fft3d":  6.13,
	"gauss":  6.9,
	"nbf":    7.66,
}

// paperSharedBytes are the shared-memory footprints Table 1 reports
// for the paper's problem sizes. The full-scale what-if extrapolates
// with these rather than this repository's own layouts (our 3D-FFT
// keeps two arrays where NAS FT's working set is larger), so the
// comparison validates the migration cost model against the paper's
// own image sizes.
var paperSharedBytes = map[string]int{
	"gauss":  48_000_000,
	"jacobi": 47_800_000,
	"fft3d":  42_000_000,
	"nbf":    52_000_000,
}

// Migration reproduces the section 5.3 what-if: the direct cost of an
// urgent leave (process creation plus image transfer) per application.
// Each application is run briefly at the experiment scale so the plan
// is priced against a live cluster, and the cost is also extrapolated
// to the paper's problem size for comparison with its 6.1-7.7 s range.
func Migration(opt Options) ([]MigrationRow, error) {
	opt = opt.withDefaults()
	const procs = 4
	var rows []MigrationRow
	for _, app := range []string{"gauss", "jacobi", "fft3d", "nbf"} {
		// A very small live run builds the cluster and its regions.
		scale := opt.Scale
		if scale > 0.1 {
			scale = 0.1
		}
		// The full pool, like every other experiment: the extra idle
		// hosts cost nothing, and the Options-level machine model (sized
		// to the pool) stays applicable.
		_, rt, err := runAppOpt(opt, app, scale, omp.Config{Hosts: opt.Hosts, Procs: procs}, nil)
		if err != nil {
			return nil, err
		}
		c := rt.Cluster()
		plan := migrate.New(c, 1, 2, 0)
		model := c.Model()
		rows = append(rows, MigrationRow{
			App:           app,
			SharedMB:      float64(c.TotalSharedBytes()) / 1e6,
			Cost:          plan.Cost,
			FullScaleCost: model.Migration(paperSharedBytes[app] + model.MigrationImageOverhead),
			PaperCost:     paperMigrationCosts[app],
		})
	}
	return rows, nil
}

// FormatMigration renders the what-if table.
func FormatMigration(rows []MigrationRow) string {
	var b strings.Builder
	b.WriteString("Section 5.3 what-if: direct cost of adaptation by migration alone\n")
	b.WriteString("(process creation 0.6-0.8 s + image at 8.1 MB/s)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "app\tshared MB (scaled)\tmigration cost (scaled)\tfull-scale cost\tpaper")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.2fs\t%.2fs\t%.2fs\n",
			r.App, r.SharedMB, float64(r.Cost), float64(r.FullScaleCost), float64(r.PaperCost))
	}
	w.Flush()
	return b.String()
}
