package bench

import (
	"strings"
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

func heteroTiny() Options { return Options{Scale: 0.06, Hosts: 10} }

// TestHeteroMatrixShapes runs the full matrix at tiny scale and pins
// the shapes the committed curves record. The unit-factors-vs-homog
// bit-identity check runs inside Hetero itself; reaching rows at all
// means it held.
func TestHeteroMatrixShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("hetero matrix is a multi-run experiment")
	}
	rows, err := Hetero(heteroTiny())
	if err != nil {
		t.Fatal(err)
	}
	cell := func(scenario, sched string) HeteroRow {
		for _, r := range rows {
			if r.Scenario == scenario && r.Schedule == sched {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", scenario, sched)
		return HeteroRow{}
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s/%s not verified", r.Scenario, r.Schedule)
		}
	}

	// Static on mixed speeds is pinned to the slow block: the loop
	// doubles the slow machines' compute, so the whole construct slows
	// by nearly 2x; the dynamic schedules beat it.
	if s, h := cell("mixed-speed", "static"), cell("homog", "static"); s.Time < h.Time*15/10 {
		t.Errorf("mixed-speed static %.3fs not ~2x homog static %.3fs", float64(s.Time), float64(h.Time))
	}
	if g, s := cell("mixed-speed", "guided"), cell("mixed-speed", "static"); g.Time >= s.Time {
		t.Errorf("guided (%v) must beat static (%v) on mixed speeds", g.Time, s.Time)
	}
	// One loaded machine (slowdown 3x): dynamic claims route around it.
	if d, s := cell("one-loaded", "dynamic"), cell("one-loaded", "static"); d.Time >= s.Time {
		t.Errorf("dynamic (%v) must beat static (%v) with one loaded machine", d.Time, s.Time)
	}
	// A slow link prices faults and barriers, not compute: static
	// slows, but far less than a slow machine does.
	ss, hs := cell("slow-link", "static"), cell("homog", "static")
	if ss.Time <= hs.Time {
		t.Errorf("slow link must cost static something: %v vs %v", ss.Time, hs.Time)
	}
	if ss.Time > hs.Time*12/10 {
		t.Errorf("slow link cost (%v vs %v) should stay small for a compute-bound loop", ss.Time, hs.Time)
	}
	// The flash-load policy must fire a leave and a rejoin under every
	// schedule.
	for _, sched := range []string{"static", "dynamic", "guided"} {
		r := cell("flash-load", sched)
		if r.Leaves != 1 || r.Joins != 1 {
			t.Errorf("flash-load/%s: %d leaves, %d joins; want 1 and 1", sched, r.Leaves, r.Joins)
		}
	}
	out := FormatHetero(rows)
	if !strings.Contains(out, "flash-load") || !strings.Contains(out, "scenario") {
		t.Errorf("FormatHetero output missing content:\n%s", out)
	}
}

// TestHeteroPolicyDeterministic pins the acceptance criterion that a
// policy-driven leave->rejoin run is deterministic: two identical runs
// produce the same virtual time, traffic and adaptation log.
func TestHeteroPolicyDeterministic(t *testing.T) {
	opt := heteroTiny().withDefaults()
	base, err := heteroRun(opt, heteroScenario{name: "homog"}, omp.Static, 0)
	if err != nil {
		t.Fatal(err)
	}
	scs := heteroScenarios(opt, base.Time)
	var flash heteroScenario
	for _, sc := range scs {
		if sc.name == "flash-load" {
			flash = sc
		}
	}
	if flash.policy == nil {
		t.Fatal("flash-load scenario lost its policy")
	}
	// The static schedule is lock-free and therefore fully
	// deterministic: two runs must agree bit for bit, adaptations
	// included.
	a, err := heteroRun(opt, flash, omp.Static, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := heteroRun(opt, flash, omp.Static, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("policy-driven runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Leaves != 1 || a.Joins != 1 {
		t.Errorf("expected one leave and one rejoin, got %+v", a)
	}
	// The claim-based schedules are fully deterministic on the engine:
	// two runs must agree bit for bit, lock-grant order included (under
	// the old goroutine-race loop runtime this only held to ~1%).
	d1, err := heteroRun(opt, flash, omp.Dynamic, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := heteroRun(opt, flash, omp.Dynamic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("dynamic runs diverged:\n%+v\n%+v", d1, d2)
	}
}

// TestUnitFactorsBitIdenticalOnApps pins the acceptance criterion on a
// real kernel: an explicit all-unit machine model plus explicitly
// configured unit link scales must reproduce the nil-model run of
// jacobi exactly — virtual time, traffic counters and FP checksum, bit
// for bit. Adaptive runs with a leave/join schedule are covered too,
// so every refactored charge site in dsm, omp and adapt is on the
// compared path.
func TestUnitFactorsBitIdenticalOnApps(t *testing.T) {
	type fingerprint struct {
		Time     simtime.Seconds
		Bytes    int64
		Messages int64
		Diffs    int64
		Checksum float64
	}
	unitLinks := func(f *simnet.Fabric) error {
		f.SetDuplexScale(0, 1, 1, 1)
		f.SetDuplexScale(2, 3, 1, 1)
		return nil
	}
	// Jacobi at scale 0.15 runs ~1.9 virtual seconds; the leave applies
	// early and the join (which matures only after the ~0.75 s spawn
	// lead) lands mid-run.
	events, err := adapt.ParseSchedule("0.1:leave:3,0.15:join:3")
	if err != nil {
		t.Fatal(err)
	}
	for _, adaptive := range []bool{false, true} {
		run := func(cfg omp.Config) fingerprint {
			var submitted bool
			hook := func(rt *omp.Runtime) {
				if submitted || !adaptive {
					return
				}
				submitted = true
				for _, ev := range events {
					if err := rt.Submit(ev); err != nil {
						t.Fatal(err)
					}
				}
			}
			res, rt, err := runApp("jacobi", 0.15, cfg, hook)
			if err != nil {
				t.Fatal(err)
			}
			if adaptive && appliedEvents(rt) != 2 {
				t.Fatalf("schedule applied %d events, want 2", appliedEvents(rt))
			}
			return fingerprint{res.Time, res.Bytes, res.Messages, res.Diffs, res.Checksum}
		}
		base := omp.Config{Hosts: 6, Procs: 4, Adaptive: adaptive}
		unit := base
		unit.Machine = machine.New(6)
		unit.Links = unitLinks
		got, want := run(unit), run(base)
		if got != want {
			t.Errorf("adaptive=%v: unit-factor run diverged from baseline:\n%+v\n%+v", adaptive, got, want)
		}
	}
}

// TestHeteroPolicyScheduleRoundTrip pins that the events a policy
// derives survive the schedule formatter/parser round trip: the tools
// can echo a policy's decisions back as an ordinary -schedule string.
func TestHeteroPolicyScheduleRoundTrip(t *testing.T) {
	opt := heteroTiny().withDefaults()
	base, err := heteroRun(opt, heteroScenario{name: "homog"}, omp.Static, 0)
	if err != nil {
		t.Fatal(err)
	}
	var flash heteroScenario
	for _, sc := range heteroScenarios(opt, base.Time) {
		if sc.name == "flash-load" {
			flash = sc
		}
	}
	mm := flash.model(opt.Hosts)
	events, err := flash.policy.Derive(
		map[dsm.HostID]machine.Trace{3: mm.Load(3)}, []dsm.HostID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind != adapt.KindLeave || events[1].Kind != adapt.KindJoin {
		t.Fatalf("derived events %v, want leave then join for host 3", events)
	}
	out := adapt.FormatSchedule(events)
	again, err := adapt.ParseSchedule(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	for i := range events {
		if events[i] != again[i] {
			t.Errorf("event %d changed in round trip: %+v vs %+v", i, events[i], again[i])
		}
	}
}
