package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nowomp/internal/dsm"
	"nowomp/internal/omp"
)

// Determinism stress tests for the discrete-event engine: simulated
// outcomes — virtual seconds, fabric bytes and messages — must be
// identical whatever the host scheduler does. The kernels here are the
// interleaving-sensitive ones: the migratory lock kernel (grant order
// was the classic leak), a claim-based loop schedule, and a
// work-stealing tasking point.

// detFingerprint renders every interleaving-sensitive measurement of a
// small matrix into one comparable string.
func detFingerprint(t *testing.T) string {
	t.Helper()
	opt := Options{Scale: 0.06}.withDefaults()

	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format+"\n", args...) }

	for _, proto := range []dsm.ProtocolKind{dsm.Tmk, dsm.HLRC, dsm.Hybrid} {
		row, err := migratoryRun(opt, protoScenario{name: "homog"}, proto)
		if err != nil {
			t.Fatal(err)
		}
		add("migratory/%s: %.17g %d %d %d %d", proto, float64(row.Time), row.Bytes, row.Messages, row.Diffs, row.Flushes)
	}
	for _, sched := range []omp.Schedule{omp.Dynamic, omp.Guided} {
		row, err := heteroRun(opt, heteroScenario{name: "homog"}, sched, 0)
		if err != nil {
			t.Fatal(err)
		}
		add("loop/%s: %.17g %d %d", row.Schedule, float64(row.Time), row.Bytes, row.Messages)
	}
	row, err := taskingPoint("skewed", taskingN(opt.Scale), 4, opt.Hosts)
	if err != nil {
		t.Fatal(err)
	}
	add("tasking/skewed/4: %.17g %.17g %d %d %d",
		float64(row.Tasks), float64(row.Dynamic), row.TasksBytes, row.TasksMessages, row.Steals)
	return string(b)
}

// gmpFingerprint persists across -cpu reruns of the test binary, so
// `go test -run Determinism -cpu 1,4,16` compares the fingerprint
// across GOMAXPROCS settings within one process (the CI determinism
// gate runs exactly that).
var gmpFingerprint struct {
	sync.Mutex
	byKey map[string]string
}

// TestDeterminismAcrossGOMAXPROCS asserts identical simulated times
// and fabric counters whatever GOMAXPROCS is: under -cpu 1,4,16 the
// later runs must reproduce the first run's fingerprint bit for bit.
// This is the test that pins the TestTaskingDeterministic flake fix —
// the pre-engine runtime produced different fft3d/hetero bytes at
// GOMAXPROCS 1 and 8, and jittered on claim-based schedules under CPU
// contention.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	fp := detFingerprint(t)
	gmpFingerprint.Lock()
	defer gmpFingerprint.Unlock()
	if gmpFingerprint.byKey == nil {
		gmpFingerprint.byKey = make(map[string]string)
	}
	prev, ok := gmpFingerprint.byKey["matrix"]
	if !ok {
		gmpFingerprint.byKey["matrix"] = fp
		t.Logf("GOMAXPROCS=%d recorded baseline fingerprint", runtime.GOMAXPROCS(0))
		return
	}
	if fp != prev {
		t.Errorf("fingerprint diverged at GOMAXPROCS=%d:\nfirst run:\n%s\nthis run:\n%s",
			runtime.GOMAXPROCS(0), prev, fp)
	}
}

// TestMigratoryInterleavingInvariance is the engine-core property
// test: the migratory lock kernel — the most interleaving-sensitive
// kernel in the suite, every round a contended lock grant — must
// produce identical results across 50 seeded runs while the host
// scheduler is actively perturbed (GOMAXPROCS cycling, background
// goroutine noise preempting the procs).
func TestMigratoryInterleavingInvariance(t *testing.T) {
	opt := Options{Scale: 0.06}.withDefaults()
	base, err := migratoryRun(opt, protoScenario{name: "homog"}, dsm.Tmk)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var stop atomic.Bool
	var wg sync.WaitGroup
	defer func() { stop.Store(true); wg.Wait() }()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // scheduler noise: busy yield loops
			defer wg.Done()
			for !stop.Load() {
				runtime.Gosched()
			}
		}()
	}

	for seed := 1; seed < 50; seed++ {
		runtime.GOMAXPROCS(1 + seed%4)
		row, err := migratoryRun(opt, protoScenario{name: "homog"}, dsm.Tmk)
		if err != nil {
			t.Fatal(err)
		}
		if row != base {
			t.Fatalf("seeded run %d diverged:\nbase: %+v\nrun:  %+v", seed, base, row)
		}
	}
}
