package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// Table2Cell is one cell of the paper's Table 2: the average cost of
// repeated adaptations between n and n-1 processes, with the leaving
// process chosen at the end or the middle of the id range.
type Table2Cell struct {
	App    string
	N      int    // adaptations oscillate between N and N-1 processes
	Leaver string // "end" or "middle"
	// AvgCost is the average time per adaptation, computed with the
	// paper's methodology: (adaptive runtime - non-adaptive runtime
	// interpolated at the average node count) / number of adaptations.
	AvgCost simtime.Seconds
	// Adaptations is the number of adapt events actually applied.
	Adaptations int
	// AvgNodes is the time-weighted average team size.
	AvgNodes float64
	// AdaTime and RefTime are the measured adaptive runtime and the
	// interpolated baseline.
	AdaTime simtime.Seconds
	RefTime simtime.Seconds
}

// table2Scales gives each application a scale floor that keeps its
// runtime long enough (tens of virtual seconds) for leave/join cycles
// with real spawn times and grace periods to fit; the physics
// constants (0.7 s spawn, 3 s grace) do not shrink with problem scale.
var table2Scales = map[string]float64{
	"jacobi": 0.36,
	"gauss":  0.36,
	"fft3d":  0.50,
	"nbf":    0.28,
}

// MiddleSlot returns the paper's "middle" leaver: process id 4 for
// 8-process teams, 3 for 6-process teams, and the midpoint otherwise.
func MiddleSlot(teamSize int) int {
	switch teamSize {
	case 8:
		return 4
	case 6:
		return 3
	default:
		return teamSize / 2
	}
}

// EndSlot returns the highest process id.
func EndSlot(teamSize int) int { return teamSize - 1 }

// Table2 reproduces Table 2: for each application and n in {8, 6},
// leaves and joins alternate (at most one per adaptation point) with
// the leaver at the end or middle process id.
func Table2(opt Options, ns []int) ([]Table2Cell, error) {
	opt = opt.withDefaults()
	if len(ns) == 0 {
		ns = []int{8, 6}
	}
	var cells []Table2Cell
	for _, app := range []string{"gauss", "jacobi", "fft3d", "nbf"} {
		for _, leaver := range []string{"end", "middle"} {
			for _, n := range ns {
				cell, err := Table2Cell1(opt, app, n, leaver)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// Table2Cell1 measures one Table 2 cell.
func Table2Cell1(opt Options, app string, n int, leaver string) (Table2Cell, error) {
	opt = opt.withDefaults()
	scale := opt.Scale
	if floor := table2Scales[app]; scale < floor {
		scale = floor
	}
	if n < 2 || n > opt.Hosts {
		return Table2Cell{}, fmt.Errorf("bench: n=%d outside [2,%d]", n, opt.Hosts)
	}
	slot := EndSlot
	if leaver == "middle" {
		slot = MiddleSlot
	}

	// Non-adaptive baselines at n and n-1 processes.
	baseN, _, err := runAppOpt(opt, app, scale, omp.Config{Hosts: opt.Hosts, Procs: n}, nil)
	if err != nil {
		return Table2Cell{}, err
	}
	baseN1, _, err := runAppOpt(opt, app, scale, omp.Config{Hosts: opt.Hosts, Procs: n - 1}, nil)
	if err != nil {
		return Table2Cell{}, err
	}

	// Adaptive run with alternating leaves and joins, spread over the
	// expected runtime.
	leaveAt := make([]simtime.Seconds, opt.Pairs)
	for i := range leaveAt {
		leaveAt[i] = baseN.Time * simtime.Seconds(float64(i)+0.6) / simtime.Seconds(float64(opt.Pairs)+0.6)
	}
	alt := newAlternator(leaveAt, slot)
	ada, rt, err := runAppOpt(opt, app, scale, omp.Config{
		Hosts: opt.Hosts, Procs: n, Adaptive: true, Grace: opt.Grace,
	}, alt.hook)
	if err != nil {
		return Table2Cell{}, err
	}

	events := appliedEvents(rt)
	if events == 0 {
		return Table2Cell{}, fmt.Errorf("bench: %s n=%d %s: no adapt events fired (runtime %.2fs too short; raise scale)", app, n, leaver, float64(ada.Time))
	}
	nbar := avgTeamSize(rt, n, ada.Time)
	ref := interpolateRef(nbar, n-1, n, baseN1.Time, baseN.Time)
	cost := (ada.Time - ref) / simtime.Seconds(events)
	return Table2Cell{
		App: app, N: n, Leaver: leaver,
		AvgCost: cost, Adaptations: events, AvgNodes: nbar,
		AdaTime: ada.Time, RefTime: ref,
	}, nil
}

// FormatTable2 renders the cells like the paper's Table 2.
func FormatTable2(cells []Table2Cell) string {
	var b strings.Builder
	b.WriteString("Table 2: average cost of repeated adaptations between n and n-1 processes\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "app\tleaver\tn\tavg cost/adaptation\tadaptations\tavg nodes\tadaptive\tbaseline")
	for _, c := range cells {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.2fs\t%d\t%.2f\t%.2fs\t%.2fs\n",
			c.App, c.Leaver, c.N, float64(c.AvgCost), c.Adaptations, c.AvgNodes,
			float64(c.AdaTime), float64(c.RefTime))
	}
	w.Flush()
	return b.String()
}
