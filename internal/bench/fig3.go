package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
)

// Fig3Row is one point of Figure 3: the fraction of the data space
// that moves when the process with the given id leaves an 8-process
// block-partitioned computation.
type Fig3Row struct {
	LeaverSlot int
	// MovedFrac is the measured re-distribution traffic after the
	// leave (steady-state sweep traffic subtracted) over the data
	// space.
	MovedFrac float64
	// TheoryFrac is the fraction predicted by the block-partition
	// geometry with shift-down reassignment: up to 50% for the end
	// process, up to 30% for process 3 (the paper's Figure 3).
	TheoryFrac float64
}

// Fig3Theory returns the predicted moved fraction for a leave of slot
// L from a t-process block partition with shift-down reassignment.
func Fig3Theory(slot, t int) float64 {
	if t < 2 || slot < 0 || slot >= t {
		return 0
	}
	moved := 0
	for p := 0; p < t-1; p++ {
		if p < slot {
			moved += p + 1 // gains from the successor's old block
		} else {
			moved += t - 1 - p // gains from the shifted blocks
		}
	}
	return float64(moved) / float64(t*(t-1))
}

// Fig3 reproduces Figure 3 on the Jacobi workload: an 8-process run,
// one leave per experiment, sweeping the leaving process id, measuring
// the re-distribution volume in the two sweeps after the adaptation.
func Fig3(opt Options, slots []int) ([]Fig3Row, error) {
	opt = opt.withDefaults()
	if len(slots) == 0 {
		slots = []int{1, 2, 3, 4, 5, 6, 7}
	}
	var rows []Fig3Row
	for _, slot := range slots {
		row, err := fig3Point(opt, slot)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig3Point(opt Options, slot int) (Fig3Row, error) {
	const procs = 8
	if slot <= 0 || slot >= procs {
		return Fig3Row{}, fmt.Errorf("bench: fig3 slot %d outside [1,%d] (the master cannot leave)", slot, procs-1)
	}
	// Page-granularity movement only resolves the partition geometry
	// once each 1/56th-of-the-rows chunk spans several pages, so the
	// figure has its own scale floor.
	scale := opt.Scale
	if scale < 0.3 {
		scale = 0.3
	}
	cfg := apps.DefaultJacobi().Scaled(scale)
	const (
		warmupForks = 6 // init + sweeps to reach steady state
		leaveFork   = 8 // fork index at which the leave fires
		postSweeps  = 2 // measurement window after the adaptation
	)
	cfg.Iters = leaveFork + postSweeps + 2

	rt, err := omp.New(omp.Config{Hosts: procs, Procs: procs, Adaptive: true, Grace: opt.Grace})
	if err != nil {
		return Fig3Row{}, err
	}
	var (
		snaps  = map[int64]simnet.Counters{}
		fabric = rt.Cluster().Fabric()
	)
	rt.SetForkHook(func(rt *omp.Runtime) {
		f := rt.Forks() // forks completed so far; this hook precedes fork f+1
		snaps[f] = fabric.Snapshot()
		if f == leaveFork {
			team := rt.Team()
			_ = rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: team[slot], At: rt.Now()})
		}
	})
	if _, err := apps.RunJacobi(rt, cfg); err != nil {
		return Fig3Row{}, err
	}

	steady := snaps[warmupForks].Sub(snaps[warmupForks-postSweeps]).TotalBytes()
	post := snaps[leaveFork+postSweeps].Sub(snaps[leaveFork]).TotalBytes()
	log := rt.AdaptLog()
	if len(log) != 1 {
		return Fig3Row{}, fmt.Errorf("bench: fig3 slot %d: %d adaptations, want 1", slot, len(log))
	}
	// Exclude the leave's own state transfer (leaver pages to the
	// master): Figure 3 shades the re-partitioning movement, which in
	// the implementation happens through page faults after the fork.
	moved := post - log[0].WindowBytes - steady
	if moved < 0 {
		moved = 0
	}
	data := float64(rt.Cluster().TotalSharedBytes())
	return Fig3Row{
		LeaverSlot: slot,
		MovedFrac:  float64(moved) / data,
		TheoryFrac: Fig3Theory(slot, procs),
	}, nil
}

// FormatFig3 renders the sweep like the paper's Figure 3 caption.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: data re-distribution vs leaving process id (8-process Jacobi)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "leaver id\tmoved/data space\tpartition-geometry prediction")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f%%\t%.1f%%\n", r.LeaverSlot, 100*r.MovedFrac, 100*r.TheoryFrac)
	}
	w.Flush()
	return b.String()
}
