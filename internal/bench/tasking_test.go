package bench

import "testing"

// The tasking-versus-loop-schedule shapes the experiment exists to
// show: on skewed work tasking beats Dynamic at every team size; on
// uniform work a coarse-chunk Dynamic beats tasking at the small team
// sizes where claiming costs almost nothing (the gap closes as claim
// serialisation grows with the team).
func TestTaskingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant sweep; skipped with -short")
	}
	rows, err := Tasking(Options{Scale: 0.15})
	if err != nil {
		t.Fatalf("Tasking: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		switch r.Workload {
		case "skewed":
			if r.Tasks >= r.Dynamic {
				t.Errorf("skewed procs=%d: tasks %v not faster than dynamic %v", r.Procs, r.Tasks, r.Dynamic)
			}
			if r.TasksMB >= r.DynamicMB {
				t.Errorf("skewed procs=%d: tasks moved %.3f MB, dynamic %.3f MB — claiming should dominate",
					r.Procs, r.TasksMB, r.DynamicMB)
			}
		case "uniform":
			if r.Procs <= 4 && r.Tasks <= r.Dynamic {
				t.Errorf("uniform procs=%d: tasks %v not slower than dynamic %v", r.Procs, r.Tasks, r.Dynamic)
			}
		}
		if r.Procs > 1 && r.Steals == 0 {
			t.Errorf("%s procs=%d: no steals recorded", r.Workload, r.Procs)
		}
	}
}

// Determinism: the whole table reproduces exactly.
func TestTaskingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant sweep; skipped with -short")
	}
	a, err := Tasking(Options{Scale: 0.1})
	if err != nil {
		t.Fatalf("Tasking: %v", err)
	}
	b, err := Tasking(Options{Scale: 0.1})
	if err != nil {
		t.Fatalf("Tasking: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverges across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
