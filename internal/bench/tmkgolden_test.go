package bench

import (
	"fmt"
	"os"
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
)

// goldenCell is one measured (kernel, variant) cell of the Tmk
// bit-exactness matrix: virtual runtime plus total fabric bytes and
// messages.
type goldenCell struct {
	Name     string
	Time     float64
	Bytes    int64
	Messages int64
	Checksum float64
}

// tmkGolden is the full kernel matrix measured on the pre-refactor
// system (commit 837e983, before the coherence machinery moved behind
// the Protocol interface), captured with TestCaptureGolden. The
// engine-based runtime must reproduce every cell bit for bit — the
// refactor's core contract: identical simulated times and identical
// fabric byte/message counts across all four loop kernels and both
// task kernels, plain, with an adapt schedule, and with heterogeneous
// machine/link costs.
//
// One cell, fft3d/hetero, is pinned to the pre-engine system's
// GOMAXPROCS>=4 value rather than the one PR 4 committed: the
// pre-engine runtime produced 701952 fabric bytes at GOMAXPROCS<=2 and
// 697712 at GOMAXPROCS>=4 (and flaked between the two at 2) because a
// Tmk read fault fetches its base copy from the page owner with
// whatever diffs the owner happened to have applied in real time —
// mid-phase fault interleaving leaked into the byte counts whenever
// links were heterogeneous. The discrete-event engine fixes the fault
// order (lowest virtual time, host-id ties), which lands on the
// multi-core value; every other cell is the PR 4 capture verbatim.
var tmkGolden = []goldenCell{
	{Name: "gauss/base", Time: 4.2990982271985363, Bytes: 6213312, Messages: 6534, Checksum: 265116.67143948283},
	{Name: "gauss/adapt", Time: 5.0199088643769096, Bytes: 7131800, Messages: 7019, Checksum: 265116.67143948283},
	{Name: "gauss/hetero", Time: 9.1374241254228394, Bytes: 7203224, Messages: 7034, Checksum: 265116.67143948283},
	{Name: "jacobi/base", Time: 0.47662685714531527, Bytes: 1763504, Messages: 1999, Checksum: 450862.44785374403},
	{Name: "jacobi/adapt", Time: 0.63418817304843855, Bytes: 1922920, Messages: 1761, Checksum: 450862.44785374403},
	{Name: "jacobi/hetero", Time: 0.97610357561562566, Bytes: 1920648, Messages: 1741, Checksum: 450862.44785374403},
	{Name: "fft3d/base", Time: 0.10780723999999979, Bytes: 862032, Messages: 639, Checksum: 2607.0611865067449},
	{Name: "fft3d/adapt", Time: 0.13097978312499989, Bytes: 727056, Messages: 538, Checksum: 2607.0611865067449},
	{Name: "fft3d/hetero", Time: 0.22079788742187531, Bytes: 697712, Messages: 520, Checksum: 2607.0611865067449},
	{Name: "nbf/base", Time: 0.55833904800000012, Bytes: 2317488, Messages: 1251, Checksum: 18635.568711964494},
	{Name: "nbf/adapt", Time: 0.77134135200000031, Bytes: 2408512, Messages: 1262, Checksum: 18635.568711964494},
	{Name: "nbf/hetero", Time: 2.2849237609876605, Bytes: 5452320, Messages: 1335, Checksum: 18635.568711964494},
	{Name: "mergesort/base", Time: 0.49651372832031498, Bytes: 1871468, Messages: 871, Checksum: 1676056.8523008034},
	{Name: "mergesort/adapt", Time: 0.37558877781250261, Bytes: 1539904, Messages: 781, Checksum: 1676056.8523008034},
	{Name: "mergesort/hetero", Time: 0.53453829781250262, Bytes: 1539904, Messages: 781, Checksum: 1676056.8523008034},
	{Name: "quadrature/base", Time: 0.10511447999999235, Bytes: 89968, Messages: 96, Checksum: 153.07934230313165},
	{Name: "quadrature/adapt", Time: 0.10710367999999235, Bytes: 90208, Messages: 102, Checksum: 153.07934230313165},
	{Name: "quadrature/hetero", Time: 0.13318463999998983, Bytes: 90368, Messages: 105, Checksum: 153.07934230313165},
}

// goldenScale keeps the full matrix under a few seconds of real time
// while still crossing page boundaries, multiple barriers and several
// adaptation points in every kernel.
const goldenScale = 0.08

// goldenMatrix runs the full kernel matrix — the four loop kernels and
// the two task kernels, each plain, with an adapt schedule (leave +
// rejoin derived from the kernel's own baseline time), and with
// heterogeneous machine/link costs — under the given protocol and
// returns the measurements in a fixed order. Every cell uses
// deterministic schedules only (static loops, the deterministic task
// scheduler), so the numbers are exact run to run.
func goldenMatrix(t *testing.T, proto dsm.ProtocolKind) []goldenCell {
	t.Helper()
	var cells []goldenCell

	names := []string{"gauss", "jacobi", "fft3d", "nbf", "mergesort", "quadrature"}
	for _, name := range names {
		runner, ok := apps.RunnerByName(name)
		if !ok {
			t.Fatalf("unknown kernel %q", name)
		}

		// Baseline: fixed team, homogeneous pool.
		base := goldenRunEvents(t, runner, omp.Config{Hosts: 6, Procs: 4, Protocol: proto}, nil)
		cells = append(cells, goldenCell{Name: name + "/base", Time: float64(base.Time),
			Bytes: base.Bytes, Messages: base.Messages, Checksum: base.Checksum})

		// Adaptive: a leave at 0.2T with a short grace and a rejoin
		// submitted at 0.5T, T the kernel's own baseline time, so the
		// schedule matures at any scale.
		T := base.Time
		adaptive := omp.Config{Hosts: 6, Procs: 4, Adaptive: true, Grace: T * 0.1, Protocol: proto}
		ad := goldenRunEvents(t, runner, adaptive, []adapt.Event{
			{Kind: adapt.KindLeave, Host: 2, At: T * 0.2},
			{Kind: adapt.KindJoin, Host: 2, At: T * 0.5},
		})
		cells = append(cells, goldenCell{Name: name + "/adapt", Time: float64(ad.Time),
			Bytes: ad.Bytes, Messages: ad.Messages, Checksum: ad.Checksum})

		// Heterogeneous costs: a half-speed machine, a loaded machine
		// and a bent master<->3 link, with the same adapt schedule on
		// top.
		mm := machine.New(6)
		mm.SetSpeed(2, 0.5)
		tr, err := machine.NewTrace(machine.Step{At: 0, Load: 1})
		if err != nil {
			t.Fatal(err)
		}
		mm.SetLoad(1, tr)
		hetero := omp.Config{Hosts: 6, Procs: 4, Adaptive: true, Grace: T * 0.1,
			Machine:  mm,
			Protocol: proto,
			Links: func(f *simnet.Fabric) error {
				f.SetDuplexScale(0, 3, 4, 0.25)
				return nil
			},
		}
		ht := goldenRunEvents(t, runner, hetero, []adapt.Event{
			{Kind: adapt.KindLeave, Host: 2, At: T * 0.3},
			{Kind: adapt.KindJoin, Host: 2, At: T * 0.6},
		})
		cells = append(cells, goldenCell{Name: name + "/hetero", Time: float64(ht.Time),
			Bytes: ht.Bytes, Messages: ht.Messages, Checksum: ht.Checksum})
	}
	return cells
}

func goldenRunEvents(t *testing.T, runner apps.Runner, cfg omp.Config, events []adapt.Event) apps.Result {
	t.Helper()
	rt, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := rt.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := runner.Run(rt, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	if want := runner.Reference(goldenScale); res.Checksum != want {
		t.Fatalf("%s: checksum %g, reference %g", res.App, res.Checksum, want)
	}
	return res
}

// TestTmkGoldenBitExact asserts the refactor's core contract: the
// extracted Tmk protocol — selected explicitly — reproduces the
// pre-refactor system bit for bit on the full kernel matrix, with
// adaptation, tasking and heterogeneous costs in play: identical
// simulated times, fabric bytes and message counts.
func TestTmkGoldenBitExact(t *testing.T) {
	got := goldenMatrix(t, dsm.Tmk)
	assertGolden(t, got)
}

// TestDefaultProtocolIsTmk asserts that a zero-value configuration
// still runs the Tmk protocol and prices identically: existing
// programs see no change from the protocol layer.
func TestDefaultProtocolIsTmk(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 2, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Cluster().Protocol(); got != dsm.Tmk {
		t.Fatalf("default protocol = %v, want tmk", got)
	}
	// One golden cell end to end through the default (zero-value)
	// protocol field.
	runner, _ := apps.RunnerByName("jacobi")
	res := goldenRunEvents(t, runner, omp.Config{Hosts: 6, Procs: 4}, nil)
	want := tmkGolden[3] // jacobi/base
	if float64(res.Time) != want.Time || res.Bytes != want.Bytes || res.Messages != want.Messages {
		t.Fatalf("default-config jacobi = (%.17g s, %d B, %d msgs), golden (%.17g s, %d B, %d msgs)",
			float64(res.Time), res.Bytes, res.Messages, want.Time, want.Bytes, want.Messages)
	}
}

func assertGolden(t *testing.T, got []goldenCell) {
	t.Helper()
	if len(got) != len(tmkGolden) {
		t.Fatalf("matrix has %d cells, golden table %d", len(got), len(tmkGolden))
	}
	for i, g := range got {
		w := tmkGolden[i]
		if g.Name != w.Name {
			t.Fatalf("cell %d is %q, golden table has %q", i, g.Name, w.Name)
		}
		if g.Time != w.Time || g.Bytes != w.Bytes || g.Messages != w.Messages || g.Checksum != w.Checksum {
			t.Errorf("%s diverged from pre-refactor golden:\n  got  (%.17g s, %d B, %d msgs, sum %.17g)\n  want (%.17g s, %d B, %d msgs, sum %.17g)",
				g.Name, g.Time, g.Bytes, g.Messages, g.Checksum, w.Time, w.Bytes, w.Messages, w.Checksum)
		}
	}
}

// TestCaptureGolden regenerates a golden table in Go-literal form when
// NOWOMP_REGEN_GOLDEN is set; run it after an intentional cost change
// and paste the output over the matching table. NOWOMP_REGEN_GOLDEN=1
// captures the Tmk matrix (paste over tmkGolden);
// NOWOMP_REGEN_GOLDEN=hybrid captures the hybrid matrix (paste over
// hybridGolden). It is skipped otherwise.
func TestCaptureGolden(t *testing.T) {
	proto := dsm.Tmk
	switch os.Getenv("NOWOMP_REGEN_GOLDEN") {
	case "":
		t.Skip("set NOWOMP_REGEN_GOLDEN=1 (tmk) or =hybrid to regenerate a golden table")
	case "hybrid":
		proto = dsm.Hybrid
	}
	for _, c := range goldenMatrix(t, proto) {
		fmt.Printf("{Name: %q, Time: %.17g, Bytes: %d, Messages: %d, Checksum: %.17g},\n",
			c.Name, c.Time, c.Bytes, c.Messages, c.Checksum)
	}
}

// TestHLRCTeamSizes sweeps team sizes under HLRC: one regular and one
// task kernel must match their sequential references bit for bit at
// every size (goldenRunEvents fails on a checksum mismatch).
func TestHLRCTeamSizes(t *testing.T) {
	for _, name := range []string{"jacobi", "mergesort"} {
		runner, _ := apps.RunnerByName(name)
		for _, procs := range []int{1, 2, 3, 5} {
			goldenRunEvents(t, runner, omp.Config{Hosts: 6, Procs: procs, Protocol: dsm.HLRC}, nil)
		}
	}
}

// TestHybridTeamSizes is the hybrid analogue of TestHLRCTeamSizes:
// classification, home migration and single-writer elision must all be
// output-transparent at every team size, including the degenerate
// one-proc team where every page is trivially single-writer.
func TestHybridTeamSizes(t *testing.T) {
	for _, name := range []string{"jacobi", "mergesort"} {
		runner, _ := apps.RunnerByName(name)
		for _, procs := range []int{1, 2, 3, 5} {
			goldenRunEvents(t, runner, omp.Config{Hosts: 6, Procs: procs, Protocol: dsm.Hybrid}, nil)
		}
	}
}

// TestHLRCKernelMatrix runs the identical kernel matrix under HLRC:
// every kernel must still match its sequential reference bit for bit
// across the plain, adaptive and heterogeneous variants — the
// correctness half of the protocol contract (the pricing half is the
// protocols experiment).
func TestHLRCKernelMatrix(t *testing.T) {
	for _, c := range goldenMatrix(t, dsm.HLRC) {
		// goldenMatrix verifies each checksum against the sequential
		// reference internally; here we additionally pin the checksums
		// to the Tmk goldens so both protocols compute the same answer.
		for _, w := range tmkGolden {
			if w.Name == c.Name && w.Checksum != c.Checksum {
				t.Errorf("%s: hlrc checksum %.17g, tmk golden %.17g", c.Name, c.Checksum, w.Checksum)
			}
		}
	}
}

// hybridGolden pins the adaptive protocol's own cost matrix, captured
// with TestCaptureGolden under NOWOMP_REGEN_GOLDEN=hybrid. Unlike the
// Tmk table this is not a refactor-preservation contract — hybrid has
// no pre-refactor ancestor — it is a regression fence: classification
// thresholds, home-migration pricing and chain-window bounds all move
// these numbers, so an accidental change to any of them shows up as a
// diverged cell rather than a silent cost regression.
var hybridGolden = []goldenCell{
	{Name: "gauss/base", Time: 3.2798931072000683, Bytes: 6013632, Messages: 6438, Checksum: 265116.67143948283},
	{Name: "gauss/adapt", Time: 3.9552407971156827, Bytes: 6932584, Messages: 6932, Checksum: 265116.67143948283},
	{Name: "gauss/hetero", Time: 7.0784484185436503, Bytes: 6922568, Messages: 6945, Checksum: 265116.67143948283},
	{Name: "jacobi/base", Time: 0.50089191493905905, Bytes: 2311096, Messages: 2021, Checksum: 450862.44785374403},
	{Name: "jacobi/adapt", Time: 0.6766311245390586, Bytes: 2304520, Messages: 1797, Checksum: 450862.44785374403},
	{Name: "jacobi/hetero", Time: 0.99538825094062289, Bytes: 2297960, Messages: 1787, Checksum: 450862.44785374403},
	{Name: "fft3d/base", Time: 0.11120171999999982, Bytes: 853712, Messages: 635, Checksum: 2607.0611865067449},
	{Name: "fft3d/adapt", Time: 0.13203423999999991, Bytes: 711896, Messages: 522, Checksum: 2607.0611865067449},
	{Name: "fft3d/hetero", Time: 0.21576936000000038, Bytes: 684592, Messages: 504, Checksum: 2607.0611865067449},
	{Name: "nbf/base", Time: 0.55145704799999884, Bytes: 2163568, Messages: 1177, Checksum: 18635.568711964494},
	{Name: "nbf/adapt", Time: 0.76300007199999897, Bytes: 2253104, Messages: 1182, Checksum: 18635.568711964494},
	{Name: "nbf/hetero", Time: 1.3800799200000038, Bytes: 2680512, Messages: 1397, Checksum: 18635.568711964494},
	{Name: "mergesort/base", Time: 0.26202876000000119, Bytes: 1173280, Messages: 599, Checksum: 1676056.8523008034},
	{Name: "mergesort/adapt", Time: 0.28199008000000203, Bytes: 1105792, Messages: 564, Checksum: 1676056.8523008034},
	{Name: "mergesort/hetero", Time: 0.35168184000000113, Bytes: 1105792, Messages: 564, Checksum: 1676056.8523008034},
	{Name: "quadrature/base", Time: 0.10527831999999235, Bytes: 85808, Messages: 94, Checksum: 153.07934230313165},
	{Name: "quadrature/adapt", Time: 0.10524831999999235, Bytes: 85808, Messages: 94, Checksum: 153.07934230313165},
	{Name: "quadrature/hetero", Time: 0.13058039999998991, Bytes: 85968, Messages: 97, Checksum: 153.07934230313165},
}

// TestHybridKernelMatrix runs the kernel matrix under the adaptive
// hybrid protocol and pins both halves of its contract: checksums must
// equal the Tmk goldens bit for bit (classification and migration are
// invisible to program output), and virtual time, fabric bytes and
// message counts must reproduce hybridGolden exactly (the protocol's
// own pinned cost matrix).
func TestHybridKernelMatrix(t *testing.T) {
	got := goldenMatrix(t, dsm.Hybrid)
	for _, c := range got {
		for _, w := range tmkGolden {
			if w.Name == c.Name && w.Checksum != c.Checksum {
				t.Errorf("%s: hybrid checksum %.17g, tmk golden %.17g", c.Name, c.Checksum, w.Checksum)
			}
		}
	}
	if len(got) != len(hybridGolden) {
		t.Fatalf("matrix has %d cells, hybrid golden table %d", len(got), len(hybridGolden))
	}
	for i, g := range got {
		w := hybridGolden[i]
		if g.Name != w.Name {
			t.Fatalf("cell %d is %q, hybrid golden table has %q", i, g.Name, w.Name)
		}
		if g.Time != w.Time || g.Bytes != w.Bytes || g.Messages != w.Messages {
			t.Errorf("%s diverged from hybrid golden:\n  got  (%.17g s, %d B, %d msgs)\n  want (%.17g s, %d B, %d msgs)",
				g.Name, g.Time, g.Bytes, g.Messages, w.Time, w.Bytes, w.Messages)
		}
	}
}
