package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"nowomp/internal/simtime"
)

// Machine-readable bench results (-json): one record per measured
// scenario, so the performance trajectory can be tracked across PRs by
// diffing committed BENCH_*.json files. Experiments with natural
// scenario rows contribute — table1, tasking, hetero and protocols —
// keyed "experiment/scenario[/qualifiers]"; the remaining experiments
// are narrative tables and stay text-only.

// Record is one scenario's measurement.
type Record struct {
	// Scenario is the slash-separated cell key, e.g.
	// "protocols/migratory/homog/-/hlrc".
	Scenario string `json:"scenario"`
	// Seconds is the scenario's virtual (simulated) time.
	Seconds float64 `json:"seconds"`
	// Bytes and Messages are the scenario's fabric traffic.
	Bytes    int64 `json:"bytes"`
	Messages int64 `json:"messages"`
	// Coherence is the hybrid protocol's classification and adaptation
	// record, present only on protocols cells that ran hybrid (schema 4).
	Coherence *CoherenceStats `json:"coherence,omitempty"`
}

// CoherenceStats is the hybrid protocol's per-cell adaptation record:
// the classifier's final page census, home-migration work, and the
// twin/diff work elided for proven single-writer pages.
type CoherenceStats struct {
	PagesSingleWriter     int64 `json:"pages_single_writer"`
	PagesProducerConsumer int64 `json:"pages_producer_consumer"`
	PagesMigratory        int64 `json:"pages_migratory"`
	PagesFalselyShared    int64 `json:"pages_falsely_shared"`
	HomeMigrations        int64 `json:"home_migrations"`
	HomeMigrationBytes    int64 `json:"home_migration_bytes"`
	ElidedTwins           int64 `json:"elided_twins"`
	ElidedDiffs           int64 `json:"elided_diffs"`
}

// Report is the on-disk -json document.
type Report struct {
	// Schema versions the document layout.
	Schema int `json:"schema"`
	// Scale and Hosts record the options the run used; records are
	// comparable across PRs only at matching scale and pool size.
	Scale float64 `json:"scale"`
	Hosts int     `json:"hosts"`
	// Parallel is the scenario worker-pool size the run used and
	// WallSeconds its real (wall-clock) duration. They are run
	// metadata, not results: every field of every Results record is
	// byte-identical at any Parallel level (the CI determinism gate
	// diffs reports across levels with exactly these two lines
	// filtered out).
	Parallel    int      `json:"parallel"`
	WallSeconds float64  `json:"wall_seconds"`
	Results     []Record `json:"results"`
	// Farm is the farm load-driver section (nil for plain bench runs):
	// per-job queue/sim/total latency, cache-hit ratio, throughput and
	// admission-control evidence. Schema 3 added it.
	Farm *FarmSection `json:"farm,omitempty"`
}

// ReportSchema is the current -json document version. Schema 2 added
// the parallel and wall_seconds run metadata; schema 3 added the farm
// section with per-job queue/sim/total latency and the cache-hit
// ratio; schema 4 added the additive per-record coherence object on
// protocols cells run under the hybrid protocol.
const ReportSchema = 4

// FarmJob is one served job in the farm section. The latency split is
// real (wall-clock) seconds: queue is admission wait (for a dedup job,
// the wait on the in-flight leader), sim is worker occupancy, total is
// submission to terminal state.
type FarmJob struct {
	Job          string  `json:"job"`
	Tenant       string  `json:"tenant"`
	Scenario     string  `json:"scenario"`
	Hash         string  `json:"hash"`
	Cache        string  `json:"cache"`
	QueueSeconds float64 `json:"queue_seconds"`
	SimSeconds   float64 `json:"sim_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// FarmTenant is one tenant's admission-control record.
type FarmTenant struct {
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	Rejected      int64 `json:"rejected"`
	MaxQueueDepth int   `json:"max_queue_depth"`
}

// FarmSection is the farm load-driver report: the aggregate service
// metrics plus every job's latency record.
type FarmSection struct {
	// Trace names the arrival process (poisson, diurnal or mix) and
	// Seed its generator seed; Jobs is the number served.
	Trace string `json:"trace"`
	Seed  int64  `json:"seed"`
	Jobs  int    `json:"jobs"`
	// Workers/QueueCap/MaxInflight echo the service limits.
	Workers     int `json:"workers"`
	QueueCap    int `json:"queue_cap"`
	MaxInflight int `json:"max_inflight"`
	// ThroughputJobsPerSec is completed jobs over the serving window;
	// P50/P95/P99 are total-latency percentiles in seconds.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	P50Seconds           float64 `json:"p50_seconds"`
	P95Seconds           float64 `json:"p95_seconds"`
	P99Seconds           float64 `json:"p99_seconds"`
	// CacheHitRatio is (hits+dedups)/completed; Retries429 counts
	// submissions that had to retry after a 429.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	Retries429    int64   `json:"retries_429"`
	// ByteIdentical records the driver's verification that every
	// served response matched a sequential re-run byte for byte.
	ByteIdentical bool                  `json:"byte_identical"`
	Tenants       map[string]FarmTenant `json:"tenants"`
	PerJob        []FarmJob             `json:"per_job"`
}

// NewReport starts a report for one bench invocation.
func NewReport(opt Options) *Report {
	opt = opt.withDefaults()
	parallel := opt.Parallel
	if parallel < 1 {
		parallel = 1
	}
	// Results starts non-nil so an empty report marshals as [] rather
	// than null — consumers iterate it unconditionally.
	return &Report{Schema: ReportSchema, Scale: opt.Scale, Hosts: opt.Hosts,
		Parallel: parallel, Results: []Record{}}
}

// Add appends one scenario record.
func (r *Report) Add(scenario string, t simtime.Seconds, bytes, messages int64) {
	r.Results = append(r.Results, Record{
		Scenario: scenario, Seconds: float64(t), Bytes: bytes, Messages: messages,
	})
}

// AddTable1 contributes the Table 1 rows (adaptive-variant traffic).
func (r *Report) AddTable1(rows []Table1Row) {
	for _, row := range rows {
		r.Add(fmt.Sprintf("table1/%s/%dp", row.App, row.Procs),
			row.AdaTime, row.Bytes, row.Messages)
	}
}

// AddHetero contributes the heterogeneity matrix.
func (r *Report) AddHetero(rows []HeteroRow) {
	for _, row := range rows {
		r.Add(fmt.Sprintf("hetero/%s/%s", row.Scenario, row.Schedule),
			row.Time, row.Bytes, row.Messages)
	}
}

// AddTasking contributes the tasking comparison (the task variant's
// time and traffic per workload and team size).
func (r *Report) AddTasking(rows []TaskingRow) {
	for _, row := range rows {
		r.Add(fmt.Sprintf("tasking/%s/%dp", row.Workload, row.Procs),
			row.Tasks, row.TasksBytes, row.TasksMessages)
	}
}

// AddProtocols contributes the coherence-protocol matrix. Hybrid
// cells carry their coherence record.
func (r *Report) AddProtocols(rows []ProtoRow) {
	for _, row := range rows {
		r.Add(fmt.Sprintf("protocols/%s/%s/%s/%s", row.Kernel, row.Scenario, row.Schedule, row.Protocol),
			row.Time, row.Bytes, row.Messages)
		if row.Protocol == "hybrid" {
			co := row.Coherence
			r.Results[len(r.Results)-1].Coherence = &co
		}
	}
}

// Write renders the report, scenarios sorted for stable diffs, to
// path atomically (temp file plus rename).
func (r *Report) Write(path string) error {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Scenario < r.Results[j].Scenario })
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode json report: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("bench: write json report: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bench: write json report: %w", err)
	}
	return nil
}
