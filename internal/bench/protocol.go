package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/page"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// The protocol experiment quantifies the trade-off the pluggable
// coherence layer exists to expose: TreadMarks homeless LRC (tmk)
// versus home-based LRC (hlrc) versus the adaptive per-page hybrid,
// under the same kernels, schedules and NOW shapes. Four kernels probe
// the sharing regimes the literature describes:
//
//   - loop: the uniform synthetic loop of the hetero matrix, under
//     Static, Dynamic and Guided schedules. Writers are disjoint, so
//     Tmk's lazy diffs are near-optimal; HLRC pays whole-page fetches
//     for boundary pages and an eager flush per written page, and the
//     gap widens on the claim-based schedules whose shared counter
//     bounces between processes. Scenarios bend the shape: slow-link
//     makes fetches from homes behind the bent link expensive,
//     loaded-home slows a home machine's compute, mixed-speed makes
//     the dynamic schedules rebalance, and leave-join exercises
//     re-homing at adaptation points.
//   - migratory: a lock-protected record (most of one page) updated in
//     turn by every process — the migratory-sharing pattern. Under Tmk
//     each acquirer chases the diff chains of every writer since its
//     last visit, so bytes grow with the team size; under HLRC each
//     release pushes one diff to the home and each acquirer pulls one
//     page. HLRC transfers fewer bytes here — Protocols() fails if it
//     ever stops winning, the analogue of the hetero matrix's
//     bit-identity contract.
//   - prodcons: one producer sparsely updates a multi-page buffer each
//     round and every other process reads it back — the producer-
//     consumer pattern. Tmk's consumers fetch the producer's sparse
//     diffs; HLRC's consumers re-pull whole pages for a few changed
//     words; hybrid migrates the homes to the producer and serves
//     consumers from its retained-diff windows.
//   - falseshare: every process owns a word-interleaved stripe of the
//     same pages and a skewed writer set rewrites stripes each round —
//     false sharing with a dominant writer. The hybrid classifier tags
//     the pages falsely-shared and pays one page transfer to migrate
//     each home to the dominant writer.
//
// Protocols() also enforces the hybrid byte contract: at most the
// better parent on the migratory and prodcons cells, and within 5% of
// the better parent everywhere else.
//
// The committed curves live in docs/protocol-bench.md.

// ProtoRow is one (kernel, scenario, schedule, protocol) measurement.
type ProtoRow struct {
	Kernel   string
	Scenario string
	Schedule string
	Protocol string
	// Time is the virtual work-phase time (init excluded); Bytes and
	// Messages its fabric traffic.
	Time     simtime.Seconds
	Bytes    int64
	Messages int64
	// Diffs counts Tmk diff fetches, Flushes HLRC home pushes: the
	// mechanical signature of each protocol (hybrid records both).
	Diffs   int64
	Flushes int64
	// Coherence is the hybrid classification and adaptation record for
	// the cell (all zero under Tmk and HLRC).
	Coherence CoherenceStats
	// Verified records that the kernel's result was checked.
	Verified bool
}

// protoProcs is the team size of the matrix.
const protoProcs = 4

// protoScenario is one NOW shape of the protocol matrix.
type protoScenario struct {
	name   string
	model  func(hosts int) *machine.Model
	links  func(*simnet.Fabric) error
	events []adapt.Event
}

// protoScenarios builds the matrix shapes. The leave-join schedule is
// sized from the loop kernel's homogeneous baseline time T so the
// events mature at any scale.
func protoScenarios(baseTime simtime.Seconds) []protoScenario {
	return []protoScenario{
		{name: "homog"},
		{
			name: "slow-link",
			links: func(f *simnet.Fabric) error {
				f.SetDuplexScale(0, 3, 4, 0.25)
				return nil
			},
		},
		{
			name: "loaded-home",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				tr, err := machine.NewTrace(machine.Step{At: 0, Load: 2})
				if err != nil {
					panic(err)
				}
				m.SetLoad(3, tr)
				return m
			},
		},
		{
			name: "mixed-speed",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				m.SetSpeed(2, 0.5)
				m.SetSpeed(3, 0.5)
				return m
			},
		},
		{
			name: "leave-join",
			events: []adapt.Event{
				{Kind: adapt.KindLeave, Host: 2, At: baseTime * 0.2},
				{Kind: adapt.KindJoin, Host: 2, At: baseTime * 0.5},
			},
		},
	}
}

// protoKinds is the matrix's protocol axis.
var protoKinds = []dsm.ProtocolKind{dsm.Tmk, dsm.HLRC, dsm.Hybrid}

// Protocols runs the protocol matrix and enforces the byte contracts:
// on the migratory kernel HLRC must transfer fewer bytes than Tmk in
// every scenario, and hybrid must transfer at most what the better
// parent does on the migratory and prodcons cells and stay within 5%
// of the better parent on every other cell.
func Protocols(opt Options) ([]ProtoRow, error) {
	opt = opt.withDefaults()
	if opt.Hosts <= protoProcs {
		return nil, fmt.Errorf("bench: protocols needs more than %d hosts, got %d", protoProcs, opt.Hosts)
	}

	// Baseline sizes the leave-join schedule; every other cell of the
	// matrix is an independent run and fans out across Options.Parallel
	// workers (this is the hottest table to regenerate, and the one the
	// -parallel flag exists for).
	base, err := protoLoopRun(opt, protoScenario{name: "homog"}, omp.Static, dsm.Tmk)
	if err != nil {
		return nil, err
	}
	rows := []ProtoRow{base}

	type cell struct {
		sc     protoScenario
		sched  omp.Schedule
		proto  dsm.ProtocolKind
		kernel string
	}
	var cells []cell
	for _, sc := range protoScenarios(base.Time) {
		for _, sched := range []omp.Schedule{omp.Static, omp.Dynamic, omp.Guided} {
			if len(sc.events) > 0 && sched != omp.Static {
				continue // the adaptation scenario sticks to the deterministic schedule
			}
			for _, proto := range protoKinds {
				if sc.name == "homog" && sched == omp.Static && proto == dsm.Tmk {
					continue // already measured as the baseline
				}
				cells = append(cells, cell{sc: sc, sched: sched, proto: proto, kernel: "loop"})
			}
		}
	}
	// The sharing-pattern kernels, every protocol under each shape (the
	// lock and stripe regions have no adaptation points).
	for _, kernel := range []string{"migratory", "prodcons", "falseshare"} {
		for _, sc := range protoScenarios(base.Time) {
			if len(sc.events) > 0 {
				continue
			}
			for _, proto := range protoKinds {
				cells = append(cells, cell{sc: sc, proto: proto, kernel: kernel})
			}
		}
	}

	cellRows := make([]ProtoRow, len(cells))
	err = opt.runMatrix("protocols", len(cells), func(i int) error {
		var row ProtoRow
		var err error
		switch cells[i].kernel {
		case "loop":
			row, err = protoLoopRun(opt, cells[i].sc, cells[i].sched, cells[i].proto)
		case "migratory":
			row, err = migratoryRun(opt, cells[i].sc, cells[i].proto)
		case "prodcons":
			row, err = prodConsRun(opt, cells[i].sc, cells[i].proto)
		case "falseshare":
			row, err = falseShareRun(opt, cells[i].sc, cells[i].proto)
		}
		cellRows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, cellRows...)

	// Assemble the per-(kernel, scenario, schedule) byte totals and
	// enforce the contracts.
	byProto := map[string]map[string]int64{}
	for _, r := range rows {
		key := r.Kernel + "/" + r.Scenario + "/" + r.Schedule
		if byProto[key] == nil {
			byProto[key] = map[string]int64{}
		}
		byProto[key][r.Protocol] = r.Bytes
	}
	for key, bytes := range byProto {
		tmk, hlrc, hybrid := bytes["tmk"], bytes["hlrc"], bytes["hybrid"]
		if strings.HasPrefix(key, "migratory/") && hlrc >= tmk {
			return nil, fmt.Errorf(
				"bench: %s: hlrc transferred %d bytes, tmk %d; home-based LRC must beat diff chasing on migratory sharing",
				key, hlrc, tmk)
		}
		better := min(tmk, hlrc)
		switch {
		case strings.HasPrefix(key, "migratory/") || strings.HasPrefix(key, "prodcons/"):
			if hybrid > better {
				return nil, fmt.Errorf(
					"bench: %s: hybrid transferred %d bytes, better parent %d; the adaptive protocol must not lose on its target patterns",
					key, hybrid, better)
			}
		default:
			if hybrid > better+better/20 {
				return nil, fmt.Errorf(
					"bench: %s: hybrid transferred %d bytes, better parent %d; the adaptive protocol must stay within 5%% everywhere",
					key, hybrid, better)
			}
		}
	}
	return rows, nil
}

// protoLoopRun measures the uniform loop for one matrix cell,
// mirroring the hetero experiment's kernel so the two matrices are
// comparable.
func protoLoopRun(opt Options, sc protoScenario, sched omp.Schedule, proto dsm.ProtocolKind) (ProtoRow, error) {
	n, iters := heteroDims(opt.Scale)
	row := ProtoRow{Kernel: "loop", Scenario: sc.name, Schedule: sched.String(), Protocol: proto.String()}

	var mm *machine.Model
	if sc.model != nil {
		mm = sc.model(opt.Hosts)
	}
	cfg := omp.Config{
		Hosts:    opt.Hosts,
		Procs:    protoProcs,
		Machine:  mm,
		Links:    sc.links,
		Protocol: proto,
	}
	if len(sc.events) > 0 {
		cfg.Adaptive = true
		cfg.Grace = opt.Grace
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return row, err
	}
	for _, e := range sc.events {
		if err := rt.Submit(e); err != nil {
			return row, err
		}
	}

	out, err := omp.Alloc[float64](rt, "proto.out", n)
	if err != nil {
		return row, err
	}
	rt.For("proto.init", 0, n, func(p *omp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		out.WriteRange(p.Mem(), lo, buf)
	})

	var opts []omp.ForOption
	switch sched {
	case omp.Dynamic:
		opts = append(opts, omp.WithSchedule(omp.Dynamic, max(16, n/64)))
	case omp.Guided:
		opts = append(opts, omp.WithSchedule(omp.Guided, 16))
	}

	t0 := rt.Now()
	net0 := rt.Cluster().Fabric().Snapshot()
	st0 := rt.Cluster().Stats().Snapshot()
	for it := 0; it < iters; it++ {
		rt.For("proto.work", 0, n, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			for i := range buf {
				buf[i] = 1
			}
			out.WriteRange(p.Mem(), lo, buf)
			p.ChargeUnits(hi-lo, heteroUnit)
		}, opts...)
	}
	row.Time = rt.Now() - t0
	window := rt.Cluster().Fabric().Snapshot().Sub(net0)
	row.Bytes = window.TotalBytes()
	row.Messages = window.TotalMessages()
	fillProtoStats(&row, rt.Cluster().Stats().Snapshot().Sub(st0))

	mp := rt.MasterProc()
	buf := make([]float64, n)
	out.ReadRange(mp.Mem(), 0, n, buf)
	for i, v := range buf {
		if v != 1 {
			return row, fmt.Errorf("bench: proto loop %s/%s/%s item %d = %g, want 1",
				sc.name, sched, proto, i, v)
		}
	}
	row.Verified = true
	return row, nil
}

// Migratory kernel parameters: each critical section rewrites migWords
// words (most of the one-page record), and every process takes the
// lock migRounds times.
const (
	migWords  = 448
	migRounds = 8
	migLock   = 41
)

// migratoryRun measures the migratory-lock kernel for one cell.
func migratoryRun(opt Options, sc protoScenario, proto dsm.ProtocolKind) (ProtoRow, error) {
	row := ProtoRow{Kernel: "migratory", Scenario: sc.name, Schedule: "-", Protocol: proto.String()}

	var mm *machine.Model
	if sc.model != nil {
		mm = sc.model(opt.Hosts)
	}
	rt, err := omp.New(omp.Config{
		Hosts:    opt.Hosts,
		Procs:    protoProcs,
		Machine:  mm,
		Links:    sc.links,
		Protocol: proto,
	})
	if err != nil {
		return row, err
	}
	rec, err := omp.Alloc[float64](rt, "mig.rec", 512)
	if err != nil {
		return row, err
	}

	t0 := rt.Now()
	net0 := rt.Cluster().Fabric().Snapshot()
	st0 := rt.Cluster().Stats().Snapshot()
	rt.Parallel("mig.work", func(p *omp.Proc) {
		buf := make([]float64, migWords)
		for round := 0; round < migRounds; round++ {
			p.Lock(migLock)
			rec.ReadRange(p.Mem(), 0, migWords, buf)
			for i := range buf {
				buf[i]++
			}
			rec.WriteRange(p.Mem(), 0, buf)
			p.ChargeUnits(migWords, simtime.Micros(1))
			p.Unlock(migLock)
		}
	})
	row.Time = rt.Now() - t0
	window := rt.Cluster().Fabric().Snapshot().Sub(net0)
	row.Bytes = window.TotalBytes()
	row.Messages = window.TotalMessages()
	fillProtoStats(&row, rt.Cluster().Stats().Snapshot().Sub(st0))

	// Every process incremented every record word migRounds times.
	want := float64(protoProcs * migRounds)
	mp := rt.MasterProc()
	buf := make([]float64, migWords)
	rec.ReadRange(mp.Mem(), 0, migWords, buf)
	for i, v := range buf {
		if v != want {
			return row, fmt.Errorf("bench: migratory %s/%s word %d = %g, want %g",
				sc.name, proto, i, v, want)
		}
	}
	row.Verified = true
	return row, nil
}

// fillProtoStats records a cell's mechanical signature (diff fetches,
// home pushes) and its hybrid coherence record from the stats window.
func fillProtoStats(row *ProtoRow, stats dsm.StatsSnapshot) {
	row.Diffs = stats.DiffFetches
	row.Flushes = stats.HomeFlushes
	row.Coherence = CoherenceStats{
		PagesSingleWriter:     stats.PagesSingleWriter,
		PagesProducerConsumer: stats.PagesProducerConsumer,
		PagesMigratory:        stats.PagesMigratory,
		PagesFalselyShared:    stats.PagesFalselyShared,
		HomeMigrations:        stats.HomeMigrations,
		HomeMigrationBytes:    stats.HomeMigrationBytes,
		ElidedTwins:           stats.ElidedTwins,
		ElidedDiffs:           stats.ElidedDiffs,
	}
}

// pageWords is the float64 capacity of one DSM page.
const pageWords = page.Size / 8

// Producer-consumer kernel parameters: one producer rewrites every
// pcStride-th word of a pcPages-page buffer each round, and every
// other process reads the buffer back — sparse updates that HLRC can
// only serve as whole pages.
const (
	pcPages  = 6
	pcStride = 64
	pcRounds = 10
)

// prodConsRun measures the producer-consumer kernel for one cell.
func prodConsRun(opt Options, sc protoScenario, proto dsm.ProtocolKind) (ProtoRow, error) {
	row := ProtoRow{Kernel: "prodcons", Scenario: sc.name, Schedule: "-", Protocol: proto.String()}

	var mm *machine.Model
	if sc.model != nil {
		mm = sc.model(opt.Hosts)
	}
	rt, err := omp.New(omp.Config{
		Hosts:    opt.Hosts,
		Procs:    protoProcs,
		Machine:  mm,
		Links:    sc.links,
		Protocol: proto,
	})
	if err != nil {
		return row, err
	}
	words := pcPages * pageWords
	buf, err := omp.Alloc[float64](rt, "pc.buf", words)
	if err != nil {
		return row, err
	}

	// Sequential reference: the same update stream applied to a plain
	// slice, summed the way the consumers sum.
	ref := make([]float64, words)
	wantSums := make([]float64, pcRounds)
	for round := 0; round < pcRounds; round++ {
		for w := 0; w < words; w += pcStride {
			ref[w] = float64(round*words + w + 1)
		}
		for _, v := range ref {
			wantSums[round] += v
		}
	}

	sums := make([]float64, protoProcs) // per-consumer running checksum
	t0 := rt.Now()
	net0 := rt.Cluster().Fabric().Snapshot()
	st0 := rt.Cluster().Stats().Snapshot()
	for round := 0; round < pcRounds; round++ {
		rt.Parallel("pc.produce", func(p *omp.Proc) {
			if p.ID != 0 {
				return
			}
			one := make([]float64, 1)
			for w := 0; w < words; w += pcStride {
				one[0] = float64(round*words + w + 1)
				buf.WriteRange(p.Mem(), w, one)
			}
			p.ChargeUnits(words/pcStride, simtime.Micros(1))
		})
		rt.Parallel("pc.consume", func(p *omp.Proc) {
			if p.ID == 0 {
				return
			}
			chunk := make([]float64, pageWords)
			sum := 0.0
			for pg := 0; pg < pcPages; pg++ {
				buf.ReadRange(p.Mem(), pg*pageWords, (pg+1)*pageWords, chunk)
				for _, v := range chunk {
					sum += v
				}
			}
			p.ChargeUnits(words, simtime.Micros(1)/8)
			if sum != wantSums[round] {
				panic(fmt.Sprintf("bench: prodcons %s/%s consumer %d round %d sum = %g, want %g",
					sc.name, proto, p.ID, round, sum, wantSums[round]))
			}
			sums[p.ID] += sum
		})
	}
	row.Time = rt.Now() - t0
	window := rt.Cluster().Fabric().Snapshot().Sub(net0)
	row.Bytes = window.TotalBytes()
	row.Messages = window.TotalMessages()
	fillProtoStats(&row, rt.Cluster().Stats().Snapshot().Sub(st0))

	var wantTotal float64
	for _, s := range wantSums {
		wantTotal += s
	}
	for id := 1; id < protoProcs; id++ {
		if sums[id] != wantTotal {
			return row, fmt.Errorf("bench: prodcons %s/%s consumer %d total = %g, want %g",
				sc.name, proto, id, sums[id], wantTotal)
		}
	}
	row.Verified = true
	return row, nil
}

// False-sharing kernel parameters: the stripe region spans fsPages
// pages whose words interleave across processes (word w belongs to
// process w mod protoProcs); each round process 0 plus one rotating
// peer rewrite their stripes — concurrent writers on every page, with
// process 0 dominant.
const (
	fsPages  = 2
	fsRounds = 9
)

// falseShareRun measures the false-sharing kernel for one cell.
func falseShareRun(opt Options, sc protoScenario, proto dsm.ProtocolKind) (ProtoRow, error) {
	row := ProtoRow{Kernel: "falseshare", Scenario: sc.name, Schedule: "-", Protocol: proto.String()}

	var mm *machine.Model
	if sc.model != nil {
		mm = sc.model(opt.Hosts)
	}
	rt, err := omp.New(omp.Config{
		Hosts:    opt.Hosts,
		Procs:    protoProcs,
		Machine:  mm,
		Links:    sc.links,
		Protocol: proto,
	})
	if err != nil {
		return row, err
	}
	words := fsPages * pageWords
	stripes, err := omp.Alloc[float64](rt, "fs.stripes", words)
	if err != nil {
		return row, err
	}

	// Sequential reference for the final state.
	ref := make([]float64, words)
	for round := 0; round < fsRounds; round++ {
		for _, id := range []int{0, 1 + round%(protoProcs-1)} {
			for w := id; w < words; w += protoProcs {
				ref[w] = float64(round*words + w + 1)
			}
		}
	}

	t0 := rt.Now()
	net0 := rt.Cluster().Fabric().Snapshot()
	st0 := rt.Cluster().Stats().Snapshot()
	for round := 0; round < fsRounds; round++ {
		peer := 1 + round%(protoProcs-1)
		rt.Parallel("fs.work", func(p *omp.Proc) {
			if p.ID != 0 && p.ID != peer {
				return
			}
			one := make([]float64, 1)
			for w := p.ID; w < words; w += protoProcs {
				one[0] = float64(round*words + w + 1)
				stripes.WriteRange(p.Mem(), w, one)
			}
			p.ChargeUnits(words/protoProcs, simtime.Micros(1))
		})
	}
	row.Time = rt.Now() - t0
	window := rt.Cluster().Fabric().Snapshot().Sub(net0)
	row.Bytes = window.TotalBytes()
	row.Messages = window.TotalMessages()
	fillProtoStats(&row, rt.Cluster().Stats().Snapshot().Sub(st0))

	mp := rt.MasterProc()
	got := make([]float64, words)
	stripes.ReadRange(mp.Mem(), 0, words, got)
	for w, v := range got {
		if v != ref[w] {
			return row, fmt.Errorf("bench: falseshare %s/%s word %d = %g, want %g",
				sc.name, proto, w, v, ref[w])
		}
	}
	row.Verified = true
	return row, nil
}

// FormatProtocols renders the matrix.
func FormatProtocols(rows []ProtoRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Coherence-protocol matrix: Tmk homeless LRC vs HLRC home-based LRC vs adaptive hybrid")
	fmt.Fprintln(&b, "(virtual work-phase time; diffs = diff fetches, flushes = home pushes)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "kernel\tscenario\tschedule\tprotocol\ttime\tKB\tmsgs\tdiffs\tflushes\tverified")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.3fs\t%.1f\t%d\t%d\t%d\t%v\n",
			r.Kernel, r.Scenario, r.Schedule, r.Protocol, float64(r.Time),
			float64(r.Bytes)/1e3, r.Messages, r.Diffs, r.Flushes, r.Verified)
	}
	w.Flush()
	return b.String()
}
