package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// The protocol experiment quantifies the trade-off the pluggable
// coherence layer exists to expose: TreadMarks homeless LRC (tmk)
// versus home-based LRC (hlrc) under the same kernels, schedules and
// NOW shapes. Two kernels probe the two regimes the literature
// describes:
//
//   - loop: the uniform synthetic loop of the hetero matrix, under
//     Static, Dynamic and Guided schedules. Writers are disjoint, so
//     Tmk's lazy diffs are near-optimal; HLRC pays whole-page fetches
//     for boundary pages and an eager flush per written page, and the
//     gap widens on the claim-based schedules whose shared counter
//     bounces between processes. Scenarios bend the shape: slow-link
//     makes fetches from homes behind the bent link expensive,
//     loaded-home slows a home machine's compute, mixed-speed makes
//     the dynamic schedules rebalance, and leave-join exercises
//     re-homing at adaptation points.
//   - migratory: a lock-protected record (most of one page) updated in
//     turn by every process — the migratory-sharing pattern. Under Tmk
//     each acquirer chases the diff chains of every writer since its
//     last visit, so bytes grow with the team size; under HLRC each
//     release pushes one diff to the home and each acquirer pulls one
//     page. HLRC transfers fewer bytes here — Protocols() fails if it
//     ever stops winning, the analogue of the hetero matrix's
//     bit-identity contract.
//
// The committed curves live in docs/protocol-bench.md.

// ProtoRow is one (kernel, scenario, schedule, protocol) measurement.
type ProtoRow struct {
	Kernel   string
	Scenario string
	Schedule string
	Protocol string
	// Time is the virtual work-phase time (init excluded); Bytes and
	// Messages its fabric traffic.
	Time     simtime.Seconds
	Bytes    int64
	Messages int64
	// Diffs counts Tmk diff fetches, Flushes HLRC home pushes: the
	// mechanical signature of each protocol.
	Diffs   int64
	Flushes int64
	// Verified records that the kernel's result was checked.
	Verified bool
}

// protoProcs is the team size of the matrix.
const protoProcs = 4

// protoScenario is one NOW shape of the protocol matrix.
type protoScenario struct {
	name   string
	model  func(hosts int) *machine.Model
	links  func(*simnet.Fabric) error
	events []adapt.Event
}

// protoScenarios builds the matrix shapes. The leave-join schedule is
// sized from the loop kernel's homogeneous baseline time T so the
// events mature at any scale.
func protoScenarios(baseTime simtime.Seconds) []protoScenario {
	return []protoScenario{
		{name: "homog"},
		{
			name: "slow-link",
			links: func(f *simnet.Fabric) error {
				f.SetDuplexScale(0, 3, 4, 0.25)
				return nil
			},
		},
		{
			name: "loaded-home",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				tr, err := machine.NewTrace(machine.Step{At: 0, Load: 2})
				if err != nil {
					panic(err)
				}
				m.SetLoad(3, tr)
				return m
			},
		},
		{
			name: "mixed-speed",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				m.SetSpeed(2, 0.5)
				m.SetSpeed(3, 0.5)
				return m
			},
		},
		{
			name: "leave-join",
			events: []adapt.Event{
				{Kind: adapt.KindLeave, Host: 2, At: baseTime * 0.2},
				{Kind: adapt.KindJoin, Host: 2, At: baseTime * 0.5},
			},
		},
	}
}

// Protocols runs the protocol matrix and enforces the byte contract:
// on the migratory kernel HLRC must transfer fewer bytes than Tmk in
// every scenario.
func Protocols(opt Options) ([]ProtoRow, error) {
	opt = opt.withDefaults()
	if opt.Hosts <= protoProcs {
		return nil, fmt.Errorf("bench: protocols needs more than %d hosts, got %d", protoProcs, opt.Hosts)
	}

	// Baseline sizes the leave-join schedule; every other cell of the
	// matrix is an independent run and fans out across Options.Parallel
	// workers (this is the hottest table to regenerate, and the one the
	// -parallel flag exists for).
	base, err := protoLoopRun(opt, protoScenario{name: "homog"}, omp.Static, dsm.Tmk)
	if err != nil {
		return nil, err
	}
	rows := []ProtoRow{base}

	type cell struct {
		sc        protoScenario
		sched     omp.Schedule
		proto     dsm.ProtocolKind
		migratory bool
	}
	var cells []cell
	for _, sc := range protoScenarios(base.Time) {
		for _, sched := range []omp.Schedule{omp.Static, omp.Dynamic, omp.Guided} {
			if len(sc.events) > 0 && sched != omp.Static {
				continue // the adaptation scenario sticks to the deterministic schedule
			}
			for _, proto := range []dsm.ProtocolKind{dsm.Tmk, dsm.HLRC} {
				if sc.name == "homog" && sched == omp.Static && proto == dsm.Tmk {
					continue // already measured as the baseline
				}
				cells = append(cells, cell{sc: sc, sched: sched, proto: proto})
			}
		}
	}
	// The migratory kernel, both protocols under each shape.
	for _, sc := range protoScenarios(base.Time) {
		if len(sc.events) > 0 {
			continue // the lock region has no adaptation points
		}
		for _, proto := range []dsm.ProtocolKind{dsm.Tmk, dsm.HLRC} {
			cells = append(cells, cell{sc: sc, proto: proto, migratory: true})
		}
	}

	cellRows := make([]ProtoRow, len(cells))
	err = opt.runMatrix("protocols", len(cells), func(i int) error {
		var row ProtoRow
		var err error
		if cells[i].migratory {
			row, err = migratoryRun(opt, cells[i].sc, cells[i].proto)
		} else {
			row, err = protoLoopRun(opt, cells[i].sc, cells[i].sched, cells[i].proto)
		}
		cellRows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, cellRows...)

	// Enforce the byte contract on the assembled migratory cells: under
	// every shape HLRC must transfer fewer bytes than Tmk. Migratory
	// cells were appended in adjacent Tmk/HLRC pairs per scenario.
	for i, c := range cells {
		if !c.migratory || c.proto != dsm.Tmk {
			continue
		}
		tmk, hlrc := cellRows[i], cellRows[i+1]
		if hlrc.Bytes >= tmk.Bytes {
			return nil, fmt.Errorf(
				"bench: migratory/%s: hlrc transferred %d bytes, tmk %d; home-based LRC must beat diff chasing on migratory sharing",
				c.sc.name, hlrc.Bytes, tmk.Bytes)
		}
	}
	return rows, nil
}

// protoLoopRun measures the uniform loop for one matrix cell,
// mirroring the hetero experiment's kernel so the two matrices are
// comparable.
func protoLoopRun(opt Options, sc protoScenario, sched omp.Schedule, proto dsm.ProtocolKind) (ProtoRow, error) {
	n, iters := heteroDims(opt.Scale)
	row := ProtoRow{Kernel: "loop", Scenario: sc.name, Schedule: sched.String(), Protocol: proto.String()}

	var mm *machine.Model
	if sc.model != nil {
		mm = sc.model(opt.Hosts)
	}
	cfg := omp.Config{
		Hosts:    opt.Hosts,
		Procs:    protoProcs,
		Machine:  mm,
		Links:    sc.links,
		Protocol: proto,
	}
	if len(sc.events) > 0 {
		cfg.Adaptive = true
		cfg.Grace = opt.Grace
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return row, err
	}
	for _, e := range sc.events {
		if err := rt.Submit(e); err != nil {
			return row, err
		}
	}

	out, err := omp.Alloc[float64](rt, "proto.out", n)
	if err != nil {
		return row, err
	}
	rt.For("proto.init", 0, n, func(p *omp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		out.WriteRange(p.Mem(), lo, buf)
	})

	var opts []omp.ForOption
	switch sched {
	case omp.Dynamic:
		opts = append(opts, omp.WithSchedule(omp.Dynamic, max(16, n/64)))
	case omp.Guided:
		opts = append(opts, omp.WithSchedule(omp.Guided, 16))
	}

	t0 := rt.Now()
	net0 := rt.Cluster().Fabric().Snapshot()
	st0 := rt.Cluster().Stats().Snapshot()
	for it := 0; it < iters; it++ {
		rt.For("proto.work", 0, n, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			for i := range buf {
				buf[i] = 1
			}
			out.WriteRange(p.Mem(), lo, buf)
			p.ChargeUnits(hi-lo, heteroUnit)
		}, opts...)
	}
	row.Time = rt.Now() - t0
	window := rt.Cluster().Fabric().Snapshot().Sub(net0)
	row.Bytes = window.TotalBytes()
	row.Messages = window.TotalMessages()
	stats := rt.Cluster().Stats().Snapshot().Sub(st0)
	row.Diffs = stats.DiffFetches
	row.Flushes = stats.HomeFlushes

	mp := rt.MasterProc()
	buf := make([]float64, n)
	out.ReadRange(mp.Mem(), 0, n, buf)
	for i, v := range buf {
		if v != 1 {
			return row, fmt.Errorf("bench: proto loop %s/%s/%s item %d = %g, want 1",
				sc.name, sched, proto, i, v)
		}
	}
	row.Verified = true
	return row, nil
}

// Migratory kernel parameters: each critical section rewrites migWords
// words (most of the one-page record), and every process takes the
// lock migRounds times.
const (
	migWords  = 448
	migRounds = 8
	migLock   = 41
)

// migratoryRun measures the migratory-lock kernel for one cell.
func migratoryRun(opt Options, sc protoScenario, proto dsm.ProtocolKind) (ProtoRow, error) {
	row := ProtoRow{Kernel: "migratory", Scenario: sc.name, Schedule: "-", Protocol: proto.String()}

	var mm *machine.Model
	if sc.model != nil {
		mm = sc.model(opt.Hosts)
	}
	rt, err := omp.New(omp.Config{
		Hosts:    opt.Hosts,
		Procs:    protoProcs,
		Machine:  mm,
		Links:    sc.links,
		Protocol: proto,
	})
	if err != nil {
		return row, err
	}
	rec, err := omp.Alloc[float64](rt, "mig.rec", 512)
	if err != nil {
		return row, err
	}

	t0 := rt.Now()
	net0 := rt.Cluster().Fabric().Snapshot()
	st0 := rt.Cluster().Stats().Snapshot()
	rt.Parallel("mig.work", func(p *omp.Proc) {
		buf := make([]float64, migWords)
		for round := 0; round < migRounds; round++ {
			p.Lock(migLock)
			rec.ReadRange(p.Mem(), 0, migWords, buf)
			for i := range buf {
				buf[i]++
			}
			rec.WriteRange(p.Mem(), 0, buf)
			p.ChargeUnits(migWords, simtime.Micros(1))
			p.Unlock(migLock)
		}
	})
	row.Time = rt.Now() - t0
	window := rt.Cluster().Fabric().Snapshot().Sub(net0)
	row.Bytes = window.TotalBytes()
	row.Messages = window.TotalMessages()
	stats := rt.Cluster().Stats().Snapshot().Sub(st0)
	row.Diffs = stats.DiffFetches
	row.Flushes = stats.HomeFlushes

	// Every process incremented every record word migRounds times.
	want := float64(protoProcs * migRounds)
	mp := rt.MasterProc()
	buf := make([]float64, migWords)
	rec.ReadRange(mp.Mem(), 0, migWords, buf)
	for i, v := range buf {
		if v != want {
			return row, fmt.Errorf("bench: migratory %s/%s word %d = %g, want %g",
				sc.name, proto, i, v, want)
		}
	}
	row.Verified = true
	return row, nil
}

// FormatProtocols renders the matrix.
func FormatProtocols(rows []ProtoRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Coherence-protocol matrix: Tmk homeless LRC vs HLRC home-based LRC")
	fmt.Fprintln(&b, "(virtual work-phase time; diffs = Tmk diff fetches, flushes = HLRC home pushes)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "kernel\tscenario\tschedule\tprotocol\ttime\tKB\tmsgs\tdiffs\tflushes\tverified")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.3fs\t%.1f\t%d\t%d\t%d\t%v\n",
			r.Kernel, r.Scenario, r.Schedule, r.Protocol, float64(r.Time),
			float64(r.Bytes)/1e3, r.Messages, r.Diffs, r.Flushes, r.Verified)
	}
	w.Flush()
	return b.String()
}
