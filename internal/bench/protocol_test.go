package bench

import (
	"os"
	"strings"
	"testing"

	"nowomp/internal/simtime"
)

// TestProtocolsMatrix runs the full protocol matrix at a small scale.
// Protocols() itself enforces the byte contracts (HLRC beats Tmk on
// the migratory kernel in every scenario; hybrid never loses to the
// better parent on its target patterns and stays within 5% everywhere
// else) and verifies every kernel result; here we additionally check
// the matrix shape, the mechanical signatures, and that the hybrid
// adaptation machinery actually engaged.
func TestProtocolsMatrix(t *testing.T) {
	rows, err := Protocols(Options{Scale: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	kernels := map[string]int{}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s/%s/%s/%s not verified", r.Kernel, r.Scenario, r.Schedule, r.Protocol)
		}
		kernels[r.Kernel]++
		// Mechanical signature: Tmk never pushes to homes, HLRC never
		// fetches diffs, and neither parent classifies or adapts.
		if r.Protocol == "tmk" && r.Flushes != 0 {
			t.Errorf("%s/%s/%s: tmk recorded %d home flushes", r.Kernel, r.Scenario, r.Schedule, r.Flushes)
		}
		if r.Protocol == "hlrc" && r.Diffs != 0 {
			t.Errorf("%s/%s/%s: hlrc recorded %d diff fetches", r.Kernel, r.Scenario, r.Schedule, r.Diffs)
		}
		if r.Protocol != "hybrid" && r.Coherence != (CoherenceStats{}) {
			t.Errorf("%s/%s/%s/%s: parent protocol recorded coherence stats %+v",
				r.Kernel, r.Scenario, r.Schedule, r.Protocol, r.Coherence)
		}
		// Hybrid adaptation signatures per kernel: the classifier must
		// tag the pattern each kernel embodies, and falseshare must pay
		// for at least one dominant-writer migration.
		if r.Protocol == "hybrid" {
			co := r.Coherence
			switch r.Kernel {
			case "prodcons":
				if co.PagesProducerConsumer == 0 {
					t.Errorf("prodcons/%s: hybrid classified no producer-consumer pages: %+v", r.Scenario, co)
				}
			case "falseshare":
				if co.PagesFalselyShared == 0 || co.HomeMigrationBytes == 0 {
					t.Errorf("falseshare/%s: hybrid census %+v, want falsely-shared pages and paid migrations", r.Scenario, co)
				}
			case "migratory":
				if co.PagesMigratory == 0 {
					t.Errorf("migratory/%s: hybrid classified no migratory pages: %+v", r.Scenario, co)
				}
			}
		}
	}
	// 4 scenarios x 3 schedules x 3 protocols + leave-join static triple.
	if want := 4*3*3 + 3; kernels["loop"] != want {
		t.Errorf("loop cells = %d, want %d", kernels["loop"], want)
	}
	// 4 non-adaptation scenarios x 3 protocols each.
	for _, k := range []string{"migratory", "prodcons", "falseshare"} {
		if want := 4 * 3; kernels[k] != want {
			t.Errorf("%s cells = %d, want %d", k, kernels[k], want)
		}
	}

	// The identical static loop must price identically across
	// protocols' shared machinery only when traffic patterns agree —
	// not asserted. But the same protocol under the same scenario must
	// be deterministic: re-run one cell and compare bit for bit.
	again, err := protoLoopRun(Options{Scale: 0.06}.withDefaults(), protoScenario{name: "homog"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Kernel == "loop" && r.Scenario == "homog" && r.Schedule == "static" && r.Protocol == "tmk" {
			if r.Time != again.Time || r.Bytes != again.Bytes || r.Messages != again.Messages {
				t.Errorf("static/homog/tmk not deterministic: (%v,%d,%d) vs (%v,%d,%d)",
					r.Time, r.Bytes, r.Messages, again.Time, again.Bytes, again.Messages)
			}
		}
	}
}

// TestReportRendersSortedJSON checks the -json report writer: records
// come back sorted by scenario with the schema stamped.
func TestReportRendersSortedJSON(t *testing.T) {
	rep := NewReport(Options{Scale: 0.06})
	rep.Add("b/later", simtime.Seconds(2), 20, 2)
	rep.Add("a/earlier", simtime.Seconds(1), 10, 1)
	path := t.TempDir() + "/bench.json"
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, `"schema": 4`) {
		t.Errorf("report missing schema stamp:\n%s", data)
	}
	// Run metadata (since schema 2): the worker-pool level and wall clock.
	if !strings.Contains(data, `"parallel": 1`) || !strings.Contains(data, `"wall_seconds"`) {
		t.Errorf("report missing schema-2 run metadata:\n%s", data)
	}
	if strings.Index(data, "a/earlier") > strings.Index(data, "b/later") {
		t.Errorf("records not sorted by scenario:\n%s", data)
	}
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
