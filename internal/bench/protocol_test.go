package bench

import (
	"os"
	"strings"
	"testing"

	"nowomp/internal/simtime"
)

// TestProtocolsMatrix runs the full protocol matrix at a small scale.
// Protocols() itself enforces the byte contract (HLRC beats Tmk on the
// migratory kernel in every scenario) and verifies every kernel
// result; here we additionally check the matrix shape and the
// mechanical signatures.
func TestProtocolsMatrix(t *testing.T) {
	rows, err := Protocols(Options{Scale: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	var loops, migs int
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s/%s/%s/%s not verified", r.Kernel, r.Scenario, r.Schedule, r.Protocol)
		}
		switch r.Kernel {
		case "loop":
			loops++
		case "migratory":
			migs++
		}
		// Mechanical signature: Tmk never pushes to homes, HLRC never
		// fetches diffs.
		if r.Protocol == "tmk" && r.Flushes != 0 {
			t.Errorf("%s/%s/%s: tmk recorded %d home flushes", r.Kernel, r.Scenario, r.Schedule, r.Flushes)
		}
		if r.Protocol == "hlrc" && r.Diffs != 0 {
			t.Errorf("%s/%s/%s: hlrc recorded %d diff fetches", r.Kernel, r.Scenario, r.Schedule, r.Diffs)
		}
	}
	// 4 scenarios x 3 schedules x 2 protocols + leave-join static pair.
	if want := 4*3*2 + 2; loops != want {
		t.Errorf("loop cells = %d, want %d", loops, want)
	}
	// 4 non-adaptation scenarios x 2 protocols.
	if want := 4 * 2; migs != want {
		t.Errorf("migratory cells = %d, want %d", migs, want)
	}

	// The identical static loop must price identically across
	// protocols' shared machinery only when traffic patterns agree —
	// not asserted. But the same protocol under the same scenario must
	// be deterministic: re-run one cell and compare bit for bit.
	again, err := protoLoopRun(Options{Scale: 0.06}.withDefaults(), protoScenario{name: "homog"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Kernel == "loop" && r.Scenario == "homog" && r.Schedule == "static" && r.Protocol == "tmk" {
			if r.Time != again.Time || r.Bytes != again.Bytes || r.Messages != again.Messages {
				t.Errorf("static/homog/tmk not deterministic: (%v,%d,%d) vs (%v,%d,%d)",
					r.Time, r.Bytes, r.Messages, again.Time, again.Bytes, again.Messages)
			}
		}
	}
}

// TestReportRendersSortedJSON checks the -json report writer: records
// come back sorted by scenario with the schema stamped.
func TestReportRendersSortedJSON(t *testing.T) {
	rep := NewReport(Options{Scale: 0.06})
	rep.Add("b/later", simtime.Seconds(2), 20, 2)
	rep.Add("a/earlier", simtime.Seconds(1), 10, 1)
	path := t.TempDir() + "/bench.json"
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, `"schema": 3`) {
		t.Errorf("report missing schema stamp:\n%s", data)
	}
	// Run metadata (since schema 2): the worker-pool level and wall clock.
	if !strings.Contains(data, `"parallel": 1`) || !strings.Contains(data, `"wall_seconds"`) {
		t.Errorf("report missing schema-2 run metadata:\n%s", data)
	}
	if strings.Index(data, "a/earlier") > strings.Index(data, "b/later") {
		t.Errorf("records not sorted by scenario:\n%s", data)
	}
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
