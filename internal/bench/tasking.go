package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/omp"
	"nowomp/internal/shmem"
	"nowomp/internal/simtime"
)

// The tasking experiment prices the claim of the related tasking work
// (and section 7's outlook): on a DSM, the scheduler itself costs
// traffic, and which scheduler wins depends on the workload's shape.
// A synthetic loop of N items runs under Static, Dynamic and Guided
// loop schedules and as a recursive task tree at matched granularity:
//
//   - uniform: every item costs one unit. A coarse-chunk Dynamic
//     schedule claims a handful of chunks cheaply; tasking pays steal
//     round-trips and release/acquire consistency that buy nothing.
//   - skewed: a hash-scattered 2% of items cost 100 units. Balancing
//     now needs fine granularity, which under Dynamic means thousands
//     of lock-protected counter claims — each a priced lock handoff
//     and counter-page diff fetch — while the task tree still ships
//     only tens of subtree closures.
//
// So tasking loses the uniform workload — the steal round-trips and
// release/acquire flushes buy nothing a coarse static chunk would not —
// and wins the skewed one by an order of magnitude. One nuance the
// curves record: the uniform gap closes as the team grows, because
// Dynamic's claims serialise through one lock (cost grows with the
// claim count) while steals from distinct victims overlap in virtual
// time. The committed curves in docs/tasking-bench.md record both
// regimes.

// TaskingRow is one measured point of the comparison.
type TaskingRow struct {
	Workload string
	Procs    int
	// Construct times (virtual), init excluded.
	Static, Dynamic, Guided, Tasks simtime.Seconds
	// Work-phase traffic of the Dynamic and Tasks variants;
	// TasksBytes/TasksMessages are the exact fabric counts behind
	// TasksMB (the -json report records them).
	DynamicMB, TasksMB float64
	TasksBytes         int64
	TasksMessages      int64
	// Steals performed by the task variant.
	Steals int64
}

// taskingUnit is the per-unit compute charge of the synthetic item.
var taskingUnit = simtime.Micros(40)

// taskingHeavy deterministically marks ~2% of items as 100x items,
// scattered by a splitmix-style hash so no contiguous chunk is safe.
func taskingHeavy(i int) bool {
	h := uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h%50 == 0
}

func taskingWeight(i int, skewed bool) int {
	if skewed && taskingHeavy(i) {
		return 100
	}
	return 1
}

// taskingN picks the item count for the configured scale. The floor
// keeps one-chunk-per-process partitions page-aligned (512 float64 per
// page) up to 8 processes.
func taskingN(scale float64) int {
	n := 1 << 12
	for float64(n) < 1<<14*scale {
		n *= 2
	}
	return n
}

// Tasking runs the comparison for both workloads across team sizes.
// Points are independent runs and fan out across Options.Parallel
// workers.
func Tasking(opt Options) ([]TaskingRow, error) {
	opt = opt.withDefaults()
	n := taskingN(opt.Scale)
	type cell struct {
		workload string
		procs    int
	}
	var cells []cell
	for _, workload := range []string{"uniform", "skewed"} {
		for _, procs := range []int{2, 4, 8} {
			if procs > opt.Hosts {
				continue
			}
			cells = append(cells, cell{workload, procs})
		}
	}
	rows := make([]TaskingRow, len(cells))
	err := opt.runMatrix("tasking", len(cells), func(i int) error {
		row, err := taskingPoint(cells[i].workload, n, cells[i].procs, opt.Hosts)
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// taskingPoint measures all four variants at one (workload, procs).
func taskingPoint(workload string, n, procs, hosts int) (TaskingRow, error) {
	skewed := workload == "skewed"
	row := TaskingRow{Workload: workload, Procs: procs}

	// Granularities. The Dynamic chunk is programmer-tuned per
	// workload: uniform work wants one coarse chunk per process (each
	// claims once, writes its own pages, and the lock protocol has
	// nothing to thrash); skewed work needs fine granularity so no
	// chunk strands several 100x items behind one process — and
	// fine-grained claiming is where the DSM prices the counter lock
	// handoff and the page invalidations of every release interval.
	// The task tree is deliberately workload-oblivious: it always
	// splits down to the fine leaf, which is its virtue on skew (the
	// imbalance is absorbed by tens of steals, not thousands of
	// claims) and its waste on uniform work (the steal and
	// release/acquire traffic buys nothing a static chunk would not).
	fine := 16

	chunk := max(fine, n/procs)
	if skewed {
		chunk = fine
	}
	leaf := 8

	type traffic struct {
		bytes, msgs int64
	}
	measure := func(f func(rt *omp.Runtime, out *shmem.Float64Array) (int64, error)) (simtime.Seconds, traffic, int64, error) {
		rt, err := omp.New(omp.Config{Hosts: hosts, Procs: procs})
		if err != nil {
			return 0, traffic{}, 0, err
		}
		out, err := omp.Alloc[float64](rt, "tasking.out", n)
		if err != nil {
			return 0, traffic{}, 0, err
		}
		rt.For("tasking.init", 0, n, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			out.WriteRange(p.Mem(), lo, buf)
		})
		t0 := rt.Now()
		net0 := rt.Cluster().Fabric().Snapshot()
		steals, err := f(rt, out)
		if err != nil {
			return 0, traffic{}, 0, err
		}
		elapsed := rt.Now() - t0
		window := rt.Cluster().Fabric().Snapshot().Sub(net0)
		tr := traffic{bytes: window.TotalBytes(), msgs: window.TotalMessages()}
		// Verify the work happened exactly once per item.
		mp := rt.MasterProc()
		buf := make([]float64, n)
		out.ReadRange(mp.Mem(), 0, n, buf)
		for i, v := range buf {
			if want := float64(taskingWeight(i, skewed)); v != want {
				return 0, traffic{}, 0, fmt.Errorf("bench: tasking %s item %d = %g, want %g", workload, i, v, want)
			}
		}
		return elapsed, tr, steals, nil
	}

	item := func(p *omp.Proc, out *shmem.Float64Array, lo, hi int) {
		buf := make([]float64, hi-lo)
		units := 0
		for i := lo; i < hi; i++ {
			w := taskingWeight(i, skewed)
			buf[i-lo] = float64(w)
			units += w
		}
		out.WriteRange(p.Mem(), lo, buf)
		p.ChargeUnits(units, taskingUnit)
	}

	loop := func(opts ...omp.ForOption) func(rt *omp.Runtime, out *shmem.Float64Array) (int64, error) {
		return func(rt *omp.Runtime, out *shmem.Float64Array) (int64, error) {
			rt.For("tasking.work", 0, n, func(p *omp.Proc, lo, hi int) {
				item(p, out, lo, hi)
			}, opts...)
			return 0, nil
		}
	}

	var err error
	if row.Static, _, _, err = measure(loop()); err != nil {
		return row, err
	}
	var dynTr traffic
	if row.Dynamic, dynTr, _, err = measure(loop(omp.WithSchedule(omp.Dynamic, chunk))); err != nil {
		return row, err
	}
	row.DynamicMB = float64(dynTr.bytes) / 1e6
	if row.Guided, _, _, err = measure(loop(omp.WithSchedule(omp.Guided, fine))); err != nil {
		return row, err
	}

	tasks := func(rt *omp.Runtime, out *shmem.Float64Array) (int64, error) {
		var rec func(tp *omp.TaskProc, lo, hi int)
		rec = func(tp *omp.TaskProc, lo, hi int) {
			if hi-lo <= leaf {
				item(tp.Proc, out, lo, hi)
				return
			}
			mid := lo + (hi-lo)/2
			tp.Spawn(func(c *omp.TaskProc) { rec(c, lo, mid) })
			tp.Spawn(func(c *omp.TaskProc) { rec(c, mid, hi) })
			tp.TaskWait()
		}
		stats := rt.Tasks("tasking.work", func(tp *omp.TaskProc) { rec(tp, 0, n) })
		return stats.Steals, nil
	}
	var taskTr traffic
	if row.Tasks, taskTr, row.Steals, err = measure(tasks); err != nil {
		return row, err
	}
	row.TasksBytes, row.TasksMessages = taskTr.bytes, taskTr.msgs
	row.TasksMB = float64(taskTr.bytes) / 1e6
	return row, nil
}

// FormatTasking renders the comparison.
func FormatTasking(rows []TaskingRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Tasking vs loop schedules on uniform and skewed work")
	fmt.Fprintln(&b, "(virtual construct time; traffic of the two claim-based variants)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tprocs\tstatic\tdynamic\tguided\ttasks\tdyn MB\ttask MB\tsteals\ttasks vs dynamic")
	for _, r := range rows {
		verdict := "loses"
		if r.Tasks < r.Dynamic {
			verdict = "wins"
		}
		fmt.Fprintf(w, "%s\t%d\t%.3fs\t%.3fs\t%.3fs\t%.3fs\t%.3f\t%.3f\t%d\t%s\n",
			r.Workload, r.Procs, float64(r.Static), float64(r.Dynamic),
			float64(r.Guided), float64(r.Tasks), r.DynamicMB, r.TasksMB, r.Steals, verdict)
	}
	w.Flush()
	return b.String()
}
