package bench

import (
	"math"
	"strings"
	"testing"

	"nowomp/internal/simtime"
)

// tiny keeps unit-test runs fast; experiment shapes are asserted where
// they are robust at small scale, mechanics everywhere.
func tiny() Options { return Options{Scale: 0.06, Hosts: 10} }

func TestTable1ShapesAndParity(t *testing.T) {
	rows, err := Table1(tiny(), []int{4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byApp := map[string]map[int]Table1Row{}
	for _, r := range rows {
		if !r.TrafficIdentical {
			t.Errorf("%s/%d: adaptive and non-adaptive traffic differ", r.App, r.Procs)
		}
		if !r.ChecksumOK {
			t.Errorf("%s/%d: checksums differ between variants", r.App, r.Procs)
		}
		// The headline: no cost to supporting adaptivity.
		if r.AdaTime != r.StdTime {
			t.Errorf("%s/%d: adaptive %.3fs vs non-adaptive %.3fs, want identical",
				r.App, r.Procs, float64(r.AdaTime), float64(r.StdTime))
		}
		if byApp[r.App] == nil {
			byApp[r.App] = map[int]Table1Row{}
		}
		byApp[r.App][r.Procs] = r
	}
	for app, m := range byApp {
		if m[1].Pages != 0 || m[1].Diffs != 0 {
			t.Errorf("%s single-process run has traffic", app)
		}
		if m[4].Pages <= m[1].Pages {
			t.Errorf("%s: 4-proc run should fetch pages", app)
		}
	}
	// Diff column shape: only Jacobi diffs.
	if byApp["jacobi"][4].Diffs == 0 {
		t.Error("jacobi should fetch diffs at 4 procs")
	}
	for _, app := range []string{"gauss", "fft3d", "nbf"} {
		if byApp[app][4].Diffs != 0 {
			t.Errorf("%s fetched diffs, want 0", app)
		}
	}
	text := FormatTable1(rows, 0.06)
	if !strings.Contains(text, "jacobi") || !strings.Contains(text, "traffic identical") {
		t.Error("FormatTable1 output malformed")
	}
}

func TestTable2CellMechanics(t *testing.T) {
	if testing.Short() {
		t.Skip("half-minute experiment; skipped in -short (CI race) runs")
	}
	// One cell with a reduced pair count and scale floor: asserts the
	// methodology (events fire, average nodes fractional, cost finite
	// and positive).
	opt := tiny()
	opt.Pairs = 2
	cell, err := Table2Cell1(opt, "nbf", 4, "end")
	if err != nil {
		t.Fatal(err)
	}
	if cell.Adaptations < 2 {
		t.Fatalf("adaptations = %d, want >= 2", cell.Adaptations)
	}
	if cell.AvgNodes <= 3 || cell.AvgNodes >= 4 {
		t.Fatalf("avg nodes = %.3f, want in (3,4)", cell.AvgNodes)
	}
	if cell.AvgCost <= 0 {
		t.Fatalf("avg cost = %v, want positive", cell.AvgCost)
	}
	if cell.AdaTime <= cell.RefTime {
		t.Fatalf("adaptive run %.3fs must exceed baseline %.3fs", float64(cell.AdaTime), float64(cell.RefTime))
	}
	out := FormatTable2([]Table2Cell{cell})
	if !strings.Contains(out, "nbf") {
		t.Error("FormatTable2 output malformed")
	}
}

func TestFig3TheoryMatchesPaper(t *testing.T) {
	// The paper's Figure 3: up to 50% for node 7, up to 30% for node 3.
	if got := Fig3Theory(7, 8); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("theory(7) = %g, want 0.5", got)
	}
	if got := Fig3Theory(3, 8); math.Abs(got-16.0/56) > 1e-12 {
		t.Fatalf("theory(3) = %g, want %g", got, 16.0/56)
	}
	// The geometry is symmetric around the middle: a leave near either
	// end moves the most, the two middle slots (3 and 4 for t=8) tie
	// for the least.
	if got := Fig3Theory(4, 8); got != Fig3Theory(3, 8) || got >= Fig3Theory(7, 8) {
		t.Fatalf("middle leavers must tie for the least: theory(4) = %g", got)
	}
	if Fig3Theory(1, 8) <= Fig3Theory(3, 8) {
		t.Fatal("near-end leaver must move more than a middle one")
	}
}

func TestFig3MeasurementTracksTheory(t *testing.T) {
	rows, err := Fig3(tiny(), []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	f3, f7 := rows[0], rows[1]
	if f7.MovedFrac <= f3.MovedFrac {
		t.Fatalf("end leave moved %.1f%%, middle %.1f%%: end must move more",
			100*f7.MovedFrac, 100*f3.MovedFrac)
	}
	// Within a loose band of the geometric prediction (boundary pages
	// and rounding add noise at small scale).
	for _, r := range rows {
		if r.MovedFrac < 0.5*r.TheoryFrac || r.MovedFrac > 1.8*r.TheoryFrac {
			t.Errorf("slot %d: measured %.1f%% vs predicted %.1f%%, outside band",
				r.LeaverSlot, 100*r.MovedFrac, 100*r.TheoryFrac)
		}
	}
	if out := FormatFig3(rows); !strings.Contains(out, "leaver id") {
		t.Error("FormatFig3 output malformed")
	}
}

func TestMigrationWhatIf(t *testing.T) {
	rows, err := Migration(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Cost <= 0.7 {
			t.Errorf("%s: migration cost %.2fs must exceed the spawn time", r.App, float64(r.Cost))
		}
		// Full-scale extrapolation should land near the paper's value.
		if rel := math.Abs(float64(r.FullScaleCost-r.PaperCost)) / float64(r.PaperCost); rel > 0.25 {
			t.Errorf("%s: full-scale migration %.2fs vs paper %.2fs (off %.0f%%)",
				r.App, float64(r.FullScaleCost), float64(r.PaperCost), 100*rel)
		}
	}
	if out := FormatMigration(rows); !strings.Contains(out, "8.1 MB/s") {
		t.Error("FormatMigration output malformed")
	}
}

func TestMicroShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("half-minute experiment; skipped in -short (CI race) runs")
	}
	m, err := Micro(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// M3: cost grows with size.
	if len(m.SizeSweep) != 3 {
		t.Fatalf("size sweep = %d points", len(m.SizeSweep))
	}
	if !(m.SizeSweep[2].Cost > m.SizeSweep[0].Cost) {
		t.Errorf("M3: cost must grow with size: %+v", m.SizeSweep)
	}
	// M4: cost shrinks as processes grow.
	if len(m.ProcSweep) != 3 {
		t.Fatalf("proc sweep = %d points", len(m.ProcSweep))
	}
	if !(m.ProcSweep[0].Cost > m.ProcSweep[2].Cost) {
		t.Errorf("M4: leave from 4 procs must cost more than from 8: %+v", m.ProcSweep)
	}
	// M2: strong positive correlation with the bottleneck link.
	if m.LinkCorr < 0.7 {
		t.Errorf("M2: correlation(cost, max-link) = %.3f, want >= 0.7", m.LinkCorr)
	}
	// M5: simultaneous cheaper than successive, with fewer GCs.
	if !(m.Simultaneous.TogetherCost < m.Simultaneous.SuccessiveCost) {
		t.Errorf("M5: together %.3fs must beat successive %.3fs",
			float64(m.Simultaneous.TogetherCost), float64(m.Simultaneous.SuccessiveCost))
	}
	if m.Simultaneous.TogetherGCs >= m.Simultaneous.SuccessiveGCs {
		t.Errorf("M5: together used %d GCs, successive %d, want fewer",
			m.Simultaneous.TogetherGCs, m.Simultaneous.SuccessiveGCs)
	}
	// M6: the second leave of the same host moves fewer pages.
	if len(m.Repeated) < 2 || m.Repeated[1].PagesMoved >= m.Repeated[0].PagesMoved {
		t.Errorf("M6: repeated leaves should move fewer pages: %+v", m.Repeated)
	}
	if out := FormatMicro(m); !strings.Contains(out, "M5") {
		t.Error("FormatMicro output malformed")
	}
}

func TestAblationShapes(t *testing.T) {
	a, err := Ablation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// A1: both strategies measured; swap-last predicted to move more
	// data for a middle leave (why reassignment is an open problem).
	if len(a.Reassign) != 2 {
		t.Fatalf("reassign rows = %d", len(a.Reassign))
	}
	if a.Reassign[1].MovedFrac <= a.Reassign[0].MovedFrac {
		t.Errorf("A1: swap-last predicted %.1f%% vs shift-down %.1f%%: geometry says swap-last moves more",
			100*a.Reassign[1].MovedFrac, 100*a.Reassign[0].MovedFrac)
	}
	// A2: direct handoff relieves the master-link bottleneck.
	if len(a.Handoff) != 2 {
		t.Fatalf("handoff rows = %d", len(a.Handoff))
	}
	if !(a.Handoff[1].MaxLinkBytes < a.Handoff[0].MaxLinkBytes) {
		t.Errorf("A2: direct handoff max-link %d must beat via-master %d",
			a.Handoff[1].MaxLinkBytes, a.Handoff[0].MaxLinkBytes)
	}
	if !(a.Handoff[1].LeaveElapsed < a.Handoff[0].LeaveElapsed) {
		t.Errorf("A2: direct handoff %.3fs must beat via-master %.3fs",
			float64(a.Handoff[1].LeaveElapsed), float64(a.Handoff[0].LeaveElapsed))
	}
	// A3: urgency is monotone in the grace period.
	if len(a.Grace) != 4 {
		t.Fatalf("grace rows = %d", len(a.Grace))
	}
	if !a.Grace[0].Urgent {
		t.Error("A3: 0.5 s grace against a 10 s phase must go urgent")
	}
	if a.Grace[3].Urgent {
		t.Error("A3: 30 s grace must stay normal")
	}
	for i := 1; i < len(a.Grace); i++ {
		if a.Grace[i].Urgent && !a.Grace[i-1].Urgent {
			t.Error("A3: urgency must be monotone decreasing in grace")
		}
	}
	// Urgent leaves must cost more end to end than normal ones.
	if !(a.Grace[0].RunTime > a.Grace[3].RunTime) {
		t.Errorf("A3: urgent run %.2fs must exceed normal run %.2fs",
			float64(a.Grace[0].RunTime), float64(a.Grace[3].RunTime))
	}
	if out := FormatAblation(a); !strings.Contains(out, "A3") {
		t.Error("FormatAblation output malformed")
	}
}

func TestInterpolateRef(t *testing.T) {
	got := interpolateRef(7.5, 7, 8, 10, 8)
	if math.Abs(float64(got)-9) > 1e-12 {
		t.Fatalf("interpolate(7.5) = %v, want 9", got)
	}
	if interpolateRef(7, 7, 8, 10, 8) != 10 {
		t.Fatal("lower endpoint wrong")
	}
	if interpolateRef(5, 5, 5, 3, 99) != 3 {
		t.Fatal("degenerate interval wrong")
	}
}

func TestRefPiecewise(t *testing.T) {
	base := map[int]simtime.Seconds{6: 12, 7: 10, 8: 9}
	if got := refPiecewise(6.5, base); math.Abs(float64(got)-11) > 1e-12 {
		t.Fatalf("piecewise(6.5) = %v, want 11", got)
	}
	if got := refPiecewise(7.5, base); math.Abs(float64(got)-9.5) > 1e-12 {
		t.Fatalf("piecewise(7.5) = %v, want 9.5", got)
	}
}

func TestPearson(t *testing.T) {
	if got := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", got)
	}
	if got := pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %g", got)
	}
	if got := pearson([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Fatalf("degenerate correlation = %g, want 0", got)
	}
}
