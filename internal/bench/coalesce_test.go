package bench

import (
	"testing"

	"nowomp/internal/dsm"
)

// TestCoalescingGoldenTransparent is the differential gate on the
// metadata-coalescing tentpole: the full golden kernel matrix —
// adaptation, tasking and heterogeneous costs included — must produce
// bit-identical simulated times, fabric bytes, message counts and
// checksums with pruning force-enabled and disabled, and both must
// still equal the pre-refactor golden table. Coalescing is host-local
// bookkeeping; any divergence here means it leaked into the simulated
// protocol.
func TestCoalescingGoldenTransparent(t *testing.T) {
	restore := dsm.SetCoalescing(dsm.CoalesceOff)
	defer restore()
	off := goldenMatrix(t, dsm.Tmk)

	dsm.SetCoalescing(dsm.CoalesceForce)
	force := goldenMatrix(t, dsm.Tmk)

	if len(off) != len(force) {
		t.Fatalf("matrix sizes differ: off %d, force %d", len(off), len(force))
	}
	for i := range off {
		o, f := off[i], force[i]
		if o != f {
			t.Errorf("%s diverges between coalescing off and force:\n  off   (%.17g s, %d B, %d msgs, sum %.17g)\n  force (%.17g s, %d B, %d msgs, sum %.17g)",
				o.Name, o.Time, o.Bytes, o.Messages, o.Checksum, f.Time, f.Bytes, f.Messages, f.Checksum)
		}
	}
	// Both sides must also still be the pre-refactor system bit for bit.
	assertGolden(t, force)
}

// TestCoalescingHLRCTransparent runs the same force-vs-off diff under
// HLRC, whose release-log pruning is the only coalescing surface (it
// retains no diff chains).
func TestCoalescingHLRCTransparent(t *testing.T) {
	restore := dsm.SetCoalescing(dsm.CoalesceOff)
	defer restore()
	off := goldenMatrix(t, dsm.HLRC)

	dsm.SetCoalescing(dsm.CoalesceForce)
	force := goldenMatrix(t, dsm.HLRC)

	for i := range off {
		if off[i] != force[i] {
			t.Errorf("%s diverges between coalescing off and force under hlrc:\n  off   %+v\n  force %+v",
				off[i].Name, off[i], force[i])
		}
	}
}
