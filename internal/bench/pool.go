package bench

import "sync"

// The worker-pool driver for scenario matrices. Every cell of the
// table1/tasking/hetero/protocols experiments is an independent
// simulation — it owns its runtime, and with it its engine, fabric and
// cluster — and the engine makes each one bit-reproducible in
// isolation, so cells can fan out across real cores with no effect on
// the results. Cells write into index-addressed slots, so the
// assembled tables (and the -json report) are byte-identical at any
// parallelism level; only the wall clock changes.

// runCells executes n independent cells through a pool of at most
// parallel workers (parallel <= 1 runs them inline, in order). The
// returned error is the first failing cell's, by cell index, so error
// reporting is as deterministic as the results.
func runCells(parallel, n int, cell func(i int) error) error {
	if parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = cell(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
