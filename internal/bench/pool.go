package bench

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// The worker-pool driver for scenario matrices. Every cell of the
// table1/tasking/hetero/protocols experiments is an independent
// simulation — it owns its runtime, and with it its engine, fabric and
// cluster — and the engine makes each one bit-reproducible in
// isolation, so cells can fan out across real cores with no effect on
// the results. Cells write into index-addressed slots, so the
// assembled tables (and the -json report) are byte-identical at any
// parallelism level; only the wall clock changes.

// runCells executes n independent cells through a pool of at most
// parallel workers (parallel <= 1 runs them inline, in order). The
// returned error is the first failing cell's, by cell index, so error
// reporting is as deterministic as the results.
func runCells(parallel, n int, cell func(i int) error) error {
	if parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = cell(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// progressMeter emits one line per completed cell — count, elapsed
// wall time and a remaining-time estimate — so multi-minute scale-1.0
// matrices are monitorable. It writes to an out-of-band stream (the
// tool passes stderr) and never touches the experiment results, so the
// stdout/-json contract is unaffected. A nil meter is silent; ticks
// may arrive from any pool worker.
type progressMeter struct {
	w     io.Writer
	label string
	total int
	start time.Time

	mu   sync.Mutex
	done int
}

func newProgressMeter(w io.Writer, label string, total int) *progressMeter {
	if w == nil {
		return nil
	}
	return &progressMeter{w: w, label: label, total: total, start: time.Now()}
}

func (m *progressMeter) tick() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done++
	elapsed := time.Since(m.start)
	line := fmt.Sprintf("[bench] %s %d/%d cells, %s elapsed",
		m.label, m.done, m.total, fmtDuration(elapsed))
	if m.done < m.total {
		eta := time.Duration(float64(elapsed) / float64(m.done) * float64(m.total-m.done))
		line += fmt.Sprintf(", ~%s left", fmtDuration(eta))
	}
	fmt.Fprintln(m.w, line)
}

// fmtDuration renders a duration in whole seconds (1m32s style): ETA
// estimates are too coarse for sub-second digits to mean anything.
func fmtDuration(d time.Duration) string {
	return d.Round(time.Second).String()
}

// runMatrix is runCells with per-cell progress reporting to
// opt.Progress, under the experiment's label.
func (o Options) runMatrix(label string, n int, cell func(i int) error) error {
	m := newProgressMeter(o.Progress, label, n)
	return runCells(o.Parallel, n, func(i int) error {
		err := cell(i)
		m.tick()
		return err
	})
}
