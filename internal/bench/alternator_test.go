package bench

import (
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// TestAlternatorCycles drives the Table 2 scheduler against a synthetic
// program and checks the leave/join alternation invariants: at most
// one open cycle, every scheduled leave eventually fires, every
// departed host rejoins.
func TestAlternatorCycles(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 4, Procs: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat64("v", 1024); err != nil {
		t.Fatal(err)
	}
	alt := newAlternator([]simtime.Seconds{1, 5}, EndSlot)
	rt.SetForkHook(alt.hook)

	// Enough constructs, each long enough for spawns to mature.
	for i := 0; i < 20; i++ {
		rt.Parallel("tick", func(p *omp.Proc) { p.Charge(0.5) })
	}

	log := rt.AdaptLog()
	var leaves, joins int
	open := 0
	for _, ap := range log {
		for _, rec := range ap.Applied {
			switch rec.Event.Kind {
			case adapt.KindLeave:
				leaves++
				open++
			case adapt.KindJoin:
				joins++
				open--
			}
			if open < 0 || open > 1 {
				t.Fatalf("alternation broken: %d open cycles", open)
			}
		}
	}
	if leaves != 2 || joins != 2 {
		t.Fatalf("leaves = %d, joins = %d, want 2 and 2", leaves, joins)
	}
	if rt.NProcs() != 4 {
		t.Fatalf("final team = %d, want 4 (all rejoined)", rt.NProcs())
	}
}

// TestAlternatorNeverLeavesMaster: with a one-process team the slot
// function points at the master and the alternator must not fire.
func TestAlternatorNeverLeavesMaster(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 2, Procs: 1, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat64("v", 64); err != nil {
		t.Fatal(err)
	}
	alt := newAlternator([]simtime.Seconds{0}, EndSlot)
	rt.SetForkHook(alt.hook)
	for i := 0; i < 3; i++ {
		rt.Parallel("tick", func(p *omp.Proc) { p.Charge(0.1) })
	}
	if got := appliedEvents(rt); got != 0 {
		t.Fatalf("alternator fired %d events on a master-only team", got)
	}
}

// TestAvgTeamSizeWeighting checks the paper's "average number of
// nodes" computation directly.
func TestAvgTeamSizeWeighting(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 4, Procs: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat64("v", 64); err != nil {
		t.Fatal(err)
	}
	// No adaptations: the average is the team size.
	if got := avgTeamSize(rt, 4, 10); got != 4 {
		t.Fatalf("avg = %g, want 4", got)
	}
	// After a leave roughly halfway, the average sits between 3 and 4.
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 3, At: 0.9}); err != nil {
		t.Fatal(err)
	}
	rt.Parallel("a", func(p *omp.Proc) { p.Charge(1.0) })
	rt.Parallel("b", func(p *omp.Proc) { p.Charge(1.0) })
	got := avgTeamSize(rt, 4, rt.Now())
	if got <= 3 || got >= 4 {
		t.Fatalf("avg = %g, want in (3,4)", got)
	}
	// Degenerate end time.
	if got := avgTeamSize(rt, 4, 0); got != 4 {
		t.Fatalf("avg at t=0 = %g, want initial size", got)
	}
}

// TestForkLeaverSkipsInvalidSlots guards the micro harness.
func TestForkLeaverSkipsInvalidSlots(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 3, Procs: 3, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat64("v", 64); err != nil {
		t.Fatal(err)
	}
	fl := &forkLeaver{fires: map[int64][]int{1: {0, -1, 99, 2}}}
	rt.SetForkHook(fl.hook)
	rt.Parallel("a", func(p *omp.Proc) {})
	rt.Parallel("b", func(p *omp.Proc) {})
	if got := appliedEvents(rt); got != 1 {
		t.Fatalf("applied = %d, want 1 (only slot 2 is valid)", got)
	}
	if rt.NProcs() != 2 {
		t.Fatalf("team = %d, want 2", rt.NProcs())
	}
}
