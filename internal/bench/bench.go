// Package bench regenerates every table and figure of the evaluation
// section of Scherer et al. (PPoPP 1999): Table 1 (no-cost adaptivity
// and identical traffic without adapt events), Table 2 (average cost
// per adaptation), Figure 3 (data movement vs leaving process id), the
// section 5.3 migration what-if, the section 5.4 micro-analysis, and
// the ablations the paper motivates (id reassignment, leave handoff,
// grace periods).
//
// Experiments run at a configurable problem scale (1.0 = the paper's
// sizes); shapes — who wins, by what factor, where crossovers fall —
// are preserved across scales, which is what the reproduction checks.
package bench

import (
	"fmt"
	"io"

	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the linear problem scale; 1.0 reproduces the paper's
	// sizes. The default 0.15 keeps a full regeneration under a few
	// minutes of real time.
	Scale float64
	// Hosts is the workstation pool (default 10: the paper's 8 plus
	// spares for join events).
	Hosts int
	// Pairs is the number of leave/join pairs per adaptive run in
	// Table 2-style experiments (default 3).
	Pairs int
	// Grace is the leave grace period (default: the paper's 3 s).
	Grace simtime.Seconds
	// Machine applies a per-machine speed/load model to every
	// experiment run (nil = the homogeneous baseline); the tools'
	// -machines/-load flags populate it. The hetero experiment keeps
	// its built-in matrix on the baseline and runs the model as an
	// appended "custom" scenario instead.
	Machine *machine.Model
	// Links configures per-link overrides on each run's fabric (nil =
	// uniform links).
	Links func(*simnet.Fabric) error
	// Policy adds a load policy to the hetero experiment's custom
	// scenario (requires Machine load traces); other experiments ignore
	// it.
	Policy *adapt.LoadPolicy
	// Protocol selects the DSM coherence protocol every experiment runs
	// on (default Tmk). The protocols experiment keeps its own
	// tmk-vs-hlrc matrix regardless.
	Protocol dsm.ProtocolKind
	// Parallel is the worker-pool size for independent scenario cells
	// (<= 1 runs them sequentially). Each cell owns its engine, fabric
	// and cluster, and the deterministic engine makes every cell
	// bit-reproducible in isolation, so results are byte-identical at
	// any parallelism level — only the wall clock changes.
	Parallel int
	// Progress receives per-cell completion ticks with an ETA from the
	// matrix experiments (nil = silent). The tool passes stderr; the
	// stream is monitoring-only and never carries results.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.15
	}
	if o.Hosts <= 0 {
		o.Hosts = 10
	}
	if o.Pairs <= 0 {
		o.Pairs = 3
	}
	if o.Grace <= 0 {
		o.Grace = adapt.DefaultGrace
	}
	return o
}

// runApp executes one application at the given scale and team size.
func runApp(name string, scale float64, cfg omp.Config, hook func(*omp.Runtime)) (apps.Result, *omp.Runtime, error) {
	runner, ok := apps.RunnerByName(name)
	if !ok {
		return apps.Result{}, nil, fmt.Errorf("bench: unknown application %q", name)
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return apps.Result{}, nil, err
	}
	if hook != nil {
		rt.SetForkHook(hook)
	}
	res, err := runner.Run(rt, scale)
	return res, rt, err
}

// runAppOpt is runApp with the Options-level machine model and link
// overrides applied, the path every experiment shares so the tools'
// heterogeneity flags reach all of them.
func runAppOpt(opt Options, name string, scale float64, cfg omp.Config, hook func(*omp.Runtime)) (apps.Result, *omp.Runtime, error) {
	cfg.Machine = opt.Machine
	cfg.Links = opt.Links
	cfg.Protocol = opt.Protocol
	return runApp(name, scale, cfg, hook)
}

// avgTeamSize returns the time-weighted average team size of a run,
// reconstructed from the adaptation log. This is the paper's "average
// number of nodes", a real number in adaptive runs.
func avgTeamSize(rt *omp.Runtime, initialProcs int, end simtime.Seconds) float64 {
	if end <= 0 {
		return float64(initialProcs)
	}
	size := float64(initialProcs)
	var last simtime.Seconds
	acc := 0.0
	for _, ap := range rt.AdaptLog() {
		t := ap.When
		if t > end {
			t = end
		}
		acc += size * float64(t-last)
		last = t
		size = float64(len(ap.TeamAfter))
	}
	acc += size * float64(end-last)
	return acc / float64(end)
}

// interpolateRef computes the paper's reference runtime for a
// fractional average node count nbar in (nlo, nhi) by linearly
// interpolating the non-adaptive runtimes tlo (at nlo nodes) and thi
// (at nhi nodes).
func interpolateRef(nbar float64, nlo, nhi int, tlo, thi simtime.Seconds) simtime.Seconds {
	if nhi == nlo {
		return tlo
	}
	frac := (nbar - float64(nlo)) / float64(nhi-nlo)
	return tlo + simtime.Seconds(frac)*(thi-tlo)
}

// alternator drives the Table 2 schedule: a leave of a chosen process
// slot at each scheduled instant, with the departed host rejoining
// right after the leave is applied, so adaptations alternate
// leave/join with at most one event per adaptation point.
type alternator struct {
	// leaveAt are the virtual instants of the leaves, ascending.
	leaveAt []simtime.Seconds
	// slot picks the leaving process slot given the team size.
	slot func(teamSize int) int

	next          int
	departed      dsm.HostID // host whose leave/rejoin cycle is open; -1 when none
	joinSubmitted bool
}

func newAlternator(leaveAt []simtime.Seconds, slot func(int) int) *alternator {
	return &alternator{leaveAt: leaveAt, slot: slot, departed: -1}
}

// hook runs at every fork (adaptation point) on the master goroutine.
func (a *alternator) hook(rt *omp.Runtime) {
	now := rt.Now()
	if a.departed >= 0 {
		active := rt.Cluster().Host(a.departed).Active()
		switch {
		case !a.joinSubmitted && !active:
			// The leave has been applied; start the rejoin. The join
			// matures after the spawn lead time.
			if err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: a.departed, At: now}); err == nil {
				a.joinSubmitted = true
			}
		case a.joinSubmitted && active:
			// Cycle complete: team is back at full strength.
			a.departed = -1
			a.joinSubmitted = false
		}
		return // at most one open cycle at a time
	}
	if a.next >= len(a.leaveAt) || now < a.leaveAt[a.next] {
		return
	}
	team := rt.Team()
	slot := a.slot(len(team))
	if slot < 0 || slot >= len(team) || team[slot] == 0 {
		return // never leave the master
	}
	host := team[slot]
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: host, At: now}); err != nil {
		return
	}
	a.departed = host
	a.next++
}

// appliedEvents counts the adapt events recorded in the run.
func appliedEvents(rt *omp.Runtime) int {
	n := 0
	for _, ap := range rt.AdaptLog() {
		n += len(ap.Applied)
	}
	return n
}
