package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// AblationResult collects the design-choice experiments that section 7
// of the paper motivates as future work: process-id reassignment
// strategies, relieving the leave-via-master bottleneck, and grace-
// period tuning.
type AblationResult struct {
	Reassign []ReassignRow
	Handoff  []HandoffRow
	Grace    []GraceRow
}

// ReassignRow compares id-reassignment strategies for a middle leave.
type ReassignRow struct {
	Strategy  string
	Cost      simtime.Seconds
	MovedFrac float64
}

// HandoffRow compares leave-state handoff strategies.
type HandoffRow struct {
	Strategy     string
	LeaveElapsed simtime.Seconds
	MaxLinkBytes int64
}

// GraceRow is one point of the grace-period sweep: whether the leave
// went urgent and what it cost end to end.
type GraceRow struct {
	Grace     simtime.Seconds
	Urgent    bool
	RunTime   simtime.Seconds
	Migration simtime.Seconds // image-transfer cost, zero for normal leaves
}

// Ablation runs all three ablations.
func Ablation(opt Options) (AblationResult, error) {
	opt = opt.withDefaults()
	var out AblationResult
	var err error
	if out.Reassign, err = reassignAblation(opt); err != nil {
		return out, err
	}
	if out.Handoff, err = handoffAblation(opt); err != nil {
		return out, err
	}
	if out.Grace, err = graceAblation(opt); err != nil {
		return out, err
	}
	return out, nil
}

// reassignAblation measures a middle leave from 8 Jacobi processes
// under both id-reassignment strategies. Shift-down moves the paper's
// ~30% of the data space; swap-last relocates the end process's whole
// partition into the hole, which the geometry predicts is *worse* —
// reproducing why the paper calls better reassignment an open problem.
func reassignAblation(opt Options) ([]ReassignRow, error) {
	var rows []ReassignRow
	for _, strat := range []adapt.ReassignStrategy{adapt.ShiftDown, adapt.SwapLast} {
		base := map[int]simtime.Seconds{}
		for _, n := range []int{7, 8} {
			res, _, err := runAppOpt(opt, "jacobi", opt.Scale, omp.Config{Hosts: opt.Hosts, Procs: n}, nil)
			if err != nil {
				return nil, err
			}
			base[n] = res.Time
		}
		fl := &forkLeaver{fires: map[int64][]int{8: {MiddleSlot(8)}}}
		res, rt, err := runAppOpt(opt, "jacobi", opt.Scale, omp.Config{
			Hosts: opt.Hosts, Procs: 8, Adaptive: true, Grace: opt.Grace, Reassign: strat,
		}, fl.hook)
		if err != nil {
			return nil, err
		}
		nbar := avgTeamSize(rt, 8, res.Time)
		cost := res.Time - interpolateRef(nbar, 7, 8, base[7], base[8])
		log := rt.AdaptLog()
		if len(log) != 1 {
			return nil, fmt.Errorf("bench: reassign ablation fired %d adaptations", len(log))
		}
		rows = append(rows, ReassignRow{
			Strategy:  strat.String(),
			Cost:      cost,
			MovedFrac: movedFraction(strat, MiddleSlot(8), 8),
		})
	}
	return rows, nil
}

// movedFraction predicts the re-partitioned data fraction for a leave
// of the given slot under each strategy (block partition geometry).
func movedFraction(s adapt.ReassignStrategy, slot, t int) float64 {
	if s == adapt.ShiftDown {
		return Fig3Theory(slot, t)
	}
	// Swap-last: hosts keep their slots except the last host, which
	// fills the hole.
	tn := t - 1
	frac := 0.0
	for p := 0; p < tn; p++ {
		newLo, newHi := float64(p)/float64(tn), float64(p+1)/float64(tn)
		var oldLo, oldHi float64
		switch {
		case p == slot: // the relocated end host
			oldLo, oldHi = float64(t-1)/float64(t), 1
		default:
			oldLo, oldHi = float64(p)/float64(t), float64(p+1)/float64(t)
		}
		lo := maxf(newLo, oldLo)
		hi := minf(newHi, oldHi)
		overlap := 0.0
		if hi > lo {
			overlap = hi - lo
		}
		frac += (newHi - newLo) - overlap
	}
	return frac
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// handoffAblation measures the leave's state-transfer under the
// paper's via-master algorithm versus the direct-handoff improvement
// it suggests: spreading the leaver's pages over the remaining hosts
// relieves the master-link bottleneck.
func handoffAblation(opt Options) ([]HandoffRow, error) {
	var rows []HandoffRow
	for _, strat := range []dsm.LeaveStrategy{dsm.LeaveViaMaster, dsm.LeaveDirectHandoff} {
		fl := &forkLeaver{fires: map[int64][]int{8: {EndSlot(8)}}}
		_, rt, err := runAppOpt(opt, "jacobi", opt.Scale, omp.Config{
			Hosts: opt.Hosts, Procs: 8, Adaptive: true, Grace: opt.Grace, LeaveStrategy: strat,
		}, fl.hook)
		if err != nil {
			return nil, err
		}
		log := rt.AdaptLog()
		if len(log) != 1 {
			return nil, fmt.Errorf("bench: handoff ablation fired %d adaptations", len(log))
		}
		rows = append(rows, HandoffRow{
			Strategy:     strat.String(),
			LeaveElapsed: log[0].Elapsed,
			MaxLinkBytes: log[0].WindowMaxLink,
		})
	}
	return rows, nil
}

// graceAblation sweeps the grace period against a fixed 10 s parallel
// phase with a leave raised 1 s in: short grace periods force urgent
// leaves (migration + multiplexing), long ones allow a normal leave at
// the phase boundary — Figure 2's trichotomy made quantitative.
func graceAblation(opt Options) ([]GraceRow, error) {
	var rows []GraceRow
	for _, grace := range []simtime.Seconds{0.5, 2, 5, 30} {
		rt, err := omp.New(omp.Config{Hosts: 4, Procs: 3, Adaptive: true, Grace: grace})
		if err != nil {
			return nil, err
		}
		a, err := omp.Alloc[float64](rt, "work", 64*1024)
		if err != nil {
			return nil, err
		}
		rt.For("warm", 0, a.Len(), func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			for i := range buf {
				buf[i] = 1
			}
			a.WriteRange(p.Mem(), lo, buf)
		})
		if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: rt.Now() + 1}); err != nil {
			return nil, err
		}
		rt.Parallel("long-phase", func(p *omp.Proc) { p.Charge(10) })
		rt.Parallel("after", func(p *omp.Proc) {})

		log := rt.AdaptLog()
		if len(log) != 1 || len(log[0].Applied) != 1 {
			return nil, fmt.Errorf("bench: grace sweep %v fired %d adaptations", grace, len(log))
		}
		rec := log[0].Applied[0]
		row := GraceRow{Grace: grace, Urgent: rec.Urgent, RunTime: rt.Now()}
		if rec.Plan != nil {
			row.Migration = rec.Plan.Cost
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders the three ablations.
func FormatAblation(a AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation A1: id reassignment for a middle leave (8-process Jacobi)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tcost\tpredicted moved fraction")
	for _, r := range a.Reassign {
		fmt.Fprintf(w, "%s\t%.3fs\t%.1f%%\n", r.Strategy, float64(r.Cost), 100*r.MovedFrac)
	}
	w.Flush()

	b.WriteString("\nAblation A2: leave state handoff (8-process Jacobi, end leave)\n")
	w = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tleave elapsed\tmax-link bytes")
	for _, r := range a.Handoff {
		fmt.Fprintf(w, "%s\t%.3fs\t%d\n", r.Strategy, float64(r.LeaveElapsed), r.MaxLinkBytes)
	}
	w.Flush()

	b.WriteString("\nAblation A3: grace-period sweep (leave 1 s into a 10 s phase)\n")
	w = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "grace\turgent\trun time\tmigration cost")
	for _, r := range a.Grace {
		fmt.Fprintf(w, "%.1fs\t%v\t%.2fs\t%.2fs\n", float64(r.Grace), r.Urgent, float64(r.RunTime), float64(r.Migration))
	}
	w.Flush()
	return b.String()
}
