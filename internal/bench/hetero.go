package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/adapt"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// The heterogeneity matrix exercises the per-machine/per-link cost
// model end to end: a uniform synthetic loop (every item costs one
// unit, so any divergence between schedules is caused by the machines,
// not the workload) runs across a matrix of NOW shapes under Static,
// Dynamic and Guided schedules.
//
//   - homog:        the paper's uniform switched LAN (nil model).
//   - unit-factors: an explicit all-1.0 model and explicit unit link
//     scales. Hetero() fails unless this reproduces homog bit for bit —
//     the refactor's core contract, enforced at bench time.
//   - mixed-speed:  half the team at half CPU speed. Static is pinned
//     to the slowest block; Dynamic and Guided let fast machines claim
//     more chunks.
//   - one-loaded:   one machine carries background load 2.0 (slowdown
//     3x) for the whole run.
//   - slow-link:    the master<->machine-3 pair at 4x latency and a
//     quarter bandwidth; compute is untouched but machine 3 pays more
//     for every fault, barrier and claim.
//   - flash-load:   a load spike on machine 3 sized relative to the
//     baseline runtime, with adapt events derived by a LoadPolicy: the
//     machine leaves once the spike outlives the dwell and rejoins
//     after it ends — the paper's transparent-adaptivity story closed
//     end to end, with no hand-written schedule.
//
// The committed curves live in docs/hetero-bench.md.

// HeteroRow is one (scenario, schedule) measurement.
type HeteroRow struct {
	Scenario string
	Schedule string
	// Time is the virtual work-loop time (init excluded); MB the
	// work-loop traffic, with Bytes/Messages the exact counts the
	// -json report records.
	Time     simtime.Seconds
	MB       float64
	Bytes    int64
	Messages int64
	// Leaves and Joins count policy-driven adaptations in the run.
	Leaves, Joins int
	// Verified records that every item was computed exactly once.
	Verified bool
}

// heteroUnit is the per-item compute charge of the synthetic loop.
var heteroUnit = simtime.Micros(40)

// heteroScenario describes one NOW shape.
type heteroScenario struct {
	name   string
	model  func(hosts int) *machine.Model
	links  func(*simnet.Fabric) error
	policy *adapt.LoadPolicy
}

// heteroProcs is the team size of the matrix: four processes leave
// room in the default 10-host pool for rejoin spares.
const heteroProcs = 4

// heteroDims picks item count and sweep count for the configured
// scale; the sweeps give the run enough adaptation points (and enough
// virtual seconds) for policy-driven events to mature mid-run.
func heteroDims(scale float64) (n, iters int) {
	n = 1 << 12
	for float64(n) < 1<<14*scale {
		n *= 2
	}
	iters = 40
	for float64(iters) < 150*scale {
		iters++
	}
	return n, iters
}

// Hetero runs the matrix. The flash-load scenario derives its spike
// and policy from the homogeneous Static baseline time, so the same
// shape reproduces at any scale.
func Hetero(opt Options) ([]HeteroRow, error) {
	opt = opt.withDefaults()
	if opt.Hosts <= heteroProcs {
		return nil, fmt.Errorf("bench: hetero needs more than %d hosts, got %d", heteroProcs, opt.Hosts)
	}

	// Baseline first: the flash-load scenario is sized from its time.
	base, err := heteroRun(opt, heteroScenario{name: "homog"}, omp.Static, 0)
	if err != nil {
		return nil, err
	}
	rows := []HeteroRow{base}

	scenarios := heteroScenarios(opt, base.Time)
	if opt.Machine != nil || opt.Links != nil || opt.Policy != nil {
		// The tools' -machines/-load/-links/-policy flags land here as a
		// custom scenario appended to the built-in matrix.
		custom := heteroScenario{name: "custom", links: opt.Links, policy: opt.Policy}
		if opt.Machine != nil {
			custom.model = func(int) *machine.Model { return opt.Machine }
		}
		if custom.policy != nil && opt.Machine == nil {
			return nil, fmt.Errorf("bench: a -policy needs -load traces to watch")
		}
		scenarios = append(scenarios, custom)
	}

	type cell struct {
		sc    heteroScenario
		sched omp.Schedule
	}
	var cells []cell
	for _, sc := range scenarios {
		for _, sched := range []omp.Schedule{omp.Static, omp.Dynamic, omp.Guided} {
			if sc.name == "homog" && sched == omp.Static {
				continue // already measured as the baseline
			}
			cells = append(cells, cell{sc, sched})
		}
	}
	cellRows := make([]HeteroRow, len(cells))
	err = opt.runMatrix("hetero", len(cells), func(i int) error {
		row, err := heteroRun(opt, cells[i].sc, cells[i].sched, 0)
		cellRows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, cellRows...)

	// Enforce the bit-identity contract: unit factors must reproduce
	// the baseline exactly, for every schedule. Under the old
	// goroutine-race loop runtime the claim-based schedules carried a
	// little real-time jitter in their fault traffic and compared only
	// within a tolerance; on the discrete-event engine every schedule
	// is fully deterministic, so any difference at all is a real
	// cost-model divergence.
	for _, r := range rows {
		if r.Scenario != "unit-factors" {
			continue
		}
		for _, b := range rows {
			if b.Scenario != "homog" || b.Schedule != r.Schedule {
				continue
			}
			if r.Time != b.Time || r.MB != b.MB {
				return nil, fmt.Errorf(
					"bench: unit-factors/%s diverged from homog: %.9fs vs %.9fs, %.6f MB vs %.6f MB",
					r.Schedule, float64(r.Time), float64(b.Time), r.MB, b.MB)
			}
		}
	}
	return rows, nil
}

// heteroScenarios builds the matrix for the given baseline time.
func heteroScenarios(opt Options, baseTime simtime.Seconds) []heteroScenario {
	spikeStart := baseTime * 0.2
	spikeEnd := baseTime * 0.6
	dwell := baseTime * 0.05
	policy := adapt.LoadPolicy{High: 2, Low: 0.5, Dwell: dwell}

	return []heteroScenario{
		{name: "homog"},
		{
			name: "unit-factors",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				for i := 0; i < hosts; i++ {
					m.SetSpeed(simnet.MachineID(i), 1)
				}
				return m
			},
			links: func(f *simnet.Fabric) error {
				f.SetDuplexScale(0, 1, 1, 1)
				return nil
			},
		},
		{
			name: "mixed-speed",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				m.SetSpeed(2, 0.5)
				m.SetSpeed(3, 0.5)
				return m
			},
		},
		{
			name: "one-loaded",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				tr, err := machine.NewTrace(machine.Step{At: 0, Load: 2})
				if err != nil {
					panic(err)
				}
				m.SetLoad(3, tr)
				return m
			},
		},
		{
			name: "slow-link",
			links: func(f *simnet.Fabric) error {
				f.SetDuplexScale(0, 3, 4, 0.25)
				return nil
			},
		},
		{
			name: "flash-load",
			model: func(hosts int) *machine.Model {
				m := machine.New(hosts)
				tr, err := machine.NewTrace(
					machine.Step{At: spikeStart, Load: 4},
					machine.Step{At: spikeEnd, Load: 0})
				if err != nil {
					panic(err)
				}
				m.SetLoad(3, tr)
				return m
			},
			policy: &policy,
		},
	}
}

// heteroRun measures one (scenario, schedule) cell. extraIters (tests
// only) stretches the run.
func heteroRun(opt Options, sc heteroScenario, sched omp.Schedule, extraIters int) (HeteroRow, error) {
	n, iters := heteroDims(opt.Scale)
	iters += extraIters
	row := HeteroRow{Scenario: sc.name, Schedule: sched.String()}

	var mm *machine.Model
	if sc.model != nil {
		mm = sc.model(opt.Hosts)
	}
	cfg := omp.Config{
		Hosts:   opt.Hosts,
		Procs:   heteroProcs,
		Machine: mm,
		Links:   sc.links,
	}
	if sc.policy != nil {
		cfg.Adaptive = true
		cfg.Grace = opt.Grace
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return row, err
	}
	if sc.policy != nil {
		if _, err := rt.ApplyLoadPolicy(*sc.policy); err != nil {
			return row, err
		}
	}

	out, err := omp.Alloc[float64](rt, "hetero.out", n)
	if err != nil {
		return row, err
	}
	rt.For("hetero.init", 0, n, func(p *omp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		out.WriteRange(p.Mem(), lo, buf)
	})

	var opts []omp.ForOption
	switch sched {
	case omp.Dynamic:
		opts = append(opts, omp.WithSchedule(omp.Dynamic, max(16, n/64)))
	case omp.Guided:
		opts = append(opts, omp.WithSchedule(omp.Guided, 16))
	}

	t0 := rt.Now()
	net0 := rt.Cluster().Fabric().Snapshot()
	for it := 0; it < iters; it++ {
		rt.For("hetero.work", 0, n, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			for i := range buf {
				buf[i] = 1
			}
			out.WriteRange(p.Mem(), lo, buf)
			p.ChargeUnits(hi-lo, heteroUnit)
		}, opts...)
	}
	row.Time = rt.Now() - t0
	window := rt.Cluster().Fabric().Snapshot().Sub(net0)
	row.Bytes = window.TotalBytes()
	row.Messages = window.TotalMessages()
	row.MB = float64(row.Bytes) / 1e6

	for _, ap := range rt.AdaptLog() {
		for _, rec := range ap.Applied {
			if rec.Event.Kind == adapt.KindLeave {
				row.Leaves++
			} else {
				row.Joins++
			}
		}
	}

	// Every item must have been written exactly once per sweep by the
	// last writer's schedule — the loop writes 1 unconditionally, so
	// verification checks presence, not accumulation.
	mp := rt.MasterProc()
	buf := make([]float64, n)
	out.ReadRange(mp.Mem(), 0, n, buf)
	row.Verified = true
	for i, v := range buf {
		if v != 1 {
			return row, fmt.Errorf("bench: hetero %s/%s item %d = %g, want 1", sc.name, sched, i, v)
		}
	}
	return row, nil
}

// FormatHetero renders the matrix.
func FormatHetero(rows []HeteroRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Heterogeneous NOW matrix: uniform loop under three schedules")
	fmt.Fprintln(&b, "(virtual work-loop time; leaves/joins are policy-driven adaptations)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tschedule\ttime\tMB\tleaves\tjoins\tverified")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3fs\t%.3f\t%d\t%d\t%v\n",
			r.Scenario, r.Schedule, float64(r.Time), r.MB, r.Leaves, r.Joins, r.Verified)
	}
	w.Flush()
	return b.String()
}
