package bench

import (
	"errors"
	"testing"
)

// TestParallelMatchesSequential pins the worker-pool contract (and the
// PR's acceptance criterion) in-tree: an experiment run with a
// parallel pool must produce row-for-row identical results to the
// sequential run. It also puts the concurrent fan-out under the race
// detector, which the CLI-driven CI gate does not.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := Tasking(Options{Scale: 0.06})
	if err != nil {
		t.Fatalf("sequential Tasking: %v", err)
	}
	par, err := Tasking(Options{Scale: 0.06, Parallel: 4})
	if err != nil {
		t.Fatalf("parallel Tasking: %v", err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d sequential, %d parallel", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs across parallelism levels:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
}

// TestRunCellsReportsFirstErrorByIndex: the pool's error is the first
// failing cell's in index order, whatever order the workers finish in.
func TestRunCellsReportsFirstErrorByIndex(t *testing.T) {
	boom2 := errors.New("cell 2 failed")
	boom5 := errors.New("cell 5 failed")
	err := runCells(3, 8, func(i int) error {
		switch i {
		case 2:
			return boom2
		case 5:
			return boom5
		}
		return nil
	})
	if err != boom2 {
		t.Fatalf("runCells error = %v, want the index-2 error", err)
	}
}
