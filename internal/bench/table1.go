package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// Table1Row is one row of the paper's Table 1: one application at one
// team size, run on both the non-adaptive base system and the adaptive
// system with no adapt events.
type Table1Row struct {
	App         string
	Procs       int
	SharedBytes int
	// StdTime and AdaTime are the runtimes of the non-adaptive and
	// adaptive variants.
	StdTime simtime.Seconds
	AdaTime simtime.Seconds
	// Traffic columns, from the adaptive run. Bytes is the exact
	// fabric count MB is derived from (the -json report records it).
	Pages    int64
	Bytes    int64
	MB       float64
	Messages int64
	Diffs    int64
	// TrafficIdentical is the paper's headline property: both variants
	// generate exactly the same network traffic.
	TrafficIdentical bool
	// ChecksumOK records that both runs matched the sequential
	// reference bit for bit.
	ChecksumOK bool
}

// Table1 reproduces Table 1: execution times and network traffic on
// the non-adaptive and adaptive systems with no adapt events, for each
// application at each team size. Cells are independent runs and fan
// out across Options.Parallel workers.
func Table1(opt Options, procCounts []int) ([]Table1Row, error) {
	opt = opt.withDefaults()
	if len(procCounts) == 0 {
		procCounts = []int{8, 4, 1}
	}
	type cell struct {
		app   string
		procs int
	}
	var cells []cell
	for _, app := range []string{"gauss", "jacobi", "fft3d", "nbf"} {
		for _, procs := range procCounts {
			cells = append(cells, cell{app, procs})
		}
	}
	rows := make([]Table1Row, len(cells))
	err := opt.runMatrix("table1", len(cells), func(i int) error {
		row, err := table1Row(opt, cells[i].app, cells[i].procs)
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func table1Row(opt Options, app string, procs int) (Table1Row, error) {
	if procs > opt.Hosts {
		return Table1Row{}, fmt.Errorf("bench: %d procs exceed the %d-host pool", procs, opt.Hosts)
	}
	std, _, err := runAppOpt(opt, app, opt.Scale, omp.Config{Hosts: opt.Hosts, Procs: procs}, nil)
	if err != nil {
		return Table1Row{}, fmt.Errorf("bench: %s/%d non-adaptive: %w", app, procs, err)
	}
	ada, _, err := runAppOpt(opt, app, opt.Scale, omp.Config{Hosts: opt.Hosts, Procs: procs, Adaptive: true, Grace: opt.Grace}, nil)
	if err != nil {
		return Table1Row{}, fmt.Errorf("bench: %s/%d adaptive: %w", app, procs, err)
	}
	return Table1Row{
		App:         app,
		Procs:       procs,
		SharedBytes: ada.SharedBytes,
		StdTime:     std.Time,
		AdaTime:     ada.Time,
		Pages:       ada.Pages,
		Bytes:       ada.Bytes,
		MB:          ada.MB(),
		Messages:    ada.Messages,
		Diffs:       ada.Diffs,
		TrafficIdentical: std.Pages == ada.Pages && std.Bytes == ada.Bytes &&
			std.Messages == ada.Messages && std.Diffs == ada.Diffs,
		ChecksumOK: std.Checksum == ada.Checksum,
	}, nil
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(rows []Table1Row, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: execution times and network traffic, no adapt events (scale %g)\n", scale)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "app\tprocs\tshared MB\tstd time\tadaptive time\tpages(4k)\tMB\tmessages\tdiffs\ttraffic identical\tverified")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.2fs\t%.2fs\t%d\t%.2f\t%d\t%d\t%v\t%v\n",
			r.App, r.Procs, float64(r.SharedBytes)/1e6,
			float64(r.StdTime), float64(r.AdaTime),
			r.Pages, r.MB, r.Messages, r.Diffs, r.TrafficIdentical, r.ChecksumOK)
	}
	w.Flush()
	return b.String()
}
