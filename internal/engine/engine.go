// Package engine implements the deterministic discrete-event
// scheduler at the heart of the simulated NOW runtime. Every simulated
// process — an OpenMP team process running a parallel construct, a
// task-region worker, a lock requester — runs as a coroutine: a real
// goroutine that executes only while it holds the engine's token and
// parks at every blocking point. Exactly one coroutine runs at any
// instant; when it parks or exits, the engine wakes the runnable
// (parked, wake-condition satisfied) proc with the lowest virtual
// time, breaking ties by proc id (the host id for team processes, the
// team slot for task workers) and then by registration order.
//
// The wake rule is the standard conservative discrete-event argument:
// the proc with the minimum virtual time can never be invalidated by
// an event from another proc (their clocks only move forward), so
// running it first is always safe and the system always makes
// progress. The consequence the runtime is built on: no simulated
// outcome — times, traffic, lock grant order — can depend on the Go
// scheduler, GOMAXPROCS or real-time interleaving, because the Go
// scheduler never gets to choose between two runnable simulated
// processes.
//
// # Dispatch is indexed, not scanned
//
// Elections pop a binary min-heap keyed by (wake instant, id,
// registration order) instead of re-evaluating every proc's wake
// condition per dispatch. A proc enters the heap when its condition
// first reports ready and stays there with that key until dispatched.
// Three mechanisms keep the heap truthful without global re-scans:
//
//   - Wait lists. A proc whose condition depends on a shared resource
//     parks on that resource's WaitList (lock queues, the task
//     region's scheduler state). Code that mutates the resource calls
//     Notify, which marks the listed procs for re-evaluation before
//     the next election. A notification is required whenever a
//     mutation can turn a parked proc's condition true or move its
//     wake instant earlier; spurious notifications are always safe.
//   - Pop revalidation. The heap top's condition is re-evaluated at
//     election: a condition that went false drops out of the heap
//     (the resource was consumed by a later grant), a wake instant
//     that drifted later (a parked clock advanced) re-sorts. This
//     covers every condition that can only be *invalidated* or
//     *delayed* by other procs' actions, with no notification needed.
//   - Polled parks. A plain Park with no wait list keeps the legacy
//     contract: its condition is re-evaluated before every election.
//     Used by tests and any caller that cannot name the resource it
//     waits on.
//
// The common "park then immediately re-elect the same proc" case — an
// uncontended lock claim in a dynamic loop, say — short-circuits in
// Park: if the parking proc's condition already holds and no heap
// entry precedes its key, it keeps the token with no channel
// round-trip and no election. This is exact, not heuristic: the
// outcome equals the full election's (asserted by a property test
// against a reference linear-scan implementation).
//
// If every live proc is parked and none can wake, the simulation
// cannot progress: the engine panics with a diagnostic naming each
// parked proc, its virtual clock and the reason it is waiting (the
// deadlock analogue of a hung pthread program, made loud and
// reproducible). A missed Notify surfaces the same way — loudly — and
// never as a silently different schedule.
//
// A panic — a proc's own, re-thrown by Run, or the deadlock
// diagnostic — abandons the engine: the remaining parked procs stay
// blocked on their resume channels for the life of the process, along
// with whatever their wake closures capture. The simulation is
// unrecoverable at that point; an embedder that recovers the panic
// must treat the runtime as dead and accept one leaked goroutine per
// parked proc.
package engine

import (
	"fmt"
	"runtime/debug"
	"strings"

	"nowomp/internal/simtime"
)

// WakeFunc reports whether a parked proc may resume and, if so, the
// virtual instant its pending action fires at (a lock request's
// request time, a steal's availability time, ...). It is evaluated by
// the engine while no other proc mutates shared state, so it may
// freely read state shared with other procs; it must not mutate
// anything. A nil WakeFunc means "always ready at the proc's own
// clock".
type WakeFunc func() (at simtime.Seconds, ok bool)

// Engine is one deterministic scheduler instance, driving the procs of
// one parallel construct or task region. It is single-use: create,
// register procs with Go, then Run until every proc has exited.
type Engine struct {
	procs   []*Proc
	running *Proc
	events  chan event
	live    int

	// heap holds the ready procs, a binary min-heap on
	// (key, id, order).
	heap []*Proc
	// polled holds the procs parked without a wait list; they are
	// re-evaluated before every election.
	polled []*Proc
	// recheck holds the procs flagged for re-evaluation (notified,
	// freshly parked, or polled), deduplicated by Proc.flagged.
	recheck []*Proc
}

type eventKind int

const (
	evParked eventKind = iota
	evExited
	evPanicked
)

// event is the proc-to-scheduler half of the coroutine handshake.
type event struct {
	p    *Proc
	kind eventKind
	pv   any // evPanicked: the wrapped panic
}

// Proc is one simulated process registered with an engine.
type Proc struct {
	e      *Engine
	name   string
	id     int
	order  int
	clk    *simtime.Clock
	resume chan struct{}

	parked bool
	done   bool
	reason string
	wake   WakeFunc
	wokeAt simtime.Seconds

	// key is the wake instant this proc is heaped under while ready.
	key simtime.Seconds
	// heapIdx / polledIdx / listIdx are the proc's positions in the
	// engine's ready heap, the polled set and its wait list; -1 when
	// absent.
	heapIdx   int
	polledIdx int
	list      *WaitList
	listIdx   int
	flagged   bool
}

// WaitList is the set of procs parked on one resource (a lock's
// waiters, a task region's idle workers). Code that mutates the
// resource calls Notify so the engine re-evaluates exactly those
// procs. The zero value is ready to use; a list may outlive the
// engines its procs parked on (a cluster-lifetime lock parking procs
// of successive constructs), because it holds only currently parked
// procs.
type WaitList struct {
	procs []*Proc
}

// Notify marks every proc parked on the list for re-evaluation before
// the next election. It must be called after any mutation that can
// turn a listed proc's wake condition true or move its wake instant
// earlier; calling it when nothing changed is harmless. Conditions
// that can only go false or move later need no notification — the
// election revalidates the heap top.
func (wl *WaitList) Notify() {
	for _, p := range wl.procs {
		p.e.flag(p)
	}
}

func (wl *WaitList) add(p *Proc) {
	p.list = wl
	p.listIdx = len(wl.procs)
	wl.procs = append(wl.procs, p)
}

func (wl *WaitList) remove(p *Proc) {
	i := p.listIdx
	last := len(wl.procs) - 1
	wl.procs[i] = wl.procs[last]
	wl.procs[i].listIdx = i
	wl.procs[last] = nil
	wl.procs = wl.procs[:last]
	p.list = nil
	p.listIdx = -1
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{events: make(chan event)}
}

// Go registers a proc and starts its coroutine. The coroutine begins
// parked ("start"), runnable at its clock's current instant, and first
// executes when the engine elects it; fn runs entirely under the
// engine's token. Go may be called before Run or by the currently
// running proc (a task region adding workers for a joined host).
func (e *Engine) Go(name string, id int, clk *simtime.Clock, fn func(*Proc)) *Proc {
	p := &Proc{
		e:         e,
		name:      name,
		id:        id,
		order:     len(e.procs),
		clk:       clk,
		resume:    make(chan struct{}),
		parked:    true,
		reason:    "start",
		heapIdx:   -1,
		polledIdx: -1,
		listIdx:   -1,
	}
	e.procs = append(e.procs, p)
	e.live++
	e.polledAdd(p)
	go func() {
		<-p.resume
		defer func() {
			if v := recover(); v != nil {
				e.events <- event{p: p, kind: evPanicked,
					pv: fmt.Sprintf("engine: %s panicked: %v\n%s", p.name, v, debug.Stack())}
				return
			}
			e.events <- event{p: p, kind: evExited}
		}()
		fn(p)
	}()
	return p
}

// Run drives the procs to completion: it repeatedly elects the
// runnable proc with the lowest (virtual time, id) and hands it the
// token until every proc has exited. The calling goroutine is the
// scheduler; it must not be one of the procs. A panic in a proc is
// re-thrown here with the proc's original stack attached.
func (e *Engine) Run() {
	for e.live > 0 {
		p := e.next()
		if p == nil {
			panic(e.deadlockMessage())
		}
		e.dispatch(p)
		p.resume <- struct{}{}
		ev := <-e.events
		e.running = nil
		switch ev.kind {
		case evParked:
			// The proc registered itself (wait list or polled set)
			// and flagged itself for evaluation before it sent the
			// event; nothing to do here.
		case evExited:
			ev.p.done = true
			e.live--
		case evPanicked:
			panic(ev.pv)
		}
	}
}

// next elects the runnable proc with the minimal (wake instant, id,
// registration order): polled procs are re-evaluated, pending
// notifications are applied, then the heap top is revalidated until
// it is truthful.
func (e *Engine) next() *Proc {
	for _, p := range e.polled {
		e.flag(p)
	}
	e.drain()
	for len(e.heap) > 0 {
		p := e.heap[0]
		at, ok := p.evalWake()
		if !ok {
			e.heapDelete(p)
			continue
		}
		if at != p.key {
			e.heapFix(p, at)
			continue
		}
		return p
	}
	return nil
}

// dispatch removes an elected proc from every ready/wait structure and
// hands it the token.
func (e *Engine) dispatch(p *Proc) {
	e.heapDelete(p)
	if p.polledIdx >= 0 {
		e.polledRemove(p)
	}
	if p.list != nil {
		p.list.remove(p)
	}
	p.parked = false
	p.wokeAt = p.key
	e.running = p
}

// flag queues a parked proc for re-evaluation before the next
// election, deduplicating repeat flags.
func (e *Engine) flag(p *Proc) {
	if p.flagged || p.done || !p.parked {
		return
	}
	p.flagged = true
	e.recheck = append(e.recheck, p)
}

// drain applies the queued re-evaluations: each flagged proc's wake
// condition decides whether it enters, moves within, or leaves the
// ready heap.
func (e *Engine) drain() {
	for len(e.recheck) > 0 {
		p := e.recheck[len(e.recheck)-1]
		e.recheck = e.recheck[:len(e.recheck)-1]
		p.flagged = false
		if p.done || !p.parked {
			continue
		}
		if at, ok := p.evalWake(); ok {
			if p.heapIdx >= 0 {
				if at != p.key {
					e.heapFix(p, at)
				}
			} else {
				e.heapPush(p, at)
			}
		} else if p.heapIdx >= 0 {
			e.heapDelete(p)
		}
	}
}

func (p *Proc) evalWake() (simtime.Seconds, bool) {
	if p.wake == nil {
		return p.clk.Now(), true
	}
	return p.wake()
}

// deadlockMessage names every parked proc, its clock and its wait
// reason: the diagnostic for a simulation that cannot progress.
func (e *Engine) deadlockMessage() string {
	var b strings.Builder
	b.WriteString("engine: deadlock: every proc is parked and none can wake")
	for _, p := range e.procs {
		if p.done {
			continue
		}
		fmt.Fprintf(&b, "\n  %s (id %d, clock %v) waiting on %s", p.name, p.id, p.clk.Now(), p.reason)
	}
	return b.String()
}

// Running returns the proc currently holding the token, or nil when
// the engine is between dispatches (or not running at all). Blocking
// primitives use it to discover the proc that must park: in the
// serialised engine, the caller of any runtime operation is exactly
// the running proc.
func (e *Engine) Running() *Proc { return e.running }

// Park blocks the calling proc until wake reports ready and the
// engine elects it, and returns the instant the wake fired at. reason
// is the wait description shown by the deadlock diagnostic. A nil
// wake means "ready at the proc's own clock". The condition is
// re-evaluated before every election; parks tied to a nameable
// resource should use ParkOn instead, which re-evaluates only when
// the resource's wait list is notified.
func (p *Proc) Park(reason string, wake WakeFunc) simtime.Seconds {
	return p.park(reason, wake, nil)
}

// ParkOn is Park for a proc whose wake condition depends on one
// shared resource: the proc registers on the resource's wait list and
// its condition is re-evaluated only when the list is notified (or
// when its heap entry is revalidated at an election). Every mutation
// that can make the condition true or move its instant earlier must
// Notify the list, or the engine may (loudly) report a deadlock.
func (p *Proc) ParkOn(wl *WaitList, reason string, wake WakeFunc) simtime.Seconds {
	return p.park(reason, wake, wl)
}

func (p *Proc) park(reason string, wake WakeFunc, wl *WaitList) simtime.Seconds {
	e := p.e
	p.reason = reason
	p.wake = wake
	// Fast path: the parking proc's condition already holds and no
	// ready proc precedes it, so the election it is about to trigger
	// would hand the token straight back. Keep the token: no channel
	// round-trip, no goroutine switch. The scheduler goroutine is
	// blocked in its event receive throughout, so mutating the ready
	// structures from here is safe — it is the same single thread of
	// control, handed over memory-visibly at the next event send.
	if e.running == p {
		if at, ok := p.evalWake(); ok {
			for _, q := range e.polled {
				e.flag(q)
			}
			e.drain()
			if !e.topBeats(at, p) {
				p.wokeAt = at
				return at
			}
		}
	}
	p.parked = true
	if wl != nil {
		wl.add(p)
	} else {
		e.polledAdd(p)
	}
	e.flag(p)
	e.events <- event{p: p, kind: evParked}
	<-p.resume
	return p.wokeAt
}

// topBeats reports whether the ready heap holds a proc that precedes
// (at, p.id, p.order) — i.e. whether an election now could elect
// someone other than p. The top's key may be stale; that can only
// cause a needless full election, never a wrong fast-path grant,
// because stale keys are either too small (the proc re-sorts later)
// or belong to conditions that went false (the proc drops out).
func (e *Engine) topBeats(at simtime.Seconds, p *Proc) bool {
	if len(e.heap) == 0 {
		return false
	}
	q := e.heap[0]
	if q.key != at {
		return q.key < at
	}
	if q.id != p.id {
		return q.id < p.id
	}
	return q.order < p.order
}

// ID returns the proc's tiebreak id.
func (p *Proc) ID() int { return p.id }

// SetID changes the proc's tiebreak id. The task runtime uses it when
// an adaptation reassigns team slots. Only the running proc (or the
// scheduler between dispatches) may call it.
func (p *Proc) SetID(id int) {
	p.id = id
	if p.heapIdx >= 0 {
		// The id is part of the heap key: re-insert under the new one.
		p.e.heapDelete(p)
		p.e.flag(p)
	}
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Clock returns the proc's virtual clock.
func (p *Proc) Clock() *simtime.Clock { return p.clk }

// heapLess orders ready procs by (wake instant, id, registration
// order) — the engine's full election key.
func (e *Engine) heapLess(a, b *Proc) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.order < b.order
}

func (e *Engine) heapPush(p *Proc, key simtime.Seconds) {
	p.key = key
	p.heapIdx = len(e.heap)
	e.heap = append(e.heap, p)
	e.siftUp(p.heapIdx)
}

func (e *Engine) heapDelete(p *Proc) {
	i := p.heapIdx
	last := len(e.heap) - 1
	e.heap[i] = e.heap[last]
	e.heap[i].heapIdx = i
	e.heap[last] = nil
	e.heap = e.heap[:last]
	p.heapIdx = -1
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
}

func (e *Engine) heapFix(p *Proc, key simtime.Seconds) {
	p.key = key
	e.siftDown(p.heapIdx)
	e.siftUp(p.heapIdx)
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[parent]) {
			return
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		small := i
		if l := 2*i + 1; l < n && e.heapLess(e.heap[l], e.heap[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && e.heapLess(e.heap[r], e.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		e.heapSwap(i, small)
		i = small
	}
}

func (e *Engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].heapIdx = i
	e.heap[j].heapIdx = j
}

func (e *Engine) polledAdd(p *Proc) {
	p.polledIdx = len(e.polled)
	e.polled = append(e.polled, p)
}

func (e *Engine) polledRemove(p *Proc) {
	i := p.polledIdx
	last := len(e.polled) - 1
	e.polled[i] = e.polled[last]
	e.polled[i].polledIdx = i
	e.polled[last] = nil
	e.polled = e.polled[:last]
	p.polledIdx = -1
}
