// Package engine implements the deterministic discrete-event
// scheduler at the heart of the simulated NOW runtime. Every simulated
// process — an OpenMP team process running a parallel construct, a
// task-region worker, a lock requester — runs as a coroutine: a real
// goroutine that executes only while it holds the engine's token and
// parks at every blocking point. Exactly one coroutine runs at any
// instant; when it parks or exits, the engine wakes the runnable
// (parked, wake-condition satisfied) proc with the lowest virtual
// time, breaking ties by proc id (the host id for team processes, the
// team slot for task workers) and then by registration order.
//
// The wake rule is the standard conservative discrete-event argument:
// the proc with the minimum virtual time can never be invalidated by
// an event from another proc (their clocks only move forward), so
// running it first is always safe and the system always makes
// progress. The consequence the runtime is built on: no simulated
// outcome — times, traffic, lock grant order — can depend on the Go
// scheduler, GOMAXPROCS or real-time interleaving, because the Go
// scheduler never gets to choose between two runnable simulated
// processes.
//
// If every live proc is parked and no wake condition is satisfied, the
// simulation cannot progress: the engine panics with a diagnostic
// naming each parked proc, its virtual clock and the reason it is
// waiting (the deadlock analogue of a hung pthread program, made
// loud and reproducible).
//
// A panic — a proc's own, re-thrown by Run, or the deadlock
// diagnostic — abandons the engine: the remaining parked procs stay
// blocked on their resume channels for the life of the process, along
// with whatever their wake closures capture. The simulation is
// unrecoverable at that point (as it was under the task layer's
// pre-engine dispatcher, which abandoned its workers the same way);
// an embedder that recovers the panic must treat the runtime as dead
// and accept one leaked goroutine per parked proc.
package engine

import (
	"fmt"
	"runtime/debug"
	"strings"

	"nowomp/internal/simtime"
)

// WakeFunc reports whether a parked proc may resume and, if so, the
// virtual instant its pending action fires at (a lock request's
// request time, a steal's availability time, ...). It is evaluated by
// the engine between dispatches, while no proc runs, so it may freely
// read state shared with other procs; it must not mutate anything.
type WakeFunc func() (at simtime.Seconds, ok bool)

// Engine is one deterministic scheduler instance, driving the procs of
// one parallel construct or task region. It is single-use: create,
// register procs with Go, then Run until every proc has exited.
type Engine struct {
	procs   []*Proc
	running *Proc
	events  chan event
}

type eventKind int

const (
	evParked eventKind = iota
	evExited
	evPanicked
)

// event is the proc-to-scheduler half of the coroutine handshake.
type event struct {
	p    *Proc
	kind eventKind
	pv   any // evPanicked: the wrapped panic
}

// Proc is one simulated process registered with an engine.
type Proc struct {
	e      *Engine
	name   string
	id     int
	clk    *simtime.Clock
	resume chan struct{}

	parked bool
	done   bool
	reason string
	wake   WakeFunc
	wokeAt simtime.Seconds
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{events: make(chan event)}
}

// Go registers a proc and starts its coroutine. The coroutine begins
// parked ("start"), runnable at its clock's current instant, and first
// executes when the engine elects it; fn runs entirely under the
// engine's token. Go may be called before Run or by the currently
// running proc (a task region adding workers for a joined host).
func (e *Engine) Go(name string, id int, clk *simtime.Clock, fn func(*Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		id:     id,
		clk:    clk,
		resume: make(chan struct{}),
		parked: true,
		reason: "start",
	}
	p.wake = func() (simtime.Seconds, bool) { return clk.Now(), true }
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if v := recover(); v != nil {
				e.events <- event{p: p, kind: evPanicked,
					pv: fmt.Sprintf("engine: %s panicked: %v\n%s", p.name, v, debug.Stack())}
				return
			}
			e.events <- event{p: p, kind: evExited}
		}()
		fn(p)
	}()
	return p
}

// Run drives the procs to completion: it repeatedly elects the
// runnable proc with the lowest (virtual time, id) and hands it the
// token until every proc has exited. The calling goroutine is the
// scheduler; it must not be one of the procs. A panic in a proc is
// re-thrown here with the proc's original stack attached.
func (e *Engine) Run() {
	for {
		p, at := e.next()
		if p == nil {
			if e.allDone() {
				return
			}
			panic(e.deadlockMessage())
		}
		p.parked = false
		p.wokeAt = at
		e.running = p
		p.resume <- struct{}{}
		ev := <-e.events
		e.running = nil
		switch ev.kind {
		case evParked:
			ev.p.parked = true
		case evExited:
			ev.p.done = true
		case evPanicked:
			panic(ev.pv)
		}
	}
}

// next elects the runnable proc with the minimal (wake instant, id),
// ties beyond that broken by registration order.
func (e *Engine) next() (*Proc, simtime.Seconds) {
	var best *Proc
	var bestAt simtime.Seconds
	for _, p := range e.procs {
		if p.done || !p.parked {
			continue
		}
		at, ok := p.wake()
		if !ok {
			continue
		}
		if best == nil || at < bestAt || (at == bestAt && p.id < best.id) {
			best, bestAt = p, at
		}
	}
	return best, bestAt
}

func (e *Engine) allDone() bool {
	for _, p := range e.procs {
		if !p.done {
			return false
		}
	}
	return true
}

// deadlockMessage names every parked proc, its clock and its wait
// reason: the diagnostic for a simulation that cannot progress.
func (e *Engine) deadlockMessage() string {
	var b strings.Builder
	b.WriteString("engine: deadlock: every proc is parked and none can wake")
	for _, p := range e.procs {
		if p.done {
			continue
		}
		fmt.Fprintf(&b, "\n  %s (id %d, clock %v) waiting on %s", p.name, p.id, p.clk.Now(), p.reason)
	}
	return b.String()
}

// Running returns the proc currently holding the token, or nil when
// the engine is between dispatches (or not running at all). Blocking
// primitives use it to discover the proc that must park: in the
// serialised engine, the caller of any runtime operation is exactly
// the running proc.
func (e *Engine) Running() *Proc { return e.running }

// Park blocks the calling proc until wake reports ready and the
// engine elects it, and returns the instant the wake fired at. reason
// is the wait description shown by the deadlock diagnostic.
func (p *Proc) Park(reason string, wake WakeFunc) simtime.Seconds {
	p.reason = reason
	p.wake = wake
	p.e.events <- event{p: p, kind: evParked}
	<-p.resume
	return p.wokeAt
}

// ID returns the proc's tiebreak id.
func (p *Proc) ID() int { return p.id }

// SetID changes the proc's tiebreak id. The task runtime uses it when
// an adaptation reassigns team slots. Only the running proc (or the
// scheduler between dispatches) may call it.
func (p *Proc) SetID(id int) { p.id = id }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Clock returns the proc's virtual clock.
func (p *Proc) Clock() *simtime.Clock { return p.clk }
