package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"nowomp/internal/simtime"
)

// The property test pins the heap/wait-list dispatcher to the engine's
// specified semantics with an independent oracle: a randomized program
// of computes, semaphore waits, signals and polled parks is executed
// once on the real engine and once on a reference simulator that
// re-implements the election as the naive linear scan the engine used
// to perform — re-evaluate every parked proc's condition at every
// dispatch, pick the minimum (wake instant, id, registration order).
// The two dispatch logs must match event for event, which covers the
// indexed heap, the notification plumbing and the park fast path at
// once (a fast-path grant that differs from a full election, a missed
// notification, or a stale heap key all reorder the log).

// step is one instruction of a generated program.
type step struct {
	kind  stepKind
	delta simtime.Seconds // compute: clock advance
	res   int             // wait/signal: semaphore index
}

type stepKind int

const (
	stepCompute stepKind = iota
	stepWait             // park until sem[res] > 0, then consume one unit
	stepSignal           // sem[res]++
	stepPoll             // polled park: always ready at own clock
)

// genProgram builds one randomized program for n procs over k
// semaphores. Signals are generated in surplus and each semaphore
// gets a final top-up from the last proc, so most programs complete;
// the rest (the last proc stranded on a wait before its top-ups) are
// detected by the reference simulator and skipped.
func genProgram(r *rand.Rand, n, k, steps int) [][]step {
	prog := make([][]step, n)
	for p := 0; p < n; p++ {
		for s := 0; s < steps; s++ {
			switch r.Intn(6) {
			case 0, 1:
				// Multiples of 0.25 keep virtual-time arithmetic exact,
				// so log comparison is not at the mercy of float error.
				prog[p] = append(prog[p], step{kind: stepCompute, delta: simtime.Seconds(r.Intn(8)) * 0.25})
			case 2:
				prog[p] = append(prog[p], step{kind: stepWait, res: r.Intn(k)})
			case 3, 4:
				prog[p] = append(prog[p], step{kind: stepSignal, res: r.Intn(k)})
			case 5:
				prog[p] = append(prog[p], step{kind: stepPoll})
			}
		}
	}
	// Top up every semaphore once per generated wait, after everything
	// else, from the highest-order proc: enough for every waiter to
	// drain even in the worst interleaving.
	waits := 0
	for p := range prog {
		for _, st := range prog[p] {
			if st.kind == stepWait {
				waits++
			}
		}
	}
	last := n - 1
	for i := 0; i < waits; i++ {
		for res := 0; res < k; res++ {
			prog[last] = append(prog[last], step{kind: stepSignal, res: res})
		}
	}
	return prog
}

// dispatchLog is one resume event as observed by a proc.
type dispatchLog struct {
	proc int
	at   simtime.Seconds
}

// runEngine executes the program on the real engine, semaphores backed
// by wait lists, and returns the dispatch log.
func runEngine(prog [][]step, k int) []dispatchLog {
	e := New()
	sems := make([]int, k)
	wls := make([]WaitList, k)
	var log []dispatchLog
	for p := range prog {
		p := p
		clk := simtime.NewClock(0)
		e.Go(fmt.Sprintf("p%d", p), p, clk, func(ep *Proc) {
			log = append(log, dispatchLog{p, clk.Now()})
			for _, st := range prog[p] {
				switch st.kind {
				case stepCompute:
					clk.Advance(st.delta)
				case stepWait:
					res := st.res
					at := clk.Now()
					ep.ParkOn(&wls[res], "sem", func() (simtime.Seconds, bool) {
						if sems[res] == 0 {
							return 0, false
						}
						return at, true
					})
					sems[res]--
					log = append(log, dispatchLog{p, clk.Now()})
				case stepSignal:
					sems[st.res]++
					wls[st.res].Notify()
				case stepPoll:
					ep.Park("poll", nil)
					log = append(log, dispatchLog{p, clk.Now()})
				}
			}
		})
	}
	e.Run()
	return log
}

// refProc is one proc of the reference simulator.
type refProc struct {
	id, order int
	ip        int // next step index
	clk       simtime.Seconds
	parked    bool
	waitRes   int // semaphore index while parked on a wait; -1 for poll
	waitAt    simtime.Seconds
	done      bool
}

// runReference executes the program on the linear-scan reference
// scheduler and returns the dispatch log. Returns ok=false if the
// program deadlocks (the engine would panic; the generator should
// prevent this).
func runReference(prog [][]step, k int) (log []dispatchLog, ok bool) {
	sems := make([]int, k)
	procs := make([]*refProc, len(prog))
	for p := range prog {
		// Mirrors Go: every proc starts parked at a polled "start".
		procs[p] = &refProc{id: p, order: p, parked: true, waitRes: -1}
	}
	live := len(procs)
	for live > 0 {
		// The naive election: evaluate every parked proc, take the
		// minimum (wake instant, id, registration order).
		var best *refProc
		var bestAt simtime.Seconds
		for _, rp := range procs {
			if rp.done || !rp.parked {
				continue
			}
			at := rp.waitAt
			if rp.waitRes >= 0 {
				if sems[rp.waitRes] == 0 {
					continue
				}
			} else {
				at = rp.clk
			}
			if best == nil || at < bestAt ||
				(at == bestAt && (rp.id < best.id || (rp.id == best.id && rp.order < best.order))) {
				best, bestAt = rp, at
			}
		}
		if best == nil {
			return log, false
		}
		best.parked = false
		if best.waitRes >= 0 {
			sems[best.waitRes]--
		}
		best.waitRes = -1
		log = append(log, dispatchLog{best.id, best.clk})
		// Run the proc to its next park or exit.
		for !best.parked && !best.done {
			if best.ip >= len(prog[best.id]) {
				best.done = true
				live--
				break
			}
			st := prog[best.id][best.ip]
			best.ip++
			switch st.kind {
			case stepCompute:
				best.clk += st.delta
			case stepWait:
				best.parked = true
				best.waitRes = st.res
				best.waitAt = best.clk
			case stepSignal:
				sems[st.res]++
			case stepPoll:
				best.parked = true
				best.waitRes = -1
			}
		}
	}
	return log, true
}

func TestElectionMatchesLinearScanReference(t *testing.T) {
	r := rand.New(rand.NewSource(1999))
	valid := 0
	for trial := 0; trial < 400 && valid < 200; trial++ {
		n := 2 + r.Intn(5)
		k := 1 + r.Intn(3)
		prog := genProgram(r, n, k, 5+r.Intn(25))
		want, ok := runReference(prog, k)
		if !ok {
			continue // deadlocking program: the engine would panic too
		}
		valid++
		got := runEngine(prog, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d dispatches, reference %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: dispatch %d = proc %d at %v, reference proc %d at %v",
					trial, i, got[i].proc, got[i].at, want[i].proc, want[i].at)
			}
		}
	}
	if valid < 200 {
		t.Fatalf("only %d deadlock-free programs in 400 trials; generator too strand-prone", valid)
	}
}

// BenchmarkDispatchPingPong measures the full park/elect/resume round
// trip: two procs alternating via a pair of semaphores, so every park
// is contended and the fast path never applies.
func BenchmarkDispatchPingPong(b *testing.B) {
	e := New()
	var wls [2]WaitList
	sems := [2]int{1, 0}
	rounds := b.N
	for p := 0; p < 2; p++ {
		p := p
		clk := simtime.NewClock(0)
		e.Go(fmt.Sprintf("p%d", p), p, clk, func(ep *Proc) {
			for i := 0; i < rounds; i++ {
				mine, theirs := p, 1-p
				at := clk.Now()
				ep.ParkOn(&wls[mine], "turn", func() (simtime.Seconds, bool) {
					if sems[mine] == 0 {
						return 0, false
					}
					return at, true
				})
				sems[mine]--
				clk.Advance(0.25)
				sems[theirs]++
				wls[theirs].Notify()
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkDispatchFastPath measures the uncontended repeated park of
// a single running proc — the dynamic-loop chunk-claim pattern — which
// the engine resolves in place with no goroutine switch.
func BenchmarkDispatchFastPath(b *testing.B) {
	e := New()
	clk := simtime.NewClock(0)
	rounds := b.N
	e.Go("solo", 0, clk, func(ep *Proc) {
		b.ResetTimer()
		for i := 0; i < rounds; i++ {
			ep.Park("claim", nil)
		}
	})
	b.ReportAllocs()
	e.Run()
}
