package engine

import (
	"strings"
	"testing"

	"nowomp/internal/simtime"
)

// TestWakeOrderLowestVirtualTime: procs are elected strictly by their
// wake instant, regardless of registration order.
func TestWakeOrderLowestVirtualTime(t *testing.T) {
	e := New()
	var order []int
	for _, p := range []struct {
		id int
		at simtime.Seconds
	}{{0, 3.0}, {1, 1.0}, {2, 2.0}} {
		p := p
		e.Go("p", p.id, simtime.NewClock(p.at), func(*Proc) {
			order = append(order, p.id)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("execution order = %v, want [1 2 0] (ascending virtual time)", order)
	}
}

// TestWakeOrderTiebreakByID: equal wake instants break by proc id, not
// registration order.
func TestWakeOrderTiebreakByID(t *testing.T) {
	e := New()
	var order []int
	for _, id := range []int{2, 0, 1} { // registered out of id order
		id := id
		e.Go("p", id, simtime.NewClock(7.0), func(*Proc) {
			order = append(order, id)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("execution order = %v, want [0 1 2] (id tiebreak)", order)
	}
}

// TestParkWakesInVirtualTimeOrder: a parked proc resumes only when its
// wake condition holds and it has the minimal (instant, id) key; the
// wake instant is returned by Park.
func TestParkWakesInVirtualTimeOrder(t *testing.T) {
	e := New()
	var order []string
	ready := false
	clkA := simtime.NewClock(0)
	e.Go("a", 0, clkA, func(p *Proc) {
		at := p.Park("token from b", func() (simtime.Seconds, bool) {
			if !ready {
				return 0, false
			}
			return 4.0, true
		})
		if at != 4.0 {
			t.Errorf("Park returned %v, want 4.0", at)
		}
		order = append(order, "a")
	})
	clkB := simtime.NewClock(2.0)
	e.Go("b", 1, clkB, func(p *Proc) {
		ready = true
		clkB.AdvanceTo(9.0)
		// After b parks again at 9.0, a (ready at 4.0) must run first.
		p.Park("later turn", func() (simtime.Seconds, bool) { return clkB.Now(), true })
		order = append(order, "b")
	})
	e.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("wake order = %v, want [a b]", order)
	}
}

// TestDeadlockPanicsNamingProcs: if every proc is parked and none can
// wake, Run panics with a diagnostic naming the parked procs and their
// wait reasons.
func TestDeadlockPanicsNamingProcs(t *testing.T) {
	e := New()
	never := func() (simtime.Seconds, bool) { return 0, false }
	e.Go("reader", 0, simtime.NewClock(1.5), func(p *Proc) {
		p.Park("lock 7", never)
	})
	e.Go("writer", 1, simtime.NewClock(2.5), func(p *Proc) {
		p.Park("barrier arrival", never)
	})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("deadlocked engine did not panic")
		}
		msg, ok := v.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", v)
		}
		for _, want := range []string{"deadlock", "reader", "lock 7", "writer", "barrier arrival"} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock diagnostic missing %q:\n%s", want, msg)
			}
		}
	}()
	e.Run()
}

// TestProcPanicCarriesOriginalStack: a panic inside a proc is rethrown
// by Run with the proc's name and original message attached.
func TestProcPanicCarriesOriginalStack(t *testing.T) {
	e := New()
	e.Go("exploder", 0, simtime.NewClock(0), func(*Proc) {
		panic("boom at virtual noon")
	})
	defer func() {
		v := recover()
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, "exploder") || !strings.Contains(msg, "boom at virtual noon") {
			t.Fatalf("unexpected panic: %v", v)
		}
	}()
	e.Run()
}

// TestGoDuringRun: the running proc may register new procs; they are
// elected by the same (instant, id) rule.
func TestGoDuringRun(t *testing.T) {
	e := New()
	var order []string
	e.Go("root", 0, simtime.NewClock(1.0), func(p *Proc) {
		e.Go("late-early", 1, simtime.NewClock(0.5), func(*Proc) {
			order = append(order, "late-early")
		})
		order = append(order, "root")
	})
	e.Go("sibling", 2, simtime.NewClock(3.0), func(*Proc) {
		order = append(order, "sibling")
	})
	e.Run()
	// late-early's clock (0.5) beats sibling's (3.0) once registered.
	if len(order) != 3 || order[0] != "root" || order[1] != "late-early" || order[2] != "sibling" {
		t.Fatalf("execution order = %v, want [root late-early sibling]", order)
	}
}

// TestRunningIsTheTokenHolder: Running reports the proc holding the
// token while it runs, and nil between constructs.
func TestRunningIsTheTokenHolder(t *testing.T) {
	e := New()
	if e.Running() != nil {
		t.Fatal("Running() non-nil before Run")
	}
	var seen *Proc
	p := e.Go("self", 0, simtime.NewClock(0), func(p *Proc) {
		seen = e.Running()
	})
	e.Run()
	if seen != p {
		t.Fatalf("Running() inside proc = %v, want the proc itself", seen)
	}
	if e.Running() != nil {
		t.Fatal("Running() non-nil after Run")
	}
}
