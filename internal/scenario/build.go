package scenario

import (
	"encoding/json"
	"fmt"

	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// The build layer turns a Spec into runnable pieces — the omp.Config,
// the machine model, the link configurer, the adapt events — and all
// the way into a Result. Every cmd and the farm build through these
// accessors instead of re-parsing flag strings.

// ProtocolKind returns the spec's coherence protocol.
func (s Spec) ProtocolKind() (dsm.ProtocolKind, error) {
	return dsm.ParseProtocol(s.Protocol)
}

// MachineModel builds the per-machine speed/load model, or nil when
// the spec is homogeneous.
func (s Spec) MachineModel() (*machine.Model, error) {
	if s.Machines == "" && s.Loads == "" {
		return nil, nil
	}
	m := machine.New(s.Hosts)
	if err := machine.ParseSpeeds(m, s.Machines); err != nil {
		return nil, err
	}
	if err := machine.ParseLoads(m, s.Loads); err != nil {
		return nil, err
	}
	return m, nil
}

// LinksFunc returns the fabric configurer for the spec's link
// overrides, or nil when every link is at the baseline. The spec is
// validated eagerly against a throwaway fabric so errors surface here,
// not mid-construction.
func (s Spec) LinksFunc() (func(*simnet.Fabric) error, error) {
	if s.Links == "" {
		return nil, nil
	}
	if err := machine.ParseLinks(simnet.New(s.Hosts), s.Links); err != nil {
		return nil, err
	}
	spec := s.Links
	return func(f *simnet.Fabric) error { return machine.ParseLinks(f, spec) }, nil
}

// Events parses the hand-written adapt schedule.
func (s Spec) Events() ([]adapt.Event, error) {
	return adapt.ParseSchedule(s.Schedule)
}

// LoadPolicy parses the load policy, or nil when the spec has none.
func (s Spec) LoadPolicy() (*adapt.LoadPolicy, error) {
	if s.Policy == "" {
		return nil, nil
	}
	p, err := adapt.ParsePolicy(s.Policy)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// Runner resolves the spec's kernel.
func (s Spec) Runner() (apps.Runner, error) {
	r, ok := apps.RunnerByName(s.Kernel)
	if !ok {
		return apps.Runner{}, fmt.Errorf("scenario: unknown kernel %q", s.Kernel)
	}
	return r, nil
}

// Config assembles the omp.Config the spec describes.
func (s Spec) Config() (omp.Config, error) {
	proto, err := s.ProtocolKind()
	if err != nil {
		return omp.Config{}, err
	}
	m, err := s.MachineModel()
	if err != nil {
		return omp.Config{}, err
	}
	links, err := s.LinksFunc()
	if err != nil {
		return omp.Config{}, err
	}
	return omp.Config{
		Hosts: s.Hosts, Procs: s.Procs, Adaptive: s.Adaptive,
		Grace: simtime.Seconds(s.Grace), Protocol: proto,
		Machine: m, Links: links,
	}, nil
}

// Build normalizes the spec, constructs the runtime, submits the
// schedule's events, and applies the load policy. It returns the
// ready-to-run runtime and the events the policy derived (nil without
// a policy).
func (s Spec) Build() (*omp.Runtime, []adapt.Event, error) {
	norm, err := s.Normalize()
	if err != nil {
		return nil, nil, err
	}
	cfg, err := norm.Config()
	if err != nil {
		return nil, nil, err
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	events, err := norm.Events()
	if err != nil {
		return nil, nil, err
	}
	for _, ev := range events {
		if err := rt.Submit(ev); err != nil {
			return nil, nil, err
		}
	}
	var derived []adapt.Event
	if p, err := norm.LoadPolicy(); err != nil {
		return nil, nil, err
	} else if p != nil {
		derived, err = rt.ApplyLoadPolicy(*p)
		if err != nil {
			return nil, nil, err
		}
	}
	return rt, derived, nil
}

// Result is the outcome of one scenario run. Its leading fields —
// scenario key, seconds, bytes, messages — mirror the bench report's
// schema-2 record shape, so a farm result body reads like one more
// bench cell; the rest carries the full measurement. Encode renders it
// deterministically: identical specs produce byte-identical encodings
// at any parallelism level, which is the property the farm's
// content-addressed store serves from.
type Result struct {
	// Scenario is the human-readable cell key, "farm/<kernel>/<procs>p".
	Scenario string `json:"scenario"`
	// Seconds is the virtual (simulated) runtime.
	Seconds float64 `json:"seconds"`
	// Bytes and Messages are the fabric traffic.
	Bytes    int64 `json:"bytes"`
	Messages int64 `json:"messages"`
	// Hash is the spec's content address; Spec its canonical form.
	Hash string `json:"hash"`
	Spec Spec   `json:"spec"`
	// Pages and Diffs are full-page transfers and diffs fetched;
	// SharedBytes the allocated shared memory.
	Pages       int64 `json:"pages"`
	Diffs       int64 `json:"diffs"`
	SharedBytes int   `json:"shared_bytes"`
	// Checksum is the kernel's result checksum; Verified is set when
	// the spec asked for verification (always true then — a mismatch
	// fails the run instead).
	Checksum float64 `json:"checksum"`
	Verified bool    `json:"verified"`
	// TeamFinal and Adaptations summarise the adapt activity.
	TeamFinal   int `json:"team_final"`
	Adaptations int `json:"adaptations"`
}

// Encode renders the result as canonical JSON bytes (trailing
// newline), the exact body the farm stores and serves.
func (r Result) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode result: %w", err)
	}
	return append(data, '\n'), nil
}

// RunChecked is Run behind a panic barrier: a panic anywhere in the
// simulation — a word-race check firing, the engine's deadlock
// diagnostic, a protocol invariant violation — comes back as an error
// instead of unwinding the caller. The farm's workers run jobs through
// it so one poisoned scenario fails one job rather than the whole
// service, and the fuzzer's oracles use it to turn "no panics on
// race-free kernels" into a checkable verdict. The runtime behind a
// recovered panic is abandoned, never reused.
func (s Spec) RunChecked() (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("scenario: run panicked: %v", v)
		}
	}()
	return s.Run()
}

// Run executes the scenario end to end: normalize, build, run the
// kernel, verify if asked, and assemble the Result. The engine makes
// the outcome a pure function of the spec, so concurrent Runs of
// different (or identical) specs never interfere.
func (s Spec) Run() (Result, error) {
	norm, err := s.Normalize()
	if err != nil {
		return Result{}, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return Result{}, err
	}
	rt, _, err := norm.Build()
	if err != nil {
		return Result{}, err
	}
	runner, err := norm.Runner()
	if err != nil {
		return Result{}, err
	}
	res, err := runner.Run(rt, norm.Scale)
	if err != nil {
		return Result{}, err
	}
	if norm.Verify {
		if want := runner.Reference(norm.Scale); res.Checksum != want {
			return Result{}, fmt.Errorf("scenario: verification failed: checksum %g, reference %g", res.Checksum, want)
		}
	}
	adaptations := 0
	for _, ap := range rt.AdaptLog() {
		adaptations += len(ap.Applied)
	}
	return Result{
		Scenario:    fmt.Sprintf("farm/%s/%dp", norm.Kernel, norm.Procs),
		Seconds:     float64(res.Time),
		Bytes:       res.Bytes,
		Messages:    res.Messages,
		Hash:        hash,
		Spec:        norm,
		Pages:       res.Pages,
		Diffs:       res.Diffs,
		SharedBytes: res.SharedBytes,
		Checksum:    res.Checksum,
		Verified:    norm.Verify,
		TeamFinal:   rt.NProcs(),
		Adaptations: adaptations,
	}, nil
}
