package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNormalizeDefaultsExplicit(t *testing.T) {
	norm, err := Spec{Kernel: "jacobi", Scale: 0.05}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Procs != DefaultProcs || norm.Hosts != DefaultHosts {
		t.Fatalf("defaults not applied: %+v", norm)
	}
	if norm.Protocol != "tmk" {
		t.Fatalf("protocol default = %q, want tmk", norm.Protocol)
	}
	if norm.Grace != 3 {
		t.Fatalf("grace default = %g, want 3", norm.Grace)
	}
	again, err := norm.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if again != norm {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", again, norm)
	}
}

func TestNormalizeCanonicalizesSubSpecs(t *testing.T) {
	s := Spec{
		Kernel: "jacobi", Scale: 0.05, Procs: 4, Hosts: 8,
		Machines: " 5=2 , 2=0.5 ",
		Loads:    " 3=2@5,0@15 ; 1=0.5@0 ",
		Links:    " 0-7=bw:0.25,lat:4 ",
		Adaptive: true,
		Schedule: " 6:leave:3 , 9:join:3 ",
		Policy:   " high=1.5 , low=0.25 , dwell=2 ",
	}
	norm, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Machines != "2=0.5,5=2" {
		t.Errorf("machines = %q", norm.Machines)
	}
	if norm.Links != "0-7=lat:4,bw:0.25" {
		t.Errorf("links = %q", norm.Links)
	}
	// Sub-spec item order and whitespace must not change the hash.
	reordered := s
	reordered.Machines = "2=0.5,5=2"
	reordered.Loads = "1=0.5@0;3=2@5,0@15"
	h1, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := reordered.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("hash changed across sub-spec reordering: %s vs %s", h1, h2)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := map[string]Spec{
		"unknown kernel":        {Kernel: "nope"},
		"negative scale":        {Kernel: "jacobi", Scale: -1},
		"team exceeds pool":     {Kernel: "jacobi", Scale: 0.05, Procs: 8, Hosts: 4},
		"schedule not adaptive": {Kernel: "jacobi", Scale: 0.05, Schedule: "5:leave:3"},
		"policy without loads":  {Kernel: "jacobi", Scale: 0.05, Adaptive: true, Policy: "high=1.5,low=0.25"},
		"bad machines":          {Kernel: "jacobi", Scale: 0.05, Machines: "99=2"},
		"bad protocol":          {Kernel: "jacobi", Scale: 0.05, Protocol: "mesi"},
	}
	for name, s := range cases {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted %+v", name, s)
		}
	}
}

func TestHashStableAcrossJSONLayout(t *testing.T) {
	a := []byte(`{"kernel":"nbf","scale":0.05,"procs":4,"hosts":6,"adaptive":false,"grace":0,"protocol":"","machines":"","loads":"","links":"","policy":"","schedule":"","verify":true}`)
	b := []byte("{\n\t\"verify\": true,\n\t\"hosts\": 6,\n\t\"procs\": 4,\n\t\"scale\": 0.05,\n\t\"kernel\": \"nbf\"\n}")
	sa, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := sa.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("hash differs across JSON layout: %s vs %s", ha, hb)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"kernel":"jacobi","scael":0.1}`)); err == nil {
		t.Fatal("Decode accepted a typoed field")
	}
}

func TestRunDeterministicAndVerified(t *testing.T) {
	s := Spec{Kernel: "jacobi", Scale: 0.03, Procs: 4, Hosts: 6, Verify: true}
	r1, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-run not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	if !r1.Verified || r1.Seconds <= 0 || r1.Bytes <= 0 {
		t.Fatalf("implausible result: %+v", r1)
	}
	// The stored hash must match the spec's content address.
	want, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hash != want {
		t.Fatalf("result hash %s, spec hash %s", r1.Hash, want)
	}
}

func TestRunAppliesScheduleAndPolicy(t *testing.T) {
	s := Spec{
		Kernel: "jacobi", Scale: 0.05, Procs: 4, Hosts: 6,
		Adaptive: true, Schedule: "0.05:leave:3",
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Adaptations == 0 || r.TeamFinal != 3 {
		t.Fatalf("schedule had no effect: %+v", r)
	}
}

func TestCanonicalIsValidJSONRoundTrip(t *testing.T) {
	s := Spec{Kernel: "gauss", Scale: 0.05, Procs: 2, Hosts: 4, Protocol: "hlrc"}
	data, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("canonical not a fixed point:\n%s\nvs\n%s", data, data2)
	}
}
