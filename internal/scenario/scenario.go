// Package scenario defines the canonical simulation-scenario
// specification shared by every tool and by the farm service: one
// struct that names a kernel, a problem scale, a team, a protocol, the
// heterogeneity model (machine speeds, load traces, link overrides),
// an adapt schedule and/or load policy, and whether to verify against
// the sequential reference.
//
// A Spec has a canonical form (Normalize): every compact sub-spec
// string is parsed and re-formatted through its package's
// Parse*/Format* pair, defaults are made explicit, and the result
// round-trips bit-for-bit. Canonical encodes the normalized spec as
// deterministic JSON (fixed field order, shortest float form, every
// field present), and Hash is the SHA-256 of those bytes — the
// content-address of the scenario. Because PR 5's engine made every
// scenario outcome a pure function of its spec, two specs with the
// same hash produce byte-identical results at any parallelism level,
// which is what makes the farm's result cache sound.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/simnet"
)

// Spec is the complete description of one simulation scenario. The
// string fields reuse the tools' compact flag formats (see the
// machine and adapt packages); zero values mean "default" and are made
// explicit by Normalize. The JSON form of a normalized Spec is the
// canonical scenario encoding the farm hashes.
type Spec struct {
	// Kernel names the application: gauss, jacobi, fft3d, nbf,
	// mergesort or quadrature.
	Kernel string `json:"kernel"`
	// Scale is the linear problem scale (1.0 = the paper's sizes).
	Scale float64 `json:"scale"`
	// Procs is the initial team size, Hosts the workstation pool.
	Procs int `json:"procs"`
	Hosts int `json:"hosts"`
	// Adaptive enables adapt-event processing; a schedule or policy
	// requires it.
	Adaptive bool `json:"adaptive"`
	// Grace is the default leave grace period in virtual seconds
	// (0 = the paper's 3 s, made explicit by Normalize).
	Grace float64 `json:"grace"`
	// Protocol is the DSM coherence protocol: "tmk", "hlrc" or
	// "hybrid".
	Protocol string `json:"protocol"`
	// Machines / Loads / Links are the heterogeneity sub-specs in
	// machine.ParseSpeeds / ParseLoads / ParseLinks form.
	Machines string `json:"machines"`
	Loads    string `json:"loads"`
	Links    string `json:"links"`
	// Policy derives adapt events from the load traces
	// (adapt.ParsePolicy form); it requires Loads and Adaptive.
	Policy string `json:"policy"`
	// Schedule is a hand-written adapt-event schedule
	// (adapt.ParseSchedule form); it requires Adaptive.
	Schedule string `json:"schedule"`
	// Verify checks the result against the sequential reference.
	Verify bool `json:"verify"`
}

// Defaults mirror the tools' historical flag defaults.
const (
	DefaultProcs = 8
	DefaultHosts = 10
	DefaultScale = 0.2
)

// MaxHosts caps the workstation pool a single scenario may request.
// The fabric keeps per-link state (O(hosts²)) and the paper's NOW is a
// few dozen workstations, so an absurd pool size is a malformed
// request, not a bigger simulation — important for the farm (an
// unauthenticated POST must not allocate unbounded state) and for the
// fuzzer (every accepted spec must be cheap enough to run).
const MaxHosts = 64

// Normalize validates the spec and returns its canonical form:
// defaults explicit, every sub-spec string re-formatted through its
// Parse/Format round trip (so field order and whitespace inside the
// compact formats cannot change the hash). Normalize is idempotent —
// normalizing a normalized spec is the identity.
func (s Spec) Normalize() (Spec, error) {
	if s.Kernel == "" {
		s.Kernel = "jacobi"
	}
	if _, ok := apps.RunnerByName(s.Kernel); !ok {
		return Spec{}, fmt.Errorf("scenario: unknown kernel %q", s.Kernel)
	}
	if s.Scale == 0 {
		s.Scale = DefaultScale
	}
	if !(s.Scale > 0 && s.Scale <= 4) { // NaN fails both comparisons
		return Spec{}, fmt.Errorf("scenario: scale %g out of range (0, 4]", s.Scale)
	}
	if s.Procs == 0 {
		s.Procs = DefaultProcs
	}
	if s.Hosts == 0 {
		s.Hosts = DefaultHosts
	}
	if s.Procs < 1 {
		return Spec{}, fmt.Errorf("scenario: procs %d must be at least 1", s.Procs)
	}
	if s.Hosts < s.Procs {
		return Spec{}, fmt.Errorf("scenario: hosts %d must cover the team of %d", s.Hosts, s.Procs)
	}
	if s.Hosts > MaxHosts {
		return Spec{}, fmt.Errorf("scenario: hosts %d exceeds the pool cap %d", s.Hosts, MaxHosts)
	}
	if s.Grace == 0 {
		s.Grace = float64(adapt.DefaultGrace)
	}
	if !(s.Grace >= 0) || math.IsInf(s.Grace, 0) { // NaN fails the comparison
		return Spec{}, fmt.Errorf("scenario: grace %g must be a non-negative finite number", s.Grace)
	}
	proto, err := dsm.ParseProtocol(s.Protocol)
	if err != nil {
		return Spec{}, err
	}
	s.Protocol = proto.String()

	// Round-trip the heterogeneity sub-specs through one model so the
	// canonical strings are exactly what Format* emits.
	if s.Machines != "" || s.Loads != "" {
		m := machine.New(s.Hosts)
		if err := machine.ParseSpeeds(m, s.Machines); err != nil {
			return Spec{}, err
		}
		if err := machine.ParseLoads(m, s.Loads); err != nil {
			return Spec{}, err
		}
		s.Machines = machine.FormatSpeeds(m)
		s.Loads = machine.FormatLoads(m)
	}
	if s.Links != "" {
		f := simnet.New(s.Hosts)
		if err := machine.ParseLinks(f, s.Links); err != nil {
			return Spec{}, err
		}
		s.Links = machine.FormatLinks(f)
	}
	if s.Policy != "" {
		p, err := adapt.ParsePolicy(s.Policy)
		if err != nil {
			return Spec{}, err
		}
		if !s.Adaptive {
			return Spec{}, fmt.Errorf("scenario: a policy requires adaptive")
		}
		if s.Loads == "" {
			return Spec{}, fmt.Errorf("scenario: a policy needs load traces to watch")
		}
		s.Policy = adapt.FormatPolicy(p)
	}
	if s.Schedule != "" {
		events, err := adapt.ParseSchedule(s.Schedule)
		if err != nil {
			return Spec{}, err
		}
		if !s.Adaptive {
			return Spec{}, fmt.Errorf("scenario: a schedule requires adaptive")
		}
		// Validate every event against this scenario's pool: the adapt
		// manager trusts event hosts (a join of a host outside the pool
		// would panic mid-run), so the spec layer is where a bad host id
		// must be rejected with a stable error.
		for _, ev := range events {
			if int(ev.Host) >= s.Hosts {
				return Spec{}, fmt.Errorf("scenario: schedule event host %d not in pool [0,%d)", ev.Host, s.Hosts)
			}
			if ev.Kind == adapt.KindLeave && ev.Host == 0 {
				return Spec{}, fmt.Errorf("scenario: schedule cannot leave host 0 (the master)")
			}
		}
		s.Schedule = adapt.FormatSchedule(events)
	}
	return s, nil
}

// Canonical returns the deterministic JSON encoding of the spec's
// canonical form: fixed field order, shortest float representation,
// every field present. Two requests that differ only in JSON field
// order, whitespace, or sub-spec item order encode identically.
func (s Spec) Canonical() ([]byte, error) {
	norm, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(norm)
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return data, nil
}

// Hash is the scenario's content address: the hex SHA-256 of its
// canonical encoding. Identical hash means identical simulation
// results, byte for byte — the determinism contract the engine
// enforces and the farm's result cache relies on.
func (s Spec) Hash() (string, error) {
	data, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Decode parses a JSON scenario spec. Unknown fields are rejected so a
// typoed field name fails loudly instead of silently meaning "default"
// (and hashing as a different scenario than the client intended).
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode: %w", err)
	}
	return s, nil
}
