package scenario

import (
	"math"
	"testing"
)

// Error-path contract: Normalize's rejections carry stable messages.
// Tools (the farm's 400 responses, the fuzz harness's shrink filter,
// CLI diagnostics) key off these strings, so a wording change is an
// API change — update this table deliberately, not incidentally.
func TestNormalizeErrorMessages(t *testing.T) {
	base := Spec{Kernel: "jacobi", Scale: 0.05, Procs: 2, Hosts: 4}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown kernel", func(s *Spec) { s.Kernel = "sor" },
			`scenario: unknown kernel "sor"`},
		{"negative scale", func(s *Spec) { s.Scale = -0.5 },
			"scenario: scale -0.5 out of range (0, 4]"},
		{"oversized scale", func(s *Spec) { s.Scale = 5 },
			"scenario: scale 5 out of range (0, 4]"},
		{"NaN scale", func(s *Spec) { s.Scale = math.NaN() },
			"scenario: scale NaN out of range (0, 4]"},
		{"negative procs", func(s *Spec) { s.Procs = -1 },
			"scenario: procs -1 must be at least 1"},
		{"team exceeds pool", func(s *Spec) { s.Procs = 6; s.Hosts = 4 },
			"scenario: hosts 4 must cover the team of 6"},
		{"pool cap", func(s *Spec) { s.Hosts = MaxHosts + 1 },
			"scenario: hosts 65 exceeds the pool cap 64"},
		{"negative grace", func(s *Spec) { s.Grace = -1 },
			"scenario: grace -1 must be a non-negative finite number"},
		{"infinite grace", func(s *Spec) { s.Grace = math.Inf(1) },
			"scenario: grace +Inf must be a non-negative finite number"},
		{"NaN grace", func(s *Spec) { s.Grace = math.NaN() },
			"scenario: grace NaN must be a non-negative finite number"},
		{"policy not adaptive", func(s *Spec) { s.Policy = "high=1.5,low=0.5"; s.Loads = "1=2@0" },
			"scenario: a policy requires adaptive"},
		{"policy without loads", func(s *Spec) { s.Adaptive = true; s.Policy = "high=1.5,low=0.5" },
			"scenario: a policy needs load traces to watch"},
		{"schedule not adaptive", func(s *Spec) { s.Schedule = "0.1:leave:1" },
			"scenario: a schedule requires adaptive"},
		{"schedule host outside pool", func(s *Spec) { s.Adaptive = true; s.Schedule = "0.1:join:4" },
			"scenario: schedule event host 4 not in pool [0,4)"},
		{"schedule leaves the master", func(s *Spec) { s.Adaptive = true; s.Schedule = "0.1:leave:0" },
			"scenario: schedule cannot leave host 0 (the master)"},
		{"speed factor not finite", func(s *Spec) { s.Machines = "1=Inf" },
			`machine: speed "1=Inf": factor "Inf" must be a positive finite number`},
		{"speed factor NaN", func(s *Spec) { s.Machines = "1=NaN" },
			`machine: speed "1=NaN": factor "NaN" must be a positive finite number`},
		{"load value NaN", func(s *Spec) { s.Loads = "1=NaN@0" },
			`machine: load "1=NaN@0": step "NaN@0": load "NaN" must be a non-negative finite number`},
		{"load time infinite", func(s *Spec) { s.Loads = "1=2@+Inf" },
			`machine: load "1=2@+Inf": step "2@+Inf": time "+Inf" must be a non-negative finite number`},
		{"link factor NaN", func(s *Spec) { s.Links = "0-1=lat:NaN" },
			`machine: link "0-1=lat:NaN": option "lat:NaN": factor must be a positive finite number`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			_, err := s.Normalize()
			if err == nil {
				t.Fatalf("Normalize accepted %+v", s)
			}
			if err.Error() != tc.want {
				t.Errorf("error message drifted:\n  got:  %s\n  want: %s", err, tc.want)
			}
		})
	}
}

// TestNormalizeAcceptsBoundaries pins the accepting side of the new
// limits: the pool cap itself is valid, as are zero grace and the
// scale range endpoints.
func TestNormalizeAcceptsBoundaries(t *testing.T) {
	for name, s := range map[string]Spec{
		"pool cap exactly": {Kernel: "jacobi", Scale: 0.05, Procs: 1, Hosts: MaxHosts},
		"scale upper edge": {Kernel: "jacobi", Scale: 4, Procs: 1, Hosts: 1},
		"master may join":  {Kernel: "jacobi", Scale: 0.05, Procs: 1, Hosts: 2, Adaptive: true, Schedule: "0.1:join:1"},
	} {
		if _, err := s.Normalize(); err != nil {
			t.Errorf("%s: Normalize rejected %+v: %v", name, s, err)
		}
	}
}

// TestRunCheckedRecovers pins the panic barrier: RunChecked must turn
// a mid-run panic into an error (callers like the farm worker and the
// fuzz oracles depend on it) while passing healthy results through
// untouched.
func TestRunCheckedRecovers(t *testing.T) {
	s := Spec{Kernel: "jacobi", Scale: 0.02, Procs: 2, Hosts: 2}
	res, err := s.RunChecked()
	if err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	direct, err2 := s.Run()
	if err2 != nil {
		t.Fatal(err2)
	}
	if res != direct {
		t.Fatalf("RunChecked result differs from Run:\n%+v\nvs\n%+v", res, direct)
	}
}
