package scenario

import (
	"bytes"
	"testing"
)

// FuzzCanonical drives arbitrary JSON through Decode -> Normalize ->
// Canonical and checks the canonical encoding is a fixed point: it
// decodes and re-encodes to itself, and the hash it produces is the
// hash of every equivalent layout of the same spec. This is the
// contract the farm's content-addressed cache depends on — any input
// that normalizes successfully has exactly one canonical byte string.
func FuzzCanonical(f *testing.F) {
	f.Add([]byte(`{"kernel":"jacobi","scale":0.05}`))
	f.Add([]byte(`{"kernel":"nbf","scale":0.1,"procs":4,"hosts":6,"verify":true}`))
	f.Add([]byte(`{"kernel":"gauss","protocol":"hlrc","machines":"2=0.5,5=2","loads":"3=2@5,0@15"}`))
	f.Add([]byte(`{"kernel":"mergesort","adaptive":true,"schedule":"6:leave:7,9:join:7","grace":1.5}`))
	f.Add([]byte(`{"kernel":"fft3d","adaptive":true,"loads":"3=2@5","policy":"high=1.5,low=0.25,dwell=2","links":"0-7=lat:4,bw:0.25"}`))
	f.Add([]byte(`{ "scale" : 2e-1 , "kernel" : "quadrature" }`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // malformed JSON or unknown fields: rejected is fine
		}
		canon, err := s.Canonical()
		if err != nil {
			return // invalid spec: rejected is fine
		}
		// The canonical encoding must decode and re-normalize to the
		// identical byte string (parse -> format -> parse identity).
		back, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical bytes do not decode: %v\n%s", err, canon)
		}
		canon2, err := back.Canonical()
		if err != nil {
			t.Fatalf("canonical bytes do not re-normalize: %v\n%s", err, canon)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical not a fixed point:\n%s\nvs\n%s", canon, canon2)
		}
		// And the hash is a function of the canonical form alone.
		h1, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("hash not stable across round trip: %s vs %s", h1, h2)
		}
	})
}
