package scenario

import "flag"

// Flag binding: every cmd registers its scenario flags straight onto a
// Spec, replacing the per-cmd parse wiring that used to duplicate the
// machine/adapt/dsm Parse* calls. The spec's current field values are
// the flag defaults, so each cmd sets its historical defaults first
// and then binds. Validation happens once, in Normalize, when the
// flags have been parsed.

// BindKernel registers -app and -scale.
func (s *Spec) BindKernel(fs *flag.FlagSet) {
	fs.StringVar(&s.Kernel, "app", s.Kernel, "application: gauss, jacobi, fft3d, nbf, mergesort or quadrature")
	fs.Float64Var(&s.Scale, "scale", s.Scale, "problem scale (1.0 = the paper's sizes)")
}

// BindTeam registers -procs and -hosts.
func (s *Spec) BindTeam(fs *flag.FlagSet) {
	fs.IntVar(&s.Procs, "procs", s.Procs, "initial team size")
	fs.IntVar(&s.Hosts, "hosts", s.Hosts, "workstation pool size")
}

// BindAdapt registers -schedule, -grace and -policy.
func (s *Spec) BindAdapt(fs *flag.FlagSet) {
	fs.StringVar(&s.Schedule, "schedule", s.Schedule, "adapt events, e.g. \"6:leave:7,9:join:7\"")
	fs.Float64Var(&s.Grace, "grace", s.Grace, "default leave grace period in seconds")
	fs.StringVar(&s.Policy, "policy", s.Policy, "derive adapt events from the load traces, e.g. \"high=1.5,low=0.25,dwell=2\"")
}

// BindHetero registers -machines, -load and -links.
func (s *Spec) BindHetero(fs *flag.FlagSet) {
	fs.StringVar(&s.Machines, "machines", s.Machines, "per-machine CPU speeds, e.g. \"4=0.5,7=2\"")
	fs.StringVar(&s.Loads, "load", s.Loads, "per-machine load traces, e.g. \"3=2@5,0@15;6=0.5@0\"")
	fs.StringVar(&s.Links, "links", s.Links, "per-link overrides, e.g. \"0-7=lat:4,bw:0.25\"")
}

// BindProtocol registers -protocol.
func (s *Spec) BindProtocol(fs *flag.FlagSet) {
	fs.StringVar(&s.Protocol, "protocol", s.Protocol, "DSM coherence protocol: tmk (TreadMarks homeless LRC), hlrc (home-based LRC) or hybrid (adaptive per-page)")
}

// BindAll registers the full scenario flag surface.
func (s *Spec) BindAll(fs *flag.FlagSet) {
	s.BindKernel(fs)
	s.BindTeam(fs)
	s.BindAdapt(fs)
	s.BindHetero(fs)
	s.BindProtocol(fs)
}
