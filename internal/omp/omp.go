package omp

import (
	"fmt"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/shmem"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// Config parameterises a Runtime.
type Config struct {
	// Hosts is the workstation pool size; Procs is the initial team
	// size (processes run on hosts 0..Procs-1).
	Hosts int
	Procs int

	// Model overrides the cost model; zero value means the calibrated
	// default.
	Model simtime.CostModel

	// Machine describes per-machine heterogeneity: CPU speed factors
	// and background-load traces, keyed by machine id (hosts start on
	// the machine with their id). Nil means a homogeneous pool and
	// prices bit-identically to the baseline.
	Machine *machine.Model

	// Links configures per-link latency/bandwidth overrides on the
	// fabric before the run starts; nil leaves the paper's uniform
	// switched LAN.
	Links func(*simnet.Fabric) error

	// GCThresholdBytes is the diff-storage GC trigger (0 = default).
	GCThresholdBytes int

	// Protocol selects the DSM coherence protocol; the zero value is
	// dsm.Tmk, the TreadMarks homeless LRC of the paper. dsm.HLRC runs
	// the same programs over home-based LRC.
	Protocol dsm.ProtocolKind

	// Adaptive enables adapt-event processing. With Adaptive false the
	// runtime is the non-adaptive base TreadMarks system: Submit fails
	// and forks never touch the adaptation machinery. Table 1 compares
	// the two variants.
	Adaptive bool

	// Grace is the default leave grace period (0 = the paper's 3 s).
	Grace simtime.Seconds

	// LeaveStrategy selects the normal-leave handoff.
	LeaveStrategy dsm.LeaveStrategy

	// Reassign selects the process-id reassignment strategy.
	Reassign adapt.ReassignStrategy
}

// AdaptationPoint records what happened at one adaptation point where
// at least one event was applied, for the evaluation harness.
type AdaptationPoint struct {
	// Index is the ordinal of the fork at which the point fired.
	Index int64
	// When is the master's virtual time entering the point.
	When simtime.Seconds
	// Elapsed is the extra time the adaptation added (GC + transfer).
	Elapsed simtime.Seconds
	// Applied are the events handled.
	Applied []adapt.Record
	// TeamAfter is the new process-id-to-host mapping.
	TeamAfter []dsm.HostID
	// WindowBytes and WindowMaxLink measure the traffic of the
	// adaptation itself (GC pulls, state handoff, page map).
	WindowBytes   int64
	WindowMaxLink int64
}

// Runtime executes one OpenMP program on the simulated NOW. It is not
// safe for concurrent use: the calling goroutine is the master process.
type Runtime struct {
	cfg     Config
	cluster *dsm.Cluster
	mgr     *adapt.Manager
	team    []dsm.HostID
	master  *simtime.Clock

	forks    int64
	phases   int64
	adaptLog []AdaptationPoint
	forkHook func(*Runtime)
	dynCtr   *shmem.Int64Array

	// restore payload, when the runtime was rebuilt from a checkpoint.
	restoring  []RegionDump
	allocIndex int
}

// RegionDump is one region's checkpointed identity and contents.
type RegionDump struct {
	Name  string
	Bytes int
	Data  []byte
}

// New creates a runtime with hosts 0..Procs-1 active as the initial
// team, mirroring a cluster-wide process start.
func New(cfg Config) (*Runtime, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("omp: Hosts must be positive, got %d", cfg.Hosts)
	}
	if cfg.Procs <= 0 || cfg.Procs > cfg.Hosts {
		return nil, fmt.Errorf("omp: Procs must be in [1,%d], got %d", cfg.Hosts, cfg.Procs)
	}
	cluster, err := dsm.New(dsm.Config{
		MaxHosts:         cfg.Hosts,
		Model:            cfg.Model,
		Machine:          cfg.Machine,
		Links:            cfg.Links,
		GCThresholdBytes: cfg.GCThresholdBytes,
		Protocol:         cfg.Protocol,
		Adaptive:         cfg.Adaptive,
	})
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:     cfg,
		cluster: cluster,
		master:  simtime.NewClock(0),
	}
	for i := 0; i < cfg.Procs; i++ {
		if i > 0 {
			if _, err := cluster.Join(dsm.HostID(i)); err != nil {
				return nil, err
			}
		}
		rt.team = append(rt.team, dsm.HostID(i))
	}
	if cfg.Adaptive {
		rt.mgr = adapt.NewManager(adapt.Config{
			DefaultGrace: cfg.Grace,
			Strategy:     cfg.LeaveStrategy,
			Reassign:     cfg.Reassign,
		})
	}
	return rt, nil
}

// Cluster exposes the DSM substrate (measurement and checkpoint hook).
func (rt *Runtime) Cluster() *dsm.Cluster { return rt.cluster }

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// NProcs returns the current team size. Like omp_get_num_threads, it
// is only guaranteed constant within one parallel construct.
func (rt *Runtime) NProcs() int { return len(rt.team) }

// Team returns a copy of the process-id-to-host mapping.
func (rt *Runtime) Team() []dsm.HostID {
	out := make([]dsm.HostID, len(rt.team))
	copy(out, rt.team)
	return out
}

// Now returns the master's virtual time.
func (rt *Runtime) Now() simtime.Seconds { return rt.master.Now() }

// Forks returns the number of parallel constructs executed so far:
// the adaptation points passed.
func (rt *Runtime) Forks() int64 { return rt.forks }

// AdaptLog returns the adaptation points at which events were applied.
func (rt *Runtime) AdaptLog() []AdaptationPoint {
	out := make([]AdaptationPoint, len(rt.adaptLog))
	copy(out, rt.adaptLog)
	return out
}

// Manager exposes the adapt manager, or nil for the non-adaptive
// variant.
func (rt *Runtime) Manager() *adapt.Manager { return rt.mgr }

// MachineModel returns the per-machine speed/load model, or nil for a
// homogeneous pool.
func (rt *Runtime) MachineModel() *machine.Model { return rt.cluster.MachineModel() }

// ApplyLoadPolicy derives join/leave events from the machine model's
// load traces under the given policy and submits them all: the
// trace-driven stand-in for the paper's load-sensing daemons. Requires
// an adaptive runtime and a machine model; returns the submitted
// events.
func (rt *Runtime) ApplyLoadPolicy(p adapt.LoadPolicy) ([]adapt.Event, error) {
	if rt.mgr == nil {
		return nil, fmt.Errorf("%w; set Config.Adaptive", ErrNotAdaptive)
	}
	mm := rt.MachineModel()
	if mm == nil {
		return nil, fmt.Errorf("omp: a load policy needs Config.Machine load traces")
	}
	events, err := p.Derive(loadTraces(mm), rt.Team())
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		if err := rt.mgr.Submit(e); err != nil {
			return nil, err
		}
	}
	return events, nil
}

// loadTraces adapts the machine model's traces to the policy's input:
// host i runs on machine i at start, the paper's 1:1 binding.
func loadTraces(mm *machine.Model) map[dsm.HostID]machine.Trace {
	out := make(map[dsm.HostID]machine.Trace, mm.Machines())
	for i := 0; i < mm.Machines(); i++ {
		tr := mm.Load(simnet.MachineID(i))
		if len(tr.Steps()) > 0 {
			out[dsm.HostID(i)] = tr
		}
	}
	return out
}

// SetForkHook installs a function called at the start of every fork,
// before pending adapt events are processed. This is how external
// event sources — the paper's daemons and load sensors, or the
// experiment harness's schedules — inject events keyed to virtual time
// or to specific adaptation points. The hook runs on the master
// goroutine with no parallel construct active, so it may inspect
// Team(), Now() and Forks() and call Submit safely.
func (rt *Runtime) SetForkHook(hook func(*Runtime)) { rt.forkHook = hook }

// Submit queues an adapt event (adaptive runtimes only). On a
// non-adaptive runtime the error matches ErrNotAdaptive.
func (rt *Runtime) Submit(e adapt.Event) error {
	if rt.mgr == nil {
		return fmt.Errorf("%w; set Config.Adaptive", ErrNotAdaptive)
	}
	return rt.mgr.Submit(e)
}

// MasterProc returns a Proc bound to the master process and clock for
// sequential sections (initialisation, verification, I/O).
func (rt *Runtime) MasterProc() *Proc {
	return &Proc{ID: 0, N: 1, rt: rt, host: rt.cluster.Master(), clk: rt.master}
}

// AllocFloat64 allocates a shared float64 vector; on a restored
// runtime it rebinds to (and reloads) the checkpointed region instead.
// Legacy wrapper over the generic Alloc.
func (rt *Runtime) AllocFloat64(name string, n int) (*shmem.Float64Array, error) {
	return Alloc[float64](rt, name, n)
}

// AllocFloat64Matrix allocates a shared matrix (see AllocFloat64).
func (rt *Runtime) AllocFloat64Matrix(name string, rows, cols int) (*shmem.Float64Matrix, error) {
	return AllocMatrix[float64](rt, name, rows, cols)
}

// AllocFloat32 allocates a shared float32 vector (see AllocFloat64).
func (rt *Runtime) AllocFloat32(name string, n int) (*shmem.Float32Array, error) {
	return Alloc[float32](rt, name, n)
}

// AllocFloat32Matrix allocates a shared float32 matrix (see
// AllocFloat64).
func (rt *Runtime) AllocFloat32Matrix(name string, rows, cols int) (*shmem.Float32Matrix, error) {
	return AllocMatrix[float32](rt, name, rows, cols)
}

// AllocComplex128 allocates a shared complex vector (see AllocFloat64).
func (rt *Runtime) AllocComplex128(name string, n int) (*shmem.Complex128Array, error) {
	return Alloc[complex128](rt, name, n)
}

// AllocInt32 allocates a shared int32 vector (see AllocFloat64).
func (rt *Runtime) AllocInt32(name string, n int) (*shmem.Int32Array, error) {
	return Alloc[int32](rt, name, n)
}

// Restored reports whether this runtime was rebuilt from a checkpoint.
func (rt *Runtime) Restored() bool { return rt.restoring != nil }

// PrepareCheckpoint runs the section 4.3 checkpoint sequence at an
// adaptation point (no parallel construct may be executing): a garbage
// collection brings shared memory into a well-defined state, the
// master collects every page it lacks, and the region contents are
// dumped. Only the master has process state to save — the slaves are
// between forks and hold none.
func (rt *Runtime) PrepareCheckpoint() ([]RegionDump, dsm.TransferReport, error) {
	gc := rt.cluster.ForceGC(rt.Team())
	rep := rt.cluster.CollectToMaster()
	rep.Elapsed += gc
	rt.master.Advance(rep.Elapsed)
	var dumps []RegionDump
	for _, r := range rt.cluster.Regions() {
		data, err := rt.cluster.DumpRegion(r)
		if err != nil {
			return nil, rep, err
		}
		dumps = append(dumps, RegionDump{Name: r.Name, Bytes: r.Bytes, Data: data})
	}
	return dumps, rep, nil
}

// RestoreTeam re-establishes the checkpointed team on a freshly built
// runtime: the named hosts are spawned and activated, with all shared
// state at the master (recovery redistributes it through page faults).
func (rt *Runtime) RestoreTeam(team []dsm.HostID) error {
	if len(team) == 0 || team[0] != 0 {
		return fmt.Errorf("omp: restored team must start with the master, got %v", team)
	}
	for _, h := range team[1:] {
		if !rt.cluster.Host(h).Active() {
			if _, err := rt.cluster.Join(h); err != nil {
				return err
			}
		}
	}
	// Deactivate initial-team hosts not present in the checkpoint.
	for _, h := range rt.team {
		if h == 0 {
			continue
		}
		found := false
		for _, th := range team {
			if th == h {
				found = true
			}
		}
		if !found {
			if _, err := rt.cluster.NormalLeave(h, rt.cfg.LeaveStrategy); err != nil {
				return err
			}
		}
	}
	rt.team = append([]dsm.HostID(nil), team...)
	return nil
}

// BeginRestore puts the runtime into restore mode: subsequent Alloc
// calls must replay the checkpointed allocation sequence and are filled
// with the dumped contents. Used by the checkpoint package.
func (rt *Runtime) BeginRestore(dumps []RegionDump, masterTime simtime.Seconds, forks int64) {
	rt.restoring = dumps
	rt.allocIndex = 0
	rt.master.AdvanceTo(masterTime)
	rt.forks = forks
}

// restoreCheck validates one step of the allocation replay against the
// checkpointed region sequence. Sizes are compared in bytes, so any
// Element instantiation replays correctly as long as its element size
// times its length matches the dump. Mismatches wrap
// ErrRestoreMismatch.
func (rt *Runtime) restoreCheck(name string, bytes int) error {
	if rt.restoring == nil {
		return nil
	}
	if rt.allocIndex >= len(rt.restoring) {
		return fmt.Errorf("%w: allocation %q has no checkpointed region (only %d were dumped)",
			ErrRestoreMismatch, name, len(rt.restoring))
	}
	d := rt.restoring[rt.allocIndex]
	if d.Name != name || d.Bytes != bytes {
		return fmt.Errorf("%w: allocation %d is %q (%d bytes), checkpoint has %q (%d bytes); the program must replay the same allocations",
			ErrRestoreMismatch, rt.allocIndex, name, bytes, d.Name, d.Bytes)
	}
	return nil
}

func (rt *Runtime) restoreFill(r *dsm.Region) error {
	if rt.restoring == nil {
		return nil
	}
	d := rt.restoring[rt.allocIndex]
	rt.allocIndex++
	return rt.cluster.InstallRegion(r, d.Data)
}
