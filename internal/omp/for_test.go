package omp

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"nowomp/internal/adapt"
)

// rangeLog collects the (lo,hi) ranges a loop body was handed, across
// goroutines.
type rangeLog struct {
	mu     sync.Mutex
	ranges [][2]int
}

func (l *rangeLog) add(lo, hi int) {
	l.mu.Lock()
	l.ranges = append(l.ranges, [2]int{lo, hi})
	l.mu.Unlock()
}

// assertTiles checks that the logged ranges tile [lo,hi) exactly: full
// coverage, no overlap, no stragglers.
func (l *rangeLog) assertTiles(t *testing.T, lo, hi int) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.Slice(l.ranges, func(i, j int) bool { return l.ranges[i][0] < l.ranges[j][0] })
	next := lo
	for _, r := range l.ranges {
		if r[0] != next {
			t.Fatalf("range starts at %d, want %d (gap or overlap); ranges %v", r[0], next, l.ranges)
		}
		if r[1] <= r[0] {
			t.Fatalf("empty or inverted range %v", r)
		}
		next = r[1]
	}
	if next != hi {
		t.Fatalf("coverage ends at %d, want %d", next, hi)
	}
}

func TestForStaticMatchesParallelFor(t *testing.T) {
	const n = 509
	runs := func(do func(rt *Runtime, hits *[n]int32)) ([n]int32, float64) {
		rt := newRT(t, 4, 4, false)
		var hits [n]int32
		do(rt, &hits)
		return hits, float64(rt.Now())
	}
	body := func(hits *[n]int32) func(p *Proc, lo, hi int) {
		return func(p *Proc, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			p.ChargeUnits(hi-lo, 1e-5)
		}
	}
	legacyHits, legacyT := runs(func(rt *Runtime, hits *[n]int32) {
		rt.ParallelFor("loop", 0, n, body(hits))
	})
	forHits, forT := runs(func(rt *Runtime, hits *[n]int32) {
		rt.For("loop", 0, n, body(hits))
	})
	if legacyHits != forHits {
		t.Fatal("For(Static) and ParallelFor covered different iterations")
	}
	for i, h := range forHits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
	if legacyT != forT {
		t.Fatalf("For(Static) virtual time %v differs from ParallelFor %v", forT, legacyT)
	}
}

func TestForReduceMatchesParallelForReduce(t *testing.T) {
	const n = 1000
	sum := func(use func(rt *Runtime) float64) (float64, float64) {
		rt := newRT(t, 4, 3, false)
		if _, err := Alloc[float64](rt, "v", n); err != nil {
			t.Fatal(err)
		}
		got := use(rt)
		return got, float64(rt.Now())
	}
	blockSum := func(p *Proc, lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		p.ChargeUnits(hi-lo, 1e-6)
		return s
	}
	legacy, legacyT := sum(func(rt *Runtime) float64 {
		return rt.ParallelForReduce("sum", 0, n, 0,
			func(a, b float64) float64 { return a + b }, blockSum)
	})
	unified, unifiedT := sum(func(rt *Runtime) float64 {
		return rt.For("sum", 0, n, func(p *Proc, lo, hi int) {
			p.Contribute(blockSum(p, lo, hi))
		}, WithReduce(0, func(a, b float64) float64 { return a + b }))
	})
	want := float64(n-1) * float64(n) / 2
	if legacy != want || unified != want {
		t.Fatalf("sums legacy=%v unified=%v, want %v", legacy, unified, want)
	}
	if legacyT != unifiedT {
		t.Fatalf("reduce virtual time unified %v differs from legacy %v", unifiedT, legacyT)
	}
}

func TestForReduceMax(t *testing.T) {
	rt := newRT(t, 3, 3, false)
	got := rt.For("max", 0, 100, func(p *Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.Contribute(float64((i * 37) % 89))
		}
	}, WithReduce(math.Inf(-1), math.Max))
	if got != 88 {
		t.Fatalf("max = %v, want 88", got)
	}
}

func TestForGuidedCoversDisjointly(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	const n = 1000
	var log rangeLog
	var hits [n]int32
	rt.For("guided", 0, n, func(p *Proc, lo, hi int) {
		log.add(lo, hi)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	}, WithSchedule(Guided, 8))
	log.assertTiles(t, 0, n)
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
	// Guided must shrink: the first claimed chunk is remaining/nprocs,
	// far larger than the configured minimum of 8.
	sort.Slice(log.ranges, func(i, j int) bool { return log.ranges[i][0] < log.ranges[j][0] })
	if first := log.ranges[0][1] - log.ranges[0][0]; first != n/4 {
		t.Fatalf("first guided chunk = %d iterations, want %d", first, n/4)
	}
	last := log.ranges[len(log.ranges)-1]
	if width := last[1] - last[0]; width > 8 {
		t.Fatalf("final guided chunk = %d iterations, want <= the minimum 8", width)
	}
	if rt.Cluster().Stats().LockAcquires.Load() == 0 {
		t.Fatal("guided schedule must go through the Tmk lock")
	}
}

// TestForGuidedUnderTeamResize runs a sequence of guided loops while
// the team grows and shrinks, asserting every construct still tiles
// the full iteration space disjointly with the post-adaptation team.
func TestForGuidedUnderTeamResize(t *testing.T) {
	rt := newRT(t, 6, 4, true)
	if _, err := Alloc[float64](rt, "v", 64); err != nil {
		t.Fatal(err)
	}
	const n = 777
	resizes := []adapt.Event{
		{Kind: adapt.KindJoin, Host: 4},
		{Kind: adapt.KindJoin, Host: 5},
		{Kind: adapt.KindLeave, Host: 2},
		{Kind: adapt.KindLeave, Host: 4},
	}
	teamSizes := map[int]bool{}
	for round := 0; round <= len(resizes); round++ {
		if round > 0 {
			ev := resizes[round-1]
			ev.At = rt.Now()
			if err := rt.Submit(ev); err != nil {
				t.Fatal(err)
			}
			// Let the event mature (spawn delay for joins, grace for
			// leaves) and apply at an adaptation point.
			before := rt.NProcs()
			for i := 0; i < 20 && rt.NProcs() == before; i++ {
				rt.Parallel("tick", func(p *Proc) { p.Charge(1.0) })
			}
			if rt.NProcs() == before {
				t.Fatalf("round %d: event %v never applied", round, ev)
			}
		}
		var log rangeLog
		var procN int32
		rt.For("guided", 0, n, func(p *Proc, lo, hi int) {
			log.add(lo, hi)
			atomic.StoreInt32(&procN, int32(p.N))
			p.ChargeUnits(hi-lo, 1e-6)
		}, WithSchedule(Guided, 4))
		log.assertTiles(t, 0, n)
		teamSizes[int(atomic.LoadInt32(&procN))] = true
	}
	if len(teamSizes) < 3 {
		t.Fatalf("team never resized across rounds: sizes seen %v", teamSizes)
	}
}

func TestForDynamicMatchesParallelForDynamic(t *testing.T) {
	const n = 777
	var hits [n]int32
	rt := newRT(t, 4, 4, false)
	rt.For("dyn", 0, n, func(p *Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	}, WithSchedule(Dynamic, 32))
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestForChunkReduction(t *testing.T) {
	// Contribute folds once per chunk; the total must still be exact.
	rt := newRT(t, 4, 4, false)
	const n = 500
	got := rt.For("chunk-sum", 0, n, func(p *Proc, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		p.Contribute(s)
	}, WithSchedule(StaticChunk, 16), WithReduce(0, func(a, b float64) float64 { return a + b }))
	if want := float64(n-1) * float64(n) / 2; got != want {
		t.Fatalf("chunked reduction = %v, want %v", got, want)
	}
}

func TestForValidation(t *testing.T) {
	rt := newRT(t, 2, 2, false)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("chunk=0 static-chunk", func() {
		rt.For("bad", 0, 10, func(p *Proc, lo, hi int) {}, WithSchedule(StaticChunk, 0))
	})
	mustPanic("chunk=0 dynamic", func() {
		rt.For("bad", 0, 10, func(p *Proc, lo, hi int) {}, WithSchedule(Dynamic, 0))
	})
	mustPanic("negative guided min", func() {
		rt.For("bad", 0, 10, func(p *Proc, lo, hi int) {}, WithSchedule(Guided, -1))
	})
	mustPanic("nil reduce op", func() {
		rt.For("bad", 0, 10, func(p *Proc, lo, hi int) {}, WithReduce(0, nil))
	})
	mustPanic("unknown schedule", func() {
		rt.For("bad", 0, 10, func(p *Proc, lo, hi int) {}, WithSchedule(Schedule(99), 1))
	})
	// Single-process runtime so the body panics on the master
	// goroutine, where recover can observe it.
	rt1 := newRT(t, 1, 1, false)
	mustPanic("Contribute without reduce", func() {
		rt1.For("bad", 0, 10, func(p *Proc, lo, hi int) { p.Contribute(1) })
	})
}

func TestScheduleString(t *testing.T) {
	for s, want := range map[Schedule]string{
		Static: "static", StaticChunk: "static-chunk",
		Dynamic: "dynamic", Guided: "guided", Schedule(42): "schedule(42)",
	} {
		if got := s.String(); got != want {
			t.Fatalf("Schedule(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestSentinelErrors(t *testing.T) {
	rt := newRT(t, 2, 2, false) // non-adaptive
	err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: 1})
	if !errors.Is(err, ErrNotAdaptive) {
		t.Fatalf("Submit on non-adaptive runtime = %v, want ErrNotAdaptive", err)
	}

	rt2 := newRT(t, 2, 1, true)
	rt2.BeginRestore([]RegionDump{{Name: "a", Bytes: 80, Data: make([]byte, 80)}}, 0, 0)
	if _, err := Alloc[float64](rt2, "b", 10); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("mismatched replay name = %v, want ErrRestoreMismatch", err)
	}
	if _, err := Alloc[float64](rt2, "a", 11); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("mismatched replay size = %v, want ErrRestoreMismatch", err)
	}
	if _, err := Alloc[float64](rt2, "a", 10); err != nil {
		t.Fatalf("correct replay failed: %v", err)
	}
	if _, err := Alloc[int32](rt2, "extra", 4); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("replay past the dump = %v, want ErrRestoreMismatch", err)
	}
}
