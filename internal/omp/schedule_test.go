package omp

import (
	"sync/atomic"
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/simtime"
)

func TestParallelForTiledCoversAndAddsPoints(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	const n = 1000
	var hits [n]int32
	forks0 := rt.Forks()
	rt.ParallelForTiled("tiled", 0, n, 8, func(p *Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
	if got := rt.Forks() - forks0; got != 8 {
		t.Fatalf("tiled loop produced %d adaptation points, want 8", got)
	}
}

func TestParallelForTiledReducesAdaptationLatency(t *testing.T) {
	// A leave raised mid-loop: with one construct the team shrinks only
	// after the whole loop; with tiles it shrinks after the next tile.
	run := func(tiles int) (teamDuring []int) {
		rt := newRT(t, 4, 4, true)
		rt.AllocFloat64("v", 256)
		if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 3, At: 0.001}); err != nil {
			t.Fatal(err)
		}
		rt.ParallelForTiled("loop", 0, 400, tiles, func(p *Proc, lo, hi int) {
			if p.ID == 0 {
				teamDuring = append(teamDuring, p.N)
			}
			p.ChargeUnits(hi-lo, 1e-4)
		})
		return teamDuring
	}
	whole := run(1)
	if len(whole) != 1 || whole[0] != 4 {
		t.Fatalf("single construct: team sizes %v, want [4]", whole)
	}
	tiled := run(4)
	if len(tiled) != 4 {
		t.Fatalf("tiled: %d constructs, want 4", len(tiled))
	}
	if tiled[0] != 4 {
		t.Fatalf("tile 0 team = %d, want 4 (event processes at the next point)", tiled[0])
	}
	shrank := false
	for _, n := range tiled[1:] {
		if n == 3 {
			shrank = true
		}
	}
	if !shrank {
		t.Fatalf("tiled run never adapted mid-loop: teams %v", tiled)
	}
}

func TestParallelForTiledEdgeCases(t *testing.T) {
	rt := newRT(t, 2, 2, false)
	var count int32
	// More tiles than iterations: clamps.
	rt.ParallelForTiled("clamp", 0, 3, 10, func(p *Proc, lo, hi int) {
		atomic.AddInt32(&count, int32(hi-lo))
	})
	if count != 3 {
		t.Fatalf("covered %d iterations, want 3", count)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("tiles=0 must panic")
		}
	}()
	rt.ParallelForTiled("bad", 0, 10, 0, func(p *Proc, lo, hi int) {})
}

func TestParallelSectionsRoundRobin(t *testing.T) {
	rt := newRT(t, 4, 3, false)
	ran := make([]int32, 7)
	var secs []func(p *Proc)
	for i := range ran {
		i := i
		secs = append(secs, func(p *Proc) {
			atomic.StoreInt32(&ran[i], int32(p.ID)+1)
		})
	}
	rt.ParallelSections("secs", secs...)
	for i, v := range ran {
		if v == 0 {
			t.Fatalf("section %d never ran", i)
		}
		if want := int32(i%3) + 1; v != want {
			t.Fatalf("section %d ran on proc %d, want %d", i, v-1, want-1)
		}
	}
	// No sections: a no-op, not a fork.
	forks := rt.Forks()
	rt.ParallelSections("empty")
	if rt.Forks() != forks {
		t.Fatal("empty sections must not fork")
	}
}

func TestParallelForDynamicCoversOnce(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	const n = 777
	var hits [n]int32
	rt.ParallelForDynamic("dyn", 0, n, 32, func(p *Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestParallelForDynamicBalancesSkew(t *testing.T) {
	// With per-iteration cost growing across the space (a triangular
	// skew), the static block partition overloads the last process
	// while dynamic scheduling balances chunk by chunk — and must win
	// despite paying for locks and counter-page traffic.
	work := func(p *Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.Charge(simtime.Seconds(float64(i) * 2e-6))
		}
	}
	rtS := newRT(t, 4, 4, false)
	t0 := rtS.Now()
	rtS.ParallelFor("static", 0, 1024, work)
	static := rtS.Now() - t0

	rtD := newRT(t, 4, 4, false)
	t0 = rtD.Now()
	rtD.ParallelForDynamic("dynamic", 0, 1024, 64, work)
	dynamic := rtD.Now() - t0

	if dynamic >= static {
		t.Fatalf("dynamic %.3fs should beat static %.3fs on skewed work", float64(dynamic), float64(static))
	}
	if rtD.Cluster().Stats().LockAcquires.Load() == 0 {
		t.Fatal("dynamic schedule must go through the Tmk lock")
	}
}

func TestParallelForDynamicRepeatedAndSequential(t *testing.T) {
	rt := newRT(t, 4, 2, false)
	var total int64
	for round := 0; round < 3; round++ {
		var sum int64
		rt.ParallelForDynamic("dyn", 100, 200, 7, func(p *Proc, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&sum, int64(i))
			}
		})
		total += sum
	}
	want := int64(3) * (199 + 100) * 100 / 2
	if total != want {
		t.Fatalf("sum over rounds = %d, want %d", total, want)
	}
}

func TestParallelForDynamicChunkValidation(t *testing.T) {
	rt := newRT(t, 2, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("chunk=0 must panic")
		}
	}()
	rt.ParallelForDynamic("bad", 0, 10, 0, func(p *Proc, lo, hi int) {})
}
