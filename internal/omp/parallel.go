package omp

import (
	"fmt"

	"nowomp/internal/dsm"
	"nowomp/internal/engine"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// ParallelFor executes body over the iteration space [lo,hi) with the
// OpenMP static schedule: each team process receives one contiguous
// block computed from its (id, nprocs), recomputed at this fork — the
// re-partitioning mechanism adaptation relies on. The construct forks,
// runs, and joins at a barrier; the fork boundary is an adaptation
// point where pending adapt events are applied first.
//
// Legacy wrapper over For with the default Static schedule.
func (rt *Runtime) ParallelFor(name string, lo, hi int, body func(p *Proc, lo, hi int)) {
	rt.For(name, lo, hi, body)
}

// ParallelForChunk executes body with a static cyclic schedule of the
// given chunk size (OpenMP schedule(static, chunk)): process i runs
// chunks i, i+N, i+2N, ... Body is invoked once per chunk.
//
// Legacy wrapper over For with WithSchedule(StaticChunk, chunk).
func (rt *Runtime) ParallelForChunk(name string, lo, hi, chunk int, body func(p *Proc, lo, hi int)) {
	rt.For(name, lo, hi, body, WithSchedule(StaticChunk, chunk))
}

// Parallel executes body once on every process of the team: the bare
// parallel construct. The iteration partitioning, if any, is the
// body's business via Proc.Block.
func (rt *Runtime) Parallel(name string, body func(p *Proc)) {
	procs := rt.fork(name)
	rt.run(procs, body)
	rt.join(procs)
}

// ParallelForReduce is ParallelFor with a floating-point reduction:
// each process folds its block into a partial starting from identity,
// and the master combines the partials in process-id order at the
// join (deterministic regardless of scheduling).
//
// Legacy wrapper over For with WithReduce; body's return value is the
// process's contribution for its block.
func (rt *Runtime) ParallelForReduce(name string, lo, hi int, identity float64,
	op func(a, b float64) float64, body func(p *Proc, lo, hi int) float64) float64 {

	return rt.For(name, lo, hi, func(p *Proc, lo, hi int) {
		p.Contribute(body(p, lo, hi))
	}, WithReduce(identity, op))
}

// fork applies pending adapt events (this is the adaptation point),
// then broadcasts Tmk_fork to the team and returns one Proc per team
// member. Proc 0 is the master process and shares the master clock.
func (rt *Runtime) fork(name string) []*Proc {
	if rt.forkHook != nil {
		rt.forkHook(rt)
	}
	rt.atAdaptationPoint()
	rt.forks++

	t := len(rt.team)
	master := rt.cluster.Master()
	costs := rt.cluster.Costs()
	if costs.Homogeneous() {
		model := rt.cluster.Model()
		rt.master.Advance(model.Fork(t))
	} else {
		members := make([]simnet.MachineID, t)
		for i, h := range rt.team {
			members[i] = rt.cluster.Host(h).Machine()
		}
		rt.master.Advance(costs.Fork(master.Machine(), members))
	}
	for _, h := range rt.team[1:] {
		rt.cluster.Fabric().Record(master.Machine(), rt.cluster.Host(h).Machine(), msgHeader)
	}

	start := rt.master.Now()
	procs := make([]*Proc, t)
	for i, h := range rt.team {
		clk := rt.master
		if i != 0 {
			clk = simtime.NewClock(start)
		}
		procs[i] = &Proc{ID: i, N: t, rt: rt, host: rt.cluster.Host(h), clk: clk}
	}
	return procs
}

// msgHeader is the DSM protocol header size, charged for fork messages.
const msgHeader = dsm.MsgHeader

// run executes body on every proc of the construct under a fresh
// discrete-event engine: each proc is a coroutine, exactly one runs at
// any instant, and the engine always wakes the runnable proc with the
// lowest virtual time (ties broken by host id). The calling goroutine
// drives the engine, so when run returns every proc has finished the
// body and the construct is quiescent. Blocking primitives reached
// from the body (DSM lock acquires) park the proc on the same engine
// via the cluster, which is what makes lock grant order — and with it
// every simulated outcome — independent of the Go scheduler and
// GOMAXPROCS.
func (rt *Runtime) run(procs []*Proc, body func(p *Proc)) {
	e := engine.New()
	rt.cluster.BeginPhase(e)
	defer rt.cluster.EndPhase()

	for _, p := range procs {
		p := p
		e.Go(fmt.Sprintf("proc %d (host %d)", p.ID, p.host.ID()), int(p.host.ID()), p.clk,
			func(*engine.Proc) { body(p) })
	}
	e.Run()
}

// join implements Tmk_join: urgent-leave classification against the
// arrival times (migrations adjust them per the multiplexing model),
// then the DSM barrier; the master resumes at the barrier release.
func (rt *Runtime) join(procs []*Proc) {
	arrivals := make([]simtime.Seconds, len(procs))
	for i, p := range procs {
		arrivals[i] = p.clk.Now()
	}
	if rt.mgr != nil {
		rt.mgr.AdjustJoin(rt.cluster, rt.team, arrivals)
	}
	res := rt.cluster.Barrier(rt.team, arrivals)
	rt.master.AdvanceTo(res.ReleaseTime)
	rt.phases++
}

// atAdaptationPoint drains matured adapt events, reshaping the team.
func (rt *Runtime) atAdaptationPoint() {
	if rt.mgr == nil || rt.mgr.PendingCount() == 0 {
		return
	}
	now := rt.master.Now()
	before := rt.cluster.Fabric().Snapshot()
	res, err := rt.mgr.AtAdaptationPoint(rt.cluster, rt.team, now)
	if err != nil {
		// Submit-time validation rejects ill-formed events; reaching
		// here means the runtime state is corrupt.
		panic(fmt.Sprintf("omp: adaptation failed: %v", err))
	}
	if len(res.Applied) == 0 {
		return
	}
	rt.master.Advance(res.Elapsed)
	window := rt.cluster.Fabric().Snapshot().Sub(before)
	_, _, maxLink := window.MaxLink()
	rt.team = res.Team
	rt.adaptLog = append(rt.adaptLog, AdaptationPoint{
		Index:         rt.forks,
		When:          now,
		Elapsed:       res.Elapsed,
		Applied:       res.Applied,
		TeamAfter:     rt.Team(),
		WindowBytes:   window.TotalBytes(),
		WindowMaxLink: maxLink,
	})
}
