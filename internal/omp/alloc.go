package omp

import "nowomp/internal/shmem"

// Alloc allocates a shared vector of n elements of T; on a restored
// runtime it rebinds to (and reloads) the checkpointed region instead.
// Go has no generic methods, so the generic allocators are top-level
// functions taking the runtime as their first argument; the legacy
// Runtime.Alloc* methods are thin wrappers over them.
func Alloc[T shmem.Element](rt *Runtime, name string, n int) (*shmem.Array[T], error) {
	if err := rt.restoreCheck(name, n*shmem.Sizeof[T]()); err != nil {
		return nil, err
	}
	a, err := shmem.Alloc[T](rt.cluster, name, n)
	if err != nil {
		return nil, err
	}
	return a, rt.restoreFill(a.Region())
}

// AllocMatrix allocates a shared rows x cols matrix of T (see Alloc).
func AllocMatrix[T shmem.Element](rt *Runtime, name string, rows, cols int) (*shmem.Matrix[T], error) {
	if err := rt.restoreCheck(name, rows*cols*shmem.Sizeof[T]()); err != nil {
		return nil, err
	}
	mx, err := shmem.AllocMatrix[T](rt.cluster, name, rows, cols)
	if err != nil {
		return nil, err
	}
	return mx, rt.restoreFill(mx.Region())
}
