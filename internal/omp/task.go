package omp

import (
	"fmt"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
	"nowomp/internal/task"
)

// TaskProc is the per-process handle passed to task bodies: a Proc
// (shared memory, clock, compute charging) plus the task scheduling
// operations. Its ID and N track the current team across adaptations,
// so — unlike in a loop construct — they may change between two reads
// within one task region.
type TaskProc struct {
	*Proc
	w *task.Worker
}

// Spawn queues body as a child task of the currently executing task.
// The child may run on any team process; it must synchronise with its
// siblings only through TaskWait (or the region end) plus shared
// memory, like an OpenMP untied task.
func (tp *TaskProc) Spawn(body func(p *TaskProc)) {
	tp.w.Spawn(func(w *task.Worker) { body(w.Data.(*TaskProc)) })
}

// TaskWait blocks until every direct child spawned by the current task
// has completed, executing queued tasks while it waits. On return the
// children's shared-memory writes are visible to this process.
func (tp *TaskProc) TaskWait() { tp.w.TaskWait() }

// TaskStats reports the scheduling activity of one task region.
type TaskStats = task.Stats

// taskConfig collects TaskOption settings.
type taskConfig struct {
	closureBytes int
}

// TaskOption configures one Tasks region.
type TaskOption func(*taskConfig)

// WithClosureBytes sets the wire size charged for shipping one task
// closure on a steal or re-home (default task.DefaultClosureBytes).
// Size it like the outlined task struct a compiler would build: a
// function pointer plus the captured firstprivate scalars.
func WithClosureBytes(n int) TaskOption {
	if n <= 0 {
		panic(fmt.Sprintf("omp: closure size must be positive, got %d", n))
	}
	return func(c *taskConfig) { c.closureBytes = n }
}

// Tasks executes one task region as a parallel construct: the team
// forks, the root task runs on the master, and processes pop, spawn
// and steal tasks until the region drains, then join at a barrier.
// Task scheduling points (spawn, taskwait, steal, completion) are
// adaptation points: matured join/leave events drain there, deques
// re-home onto the new team, and — because a leave is held until the
// departing process holds no task state — an irregular computation
// absorbs team resizes mid-tree transparently. With no adapt events the
// region adds zero adaptation overhead, and with a single process (or
// no steals) it prices exactly like the same code hand-scheduled.
func (rt *Runtime) Tasks(name string, root func(p *TaskProc), opts ...TaskOption) TaskStats {
	cfg := taskConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	procs := rt.fork(name)
	cur := procs

	var hooks *task.AdaptHooks
	if rt.mgr != nil {
		eligible := func(stackless func(dsm.HostID) bool) func(adapt.Event) bool {
			return func(e adapt.Event) bool {
				return e.Kind != adapt.KindLeave || stackless(e.Host)
			}
		}
		hooks = &task.AdaptHooks{
			Eligible: func(now simtime.Seconds, stackless func(dsm.HostID) bool) bool {
				if rt.mgr.PendingCount() == 0 {
					return false
				}
				return rt.mgr.HasEligible(rt.cluster, rt.team, now, eligible(stackless))
			},
			Apply: func(now simtime.Seconds, stackless func(dsm.HostID) bool) ([]dsm.HostID, simtime.Seconds, bool) {
				before := rt.cluster.Fabric().Snapshot()
				res, err := rt.mgr.AtAdaptationPointWhere(rt.cluster, rt.team, now, eligible(stackless))
				if err != nil {
					// Submit-time validation rejects ill-formed events;
					// reaching here means the runtime state is corrupt.
					panic(fmt.Sprintf("omp: adaptation failed: %v", err))
				}
				if len(res.Applied) == 0 {
					return rt.team, 0, false
				}
				rt.team = res.Team
				window := rt.cluster.Fabric().Snapshot().Sub(before)
				_, _, maxLink := window.MaxLink()
				// fork() has already counted this construct, so the
				// current construct's ordinal is forks-1 — matching
				// what a fork-boundary adaptation of this construct
				// would have logged.
				rt.adaptLog = append(rt.adaptLog, AdaptationPoint{
					Index:         rt.forks - 1,
					When:          now,
					Elapsed:       res.Elapsed,
					Applied:       res.Applied,
					TeamAfter:     rt.Team(),
					WindowBytes:   window.TotalBytes(),
					WindowMaxLink: maxLink,
				})
				return res.Team, res.Elapsed, true
			},
			Rebound: func(ws []*task.Worker) {
				cur = make([]*Proc, len(ws))
				for i, w := range ws {
					if tp, ok := w.Data.(*TaskProc); ok {
						tp.ID, tp.N = i, len(ws)
						cur[i] = tp.Proc
						continue
					}
					p := &Proc{ID: i, N: len(ws), rt: rt, host: w.Host(), clk: w.Clock()}
					w.Data = &TaskProc{Proc: p, w: w}
					cur[i] = p
				}
			},
		}
	}

	r := task.NewRunner(task.Config{
		Cluster:      rt.cluster,
		ClosureBytes: cfg.closureBytes,
		Hooks:        hooks,
	})
	for _, p := range procs {
		w := r.AddWorker(p.host, p.clk)
		w.Data = &TaskProc{Proc: p, w: w}
	}
	stats := r.Run(func(w *task.Worker) { root(w.Data.(*TaskProc)) })
	rt.join(cur)
	return stats
}
