package omp

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/shmem"
)

// ParallelForTiled splits the iteration space into the given number of
// tiles and executes each tile as its own parallel construct. This is
// the section 7 extension the paper sketches: the compiler can control
// the frequency of adaptation points with transformations similar to
// loop tiling or strip mining, trading fork/join overhead for
// adaptation latency. A leave raised during a long loop reaches an
// adaptation point after one tile instead of the whole loop — the
// knob that keeps grace periods honourable without migration.
func (rt *Runtime) ParallelForTiled(name string, lo, hi, tiles int, body func(p *Proc, lo, hi int)) {
	if tiles < 1 {
		panic(fmt.Sprintf("omp: tile count must be positive, got %d", tiles))
	}
	total := hi - lo
	if total < 0 {
		panic(fmt.Sprintf("omp: invalid iteration space [%d,%d)", lo, hi))
	}
	if tiles > total {
		tiles = total
	}
	if tiles <= 1 {
		rt.ParallelFor(name, lo, hi, body)
		return
	}
	for t := 0; t < tiles; t++ {
		tlo := lo + t*total/tiles
		thi := lo + (t+1)*total/tiles
		rt.ParallelFor(fmt.Sprintf("%s.tile%d", name, t), tlo, thi, body)
	}
}

// ParallelSections executes each section on one process of the team,
// assigned round-robin by section index — the OpenMP sections
// construct. Processes without a section just join.
func (rt *Runtime) ParallelSections(name string, sections ...func(p *Proc)) {
	if len(sections) == 0 {
		return
	}
	rt.Parallel(name, func(p *Proc) {
		for s := p.ID; s < len(sections); s += p.N {
			sections[s](p)
		}
	})
}

// dynLock is the Tmk lock guarding the shared chunk counter of the
// counter-based (Dynamic, Guided) schedules. Lock ids are a global
// namespace managed by host 0; user code should avoid this id.
const dynLock = 1 << 30

// ParallelForDynamic executes body with the OpenMP dynamic schedule:
// processes repeatedly claim the next chunk from a shared counter in
// DSM memory, guarded by a Tmk lock, until the space is exhausted.
// Claiming costs real lock and page traffic, exactly as it would on
// the NOW — dynamic scheduling on a DSM is priced, not free.
//
// Legacy wrapper over For with WithSchedule(Dynamic, chunk).
func (rt *Runtime) ParallelForDynamic(name string, lo, hi, chunk int, body func(p *Proc, lo, hi int)) {
	rt.For(name, lo, hi, body, WithSchedule(Dynamic, chunk))
}

// dynCounter lazily allocates the shared chunk counter backing the
// counter-based schedules: one page of int64 slots (slot 0 is the
// counter), reset at every construct in the sequential section. Like
// all shared allocation, the first use must happen master-side before
// any adaptation, which For guarantees by allocating before the fork.
func (rt *Runtime) dynCounter() *shmem.Int64Array {
	if rt.dynCtr == nil {
		a, err := Alloc[int64](rt, "omp.dynamic-counter", page.Size/8)
		if err != nil {
			panic(fmt.Sprintf("omp: allocating dynamic-schedule counter: %v", err))
		}
		rt.dynCtr = a
	}
	return rt.dynCtr
}
