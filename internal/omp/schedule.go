package omp

import (
	"encoding/binary"
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/shmem"
)

// ParallelForTiled splits the iteration space into the given number of
// tiles and executes each tile as its own parallel construct. This is
// the section 7 extension the paper sketches: the compiler can control
// the frequency of adaptation points with transformations similar to
// loop tiling or strip mining, trading fork/join overhead for
// adaptation latency. A leave raised during a long loop reaches an
// adaptation point after one tile instead of the whole loop — the
// knob that keeps grace periods honourable without migration.
func (rt *Runtime) ParallelForTiled(name string, lo, hi, tiles int, body func(p *Proc, lo, hi int)) {
	if tiles < 1 {
		panic(fmt.Sprintf("omp: tile count must be positive, got %d", tiles))
	}
	total := hi - lo
	if total < 0 {
		panic(fmt.Sprintf("omp: invalid iteration space [%d,%d)", lo, hi))
	}
	if tiles > total {
		tiles = total
	}
	if tiles <= 1 {
		rt.ParallelFor(name, lo, hi, body)
		return
	}
	for t := 0; t < tiles; t++ {
		tlo := lo + t*total/tiles
		thi := lo + (t+1)*total/tiles
		rt.ParallelFor(fmt.Sprintf("%s.tile%d", name, t), tlo, thi, body)
	}
}

// ParallelSections executes each section on one process of the team,
// assigned round-robin by section index — the OpenMP sections
// construct. Processes without a section just join.
func (rt *Runtime) ParallelSections(name string, sections ...func(p *Proc)) {
	if len(sections) == 0 {
		return
	}
	rt.Parallel(name, func(p *Proc) {
		for s := p.ID; s < len(sections); s += p.N {
			sections[s](p)
		}
	})
}

// dynLock is the Tmk lock guarding the shared chunk counter of dynamic
// schedules. Lock ids are a global namespace managed by host 0; user
// code should avoid this id.
const dynLock = 1 << 30

// ParallelForDynamic executes body with the OpenMP dynamic schedule:
// processes repeatedly claim the next chunk from a shared counter in
// DSM memory, guarded by a Tmk lock, until the space is exhausted.
// Claiming costs real lock and page traffic, exactly as it would on
// the NOW — dynamic scheduling on a DSM is priced, not free.
//
// The counter region is allocated on first use and reset at every
// construct; like all shared allocation this must first happen before
// any adaptation (master-side), which ParallelForDynamic guarantees by
// allocating in the sequential section.
func (rt *Runtime) ParallelForDynamic(name string, lo, hi, chunk int, body func(p *Proc, lo, hi int)) {
	if chunk <= 0 {
		panic(fmt.Sprintf("omp: chunk size must be positive, got %d", chunk))
	}
	ctr := rt.dynCounter()
	// Reset the counter in the sequential section.
	mp := rt.MasterProc()
	ctr.Set(mp.Mem(), 0, int64(lo))

	rt.Parallel(name, func(p *Proc) {
		for {
			p.Lock(dynLock)
			next := int(ctr.Get(p.Mem(), 0))
			if next < hi {
				ctr.Set(p.Mem(), 0, int64(min(next+chunk, hi)))
			}
			p.Unlock(dynLock)
			if next >= hi {
				return
			}
			end := next + chunk
			if end > hi {
				end = hi
			}
			body(p, next, end)
		}
	})
}

// dynCounter lazily allocates the shared chunk counter.
func (rt *Runtime) dynCounter() *sharedInt64 {
	if rt.dynCtr == nil {
		a, err := rt.AllocInt32("omp.dynamic-counter", page.Size/4)
		if err != nil {
			panic(fmt.Sprintf("omp: allocating dynamic-schedule counter: %v", err))
		}
		rt.dynCtr = &sharedInt64{arr: a}
	}
	return rt.dynCtr
}

// sharedInt64 stores one int64 in a shared int32 region (two words),
// giving dynamic schedules a DSM-resident counter.
type sharedInt64 struct {
	arr *shmem.Int32Array
}

// Get reads the counter under the caller's lock.
func (c *sharedInt64) Get(m shmem.Context, i int) int64 {
	var raw [2]int32
	c.arr.ReadRange(m, 2*i, 2*i+2, raw[:])
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(raw[0]))
	binary.LittleEndian.PutUint32(b[4:], uint32(raw[1]))
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// Set writes the counter under the caller's lock.
func (c *sharedInt64) Set(m shmem.Context, i int, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	raw := []int32{int32(binary.LittleEndian.Uint32(b[0:])), int32(binary.LittleEndian.Uint32(b[4:]))}
	c.arr.WriteRange(m, 2*i, raw)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
