package omp

import (
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

func newRT(t *testing.T, hosts, procs int, adaptive bool) *Runtime {
	t.Helper()
	rt, err := New(Config{Hosts: hosts, Procs: procs, Adaptive: adaptive})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Hosts: 0, Procs: 1}); err == nil {
		t.Fatal("Hosts=0 must fail")
	}
	if _, err := New(Config{Hosts: 4, Procs: 5}); err == nil {
		t.Fatal("Procs>Hosts must fail")
	}
	if _, err := New(Config{Hosts: 4, Procs: 0}); err == nil {
		t.Fatal("Procs=0 must fail")
	}
}

func TestBlockPartitionProperties(t *testing.T) {
	// Every iteration is assigned exactly once, blocks are contiguous,
	// ordered, and balanced within one iteration.
	f := func(rawN, rawT, rawLo uint16) bool {
		n := int(rawN)%5000 + 1
		tt := int(rawT)%16 + 1
		lo := int(rawLo) % 100
		hi := lo + n
		prevEnd := lo
		minSz, maxSz := n, 0
		for id := 0; id < tt; id++ {
			a, b := blockRange(lo, hi, id, tt)
			if a != prevEnd {
				return false // gap or overlap
			}
			prevEnd = b
			if sz := b - a; sz < minSz {
				minSz = sz
			} else if sz > maxSz {
				maxSz = sz
			}
			if sz := b - a; sz > maxSz {
				maxSz = sz
			}
		}
		if prevEnd != hi {
			return false
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversIterationSpace(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	const n = 1003
	var hits [n]int32
	rt.ParallelFor("cover", 0, n, func(p *Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestParallelForChunkCoversAndInterleaves(t *testing.T) {
	rt := newRT(t, 4, 3, false)
	const n = 250
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	rt.ParallelForChunk("chunk", 0, n, 16, func(p *Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.StoreInt32(&owner[i], int32(p.ID))
		}
	})
	for i := 0; i < n; i++ {
		want := (i / 16) % 3
		if owner[i] != int32(want) {
			t.Fatalf("iteration %d ran on proc %d, want %d", i, owner[i], want)
		}
	}
}

func TestParallelChargesAndJoinWaitsForSlowest(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	t0 := rt.Now()
	rt.Parallel("skew", func(p *Proc) {
		p.Charge(simtime.Seconds(float64(p.ID))) // proc 3 works 3 s
	})
	if d := rt.Now() - t0; d < 3 {
		t.Fatalf("phase took %v, want >= 3 s (slowest proc)", d)
	}
}

func TestSharedMemoryThroughRuntime(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	a, err := rt.AllocFloat64("v", 1024)
	if err != nil {
		t.Fatal(err)
	}
	rt.ParallelFor("fill", 0, 1024, func(p *Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = float64(lo + i)
		}
		a.WriteRange(p.Mem(), lo, buf)
	})
	// Sum in parallel with a different partition parity.
	got := rt.ParallelForReduce("sum", 0, 1024, 0,
		func(x, y float64) float64 { return x + y },
		func(p *Proc, lo, hi int) float64 {
			buf := make([]float64, hi-lo)
			a.ReadRange(p.Mem(), lo, hi, buf)
			s := 0.0
			for _, v := range buf {
				s += v
			}
			return s
		})
	want := float64(1023 * 1024 / 2)
	if got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestNonAdaptiveRejectsEvents(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 1, At: 0})
	if err == nil {
		t.Fatal("non-adaptive runtime must reject adapt events")
	}
}

func TestLeaveShrinksTeamAtNextFork(t *testing.T) {
	rt := newRT(t, 4, 4, true)
	a, _ := rt.AllocFloat64("v", 4096)
	rt.ParallelFor("w", 0, 4096, func(p *Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = 1
		}
		a.WriteRange(p.Mem(), lo, buf)
		p.Charge(0.5)
	})
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: rt.Now()}); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	rt.ParallelFor("after", 0, 4096, func(p *Proc, lo, hi int) {
		if p.ID == 0 {
			sizes = append(sizes, p.N)
		}
	})
	if rt.NProcs() != 3 {
		t.Fatalf("team size = %d, want 3", rt.NProcs())
	}
	if want := []dsm.HostID{0, 1, 3}; !reflect.DeepEqual(rt.Team(), want) {
		t.Fatalf("team = %v, want %v", rt.Team(), want)
	}
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("in-construct team size = %v, want [3]", sizes)
	}
	log := rt.AdaptLog()
	if len(log) != 1 || len(log[0].Applied) != 1 {
		t.Fatalf("adapt log = %+v, want one point with one event", log)
	}
	if log[0].Elapsed <= 0 || log[0].WindowBytes <= 0 {
		t.Fatalf("adaptation cost not recorded: %+v", log[0])
	}
	// Data survives re-partitioning.
	sum := rt.ParallelForReduce("check", 0, 4096, 0,
		func(x, y float64) float64 { return x + y },
		func(p *Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a.Get(p.Mem(), i)
			}
			return s
		})
	if sum != 4096 {
		t.Fatalf("post-leave sum = %g, want 4096", sum)
	}
}

func TestJoinGrowsTeamWhenSpawnCompletes(t *testing.T) {
	rt := newRT(t, 4, 2, true)
	rt.AllocFloat64("v", 512)
	if err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: 2, At: 0}); err != nil {
		t.Fatal(err)
	}
	// The first fork happens before spawn+connect completes (~0.75 s):
	// the join must wait.
	rt.Parallel("p1", func(p *Proc) { p.Charge(0.1) })
	if rt.NProcs() != 2 {
		t.Fatalf("join applied too early: team = %d", rt.NProcs())
	}
	// Burn past the spawn time.
	rt.Parallel("p2", func(p *Proc) { p.Charge(1.0) })
	rt.Parallel("p3", func(p *Proc) {})
	if rt.NProcs() != 3 {
		t.Fatalf("team = %d, want 3 after join", rt.NProcs())
	}
}

func TestUrgentLeaveThroughRuntime(t *testing.T) {
	rt, err := New(Config{Hosts: 3, Procs: 3, Adaptive: true, Grace: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rt.AllocFloat64("v", 2048)
	rt.ParallelFor("warm", 0, 2048, func(p *Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = 2
		}
		a.WriteRange(p.Mem(), lo, buf)
	})
	// Leave raised one second into the next phase, which runs 10 s of
	// compute: the 0.5 s grace expires mid-phase, forcing migration.
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: rt.Now() + 1.0}); err != nil {
		t.Fatal(err)
	}
	rt.Parallel("long", func(p *Proc) { p.Charge(10) })
	rt.Parallel("next", func(p *Proc) {})
	if rt.NProcs() != 2 {
		t.Fatalf("team = %d, want 2", rt.NProcs())
	}
	log := rt.AdaptLog()
	if len(log) != 1 || !log[0].Applied[0].Urgent {
		t.Fatalf("expected an urgent leave, log = %+v", log)
	}
	plan := log[0].Applied[0].Plan
	if plan == nil || plan.Cost <= rt.Cluster().Model().SpawnTime {
		t.Fatalf("urgent leave must carry a migration plan, got %+v", plan)
	}
	// Data integrity after migration + leave.
	sum := rt.ParallelForReduce("check", 0, 2048, 0,
		func(x, y float64) float64 { return x + y },
		func(p *Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a.Get(p.Mem(), i)
			}
			return s
		})
	if sum != 4096 {
		t.Fatalf("post-urgent-leave sum = %g, want 4096", sum)
	}
}

func TestAdaptiveNoEventsMatchesNonAdaptive(t *testing.T) {
	// Table 1's headline: in the absence of adapt events the adaptive
	// system has virtually no overhead and identical network traffic.
	run := func(adaptive bool) (int64, int64, simtime.Seconds, dsm.StatsSnapshot) {
		rt := newRT(t, 4, 4, adaptive)
		a, _ := rt.AllocFloat64("v", 8192)
		for it := 0; it < 5; it++ {
			rt.ParallelFor("phase", 0, 8192, func(p *Proc, lo, hi int) {
				buf := make([]float64, hi-lo)
				a.ReadRange(p.Mem(), lo, hi, buf)
				for i := range buf {
					buf[i] += 1
				}
				a.WriteRange(p.Mem(), lo, buf)
				p.ChargeUnits(hi-lo, simtime.Micros(0.2))
			})
		}
		w := rt.Cluster().Fabric().Snapshot()
		return w.TotalBytes(), w.TotalMessages(), rt.Now(), rt.Cluster().Stats().Snapshot()
	}
	b1, m1, t1, s1 := run(false)
	b2, m2, t2, s2 := run(true)
	if b1 != b2 || m1 != m2 {
		t.Fatalf("traffic differs: %d/%d bytes, %d/%d msgs", b1, b2, m1, m2)
	}
	if t1 != t2 {
		t.Fatalf("runtime differs: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("protocol stats differ:\n%+v\n%+v", s1, s2)
	}
}

func TestMasterProcSequentialAccess(t *testing.T) {
	rt := newRT(t, 2, 2, false)
	a, _ := rt.AllocFloat64("v", 100)
	mp := rt.MasterProc()
	a.Set(mp.Mem(), 50, 3.5)
	if got := a.Get(mp.Mem(), 50); got != 3.5 {
		t.Fatalf("master read %g, want 3.5", got)
	}
	if mp.ID != 0 {
		t.Fatal("master proc must have id 0")
	}
}

func TestForksCountAdaptationPoints(t *testing.T) {
	rt := newRT(t, 2, 2, false)
	rt.AllocFloat64("v", 64)
	for i := 0; i < 7; i++ {
		rt.Parallel("p", func(p *Proc) {})
	}
	if rt.Forks() != 7 {
		t.Fatalf("forks = %d, want 7", rt.Forks())
	}
}

func TestProcLockFromParallel(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	a, _ := rt.AllocFloat64("v", 8)
	rt.Parallel("locked-sum", func(p *Proc) {
		p.Lock(1)
		a.Set(p.Mem(), 0, a.Get(p.Mem(), 0)+1)
		p.Unlock(1)
	})
	if got := a.Get(rt.MasterProc().Mem(), 0); got != 4 {
		t.Fatalf("locked counter = %g, want 4", got)
	}
}

func TestChargePanicsOnNegative(t *testing.T) {
	rt := newRT(t, 2, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge must panic")
		}
	}()
	rt.MasterProc().Charge(-1)
}

// TestInvariantsAfterFullAppLifecycle runs a shared-memory workload
// through leaves, joins, GCs and checkpointable points, validating the
// DSM's global invariants at every adaptation point.
func TestInvariantsAfterFullAppLifecycle(t *testing.T) {
	rt := newRT(t, 5, 4, true)
	a, _ := rt.AllocFloat64("v", 8192)
	events := []adapt.Event{
		{Kind: adapt.KindLeave, Host: 2, At: 0.5},
		{Kind: adapt.KindJoin, Host: 4, At: 0.8},
		{Kind: adapt.KindLeave, Host: 3, At: 2.5},
		{Kind: adapt.KindJoin, Host: 2, At: 3.0},
	}
	for _, e := range events {
		if err := rt.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	for it := 0; it < 12; it++ {
		rt.ParallelFor("sweep", 0, 8192, func(p *Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			a.ReadRange(p.Mem(), lo, hi, buf)
			for i := range buf {
				buf[i] += 1
			}
			a.WriteRange(p.Mem(), lo, buf)
			p.Charge(0.4)
		})
		if err := rt.Cluster().CheckInvariants(); err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
	}
	if got := appliedEvents(rt); got != 4 {
		t.Fatalf("applied events = %d, want 4", got)
	}
	sum := rt.ParallelForReduce("check", 0, 8192, 0,
		func(x, y float64) float64 { return x + y },
		func(p *Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a.Get(p.Mem(), i)
			}
			return s
		})
	if sum != 12*8192 {
		t.Fatalf("sum = %g, want %d", sum, 12*8192)
	}
}

func appliedEvents(rt *Runtime) int {
	n := 0
	for _, ap := range rt.AdaptLog() {
		n += len(ap.Applied)
	}
	return n
}
