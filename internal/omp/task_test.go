package omp

import (
	"strings"
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/simtime"
)

// taskTree runs a small recursive task tree over a shared array: leaf
// tasks charge skewed compute and write their range, interior tasks
// merge-sum their halves after a taskwait. Returns the checksum.
func taskTree(t *testing.T, rt *Runtime, n, leaf int) (float64, TaskStats) {
	t.Helper()
	a, err := Alloc[float64](rt, "tree.data", n)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	var rec func(tp *TaskProc, lo, hi int)
	rec = func(tp *TaskProc, lo, hi int) {
		if hi-lo <= leaf {
			buf := make([]float64, hi-lo)
			for i := range buf {
				buf[i] = float64((lo+i)%97) * 1.25
			}
			a.WriteRange(tp.Mem(), lo, buf)
			// Skew: early ranges are 8x more expensive.
			per := simtime.Micros(100)
			if lo < hi && lo < (hi-lo)*4 {
				per *= 8
			}
			tp.ChargeUnits(hi-lo, per)
			return
		}
		mid := lo + (hi-lo)/2
		tp.Spawn(func(c *TaskProc) { rec(c, lo, mid) })
		tp.Spawn(func(c *TaskProc) { rec(c, mid, hi) })
		tp.TaskWait()
	}
	stats := rt.Tasks("tree", func(tp *TaskProc) { rec(tp, 0, n) })

	mp := rt.MasterProc()
	buf := make([]float64, n)
	a.ReadRange(mp.Mem(), 0, n, buf)
	sum := 0.0
	for i, v := range buf {
		sum += v * float64(i%13+1)
	}
	return sum, stats
}

// seqTreeChecksum is the sequential reference of taskTree's result.
func seqTreeChecksum(n int) float64 {
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(i%97) * 1.25
	}
	sum := 0.0
	for i, v := range buf {
		sum += v * float64(i%13+1)
	}
	return sum
}

// A task region on an adaptive runtime with no adapt events must cost
// exactly what the non-adaptive variant costs, byte for byte — the
// Table 1 headline extended to tasking.
func TestTasksAdaptivityIsFree(t *testing.T) {
	n, leaf := 1<<13, 1<<10
	run := func(adaptive bool) (simtime.Seconds, int64, float64, TaskStats) {
		rt, err := New(Config{Hosts: 8, Procs: 4, Adaptive: adaptive})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		sum, stats := taskTree(t, rt, n, leaf)
		return rt.Now(), rt.Cluster().Fabric().Snapshot().TotalBytes(), sum, stats
	}
	tA, bA, sA, stA := run(true)
	tN, bN, sN, stN := run(false)
	if tA != tN {
		t.Errorf("adaptive %v vs non-adaptive %v virtual time", tA, tN)
	}
	if bA != bN {
		t.Errorf("adaptive %d vs non-adaptive %d traffic bytes", bA, bN)
	}
	if sA != sN {
		t.Errorf("adaptive %g vs non-adaptive %g checksum", sA, sN)
	}
	if stA.Adaptations != 0 {
		t.Errorf("adaptations = %d with no events", stA.Adaptations)
	}
	if stA.Steals != stN.Steals {
		t.Errorf("steal counts diverge: %d vs %d", stA.Steals, stN.Steals)
	}
}

// With a single process a task region is hand-scheduled sequential
// execution: no steals, no task traffic, and virtual time equal to the
// same construct's compute charges.
func TestTasksSingleProcIsSequential(t *testing.T) {
	rt, err := New(Config{Hosts: 4, Procs: 1, Adaptive: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n, leaf := 1<<12, 1<<10
	before := rt.Cluster().Fabric().Snapshot().TotalBytes()
	sum, stats := taskTree(t, rt, n, leaf)
	after := rt.Cluster().Fabric().Snapshot().TotalBytes()

	if want := seqTreeChecksum(n); sum != want {
		t.Errorf("checksum %g, sequential reference %g", sum, want)
	}
	if after != before {
		t.Errorf("single-proc task region moved %d bytes on the network", after-before)
	}
	if stats.Steals != 0 || stats.MigratedExec != 0 || stats.RemoteCompletions != 0 {
		t.Errorf("single-proc region recorded remote activity: %+v", stats)
	}
	if stats.Spawned != stats.Executed {
		t.Errorf("spawned %d != executed %d", stats.Spawned, stats.Executed)
	}
}

// Checksums are bit-identical to the sequential reference for every
// team size, and the steal accounting invariant holds: with no
// adaptations, a task executes away from home exactly when stolen.
func TestTasksDeterministicAcrossTeamSizes(t *testing.T) {
	want := seqTreeChecksum(1 << 13)
	for _, procs := range []int{1, 2, 3, 4, 7} {
		rt, err := New(Config{Hosts: 8, Procs: procs, Adaptive: true})
		if err != nil {
			t.Fatalf("New(%d): %v", procs, err)
		}
		sum, stats := taskTree(t, rt, 1<<13, 1<<10)
		if sum != want {
			t.Errorf("procs=%d: checksum %g, reference %g", procs, sum, want)
		}
		if stats.Spawned != stats.Executed {
			t.Errorf("procs=%d: spawned %d != executed %d", procs, stats.Spawned, stats.Executed)
		}
		if stats.MigratedExec != stats.Steals {
			t.Errorf("procs=%d: %d migrated executions but %d steals", procs, stats.MigratedExec, stats.Steals)
		}
		if procs > 1 && stats.Steals == 0 {
			t.Errorf("procs=%d: no steals on a skewed tree", procs)
		}
		// Determinism: an identical run reproduces time, traffic and stats.
		rt2, err := New(Config{Hosts: 8, Procs: procs, Adaptive: true})
		if err != nil {
			t.Fatalf("New(%d): %v", procs, err)
		}
		sum2, stats2 := taskTree(t, rt2, 1<<13, 1<<10)
		if sum2 != sum {
			t.Errorf("procs=%d: checksums diverge across identical runs", procs)
		}
		if rt2.Now() != rt.Now() {
			t.Errorf("procs=%d: virtual times diverge across identical runs: %v vs %v", procs, rt2.Now(), rt.Now())
		}
		if stats2.Steals != stats.Steals || stats2.Executed != stats.Executed {
			t.Errorf("procs=%d: schedules diverge across identical runs", procs)
		}
	}
}

// A join event submitted before the region matures mid-tree: the team
// grows at a task scheduling point, the new process steals in, and the
// result is still bit-identical to the sequential reference.
func TestTasksJoinMidTree(t *testing.T) {
	rt, err := New(Config{Hosts: 8, Procs: 2, Adaptive: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Matures ~0.85s into the region (spawn + connect lead time).
	if err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: 5, At: 0.1}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sum, stats := taskTree(t, rt, 1<<13, 1<<9)
	if want := seqTreeChecksum(1 << 13); sum != want {
		t.Errorf("checksum %g, reference %g", sum, want)
	}
	if stats.Adaptations == 0 {
		t.Fatalf("join never applied mid-tree; stats %+v, team %v", stats, rt.Team())
	}
	if rt.NProcs() != 3 {
		t.Errorf("team size %d after join, want 3", rt.NProcs())
	}
	if got := stats.ExecutedByHost[5]; got == 0 {
		t.Errorf("joined host executed no tasks")
	}
	if len(rt.AdaptLog()) == 0 {
		t.Errorf("adaptation not recorded in the runtime log")
	}
}

// A leave event matures mid-tree: it is held until the departing
// process is stackless, its deque re-homes, and the checksum is still
// exact.
func TestTasksLeaveMidTree(t *testing.T) {
	rt, err := New(Config{Hosts: 8, Procs: 4, Adaptive: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 3, At: 0.5, Grace: 30}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sum, stats := taskTree(t, rt, 1<<13, 1<<9)
	if want := seqTreeChecksum(1 << 13); sum != want {
		t.Errorf("checksum %g, reference %g", sum, want)
	}
	if stats.Adaptations == 0 {
		t.Fatalf("leave never applied; team %v", rt.Team())
	}
	if rt.NProcs() != 3 {
		t.Errorf("team size %d after leave, want 3", rt.NProcs())
	}
	for _, h := range rt.Team() {
		if h == 3 {
			t.Errorf("host 3 still in team %v", rt.Team())
		}
	}
	if stats.MigratedExec > stats.Steals+stats.Rehomed {
		t.Errorf("accounting: %d migrated executions exceed %d steals + %d rehomes",
			stats.MigratedExec, stats.Steals, stats.Rehomed)
	}
	if stats.Spawned != stats.Executed {
		t.Errorf("spawned %d != executed %d", stats.Spawned, stats.Executed)
	}
}

// Leave and join in one region, exercising re-homing plus a fresh
// stealer while frames are suspended across the adaptation.
func TestTasksLeaveAndJoinMidTree(t *testing.T) {
	rt, err := New(Config{Hosts: 8, Procs: 3, Adaptive: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: 0.4, Grace: 30}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: 6, At: 0.1}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sum, stats := taskTree(t, rt, 1<<14, 1<<9)
	if want := seqTreeChecksum(1 << 14); sum != want {
		t.Errorf("checksum %g, reference %g", sum, want)
	}
	if stats.Adaptations == 0 {
		t.Fatalf("no adaptation applied; team %v", rt.Team())
	}
	if rt.NProcs() != 3 {
		t.Errorf("team size %d, want 3 (one out, one in)", rt.NProcs())
	}
	if stats.Spawned != stats.Executed {
		t.Errorf("spawned %d != executed %d", stats.Spawned, stats.Executed)
	}
}

// Loop constructs still work after a task region (the runtime's team
// state stays consistent through task-point adaptations).
func TestTasksThenLoop(t *testing.T) {
	rt, err := New(Config{Hosts: 8, Procs: 2, Adaptive: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: 4, At: 0.05}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sum, _ := taskTree(t, rt, 1<<13, 1<<9)
	if want := seqTreeChecksum(1 << 13); sum != want {
		t.Fatalf("checksum %g, reference %g", sum, want)
	}
	got := rt.For("after", 0, 1000, func(p *Proc, lo, hi int) {
		p.Contribute(float64(hi - lo))
	}, WithReduce(0, func(a, b float64) float64 { return a + b }))
	if got != 1000 {
		t.Errorf("post-region loop covered %g iterations, want 1000", got)
	}
}

// A Tmk lock held across a task scheduling point used to be a banned
// pattern (the bespoke task dispatcher would deadlock); on the shared
// engine it simply serialises the contenders: the holder is resumed,
// releases, and the waiter is granted in virtual-time order.
func TestTasksLockAcrossSchedulingPointWorks(t *testing.T) {
	rt, err := New(Config{Hosts: 2, Procs: 2, Adaptive: false})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, err := Alloc[float64](rt, "locked.v", 8)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	rt.Tasks("locked", func(tp *TaskProc) {
		tp.Lock(7)
		for i := 0; i < 4; i++ {
			tp.Spawn(func(c *TaskProc) {
				c.Lock(7) // contends while the spawner holds the lock
				a.Set(c.Mem(), 0, a.Get(c.Mem(), 0)+1)
				c.Unlock(7)
			})
		}
		a.Set(tp.Mem(), 0, a.Get(tp.Mem(), 0)+1)
		tp.Unlock(7) // released before the wait: children may now run anywhere
		tp.TaskWait()
	})
	if got := a.Get(rt.MasterProc().Mem(), 0); got != 5 {
		t.Fatalf("locked counter = %g, want 5", got)
	}
}

// A genuine lock cycle — a task re-acquiring a lock its own host holds,
// with no runnable process left to release it — is detected by the
// engine, which panics naming the parked procs and their wait reasons
// instead of hanging.
func TestTasksLockSelfDeadlockPanics(t *testing.T) {
	rt, err := New(Config{Hosts: 2, Procs: 1, Adaptive: false})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("self-deadlocked in-region lock did not panic")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "lock 7") {
			t.Fatalf("unexpected panic: %v", v)
		}
	}()
	rt.Tasks("locked", func(tp *TaskProc) {
		tp.Lock(7)
		tp.Spawn(func(c *TaskProc) {
			c.Lock(7) // same single worker already holds lock 7: a cycle
			c.Unlock(7)
		})
		tp.TaskWait()
		tp.Unlock(7)
	})
}
