package omp

import (
	"errors"
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
)

func TestRestoreCheckMismatches(t *testing.T) {
	rt := newRT(t, 3, 2, true)
	rt.BeginRestore([]RegionDump{
		{Name: "a", Bytes: 800, Data: make([]byte, 800)},
	}, 5.0, 7)
	if !rt.Restored() {
		t.Fatal("runtime must be in restore mode")
	}
	if rt.Now() < 5.0 {
		t.Fatalf("restored clock = %v, want >= 5", rt.Now())
	}
	if rt.Forks() != 7 {
		t.Fatalf("restored forks = %d, want 7", rt.Forks())
	}
	// Wrong name.
	if _, err := rt.AllocFloat64("b", 100); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("mismatched name must fail with ErrRestoreMismatch, got %v", err)
	}
	// Wrong size.
	if _, err := rt.AllocFloat64("a", 50); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("mismatched size must fail with ErrRestoreMismatch, got %v", err)
	}
	// Correct replay succeeds and loads data.
	a, err := rt.AllocFloat64("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	// A second allocation has no checkpointed region.
	if _, err := rt.AllocFloat64("extra", 10); !errors.Is(err, ErrRestoreMismatch) {
		t.Fatalf("extra allocation must fail with ErrRestoreMismatch, got %v", err)
	}
}

func TestRestoreCheckAllTypes(t *testing.T) {
	rt := newRT(t, 2, 1, true)
	rt.BeginRestore([]RegionDump{
		{Name: "f32", Bytes: 400, Data: make([]byte, 400)},
		{Name: "m32", Bytes: 160, Data: make([]byte, 160)},
		{Name: "m64", Bytes: 320, Data: make([]byte, 320)},
		{Name: "z", Bytes: 320, Data: make([]byte, 320)},
		{Name: "i", Bytes: 40, Data: make([]byte, 40)},
	}, 0, 0)
	if _, err := rt.AllocFloat32("f32", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat32Matrix("m32", 10, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat64Matrix("m64", 10, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocComplex128("z", 20); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocInt32("i", 10); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreTeamValidation(t *testing.T) {
	rt := newRT(t, 4, 2, true)
	if err := rt.RestoreTeam(nil); err == nil {
		t.Fatal("empty team must fail")
	}
	if err := rt.RestoreTeam([]dsm.HostID{1, 0}); err == nil {
		t.Fatal("team not led by master must fail")
	}
	// Grow to {0,2,3}: host 1 (initial team) must be deactivated.
	if err := rt.RestoreTeam([]dsm.HostID{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if rt.NProcs() != 3 {
		t.Fatalf("team = %d, want 3", rt.NProcs())
	}
	if rt.Cluster().Host(1).Active() {
		t.Fatal("host 1 must have been deactivated")
	}
	if !rt.Cluster().Host(2).Active() || !rt.Cluster().Host(3).Active() {
		t.Fatal("hosts 2 and 3 must be active")
	}
}

func TestAdaptLogIsACopy(t *testing.T) {
	rt := newRT(t, 3, 3, true)
	rt.AllocFloat64("v", 64)
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: rt.Now()}); err != nil {
		t.Fatal(err)
	}
	rt.Parallel("tick", func(p *Proc) {})
	log := rt.AdaptLog()
	if len(log) != 1 {
		t.Fatalf("log = %d entries", len(log))
	}
	log[0].Index = -999
	if rt.AdaptLog()[0].Index == -999 {
		t.Fatal("AdaptLog must return a copy")
	}
}

func TestTeamIsACopy(t *testing.T) {
	rt := newRT(t, 3, 3, false)
	team := rt.Team()
	team[0] = 99
	if rt.Team()[0] == 99 {
		t.Fatal("Team must return a copy")
	}
}
