package omp

import "errors"

// Sentinel errors, exposed so callers can classify failures with
// errors.Is instead of string-matching.
var (
	// ErrNotAdaptive reports an adapt event submitted to a runtime
	// built without Config.Adaptive (the non-adaptive base TreadMarks
	// variant).
	ErrNotAdaptive = errors.New("omp: adapt event on non-adaptive runtime")

	// ErrRestoreMismatch reports an allocation replay that diverged
	// from the checkpointed sequence during restore: wrong name, wrong
	// byte size, or an allocation with no checkpointed region.
	ErrRestoreMismatch = errors.New("omp: restore allocation mismatch")
)
