package omp

import (
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

// TestMultipleSimultaneousJoinsAndLeaves: several events at one
// adaptation point, including a join and two leaves, share a single
// point and leave a consistent team.
func TestMultipleSimultaneousJoinsAndLeaves(t *testing.T) {
	rt := newRT(t, 6, 4, true)
	a, _ := rt.AllocFloat64("v", 8192)
	rt.ParallelFor("w", 0, 8192, func(p *Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = 1
		}
		a.WriteRange(p.Mem(), lo, buf)
	})
	now := rt.Now()
	for _, e := range []adapt.Event{
		{Kind: adapt.KindLeave, Host: 1, At: now},
		{Kind: adapt.KindLeave, Host: 3, At: now},
		{Kind: adapt.KindJoin, Host: 4, At: now},
		{Kind: adapt.KindJoin, Host: 5, At: now},
	} {
		if err := rt.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	// Burn virtual time so the joins' spawns complete, then hit one
	// adaptation point.
	rt.Parallel("burn", func(p *Proc) { p.Charge(1.0) })
	rt.Parallel("tick", func(p *Proc) {})
	if rt.NProcs() != 4 {
		t.Fatalf("team = %d, want 4 (4 - 2 leaves + 2 joins)", rt.NProcs())
	}
	// The two leaves mature immediately and share one adaptation point
	// (and its single GC); the joins wait for their spawns and land on
	// a later point together.
	log := rt.AdaptLog()
	if len(log) != 2 {
		t.Fatalf("adaptation points = %d, want 2 (leaves batch, joins batch)", len(log))
	}
	if len(log[0].Applied) != 2 || len(log[1].Applied) != 2 {
		t.Fatalf("batch sizes = %d, %d, want 2 and 2", len(log[0].Applied), len(log[1].Applied))
	}
	if gcs := rt.Cluster().Stats().GCs.Load(); gcs != 2 {
		t.Fatalf("GCs = %d, want 2 (one per batch)", gcs)
	}
	// All data still correct across the reshuffle.
	sum := rt.ParallelForReduce("check", 0, 8192, 0,
		func(x, y float64) float64 { return x + y },
		func(p *Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a.Get(p.Mem(), i)
			}
			return s
		})
	if sum != 8192 {
		t.Fatalf("sum = %g, want 8192", sum)
	}
}

// TestLeaveEverySlaveSequentially shrinks an 8-process team to just
// the master, one leave per point, and the data survives.
func TestLeaveEverySlaveSequentially(t *testing.T) {
	rt := newRT(t, 8, 8, true)
	a, _ := rt.AllocFloat64("v", 16384)
	rt.ParallelFor("init", 0, 16384, func(p *Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = float64(lo + i)
		}
		a.WriteRange(p.Mem(), lo, buf)
	})
	for h := 7; h >= 1; h-- {
		if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: dsm.HostID(h), At: rt.Now()}); err != nil {
			t.Fatal(err)
		}
		rt.Parallel("tick", func(p *Proc) { p.Charge(0.01) })
		if rt.NProcs() != h {
			t.Fatalf("after leave of %d: team = %d, want %d", h, rt.NProcs(), h)
		}
	}
	// Master-only team still computes correctly.
	sum := rt.ParallelForReduce("check", 0, 16384, 0,
		func(x, y float64) float64 { return x + y },
		func(p *Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a.Get(p.Mem(), i)
			}
			return s
		})
	if want := float64(16383) * 16384 / 2; sum != want {
		t.Fatalf("sum = %g, want %g", sum, want)
	}
}

// TestAdaptationDuringDynamicSchedule: dynamic scheduling and
// adaptation interleave across constructs.
func TestAdaptationDuringDynamicSchedule(t *testing.T) {
	rt := newRT(t, 4, 4, true)
	a, _ := rt.AllocFloat64("v", 4096)
	if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: 0.0001}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		rt.ParallelForDynamic("dyn", 0, 4096, 256, func(p *Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			a.ReadRange(p.Mem(), lo, hi, buf)
			for i := range buf {
				buf[i]++
			}
			a.WriteRange(p.Mem(), lo, buf)
			p.ChargeUnits(hi-lo, simtime.Micros(0.2))
		})
	}
	if rt.NProcs() != 3 {
		t.Fatalf("team = %d, want 3", rt.NProcs())
	}
	for i := 0; i < 4096; i += 511 {
		if got := a.Get(rt.MasterProc().Mem(), i); got != 3 {
			t.Fatalf("v[%d] = %g, want 3", i, got)
		}
	}
}

// TestGracePeriodFromConfigPropagates: the runtime's default grace is
// what classifies urgency.
func TestGracePeriodFromConfigPropagates(t *testing.T) {
	rt, err := New(Config{Hosts: 3, Procs: 3, Adaptive: true, Grace: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Manager().Config().DefaultGrace; got != 42 {
		t.Fatalf("manager grace = %v, want 42", got)
	}
	// Zero means the paper's default.
	rt2, err := New(Config{Hosts: 3, Procs: 3, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Manager().Config().DefaultGrace; got != adapt.DefaultGrace {
		t.Fatalf("default grace = %v, want %v", got, adapt.DefaultGrace)
	}
}
