package omp

import (
	"fmt"

	"nowomp/internal/dsm"
	"nowomp/internal/shmem"
	"nowomp/internal/simtime"
)

// Proc is one process of a forked team, passed to parallel bodies.
// It carries the process's address space and virtual clock; shared-
// array accesses through Mem() fault and charge against it.
type Proc struct {
	// ID is the OpenMP process id within the current team, 0..N-1.
	// The master process always has id 0.
	ID int
	// N is the team size for this parallel construct. It is constant
	// within the construct but may change at any fork (section 2).
	N int

	rt   *Runtime
	host *dsm.Host
	clk  *simtime.Clock

	// Reduction state, set by For when WithReduce is active. partial
	// points at this process's slot of the construct's partials; only
	// this process writes it.
	partial *float64
	redOp   func(a, b float64) float64
}

// Contribute folds v into this process's reduction partial. It may be
// called any number of times within the construct (once per chunk,
// say) and only inside a For given WithReduce; the master combines the
// per-process partials in id order at the join.
func (p *Proc) Contribute(v float64) {
	if p.redOp == nil {
		panic("omp: Contribute called outside a WithReduce loop")
	}
	*p.partial = p.redOp(*p.partial, v)
}

// Mem returns the shared-memory access context for this process.
func (p *Proc) Mem() shmem.Context {
	return shmem.Context{Host: p.host, Clock: p.clk}
}

// Host returns the workstation process id this proc runs as.
func (p *Proc) Host() dsm.HostID { return p.host.ID() }

// Now returns the process's virtual time.
func (p *Proc) Now() simtime.Seconds { return p.clk.Now() }

// Charge advances the process's clock by the given compute time. The
// applications charge their arithmetic with per-element costs
// calibrated from the paper's one-processor runtimes, so the real
// computation can run on scaled-down data while virtual time follows
// the paper's cost structure. On a heterogeneous pool the baseline
// charge stretches by the executing machine's slowdown, (1+load)/speed
// integrated over its load trace — this is where Static and the
// dynamic schedules genuinely diverge on skewed machines.
func (p *Proc) Charge(d simtime.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("omp: negative compute charge %v", d))
	}
	costs := p.rt.cluster.Costs()
	p.clk.Advance(costs.Compute(p.host.Machine(), p.clk.Now(), d))
}

// ChargeUnits charges n units of work at perUnit each.
func (p *Proc) ChargeUnits(n int, perUnit simtime.Seconds) {
	if n < 0 {
		panic(fmt.Sprintf("omp: negative unit count %d", n))
	}
	p.Charge(simtime.Seconds(n) * perUnit)
}

// Lock acquires the numbered Tmk lock for this process. Acquires park
// the process on the construct's discrete-event engine; grants follow
// (virtual request time, host id) order regardless of the Go
// scheduler. Inside a task region a lock held across a scheduling
// point (Spawn/TaskWait) simply serialises the contenders — the engine
// resumes the holder before granting the waiter. A genuine cycle (a
// process re-acquiring a lock its own host already holds, with no
// runnable process left) panics with the engine's deadlock diagnostic
// naming every parked process and its wait reason.
func (p *Proc) Lock(id int) {
	p.rt.cluster.AcquireLock(id, p.host, p.clk)
}

// Unlock releases the numbered Tmk lock.
func (p *Proc) Unlock(id int) { p.rt.cluster.ReleaseLock(id, p.host, p.clk) }

// Block returns this process's static block partition of [lo,hi):
// iteration i goes to the process with id i*N/n. This is the partition
// the compiler-generated code computes from (id, nprocs) at every
// fork, the mechanism that makes re-partitioning after adaptation
// automatic.
func (p *Proc) Block(lo, hi int) (mylo, myhi int) {
	return blockRange(lo, hi, p.ID, p.N)
}

func blockRange(lo, hi, id, n int) (int, int) {
	total := hi - lo
	if total < 0 {
		panic(fmt.Sprintf("omp: invalid iteration space [%d,%d)", lo, hi))
	}
	return lo + id*total/n, lo + (id+1)*total/n
}
