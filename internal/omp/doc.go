// Package omp is the OpenMP-style execution runtime of the adaptive
// system: the execution model of section 2 of Scherer et al. (PPoPP
// 1999), extended with OpenMP 3.0-style tasking. A master process
// executes sequential code; each parallel construct forks a team of
// processes, runs its body, and joins at a barrier. Because every
// construct recomputes its work assignment from (process id, team
// size) or shared scheduling state at the fork — exactly what the
// SUIF-generated TreadMarks code does — the runtime can change the
// team between any two constructs, which is what makes adaptation
// transparent (section 3).
//
// Two construct families share that fork/join skeleton:
//
//   - Loops: Runtime.For runs an iteration space under a Static,
//     StaticChunk, Dynamic or Guided schedule (WithSchedule), with
//     optional deterministic reductions (WithReduce). The fork
//     boundary is the adaptation point.
//
//   - Tasks: Runtime.Tasks runs a work-stealing task region for
//     irregular, recursive parallelism. Bodies receive a TaskProc and
//     call Spawn and TaskWait; idle processes steal, with closure
//     shipping and release/acquire consistency priced through the
//     simulated fabric (see internal/task). Every task scheduling
//     point — spawn, taskwait, steal, completion — is an adaptation
//     point, so join/leave events apply mid-region and deques re-home
//     onto the new team.
//
// The API mirrors the *output* of the paper's OpenMP-to-TreadMarks
// compiler rather than pragma syntax: For's body receives
// (proc, lo, hi) just as the encapsulated loop procedure receives the
// TreadMarks process id and computes its iteration range, and a task
// body receives the TaskProc of whichever process ended up executing
// it.
package omp
