package omp

import (
	"fmt"

	"nowomp/internal/shmem"
)

// Schedule identifies an iteration-scheduling policy for For. Every
// policy recomputes its assignment from (process id, team size) or
// from shared DSM state at the fork, so all of them re-partition
// automatically when the team changes at an adaptation point.
type Schedule int

const (
	// Static gives each process one contiguous block, the OpenMP
	// default schedule and the paper's partition.
	Static Schedule = iota
	// StaticChunk deals fixed-size chunks round-robin: process i runs
	// chunks i, i+N, i+2N, ... (OpenMP schedule(static, chunk)).
	StaticChunk
	// Dynamic has processes claim fixed-size chunks from a shared
	// counter in DSM memory guarded by a Tmk lock. Claiming costs real
	// lock and page traffic, exactly as it would on the NOW.
	Dynamic
	// Guided is Dynamic with shrinking chunks: each claim takes
	// remaining/nprocs iterations, never less than the configured
	// minimum (OpenMP schedule(guided, chunk)). Large early chunks
	// keep lock traffic low; small late chunks balance the tail.
	Guided
)

// String names the schedule for diagnostics.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case StaticChunk:
		return "static-chunk"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("schedule(%d)", int(s))
}

type forConfig struct {
	sched    Schedule
	chunk    int
	reduce   bool
	identity float64
	op       func(a, b float64) float64
}

// ForOption configures one For construct.
type ForOption func(*forConfig)

// WithSchedule selects the iteration schedule. chunk is the chunk size
// for StaticChunk and Dynamic and the minimum chunk size for Guided
// (0 means 1); Static ignores it.
func WithSchedule(s Schedule, chunk int) ForOption {
	return func(c *forConfig) {
		c.sched = s
		c.chunk = chunk
	}
}

// WithReduce attaches a floating-point reduction: each process folds
// the values it passes to Proc.Contribute into a private partial
// starting from identity, and the master combines the partials in
// process-id order at the join, so the result is deterministic for any
// static schedule. identity must be a true identity of op (0 for sum,
// -Inf for max, ...). For returns the combined value.
func WithReduce(identity float64, op func(a, b float64) float64) ForOption {
	return func(c *forConfig) {
		c.reduce = true
		c.identity = identity
		c.op = op
	}
}

// For executes body over the iteration space [lo,hi) as one parallel
// construct — fork, partitioned loop, join at a barrier — under the
// configured schedule (Static by default). The fork boundary is an
// adaptation point where pending adapt events are applied first; the
// partition is recomputed from the post-adaptation (id, nprocs), which
// is what makes adaptation transparent. Body receives each assigned
// range, possibly once per chunk. With WithReduce, For returns the
// combined reduction value; otherwise it returns 0.
func (rt *Runtime) For(name string, lo, hi int, body func(p *Proc, lo, hi int), opts ...ForOption) float64 {
	cfg := forConfig{sched: Static, chunk: 1}
	for _, o := range opts {
		o(&cfg)
	}
	switch cfg.sched {
	case Static:
	case StaticChunk, Dynamic:
		if cfg.chunk <= 0 {
			panic(fmt.Sprintf("omp: chunk size must be positive, got %d", cfg.chunk))
		}
	case Guided:
		if cfg.chunk < 0 {
			panic(fmt.Sprintf("omp: guided minimum chunk must be >= 0, got %d", cfg.chunk))
		}
		if cfg.chunk == 0 {
			cfg.chunk = 1
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule %v", cfg.sched))
	}
	if cfg.reduce && cfg.op == nil {
		panic("omp: WithReduce requires a non-nil combine operator")
	}

	// Counter-based schedules reset their shared counter in the
	// sequential section, before the fork (and so before adaptation).
	var ctr *shmem.Int64Array
	if cfg.sched == Dynamic || cfg.sched == Guided {
		ctr = rt.dynCounter()
		ctr.Set(rt.MasterProc().Mem(), 0, int64(lo))
	}

	procs := rt.fork(name)
	var partials []float64
	if cfg.reduce {
		partials = make([]float64, len(procs))
		for i := range partials {
			partials[i] = cfg.identity
		}
		for i, p := range procs {
			p.partial, p.redOp = &partials[i], cfg.op
		}
	}
	rt.run(procs, func(p *Proc) {
		runSchedule(cfg, ctr, lo, hi, p, body)
	})
	if cfg.reduce {
		// Each slave ships its partial to the master with its barrier
		// arrival message.
		master := rt.cluster.Master()
		for _, p := range procs[1:] {
			rt.cluster.Fabric().Record(p.host.Machine(), master.Machine(), 8)
		}
	}
	rt.join(procs)
	if !cfg.reduce {
		return 0
	}
	acc := cfg.identity
	for _, v := range partials {
		acc = cfg.op(acc, v)
	}
	rt.master.Advance(rt.cluster.Costs().MsgOverhead(rt.cluster.Master().Machine()))
	return acc
}

// runSchedule drives body on one process under the configured
// schedule.
func runSchedule(cfg forConfig, ctr *shmem.Int64Array, lo, hi int, p *Proc, body func(p *Proc, lo, hi int)) {
	switch cfg.sched {
	case Static:
		mylo, myhi := p.Block(lo, hi)
		if mylo < myhi {
			body(p, mylo, myhi)
		}
	case StaticChunk:
		for start := lo + p.ID*cfg.chunk; start < hi; start += p.N * cfg.chunk {
			end := min(start+cfg.chunk, hi)
			body(p, start, end)
		}
	case Dynamic, Guided:
		for {
			p.Lock(dynLock)
			next := int(ctr.Get(p.Mem(), 0))
			var end int
			if next < hi {
				c := cfg.chunk
				if cfg.sched == Guided {
					if g := (hi - next) / p.N; g > c {
						c = g
					}
				}
				end = min(next+c, hi)
				ctr.Set(p.Mem(), 0, int64(end))
			}
			p.Unlock(dynLock)
			if next >= hi {
				return
			}
			body(p, next, end)
		}
	}
}
