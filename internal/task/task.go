package task

import (
	"fmt"

	"nowomp/internal/dsm"
	"nowomp/internal/engine"
	"nowomp/internal/simtime"
)

// Body is the code of one task. It receives the worker (process) that
// executes it, which is only known when the task is popped or stolen.
type Body func(w *Worker)

// Task is one unit of deferred work on a deque.
type Task struct {
	body    Body
	parent  *frame          // frame that spawned it; nil for the root
	home    dsm.HostID      // process that spawned it
	at      simtime.Seconds // instant it became stealable
	stolen  bool
	rehomed bool
}

// frame is one task in execution: the join state TaskWait blocks on.
// It lives on its worker's goroutine stack for the task's whole
// lifetime, so a frame never moves between processes — which is why a
// leave must wait until the departing worker is stackless.
type frame struct {
	owner       *Worker
	outstanding int // direct children spawned and not yet completed
	sawRemote   bool
	remoteDone  simtime.Seconds // latest remote-child completion arrival
}

// parkKind classifies the scheduling point a worker is parked at. The
// zero value is parkNeed so that a freshly added worker — registered
// with the engine but not yet elected for its first turn — already
// counts as stackless for adaptation decisions, exactly as if it had
// reached its top-level loop.
type parkKind int

const (
	// parkNeed: at the top-level loop, between tasks (stackless).
	// Runnable when its deque is non-empty, a steal is available, the
	// region has drained, or the worker was retired by an adaptation.
	parkNeed parkKind = iota
	// parkWait: inside TaskWait. Runnable when all children are done or
	// its own deque is non-empty.
	parkWait
	// parkSpawn: a task body called Spawn; the task awaits its deque.
	parkSpawn
	// parkComplete: a task body returned; completion bookkeeping due.
	parkComplete
	// parkResume: bookkeeping done; the worker just needs the token
	// back to continue. Kept as a separate scheduling point so that
	// every one, including the continuation after a spawn, is an
	// adaptation point.
	parkResume
	// parkRun: not parked — the worker holds the engine token (or is
	// blocked inside a DSM primitive such as a lock acquire, which
	// parks on the engine below this layer).
	parkRun
)

// Worker is one team process participating in the task region. Exactly
// one worker goroutine runs at any instant; the engine hands the token
// around in virtual-time order, ties broken by team slot.
type Worker struct {
	// Data is opaque storage for the embedding runtime (the omp layer
	// keeps the per-process handle it passes to task bodies here).
	Data any

	s      *Runner
	slot   int
	host   *dsm.Host
	clk    *simtime.Clock
	ep     *engine.Proc
	deque  []*Task // index 0 = top (steal end), last = bottom (pop end)
	frames []*frame

	// kind is the scheduling point the worker is parked at; parkRun
	// while it holds the token.
	kind parkKind
	// retired is set when an adaptation removed the worker from the
	// team: it exits at its next turn without acting.
	retired bool
	exited  bool

	executed int64
}

// Host returns the DSM process this worker runs as.
func (w *Worker) Host() *dsm.Host { return w.host }

// Clock returns the worker's virtual clock.
func (w *Worker) Clock() *simtime.Clock { return w.clk }

// Slot returns the worker's current process id within the team. It
// changes when the team is reassigned at an adaptation.
func (w *Worker) Slot() int { return w.slot }

// Spawn queues body as a child task of the currently executing task on
// this worker's deque. The spawn is a task scheduling point: pending
// adapt events drain before execution continues, and workers with
// earlier virtual clocks act between the spawn and its continuation.
func (w *Worker) Spawn(body Body) {
	if len(w.frames) == 0 {
		panic("task: Spawn called outside a task")
	}
	t := &Task{body: body, parent: w.frames[len(w.frames)-1]}
	w.pause(parkSpawn, "spawn", nil)
	t.home = w.host.ID()
	t.at = w.clk.Now()
	t.parent.outstanding++
	w.deque = append(w.deque, t)
	w.s.live++
	w.s.stats.Spawned++
	// The new task may satisfy a parked worker's steal or pop condition.
	w.s.wake.Notify()
	w.pause(parkResume, "resume after spawn", nil)
}

// TaskWait blocks until every direct child task of the currently
// executing task has completed, executing tasks from this worker's own
// deque while it waits. If any awaited child ran on another process,
// the wait ends with an acquire so the children's shared-memory writes
// are visible — priced like any acquire on the DSM.
func (w *Worker) TaskWait() {
	if len(w.frames) == 0 {
		panic("task: TaskWait called outside a task")
	}
	fr := w.frames[len(w.frames)-1]
	for {
		w.pause(parkWait, "taskwait", func() (simtime.Seconds, bool) {
			if fr.outstanding == 0 {
				at := w.clk.Now()
				if fr.remoteDone > at {
					at = fr.remoteDone
				}
				return at, true
			}
			if len(w.deque) > 0 {
				return w.clk.Now(), true
			}
			return 0, false
		})
		if fr.outstanding == 0 {
			w.clk.AdvanceTo(fr.remoteDone)
			if fr.sawRemote {
				w.s.cfg.Cluster.AcquireInterval(w.host, w.clk)
				fr.sawRemote = false
			}
			fr.remoteDone = 0
			return
		}
		w.exec(w.s.popOwn(w))
	}
}

// The bookkeeping scheduling points (spawn, completion, resume) park
// with a nil wake condition — always runnable, at the worker's own
// clock — which the engine resolves without calling a closure.

// needReady is the wake condition of the top-level loop: the worker
// can act when it has (or can steal) a task, and must wake to exit
// when it was retired or the region has drained.
func (w *Worker) needReady() (simtime.Seconds, bool) {
	if w.retired {
		return w.clk.Now(), true
	}
	s := w.s
	if len(w.deque) > 0 {
		return w.clk.Now(), true
	}
	if v := s.victim(w); v != nil {
		at := w.clk.Now()
		if t := v.deque[0]; t.at > at {
			at = t.at
		}
		return at, true
	}
	if s.live == 0 && s.allAtTop() {
		return w.clk.Now(), true
	}
	return 0, false
}

// pause parks the worker at one scheduling point and returns once the
// engine elects it with the wake condition satisfied. Matured adapt
// events drain before it returns (every scheduling point is an
// adaptation point); after an applied adaptation the worker re-parks
// so the whole schedule is re-evaluated against the new team. A leave
// can never retire a worker parked here: these are mid-task points, so
// the worker is not stackless.
func (w *Worker) pause(kind parkKind, reason string, ready func() (simtime.Seconds, bool)) {
	for {
		w.kind = kind
		at := w.ep.ParkOn(&w.s.wake, reason, ready)
		if !w.s.maybeAdapt(at) {
			w.kind = parkRun
			return
		}
	}
}

// run is the worker coroutine: the top-level scheduling loop. The
// region-drained exit bypasses the adaptation check — the region is
// over, and remaining events drain at the next fork boundary, exactly
// as the pre-engine dispatcher behaved.
func (w *Worker) run() {
	for {
		w.kind = parkNeed
		// Reaching the top level may complete the region's quiescent
		// state (every worker stackless): wake the others to check.
		w.s.wake.Notify()
		at := w.ep.ParkOn(&w.s.wake, "task work", w.needReady)
		if w.retired || (w.s.live == 0 && w.s.allAtTop()) {
			w.exited = true
			w.s.wake.Notify()
			return
		}
		if w.s.maybeAdapt(at) {
			continue // team changed: re-evaluate from the same point
		}
		w.kind = parkRun
		if len(w.deque) > 0 {
			w.exec(w.s.popOwn(w))
			continue
		}
		v := w.s.victim(w)
		if v == nil {
			panic("task: dispatched an idle worker with nothing to steal")
		}
		w.exec(w.s.steal(w, v))
	}
}

// exec runs one task body to completion (the body may nest further
// pops via TaskWait), then passes the completion scheduling point and
// records the completion.
func (w *Worker) exec(t *Task) {
	fr := &frame{owner: w}
	w.frames = append(w.frames, fr)
	t.body(w)
	// No implicit wait on children: like an OpenMP task, completion
	// does not imply its children completed (the region end does).
	w.frames = w.frames[:len(w.frames)-1]
	w.pause(parkComplete, "completion", nil)
	w.s.complete(w, t)
	w.pause(parkResume, "resume after completion", nil)
}

// stackless reports whether the worker holds no task state: parked at
// the top level between tasks. Only then may its host leave the team.
func (w *Worker) stackless() bool {
	return !w.exited && len(w.frames) == 0 && w.kind == parkNeed
}

func (w *Worker) String() string {
	return fmt.Sprintf("worker(slot %d, host %d)", w.slot, w.host.ID())
}
