package task

import (
	"fmt"
	"runtime/debug"

	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

// Body is the code of one task. It receives the worker (process) that
// executes it, which is only known when the task is popped or stolen.
type Body func(w *Worker)

// Task is one unit of deferred work on a deque.
type Task struct {
	body    Body
	parent  *frame          // frame that spawned it; nil for the root
	home    dsm.HostID      // process that spawned it
	at      simtime.Seconds // instant it became stealable
	stolen  bool
	rehomed bool
}

// frame is one task in execution: the join state TaskWait blocks on.
// It lives on its worker's goroutine stack for the task's whole
// lifetime, so a frame never moves between processes — which is why a
// leave must wait until the departing worker is stackless.
type frame struct {
	owner       *Worker
	outstanding int // direct children spawned and not yet completed
	sawRemote   bool
	remoteDone  simtime.Seconds // latest remote-child completion arrival
}

// parkKind classifies the scheduling point a worker is parked at.
type parkKind int

const (
	// parkNeed: at the top-level loop, between tasks (stackless).
	// Wants a pop from its own deque, a steal, or the exit signal.
	parkNeed parkKind = iota
	// parkWait: inside TaskWait. Wants a pop from its own deque or the
	// all-children-done signal.
	parkWait
	// parkSpawn: a task body called Spawn; the task awaits its deque.
	parkSpawn
	// parkComplete: a task body returned; completion bookkeeping due.
	parkComplete
	// parkResume: bookkeeping done; the worker just needs the token
	// back to continue. Kept as a separate dispatch step so that every
	// scheduling point, including the continuation after a spawn, is an
	// adaptation point.
	parkResume
	// parkExited: the worker goroutine has terminated.
	parkExited
	// parkPanic: the task body panicked; pv carries the value.
	parkPanic
)

// park is the worker-to-scheduler half of the coroutine handshake.
type park struct {
	w    *Worker
	kind parkKind
	task *Task  // parkSpawn, parkComplete
	fr   *frame // parkWait
	pv   any    // parkPanic
}

// wakeup is the scheduler-to-worker half.
type wakeup struct {
	task *Task // task to execute (parkNeed, parkWait)
	done bool  // parkNeed: region over, exit; parkWait: children done
}

// Worker is one team process participating in the task region. Exactly
// one worker goroutine runs at any instant; the scheduler hands the
// token around in virtual-time order.
type Worker struct {
	// Data is opaque storage for the embedding runtime (the omp layer
	// keeps the per-process handle it passes to task bodies here).
	Data any

	s      *Runner
	slot   int
	host   *dsm.Host
	clk    *simtime.Clock
	deque  []*Task // index 0 = top (steal end), last = bottom (pop end)
	frames []*frame
	resume chan wakeup

	pending *park // the worker's parked action; nil while it runs
	exited  bool

	executed int64
}

// Host returns the DSM process this worker runs as.
func (w *Worker) Host() *dsm.Host { return w.host }

// Clock returns the worker's virtual clock.
func (w *Worker) Clock() *simtime.Clock { return w.clk }

// Slot returns the worker's current process id within the team. It
// changes when the team is reassigned at an adaptation.
func (w *Worker) Slot() int { return w.slot }

// Spawn queues body as a child task of the currently executing task on
// this worker's deque. The spawn is a task scheduling point: pending
// adapt events drain before execution continues.
func (w *Worker) Spawn(body Body) {
	if len(w.frames) == 0 {
		panic("task: Spawn called outside a task")
	}
	t := &Task{body: body, parent: w.frames[len(w.frames)-1]}
	w.park(park{w: w, kind: parkSpawn, task: t})
}

// TaskWait blocks until every direct child task of the currently
// executing task has completed, executing tasks from this worker's own
// deque while it waits. If any awaited child ran on another process,
// the wait ends with an acquire so the children's shared-memory writes
// are visible — priced like any acquire on the DSM.
func (w *Worker) TaskWait() {
	if len(w.frames) == 0 {
		panic("task: TaskWait called outside a task")
	}
	fr := w.frames[len(w.frames)-1]
	for {
		wk := w.park(park{w: w, kind: parkWait, fr: fr})
		if wk.done {
			return
		}
		w.exec(wk.task)
	}
}

// park hands the token to the scheduler and blocks for the reply.
func (w *Worker) park(p park) wakeup {
	w.s.parkCh <- p
	return <-w.resume
}

// run is the worker goroutine: the top-level scheduling loop. A panic
// in a task body is shipped to the scheduler goroutine with the
// original stack attached (the rethrow would otherwise show only the
// scheduler's frames); the region is unrecoverable at that point and
// the remaining parked workers are abandoned to the dying process.
func (w *Worker) run() {
	defer func() {
		if v := recover(); v != nil {
			w.s.parkCh <- park{w: w, kind: parkPanic,
				pv: fmt.Sprintf("task: %v panicked: %v\n%s", w, v, debug.Stack())}
		}
	}()
	for {
		wk := w.park(park{w: w, kind: parkNeed})
		if wk.done {
			w.s.parkCh <- park{w: w, kind: parkExited}
			return
		}
		w.exec(wk.task)
	}
}

// exec runs one task body to completion (the body may nest further
// pops via TaskWait), then parks for completion bookkeeping.
func (w *Worker) exec(t *Task) {
	fr := &frame{owner: w}
	w.frames = append(w.frames, fr)
	t.body(w)
	// No implicit wait on children: like an OpenMP task, completion
	// does not imply its children completed (the region end does).
	w.frames = w.frames[:len(w.frames)-1]
	w.park(park{w: w, kind: parkComplete, task: t})
}

// stackless reports whether the worker holds no task state: parked at
// the top level between tasks. Only then may its host leave the team.
func (w *Worker) stackless() bool {
	return !w.exited && len(w.frames) == 0 && w.pending != nil && w.pending.kind == parkNeed
}

func (w *Worker) String() string {
	return fmt.Sprintf("worker(slot %d, host %d)", w.slot, w.host.ID())
}
