package task

import "nowomp/internal/dsm"

// Stats summarises one task region for the evaluation harness. The
// accounting invariant the tests pin: every executed task was spawned
// exactly once (Spawned == Executed), and a task executes away from
// the process that spawned it only by being shipped there — so with no
// adaptations MigratedExec == Steals, and with re-homing
// MigratedExec <= Steals + Rehomed (a re-homed task may be shipped
// again, or happen to land back on its spawner).
type Stats struct {
	// Spawned counts tasks entered into deques, including the root.
	Spawned int64
	// Executed counts task bodies run to completion.
	Executed int64
	// Steals counts tasks shipped to an idle process; StealBytes is
	// the closure payload moved that way.
	Steals     int64
	StealBytes int64
	// Rehomed counts tasks shipped off a departing process's deque at
	// an adaptation; RehomeBytes is the payload.
	Rehomed     int64
	RehomeBytes int64
	// MigratedExec counts tasks that executed on a different host than
	// the one that spawned them.
	MigratedExec int64
	// RemoteCompletions counts completion notices sent because a task
	// finished on a different process than its parent.
	RemoteCompletions int64
	// FlushDiffs counts diffs created by steal- and completion-time
	// interval flushes (the release half of task shipping).
	FlushDiffs int64
	// Adaptations counts team changes applied at task scheduling
	// points within the region.
	Adaptations int64
	// ExecutedByHost breaks Executed down by executing host.
	ExecutedByHost map[dsm.HostID]int64
}
