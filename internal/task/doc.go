// Package task is the work-stealing task runtime layered on the
// adaptive fork-join system: OpenMP 3.0-style explicit tasks on the
// paper's NOW, extending the transparency argument of Scherer et al.
// (PPoPP 1999) from loops to irregular, recursive parallelism.
//
// # Execution model
//
// Each process of a forked team owns a double-ended queue of tasks.
// A running task spawns subtasks onto its own deque (Worker.Spawn) and
// waits for its direct children (Worker.TaskWait), popping further work
// from the bottom of its own deque while it waits. An idle process
// steals the oldest task from the top of the richest other deque — the
// classic work-first discipline: local pops are LIFO for locality,
// steals are FIFO so a thief takes the biggest remaining subtree.
//
// # Pricing: steals on a DSM are not free
//
// A steal is a request/response exchange on the simulated fabric plus
// the closure shipping, and — because the thief must observe every
// shared-memory write that happened before the task became stealable —
// a release/acquire pair on the DSM: the victim's open interval is
// flushed to diffs (dsm.FlushInterval) and the thief performs
// acquire-side consistency (dsm.AcquireInterval). A task that completes
// on a different process than the one waiting for it likewise flushes
// and sends a completion notice. All of it charges virtual time and
// per-link traffic, so the benchmark suite can show where tasking beats
// a Dynamic-schedule loop (skewed work: few steals replace thousands of
// priced counter claims) and where it loses (uniform work: the steal
// consistency traffic buys nothing). Purely local execution pays none
// of this: with one process, or when no steal occurs, a task region
// costs exactly its compute charges plus the ordinary fork and join.
//
// # Task scheduling points are adaptation points
//
// Spawn, taskwait, steal and task completion are the runtime's task
// scheduling points. Before dispatching any of them the scheduler
// drains matured join/leave events: every open interval is flushed,
// the adaptation transaction of the adapt package runs (GC, state
// handoff, reassignment), and the deques re-home onto the new team —
// a departing process's queued tasks ship round-robin to the survivors
// (priced as closure traffic), a joining process starts with an empty
// deque and steals its way into the tree. A leave is held back until
// the departing process is *stackless* (parked between tasks with no
// suspended ancestors), the task-level analogue of the paper's rule
// that processes hold no private state at adaptation points; joins
// apply immediately. An irregular computation therefore absorbs team
// resizes mid-tree with no application code.
//
// # Determinism
//
// Workers are coroutines of the shared discrete-event engine
// (internal/engine). Worker goroutines exist only to hold the Go
// stacks of suspended tasks; exactly one runs at a time, and every
// deque action is elected by the engine in ascending virtual-time
// order (ties broken by process slot) via per-worker wake conditions
// that encode the schedule. Victim selection, re-homing and completion
// bookkeeping are pure functions of that order, so a task program's
// schedule — and therefore its virtual time, its traffic, and its
// floating-point result — is reproducible run to run on any machine,
// at any GOMAXPROCS. DSM locks acquired inside task bodies park on the
// same engine, so a lock held across a scheduling point serialises the
// contenders (a genuine cycle panics with the engine's deadlock
// diagnostic). Kernel results are asserted bit-identical to their
// sequential references across team sizes and under mid-run join/leave
// events.
package task
