package task

import (
	"fmt"

	"nowomp/internal/dsm"
	"nowomp/internal/engine"
	"nowomp/internal/simtime"
)

// msgHeader is the DSM protocol header size, charged for steal
// requests, closure shipments and completion notices.
const msgHeader = dsm.MsgHeader

// DefaultClosureBytes is the wire size assumed for a task closure when
// the embedding runtime does not override it: a function pointer plus
// a handful of captured scalars, as the SUIF-style outlining of a task
// body would produce.
const DefaultClosureBytes = 64

// AdaptHooks connects the scheduler to the adaptation machinery of the
// embedding runtime. All three callbacks run with every other worker
// parked (the engine serialises execution), at a task scheduling
// point.
type AdaptHooks struct {
	// Eligible reports whether at least one adapt event would apply at
	// virtual instant now. stackless tells the callback whether a
	// host's worker currently holds task state; leaves of non-stackless
	// hosts must be held back.
	Eligible func(now simtime.Seconds, stackless func(dsm.HostID) bool) bool
	// Apply performs the adaptation transaction (GC, leaves, joins,
	// reassignment) and returns the new slot-to-host mapping, the time
	// the adaptation added, and whether any event was applied.
	Apply func(now simtime.Seconds, stackless func(dsm.HostID) bool) (team []dsm.HostID, elapsed simtime.Seconds, applied bool)
	// Rebound is called after the worker set has been rebuilt for the
	// new team, slot-ordered, so the runtime can rebind process ids.
	Rebound func(ws []*Worker)
}

// Config parameterises a Runner.
type Config struct {
	// Cluster is the DSM substrate tasks ship across.
	Cluster *dsm.Cluster
	// ClosureBytes is the wire size of one shipped task closure
	// (0 = DefaultClosureBytes).
	ClosureBytes int
	// Hooks enables adaptation at task scheduling points; nil runs the
	// region with a fixed team.
	Hooks *AdaptHooks
}

// Runner executes one task region on the shared discrete-event engine
// (internal/engine): each worker is an engine coroutine whose wake
// conditions encode the work-stealing schedule, so the engine's
// lowest-virtual-time election reproduces the deterministic dispatch
// order the task layer's bespoke scheduler used to implement — ties
// broken by team slot — while DSM primitives reached from task bodies
// (lock acquires) park on the very same engine. It is single-use.
type Runner struct {
	cfg     Config
	eng     *engine.Engine
	workers []*Worker
	live    int64 // tasks spawned and not yet completed
	stats   Stats

	// wake is the region-wide wait list: every worker scheduling point
	// parks on it, and every mutation of the schedule state a wake
	// condition reads — deques, live, join counters, worker kinds, the
	// team itself — notifies it. One list for the whole region (rather
	// than per-resource) because the wake conditions read global state:
	// victim selection scans every deque, and the drained check scans
	// every worker.
	wake engine.WaitList
}

// NewRunner returns a runner for one task region.
func NewRunner(cfg Config) *Runner {
	if cfg.Cluster == nil {
		panic("task: Config.Cluster is required")
	}
	if cfg.ClosureBytes <= 0 {
		cfg.ClosureBytes = DefaultClosureBytes
	}
	return &Runner{
		cfg:   cfg,
		stats: Stats{ExecutedByHost: make(map[dsm.HostID]int64)},
	}
}

// AddWorker registers a team process, in slot order, before Run.
func (s *Runner) AddWorker(host *dsm.Host, clk *simtime.Clock) *Worker {
	w := &Worker{s: s, slot: len(s.workers), host: host, clk: clk}
	s.workers = append(s.workers, w)
	return w
}

// Workers returns the current slot-ordered worker set.
func (s *Runner) Workers() []*Worker { return s.workers }

// Run executes root on the slot-0 worker (the master) and returns when
// every transitively spawned task has completed. The caller goroutine
// drives the engine; worker coroutines run one at a time under its
// control, so execution is deterministic in virtual-time order. The
// engine is attached to the cluster for the duration, so lock acquires
// inside task bodies park on it too: a lock held across a scheduling
// point serialises the contenders instead of deadlocking the region
// (a genuine cycle still panics with the engine's deadlock
// diagnostic).
func (s *Runner) Run(root Body) Stats {
	if len(s.workers) == 0 {
		panic("task: Run with no workers")
	}
	s.eng = engine.New()
	s.cfg.Cluster.BeginPhase(s.eng)
	defer s.cfg.Cluster.EndPhase()

	w0 := s.workers[0]
	rootTask := &Task{body: root, home: w0.host.ID(), at: w0.clk.Now()}
	w0.deque = append(w0.deque, rootTask)
	s.live = 1
	s.stats.Spawned = 1

	for _, w := range s.workers {
		s.start(w)
	}
	s.eng.Run()
	return s.stats
}

// start registers a worker coroutine with the engine, tiebreak id its
// team slot.
func (s *Runner) start(w *Worker) {
	w.ep = s.eng.Go(w.String(), w.slot, w.clk, func(*engine.Proc) { w.run() })
}

// allAtTop reports whether every worker has unwound to its top-level
// loop: with no live tasks left, that is the region's quiescent state.
func (s *Runner) allAtTop() bool {
	for _, w := range s.workers {
		if !w.exited && w.kind != parkNeed {
			return false
		}
	}
	return true
}

// victim picks the steal victim for w: the other worker with the
// longest deque, ties to the lowest slot. Deterministic because the
// worker list is slot-ordered.
func (s *Runner) victim(w *Worker) *Worker {
	var best *Worker
	for _, v := range s.workers {
		if v == w || v.exited || len(v.deque) == 0 {
			continue
		}
		if best == nil || len(v.deque) > len(best.deque) {
			best = v
		}
	}
	return best
}

// popOwn takes the newest task from w's own deque (LIFO). The removal
// can redirect a parked thief to a different victim whose top task is
// older — an earlier wake instant — so the wait list must be notified.
func (s *Runner) popOwn(w *Worker) *Task {
	t := w.deque[len(w.deque)-1]
	w.deque = w.deque[:len(w.deque)-1]
	s.wake.Notify()
	return t
}

// steal ships the oldest task of v's deque to w, pricing the exchange
// and the release/acquire pair that makes the victim's prior writes
// visible to the thief. All costs charge the thief, who waits for the
// closure; the victim is not interrupted (requester-pays, like every
// fetch in the DSM protocol).
func (s *Runner) steal(w, v *Worker) *Task {
	t := v.deque[0]
	v.deque = v.deque[1:]
	t.stolen = true

	costs := s.cfg.Cluster.Costs()
	fab := s.cfg.Cluster.Fabric()
	thief, victim := w.host.Machine(), v.host.Machine()
	w.clk.AdvanceTo(t.at)
	fab.Record(thief, victim, msgHeader)
	fab.Record(victim, thief, s.cfg.ClosureBytes+msgHeader)
	w.clk.Advance(costs.RoundTrip(thief, victim) + 2*costs.MsgOverhead(thief) +
		costs.Wire(victim, thief, s.cfg.ClosureBytes+msgHeader))

	// Release on the victim (charged to the waiting thief), acquire on
	// the thief: the task may read anything written before the steal.
	s.stats.FlushDiffs += int64(s.cfg.Cluster.FlushInterval(v.host, w.clk))
	s.cfg.Cluster.AcquireInterval(w.host, w.clk)

	s.stats.Steals++
	s.stats.StealBytes += int64(s.cfg.ClosureBytes)
	// Like popOwn: shortening v's deque can switch other thieves to an
	// older victim task, moving their wake instants earlier.
	s.wake.Notify()
	return t
}

// complete records a task body's completion: join bookkeeping and, for
// a task whose parent waits on another process, the release and the
// completion notice that lets the waiter eventually acquire.
func (s *Runner) complete(w *Worker, t *Task) {
	// A completion can satisfy a parked TaskWait (join counter, remote
	// arrival instant) or the region-drained condition.
	defer s.wake.Notify()
	s.live--
	s.stats.Executed++
	w.executed++
	s.stats.ExecutedByHost[w.host.ID()]++
	if t.home != w.host.ID() {
		s.stats.MigratedExec++
	}
	pf := t.parent
	if pf == nil {
		return
	}
	pf.outstanding--
	if pf.owner == w || pf.owner.exited || pf.owner.retired {
		return
	}
	costs := s.cfg.Cluster.Costs()
	s.stats.FlushDiffs += int64(s.cfg.Cluster.FlushInterval(w.host, w.clk))
	s.cfg.Cluster.Fabric().Record(w.host.Machine(), pf.owner.host.Machine(), msgHeader)
	w.clk.Advance(costs.MsgOverhead(w.host.Machine()))
	arrival := w.clk.Now() + costs.Latency(w.host.Machine(), pf.owner.host.Machine())
	if arrival > pf.remoteDone {
		pf.remoteDone = arrival
	}
	pf.sawRemote = true
	s.stats.RemoteCompletions++
}

// maybeAdapt drains matured adapt events at virtual instant now, the
// instant the actor's wake fired at. Returns true if the team changed
// (the actor re-parks and the engine re-evaluates the schedule).
func (s *Runner) maybeAdapt(now simtime.Seconds) bool {
	h := s.cfg.Hooks
	if h == nil {
		return false
	}
	stackless := func(id dsm.HostID) bool {
		for _, w := range s.workers {
			if w.host.ID() == id {
				return w.stackless()
			}
		}
		return true
	}
	if !h.Eligible(now, stackless) {
		return false
	}
	// Close every open interval so the adaptation's GC starts from the
	// well-defined state it requires; each process pays for its own
	// flush, as it would arriving at a barrier.
	for _, w := range s.workers {
		s.stats.FlushDiffs += int64(s.cfg.Cluster.FlushInterval(w.host, w.clk))
	}
	team, elapsed, applied := h.Apply(now, stackless)
	if !applied {
		return false
	}
	s.rebind(team, now+elapsed)
	s.stats.Adaptations++
	return true
}

// rebind rebuilds the worker set for the new team at virtual instant
// at: surviving workers keep their identity (and any suspended task
// state) under their new slot, joining hosts get fresh coroutines, and
// departing workers — stackless by construction — are retired after
// their deques re-home round-robin onto the new team, priced as
// closure traffic. A retired worker's coroutine exits at its next
// turn, with no further effect on the simulation.
func (s *Runner) rebind(team []dsm.HostID, at simtime.Seconds) {
	byHost := make(map[dsm.HostID]*Worker, len(s.workers))
	for _, w := range s.workers {
		byHost[w.host.ID()] = w
	}
	next := make([]*Worker, len(team))
	for slot, h := range team {
		if w := byHost[h]; w != nil {
			w.slot = slot
			w.ep.SetID(slot)
			next[slot] = w
			delete(byHost, h)
		} else {
			w := &Worker{s: s, slot: slot, host: s.cfg.Cluster.Host(h),
				clk: simtime.NewClock(at)}
			next[slot] = w
			s.start(w)
		}
	}

	// Retire departed workers in old slot order, re-homing their tasks.
	costs := s.cfg.Cluster.Costs()
	fab := s.cfg.Cluster.Fabric()
	rr := 0
	for _, w := range s.workers {
		if byHost[w.host.ID()] != w {
			continue
		}
		if !w.stackless() {
			panic(fmt.Sprintf("task: %v left the team holding task state", w))
		}
		for _, t := range w.deque {
			dst := next[rr%len(next)]
			rr++
			fab.Record(w.host.Machine(), dst.host.Machine(), s.cfg.ClosureBytes+msgHeader)
			dst.clk.Advance(costs.MsgOverhead(dst.host.Machine()) +
				costs.Wire(w.host.Machine(), dst.host.Machine(), s.cfg.ClosureBytes+msgHeader))
			t.at = at
			t.rehomed = true
			dst.deque = append(dst.deque, t)
			s.stats.Rehomed++
			s.stats.RehomeBytes += int64(s.cfg.ClosureBytes)
		}
		w.deque = nil
		w.retired = true
	}

	s.workers = next
	// The adaptation is a global synchronisation: no process proceeds
	// before the transaction completes.
	for _, w := range s.workers {
		w.clk.AdvanceTo(at)
	}
	if s.cfg.Hooks.Rebound != nil {
		s.cfg.Hooks.Rebound(s.workers)
	}
	// The team, the deques and every clock changed: re-examine every
	// parked worker (retired ones must wake to exit).
	s.wake.Notify()
}
