package task

import (
	"fmt"

	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

// msgHeader is the DSM protocol header size, charged for steal
// requests, closure shipments and completion notices.
const msgHeader = dsm.MsgHeader

// DefaultClosureBytes is the wire size assumed for a task closure when
// the embedding runtime does not override it: a function pointer plus
// a handful of captured scalars, as the SUIF-style outlining of a task
// body would produce.
const DefaultClosureBytes = 64

// AdaptHooks connects the scheduler to the adaptation machinery of the
// embedding runtime. All three callbacks run on the scheduler
// goroutine with every worker parked.
type AdaptHooks struct {
	// Eligible reports whether at least one adapt event would apply at
	// virtual instant now. stackless tells the callback whether a
	// host's worker currently holds task state; leaves of non-stackless
	// hosts must be held back.
	Eligible func(now simtime.Seconds, stackless func(dsm.HostID) bool) bool
	// Apply performs the adaptation transaction (GC, leaves, joins,
	// reassignment) and returns the new slot-to-host mapping, the time
	// the adaptation added, and whether any event was applied.
	Apply func(now simtime.Seconds, stackless func(dsm.HostID) bool) (team []dsm.HostID, elapsed simtime.Seconds, applied bool)
	// Rebound is called after the worker set has been rebuilt for the
	// new team, slot-ordered, so the runtime can rebind process ids.
	Rebound func(ws []*Worker)
}

// Config parameterises a Runner.
type Config struct {
	// Cluster is the DSM substrate tasks ship across.
	Cluster *dsm.Cluster
	// ClosureBytes is the wire size of one shipped task closure
	// (0 = DefaultClosureBytes).
	ClosureBytes int
	// Hooks enables adaptation at task scheduling points; nil runs the
	// region with a fixed team.
	Hooks *AdaptHooks
}

// Runner executes one task region: a deterministic discrete-event
// scheduler over the team's workers. It is single-use.
type Runner struct {
	cfg     Config
	workers []*Worker
	parkCh  chan park
	live    int64 // tasks spawned and not yet completed
	stats   Stats
}

// NewRunner returns a runner for one task region.
func NewRunner(cfg Config) *Runner {
	if cfg.Cluster == nil {
		panic("task: Config.Cluster is required")
	}
	if cfg.ClosureBytes <= 0 {
		cfg.ClosureBytes = DefaultClosureBytes
	}
	return &Runner{
		cfg:    cfg,
		parkCh: make(chan park),
		stats:  Stats{ExecutedByHost: make(map[dsm.HostID]int64)},
	}
}

// AddWorker registers a team process, in slot order, before Run.
func (s *Runner) AddWorker(host *dsm.Host, clk *simtime.Clock) *Worker {
	w := &Worker{s: s, slot: len(s.workers), host: host, clk: clk, resume: make(chan wakeup)}
	s.workers = append(s.workers, w)
	return w
}

// Workers returns the current slot-ordered worker set.
func (s *Runner) Workers() []*Worker { return s.workers }

// Run executes root on the slot-0 worker (the master) and returns when
// every transitively spawned task has completed. The caller goroutine
// becomes the scheduler; worker goroutines run one at a time under its
// control, so execution is deterministic in virtual-time order.
func (s *Runner) Run(root Body) Stats {
	if len(s.workers) == 0 {
		panic("task: Run with no workers")
	}
	w0 := s.workers[0]
	rootTask := &Task{body: root, home: w0.host.ID(), at: w0.clk.Now()}
	w0.deque = append(w0.deque, rootTask)
	s.live = 1
	s.stats.Spawned = 1

	for _, w := range s.workers {
		s.start(w)
	}
	for s.live > 0 || !s.allAtTop() {
		now, w := s.next()
		if w == nil {
			panic(fmt.Sprintf("task: scheduler stalled with %d live tasks", s.live))
		}
		if s.maybeAdapt(now) {
			continue
		}
		s.dispatch(w)
	}
	// Region over: every worker is parked at its top-level loop.
	for _, w := range s.workers {
		if !w.exited {
			s.exit(w)
		}
	}
	return s.stats
}

// allAtTop reports whether every worker has unwound to its top-level
// loop: with no live tasks left, that is the region's quiescent state.
func (s *Runner) allAtTop() bool {
	for _, w := range s.workers {
		if !w.exited && (w.pending == nil || w.pending.kind != parkNeed) {
			return false
		}
	}
	return true
}

// start launches a worker goroutine and absorbs its first park.
func (s *Runner) start(w *Worker) {
	go w.run()
	s.awaitPark()
}

// exit resumes a worker parked at its top level with the done signal
// and absorbs its exit notification.
func (s *Runner) exit(w *Worker) {
	if w.pending == nil || w.pending.kind != parkNeed {
		panic(fmt.Sprintf("task: exiting %v parked at %d", w, w.pending.kind))
	}
	w.pending = nil
	w.resume <- wakeup{done: true}
	p := <-s.parkCh
	if p.kind != parkExited || p.w != w {
		panic("task: unexpected park during worker exit")
	}
	w.exited = true
}

// resumeWorker hands the token to a parked worker and blocks until it
// parks again (or exits/panics). This is the only place workers run.
func (s *Runner) resumeWorker(w *Worker, wk wakeup) {
	w.pending = nil
	w.resume <- wk
	s.awaitPark()
}

func (s *Runner) awaitPark() {
	p := <-s.parkCh
	switch p.kind {
	case parkPanic:
		panic(p.pv)
	case parkExited:
		p.w.exited = true
	default:
		p.w.pending = &p
	}
}

// action is one enabled dispatch option for a parked worker.
type action struct {
	w  *Worker
	at simtime.Seconds
	// steal victim, when the action is a steal.
	victim *Worker
}

// next returns the enabled action with the minimal (virtual time,
// slot), or nil if no parked worker can proceed.
func (s *Runner) next() (simtime.Seconds, *Worker) {
	var best *action
	for _, w := range s.workers {
		a := s.enabled(w)
		if a == nil {
			continue
		}
		if best == nil || a.at < best.at {
			best = a
		}
	}
	if best == nil {
		return 0, nil
	}
	return best.at, best.w
}

// enabled computes whether w's parked action can be dispatched and at
// what virtual instant.
func (s *Runner) enabled(w *Worker) *action {
	if w.exited || w.pending == nil {
		return nil
	}
	now := w.clk.Now()
	switch w.pending.kind {
	case parkSpawn, parkComplete, parkResume:
		return &action{w: w, at: now}
	case parkWait:
		fr := w.pending.fr
		if fr.outstanding == 0 {
			at := now
			if fr.remoteDone > at {
				at = fr.remoteDone
			}
			return &action{w: w, at: at}
		}
		if len(w.deque) > 0 {
			return &action{w: w, at: now}
		}
		return nil
	case parkNeed:
		if len(w.deque) > 0 {
			return &action{w: w, at: now}
		}
		if v := s.victim(w); v != nil {
			at := now
			if t := v.deque[0]; t.at > at {
				at = t.at
			}
			return &action{w: w, at: at, victim: v}
		}
		return nil
	}
	return nil
}

// victim picks the steal victim for w: the other worker with the
// longest deque, ties to the lowest slot. Deterministic because the
// worker list is slot-ordered.
func (s *Runner) victim(w *Worker) *Worker {
	var best *Worker
	for _, v := range s.workers {
		if v == w || v.exited || len(v.deque) == 0 {
			continue
		}
		if best == nil || len(v.deque) > len(best.deque) {
			best = v
		}
	}
	return best
}

// dispatch processes one parked worker's action and, where the action
// continues that worker, hands it the token.
func (s *Runner) dispatch(w *Worker) {
	p := w.pending
	switch p.kind {
	case parkResume:
		s.resumeWorker(w, wakeup{})

	case parkSpawn:
		t := p.task
		t.home = w.host.ID()
		t.at = w.clk.Now()
		t.parent.outstanding++
		w.deque = append(w.deque, t)
		s.live++
		s.stats.Spawned++
		// Continue the spawner via a separate resume step so the
		// spawn's continuation is itself an adaptation point and other
		// workers with earlier clocks act first.
		p.kind = parkResume

	case parkComplete:
		s.complete(w, p.task)
		p.kind = parkResume

	case parkWait:
		fr := p.fr
		if fr.outstanding == 0 {
			w.clk.AdvanceTo(fr.remoteDone)
			if fr.sawRemote {
				s.cfg.Cluster.AcquireInterval(w.host, w.clk)
				fr.sawRemote = false
			}
			fr.remoteDone = 0
			s.resumeWorker(w, wakeup{done: true})
			return
		}
		s.resumeWorker(w, wakeup{task: s.popOwn(w)})

	case parkNeed:
		if len(w.deque) > 0 {
			s.resumeWorker(w, wakeup{task: s.popOwn(w)})
			return
		}
		v := s.victim(w)
		if v == nil {
			panic("task: dispatched an idle worker with nothing to steal")
		}
		s.resumeWorker(w, wakeup{task: s.steal(w, v)})

	default:
		panic(fmt.Sprintf("task: dispatch of park kind %d", p.kind))
	}
}

// popOwn takes the newest task from w's own deque (LIFO).
func (s *Runner) popOwn(w *Worker) *Task {
	t := w.deque[len(w.deque)-1]
	w.deque = w.deque[:len(w.deque)-1]
	return t
}

// steal ships the oldest task of v's deque to w, pricing the exchange
// and the release/acquire pair that makes the victim's prior writes
// visible to the thief. All costs charge the thief, who waits for the
// closure; the victim is not interrupted (requester-pays, like every
// fetch in the DSM protocol).
func (s *Runner) steal(w, v *Worker) *Task {
	t := v.deque[0]
	v.deque = v.deque[1:]
	t.stolen = true

	costs := s.cfg.Cluster.Costs()
	fab := s.cfg.Cluster.Fabric()
	thief, victim := w.host.Machine(), v.host.Machine()
	w.clk.AdvanceTo(t.at)
	fab.Record(thief, victim, msgHeader)
	fab.Record(victim, thief, s.cfg.ClosureBytes+msgHeader)
	w.clk.Advance(costs.RoundTrip(thief, victim) + 2*costs.MsgOverhead(thief) +
		costs.Wire(victim, thief, s.cfg.ClosureBytes+msgHeader))

	// Release on the victim (charged to the waiting thief), acquire on
	// the thief: the task may read anything written before the steal.
	s.stats.FlushDiffs += int64(s.cfg.Cluster.FlushInterval(v.host, w.clk))
	s.cfg.Cluster.AcquireInterval(w.host, w.clk)

	s.stats.Steals++
	s.stats.StealBytes += int64(s.cfg.ClosureBytes)
	return t
}

// complete records a task body's completion: join bookkeeping and, for
// a task whose parent waits on another process, the release and the
// completion notice that lets the waiter eventually acquire.
func (s *Runner) complete(w *Worker, t *Task) {
	s.live--
	s.stats.Executed++
	w.executed++
	s.stats.ExecutedByHost[w.host.ID()]++
	if t.home != w.host.ID() {
		s.stats.MigratedExec++
	}
	pf := t.parent
	if pf == nil {
		return
	}
	pf.outstanding--
	if pf.owner == w || pf.owner.exited {
		return
	}
	costs := s.cfg.Cluster.Costs()
	s.stats.FlushDiffs += int64(s.cfg.Cluster.FlushInterval(w.host, w.clk))
	s.cfg.Cluster.Fabric().Record(w.host.Machine(), pf.owner.host.Machine(), msgHeader)
	w.clk.Advance(costs.MsgOverhead(w.host.Machine()))
	arrival := w.clk.Now() + costs.Latency(w.host.Machine(), pf.owner.host.Machine())
	if arrival > pf.remoteDone {
		pf.remoteDone = arrival
	}
	pf.sawRemote = true
	s.stats.RemoteCompletions++
}

// maybeAdapt drains matured adapt events before the next dispatch, at
// virtual instant now. Returns true if the team changed (the caller
// re-evaluates the schedule).
func (s *Runner) maybeAdapt(now simtime.Seconds) bool {
	h := s.cfg.Hooks
	if h == nil {
		return false
	}
	stackless := func(id dsm.HostID) bool {
		for _, w := range s.workers {
			if w.host.ID() == id {
				return w.stackless()
			}
		}
		return true
	}
	if !h.Eligible(now, stackless) {
		return false
	}
	// Close every open interval so the adaptation's GC starts from the
	// well-defined state it requires; each process pays for its own
	// flush, as it would arriving at a barrier.
	for _, w := range s.workers {
		s.stats.FlushDiffs += int64(s.cfg.Cluster.FlushInterval(w.host, w.clk))
	}
	team, elapsed, applied := h.Apply(now, stackless)
	if !applied {
		return false
	}
	s.rebind(team, now+elapsed)
	s.stats.Adaptations++
	return true
}

// rebind rebuilds the worker set for the new team at virtual instant
// at: surviving workers keep their identity (and any suspended task
// state) under their new slot, joining hosts get fresh workers, and
// departing workers — stackless by construction — retire after their
// deques re-home round-robin onto the new team, priced as closure
// traffic.
func (s *Runner) rebind(team []dsm.HostID, at simtime.Seconds) {
	byHost := make(map[dsm.HostID]*Worker, len(s.workers))
	for _, w := range s.workers {
		byHost[w.host.ID()] = w
	}
	next := make([]*Worker, len(team))
	var added []*Worker
	for slot, h := range team {
		if w := byHost[h]; w != nil {
			w.slot = slot
			next[slot] = w
			delete(byHost, h)
		} else {
			w := &Worker{s: s, slot: slot, host: s.cfg.Cluster.Host(h),
				clk: simtime.NewClock(at), resume: make(chan wakeup)}
			next[slot] = w
			added = append(added, w)
		}
	}

	// Retire departed workers in old slot order, re-homing their tasks.
	costs := s.cfg.Cluster.Costs()
	fab := s.cfg.Cluster.Fabric()
	rr := 0
	for _, w := range s.workers {
		if byHost[w.host.ID()] != w {
			continue
		}
		if !w.stackless() {
			panic(fmt.Sprintf("task: %v left the team holding task state", w))
		}
		for _, t := range w.deque {
			dst := next[rr%len(next)]
			rr++
			fab.Record(w.host.Machine(), dst.host.Machine(), s.cfg.ClosureBytes+msgHeader)
			dst.clk.Advance(costs.MsgOverhead(dst.host.Machine()) +
				costs.Wire(w.host.Machine(), dst.host.Machine(), s.cfg.ClosureBytes+msgHeader))
			t.at = at
			t.rehomed = true
			dst.deque = append(dst.deque, t)
			s.stats.Rehomed++
			s.stats.RehomeBytes += int64(s.cfg.ClosureBytes)
		}
		w.deque = nil
		s.exit(w)
	}

	s.workers = next
	for _, w := range added {
		s.start(w)
	}
	// The adaptation is a global synchronisation: no process proceeds
	// before the transaction completes.
	for _, w := range s.workers {
		w.clk.AdvanceTo(at)
	}
	if s.cfg.Hooks.Rebound != nil {
		s.cfg.Hooks.Rebound(s.workers)
	}
}
