package vc

import (
	"testing"
	"testing/quick"
)

func TestSetGrowAndGet(t *testing.T) {
	var v Vector
	v.Set(3, 7)
	if got := v.Get(3); got != 7 {
		t.Fatalf("Get(3) = %d, want 7", got)
	}
	if got := v.Get(0); got != 0 {
		t.Fatalf("Get(0) = %d, want 0", got)
	}
	if got := v.Get(99); got != 0 {
		t.Fatalf("Get beyond length = %d, want 0", got)
	}
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
}

func TestSetNeverLowers(t *testing.T) {
	v := New(2)
	v.Set(1, 5)
	v.Set(1, 3)
	if got := v.Get(1); got != 5 {
		t.Fatalf("Set lowered entry to %d, want 5", got)
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1, ...) must panic")
		}
	}()
	var v Vector
	v.Set(-1, 1)
}

func TestMergeAndCovers(t *testing.T) {
	a := Vector{3, 0, 2}
	b := Vector{1, 4}
	a.Merge(b)
	want := Vector{3, 4, 2}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("merge = %v, want %v", a, want)
		}
	}
	if !a.CoversAll(b) {
		t.Fatal("merged vector must cover its input")
	}
	if !a.Covers(2, 2) || a.Covers(2, 3) {
		t.Fatal("Covers boundary wrong")
	}
}

func TestConcurrent(t *testing.T) {
	a := Vector{2, 0}
	b := Vector{0, 2}
	if !Concurrent(a, b) {
		t.Fatal("crossing vectors must be concurrent")
	}
	c := Vector{2, 2}
	if Concurrent(a, c) {
		t.Fatal("dominated vectors are not concurrent")
	}
	if Concurrent(a, a.Clone()) {
		t.Fatal("equal vectors are not concurrent")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Vector{1, 2}
	c := a.Clone()
	c.Set(0, 9)
	if a.Get(0) != 1 {
		t.Fatal("clone must be independent")
	}
}

func TestString(t *testing.T) {
	if got := (Vector{1, 0, 3}).String(); got != "<1,0,3>" {
		t.Fatalf("String = %q", got)
	}
	if got := (Vector{}).String(); got != "<>" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: merge is a least upper bound — it covers both inputs, and
// any vector covering both inputs covers the merge.
func TestMergeIsLUB(t *testing.T) {
	norm := func(raw []int32) Vector {
		v := New(len(raw))
		for i, x := range raw {
			if x < 0 {
				x = -x
			}
			v[i] = x % 100
		}
		return v
	}
	f := func(ra, rb, rc []int32) bool {
		a, b := norm(ra), norm(rb)
		m := a.Clone()
		m.Merge(b)
		if !m.CoversAll(a) || !m.CoversAll(b) {
			return false
		}
		c := norm(rc)
		c.Merge(a)
		c.Merge(b) // c now covers both
		return c.CoversAll(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is commutative and idempotent.
func TestMergeAlgebra(t *testing.T) {
	f := func(ra, rb []int32) bool {
		a := New(0)
		for i, x := range ra {
			a.Set(i, x&0x7fff)
		}
		b := New(0)
		for i, x := range rb {
			b.Set(i, x&0x7fff)
		}
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.CoversAll(ba) || !ba.CoversAll(ab) {
			return false
		}
		aa := a.Clone()
		aa.Merge(a)
		return aa.CoversAll(a) && a.CoversAll(aa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	a := New(16)
	o := New(16)
	for i := range o {
		o[i] = int32(i * 3)
		a[i] = int32(i * 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Merge(o)
	}
}

func BenchmarkSetAndCovers(b *testing.B) {
	v := New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Set(7, int32(i))
		if !v.Covers(7, int32(i)) {
			b.Fatal("just-set entry not covered")
		}
	}
}

// TestMergeAllocationPin pins steady-state Merge and Set to zero
// allocations: growth happens only when a process index first appears.
func TestMergeAllocationPin(t *testing.T) {
	a := New(16)
	o := New(16)
	for i := range o {
		o[i] = int32(i)
	}
	if n := testing.AllocsPerRun(200, func() { a.Merge(o) }); n != 0 {
		t.Errorf("same-width Merge allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { a.Set(3, 1) }); n != 0 {
		t.Errorf("in-range Set allocates %v times per run, want 0", n)
	}
}
