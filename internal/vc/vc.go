// Package vc implements the interval vector timestamps of lazy release
// consistency. Each process numbers its intervals; a vector records,
// per process, the most recent interval whose modifications are covered.
// The adaptive DSM uses vectors to decide which write notices a process
// must honour after a lock acquire and to validate the coverage
// invariants of barriers in tests.
package vc

import (
	"fmt"
	"strings"
)

// Vector maps process index to the latest covered interval sequence
// number. The zero-length vector covers nothing.
type Vector []int32

// New returns a vector of n zeroed entries.
func New(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Get returns the covered interval for process p, or zero if the vector
// is shorter than p+1 (processes added by joins start at interval 0).
func (v Vector) Get(p int) int32 {
	if p < 0 || p >= len(v) {
		return 0
	}
	return v[p]
}

// Set records that intervals of process p up to seq are covered,
// growing the vector if needed. Set never lowers an entry.
func (v *Vector) Set(p int, seq int32) {
	if p < 0 {
		panic(fmt.Sprintf("vc: negative process index %d", p))
	}
	if len(*v) <= p {
		// Grow to p+1 in one step (reusing spare capacity when there is
		// some) instead of appending zeroes element by element.
		if cap(*v) > p {
			grown := (*v)[:p+1]
			clear(grown[len(*v):])
			*v = grown
		} else {
			grown := make(Vector, p+1, max(p+1, 2*cap(*v)))
			copy(grown, *v)
			*v = grown
		}
	}
	if (*v)[p] < seq {
		(*v)[p] = seq
	}
}

// Merge raises every entry of v to at least the corresponding entry of
// o, growing v if o is longer. Merge implements the acquire-side union
// of consistency information.
func (v *Vector) Merge(o Vector) {
	if len(o) <= len(*v) {
		// Fast path (equal or shorter source): no growth, no per-entry
		// Set call — just the element-wise max.
		d := *v
		for p, s := range o {
			if d[p] < s {
				d[p] = s
			}
		}
		return
	}
	for p, s := range o {
		v.Set(p, s)
	}
}

// Covers reports whether v covers interval seq of process p.
func (v Vector) Covers(p int, seq int32) bool { return v.Get(p) >= seq }

// CoversAll reports whether v covers every entry of o.
func (v Vector) CoversAll(o Vector) bool {
	for p, s := range o {
		if !v.Covers(p, s) {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither vector covers the other: the
// defining condition for concurrent intervals in LRC.
func Concurrent(a, b Vector) bool {
	return !a.CoversAll(b) && !b.CoversAll(a)
}

// String formats the vector as <s0,s1,...>.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, s := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteByte('>')
	return b.String()
}
