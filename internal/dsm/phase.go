package dsm

import "nowomp/internal/engine"

// Parallel-construct coordination. The OpenMP layer drives every
// construct — loop bodies and task regions alike — on a deterministic
// discrete-event engine (internal/engine): team processes are
// coroutines, exactly one runs at a time, and the engine always wakes
// the runnable proc with the lowest virtual time. The cluster only
// needs to know which engine is driving the current construct so that
// blocking primitives (lock acquires) can park the calling proc on it.
//
// This replaces the old phase registry, which let a conservative lock
// scheduler observe the clocks of concurrently running goroutines: the
// engine's lowest-virtual-time wake rule subsumes it exactly (a lock
// request at instant T is elected only once no other proc can still
// act before T), with none of the spin-and-reelect machinery — and
// with the grant order fully independent of the Go scheduler.

// BeginPhase attaches the engine driving the parallel construct that
// is about to run. Called by the OpenMP runtime at fork (and by the
// task runner at region start), with no construct active.
func (c *Cluster) BeginPhase(e *engine.Engine) {
	c.eng = e
}

// EndPhase detaches the construct's engine at the join.
func (c *Cluster) EndPhase() {
	c.eng = nil
}

// runningProc returns the engine proc currently holding the token, or
// nil outside any engine-driven construct (sequential sections, unit
// tests driving the cluster directly).
func (c *Cluster) runningProc() *engine.Proc {
	if c.eng == nil {
		return nil
	}
	return c.eng.Running()
}
