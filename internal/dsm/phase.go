package dsm

import (
	"sync"
	"sync/atomic"

	"nowomp/internal/simtime"
)

// The phase registry lets the lock scheduler observe the virtual
// clocks of the processes executing the current parallel construct.
// Lock grants are conservative in virtual time: a request at instant T
// is granted only once no still-running process's clock is behind T,
// so grant order follows simulated time rather than the Go scheduler.
// This is the standard conservative discrete-event argument: the
// process with the minimum clock is never blocked by the rule, so the
// system always makes progress.

type phaseProc struct {
	clk  *simtime.Clock
	done atomic.Bool
}

type phaseRegistry struct {
	mu    sync.Mutex
	procs []*phaseProc
}

// BeginPhase registers the clocks of the processes entering a parallel
// construct. Called by the OpenMP runtime at fork, with no construct
// active.
func (c *Cluster) BeginPhase(clocks []*simtime.Clock) {
	procs := make([]*phaseProc, len(clocks))
	for i, clk := range clocks {
		procs[i] = &phaseProc{clk: clk}
	}
	c.phases.mu.Lock()
	c.phases.procs = procs
	c.phases.mu.Unlock()
}

// PhaseProcDone marks process i's construct body as finished: its
// clock no longer gates lock grants (it will only advance again after
// the join).
func (c *Cluster) PhaseProcDone(i int) {
	c.phases.mu.Lock()
	if i >= 0 && i < len(c.phases.procs) {
		c.phases.procs[i].done.Store(true)
	}
	c.phases.mu.Unlock()
}

// EndPhase clears the registry at the join.
func (c *Cluster) EndPhase() {
	c.phases.mu.Lock()
	c.phases.procs = nil
	c.phases.mu.Unlock()
}

// noEarlierRunner reports whether every still-running process other
// than self has reached virtual instant t. Outside a parallel
// construct the registry is empty and the answer is trivially true.
func (c *Cluster) noEarlierRunner(self *simtime.Clock, t simtime.Seconds) bool {
	c.phases.mu.Lock()
	defer c.phases.mu.Unlock()
	for _, pp := range c.phases.procs {
		if pp.clk == self || pp.done.Load() {
			continue
		}
		if pp.clk.Now() < t {
			return false
		}
	}
	return true
}
