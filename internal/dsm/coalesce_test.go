package dsm

import (
	"testing"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// TestCoalescedMetadataBounded pins the tentpole's amortised-O(1)
// claim structurally: under CoalesceAuto a long run of lock intervals
// keeps the release log and diff chains near the prune stride, where
// CoalesceOff lets both grow with the interval count. The differential
// suites in internal/bench and internal/scenfuzz pin that the records
// are unchanged; this test pins that the metadata actually shrinks.
func TestCoalescedMetadataBounded(t *testing.T) {
	const cycles = 400
	run := func(mode CoalescingMode) (logLen, maxChain int) {
		restore := SetCoalescing(mode)
		defer restore()
		c, clocks := newTestCluster(t, 2, 2)
		r, _ := c.Alloc("a", page.Size)
		for i := 0; i < cycles; i++ {
			h := HostID(i & 1)
			c.AcquireLock(0, c.Host(h), clocks[h])
			putU64(c, h, r.ID, 0, uint64(i), clocks[h])
			c.ReleaseLock(0, c.Host(h), clocks[h])
		}
		logLen = len(c.releaseLog)
		for _, h := range c.hosts {
			for _, chain := range h.diffs {
				if len(chain) > maxChain {
					maxChain = len(chain)
				}
			}
		}
		return logLen, maxChain
	}

	offLog, offChain := run(CoalesceOff)
	autoLog, autoChain := run(CoalesceAuto)
	forceLog, forceChain := run(CoalesceForce)

	if offLog < cycles-1 || offChain < cycles/2 {
		t.Fatalf("CoalesceOff baseline did not accumulate: log %d, max chain %d (want >= %d / %d)",
			offLog, offChain, cycles-1, cycles/2)
	}
	// Auto prunes every coalesceStride appends, so steady state sits
	// under one stride of slack (plus the entries the floor cannot yet
	// cover — here the current open cycle only).
	bound := 2 * coalesceStride
	if autoLog > bound || autoChain > bound {
		t.Errorf("CoalesceAuto metadata unbounded: log %d, max chain %d (want <= %d)",
			autoLog, autoChain, bound)
	}
	if forceLog > 2 || forceChain > 2 {
		t.Errorf("CoalesceForce metadata unbounded: log %d, max chain %d (want <= 2)",
			forceLog, forceChain)
	}
}

// BenchmarkCoalescedAcquire measures the steady-state cost of a lock
// acquire/release cycle under each coalescing mode. Under CoalesceOff
// the per-cycle cost climbs as the release log and diff chains grow
// with b.N; under auto and force it stays flat — the testing.B pin for
// the coalesced acquire path.
func BenchmarkCoalescedAcquire(b *testing.B) {
	for _, m := range []struct {
		name string
		mode CoalescingMode
	}{{"off", CoalesceOff}, {"auto", CoalesceAuto}, {"force", CoalesceForce}} {
		b.Run(m.name, func(b *testing.B) {
			restore := SetCoalescing(m.mode)
			defer restore()
			c, err := New(Config{MaxHosts: 2})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Join(1); err != nil {
				b.Fatal(err)
			}
			r, err := c.Alloc("a", page.Size)
			if err != nil {
				b.Fatal(err)
			}
			clk0, clk1 := simtime.NewClock(0), simtime.NewClock(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.AcquireLock(0, c.Host(0), clk0)
				putU64(c, 0, r.ID, 0, uint64(i), clk0)
				c.ReleaseLock(0, c.Host(0), clk0)
				c.AcquireLock(0, c.Host(1), clk1)
				putU64(c, 1, r.ID, 0, uint64(i)+1, clk1)
				c.ReleaseLock(0, c.Host(1), clk1)
			}
		})
	}
}
