// Package dsm implements the TreadMarks-like software distributed
// shared memory that the adaptive OpenMP runtime of Scherer et al.
// (PPoPP 1999) is built on: 4 KB pages kept consistent with lazy
// release consistency, twins and word-granularity diffs, dynamic
// single-/multiple-writer page modes, barrier and lock synchronisation,
// and the garbage-collection pass (section 4.1 of the paper) that the
// adaptive extension reuses to make node joins and leaves cheap.
//
// Shared-memory access detection is the one place this implementation
// deliberately departs from TreadMarks: instead of mprotect/SIGSEGV
// page faults (which conflict with the Go runtime), accessors call
// EnsureRead/EnsureWrite explicitly at page granularity. The protocol
// sees the identical event stream; fault costs are charged from the
// paper's measured constants.
//
// Terminology: a Host is one logical process address space (the paper's
// "process"); a machine is a physical workstation on the simulated
// network. Hosts normally map 1:1 onto machines, but after an urgent
// leave a migrated host shares its target's machine until the next
// adaptation point.
package dsm

import (
	"fmt"

	"nowomp/internal/engine"
	"nowomp/internal/machine"
	"nowomp/internal/page"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// HostID identifies a logical process address space. Host ids are
// stable for the lifetime of the run; the OpenMP team maps transient
// process ids (0..t-1) onto hosts.
type HostID int

// RegionID identifies a shared-memory allocation.
type RegionID int

// Mode is the sharing protocol of a page.
type Mode uint8

const (
	// ModeSingle marks a page written by at most one process per
	// interval: no twins survive, no diffs are created, and readers
	// fetch full pages from the owner (the last writer).
	ModeSingle Mode = iota
	// ModeMulti marks a page with concurrent writers (typically a page
	// straddling a partition boundary): writers twin on first write and
	// emit word-granularity diffs when their interval closes.
	ModeMulti
)

func (m Mode) String() string {
	if m == ModeSingle {
		return "single"
	}
	return "multi"
}

// Config parameterises a Cluster.
type Config struct {
	// MaxHosts is the number of workstations in the pool (active or
	// not). Machines are pre-wired on the fabric; hosts activate as
	// they join the computation.
	MaxHosts int

	// Model is the virtual-time cost model; zero means simtime.Default.
	Model simtime.CostModel

	// Machine describes per-machine heterogeneity (CPU speed factors,
	// background-load traces); nil means a homogeneous pool, the
	// baseline fast path.
	Machine *machine.Model

	// Links configures per-link latency/bandwidth overrides on the
	// fresh fabric before any cost is priced; nil leaves every link at
	// the baseline. The hook runs once inside New.
	Links func(*simnet.Fabric) error

	// GCThresholdBytes triggers a garbage collection at the next
	// barrier once accumulated diff storage exceeds it. Zero means the
	// default of 4 MB. Adaptation points force GC regardless. HLRC
	// retains no diffs, so the threshold never trips there.
	GCThresholdBytes int

	// Protocol selects the coherence protocol; the zero value is Tmk,
	// the TreadMarks homeless LRC the paper's system uses.
	Protocol ProtocolKind

	// Adaptive selects the adaptive runtime variant. The paper's
	// headline result (Table 1) is that the adaptive system adds no
	// cost and identical traffic when no adapt events occur; the flag
	// exists so both variants can be measured side by side.
	Adaptive bool
}

const defaultGCThreshold = 4 << 20

// Cluster is the DSM system spanning a pool of workstations.
type Cluster struct {
	cfg     Config
	model   simtime.CostModel
	costs   *machine.Costs
	fabric  *simnet.Fabric
	proto   Protocol
	hosts   []*Host
	dir     *directory
	regions []*Region
	locks   *lockTable

	// seq is the global interval sequence number. It advances at every
	// barrier and lock release, always under the directory write lock.
	seq int32

	// releaseLog records pages modified by lock-release intervals since
	// the last barrier, guarded by the directory lock.
	releaseLog []relEntry

	// barrierStamp/barrierFirst are per-page barrier scratch, indexed
	// like the directory ([region][page]) and guarded by the directory
	// lock. A page whose stamp equals the closing barrier's sequence has
	// been claimed this barrier, and barrierFirst names its first writer
	// — replacing the per-barrier writtenBy map that dominated barrier
	// cost at full scale. multiWriterScratch collects the (rare) pages
	// with more than one writer.
	barrierStamp       [][]int32
	barrierFirst       [][]HostID
	multiWriterScratch map[pageKey][]HostID

	// pagePool recycles page buffers for this cluster's serialised
	// events without the shared pool's synchronisation.
	pagePool page.Freelist

	// eng is the discrete-event engine driving the current parallel
	// construct (nil between constructs); blocking primitives park the
	// running proc on it.
	eng *engine.Engine

	stats Stats
}

// New creates a cluster of cfg.MaxHosts workstations with only host 0
// (the master) active.
func New(cfg Config) (*Cluster, error) {
	if cfg.MaxHosts <= 0 {
		return nil, fmt.Errorf("dsm: MaxHosts must be positive, got %d", cfg.MaxHosts)
	}
	if cfg.Model.LinkBandwidth == 0 {
		cfg.Model = simtime.Default()
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.GCThresholdBytes <= 0 {
		cfg.GCThresholdBytes = defaultGCThreshold
	}
	// A model spanning more machines than the pool is fine (the extras
	// are simply unused); one spanning fewer would panic at the first
	// lookup, so reject it here with a diagnosable error.
	if cfg.Machine != nil && cfg.Machine.Machines() < cfg.MaxHosts {
		return nil, fmt.Errorf("dsm: machine model spans only %d machines, pool has %d",
			cfg.Machine.Machines(), cfg.MaxHosts)
	}
	fabric := simnet.New(cfg.MaxHosts)
	if cfg.Links != nil {
		if err := cfg.Links(fabric); err != nil {
			return nil, fmt.Errorf("dsm: link configuration: %w", err)
		}
	}
	c := &Cluster{
		cfg:    cfg,
		model:  cfg.Model,
		costs:  machine.NewCosts(cfg.Model, fabric, cfg.Machine),
		fabric: fabric,
		dir:    newDirectory(),
		locks:  newLockTable(),
	}
	proto, err := newProtocol(cfg.Protocol, c)
	if err != nil {
		return nil, err
	}
	c.proto = proto
	for i := 0; i < cfg.MaxHosts; i++ {
		c.hosts = append(c.hosts, newHost(c, HostID(i), simnet.MachineID(i)))
	}
	c.hosts[0].active = true
	return c, nil
}

// Model returns the cluster's baseline cost model.
func (c *Cluster) Model() simtime.CostModel { return c.model }

// Costs returns the heterogeneity-aware cost layer every charge site
// prices through. With a nil machine model and default links it
// reproduces Model() bit for bit.
func (c *Cluster) Costs() *machine.Costs { return c.costs }

// MachineModel returns the per-machine speed/load model, or nil for a
// homogeneous pool.
func (c *Cluster) MachineModel() *machine.Model { return c.cfg.Machine }

// Fabric exposes the network for traffic-window measurements.
func (c *Cluster) Fabric() *simnet.Fabric { return c.fabric }

// Master returns the master host (host 0, which runs the master
// process; the paper's current system cannot perform a normal leave of
// the master, and neither can this one).
func (c *Cluster) Master() *Host { return c.hosts[0] }

// Host returns the host with the given id.
func (c *Cluster) Host(id HostID) *Host {
	if int(id) < 0 || int(id) >= len(c.hosts) {
		panic(fmt.Sprintf("dsm: host %d out of range [0,%d)", id, len(c.hosts)))
	}
	return c.hosts[id]
}

// MaxHosts returns the size of the workstation pool.
func (c *Cluster) MaxHosts() int { return len(c.hosts) }

// ActiveHosts returns the ids of hosts currently participating, in
// ascending order.
func (c *Cluster) ActiveHosts() []HostID {
	var ids []HostID
	for _, h := range c.hosts {
		if h.active {
			ids = append(ids, h.id)
		}
	}
	return ids
}

// Seq returns the current global interval sequence number.
func (c *Cluster) Seq() int32 {
	c.dir.mu.RLock()
	defer c.dir.mu.RUnlock()
	return c.seq
}

// Regions returns the allocated shared regions in allocation order.
func (c *Cluster) Regions() []*Region { return c.regions }

// Region is a shared-memory allocation made by the master before the
// first fork (the Tmk_malloc + Tmk_distribute idiom).
type Region struct {
	ID     RegionID
	Name   string
	Bytes  int
	NPages int
}

// Alloc creates a shared region of the given size, zero-initialised and
// owned by the master, mirroring Tmk_malloc on the master followed by
// Tmk_distribute of the pointer.
func (c *Cluster) Alloc(name string, bytes int) (*Region, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("dsm: region %q must have positive size, got %d", name, bytes)
	}
	r := &Region{
		ID:     RegionID(len(c.regions)),
		Name:   name,
		Bytes:  bytes,
		NPages: pageCount(bytes),
	}
	c.regions = append(c.regions, r)
	c.dir.addRegion(r.NPages, c.Master().id)
	c.barrierStamp = append(c.barrierStamp, make([]int32, r.NPages))
	c.barrierFirst = append(c.barrierFirst, make([]HostID, r.NPages))
	for _, h := range c.hosts {
		h.addRegion(r.NPages)
	}
	// The protocol materialises the zero-filled pages: Tmk entirely at
	// the master, HLRC at each page's round-robin home (and the master,
	// which runs the sequential sections).
	c.proto.initRegion(r)
	return r, nil
}

// TotalSharedBytes returns the size of all allocated regions, the
// paper's "shared memory" column.
func (c *Cluster) TotalSharedBytes() int {
	t := 0
	for _, r := range c.regions {
		t += r.Bytes
	}
	return t
}
