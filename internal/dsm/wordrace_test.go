package dsm

import (
	"strings"
	"testing"

	"nowomp/internal/simtime"
)

// twoHostCluster builds a cluster with hosts 0 and 1 active and one
// 1-page region, returning the region too.
func twoHostCluster(t *testing.T) (*Cluster, *Region) {
	t.Helper()
	c, err := New(Config{MaxHosts: 2, Adaptive: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Join(1); err != nil {
		t.Fatalf("Join: %v", err)
	}
	r, err := c.Alloc("race.page", 4096)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	return c, r
}

// Two hosts writing within the same 8-byte word in one interval is the
// sub-word layout DESIGN.md warns about: diffs merge at word
// granularity and one update would silently vanish. The interval close
// must detect it and fail loudly.
func TestBarrierFlagsSubWordConcurrentWriters(t *testing.T) {
	c, r := twoHostCluster(t)
	clk0, clk1 := simtime.NewClock(0), simtime.NewClock(0)

	// Master seeds the page so both hosts start from a common base.
	c.Host(0).Write(r.ID, 0, make([]byte, 16), clk0)
	c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})

	// Host 0 writes bytes [0,4), host 1 bytes [4,8): disjoint bytes,
	// same word — a float32-adjacent-element layout.
	c.Host(0).Write(r.ID, 0, []byte{1, 2, 3, 4}, clk0)
	c.Host(1).Write(r.ID, 4, []byte{5, 6, 7, 8}, clk1)

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("barrier did not flag sub-word concurrent writers")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, "word") || !strings.Contains(msg, "race.page") {
			t.Fatalf("unexpected panic: %v", v)
		}
	}()
	c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})
}

// Writers that stay a word apart are the supported multiple-writer
// pattern and must pass the same check.
func TestBarrierAcceptsWordDisjointWriters(t *testing.T) {
	c, r := twoHostCluster(t)
	clk0, clk1 := simtime.NewClock(0), simtime.NewClock(0)

	c.Host(0).Write(r.ID, 0, make([]byte, 16), clk0)
	c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})

	c.Host(0).Write(r.ID, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8}, clk0)
	c.Host(1).Write(r.ID, 8, []byte{9, 10, 11, 12, 13, 14, 15, 16}, clk1)
	c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})

	// Both writers' words survive the merge on a third read.
	got := make([]byte, 16)
	c.Host(0).Read(r.ID, 0, got, clk0)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d (merge lost an update)", i, got[i], want[i])
		}
	}
}

// The same sub-word hazard must be caught on the flush path (lock
// releases and task handoffs), where the peer's interval is still
// open: the flushed diff is checked against concurrently-dirty copies.
func TestFlushFlagsSubWordConcurrentWriters(t *testing.T) {
	c, r := twoHostCluster(t)
	clk0, clk1 := simtime.NewClock(0), simtime.NewClock(0)

	c.Host(0).Write(r.ID, 0, make([]byte, 16), clk0)
	c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})

	c.Host(0).Write(r.ID, 0, []byte{1, 2, 3, 4}, clk0)
	c.Host(1).Write(r.ID, 4, []byte{5, 6, 7, 8}, clk1)

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("flush did not flag sub-word concurrent writers")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, "word") || !strings.Contains(msg, "race.page") {
			t.Fatalf("unexpected panic: %v", v)
		}
	}()
	c.FlushInterval(c.Host(0), clk0)
}

// Word-disjoint flushes against a dirty peer stay silent.
func TestFlushAcceptsWordDisjointWriters(t *testing.T) {
	c, r := twoHostCluster(t)
	clk0, clk1 := simtime.NewClock(0), simtime.NewClock(0)

	c.Host(0).Write(r.ID, 0, make([]byte, 16), clk0)
	c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})

	c.Host(0).Write(r.ID, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8}, clk0)
	c.Host(1).Write(r.ID, 8, []byte{9, 10, 11, 12}, clk1)
	if n := c.FlushInterval(c.Host(0), clk0); n != 1 {
		t.Fatalf("flush created %d diffs, want 1", n)
	}
}
