package dsm

import (
	"fmt"
	"sort"

	"nowomp/internal/engine"
	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// lockState is one Tmk lock. Lock ids are managed by host 0, matching
// TreadMarks' static lock-manager assignment.
//
// Mutual exclusion between simulated processes is enforced by the
// discrete-event engine: a requester parks and is granted the lock
// only when it is free and the request has the earliest (virtual
// request time, host id) key among the registered waiters. Because the
// engine always wakes the runnable proc with the lowest virtual time,
// a grant at instant T can never be pre-empted by a later-arriving
// request from before T — the conservative rule the old spin-and-
// reelect scheduler approximated is now exact, and grant order is
// fully independent of the Go scheduler.
type lockState struct {
	held bool
	// waiters maps ticket ids to virtual request times and requesters.
	waiters     map[uint64]lockWaiter
	nextTicket  uint64
	lastRelease simtime.Seconds
	lastHolder  HostID
	everHeld    bool
	// wl lists the procs parked in acquire; release notifies it so the
	// engine re-examines exactly the procs contending for this lock.
	wl engine.WaitList
	// reason is the park description, precomputed so contended acquires
	// in a hot loop do not format a string per claim.
	reason string
}

// lockWaiter is one queued acquire request.
type lockWaiter struct {
	at   simtime.Seconds
	host HostID
}

func newLockState(id int) *lockState {
	return &lockState{
		lastHolder: -1,
		waiters:    make(map[uint64]lockWaiter),
		reason:     fmt.Sprintf("lock %d", id),
	}
}

// acquire blocks until the calling proc holds the lock. Grants follow
// (virtual time, host id) order among registered waiters — host id,
// not arrival order, breaks virtual-time ties, so that symmetric
// processes requesting at the identical instant (a uniform loop's
// first dynamic claim, say) are granted in a reproducible order no
// matter how the Go scheduler interleaves them. Outside any
// engine-driven construct (sequential sections, tests driving the
// cluster directly) the lock is granted immediately when free; a
// held lock there is a self-deadlock and panics.
func (lk *lockState) acquire(c *Cluster, id int, clk *simtime.Clock, host HostID) {
	p := c.runningProc()
	if p == nil {
		if lk.held {
			panic(fmt.Sprintf("dsm: lock %d acquired while held, outside any engine-driven construct (self-deadlock)", id))
		}
		lk.held = true
		return
	}
	at := clk.Now()
	ticket := lk.nextTicket
	lk.nextTicket++
	lk.waiters[ticket] = lockWaiter{at: at, host: host}
	p.ParkOn(&lk.wl, lk.reason, func() (simtime.Seconds, bool) {
		if lk.held || !lk.isNext(ticket) {
			return 0, false
		}
		return at, true
	})
	delete(lk.waiters, ticket)
	lk.held = true
}

// isNext reports whether the ticket has the earliest (virtual time,
// host id, ticket) key among current waiters.
func (lk *lockState) isNext(ticket uint64) bool {
	mine := lk.waiters[ticket]
	for t, w := range lk.waiters {
		switch {
		case w.at != mine.at:
			if w.at < mine.at {
				return false
			}
		case w.host != mine.host:
			if w.host < mine.host {
				return false
			}
		case t < ticket:
			return false
		}
	}
	return true
}

// release frees the lock and notifies the parked waiters; the engine
// re-elects among them at its next dispatch.
func (lk *lockState) release(holder HostID, at simtime.Seconds) {
	lk.held = false
	lk.lastRelease = at
	lk.lastHolder = holder
	lk.everHeld = true
	lk.wl.Notify()
}

// LockHeld reports whether lock id is currently held (diagnostics).
func (c *Cluster) LockHeld(id int) bool {
	return c.locks.get(id).held
}

type lockTable struct {
	locks map[int]*lockState
}

func newLockTable() *lockTable { return &lockTable{locks: make(map[int]*lockState)} }

func (t *lockTable) get(id int) *lockState {
	lk := t.locks[id]
	if lk == nil {
		lk = newLockState(id)
		t.locks[id] = lk
	}
	return lk
}

// AcquireLock acquires lock id for host h, blocking until the current
// holder releases. The acquirer's clock advances past the releaser's
// release instant plus the measured acquire cost (178 us uncontended at
// the manager, up to 272 us when the request is forwarded to a distant
// holder). Acquire-side consistency then invalidates or upgrades local
// copies made stale by lock-release intervals it has not yet honoured.
func (c *Cluster) AcquireLock(id int, h *Host, clk *simtime.Clock) {
	lk := c.locks.get(id)
	lk.acquire(c, id, clk, h.id) // released by ReleaseLock

	clk.AdvanceTo(lk.lastRelease)
	manager := c.Master()
	forwarded := lk.everHeld && lk.lastHolder != manager.id && lk.lastHolder != h.id
	holderMachine := manager.machine
	if forwarded {
		holderMachine = c.Host(lk.lastHolder).machine
	}
	clk.Advance(c.costs.Lock(h.machine, manager.machine, holderMachine, forwarded))
	c.stats.LockAcquires.Add(1)

	// Request to the manager; grant from manager or forwarded holder.
	c.fabric.Record(h.machine, manager.machine, msgHeader)
	granter := manager
	if lk.everHeld && lk.lastHolder != manager.id {
		holder := c.Host(lk.lastHolder)
		c.fabric.Record(manager.machine, holder.machine, msgHeader)
		granter = holder
	}
	c.fabric.Record(granter.machine, h.machine, msgHeader)

	c.honourReleases(h, clk)
}

// honourReleases performs acquire-side consistency: every page touched
// by a release interval the host has not yet synchronised with is
// invalidated, or — if the host has it dirty in its own open interval —
// upgraded in place by fetching and applying the missing diffs (the
// words are disjoint in a race-free program).
func (c *Cluster) honourReleases(h *Host, clk *simtime.Clock) {
	c.dir.mu.RLock()
	horizon := h.syncSeq
	// The log is ascending by sequence: the unsynchronised entries are a
	// suffix, found by binary search instead of rescanning the whole log
	// on every acquire.
	log := c.releaseLog
	lo := sort.Search(len(log), func(i int) bool { return log[i].seq > horizon })
	stale := append([]relEntry(nil), log[lo:]...)
	cur := c.seq
	c.dir.mu.RUnlock()

	seen := make(map[pageKey]bool, len(stale))
	for _, e := range stale {
		if seen[e.pk] {
			continue
		}
		seen[e.pk] = true
		c.proto.upgradeOrInvalidate(h, e.pk, clk)
	}
	h.syncSeq = cur
}

// ReleaseLock closes the host's open interval under the coherence
// protocol (its writes under the lock become committed diffs with
// fresh write notices) and releases lock id.
func (c *Cluster) ReleaseLock(id int, h *Host, clk *simtime.Clock) {
	lk := c.locks.get(id)

	c.dir.mu.Lock()
	c.proto.flushIntervalLocked(h, clk)
	c.dir.mu.Unlock()

	clk.Advance(c.costs.MsgOverhead(h.machine))
	lk.release(h.id, clk.Now())
}

// checkDirtyPeerRaces extends the sub-word race check to flush-path
// interval closes (lock releases and task handoffs): a peer host that
// currently holds the same page dirty wrote it concurrently with the
// interval just closed — no synchronisation orders the two — so any
// common modified word is a lost update in the making. The caller
// holds the directory write lock, which serialises all interval
// closes.
func (c *Cluster) checkDirtyPeerRaces(writer HostID, pk pageKey, d *page.Diff) {
	for _, h2 := range c.hosts {
		if h2.id == writer || !h2.active {
			continue
		}
		st2 := &h2.pages[pk.region][pk.page]
		var d2 *page.Diff
		if st2.dirty && st2.twin != nil {
			d2 = page.Make(st2.twin, st2.data)
		}
		if d2 == nil {
			continue
		}
		if w, ok := d.FirstOverlap(d2); ok {
			panic(c.wordRaceMessage(writer, h2.id, pk, w, "without synchronisation"))
		}
	}
}
