package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// relEntry records a page modified by a lock-release interval since the
// last barrier; barriers use the log to invalidate stale copies and
// acquirers use it to honour happened-before writes.
type relEntry struct {
	pk  pageKey
	seq int32
}

// BarrierResult reports what a barrier did, for measurement.
type BarrierResult struct {
	ReleaseTime simtime.Seconds
	Seq         int32
	GCRan       bool
}

// Barrier closes the open interval of every active host: writers
// commit their modifications under the cluster's coherence protocol
// (Tmk turns twins into retained diffs or ownership claims, HLRC
// flushes diffs to each page's home), write notices are merged and
// broadcast, stale copies are invalidated, and, if the protocol's
// reclaimable storage exceeds the threshold, a garbage collection
// runs. The caller supplies each host's arrival time; the returned
// release time is when every process may continue.
//
// Barrier must be called with every active process parked (the OpenMP
// layer guarantees this); it is not safe to run concurrently with
// shared-memory accesses by active hosts.
func (c *Cluster) Barrier(active []HostID, arrivals []simtime.Seconds) BarrierResult {
	if len(active) != len(arrivals) {
		panic(fmt.Sprintf("dsm: %d active hosts but %d arrival times", len(active), len(arrivals)))
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	c.seq++
	s := c.seq
	c.stats.Barriers.Add(1)

	var release simtime.Seconds
	for _, t := range arrivals {
		if t > release {
			release = t
		}
	}

	// Gather the dirty pages of every active host. Instead of a
	// per-barrier writtenBy map (whose hashing dominated barrier cost at
	// full scale), each page is claimed by stamping persistent per-page
	// scratch with this barrier's sequence; only pages with a second
	// writer — rare outside migratory phases — fall back to a map.
	wlists := make([][]pageKey, len(active))
	var multi map[pageKey][]HostID
	for i, id := range active {
		w := c.Host(id).takeWritten()
		wlists[i] = w
		for _, pk := range w {
			if c.barrierStamp[pk.region][pk.page] != s {
				c.barrierStamp[pk.region][pk.page] = s
				c.barrierFirst[pk.region][pk.page] = id
				continue
			}
			if multi == nil {
				if c.multiWriterScratch == nil {
					c.multiWriterScratch = make(map[pageKey][]HostID)
				}
				multi = c.multiWriterScratch
			}
			ws := multi[pk]
			if len(ws) == 0 {
				ws = append(ws, c.barrierFirst[pk.region][pk.page])
			}
			multi[pk] = append(ws, id)
		}
	}

	// Close intervals page by page under the coherence protocol, each
	// page once, at its first writer's occurrence — the same order the
	// map-based gather produced.
	flush := make([]simtime.Seconds, len(c.hosts))
	var one [1]HostID
	for i, id := range active {
		for _, pk := range wlists[i] {
			if c.barrierFirst[pk.region][pk.page] != id || c.barrierStamp[pk.region][pk.page] != s {
				continue // closed via the first writer
			}
			writers := multi[pk]
			if writers == nil {
				one[0] = id
				writers = one[:]
			}
			c.proto.closePage(pk, writers, s, active, flush)
		}
	}
	for pk := range multi {
		delete(multi, pk)
	}

	// Lock-release intervals since the last barrier may have modified
	// pages that non-participants still hold valid copies of.
	c.applyReleaseLog(active)

	// Account write-notice exchange: slaves send their notice lists to
	// the master, which broadcasts the merged list.
	c.accountBarrierTraffic(active, wlists)

	var maxFlush simtime.Seconds
	for _, id := range active {
		if f := flush[id]; f > maxFlush {
			maxFlush = f
		}
	}
	if c.costs.Homogeneous() {
		// Fast path: skip the member-machine gather on the hottest
		// synchronisation path (Costs.Barrier would ignore it anyway).
		release += maxFlush + c.model.Barrier(len(active))
	} else {
		members := make([]simnet.MachineID, len(active))
		for i, id := range active {
			members[i] = c.Host(id).machine
		}
		release += maxFlush + c.costs.Barrier(c.Master().machine, members)
	}

	res := BarrierResult{ReleaseTime: release, Seq: s}
	if c.proto.storageLocked() > c.cfg.GCThresholdBytes {
		res.ReleaseTime += c.proto.runGCLocked(active)
		res.GCRan = true
	}
	for _, id := range active {
		c.Host(id).syncSeq = s
	}
	return res
}

// writerDiff pairs a diff produced at one interval close with its
// writer, for the word-race check.
type writerDiff struct {
	writer HostID
	diff   *page.Diff
}

// checkWordRaces verifies that the diffs of concurrent writers of one
// page are word-disjoint. Diffs merge at 8-byte word granularity
// (page.WordBytes), so two processes writing within the same word in
// one interval silently lose one of the updates — the sub-word caveat
// on shmem.Array and Matrix. That is a program error (a data race on
// the real TreadMarks too); failing loudly here turns silent
// corruption into a diagnosable panic. The message names the region
// and the first conflicting word so the owner of the layout can find
// the offending elements.
func (c *Cluster) checkWordRaces(pk pageKey, made []writerDiff) {
	for i := 0; i < len(made); i++ {
		for j := i + 1; j < len(made); j++ {
			if w, ok := made[i].diff.FirstOverlap(made[j].diff); ok {
				panic(c.wordRaceMessage(made[i].writer, made[j].writer, pk, w,
					"in the same interval"))
			}
		}
	}
}

// wordRaceMessage renders the sub-word race diagnostic: both hosts,
// the region by name, the conflicting word and its byte offset within
// the region.
func (c *Cluster) wordRaceMessage(a, b HostID, pk pageKey, word int, when string) string {
	off := pk.page*page.Size + word*page.WordBytes
	return fmt.Sprintf(
		"dsm: hosts %d and %d both wrote within the %d-byte word at byte offset %d of region %q (page %d, word %d) %s; sub-word concurrent writes lose updates (keep concurrent writers %d bytes apart)",
		a, b, page.WordBytes, off, c.regions[pk.region].Name, pk.page, word, when, page.WordBytes)
}

// applyReleaseLog invalidates copies made stale by lock-release
// intervals since the last barrier, then clears the log.
func (c *Cluster) applyReleaseLog(active []HostID) {
	for _, e := range c.releaseLog {
		pm := c.dir.metaLocked(e.pk.region, e.pk.page)
		latest := pm.latestSeq()
		for _, id := range active {
			h := c.Host(id)
			st := &h.pages[e.pk.region][e.pk.page]
			if st.valid && st.appliedSeq < latest {
				st.valid = false
			}
		}
	}
	c.releaseLog = c.releaseLog[:0]
}

// accountBarrierTraffic records the write-notice exchange on the
// fabric: one arrival message per slave, one broadcast per slave.
// wlists holds each active host's written pages, parallel to active.
func (c *Cluster) accountBarrierTraffic(active []HostID, wlists [][]pageKey) {
	master := c.Master()
	total := 0
	for _, w := range wlists {
		total += len(w)
	}
	const noticeBytes = 8
	down := msgHeader + noticeBytes*total
	for i, id := range active {
		if id == master.id {
			continue
		}
		h := c.Host(id)
		up := msgHeader + noticeBytes*len(wlists[i])
		c.fabric.Record(h.machine, master.machine, up)
		c.fabric.Record(master.machine, h.machine, down)
	}
}
