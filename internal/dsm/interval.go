package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// relEntry records a page modified by a lock-release interval since the
// last barrier; barriers use the log to invalidate stale copies and
// acquirers use it to honour happened-before writes.
type relEntry struct {
	pk  pageKey
	seq int32
}

// BarrierResult reports what a barrier did, for measurement.
type BarrierResult struct {
	ReleaseTime simtime.Seconds
	Seq         int32
	GCRan       bool
}

// Barrier closes the open interval of every active host: writers flush
// twins to diffs (multiple-writer pages) or claim ownership (single-
// writer pages), write notices are merged and broadcast, stale copies
// are invalidated, and, if diff storage exceeds the threshold, a
// garbage collection runs. The caller supplies each host's arrival
// time; the returned release time is when every process may continue.
//
// Barrier must be called with every active process parked (the OpenMP
// layer guarantees this); it is not safe to run concurrently with
// shared-memory accesses by active hosts.
func (c *Cluster) Barrier(active []HostID, arrivals []simtime.Seconds) BarrierResult {
	if len(active) != len(arrivals) {
		panic(fmt.Sprintf("dsm: %d active hosts but %d arrival times", len(active), len(arrivals)))
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	c.seq++
	s := c.seq
	c.stats.Barriers.Add(1)

	var release simtime.Seconds
	for _, t := range arrivals {
		if t > release {
			release = t
		}
	}

	// Gather the dirty pages of every active host.
	writtenBy := make(map[pageKey][]HostID)
	written := make(map[HostID][]pageKey, len(active))
	for _, id := range active {
		w := c.Host(id).takeWritten()
		written[id] = w
		for _, pk := range w {
			writtenBy[pk] = append(writtenBy[pk], id)
		}
	}

	// Close intervals page by page.
	flush := make(map[HostID]simtime.Seconds, len(active))
	for _, id := range active {
		for _, pk := range written[id] {
			writers := writtenBy[pk]
			if writers == nil {
				continue // already processed via another writer
			}
			writtenBy[pk] = nil
			c.closePage(pk, writers, s, active, flush)
		}
	}

	// Lock-release intervals since the last barrier may have modified
	// pages that non-participants still hold valid copies of.
	c.applyReleaseLog(active)

	// Account write-notice exchange: slaves send their notice lists to
	// the master, which broadcasts the merged list.
	c.accountBarrierTraffic(active, written)

	var maxFlush simtime.Seconds
	for _, f := range flush {
		if f > maxFlush {
			maxFlush = f
		}
	}
	if c.costs.Homogeneous() {
		// Fast path: skip the member-machine gather on the hottest
		// synchronisation path (Costs.Barrier would ignore it anyway).
		release += maxFlush + c.model.Barrier(len(active))
	} else {
		members := make([]simnet.MachineID, len(active))
		for i, id := range active {
			members[i] = c.Host(id).machine
		}
		release += maxFlush + c.costs.Barrier(c.Master().machine, members)
	}

	res := BarrierResult{ReleaseTime: release, Seq: s}
	if c.diffStorageLocked() > c.cfg.GCThresholdBytes {
		res.ReleaseTime += c.runGCLocked(active)
		res.GCRan = true
	}
	for _, id := range active {
		c.Host(id).syncSeq = s
	}
	return res
}

// closePage closes the interval s for one page with the given writers.
// Callers hold the directory write lock and all processes are parked.
func (c *Cluster) closePage(pk pageKey, writers []HostID, s int32, active []HostID, flush map[HostID]simtime.Seconds) {
	pm := c.dir.metaLocked(pk.region, pk.page)

	multi := pm.mode == ModeMulti || len(writers) > 1
	if multi && pm.mode == ModeSingle {
		// Transition: diffs exist only from interval s on; older copies
		// must full-fetch from the owner, whose copy is current as of
		// the last single-writer notice.
		pm.baseSeq = pm.latestSeq()
		pm.mode = ModeMulti
	}

	noticed := make(map[HostID]bool, len(writers))
	if multi {
		var made []writerDiff
		for _, w := range writers {
			h := c.Host(w)
			h.mu.Lock()
			st := &h.pages[pk.region][pk.page]
			d := page.Make(st.twin, st.data)
			st.twin = nil
			st.dirty = false
			if d != nil {
				h.diffs[pk] = append(h.diffs[pk], seqDiff{seq: s, diff: d})
				h.diffBytes += d.WireSize()
				c.stats.DiffsCreated.Add(1)
				pm.notices = append(pm.notices, notice{writer: w, seq: s})
				noticed[w] = true
				flush[w] += c.costs.DiffCreate(h.machine, page.Size)
				made = append(made, writerDiff{writer: w, diff: d})
			}
			h.mu.Unlock()
		}
		c.checkWordRaces(pk, made)
	} else {
		w := writers[0]
		h := c.Host(w)
		h.mu.Lock()
		st := &h.pages[pk.region][pk.page]
		st.twin = nil
		st.dirty = false
		st.appliedSeq = s
		h.mu.Unlock()
		pm.owner = w
		pm.baseSeq = s
		// Single-writer pages keep only the latest notice: no diffs
		// exist, so older notices can never be patched in anyway.
		pm.notices = append(pm.notices[:0], notice{writer: w, seq: s})
		noticed[w] = true
	}

	// Invalidate stale copies. A sole writer that produced a notice is
	// current; concurrent writers each lack the others' words and go
	// invalid too (their own diffs are local, so revalidation is a
	// diff exchange away).
	soleCurrent := HostID(-1)
	if len(writers) == 1 && noticed[writers[0]] {
		soleCurrent = writers[0]
	}
	for _, id := range active {
		if id == soleCurrent {
			continue
		}
		h := c.Host(id)
		h.mu.Lock()
		st := &h.pages[pk.region][pk.page]
		if multi {
			if st.valid && (st.appliedSeq < pm.latestSeq() || noticed[id]) {
				st.valid = false
			}
		} else if st.valid && id != writers[0] {
			st.valid = false
		}
		h.mu.Unlock()
	}
	if soleCurrent >= 0 && multi {
		h := c.Host(soleCurrent)
		h.mu.Lock()
		h.pages[pk.region][pk.page].appliedSeq = s
		h.mu.Unlock()
	}
}

// writerDiff pairs a diff produced at one interval close with its
// writer, for the word-race check.
type writerDiff struct {
	writer HostID
	diff   *page.Diff
}

// checkWordRaces verifies that the diffs of concurrent writers of one
// page are word-disjoint. Diffs merge at 8-byte word granularity
// (page.WordBytes), so two processes writing within the same word in
// one interval silently lose one of the updates — the sub-word caveat
// on shmem.Array and Matrix. That is a program error (a data race on
// the real TreadMarks too); failing loudly here turns silent
// corruption into a diagnosable panic.
func (c *Cluster) checkWordRaces(pk pageKey, made []writerDiff) {
	for i := 0; i < len(made); i++ {
		for j := i + 1; j < len(made); j++ {
			if made[i].diff.Overlaps(made[j].diff) {
				panic(fmt.Sprintf(
					"dsm: hosts %d and %d both wrote within one %d-byte word of page %d of region %q in the same interval; sub-word concurrent writes lose updates (keep concurrent writers %d bytes apart)",
					made[i].writer, made[j].writer, page.WordBytes,
					pk.page, c.regions[pk.region].Name, page.WordBytes))
			}
		}
	}
}

// applyReleaseLog invalidates copies made stale by lock-release
// intervals since the last barrier, then clears the log.
func (c *Cluster) applyReleaseLog(active []HostID) {
	for _, e := range c.releaseLog {
		pm := c.dir.metaLocked(e.pk.region, e.pk.page)
		latest := pm.latestSeq()
		for _, id := range active {
			h := c.Host(id)
			h.mu.Lock()
			st := &h.pages[e.pk.region][e.pk.page]
			if st.valid && st.appliedSeq < latest {
				st.valid = false
			}
			h.mu.Unlock()
		}
	}
	c.releaseLog = c.releaseLog[:0]
}

// accountBarrierTraffic records the write-notice exchange on the
// fabric: one arrival message per slave, one broadcast per slave.
func (c *Cluster) accountBarrierTraffic(active []HostID, written map[HostID][]pageKey) {
	master := c.Master()
	total := 0
	for _, w := range written {
		total += len(w)
	}
	const noticeBytes = 8
	down := msgHeader + noticeBytes*total
	for _, id := range active {
		if id == master.id {
			continue
		}
		h := c.Host(id)
		up := msgHeader + noticeBytes*len(written[id])
		c.fabric.Record(h.machine, master.machine, up)
		c.fabric.Record(master.machine, h.machine, down)
	}
}

// diffStorageLocked sums diff storage across hosts; the directory write
// lock serialises it against interval closes.
func (c *Cluster) diffStorageLocked() int {
	n := 0
	for _, h := range c.hosts {
		h.mu.Lock()
		n += h.diffBytes
		h.mu.Unlock()
	}
	return n
}
