package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// relEntry records a page modified by a lock-release interval since the
// last barrier; barriers use the log to invalidate stale copies and
// acquirers use it to honour happened-before writes.
type relEntry struct {
	pk  pageKey
	seq int32
}

// BarrierResult reports what a barrier did, for measurement.
type BarrierResult struct {
	ReleaseTime simtime.Seconds
	Seq         int32
	GCRan       bool
}

// Barrier closes the open interval of every active host: writers
// commit their modifications under the cluster's coherence protocol
// (Tmk turns twins into retained diffs or ownership claims, HLRC
// flushes diffs to each page's home), write notices are merged and
// broadcast, stale copies are invalidated, and, if the protocol's
// reclaimable storage exceeds the threshold, a garbage collection
// runs. The caller supplies each host's arrival time; the returned
// release time is when every process may continue.
//
// Barrier must be called with every active process parked (the OpenMP
// layer guarantees this); it is not safe to run concurrently with
// shared-memory accesses by active hosts.
func (c *Cluster) Barrier(active []HostID, arrivals []simtime.Seconds) BarrierResult {
	if len(active) != len(arrivals) {
		panic(fmt.Sprintf("dsm: %d active hosts but %d arrival times", len(active), len(arrivals)))
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	c.seq++
	s := c.seq
	c.stats.Barriers.Add(1)

	var release simtime.Seconds
	for _, t := range arrivals {
		if t > release {
			release = t
		}
	}

	// Gather the dirty pages of every active host.
	writtenBy := make(map[pageKey][]HostID)
	written := make(map[HostID][]pageKey, len(active))
	for _, id := range active {
		w := c.Host(id).takeWritten()
		written[id] = w
		for _, pk := range w {
			writtenBy[pk] = append(writtenBy[pk], id)
		}
	}

	// Close intervals page by page under the coherence protocol.
	flush := make(map[HostID]simtime.Seconds, len(active))
	for _, id := range active {
		for _, pk := range written[id] {
			writers := writtenBy[pk]
			if writers == nil {
				continue // already processed via another writer
			}
			writtenBy[pk] = nil
			c.proto.closePage(pk, writers, s, active, flush)
		}
	}

	// Lock-release intervals since the last barrier may have modified
	// pages that non-participants still hold valid copies of.
	c.applyReleaseLog(active)

	// Account write-notice exchange: slaves send their notice lists to
	// the master, which broadcasts the merged list.
	c.accountBarrierTraffic(active, written)

	var maxFlush simtime.Seconds
	for _, f := range flush {
		if f > maxFlush {
			maxFlush = f
		}
	}
	if c.costs.Homogeneous() {
		// Fast path: skip the member-machine gather on the hottest
		// synchronisation path (Costs.Barrier would ignore it anyway).
		release += maxFlush + c.model.Barrier(len(active))
	} else {
		members := make([]simnet.MachineID, len(active))
		for i, id := range active {
			members[i] = c.Host(id).machine
		}
		release += maxFlush + c.costs.Barrier(c.Master().machine, members)
	}

	res := BarrierResult{ReleaseTime: release, Seq: s}
	if c.proto.storageLocked() > c.cfg.GCThresholdBytes {
		res.ReleaseTime += c.proto.runGCLocked(active)
		res.GCRan = true
	}
	for _, id := range active {
		c.Host(id).syncSeq = s
	}
	return res
}

// writerDiff pairs a diff produced at one interval close with its
// writer, for the word-race check.
type writerDiff struct {
	writer HostID
	diff   *page.Diff
}

// checkWordRaces verifies that the diffs of concurrent writers of one
// page are word-disjoint. Diffs merge at 8-byte word granularity
// (page.WordBytes), so two processes writing within the same word in
// one interval silently lose one of the updates — the sub-word caveat
// on shmem.Array and Matrix. That is a program error (a data race on
// the real TreadMarks too); failing loudly here turns silent
// corruption into a diagnosable panic. The message names the region
// and the first conflicting word so the owner of the layout can find
// the offending elements.
func (c *Cluster) checkWordRaces(pk pageKey, made []writerDiff) {
	for i := 0; i < len(made); i++ {
		for j := i + 1; j < len(made); j++ {
			if w, ok := made[i].diff.FirstOverlap(made[j].diff); ok {
				panic(c.wordRaceMessage(made[i].writer, made[j].writer, pk, w,
					"in the same interval"))
			}
		}
	}
}

// wordRaceMessage renders the sub-word race diagnostic: both hosts,
// the region by name, the conflicting word and its byte offset within
// the region.
func (c *Cluster) wordRaceMessage(a, b HostID, pk pageKey, word int, when string) string {
	off := pk.page*page.Size + word*page.WordBytes
	return fmt.Sprintf(
		"dsm: hosts %d and %d both wrote within the %d-byte word at byte offset %d of region %q (page %d, word %d) %s; sub-word concurrent writes lose updates (keep concurrent writers %d bytes apart)",
		a, b, page.WordBytes, off, c.regions[pk.region].Name, pk.page, word, when, page.WordBytes)
}

// applyReleaseLog invalidates copies made stale by lock-release
// intervals since the last barrier, then clears the log.
func (c *Cluster) applyReleaseLog(active []HostID) {
	for _, e := range c.releaseLog {
		pm := c.dir.metaLocked(e.pk.region, e.pk.page)
		latest := pm.latestSeq()
		for _, id := range active {
			h := c.Host(id)
			st := &h.pages[e.pk.region][e.pk.page]
			if st.valid && st.appliedSeq < latest {
				st.valid = false
			}
		}
	}
	c.releaseLog = c.releaseLog[:0]
}

// accountBarrierTraffic records the write-notice exchange on the
// fabric: one arrival message per slave, one broadcast per slave.
func (c *Cluster) accountBarrierTraffic(active []HostID, written map[HostID][]pageKey) {
	master := c.Master()
	total := 0
	for _, w := range written {
		total += len(w)
	}
	const noticeBytes = 8
	down := msgHeader + noticeBytes*total
	for _, id := range active {
		if id == master.id {
			continue
		}
		h := c.Host(id)
		up := msgHeader + noticeBytes*len(written[id])
		c.fabric.Record(h.machine, master.machine, up)
		c.fabric.Record(master.machine, h.machine, down)
	}
}
