package dsm

import (
	"testing"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// Unit tests for the hybrid protocol's adaptive mechanics: the
// classifier census, single-writer elision, diff-window serving, free
// home flips and priced dominant-writer migration. Each drives the
// cluster API directly with hand-built access patterns so the exact
// counter deltas are checkable; end-to-end output equivalence lives in
// the bench golden matrix and the scenfuzz cross-protocol oracle.

// TestHybridSingleWriterElision: a page with one historical writer, no
// remote readers and its writer as home skips twin and diff work
// entirely — and the first remote read reclassifies it and ends the
// elision.
func TestHybridSingleWriterElision(t *testing.T) {
	c, r := protoCluster(t, Hybrid, 2, 2)
	clk0, clk1 := simtime.NewClock(0), simtime.NewClock(0)
	active := []HostID{0, 1}
	barrier := func() {
		c.Barrier(active, []simtime.Seconds{clk0.Now(), clk1.Now()})
	}

	// First write: the page is unclassified, so the write twins as
	// usual; the close proves it single-writer.
	c.Host(0).Write(r.ID, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8}, clk0)
	barrier()
	st := c.Stats().Snapshot()
	if st.PagesSingleWriter != 1 {
		t.Fatalf("census after sole close: %d single-writer pages, want 1", st.PagesSingleWriter)
	}
	if st.ElidedTwins != 0 {
		t.Fatalf("unproven page elided a twin: %+v", st)
	}

	// Second write: proven single-writer, writer is home, no other
	// copy — the twin is elided and the close commits without a diff.
	twinsBefore := st.TwinsCreated
	c.Host(0).Write(r.ID, 8, []byte{9, 10, 11, 12, 13, 14, 15, 16}, clk0)
	barrier()
	st = c.Stats().Snapshot()
	if st.ElidedTwins != 1 || st.ElidedDiffs != 1 {
		t.Fatalf("elision counters = (%d twins, %d diffs), want (1, 1)", st.ElidedTwins, st.ElidedDiffs)
	}
	if st.TwinsCreated != twinsBefore {
		t.Fatalf("elided write still created a twin (%d -> %d)", twinsBefore, st.TwinsCreated)
	}

	// A remote reader sees every committed word — the elided commit
	// lost nothing — and demotes the page to producer-consumer, so the
	// next write twins again.
	got := make([]byte, 16)
	c.Host(1).Read(r.ID, 0, got, clk1)
	for i := 0; i < 16; i++ {
		if got[i] != byte(i+1) {
			t.Fatalf("remote read byte %d = %d, want %d", i, got[i], i+1)
		}
	}
	st = c.Stats().Snapshot()
	if st.PagesSingleWriter != 0 || st.PagesProducerConsumer != 1 {
		t.Fatalf("census after remote read: %d single-writer, %d producer-consumer, want 0 and 1",
			st.PagesSingleWriter, st.PagesProducerConsumer)
	}
	c.Host(0).Write(r.ID, 16, []byte{1, 1, 1, 1, 1, 1, 1, 1}, clk0)
	if now := c.Stats().Snapshot(); now.ElidedTwins != 1 {
		t.Fatalf("write after reclassification still elided: %d elided twins", now.ElidedTwins)
	}
	barrier()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridWindowServing: a sparse sole-writer close flips the home to
// the writer for free and retains the diff; a reader whose stale copy
// sits inside the window then pulls just the missing diffs — no
// whole-page transfer.
func TestHybridWindowServing(t *testing.T) {
	c, r := protoCluster(t, Hybrid, 3, 1)
	clks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0), simtime.NewClock(0)}
	active := []HostID{0, 1, 2}
	barrier := func() {
		c.Barrier(active, []simtime.Seconds{clks[0].Now(), clks[1].Now(), clks[2].Now()})
	}

	// Everyone reads the page so every host holds a (zero) copy.
	buf := make([]byte, 8)
	for _, id := range active {
		c.Host(id).Read(r.ID, 0, buf, clks[id])
	}
	barrier()

	// Host 1 commits a sparse write: the empty window makes the home
	// flip free (onlyWriter holds vacuously), so no flush travels and
	// no migration bytes are charged.
	c.Host(1).Write(r.ID, 0, []byte{42, 0, 0, 0, 0, 0, 0, 0}, clks[1])
	barrier()
	st := c.Stats().Snapshot()
	if st.HomeMigrations != 1 || st.HomeMigrationBytes != 0 {
		t.Fatalf("free flip = (%d migrations, %d bytes), want (1, 0)", st.HomeMigrations, st.HomeMigrationBytes)
	}
	if got := c.PageOwner(r.ID, 0); got != 1 {
		t.Fatalf("home after sole sparse close = %d, want the writer 1", got)
	}

	// Host 2's invalidated copy is inside the window: the fault must be
	// served with the retained diff, not a page transfer.
	before := c.Stats().Snapshot()
	fabBefore := c.Fabric().Snapshot()
	c.Host(2).Read(r.ID, 0, buf, clks[2])
	delta := c.Stats().Snapshot().Sub(before)
	if delta.DiffFetches != 1 || delta.PageFetches != 0 {
		t.Fatalf("window fault = (%d diff fetches, %d page fetches), want (1, 0)", delta.DiffFetches, delta.PageFetches)
	}
	if moved := c.Fabric().Snapshot().Sub(fabBefore).TotalBytes(); moved >= page.Size {
		t.Fatalf("window fault moved %d bytes, want under a page", moved)
	}
	if buf[0] != 42 {
		t.Fatalf("window-patched read = %d, want 42", buf[0])
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridPricedMigration: a falsely-shared page whose closes one
// writer dominates re-homes to that writer with a paid whole-page
// transfer — exactly one page of migration bytes, charged once the
// dominance run reaches its threshold.
func TestHybridPricedMigration(t *testing.T) {
	c, r := protoCluster(t, Hybrid, 3, 2)
	clks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0), simtime.NewClock(0)}
	active := []HostID{0, 1, 2}
	barrier := func() {
		c.Barrier(active, []simtime.Seconds{clks[0].Now(), clks[1].Now(), clks[2].Now()})
	}

	// Page 1 is homed at host 1 (round-robin). Hosts 0 and 1 write
	// disjoint words of it every interval: falsely shared, with host 0
	// — the lowest concurrent writer — as the dominant writer.
	off := page.Size
	for round := 0; round < domMigrateRun; round++ {
		c.Host(0).Write(r.ID, off, []byte{byte(round + 1), 0, 0, 0, 0, 0, 0, 0}, clks[0])
		c.Host(1).Write(r.ID, off+8, []byte{byte(round + 101), 0, 0, 0, 0, 0, 0, 0}, clks[1])
		barrier()
	}

	st := c.Stats().Snapshot()
	if st.PagesFalselyShared != 1 {
		t.Fatalf("census: %d falsely-shared pages, want 1", st.PagesFalselyShared)
	}
	if st.HomeMigrations != 1 || st.HomeMigrationBytes != int64(page.Size) {
		t.Fatalf("priced migration = (%d migrations, %d bytes), want (1, %d)",
			st.HomeMigrations, st.HomeMigrationBytes, page.Size)
	}
	if got := c.PageOwner(r.ID, 1); got != 0 {
		t.Fatalf("home after dominance run = %d, want the dominant writer 0", got)
	}

	// The migrated home is current: a third host sees both writers'
	// last words.
	got := make([]byte, 16)
	c.Host(2).Read(r.ID, off, got, clks[2])
	if got[0] != byte(domMigrateRun) || got[8] != byte(domMigrateRun+100) {
		t.Fatalf("post-migration read = (%d, %d), want (%d, %d)",
			got[0], got[8], domMigrateRun, domMigrateRun+100)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridGCResetsClassifier: a forced collection clears the census
// and the retained windows — post-adaptation, the old sharing history
// describes a partition layout that no longer exists.
func TestHybridGCResetsClassifier(t *testing.T) {
	c, r := protoCluster(t, Hybrid, 3, 3)
	clks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0), simtime.NewClock(0)}
	active := []HostID{0, 1, 2}

	for i, id := range active {
		c.Host(id).Write(r.ID, i*page.Size, []byte{byte(i + 1), 2, 3, 4, 5, 6, 7, 8}, clks[i])
	}
	c.Barrier(active, []simtime.Seconds{clks[0].Now(), clks[1].Now(), clks[2].Now()})
	st := c.Stats().Snapshot()
	if st.PagesSingleWriter+st.PagesProducerConsumer+st.PagesMigratory+st.PagesFalselyShared == 0 {
		t.Fatal("no page classified before the collection")
	}
	if c.proto.storageLocked() == 0 {
		t.Fatal("no retained window bytes before the collection")
	}

	c.ForceGC(active)
	st = c.Stats().Snapshot()
	if n := st.PagesSingleWriter + st.PagesProducerConsumer + st.PagesMigratory + st.PagesFalselyShared; n != 0 {
		t.Fatalf("census still counts %d pages after the collection", n)
	}
	if got := c.proto.storageLocked(); got != 0 {
		t.Fatalf("retained windows hold %d bytes after the collection", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
