package dsm

import (
	"bytes"
	"fmt"
)

// CheckInvariants validates the DSM's global invariants. It must be
// called with every process parked (between constructs, after a
// barrier); it takes the directory write lock and inspects every host.
// Intended for tests and debugging — it is O(hosts x pages) and reads
// page contents.
//
// The invariants checked:
//
//  1. Every page's directory owner is an active host.
//  2. The owner either holds a copy, or — between the owner's write
//     and its interval close — is the page's sole pending writer.
//  3. No host holds a twin or dirty marking outside an open interval
//     (callers must have closed all intervals, i.e. be at a barrier).
//  4. appliedSeq never exceeds the global interval sequence.
//  5. Per-writer notice records are positive and never newer than the
//     page's newest notice (which never exceeds the global sequence).
//  6. Every valid copy that claims to be fully current (appliedSeq ==
//     latest notice) has identical contents to every other such copy.
//  7. Inactive hosts hold no page data.
func (c *Cluster) CheckInvariants() error {
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	active := make(map[HostID]bool)
	for _, h := range c.hosts {
		if h.active {
			active[h.id] = true
		}
	}

	for ri := range c.dir.pages {
		r := RegionID(ri)
		for p := range c.dir.pages[ri] {
			pm := &c.dir.pages[ri][p]
			if !active[pm.owner] {
				return fmt.Errorf("dsm: invariant: page %d/%d owned by inactive host %d", r, p, pm.owner)
			}
			latest := pm.latestSeq()
			if latest > c.seq {
				return fmt.Errorf("dsm: invariant: page %d/%d notice seq %d beyond global %d", r, p, latest, c.seq)
			}
			for _, rec := range pm.writers {
				if rec.max < 1 || rec.max > pm.last {
					return fmt.Errorf("dsm: invariant: page %d/%d writer %d notice seq %d outside (0, %d]", r, p, rec.writer, rec.max, pm.last)
				}
			}

			var current []byte
			var currentHost HostID
			for _, h := range c.hosts {
				st := &h.pages[r][p]
				switch {
				case !h.active:
					if st.data != nil {
						return fmt.Errorf("dsm: invariant: inactive host %d holds page %d/%d", h.id, r, p)
					}
				case st.dirty || st.twin != nil:
					return fmt.Errorf("dsm: invariant: host %d has an open interval on page %d/%d (call at a barrier)", h.id, r, p)
				case st.appliedSeq > c.seq:
					return fmt.Errorf("dsm: invariant: host %d page %d/%d applied %d beyond global %d", h.id, r, p, st.appliedSeq, c.seq)
				case st.valid && st.data == nil:
					return fmt.Errorf("dsm: invariant: host %d page %d/%d valid without data", h.id, r, p)
				case st.valid && st.appliedSeq >= latest:
					// A fully-current copy: all such copies must agree.
					if current == nil {
						current = append([]byte(nil), st.data...)
						currentHost = h.id
					} else if !bytes.Equal(current, st.data) {
						return fmt.Errorf("dsm: invariant: hosts %d and %d disagree on current page %d/%d",
							currentHost, h.id, r, p)
					}
				}
			}

			owner := c.Host(pm.owner)
			ownerHasData := owner.pages[r][p].data != nil
			if !ownerHasData {
				return fmt.Errorf("dsm: invariant: owner %d of page %d/%d holds no copy", pm.owner, r, p)
			}
		}
	}
	return nil
}
