package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// hybridProtocol is the adaptive per-page coherence protocol: a
// home-based (HLRC-style) baseline whose mechanics specialize per page
// according to the classifier in classify.go.
//
//   - Home migration. A sole writer that is current at an interval
//     close takes the page's home with it when that costs nothing —
//     either its diff is dense (so future faulters need whole pages
//     and the retained-diff window at the old home is worthless) or
//     the window holds only the writer's own diffs (so nothing is
//     lost by moving it). The flip is a directory update riding the
//     existing close broadcast: no data moves, because the new home
//     already holds the current page. A falsely-shared page whose
//     recent closes are dominated by one writer migrates the hard
//     way: the old home ships the merged page to the dominant writer,
//     priced as a page transfer on the actual src→dst link — paid
//     once, amortized by the dominance requirement.
//   - Diff-density transfer switching. The home retains a bounded
//     window of recently applied diffs. A faulting reader whose stale
//     copy is inside the window pulls just the missing diffs in one
//     message when they are sparse; a reader outside the window, or
//     one whose gap is denser than a page, pulls the whole page as
//     HLRC would. Sparse rotating writers (a claim counter) therefore
//     cost Tmk-like bytes in HLRC-like message counts, while dense
//     writers (a migratory record) keep HLRC's whole-page economics.
//   - Single-writer elision. A page the classifier has proven
//     single-writer (one historical writer, no remote readers), whose
//     writer is its own home and with no other valid copy anywhere,
//     skips twin creation and diff work entirely: with one writer
//     there is no concurrent-writer race to evidence and no reader to
//     serve, so the commit is a sequence-number update. A remote host
//     touching the page later reclassifies it and the elision stops.
//
// Correctness never depends on the classifier: every specialization
// preserves "the home is current as of the last committed interval",
// so a misclassified page pays extra traffic, never wrong data. The
// Tmk and HLRC implementations are untouched; hybrid legitimately
// reshapes traffic and timing, which is why it pins its own golden
// cells instead of sharing the parents'.
type hybridProtocol struct {
	c *Cluster
	// rr is the round-robin home-assignment cursor (as in HLRC).
	rr int
	// recs/chains hold the per-page classifier history and retained
	// diff windows, indexed like the directory ([region][page]).
	recs   [][]classRec
	chains [][]homeChain
	// retained is the total wire size of all retained diffs, the
	// protocol's reclaimable storage.
	retained int
}

// chainEntry is one retained diff: the interval it committed, the
// writer that authored it, and the diff itself.
type chainEntry struct {
	seq    int32
	writer HostID
	diff   *page.Diff
}

// homeChain is the home-retained diff window of one page. Invariant:
// every interval committed to the page with sequence in (floor,
// latest] is present as entries (commits that retained no diff raise
// floor instead), so a copy with appliedSeq >= floor can be patched
// current by applying the entries newer than it, in order.
type homeChain struct {
	floor   int32
	entries []chainEntry
	bytes   int
}

const (
	// maxChainEntries/maxChainBytes bound one page's retained window;
	// beyond either the oldest interval is dropped and the floor rises.
	// The byte bound (one page per page: retaining more than a page of
	// diffs can never beat re-sending the page) is the real storage cap;
	// the entry bound only backstops degenerate empty-diff streams, and
	// must stay deep enough that a slow host revisiting a sparsely
	// written page after many closes still lands inside the window.
	maxChainEntries = 64
	maxChainBytes   = page.Size
	// denseFlipWire: a sole writer whose close diff reaches half a page
	// takes the home with it — faulters of so dense a page need whole
	// pages anyway, so the push to a remote home buys nothing.
	denseFlipWire = page.Size / 2
	// domMigrateRun: consecutive closes one writer must dominate before
	// a falsely-shared page's home migrates to it with a paid transfer.
	domMigrateRun = 3
)

// Kind identifies the protocol.
func (hy *hybridProtocol) Kind() ProtocolKind { return Hybrid }

func (hy *hybridProtocol) rec(pk pageKey) *classRec {
	return &hy.recs[pk.region][pk.page]
}

func (hy *hybridProtocol) chain(pk pageKey) *homeChain {
	return &hy.chains[pk.region][pk.page]
}

// retain appends a committed diff to the page's window, dropping the
// oldest intervals when the bounds are exceeded.
func (hy *hybridProtocol) retain(ch *homeChain, seq int32, w HostID, d *page.Diff) {
	ch.entries = append(ch.entries, chainEntry{seq: seq, writer: w, diff: d})
	wire := d.WireSize()
	ch.bytes += wire
	hy.retained += wire
	for len(ch.entries) > maxChainEntries || ch.bytes > maxChainBytes {
		// Drop the oldest interval whole: the floor must never split
		// the entries of one close.
		s := ch.entries[0].seq
		if s == seq {
			break // never evict the interval being committed
		}
		i := 0
		for i < len(ch.entries) && ch.entries[i].seq == s {
			n := ch.entries[i].diff.WireSize()
			ch.bytes -= n
			hy.retained -= n
			i++
		}
		ch.entries = append(ch.entries[:0], ch.entries[i:]...)
		ch.floor = s
	}
}

// advance commits interval seq without a retained diff: the floor
// rises, and entries the floor passed are dropped.
func (hy *hybridProtocol) advance(ch *homeChain, seq int32) {
	if seq > ch.floor {
		ch.floor = seq
	}
	i := 0
	for i < len(ch.entries) && ch.entries[i].seq <= ch.floor {
		n := ch.entries[i].diff.WireSize()
		ch.bytes -= n
		hy.retained -= n
		i++
	}
	if i > 0 {
		ch.entries = append(ch.entries[:0], ch.entries[i:]...)
	}
}

// keepOnly drops every entry not authored by w — a home flip carries
// only the new home's own diffs — raising the floor past the drops.
func (hy *hybridProtocol) keepOnly(ch *homeChain, w HostID) {
	floor := ch.floor
	for _, e := range ch.entries {
		if e.writer != w && e.seq > floor {
			floor = e.seq
		}
	}
	if floor == ch.floor {
		return
	}
	kept := ch.entries[:0]
	bytes := 0
	for _, e := range ch.entries {
		if e.writer == w && e.seq > floor {
			kept = append(kept, e)
			bytes += e.diff.WireSize()
		}
	}
	hy.retained += bytes - ch.bytes
	ch.entries = kept
	ch.bytes = bytes
	ch.floor = floor
}

// onlyWriter reports whether every retained entry was authored by w.
func (ch *homeChain) onlyWriter(w HostID) bool {
	for _, e := range ch.entries {
		if e.writer != w {
			return false
		}
	}
	return true
}

// window returns the entries with sequence > after and their total
// wire size.
func (ch *homeChain) window(after int32) ([]chainEntry, int) {
	i := 0
	for i < len(ch.entries) && ch.entries[i].seq <= after {
		i++
	}
	win := ch.entries[i:]
	wire := 0
	for _, e := range win {
		wire += e.diff.WireSize()
	}
	return win, wire
}

// initRegion assigns round-robin homes exactly as HLRC does (the
// master keeps a copy too, for the sequential sections) and grows the
// classifier and window tables.
func (hy *hybridProtocol) initRegion(r *Region) {
	c := hy.c
	active := c.ActiveHosts()
	m := c.Master()
	for p := 0; p < r.NPages; p++ {
		home := active[hy.rr%len(active)]
		hy.rr++
		c.dir.pages[r.ID][p].owner = home
		hh := c.Host(home)
		st := &hh.pages[r.ID][p]
		st.data = c.newPage()
		st.valid = true
		if home != m.id {
			st := &m.pages[r.ID][p]
			st.data = c.newPage()
			st.valid = true
		}
	}
	hy.recs = append(hy.recs, newClassRecs(r.NPages))
	hy.chains = append(hy.chains, make([]homeChain, r.NPages))
}

// leaveStrategy: migrated homes sit at their writers like Tmk owners,
// so hybrid honours the configured handoff instead of forcing the
// round-robin re-home HLRC needs.
func (hy *hybridProtocol) leaveStrategy(s LeaveStrategy) LeaveStrategy { return s }

// storageLocked reports the retained-window bytes; past the threshold
// the barrier triggers a (free) collection that resets the windows.
func (hy *hybridProtocol) storageLocked() int { return hy.retained }

// elideTwin implements the single-writer elision decision for one
// first-write fault: the page must be classified single-writer with h
// as that writer, h must be its home, and no other host may hold a
// valid copy. Counted, and the caller skips twin creation entirely.
func (hy *hybridProtocol) elideTwin(h *Host, pk pageKey) bool {
	cr := hy.rec(pk)
	if cr.class != classSingleWriter || cr.writerA != h.id {
		return false
	}
	c := hy.c
	if c.dir.meta(pk.region, pk.page).owner != h.id {
		return false
	}
	for _, o := range c.hosts {
		if o.id != h.id && o.pages[pk.region][pk.page].valid {
			return false
		}
	}
	c.stats.ElidedTwins.Add(1)
	return true
}

// fault makes the page readable on h: a copy inside the home's
// retained window pulls just the missing diffs when they are sparse,
// anything else pulls the whole page from the home.
func (hy *hybridProtocol) fault(h *Host, pk pageKey, clk *simtime.Clock) {
	c := hy.c
	meta := c.dir.meta(pk.region, pk.page)
	home := meta.owner
	if home == h.id {
		panic(fmt.Sprintf("dsm: hybrid: home %d of page %d/%d has no valid copy", h.id, pk.region, pk.page))
	}
	cr := hy.rec(pk)
	cr.observeRead(h.id)
	cr.setClass(&c.stats, cr.classify())

	st := &h.pages[pk.region][pk.page]
	ch := hy.chain(pk)
	if st.data != nil && st.appliedSeq >= ch.floor {
		if win, wire := ch.window(st.appliedSeq); len(win) > 0 && wire < page.Size {
			hy.fetchWindow(h, c.Host(home), win, wire, clk)
			for _, e := range win {
				e.diff.Apply(st.data)
			}
			st.appliedSeq = c.Host(home).pages[pk.region][pk.page].appliedSeq
			st.valid = true
			return
		}
	}
	data, applied := c.copyPageFrom(h, c.Host(home), pk, "home", clk)
	st = &h.pages[pk.region][pk.page]
	c.releasePage(st.data)
	st.data = data
	st.appliedSeq = applied
	st.valid = true
}

// fetchWindow prices one bundled diff-window transfer from the home:
// one request, one response carrying every missing diff.
func (hy *hybridProtocol) fetchWindow(h, src *Host, win []chainEntry, wire int, clk *simtime.Clock) {
	c := hy.c
	c.fabric.Record(h.machine, src.machine, msgHeader)
	c.fabric.Record(src.machine, h.machine, wire+msgHeader)
	clk.Advance(c.costs.DiffFetch(h.machine, src.machine, wire))
	c.stats.DiffFetches.Add(int64(len(win)))
	c.stats.DiffBytes.Add(int64(wire))
}

// takeDiff diffs the writer's page against its twin and consumes the
// twin/dirty state, charging diff creation to clk. Returns nil when
// the page is unchanged.
func (hy *hybridProtocol) takeDiff(h *Host, pk pageKey, clk *simtime.Clock) *page.Diff {
	c := hy.c
	st := &h.pages[pk.region][pk.page]
	d := page.Make(st.twin, st.data)
	c.releasePage(st.twin)
	st.twin = nil
	st.dirty = false
	if d == nil {
		return nil
	}
	c.stats.DiffsCreated.Add(1)
	clk.Advance(c.costs.DiffCreate(h.machine, page.Size))
	return d
}

// pushDiff ships a taken diff to the home and applies it there (as
// HLRC does); a writer that is its own home only commits the sequence.
func (hy *hybridProtocol) pushDiff(h *Host, pk pageKey, home HostID, d *page.Diff, s int32, clk *simtime.Clock) {
	c := hy.c
	if home != h.id {
		hh := c.Host(home)
		wire := d.WireSize()
		c.fabric.Record(h.machine, hh.machine, wire+msgHeader)
		c.fabric.Record(hh.machine, h.machine, msgHeader)
		clk.Advance(c.costs.DiffFlush(h.machine, hh.machine, wire))
		c.stats.HomeFlushes.Add(1)
		c.stats.HomeFlushBytes.Add(int64(wire))
		hy.applyAtHome(h.id, hh, pk, d, s)
	} else {
		st := &h.pages[pk.region][pk.page]
		st.appliedSeq = s
		st.valid = true
	}
}

// applyAtHome applies a pushed diff to the home's copy, with the same
// pre-apply race check as HLRC when the home itself has the page dirty
// with a twin. An elided home (dirty, no twin) has no diffable
// evidence — its sole-writer proof already failed if a remote diff
// arrives — so the check is skipped and the words merge (they are
// disjoint in a race-free program).
func (hy *hybridProtocol) applyAtHome(from HostID, hh *Host, pk pageKey, d *page.Diff, s int32) {
	st := &hh.pages[pk.region][pk.page]
	if st.data == nil {
		panic(fmt.Sprintf("dsm: hybrid: home %d of page %d/%d holds no copy", hh.id, pk.region, pk.page))
	}
	if st.dirty && st.twin != nil {
		if own := page.Make(st.twin, st.data); own != nil {
			if w, ok := d.FirstOverlap(own); ok {
				panic(hy.c.wordRaceMessage(from, hh.id, pk, w, "without synchronisation"))
			}
		}
		d.Apply(st.twin)
	}
	d.Apply(st.data)
	st.appliedSeq = s
	st.valid = true
}

// closePage commits interval s for one page at a barrier (or a forced
// interval close), observing the writers for the classifier and
// dispatching to the sole-writer or concurrent-writer path.
func (hy *hybridProtocol) closePage(pk pageKey, writers []HostID, s int32, active []HostID, flush []simtime.Seconds) {
	c := hy.c
	pm := c.dir.metaLocked(pk.region, pk.page)
	cr := hy.rec(pk)
	cr.observeClose(writers)
	cr.setClass(&c.stats, cr.classify())

	if len(writers) == 1 {
		hy.closeSole(pk, pm, cr, writers[0], s, active, flush)
		return
	}
	hy.closeMulti(pk, pm, cr, writers, s, active, flush)
}

// closeSole commits a close with exactly one writer.
func (hy *hybridProtocol) closeSole(pk pageKey, pm *pageMeta, cr *classRec, w HostID, s int32, active []HostID, flush []simtime.Seconds) {
	c := hy.c
	h := c.Host(w)
	st := &h.pages[pk.region][pk.page]
	ch := hy.chain(pk)
	home := pm.owner
	prevLatest := pm.latestSeq()

	if st.dirty && st.twin == nil {
		// Elided page: the writer is its own home and no diff exists.
		// Commit conservatively (the page is assumed changed) at the
		// cost of a sequence update. The home cannot have moved while
		// the page was elided-dirty: every re-homing path refuses an
		// elided-dirty home.
		if home != w {
			panic(fmt.Sprintf("dsm: hybrid: elided page %d/%d closed by %d but homed at %d", pk.region, pk.page, w, home))
		}
		st.dirty = false
		st.appliedSeq = s
		c.stats.ElidedDiffs.Add(1)
		pm.baseSeq = s
		hy.advance(ch, s)
		hy.invalidateStale(pk, w, s, active)
		return
	}

	wasCurrent := st.appliedSeq >= prevLatest
	if !wasCurrent {
		// The writer's copy misses interim commits: push its diff to
		// the home as HLRC would, then the writer goes invalid.
		clk := simtime.NewClock(0)
		d := hy.takeDiff(h, pk, clk)
		flush[w] += clk.Now()
		if d == nil {
			return
		}
		clk = simtime.NewClock(0)
		hy.pushDiff(h, pk, home, d, s, clk)
		flush[w] += clk.Now()
		hy.retain(ch, s, w, d)
		pm.baseSeq = s
		st.valid = false
		hy.invalidateStale(pk, home, s, active)
		return
	}

	// Current sole writer. Take the diff first: a rewrite of the same
	// values commits nothing and invalidates nobody (the parents'
	// economy — under a shifting schedule another host's still-current
	// copy must survive an unchanged close). Pages proven single-writer
	// skip this work through the elided branch above instead.
	clk := simtime.NewClock(0)
	d := hy.takeDiff(h, pk, clk)
	flush[w] += clk.Now()
	if d == nil {
		return
	}
	wire := d.WireSize()

	// Home flip: free when the writer's diff is dense (windows are
	// worthless for this page) or the window holds only the writer's
	// own diffs (nothing is lost). Otherwise the home stays put and
	// the diff is pushed to it. A home holding the page elided-dirty
	// is never flipped away from — its uncommitted words exist nowhere
	// else.
	homeSt := &c.Host(home).pages[pk.region][pk.page]
	elidedHome := home != w && homeSt.dirty && homeSt.twin == nil
	if home != w && !elidedHome && (ch.onlyWriter(w) || wire >= denseFlipWire) {
		pm.owner = w
		home = w
		hy.keepOnly(ch, w)
		c.stats.HomeMigrations.Add(1)
	}
	if home != w {
		clk := simtime.NewClock(0)
		hy.pushDiff(h, pk, home, d, s, clk)
		flush[w] += clk.Now()
	}
	hy.retain(ch, s, w, d)
	st.appliedSeq = s
	pm.baseSeq = s
	hy.invalidateStale(pk, w, s, active)
}

// closeMulti commits a close with concurrent writers: every diff is
// taken first, word-disjointness is asserted while the evidence is
// intact, each diff is pushed to (and retained at) the home, and the
// dominance rule may migrate the home with a paid page transfer.
func (hy *hybridProtocol) closeMulti(pk pageKey, pm *pageMeta, cr *classRec, writers []HostID, s int32, active []HostID, flush []simtime.Seconds) {
	c := hy.c
	ch := hy.chain(pk)
	home := pm.owner
	prevLatest := pm.latestSeq()

	elided := false
	var made []writerDiff
	for _, w := range writers {
		h := c.Host(w)
		st := &h.pages[pk.region][pk.page]
		if st.dirty && st.twin == nil {
			// An elided home caught with a concurrent writer: its words
			// are already in its own (the home's) copy; no evidence
			// diff exists.
			st.dirty = false
			c.stats.ElidedDiffs.Add(1)
			elided = true
			continue
		}
		clk := simtime.NewClock(0)
		d := hy.takeDiff(h, pk, clk)
		flush[w] += clk.Now()
		if d != nil {
			made = append(made, writerDiff{writer: w, diff: d})
		}
	}
	c.checkWordRaces(pk, made)
	if len(made) == 0 && !elided {
		return
	}
	for _, wd := range made {
		h := c.Host(wd.writer)
		clk := simtime.NewClock(0)
		hy.pushDiff(h, pk, home, wd.diff, s, clk)
		flush[wd.writer] += clk.Now()
	}
	if elided {
		// The elided writer's words are not in any diff: the window
		// cannot cover this interval.
		if c.Host(home).pages[pk.region][pk.page].appliedSeq < s {
			st := &c.Host(home).pages[pk.region][pk.page]
			st.appliedSeq = s
			st.valid = true
		}
		hy.advance(ch, s)
	} else {
		for _, wd := range made {
			hy.retain(ch, s, wd.writer, wd.diff)
		}
	}
	pm.baseSeq = s

	sole := HostID(-1)
	if !elided && len(made) == 1 {
		h := c.Host(made[0].writer)
		if h.pages[pk.region][pk.page].appliedSeq >= prevLatest {
			sole = made[0].writer
		}
	}
	if elided {
		sole = home // the elided writer is its own home and is current
	}
	for _, id := range active {
		if id == pm.owner {
			continue
		}
		h := c.Host(id)
		st := &h.pages[pk.region][pk.page]
		if id == sole && st.valid && st.appliedSeq >= prevLatest {
			st.appliedSeq = s
		} else if st.valid && st.appliedSeq < s {
			st.valid = false
		}
	}

	// Dominant-writer migration: a falsely-shared page whose last
	// domMigrateRun closes all include one writer re-homes to it, the
	// old home shipping the merged page across the actual link.
	dom := cr.domWriter
	if cr.class == classFalselyShared && cr.domRun >= domMigrateRun &&
		dom != pm.owner && c.Host(dom).active {
		clk := simtime.NewClock(0)
		data, applied := c.copyPageFrom(c.Host(dom), c.Host(pm.owner), pk, "home", clk)
		flush[dom] += clk.Now()
		dst := &c.Host(dom).pages[pk.region][pk.page]
		c.releasePage(dst.data)
		dst.data = data
		dst.appliedSeq = applied
		dst.valid = true
		pm.owner = dom
		hy.keepOnly(ch, dom)
		c.stats.HomeMigrations.Add(1)
		c.stats.HomeMigrationBytes.Add(page.Size)
	}
}

// invalidateStale invalidates every active copy other than keep's that
// misses interval s. keep (the current sole writer or home) advances
// to s instead.
func (hy *hybridProtocol) invalidateStale(pk pageKey, keep HostID, s int32, active []HostID) {
	c := hy.c
	for _, id := range active {
		h := c.Host(id)
		st := &h.pages[pk.region][pk.page]
		if id == keep {
			if st.valid {
				st.appliedSeq = s
			}
			continue
		}
		if st.valid && st.appliedSeq < s {
			st.valid = false
		}
	}
}

// flushIntervalLocked commits h's open interval on a release path. A
// dense diff from a current writer flips the home to the writer (and
// is retained there for nothing); a sparse diff is pushed to the home
// as HLRC would and retained in its window. The caller holds the
// directory write lock.
func (hy *hybridProtocol) flushIntervalLocked(h *Host, clk *simtime.Clock) int {
	c := hy.c
	c.seq++
	s := c.seq
	made := 0
	soleWriters := [1]HostID{h.id}
	for _, pk := range h.takeWritten() {
		pm := c.dir.metaLocked(pk.region, pk.page)
		cr := hy.rec(pk)
		cr.observeClose(soleWriters[:])
		cr.setClass(&c.stats, cr.classify())
		ch := hy.chain(pk)
		prevLatest := pm.latestSeq()
		st := &h.pages[pk.region][pk.page]

		if st.dirty && st.twin == nil {
			// Elided page flushed under a lock: commit conservatively.
			st.dirty = false
			st.appliedSeq = s
			c.stats.ElidedDiffs.Add(1)
			pm.baseSeq = s
			hy.advance(ch, s)
			c.releaseLog = append(c.releaseLog, relEntry{pk: pk, seq: s})
			continue
		}

		wasCurrent := st.appliedSeq >= prevLatest
		d := hy.takeDiff(h, pk, clk)
		if d == nil {
			continue
		}
		wire := d.WireSize()
		homeSt := &c.Host(pm.owner).pages[pk.region][pk.page]
		elidedHome := homeSt.dirty && homeSt.twin == nil
		if wasCurrent && pm.owner != h.id && !elidedHome && (ch.onlyWriter(h.id) || wire >= denseFlipWire) {
			pm.owner = h.id
			hy.keepOnly(ch, h.id)
			c.stats.HomeMigrations.Add(1)
		}
		hy.pushDiff(h, pk, pm.owner, d, s, clk)
		hy.retain(ch, s, h.id, d)
		if pm.owner != h.id {
			st := &h.pages[pk.region][pk.page]
			if wasCurrent {
				st.appliedSeq = s
			} else {
				st.valid = false
			}
		}
		pm.baseSeq = s
		c.releaseLog = append(c.releaseLog, relEntry{pk: pk, seq: s})
		made++
		c.checkDirtyPeerRaces(h.id, pk, d)
	}
	if made > 0 && shouldPrune(len(c.releaseLog)) {
		c.pruneReleaseLog()
	}
	return made
}

// upgradeOrInvalidate performs acquire-side consistency for one page:
// a stale clean copy goes invalid; a stale dirty copy inside the
// home's window is patched in place (diffs applied to data and twin,
// as the Tmk upgrade path does), otherwise it is merged over a fresh
// home page exactly as HLRC does.
func (hy *hybridProtocol) upgradeOrInvalidate(h *Host, pk pageKey, clk *simtime.Clock) {
	c := hy.c
	meta := c.dir.meta(pk.region, pk.page)
	latest := meta.latestSeq()
	st := &h.pages[pk.region][pk.page]
	if !st.valid || st.appliedSeq >= latest {
		return
	}
	if !st.dirty {
		st.valid = false
		return
	}
	ch := hy.chain(pk)
	if st.appliedSeq >= ch.floor {
		if win, wire := ch.window(st.appliedSeq); len(win) > 0 && wire < page.Size {
			hy.fetchWindow(h, c.Host(meta.owner), win, wire, clk)
			for _, e := range win {
				e.diff.Apply(st.data)
				if st.twin != nil {
					// Committed remote words, not this host's: patch the
					// twin too so the eventual close diff carries only
					// the host's own writes.
					e.diff.Apply(st.twin)
				}
			}
			if st.appliedSeq < latest {
				st.appliedSeq = latest
			}
			return
		}
	}
	own := page.Make(st.twin, st.data)
	c.releasePage(st.twin)
	c.releasePage(st.data)
	data, applied := c.copyPageFrom(h, c.Host(meta.owner), pk, "home", clk)
	st = &h.pages[pk.region][pk.page]
	st.twin = c.pagePool.Copy(data)
	st.data = data
	own.Apply(st.data)
	st.appliedSeq = applied
}

// runGCLocked prunes stale copies and normalises sequence numbers as
// HLRC's trivial collection does (homes are always current, so no data
// moves and no time is charged), and additionally resets the retained
// windows and the classifier: an adaptation redraws the partition map,
// so the old sharing history no longer describes the pages it tagged.
func (hy *hybridProtocol) runGCLocked(active []HostID) simtime.Seconds {
	c := hy.c
	gcSeq := c.seq
	c.stats.GCs.Add(1)
	for ri := range c.dir.pages {
		r := RegionID(ri)
		for p := range c.dir.pages[ri] {
			pm := &c.dir.pages[ri][p]
			latest := pm.latestSeq()
			for _, h := range c.hosts {
				st := &h.pages[r][p]
				c.releasePage(st.twin)
				st.twin = nil
				st.dirty = false
				switch {
				case h.id == pm.owner:
					if st.data == nil {
						panic(fmt.Sprintf("dsm: hybrid: gc: home %d of page %d/%d holds no copy", pm.owner, r, p))
					}
					st.appliedSeq = gcSeq
				case st.valid && st.appliedSeq >= latest:
					st.appliedSeq = gcSeq
				default:
					c.releasePage(st.data)
					st.data = nil
					st.valid = false
					st.appliedSeq = 0
				}
			}
			pm.clearNotices()
			pm.baseSeq = gcSeq
			ch := &hy.chains[ri][p]
			hy.retained -= ch.bytes
			ch.entries = nil
			ch.bytes = 0
			ch.floor = gcSeq
			hy.recs[ri][p].reset(&c.stats)
		}
	}
	c.releaseLog = c.releaseLog[:0]
	return 0
}
