package dsm

import (
	"sync"
)

// notice is a write notice: host w wrote the page in the interval that
// closed with sequence number seq. Notices are appended in ascending
// seq order and cleared by garbage collection.
type notice struct {
	writer HostID
	seq    int32
}

// pageMeta is the replicated per-page metadata. In TreadMarks this
// state is piggybacked on barrier and lock messages; here a single
// logically-replicated directory holds it, and the barrier/GC code
// charges the broadcast traffic that replication would cost.
type pageMeta struct {
	mode  Mode
	owner HostID
	// baseSeq is the oldest interval for which diff-based upgrades are
	// possible. A copy with appliedSeq < baseSeq cannot be patched with
	// diffs (they were garbage collected, or the page was in
	// single-writer mode where no diffs exist) and must be replaced by
	// a full fetch from the owner. Invariant: the owner's copy always
	// has appliedSeq >= baseSeq.
	baseSeq int32
	notices []notice
}

// latestSeq returns the newest write-notice sequence, or baseSeq when
// the page has no outstanding notices.
func (pm *pageMeta) latestSeq() int32 {
	if n := len(pm.notices); n > 0 {
		return pm.notices[n-1].seq
	}
	return pm.baseSeq
}

// directory is the cluster-wide page metadata table. The write lock is
// held only by interval-close code paths (barriers, lock releases,
// garbage collection, adaptation); fault handlers take the read lock.
type directory struct {
	mu    sync.RWMutex
	pages [][]pageMeta // [region][page]
}

func newDirectory() *directory { return &directory{} }

func (d *directory) addRegion(npages int, owner HostID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	metas := make([]pageMeta, npages)
	for i := range metas {
		metas[i].owner = owner
	}
	d.pages = append(d.pages, metas)
}

// meta returns a copy of the metadata for one page, taken under the
// read lock. Notices share the underlying array, which is safe because
// notice slices are append-only between GCs and GC replaces them
// wholesale.
func (d *directory) meta(r RegionID, p int) pageMeta {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pages[r][p]
}

// metaLocked returns a pointer to the live metadata; the caller must
// hold the write lock.
func (d *directory) metaLocked(r RegionID, p int) *pageMeta {
	return &d.pages[r][p]
}

// pendingNotices returns, grouped by writer, the notices of the page
// with seq in (afterSeq, horizon], excluding the given host's own
// writes. Callers use it to plan diff fetches.
func groupPending(pm *pageMeta, afterSeq int32, self HostID) map[HostID][]int32 {
	var grouped map[HostID][]int32
	for _, n := range pm.notices {
		if n.seq <= afterSeq || n.writer == self {
			continue
		}
		if grouped == nil {
			grouped = make(map[HostID][]int32)
		}
		grouped[n.writer] = append(grouped[n.writer], n.seq)
	}
	return grouped
}
