package dsm

import (
	"sort"
	"sync"
)

// noticeRec is the coalesced write-notice record for one writer of one
// page: the newest interval sequence in which the writer produced a
// diff. Fault and GC planning only ever need to know *which* writers
// have diffs newer than a horizon — the per-interval sequences are
// recovered from the writers' own diff chains — so one record per
// writer replaces the per-interval notice list that previously grew
// without bound between garbage collections and was rescanned linearly
// on every fault.
type noticeRec struct {
	writer HostID
	max    int32
}

// pageMeta is the replicated per-page metadata. In TreadMarks this
// state is piggybacked on barrier and lock messages; here a single
// logically-replicated directory holds it, and the barrier/GC code
// charges the broadcast traffic that replication would cost.
type pageMeta struct {
	mode  Mode
	owner HostID
	// baseSeq is the oldest interval for which diff-based upgrades are
	// possible. A copy with appliedSeq < baseSeq cannot be patched with
	// diffs (they were garbage collected, or the page was in
	// single-writer mode where no diffs exist) and must be replaced by
	// a full fetch from the owner. Invariant: the owner's copy always
	// has appliedSeq >= baseSeq.
	baseSeq int32
	// last is the newest write-notice sequence (zero when none are
	// outstanding; interval sequences start at one), and lastWriter the
	// writer that produced it — garbage collection hands the page to its
	// most recent writer. writers holds one coalesced record per writer
	// with outstanding notices.
	last       int32
	lastWriter HostID
	writers    []noticeRec
}

// latestSeq returns the newest write-notice sequence, or baseSeq when
// the page has no outstanding notices.
func (pm *pageMeta) latestSeq() int32 {
	if pm.last > 0 {
		return pm.last
	}
	return pm.baseSeq
}

// addNotice records that writer w produced a diff in interval s.
// Sequences only grow, so the per-writer record keeps the maximum.
func (pm *pageMeta) addNotice(w HostID, s int32) {
	pm.last = s
	pm.lastWriter = w
	for i := range pm.writers {
		if pm.writers[i].writer == w {
			pm.writers[i].max = s
			return
		}
	}
	pm.writers = append(pm.writers, noticeRec{writer: w, max: s})
}

// resetNotice replaces all outstanding notices with a single record:
// the single-writer interval close, where no diffs exist and older
// notices can never be patched in anyway.
func (pm *pageMeta) resetNotice(w HostID, s int32) {
	pm.writers = append(pm.writers[:0], noticeRec{writer: w, max: s})
	pm.last = s
	pm.lastWriter = w
}

// clearNotices discards all notice state (garbage collection,
// region installs).
func (pm *pageMeta) clearNotices() {
	pm.writers = nil
	pm.last = 0
	pm.lastWriter = 0
}

// directory is the cluster-wide page metadata table. The write lock is
// held only by interval-close code paths (barriers, lock releases,
// garbage collection, adaptation); fault handlers take the read lock.
type directory struct {
	mu    sync.RWMutex
	pages [][]pageMeta // [region][page]
}

func newDirectory() *directory { return &directory{} }

func (d *directory) addRegion(npages int, owner HostID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	metas := make([]pageMeta, npages)
	for i := range metas {
		metas[i].owner = owner
	}
	d.pages = append(d.pages, metas)
}

// meta returns a copy of the metadata for one page, taken under the
// read lock. The writers slice is shared with the live record, which is
// safe because the engine runs exactly one process at a time: interval
// closes (which mutate writer records under the write lock) never
// overlap a fault handler consuming the copy.
func (d *directory) meta(r RegionID, p int) pageMeta {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pages[r][p]
}

// metaLocked returns a pointer to the live metadata; the caller must
// hold the write lock.
func (d *directory) metaLocked(r RegionID, p int) *pageMeta {
	return &d.pages[r][p]
}

// pendingWriters returns, in ascending host order, the writers holding
// diffs of the page newer than afterSeq, excluding the given host.
// Callers fetch each writer's diffs in one message; the writer's own
// chain supplies the per-interval sequences.
func pendingWriters(pm *pageMeta, afterSeq int32, self HostID) []HostID {
	var ws []HostID
	for _, rec := range pm.writers {
		if rec.max > afterSeq && rec.writer != self {
			ws = append(ws, rec.writer)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}
