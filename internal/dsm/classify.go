package dsm

// Per-page sharing-pattern classification for the hybrid protocol.
//
// The classifier watches the events the protocol already sees — read
// faults, first writes, and interval closes — and tags each page with
// the sharing regime the history evidences. The hybrid protocol then
// specializes its mechanics per class: homes migrate to dominant
// writers, diff-vs-whole-page transfer switches on measured diff
// density, and twin/diff work is elided for pages proven single-writer.
// Classification state is heuristic only: it steers *where* data moves
// and *how* it is encoded, never *what* values a reader observes, so a
// misclassification costs traffic, not correctness.

// pageClass is the classifier's tag for one page's sharing pattern.
type pageClass uint8

const (
	// classUnknown: no interval has closed on the page yet.
	classUnknown pageClass = iota
	// classSingleWriter: exactly one host has ever written the page and
	// no other host has ever read it — a private page in shared space.
	classSingleWriter
	// classProducerConsumer: exactly one host has ever written the page
	// and at least one other host reads it.
	classProducerConsumer
	// classMigratory: several hosts write the page, but never in the
	// same interval — lock-passed records whose writer identity rotates.
	classMigratory
	// classFalselyShared: at least one interval closed with two or more
	// concurrent writers — disjoint data cohabiting one page.
	classFalselyShared
)

func (pc pageClass) String() string {
	switch pc {
	case classSingleWriter:
		return "single-writer"
	case classProducerConsumer:
		return "producer-consumer"
	case classMigratory:
		return "migratory"
	case classFalselyShared:
		return "falsely-shared"
	}
	return "unknown"
}

// classRec is the classifier's per-page history. All fields are updated
// under the engine's serialisation (fault paths) or the directory write
// lock (interval closes), so no synchronisation is needed beyond what
// the protocol already holds.
type classRec struct {
	class pageClass

	// writerA is the first writer observed (-1 none); manyWriters is set
	// once a second distinct writer appears.
	writerA     HostID
	manyWriters bool

	// readerA/readerB record the first two distinct hosts whose read
	// faults the home served (-1 none). Together with writerA they
	// answer the only question classification asks of the read history:
	// does a reader other than the sole writer exist?
	readerA, readerB HostID

	// Close-shape history: closes with one writer vs several concurrent
	// writers, and how often consecutive sole closes changed writer.
	soleCloses   int
	multiCloses  int
	alternations int
	lastSole     HostID

	// streak counts consecutive sole closes by the same writer; the
	// free home-flip rule consults it.
	streak int

	// domWriter/domRun track the writer present in every one of the
	// last domRun closes — the dominance evidence the priced migration
	// rule requires before moving a falsely-shared page's home.
	domWriter HostID
	domRun    int
}

func newClassRecs(n int) []classRec {
	recs := make([]classRec, n)
	for i := range recs {
		recs[i] = classRec{writerA: -1, readerA: -1, readerB: -1, lastSole: -1, domWriter: -1}
	}
	return recs
}

// hasRemoteReader reports whether any recorded reader differs from the
// page's sole writer.
func (cr *classRec) hasRemoteReader() bool {
	return (cr.readerA >= 0 && cr.readerA != cr.writerA) ||
		(cr.readerB >= 0 && cr.readerB != cr.writerA)
}

// observeRead records that the home served a read fault by h.
func (cr *classRec) observeRead(h HostID) {
	switch {
	case cr.readerA < 0:
		cr.readerA = h
	case cr.readerA != h && cr.readerB < 0:
		cr.readerB = h
	}
}

// observeWrite records a first-write (twin) event by h.
func (cr *classRec) observeWrite(h HostID) {
	if cr.writerA < 0 {
		cr.writerA = h
	} else if cr.writerA != h {
		cr.manyWriters = true
	}
}

// observeClose records one interval close with the given concurrent
// writers (ascending host order for multi-writer closes).
func (cr *classRec) observeClose(writers []HostID) {
	for _, w := range writers {
		cr.observeWrite(w)
	}
	if len(writers) == 1 {
		w := writers[0]
		cr.soleCloses++
		if cr.lastSole >= 0 && cr.lastSole != w {
			cr.alternations++
		}
		if cr.lastSole == w {
			cr.streak++
		} else {
			cr.streak = 1
		}
		cr.lastSole = w
	} else {
		cr.multiCloses++
		cr.streak = 0
		cr.lastSole = -1
	}
	// Dominance: extend the run if the previous dominant writer wrote
	// again this close, otherwise restart it at the lowest writer id
	// (a deterministic choice independent of close gather order).
	dom := cr.domWriter
	extend := false
	low := writers[0]
	for _, w := range writers {
		if w == dom {
			extend = true
		}
		if w < low {
			low = w
		}
	}
	if extend {
		cr.domRun++
	} else {
		cr.domWriter = low
		cr.domRun = 1
	}
}

// classify derives the class the current history evidences.
func (cr *classRec) classify() pageClass {
	switch {
	case cr.soleCloses == 0 && cr.multiCloses == 0:
		return classUnknown
	case cr.multiCloses > 0:
		return classFalselyShared
	case cr.manyWriters:
		return classMigratory
	case cr.hasRemoteReader():
		return classProducerConsumer
	default:
		return classSingleWriter
	}
}

// censusCounter returns the Stats census counter for a class, or nil
// for classUnknown (unclassified pages are not counted).
func censusCounter(s *Stats, pc pageClass) *Counter {
	switch pc {
	case classSingleWriter:
		return &s.PagesSingleWriter
	case classProducerConsumer:
		return &s.PagesProducerConsumer
	case classMigratory:
		return &s.PagesMigratory
	case classFalselyShared:
		return &s.PagesFalselyShared
	}
	return nil
}

// setClass moves the page to the class its history now evidences,
// keeping the per-class census counters balanced.
func (cr *classRec) setClass(s *Stats, pc pageClass) {
	if pc == cr.class {
		return
	}
	if c := censusCounter(s, cr.class); c != nil {
		c.Add(-1)
	}
	if c := censusCounter(s, pc); c != nil {
		c.Add(1)
	}
	cr.class = pc
}

// reset returns the record to the unclassified state (adaptation
// epochs: after a team resize the old history describes a partition
// layout that no longer exists).
func (cr *classRec) reset(s *Stats) {
	cr.setClass(s, classUnknown)
	*cr = classRec{writerA: -1, readerA: -1, readerB: -1, lastSole: -1, domWriter: -1}
}
