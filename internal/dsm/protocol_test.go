package dsm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// protoCluster builds a cluster under the given protocol with hosts
// 0..procs-1 active and one region of npages pages.
func protoCluster(t *testing.T, proto ProtocolKind, procs, npages int) (*Cluster, *Region) {
	t.Helper()
	c, err := New(Config{MaxHosts: procs + 1, Adaptive: true, Protocol: proto})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 1; i < procs; i++ {
		if _, err := c.Join(HostID(i)); err != nil {
			t.Fatalf("Join(%d): %v", i, err)
		}
	}
	r, err := c.Alloc("proto.region", npages*page.Size)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	return c, r
}

func eachProtocol(t *testing.T, f func(t *testing.T, proto ProtocolKind)) {
	for _, proto := range []ProtocolKind{Tmk, HLRC, Hybrid} {
		t.Run(proto.String(), func(t *testing.T) { f(t, proto) })
	}
}

// TestParseProtocol exercises the flag parser both ways.
func TestParseProtocol(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ProtocolKind
		ok   bool
	}{
		{"", Tmk, true}, {"tmk", Tmk, true}, {"hlrc", HLRC, true}, {"hybrid", Hybrid, true},
		{"treadmarks", Tmk, false}, {"HLRC", Tmk, false}, {"adaptive", Tmk, false},
	} {
		got, err := ParseProtocol(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseProtocol(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, k := range []ProtocolKind{Tmk, HLRC, Hybrid} {
		rt, err := ParseProtocol(k.String())
		if err != nil || rt != k {
			t.Errorf("ParseProtocol(%v.String()) = (%v, %v), want identity", k, rt, err)
		}
	}
}

// TestHLRCHomesRoundRobin asserts the round-robin home assignment
// across the hosts active at allocation time.
func TestHLRCHomesRoundRobin(t *testing.T) {
	c, r := protoCluster(t, HLRC, 3, 6)
	for p := 0; p < r.NPages; p++ {
		want := HostID(p % 3)
		if got := c.PageOwner(r.ID, p); got != want {
			t.Errorf("page %d homed at %d, want %d", p, got, want)
		}
		if !c.Host(want).HasCopy(r.ID, p) {
			t.Errorf("home %d of page %d holds no copy", want, p)
		}
	}
}

// TestProtocolBarrierPropagation: a barrier makes each writer's block
// visible to every other host under both protocols.
func TestProtocolBarrierPropagation(t *testing.T) {
	eachProtocol(t, func(t *testing.T, proto ProtocolKind) {
		c, r := protoCluster(t, proto, 3, 3)
		clks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0), simtime.NewClock(0)}
		active := []HostID{0, 1, 2}

		// Each host writes one full page.
		for i, id := range active {
			buf := bytes.Repeat([]byte{byte(i + 1)}, page.Size)
			c.Host(id).Write(r.ID, i*page.Size, buf, clks[i])
		}
		c.Barrier(active, []simtime.Seconds{clks[0].Now(), clks[1].Now(), clks[2].Now()})

		for _, id := range active {
			got := make([]byte, 3*page.Size)
			c.Host(id).Read(r.ID, 0, got, clks[id])
			for i := 0; i < 3; i++ {
				if got[i*page.Size] != byte(i+1) || got[(i+1)*page.Size-1] != byte(i+1) {
					t.Fatalf("host %d sees page %d = %d..%d, want %d",
						id, i, got[i*page.Size], got[(i+1)*page.Size-1], i+1)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestProtocolLockMigration: lock-protected updates migrate host to
// host and every update survives, under both protocols; under HLRC the
// traffic is home flushes and page pulls, never diff fetches.
func TestProtocolLockMigration(t *testing.T) {
	eachProtocol(t, func(t *testing.T, proto ProtocolKind) {
		c, r := protoCluster(t, proto, 3, 1)
		clks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0), simtime.NewClock(0)}
		active := []HostID{0, 1, 2}

		for round := 0; round < 3; round++ {
			for i, id := range active {
				h := c.Host(id)
				c.AcquireLock(7, h, clks[i])
				got := make([]byte, 8)
				h.Read(r.ID, 0, got, clks[i])
				got[0]++
				h.Write(r.ID, 0, got, clks[i])
				c.ReleaseLock(7, h, clks[i])
			}
		}
		// Read back under the lock: an unsynchronised read may
		// legitimately see a stale copy under LRC.
		c.AcquireLock(7, c.Host(0), clks[0])
		got := make([]byte, 8)
		c.Host(0).Read(r.ID, 0, got, clks[0])
		c.ReleaseLock(7, c.Host(0), clks[0])
		if got[0] != 9 {
			t.Fatalf("counter = %d after 9 lock-protected increments, want 9", got[0])
		}
		st := c.Stats().Snapshot()
		switch proto {
		case HLRC:
			if st.DiffFetches != 0 {
				t.Errorf("hlrc performed %d diff fetches, want 0", st.DiffFetches)
			}
			if st.HomeFlushes == 0 {
				t.Errorf("hlrc recorded no home flushes")
			}
		case Tmk:
			if st.HomeFlushes != 0 {
				t.Errorf("tmk recorded %d home flushes, want 0", st.HomeFlushes)
			}
		case Hybrid:
			// A lock-passed record whose writer rotates is the migratory
			// class by definition; the census must say so.
			if st.PagesMigratory == 0 {
				t.Errorf("hybrid census tagged no page migratory: %+v", st)
			}
		}
	})
}

// TestGCUnderAdaptationKeepsUnflushedWrites is the regression guard
// for adaptation-point GC: a host that leaves while holding an open
// interval (writes made since the last barrier, never flushed) must
// not lose those updates — ForceGC closes the interval before the
// collection, and the leave hands the data off. The result must be
// identical under both protocols.
func TestGCUnderAdaptationKeepsUnflushedWrites(t *testing.T) {
	results := map[ProtocolKind][]byte{}
	eachProtocol(t, func(t *testing.T, proto ProtocolKind) {
		c, r := protoCluster(t, proto, 3, 3)
		clks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0), simtime.NewClock(0)}
		active := []HostID{0, 1, 2}

		// Establish shared state at a barrier.
		for i, id := range active {
			buf := bytes.Repeat([]byte{byte(10 * (i + 1))}, page.Size)
			c.Host(id).Write(r.ID, i*page.Size, buf, clks[i])
		}
		c.Barrier(active, []simtime.Seconds{clks[0].Now(), clks[1].Now(), clks[2].Now()})

		// Host 2 writes mid-interval — dirty pages, unflushed diffs —
		// including a page it does not own, then leaves at an
		// adaptation point: GC first, then the leave.
		c.Host(2).Write(r.ID, 2*page.Size, bytes.Repeat([]byte{222}, 64), clks[2])
		c.Host(2).Write(r.ID, 0, []byte{99, 98, 97, 96, 95, 94, 93, 92}, clks[2])

		c.ForceGC(active)
		if _, err := c.NormalLeave(2, LeaveViaMaster); err != nil {
			t.Fatalf("NormalLeave: %v", err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}

		// The survivors must see every one of host 2's writes.
		got := make([]byte, 3*page.Size)
		c.Host(0).Read(r.ID, 0, got, clks[0])
		if got[2*page.Size] != 222 || got[2*page.Size+63] != 222 {
			t.Fatalf("%v: host 2's unflushed page-2 writes lost: got %d,%d",
				proto, got[2*page.Size], got[2*page.Size+63])
		}
		if got[0] != 99 || got[7] != 92 {
			t.Fatalf("%v: host 2's unflushed page-0 writes lost: got %d,%d", proto, got[0], got[7])
		}
		results[proto] = got
	})
	if !bytes.Equal(results[Tmk], results[HLRC]) || !bytes.Equal(results[Tmk], results[Hybrid]) {
		t.Fatal("protocols disagree on post-adaptation contents")
	}
}

// TestHLRCLeaveRehomesRoundRobin: after a leave, the departed host's
// pages live round-robin on the remaining team regardless of the
// configured (via-master) strategy, and a joiner faults them in.
func TestHLRCLeaveRehomesRoundRobin(t *testing.T) {
	c, r := protoCluster(t, HLRC, 3, 6)
	clk := simtime.NewClock(0)
	active := []HostID{0, 1, 2}

	c.Host(0).Write(r.ID, 0, bytes.Repeat([]byte{1}, 6*page.Size), clk)
	c.Barrier(active, []simtime.Seconds{clk.Now(), clk.Now(), clk.Now()})

	c.ForceGC(active)
	if _, err := c.NormalLeave(1, LeaveViaMaster); err != nil {
		t.Fatalf("NormalLeave: %v", err)
	}
	for p := 0; p < r.NPages; p++ {
		owner := c.PageOwner(r.ID, p)
		if owner == 1 {
			t.Errorf("page %d still homed at the departed host", p)
		}
		if !c.Host(owner).HasCopy(r.ID, p) {
			t.Errorf("new home %d of page %d holds no copy", owner, p)
		}
	}
	// Pages 1 and 4 were homed at host 1; via-master would have homed
	// both at 0. Round-robin spreads them across {0, 2}.
	homes := map[HostID]int{}
	for _, p := range []int{1, 4} {
		homes[c.PageOwner(r.ID, p)]++
	}
	if len(homes) != 2 {
		t.Errorf("departed host's pages homed at %v, want spread across both survivors", homes)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHLRCGCIsTrivial: under HLRC a forced GC moves no bytes and
// charges no time.
func TestHLRCGCIsTrivial(t *testing.T) {
	c, r := protoCluster(t, HLRC, 3, 3)
	clks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0), simtime.NewClock(0)}
	active := []HostID{0, 1, 2}
	for i, id := range active {
		c.Host(id).Write(r.ID, i*page.Size, bytes.Repeat([]byte{7}, 128), clks[i])
	}
	c.Barrier(active, []simtime.Seconds{clks[0].Now(), clks[1].Now(), clks[2].Now()})

	before := c.Fabric().Snapshot()
	elapsed := c.ForceGC(active)
	moved := c.Fabric().Snapshot().Sub(before).TotalBytes()
	if elapsed != 0 || moved != 0 {
		t.Fatalf("hlrc GC cost %v and %d bytes, want 0 and 0", elapsed, moved)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWordRacePanicNamesRegionAndOffset asserts the satellite fix: the
// sub-word race panic names the region and the conflicting word's byte
// offset, not just the page.
func TestWordRacePanicNamesRegionAndOffset(t *testing.T) {
	eachProtocol(t, func(t *testing.T, proto ProtocolKind) {
		c, err := New(Config{MaxHosts: 2, Adaptive: true, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Join(1); err != nil {
			t.Fatal(err)
		}
		r, err := c.Alloc("conflict.region", 2*page.Size)
		if err != nil {
			t.Fatal(err)
		}
		clk0, clk1 := simtime.NewClock(0), simtime.NewClock(0)
		c.Host(0).Write(r.ID, 0, make([]byte, 2*page.Size), clk0)
		c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})

		// Conflicting sub-word writes within word 2 of page 1: bytes
		// [16,20) and [20,24) at region offset page.Size+16.
		c.Host(0).Write(r.ID, page.Size+16, []byte{1, 2, 3, 4}, clk0)
		c.Host(1).Write(r.ID, page.Size+20, []byte{5, 6, 7, 8}, clk1)

		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("conflicting sub-word writes did not panic")
			}
			msg, ok := v.(string)
			if !ok {
				t.Fatalf("panic value %T, want string", v)
			}
			wantOff := fmt.Sprintf("byte offset %d", page.Size+16)
			for _, frag := range []string{"conflict.region", wantOff, "word 2", "page 1"} {
				if !strings.Contains(msg, frag) {
					t.Errorf("panic message missing %q:\n%s", frag, msg)
				}
			}
		}()
		c.Barrier([]HostID{0, 1}, []simtime.Seconds{clk0.Now(), clk1.Now()})
	})
}
