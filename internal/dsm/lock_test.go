package dsm

import (
	"encoding/binary"
	"testing"

	"nowomp/internal/engine"
	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

func TestLockVisibility(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)

	c.AcquireLock(1, c.Host(0), clocks[0])
	putU64(c, 0, r.ID, 0, 41, clocks[0])
	c.ReleaseLock(1, c.Host(0), clocks[0])

	c.AcquireLock(1, c.Host(1), clocks[1])
	if got := getU64(c, 1, r.ID, 0, clocks[1]); got != 41 {
		t.Fatalf("read %d under lock, want 41", got)
	}
	c.ReleaseLock(1, c.Host(1), clocks[1])
}

func TestLockInvalidatesStaleCopy(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)
	// Host 1 caches the page first.
	if got := getU64(c, 1, r.ID, 0, clocks[1]); got != 0 {
		t.Fatalf("initial read = %d", got)
	}
	// Host 0 updates under a lock.
	c.AcquireLock(7, c.Host(0), clocks[0])
	putU64(c, 0, r.ID, 0, 99, clocks[0])
	c.ReleaseLock(7, c.Host(0), clocks[0])
	// Host 1 must see the new value after its own acquire.
	c.AcquireLock(7, c.Host(1), clocks[1])
	if got := getU64(c, 1, r.ID, 0, clocks[1]); got != 99 {
		t.Fatalf("stale read %d after acquire, want 99", got)
	}
	c.ReleaseLock(7, c.Host(1), clocks[1])
}

func TestLockUpgradesDirtyPage(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)
	// Host 1 dirties word 1 outside the lock (disjoint from host 0's
	// word 0: race-free).
	putU64(c, 1, r.ID, 8, 7, clocks[1])
	// Host 0 writes word 0 under the lock.
	c.AcquireLock(3, c.Host(0), clocks[0])
	putU64(c, 0, r.ID, 0, 5, clocks[0])
	c.ReleaseLock(3, c.Host(0), clocks[0])
	// Host 1 acquires: its dirty page must be patched in place, keeping
	// its own write.
	c.AcquireLock(3, c.Host(1), clocks[1])
	if got := getU64(c, 1, r.ID, 0, clocks[1]); got != 5 {
		t.Fatalf("word 0 = %d, want 5 (patched in)", got)
	}
	if got := getU64(c, 1, r.ID, 8, clocks[1]); got != 7 {
		t.Fatalf("word 1 = %d, want 7 (own dirty write preserved)", got)
	}
	c.ReleaseLock(3, c.Host(1), clocks[1])
}

func TestLockMutualExclusion(t *testing.T) {
	c, _ := newTestCluster(t, 4, 4)
	r, _ := c.Alloc("a", page.Size)
	const perHost = 50
	e := engine.New()
	c.BeginPhase(e)
	for h := 0; h < 4; h++ {
		h := h
		clk := simtime.NewClock(0)
		host := c.Host(HostID(h))
		e.Go("incrementer", h, clk, func(*engine.Proc) {
			for i := 0; i < perHost; i++ {
				c.AcquireLock(0, host, clk)
				var b [8]byte
				host.Read(r.ID, 0, b[:], clk)
				v := binary.LittleEndian.Uint64(b[:])
				binary.LittleEndian.PutUint64(b[:], v+1)
				host.Write(r.ID, 0, b[:], clk)
				c.ReleaseLock(0, host, clk)
			}
		})
	}
	e.Run()
	c.EndPhase()
	clk := simtime.NewClock(0)
	c.AcquireLock(0, c.Host(0), clk)
	got := getU64(c, 0, r.ID, 0, clk)
	c.ReleaseLock(0, c.Host(0), clk)
	if got != 4*perHost {
		t.Fatalf("counter = %d, want %d", got, 4*perHost)
	}
	if n := c.Stats().LockAcquires.Load(); n != 4*perHost+1 {
		t.Fatalf("LockAcquires = %d, want %d", n, 4*perHost+1)
	}
}

// TestUpgradeInPlaceKeepsDiffsOwnWrites pins the twin-patching rule of
// the dirty-upgrade path: when an acquire patches a committed remote
// diff into a page the host holds dirty, the host's own next diff must
// contain only its own writes. Before the fix the twin was left stale,
// so the next flush re-broadcast the remote word as this host's — and
// the word-race check panicked on a race-free program as soon as a
// third host was dirty on that word again.
func TestUpgradeInPlaceKeepsDiffsOwnWrites(t *testing.T) {
	c, _ := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)
	e := engine.New()
	c.BeginPhase(e)
	defer c.EndPhase()

	clk0 := simtime.NewClock(1.0)
	clk1 := simtime.NewClock(0)
	e.Go("h0", 0, clk0, func(*engine.Proc) {
		// Commit word 0 under the lock, then dirty it again in a new
		// open interval: the open write is what the race check compares
		// host 1's later flush against.
		c.AcquireLock(3, c.Host(0), clk0)
		putU64(c, 0, r.ID, 0, 5, clk0)
		c.ReleaseLock(3, c.Host(0), clk0)
		putU64(c, 0, r.ID, 0, 6, clk0)
	})
	e.Go("h1", 1, clk1, func(p *engine.Proc) {
		// Cache and dirty word 1 before host 0's release, wait out the
		// release, then acquire: the upgrade patches host 0's committed
		// word-0 diff into the dirty page. The release's diff must
		// cover word 1 only — overlapping host 0's open word-0 write
		// would panic the race check.
		putU64(c, 1, r.ID, 8, 7, clk1)
		p.Park("sit out host 0's lock section", func() (simtime.Seconds, bool) { return 5.0, true })
		clk1.AdvanceTo(5.0)
		c.AcquireLock(3, c.Host(1), clk1)
		putU64(c, 1, r.ID, 8, 8, clk1)
		c.ReleaseLock(3, c.Host(1), clk1)
		if got := getU64(c, 1, r.ID, 0, clk1); got != 5 {
			t.Errorf("host 1 word 0 = %d, want 5 (patched in)", got)
		}
	})
	e.Run()
}

func TestLockCostCharged(t *testing.T) {
	c, clocks := newTestCluster(t, 3, 3)
	c.Alloc("a", page.Size)
	m := c.Model()

	// First acquire: uncontended at the manager.
	c.AcquireLock(9, c.Host(1), clocks[1])
	if d := clocks[1].Now(); d < m.LockBase || d > m.LockBase+simtime.Micros(1) {
		t.Fatalf("uncontended acquire cost %v, want about %v", d, m.LockBase)
	}
	c.ReleaseLock(9, c.Host(1), clocks[1])

	// Second acquire by a third host: forwarded from holder 1.
	t0 := clocks[2].Now()
	c.AcquireLock(9, c.Host(2), clocks[2])
	d := clocks[2].Now() - t0
	if d < m.LockBase+m.LockForward {
		t.Fatalf("forwarded acquire cost %v, want >= %v", d, m.LockBase+m.LockForward)
	}
	c.ReleaseLock(9, c.Host(2), clocks[2])
}

func TestLocksThenBarrierConsistent(t *testing.T) {
	c, clocks := newTestCluster(t, 3, 3)
	r, _ := c.Alloc("a", page.Size)
	// Everyone caches the page.
	for h := 0; h < 3; h++ {
		getU64(c, HostID(h), r.ID, 0, clocks[h])
	}
	// Host 2 updates under a lock; hosts 0 and 1 do not acquire.
	c.AcquireLock(4, c.Host(2), clocks[2])
	putU64(c, 2, r.ID, 0, 123, clocks[2])
	c.ReleaseLock(4, c.Host(2), clocks[2])
	// The barrier must invalidate the stale copies even though hosts 0
	// and 1 never acquired the lock.
	barrier(c, clocks)
	for h := 0; h < 2; h++ {
		if got := getU64(c, HostID(h), r.ID, 0, clocks[h]); got != 123 {
			t.Fatalf("host %d read %d after barrier, want 123", h, got)
		}
	}
}
