package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// LeaveStrategy selects how the pages exclusively owned by a leaving
// process are handed off at a normal leave.
type LeaveStrategy int

const (
	// LeaveViaMaster is the paper's algorithm (section 4.2): the master
	// fetches every page owned by the leaver and announces itself the
	// new owner. Section 7 notes this transfer via the master is a
	// bottleneck.
	LeaveViaMaster LeaveStrategy = iota
	// LeaveDirectHandoff is the improvement the paper leaves as future
	// work: the leaver's pages are handed to the remaining hosts round-
	// robin, spreading the transfer across links.
	LeaveDirectHandoff
)

func (s LeaveStrategy) String() string {
	if s == LeaveViaMaster {
		return "via-master"
	}
	return "direct-handoff"
}

// TransferReport describes the state movement caused by an adaptation
// operation.
type TransferReport struct {
	PagesMoved int
	BytesMoved int64
	Elapsed    simtime.Seconds
}

// NormalLeave executes the section 4.2 state transfer for a normal
// leave. The caller must have run ForceGC first (the adaptation-point
// sequence is: all processes parked, GC, leave/join processing, fork).
// Afterwards the leaver is inactive and holds no pages.
func (c *Cluster) NormalLeave(leaver HostID, strategy LeaveStrategy) (TransferReport, error) {
	h := c.Host(leaver)
	if !h.active {
		return TransferReport{}, fmt.Errorf("dsm: normal leave of inactive host %d", leaver)
	}
	if leaver == c.Master().id {
		// The paper's current system shares this limitation: the master
		// can migrate, but cannot perform a normal leave.
		return TransferReport{}, fmt.Errorf("dsm: master cannot perform a normal leave")
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	// The protocol may constrain the handoff: HLRC always re-homes the
	// leaver's pages round-robin across the remaining hosts, the same
	// policy the task runtime applies to a departing worker's deque.
	strategy = c.proto.leaveStrategy(strategy)

	// Choose destinations for the leaver's pages.
	var remaining []HostID
	for _, id := range c.ActiveHosts() {
		if id != leaver {
			remaining = append(remaining, id)
		}
	}
	var rep TransferReport
	perDest := make(map[HostID]simtime.Seconds)
	rr := 0
	for ri := range c.dir.pages {
		r := RegionID(ri)
		for p := range c.dir.pages[ri] {
			pm := &c.dir.pages[ri][p]
			if pm.owner != leaver {
				continue
			}
			dest := c.Master().id
			if strategy == LeaveDirectHandoff {
				dest = remaining[rr%len(remaining)]
				rr++
			}
			moved := c.handoffPage(r, p, pm, leaver, dest)
			if moved {
				rep.PagesMoved++
				rep.BytesMoved += page.Size
				perDest[dest] += c.costs.PageFetch(c.Host(dest).machine, h.machine, page.Size)
			}
			pm.owner = dest
		}
	}
	// Transfers to distinct destinations proceed in parallel on the
	// switched network; the adaptation waits for the slowest link.
	// With the via-master strategy there is one destination, so the
	// transfer is fully serial — the paper's bottleneck.
	for _, t := range perDest {
		if t > rep.Elapsed {
			rep.Elapsed = t
		}
	}

	// Ownership-change broadcast.
	master := c.Master()
	ann := msgHeader + 4*rep.PagesMoved
	for _, id := range remaining {
		if id == master.id {
			continue
		}
		c.fabric.Record(master.machine, c.Host(id).machine, ann)
	}

	c.deactivateLocked(h)
	return rep, nil
}

// handoffPage moves the single valid copy of a page from the leaver to
// dest unless dest already holds a current copy. Post-GC invariant:
// the owner's copy is valid and current, all other copies are either
// valid-and-current or absent.
func (c *Cluster) handoffPage(r RegionID, p int, pm *pageMeta, leaver, dest HostID) bool {
	d := c.Host(dest)
	dst := &d.pages[r][p]
	if dst.valid {
		return false // destination already current; just flip ownership
	}

	src := c.Host(leaver)
	sst := &src.pages[r][p]
	if sst.data == nil {
		panic(fmt.Sprintf("dsm: leave: owner %d of page %d/%d holds no copy", leaver, r, p))
	}

	c.fabric.Record(d.machine, src.machine, msgHeader)
	c.fabric.Record(src.machine, d.machine, page.Size+msgHeader)
	c.stats.PageFetches.Add(1)
	c.stats.PageBytes.Add(page.Size)

	c.releasePage(dst.data)
	dst.data = c.pagePool.Copy(sst.data)
	dst.appliedSeq = sst.appliedSeq
	dst.valid = true
	return true
}

func (c *Cluster) deactivateLocked(h *Host) {
	h.active = false
	for ri := range h.pages {
		for p := range h.pages[ri] {
			st := &h.pages[ri][p]
			c.releasePage(st.data)
			c.releasePage(st.twin)
			*st = pageState{}
		}
	}
	h.written = nil
	h.diffs = make(map[pageKey][]seqDiff)
	h.diffBytes = 0
}

// Join activates a host as a fresh process and sends it the page-
// location map (section 4.1: after GC it suffices to tell the joiner
// where an up-to-date copy of every page lives and which protocol each
// page uses). Data moves later through ordinary page faults.
func (c *Cluster) Join(id HostID) (TransferReport, error) {
	h := c.Host(id)
	if h.active {
		return TransferReport{}, fmt.Errorf("dsm: host %d is already active", id)
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	for ri := range h.pages {
		for p := range h.pages[ri] {
			h.pages[ri][p] = pageState{}
		}
	}
	h.written = nil
	h.diffs = make(map[pageKey][]seqDiff)
	h.diffBytes = 0
	h.syncSeq = c.seq
	h.active = true

	totalPages := 0
	for _, r := range c.regions {
		totalPages += r.NPages
	}
	master := c.Master()
	bytes := msgHeader + c.model.PageMapEntryBytes*totalPages
	c.fabric.Record(master.machine, h.machine, bytes)
	c.fabric.Record(h.machine, master.machine, msgHeader)
	return TransferReport{
		BytesMoved: int64(bytes),
		Elapsed:    c.costs.JoinMap(master.machine, h.machine, bytes),
	}, nil
}

// CollectToMaster fetches a current copy of every shared page the
// master does not already hold, the data-gathering step of a
// checkpoint (section 4.3). Ownership does not change.
func (c *Cluster) CollectToMaster() TransferReport {
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	master := c.Master()
	var rep TransferReport
	for ri := range c.dir.pages {
		r := RegionID(ri)
		for p := range c.dir.pages[ri] {
			pm := &c.dir.pages[ri][p]
			current := master.pages[r][p].valid
			if current || pm.owner == master.id {
				continue
			}
			owner := pm.owner
			if c.handoffPage(r, p, pm, owner, master.id) {
				rep.PagesMoved++
				rep.BytesMoved += page.Size
				rep.Elapsed += c.costs.PageFetch(master.machine, c.Host(owner).machine, page.Size)
			}
		}
	}
	return rep
}

// OwnedPages counts the pages whose directory owner is the given host:
// the state that must move if that host leaves.
func (c *Cluster) OwnedPages(id HostID) int {
	c.dir.mu.RLock()
	defer c.dir.mu.RUnlock()
	n := 0
	for ri := range c.dir.pages {
		for p := range c.dir.pages[ri] {
			if c.dir.pages[ri][p].owner == id {
				n++
			}
		}
	}
	return n
}

// PageOwner returns the directory owner of a page (measurement hook).
func (c *Cluster) PageOwner(r RegionID, p int) HostID {
	c.dir.mu.RLock()
	defer c.dir.mu.RUnlock()
	return c.dir.pages[r][p].owner
}

// PageMode returns the sharing mode of a page (measurement hook).
func (c *Cluster) PageMode(r RegionID, p int) Mode {
	c.dir.mu.RLock()
	defer c.dir.mu.RUnlock()
	return c.dir.pages[r][p].mode
}

// SetMachine rebinds a host to a machine, modelling the co-location of
// a migrated process with its target's process after an urgent leave.
func (c *Cluster) SetMachine(id HostID, m int) {
	if m < 0 || m >= c.fabric.Machines() {
		panic(fmt.Sprintf("dsm: machine %d out of range", m))
	}
	h := c.Host(id)
	h.machine = simnet.MachineID(m)
}
