package dsm

import (
	"fmt"
	"sort"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// tmkProtocol is the TreadMarks homeless lazy-release-consistency
// protocol, extracted unchanged from the original implementation:
// writers retain their diffs, readers fetch a base copy from the
// page's designated owner and patch it with diffs fetched writer by
// writer, and garbage collection consolidates the accumulated diffs at
// per-page owners. It is the default protocol and is bit-exact versus
// the pre-refactor system (asserted by the golden kernel matrix in
// internal/bench).
type tmkProtocol struct {
	c *Cluster
}

// Kind identifies the protocol.
func (t *tmkProtocol) Kind() ProtocolKind { return Tmk }

// initRegion materialises all pages zero-filled and current at the
// master, which the directory already names as every page's owner.
func (t *tmkProtocol) initRegion(r *Region) {
	m := t.c.Master()
	for p := 0; p < r.NPages; p++ {
		st := &m.pages[r.ID][p]
		st.data = t.c.newPage()
		st.valid = true
	}
}

// leaveStrategy: Tmk supports both handoffs as configured.
func (t *tmkProtocol) leaveStrategy(s LeaveStrategy) LeaveStrategy { return s }

// elideTwin: Tmk always twins on first write.
func (t *tmkProtocol) elideTwin(*Host, pageKey) bool { return false }

// storageLocked sums diff storage across hosts; the directory write
// lock serialises it against interval closes.
func (t *tmkProtocol) storageLocked() int {
	n := 0
	for _, h := range t.c.hosts {
		n += h.diffBytes
	}
	return n
}

// fault implements the read-fault protocol: fetch a base copy from the
// owner if the local copy is missing or too old for diff patching, then
// fetch and apply the missing diffs writer by writer.
func (t *tmkProtocol) fault(h *Host, pk pageKey, clk *simtime.Clock) {
	if activeMutation.Load() == mutationFaultPanic {
		panic(fmt.Sprintf("dsm: injected fault-panic mutation (host %d, page %d/%d)", h.id, pk.region, pk.page))
	}
	c := t.c
	r, p := pk.region, pk.page
	meta := c.dir.meta(r, p)
	target := meta.latestSeq()

	st := &h.pages[r][p]
	needBase := st.data == nil || st.appliedSeq < meta.baseSeq
	applied := st.appliedSeq

	if needBase {
		applied = t.fetchBase(h, pk, meta.owner, clk)
	}

	// Gather missing diffs: own diffs locally (relevant after a base
	// refetch replaced a copy that contained our writes), remote diffs
	// one message per writer. pendingWriters returns ascending host
	// order, the same deterministic order the grouped scan produced.
	var pending []seqDiff
	pending = append(pending, diffWindow(h.localDiffs(pk), applied, target)...)
	for _, w := range pendingWriters(&meta, applied, h.id) {
		pending = append(pending, t.fetchDiffs(h, pk, w, applied, target, clk)...)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })
	if activeMutation.Load() == mutationDropNewestDiff && len(pending) > 0 {
		// Injected defect: silently skip the newest diff. appliedSeq
		// still advances to target, so the staleness is never repaired —
		// exactly the silent-wrong-result class a differential oracle
		// must catch.
		pending = pending[:len(pending)-1]
	}

	st = &h.pages[r][p]
	for _, sd := range pending {
		sd.diff.Apply(st.data)
	}
	if st.appliedSeq < target {
		st.appliedSeq = target
	}
	st.valid = true
}

// fetchBase copies the owner's page into h and returns the appliedSeq
// of the copy. The owner's copy may itself be behind on diffs; the
// caller patches the remainder.
func (t *tmkProtocol) fetchBase(h *Host, pk pageKey, owner HostID, clk *simtime.Clock) int32 {
	c := t.c
	if owner == h.id {
		// We are the designated owner: our copy is the base.
		st := &h.pages[pk.region][pk.page]
		if st.data == nil {
			panic(fmt.Sprintf("dsm: host %d owns page %v but holds no copy", h.id, pk))
		}
		applied := st.appliedSeq
		return applied
	}
	data, applied := c.copyPageFrom(h, c.Host(owner), pk, "owner", clk)

	st := &h.pages[pk.region][pk.page]
	c.releasePage(st.data)
	st.data = data
	st.appliedSeq = applied
	return applied
}

// diffWindow returns the sub-chain of an ascending diff chain with
// sequence in (after, upTo], found by binary search instead of a full
// scan — chains between GCs hold one entry per interval, and the fault
// path asks for a recent suffix.
func diffWindow(chain []seqDiff, after, upTo int32) []seqDiff {
	lo := sort.Search(len(chain), func(i int) bool { return chain[i].seq > after })
	hi := lo + sort.Search(len(chain)-lo, func(i int) bool { return chain[lo+i].seq > upTo })
	return chain[lo:hi]
}

// fetchDiffs retrieves from writer w its diffs for pk with sequence in
// (after, upTo], charging one request to clk.
func (t *tmkProtocol) fetchDiffs(h *Host, pk pageKey, w HostID, after, upTo int32, clk *simtime.Clock) []seqDiff {
	c := t.c
	src := c.Host(w)
	got := diffWindow(src.diffs[pk], after, upTo)
	wire := 0
	for _, sd := range got {
		wire += sd.diff.WireSize()
	}
	if len(got) == 0 {
		return nil
	}
	c.fabric.Record(h.machine, src.machine, msgHeader)
	c.fabric.Record(src.machine, h.machine, wire+msgHeader)
	clk.Advance(c.costs.DiffFetch(h.machine, src.machine, wire))
	c.stats.DiffFetches.Add(int64(len(got)))
	c.stats.DiffBytes.Add(int64(wire))
	return got
}

// closePage closes the interval s for one page with the given writers.
// Callers hold the directory write lock and all processes are parked.
func (t *tmkProtocol) closePage(pk pageKey, writers []HostID, s int32, active []HostID, flush []simtime.Seconds) {
	c := t.c
	pm := c.dir.metaLocked(pk.region, pk.page)

	multi := pm.mode == ModeMulti || len(writers) > 1
	if multi && pm.mode == ModeSingle {
		// Transition: diffs exist only from interval s on; older copies
		// must full-fetch from the owner, whose copy is current as of
		// the last single-writer notice.
		pm.baseSeq = pm.latestSeq()
		pm.mode = ModeMulti
	}

	var made []writerDiff
	if multi {
		for _, w := range writers {
			h := c.Host(w)
			st := &h.pages[pk.region][pk.page]
			d := page.Make(st.twin, st.data)
			c.releasePage(st.twin)
			st.twin = nil
			st.dirty = false
			if d != nil {
				h.diffs[pk] = append(h.diffs[pk], seqDiff{seq: s, diff: d})
				h.diffBytes += d.WireSize()
				c.stats.DiffsCreated.Add(1)
				pm.addNotice(w, s)
				flush[w] += c.costs.DiffCreate(h.machine, page.Size)
				made = append(made, writerDiff{writer: w, diff: d})
				if shouldPrune(len(h.diffs[pk])) {
					c.pruneDiffChain(h, pk)
				}
			}
		}
		c.checkWordRaces(pk, made)
	} else {
		w := writers[0]
		h := c.Host(w)
		st := &h.pages[pk.region][pk.page]
		c.releasePage(st.twin)
		st.twin = nil
		st.dirty = false
		st.appliedSeq = s
		pm.owner = w
		pm.baseSeq = s
		// Single-writer pages keep only the latest notice: no diffs
		// exist, so older notices can never be patched in anyway.
		pm.resetNotice(w, s)
	}

	// Invalidate stale copies. A sole writer that produced a notice is
	// current; concurrent writers each lack the others' words and go
	// invalid too (their own diffs are local, so revalidation is a
	// diff exchange away). In the multi path "produced a notice" means
	// a diff was made this close — membership in made.
	noticed := func(id HostID) bool {
		for _, wd := range made {
			if wd.writer == id {
				return true
			}
		}
		return false
	}
	soleCurrent := HostID(-1)
	if len(writers) == 1 && (!multi || noticed(writers[0])) {
		soleCurrent = writers[0]
	}
	for _, id := range active {
		if id == soleCurrent {
			continue
		}
		h := c.Host(id)
		st := &h.pages[pk.region][pk.page]
		if multi {
			if st.valid && (st.appliedSeq < pm.latestSeq() || noticed(id)) {
				st.valid = false
			}
		} else if st.valid && id != writers[0] {
			st.valid = false
		}
	}
	if soleCurrent >= 0 && multi {
		h := c.Host(soleCurrent)
		h.pages[pk.region][pk.page].appliedSeq = s
	}
}

// flushIntervalLocked closes h's open interval as a lock release does:
// pages written since the interval opened become diffs with fresh write
// notices, and affected pages go on the release log so later acquirers
// (and the next barrier) honour the writes. Pages flushed this way are
// diff-managed even if they previously had a single writer: without the
// barrier's global conflict detection, full-page ownership transfers
// would be unsound under concurrent readers. Diff-creation time is
// charged to clk. Returns the number of diffs created. The caller holds
// the directory write lock.
func (t *tmkProtocol) flushIntervalLocked(h *Host, clk *simtime.Clock) int {
	c := t.c
	c.seq++
	s := c.seq
	made := 0
	for _, pk := range h.takeWritten() {
		pm := c.dir.metaLocked(pk.region, pk.page)
		prevLatest := pm.latestSeq()
		if pm.mode == ModeSingle {
			pm.baseSeq = prevLatest
			pm.mode = ModeMulti
		}
		st := &h.pages[pk.region][pk.page]
		d := page.Make(st.twin, st.data)
		c.releasePage(st.twin)
		st.twin = nil
		st.dirty = false
		if d != nil {
			h.diffs[pk] = append(h.diffs[pk], seqDiff{seq: s, diff: d})
			h.diffBytes += d.WireSize()
			c.stats.DiffsCreated.Add(1)
			pm.addNotice(h.id, s)
			c.releaseLog = append(c.releaseLog, relEntry{pk: pk, seq: s})
			if st.appliedSeq >= prevLatest {
				st.appliedSeq = s // current: old value plus own writes
			} else {
				st.valid = false // concurrent writers under other locks
			}
			clk.Advance(c.costs.DiffCreate(h.machine, page.Size))
			made++
			if shouldPrune(len(h.diffs[pk])) {
				c.pruneDiffChain(h, pk)
			}
		}
		if d != nil {
			c.checkDirtyPeerRaces(h.id, pk, d)
		}
	}
	if made > 0 && shouldPrune(len(c.releaseLog)) {
		c.pruneReleaseLog()
	}
	return made
}

// upgradeOrInvalidate performs acquire-side consistency for one page:
// a stale clean copy is invalidated, a stale dirty copy is upgraded in
// place by fetching and applying the missing diffs (the words are
// disjoint in a race-free program).
func (t *tmkProtocol) upgradeOrInvalidate(h *Host, pk pageKey, clk *simtime.Clock) {
	c := t.c
	meta := c.dir.meta(pk.region, pk.page)
	latest := meta.latestSeq()
	st := &h.pages[pk.region][pk.page]
	if !st.valid || st.appliedSeq >= latest {
		return
	}
	if !st.dirty {
		st.valid = false
		return
	}
	applied := st.appliedSeq

	// Dirty page: patch in place.
	var pending []seqDiff
	for _, w := range pendingWriters(&meta, applied, h.id) {
		pending = append(pending, t.fetchDiffs(h, pk, w, applied, latest, clk)...)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })
	st = &h.pages[pk.region][pk.page]
	for _, sd := range pending {
		sd.diff.Apply(st.data)
		if st.twin != nil {
			// The patched words are committed remote writes, not this
			// host's modifications: apply them to the twin too, so the
			// diff created when this interval closes contains only the
			// host's own writes. Leaving the twin stale re-broadcast
			// other writers' words as this host's and tripped the
			// word-race check on a race-free program whenever a dirty
			// page was upgraded mid-interval (a latent pre-engine bug,
			// exposed once the engine made the interleaving that hits
			// this path deterministic).
			sd.diff.Apply(st.twin)
		}
	}
	if st.appliedSeq < latest {
		st.appliedSeq = latest
	}
}

// runGCLocked implements the TreadMarks garbage collection: every
// page's outstanding diffs are pulled to its designated owner, all
// twins, diffs and write notices are discarded, and stale copies are
// freed. Afterwards each page is either valid and up to date, or
// invalid with the owner field pointing at a host with a valid copy —
// the property that makes adaptation cheap. The caller holds the
// directory write lock; the returned duration is the barrier-observed
// GC cost (coordination plus the slowest host's diff pulls).
func (t *tmkProtocol) runGCLocked(active []HostID) simtime.Seconds {
	c := t.c
	gcSeq := c.seq
	c.stats.GCs.Add(1)

	pull := make(map[HostID]simtime.Seconds)
	totalPages := 0
	for ri := range c.dir.pages {
		r := RegionID(ri)
		metas := c.dir.pages[ri]
		totalPages += len(metas)
		for p := range metas {
			pm := &metas[p]
			if len(pm.writers) > 0 || pm.mode == ModeMulti {
				t.gcPage(r, p, pm, pull)
			}
			latest := pm.latestSeq()
			// Prune copies on every host, including hosts that have
			// left: valid-and-current copies survive, everything else
			// is freed.
			for _, h := range c.hosts {
				st := &h.pages[r][p]
				c.releasePage(st.twin)
				st.twin = nil
				st.dirty = false
				switch {
				case h.id == pm.owner:
					st.appliedSeq = gcSeq
				case st.valid && st.appliedSeq >= latest:
					st.appliedSeq = gcSeq
				default:
					c.releasePage(st.data)
					st.data = nil
					st.valid = false
					st.appliedSeq = 0
				}
			}
			pm.clearNotices()
			pm.mode = ModeSingle
			pm.baseSeq = gcSeq
		}
	}

	// All consistency information is gone.
	for _, h := range c.hosts {
		h.diffs = make(map[pageKey][]seqDiff)
		h.diffBytes = 0
	}
	c.releaseLog = c.releaseLog[:0]

	// Owner-table broadcast: the master tells everyone where the valid
	// copies live.
	master := c.Master()
	meta := msgHeader + 2*totalPages
	for _, id := range active {
		if id == master.id {
			continue
		}
		h := c.Host(id)
		c.fabric.Record(h.machine, master.machine, msgHeader)
		c.fabric.Record(master.machine, h.machine, meta)
	}

	elapsed := c.model.GC(totalPages, len(active))
	var maxPull simtime.Seconds
	for _, t := range pull {
		if t > maxPull {
			maxPull = t
		}
	}
	return elapsed + maxPull
}

// gcPage designates the page's owner (its last writer) and brings the
// owner's copy fully current by pulling outstanding diffs. Pull time
// accumulates per owner; pulls to distinct owners proceed in parallel
// on the switched network.
func (t *tmkProtocol) gcPage(r RegionID, p int, pm *pageMeta, pull map[HostID]simtime.Seconds) {
	c := t.c
	if len(pm.writers) > 0 {
		pm.owner = pm.lastWriter
	}
	owner := c.Host(pm.owner)
	latest := pm.latestSeq()

	st := &owner.pages[r][p]
	if st.data == nil {
		panic(fmt.Sprintf("dsm: gc: owner %d of page %d/%d holds no copy", pm.owner, r, p))
	}
	applied := st.appliedSeq
	current := st.valid && applied >= latest
	if current {
		return
	}

	pk := pageKey{r, p}
	var pending []seqDiff
	pending = append(pending, diffWindow(owner.localDiffs(pk), applied, c.seq)...)
	for _, w := range pendingWriters(pm, applied, pm.owner) {
		src := c.Host(w)
		got := diffWindow(src.diffs[pk], applied, latest)
		wire := 0
		for _, sd := range got {
			pending = append(pending, sd)
			wire += sd.diff.WireSize()
		}
		if wire == 0 {
			continue
		}
		c.fabric.Record(owner.machine, src.machine, msgHeader)
		c.fabric.Record(src.machine, owner.machine, wire+msgHeader)
		pull[pm.owner] += c.costs.DiffFetch(owner.machine, src.machine, wire)
		c.stats.DiffFetches.Add(1)
		c.stats.DiffBytes.Add(int64(wire))
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })

	st = &owner.pages[r][p]
	for _, sd := range pending {
		sd.diff.Apply(st.data)
	}
	st.appliedSeq = latest
	st.valid = true
}
