package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// pageKey names one shared page.
type pageKey struct {
	region RegionID
	page   int
}

// seqDiff is a diff produced when the interval with the given sequence
// number closed. Diffs are immutable once created and may be shared by
// reference between hosts.
type seqDiff struct {
	seq  int32
	diff *page.Diff
}

// pageState is one host's view of one shared page.
type pageState struct {
	data  []byte // nil when the host holds no copy
	valid bool
	twin  []byte // pristine copy while dirty in the open interval
	dirty bool
	// appliedSeq is the newest interval sequence whose committed
	// modifications are reflected in data (plus the host's own
	// uncommitted writes while dirty).
	appliedSeq int32
}

// Host is one logical process address space participating in the DSM.
// Hosts map 1:1 onto machines except while a migrated process shares
// its target's machine after an urgent leave.
//
// Host state is engine-serialised: within one cluster exactly one
// process runs at a time (see internal/engine), and every cross-host
// operation — fetches, interval closes, migrations — executes on the
// running process's goroutine. Distinct clusters never share hosts,
// so the struct needs no locking; the race-detector CI job guards the
// assumption.
type Host struct {
	id      HostID
	cluster *Cluster
	machine simnet.MachineID
	active  bool

	pages [][]pageState // [region][page]
	// written lists the pages dirtied in the open interval, in first-
	// write order; interval close consumes it.
	written []pageKey
	// diffs holds the diffs this host created, keyed by page, ascending
	// in seq (Tmk protocol only: HLRC pushes diffs to the page's home
	// at interval close and retains nothing). Readers fetch from here;
	// GC clears it.
	diffs     map[pageKey][]seqDiff
	diffBytes int
	// syncSeq is the newest interval sequence this host has fully
	// honoured (set at barriers and lock acquires).
	syncSeq int32
}

func newHost(c *Cluster, id HostID, m simnet.MachineID) *Host {
	return &Host{id: id, cluster: c, machine: m, diffs: make(map[pageKey][]seqDiff)}
}

// ID returns the host id.
func (h *Host) ID() HostID { return h.id }

// Machine returns the machine this host currently runs on.
func (h *Host) Machine() simnet.MachineID { return h.machine }

// Active reports whether the host participates in the computation.
func (h *Host) Active() bool { return h.active }

func (h *Host) addRegion(npages int) {
	h.pages = append(h.pages, make([]pageState, npages))
}

// newPage and releasePage recycle page buffers through the cluster's
// single-owner freelist; all callers run serialised by the engine.
func (c *Cluster) newPage() []byte      { return c.pagePool.Zeroed() }
func (c *Cluster) releasePage(b []byte) { c.pagePool.Release(b) }

func pageCount(bytes int) int { return page.Count(bytes) }

// MsgHeader is the protocol message header size charged for requests
// and responses, exported so the layers above (fork broadcasts, task
// steal/completion messages) price their messages with the same
// constant as the DSM itself.
const MsgHeader = 32

// message header size charged for protocol requests and responses.
const msgHeader = MsgHeader

// ResidentBytes returns the bytes of shared pages this host currently
// holds a copy of: the dominant component of its migration image.
func (h *Host) ResidentBytes() int {
	n := 0
	for _, reg := range h.pages {
		for i := range reg {
			if reg[i].data != nil {
				n += page.Size
			}
		}
	}
	return n
}

// ReadSpan makes the page at off readable and returns the longest
// in-page byte span starting at off, clamped to n bytes: the
// zero-copy read path behind the shmem accessors, which decode
// elements straight out of page memory instead of staging through an
// intermediate buffer. The span aliases the host's page store and is
// valid only until the next operation on the host; callers must not
// retain it. n must be positive and off+n in range.
func (h *Host) ReadSpan(r RegionID, off, n int, clk *simtime.Clock) []byte {
	h.checkRange(r, off, n)
	p := off / page.Size
	po := off - p*page.Size
	if chunk := page.Size - po; chunk < n {
		n = chunk
	}
	st := &h.pages[r][p]
	if !st.valid {
		h.ensureRead(r, p, clk)
	}
	return st.data[po : po+n]
}

// WriteSpan makes the page at off writable (faulted in and twinned)
// and returns the longest in-page byte span starting at off, clamped
// to n bytes, for the caller to overwrite in place: the zero-copy
// write path behind the shmem accessors. The span holds the page's
// current contents (ensureWrite faults it in first), so a partial
// overwrite is safe. Same aliasing rules as ReadSpan.
func (h *Host) WriteSpan(r RegionID, off, n int, clk *simtime.Clock) []byte {
	h.checkRange(r, off, n)
	p := off / page.Size
	po := off - p*page.Size
	if chunk := page.Size - po; chunk < n {
		n = chunk
	}
	st := &h.pages[r][p]
	if !st.dirty || !st.valid {
		h.ensureWrite(r, p, clk)
	}
	return st.data[po : po+n]
}

// PageView is a fault-aware view of one region's page table on one
// host, the cheap repeated-random-access path behind the typed shmem
// readers: it hoists the region lookup and bounds checks out of a
// kernel's inner loop and leaves a per-access cost of one validity
// test. The page-state slice it indexes is allocated once per region
// and never reallocated, so a view stays usable for the region's
// lifetime; the usual aliasing rule applies to the returned page bytes.
type PageView struct {
	h   *Host
	r   RegionID
	st  []pageState
	clk *simtime.Clock
}

// PageView returns a fault-aware page-table view of region r for this
// host, charging fault costs to clk.
func (h *Host) PageView(r RegionID, clk *simtime.Clock) PageView {
	if int(r) < 0 || int(r) >= len(h.pages) {
		panic(fmt.Sprintf("dsm: host %d: unknown region %d", h.id, r))
	}
	return PageView{h: h, r: r, st: h.pages[r], clk: clk}
}

// ReadPage returns page p's bytes for reading, faulting it in if the
// local copy is missing or invalid. The valid-page path is small
// enough to inline into callers' loops; the fault path is outlined.
func (v *PageView) ReadPage(p int) []byte {
	st := &v.st[p]
	if st.valid {
		return st.data
	}
	return v.readPageSlow(p)
}

//go:noinline
func (v *PageView) readPageSlow(p int) []byte {
	v.h.ensureRead(v.r, p, v.clk)
	return v.st[p].data
}

// Read copies len(dst) bytes starting at off in region r into dst,
// faulting pages in as needed and charging fault costs to clk.
func (h *Host) Read(r RegionID, off int, dst []byte, clk *simtime.Clock) {
	h.checkRange(r, off, len(dst))
	// Fast path: a one-page access to an already-valid page, the
	// common case for element-granularity kernel loops.
	p := off / page.Size
	if po := off - p*page.Size; len(dst) != 0 && po+len(dst) <= page.Size {
		if st := &h.pages[r][p]; st.valid {
			copy(dst, st.data[po:po+len(dst)])
			return
		}
	}
	for n := 0; n < len(dst); {
		p := (off + n) / page.Size
		po := (off + n) % page.Size
		chunk := page.Size - po
		if rem := len(dst) - n; chunk > rem {
			chunk = rem
		}
		h.ensureRead(r, p, clk)
		copy(dst[n:n+chunk], h.pages[r][p].data[po:po+chunk])
		n += chunk
	}
}

// Write copies src into region r at off, faulting and twinning pages as
// needed and charging fault costs to clk.
func (h *Host) Write(r RegionID, off int, src []byte, clk *simtime.Clock) {
	h.checkRange(r, off, len(src))
	// Fast path: a one-page write to a page already twinned in this
	// interval.
	p := off / page.Size
	if po := off - p*page.Size; len(src) != 0 && po+len(src) <= page.Size {
		if st := &h.pages[r][p]; st.dirty && st.valid {
			copy(st.data[po:po+len(src)], src)
			return
		}
	}
	for n := 0; n < len(src); {
		p := (off + n) / page.Size
		po := (off + n) % page.Size
		chunk := page.Size - po
		if rem := len(src) - n; chunk > rem {
			chunk = rem
		}
		h.ensureWrite(r, p, clk)
		copy(h.pages[r][p].data[po:po+chunk], src[n:n+chunk])
		n += chunk
	}
}

func (h *Host) checkRange(r RegionID, off, n int) {
	if int(r) < 0 || int(r) >= len(h.cluster.regions) {
		panic(fmt.Sprintf("dsm: host %d: unknown region %d", h.id, r))
	}
	if off < 0 || n < 0 || off+n > h.cluster.regions[r].Bytes {
		panic(fmt.Sprintf("dsm: host %d: access [%d,%d) outside region %q of %d bytes",
			h.id, off, off+n, h.cluster.regions[r].Name, h.cluster.regions[r].Bytes))
	}
}

// ensureRead makes the page readable on h, invoking the protocol's
// read-fault handling if the local copy is missing or invalid.
func (h *Host) ensureRead(r RegionID, p int, clk *simtime.Clock) {
	valid := h.pages[r][p].valid
	if valid {
		return
	}
	h.cluster.stats.ReadFaults.Add(1)
	h.cluster.proto.fault(h, pageKey{r, p}, clk)
}

// ensureWrite makes the page writable on h: readable first (TreadMarks
// fetches on a write fault too), then twinned if this is the first
// write of the open interval. Twinning is protocol-independent: Tmk
// keeps the twin to diff lazily, HLRC to diff eagerly at the flush.
func (h *Host) ensureWrite(r RegionID, p int, clk *simtime.Clock) {
	h.ensureRead(r, p, clk)
	st := &h.pages[r][p]
	if !st.dirty {
		if h.cluster.proto.elideTwin(h, pageKey{r, p}) {
			// Single-writer elision (hybrid only): the page goes dirty
			// with no twin — the protocol commits it without a diff —
			// and the twin-copy cost vanishes.
			st.dirty = true
			h.written = append(h.written, pageKey{r, p})
			h.cluster.stats.WriteFaults.Add(1)
			return
		}
		st.twin = h.cluster.pagePool.Copy(st.data)
		st.dirty = true
		h.written = append(h.written, pageKey{r, p})
		clk.Advance(h.cluster.costs.Twin(h.machine))
		h.cluster.stats.TwinsCreated.Add(1)
		h.cluster.stats.WriteFaults.Add(1)
	}
}

func (h *Host) localDiffs(pk pageKey) []seqDiff {
	return h.diffs[pk]
}

// takeWritten consumes and returns the open interval's dirty-page list.
// Called by interval-close code with the directory write lock held and
// the host's process parked.
func (h *Host) takeWritten() []pageKey {
	w := h.written
	h.written = nil
	return w
}

// Valid reports whether the host currently holds a valid copy of the
// page (test and measurement helper).
func (h *Host) Valid(r RegionID, p int) bool {
	return h.pages[r][p].valid
}

// HasCopy reports whether the host holds any copy, valid or stale.
func (h *Host) HasCopy(r RegionID, p int) bool {
	return h.pages[r][p].data != nil
}
