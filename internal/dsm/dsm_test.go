package dsm

import (
	"encoding/binary"
	"testing"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// newTestCluster returns a cluster of n machines with hosts 0..act-1
// active, plus a clock per host.
func newTestCluster(t *testing.T, n, act int) (*Cluster, []*simtime.Clock) {
	t.Helper()
	c, err := New(Config{MaxHosts: n})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 1; i < act; i++ {
		if _, err := c.Join(HostID(i)); err != nil {
			t.Fatalf("Join(%d): %v", i, err)
		}
	}
	clocks := make([]*simtime.Clock, n)
	for i := range clocks {
		clocks[i] = simtime.NewClock(0)
	}
	return c, clocks
}

func barrier(c *Cluster, clocks []*simtime.Clock) BarrierResult {
	active := c.ActiveHosts()
	arr := make([]simtime.Seconds, len(active))
	for i, id := range active {
		arr[i] = clocks[id].Now()
	}
	res := c.Barrier(active, arr)
	for _, id := range active {
		clocks[id].AdvanceTo(res.ReleaseTime)
	}
	return res
}

func putU64(c *Cluster, h HostID, r RegionID, off int, v uint64, clk *simtime.Clock) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.Host(h).Write(r, off, b[:], clk)
}

func getU64(c *Cluster, h HostID, r RegionID, off int, clk *simtime.Clock) uint64 {
	var b [8]byte
	c.Host(h).Read(r, off, b[:], clk)
	return binary.LittleEndian.Uint64(b[:])
}

func TestAllocZeroedAndMasterOwned(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 2)
	r, err := c.Alloc("a", 3*page.Size)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if r.NPages != 3 {
		t.Fatalf("NPages = %d, want 3", r.NPages)
	}
	for p := 0; p < 3; p++ {
		if got := c.PageOwner(r.ID, p); got != 0 {
			t.Fatalf("page %d owner = %d, want master", p, got)
		}
	}
	if got := getU64(c, 1, r.ID, 8, clocks[1]); got != 0 {
		t.Fatalf("fresh region reads %d, want 0", got)
	}
}

func TestAllocRejectsBadSize(t *testing.T) {
	c, _ := newTestCluster(t, 2, 1)
	if _, err := c.Alloc("bad", 0); err == nil {
		t.Fatal("Alloc(0) must fail")
	}
	if _, err := c.Alloc("bad", -5); err == nil {
		t.Fatal("Alloc(-5) must fail")
	}
}

func TestReadFaultFetchesFullPage(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 2)
	r, _ := c.Alloc("a", page.Size)
	putU64(c, 0, r.ID, 0, 42, clocks[0])
	barrier(c, clocks)

	before := c.Stats().Snapshot()
	if got := getU64(c, 1, r.ID, 0, clocks[1]); got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
	d := c.Stats().Snapshot().Sub(before)
	if d.PageFetches != 1 || d.DiffFetches != 0 {
		t.Fatalf("fetches = %d pages %d diffs, want 1 page 0 diffs", d.PageFetches, d.DiffFetches)
	}
	// Second read hits the cached copy.
	before = c.Stats().Snapshot()
	getU64(c, 1, r.ID, 0, clocks[1])
	d = c.Stats().Snapshot().Sub(before)
	if d.PageFetches != 0 && d.ReadFaults != 0 {
		t.Fatalf("second read must be local, got %+v", d)
	}
}

func TestSingleWriterOwnershipMoves(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 3)
	r, _ := c.Alloc("a", page.Size)
	putU64(c, 1, r.ID, 0, 7, clocks[1])
	barrier(c, clocks)
	if got := c.PageOwner(r.ID, 0); got != 1 {
		t.Fatalf("owner = %d, want 1 (the writer)", got)
	}
	if got := c.PageMode(r.ID, 0); got != ModeSingle {
		t.Fatalf("mode = %v, want single", got)
	}
	if got := getU64(c, 2, r.ID, 0, clocks[2]); got != 7 {
		t.Fatalf("host 2 read %d, want 7", got)
	}
	if n := c.Stats().DiffsCreated.Load(); n != 0 {
		t.Fatalf("single-writer run created %d diffs, want 0", n)
	}
}

func TestMultiWriterConflictMergesDiffs(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 3)
	r, _ := c.Alloc("a", page.Size)
	// Hosts 0 and 1 write disjoint words of the same page in the same
	// interval: the partition-straddling pattern.
	putU64(c, 0, r.ID, 0, 100, clocks[0])
	putU64(c, 1, r.ID, 8, 200, clocks[1])
	barrier(c, clocks)

	if got := c.PageMode(r.ID, 0); got != ModeMulti {
		t.Fatalf("mode = %v, want multi after concurrent writers", got)
	}
	if n := c.Stats().DiffsCreated.Load(); n != 2 {
		t.Fatalf("DiffsCreated = %d, want 2", n)
	}
	// A third host sees the merged page.
	if got := getU64(c, 2, r.ID, 0, clocks[2]); got != 100 {
		t.Fatalf("host 2 word 0 = %d, want 100", got)
	}
	if got := getU64(c, 2, r.ID, 8, clocks[2]); got != 200 {
		t.Fatalf("host 2 word 1 = %d, want 200", got)
	}
	// Each writer sees the other's word after revalidation.
	if got := getU64(c, 0, r.ID, 8, clocks[0]); got != 200 {
		t.Fatalf("host 0 word 1 = %d, want 200", got)
	}
	if got := getU64(c, 1, r.ID, 0, clocks[1]); got != 100 {
		t.Fatalf("host 1 word 0 = %d, want 100", got)
	}
}

func TestRepeatedWritesUseDiffsOnMultiPages(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 2)
	r, _ := c.Alloc("a", page.Size)
	// Make the page multi-writer in interval 1.
	putU64(c, 0, r.ID, 0, 1, clocks[0])
	putU64(c, 1, r.ID, 8, 2, clocks[1])
	barrier(c, clocks)
	getU64(c, 1, r.ID, 0, clocks[1]) // host 1 revalidates

	// Now host 0 alone updates the page each interval; host 1 should
	// revalidate via diffs, not page fetches.
	before := c.Stats().Snapshot()
	for i := 0; i < 5; i++ {
		putU64(c, 0, r.ID, 0, uint64(10+i), clocks[0])
		barrier(c, clocks)
		if got := getU64(c, 1, r.ID, 0, clocks[1]); got != uint64(10+i) {
			t.Fatalf("iter %d: host 1 read %d, want %d", i, got, 10+i)
		}
	}
	d := c.Stats().Snapshot().Sub(before)
	if d.PageFetches != 0 {
		t.Fatalf("multi-page steady state made %d page fetches, want 0", d.PageFetches)
	}
	if d.DiffFetches < 5 {
		t.Fatalf("DiffFetches = %d, want >= 5", d.DiffFetches)
	}
}

func TestSingleWriterSteadyStateRefetchesPages(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 2)
	r, _ := c.Alloc("a", page.Size)
	before := c.Stats().Snapshot()
	for i := 0; i < 4; i++ {
		putU64(c, 0, r.ID, 0, uint64(i+1), clocks[0])
		barrier(c, clocks)
		if got := getU64(c, 1, r.ID, 0, clocks[1]); got != uint64(i+1) {
			t.Fatalf("iter %d: read %d, want %d", i, got, i+1)
		}
	}
	d := c.Stats().Snapshot().Sub(before)
	if d.DiffFetches != 0 {
		t.Fatalf("single-writer page produced %d diff fetches, want 0", d.DiffFetches)
	}
	if d.PageFetches != 4 {
		t.Fatalf("PageFetches = %d, want 4 (one per interval)", d.PageFetches)
	}
}

func TestWriterSwitchStaysSingleMode(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 2)
	r, _ := c.Alloc("a", page.Size)
	putU64(c, 0, r.ID, 0, 1, clocks[0])
	barrier(c, clocks)
	// Host 1 becomes the writer in a later interval: still one writer
	// per interval, so the page stays in single-writer mode.
	putU64(c, 1, r.ID, 0, 2, clocks[1])
	barrier(c, clocks)
	if got := c.PageMode(r.ID, 0); got != ModeSingle {
		t.Fatalf("mode = %v, want single for serial writers", got)
	}
	if got := c.PageOwner(r.ID, 0); got != 1 {
		t.Fatalf("owner = %d, want 1", got)
	}
	if got := getU64(c, 0, r.ID, 0, clocks[0]); got != 2 {
		t.Fatalf("host 0 read %d, want 2", got)
	}
}

func TestGCResetsConsistencyState(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 3)
	r, _ := c.Alloc("a", 2*page.Size)
	putU64(c, 0, r.ID, 0, 1, clocks[0])
	putU64(c, 1, r.ID, 8, 2, clocks[1])
	putU64(c, 2, r.ID, page.Size, 3, clocks[2])
	barrier(c, clocks)

	elapsed := c.ForceGC(c.ActiveHosts())
	if elapsed <= 0 {
		t.Fatalf("GC elapsed = %v, want > 0", elapsed)
	}
	if got := c.Stats().GCs.Load(); got != 1 {
		t.Fatalf("GCs = %d, want 1", got)
	}
	// Post-GC invariants: modes reset, owner current, reads correct.
	if got := c.PageMode(r.ID, 0); got != ModeSingle {
		t.Fatalf("post-GC mode = %v, want single", got)
	}
	owner := c.PageOwner(r.ID, 0)
	if !c.Host(owner).Valid(r.ID, 0) {
		t.Fatalf("post-GC owner %d does not hold a valid copy", owner)
	}
	if got := getU64(c, 2, r.ID, 0, clocks[2]); got != 1 {
		t.Fatalf("post-GC read word 0 = %d, want 1", got)
	}
	if got := getU64(c, 2, r.ID, 8, clocks[2]); got != 2 {
		t.Fatalf("post-GC read word 1 = %d, want 2", got)
	}
	if got := getU64(c, 0, r.ID, page.Size, clocks[0]); got != 3 {
		t.Fatalf("post-GC read page 1 = %d, want 3", got)
	}
}

func TestGCThresholdTriggersAtBarrier(t *testing.T) {
	c, err := New(Config{MaxHosts: 2, GCThresholdBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(1); err != nil {
		t.Fatal(err)
	}
	clocks := []*simtime.Clock{simtime.NewClock(0), simtime.NewClock(0)}
	r, _ := c.Alloc("a", page.Size)
	// Create a multi page, then keep diffing until the 64-byte budget
	// trips.
	putU64(c, 0, r.ID, 0, 1, clocks[0])
	putU64(c, 1, r.ID, 8, 2, clocks[1])
	gcs := 0
	for i := 0; i < 4; i++ {
		if barrier(c, clocks).GCRan {
			gcs++
		}
		putU64(c, 0, r.ID, 0, uint64(i), clocks[0])
	}
	if gcs == 0 {
		t.Fatal("tiny GC threshold never triggered a collection")
	}
}

func TestNormalLeaveViaMaster(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 4)
	r, _ := c.Alloc("a", 8*page.Size)
	// Each host writes two pages, becoming their owner.
	for h := 0; h < 4; h++ {
		putU64(c, HostID(h), r.ID, 2*h*page.Size, uint64(h+1), clocks[h])
		putU64(c, HostID(h), r.ID, (2*h+1)*page.Size, uint64(h+1), clocks[h])
	}
	barrier(c, clocks)
	c.ForceGC(c.ActiveHosts())

	if got := c.OwnedPages(2); got != 2 {
		t.Fatalf("host 2 owns %d pages, want 2", got)
	}
	rep, err := c.NormalLeave(2, LeaveViaMaster)
	if err != nil {
		t.Fatalf("NormalLeave: %v", err)
	}
	if rep.PagesMoved != 2 {
		t.Fatalf("moved %d pages, want 2", rep.PagesMoved)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("leave must cost time")
	}
	if c.Host(2).Active() {
		t.Fatal("leaver still active")
	}
	if got := c.OwnedPages(0); got < 4 {
		t.Fatalf("master owns %d pages, want >= 4 (its own + leaver's)", got)
	}
	// Data survives: the remaining hosts read the leaver's values.
	if got := getU64(c, 1, r.ID, 4*page.Size, clocks[1]); got != 3 {
		t.Fatalf("post-leave read = %d, want 3", got)
	}
}

func TestNormalLeaveDirectHandoffSpreadsOwnership(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 4)
	r, _ := c.Alloc("a", 12*page.Size)
	for p := 0; p < 12; p++ {
		putU64(c, HostID(p%4), r.ID, p*page.Size, uint64(p+1), clocks[p%4])
	}
	barrier(c, clocks)
	c.ForceGC(c.ActiveHosts())
	rep, err := c.NormalLeave(3, LeaveDirectHandoff)
	if err != nil {
		t.Fatalf("NormalLeave: %v", err)
	}
	if rep.PagesMoved == 0 {
		t.Fatal("expected pages to move")
	}
	// Ownership of the leaver's pages spread over the remaining hosts.
	for _, id := range []HostID{1, 2} {
		found := false
		for p := 0; p < 12; p++ {
			if p%4 == 3 && c.PageOwner(r.ID, p) == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("direct handoff gave host %d none of the leaver's pages", id)
		}
	}
	for p := 0; p < 12; p++ {
		if got := getU64(c, 1, r.ID, p*page.Size, clocks[1]); got != uint64(p+1) {
			t.Fatalf("page %d reads %d, want %d", p, got, p+1)
		}
	}
}

func TestLeaveErrors(t *testing.T) {
	c, _ := newTestCluster(t, 3, 2)
	if _, err := c.NormalLeave(0, LeaveViaMaster); err == nil {
		t.Fatal("master leave must fail")
	}
	if _, err := c.NormalLeave(2, LeaveViaMaster); err == nil {
		t.Fatal("leave of inactive host must fail")
	}
	if _, err := c.Join(1); err == nil {
		t.Fatal("join of active host must fail")
	}
}

func TestRejoinStartsFresh(t *testing.T) {
	c, clocks := newTestCluster(t, 3, 3)
	r, _ := c.Alloc("a", 2*page.Size)
	putU64(c, 2, r.ID, 0, 9, clocks[2])
	barrier(c, clocks)
	c.ForceGC(c.ActiveHosts())
	if _, err := c.NormalLeave(2, LeaveViaMaster); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesMoved <= 0 {
		t.Fatal("join must send a page-location map")
	}
	if c.Host(2).HasCopy(r.ID, 0) {
		t.Fatal("rejoined host must start with no copies")
	}
	if got := getU64(c, 2, r.ID, 0, clocks[2]); got != 9 {
		t.Fatalf("rejoined host reads %d, want 9", got)
	}
}

func TestCollectToMaster(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 4)
	r, _ := c.Alloc("a", 4*page.Size)
	for h := 0; h < 4; h++ {
		putU64(c, HostID(h), r.ID, h*page.Size, uint64(h+10), clocks[h])
	}
	barrier(c, clocks)
	c.ForceGC(c.ActiveHosts())
	rep := c.CollectToMaster()
	if rep.PagesMoved != 3 {
		t.Fatalf("collected %d pages, want 3 (master already had its own)", rep.PagesMoved)
	}
	for p := 0; p < 4; p++ {
		if !c.Master().Valid(r.ID, p) {
			t.Fatalf("master lacks page %d after collect", p)
		}
	}
	// Ownership unchanged.
	if got := c.PageOwner(r.ID, 3); got != 3 {
		t.Fatalf("collect changed owner of page 3 to %d", got)
	}
}

func TestResidentBytes(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", 4*page.Size)
	if got := c.Host(1).ResidentBytes(); got != 0 {
		t.Fatalf("fresh host resident = %d, want 0", got)
	}
	getU64(c, 1, r.ID, 0, clocks[1])
	getU64(c, 1, r.ID, page.Size, clocks[1])
	if got := c.Host(1).ResidentBytes(); got != 2*page.Size {
		t.Fatalf("resident = %d, want %d", got, 2*page.Size)
	}
	if got := c.Master().ResidentBytes(); got != 4*page.Size {
		t.Fatalf("master resident = %d, want full region", got)
	}
}

func TestCrossPageReadWrite(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", 3*page.Size)
	src := make([]byte, 2*page.Size)
	for i := range src {
		src[i] = byte(i * 7)
	}
	off := page.Size / 2 // straddles two page boundaries
	c.Host(0).Write(r.ID, off, src, clocks[0])
	barrier(c, clocks)
	dst := make([]byte, len(src))
	c.Host(1).Read(r.ID, off, dst, clocks[1])
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 1)
	r, _ := c.Alloc("a", 100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range read must panic")
		}
	}()
	c.Master().Read(r.ID, 96, make([]byte, 8), clocks[0])
}

func TestVirtualTimeAdvancesOnFaults(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)
	putU64(c, 0, r.ID, 0, 5, clocks[0])
	barrier(c, clocks)
	t0 := clocks[1].Now()
	getU64(c, 1, r.ID, 0, clocks[1])
	if d := clocks[1].Now() - t0; d < simtime.Micros(1307) || d > simtime.Micros(1400) {
		t.Fatalf("page fault cost %v, want about 1308 us", d)
	}
}

func TestFabricSeesPageTraffic(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)
	before := c.Fabric().Snapshot()
	getU64(c, 1, r.ID, 0, clocks[1])
	w := c.Fabric().Snapshot().Sub(before)
	if got := w.LinkBytes(0, 1); got < page.Size {
		t.Fatalf("master->host1 carried %d bytes, want >= one page", got)
	}
	if w.TotalMessages() < 2 {
		t.Fatalf("messages = %d, want request+response", w.TotalMessages())
	}
}
