package dsm

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// TestRandomBarrierProgramsMatchReference runs randomly generated
// barrier-synchronised programs against a flat reference array. Each
// interval assigns every host a disjoint set of word indices to write
// (race-free by construction, but with heavy page-level false sharing),
// then after the barrier every host reads a random sample and must see
// the reference values.
func TestRandomBarrierProgramsMatchReference(t *testing.T) {
	const (
		hosts     = 4
		words     = 6 * page.Words // 6 pages
		intervals = 8
		trials    = 12
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		c, clocks := newTestCluster(t, hosts, hosts)
		r, err := c.Alloc("mem", words*8)
		if err != nil {
			t.Fatal(err)
		}
		ref := make([]uint64, words)

		for iv := 0; iv < intervals; iv++ {
			// Disjoint writes: shuffle word indices, give each host a
			// random-length slice of the permutation.
			perm := rng.Perm(words)
			cut := 0
			for h := 0; h < hosts; h++ {
				n := rng.Intn(words / hosts)
				for _, w := range perm[cut : cut+n] {
					v := rng.Uint64()
					ref[w] = v
					putU64(c, HostID(h), r.ID, w*8, v, clocks[h])
				}
				cut += n
			}
			barrier(c, clocks)
			// Occasional GC, like the real system under diff pressure.
			if iv%3 == 2 {
				c.ForceGC(c.ActiveHosts())
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("trial %d interval %d: %v", trial, iv, err)
			}
			// Every host samples random words.
			for h := 0; h < hosts; h++ {
				for k := 0; k < 20; k++ {
					w := rng.Intn(words)
					if got := getU64(c, HostID(h), r.ID, w*8, clocks[h]); got != ref[w] {
						t.Fatalf("trial %d interval %d: host %d word %d = %d, want %d",
							trial, iv, h, w, got, ref[w])
					}
				}
			}
		}
	}
}

// TestRandomProgramsWithAdaptation interleaves joins and leaves with
// random disjoint writes and checks that shared memory always matches
// the reference, exercising GC + leave + join state transfer together.
func TestRandomProgramsWithAdaptation(t *testing.T) {
	const (
		pool      = 5
		words     = 4 * page.Words
		intervals = 10
		trials    = 8
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		c, clocks := newTestCluster(t, pool, 3)
		r, err := c.Alloc("mem", words*8)
		if err != nil {
			t.Fatal(err)
		}
		ref := make([]uint64, words)

		for iv := 0; iv < intervals; iv++ {
			active := c.ActiveHosts()
			perm := rng.Perm(words)
			cut := 0
			for _, id := range active {
				n := rng.Intn(words/len(active) + 1)
				for _, w := range perm[cut : cut+n] {
					v := rng.Uint64()
					ref[w] = v
					putU64(c, id, r.ID, w*8, v, clocks[id])
				}
				cut += n
			}
			barrier(c, clocks)

			// Adapt at this point with probability 1/2.
			switch rng.Intn(4) {
			case 0: // leave a random non-master host if possible
				if len(active) > 2 {
					leaver := active[1+rng.Intn(len(active)-1)]
					c.ForceGC(active)
					if _, err := c.NormalLeave(leaver, LeaveViaMaster); err != nil {
						t.Fatalf("leave: %v", err)
					}
				}
			case 1: // join an inactive host if possible
				for id := HostID(0); int(id) < pool; id++ {
					if !c.Host(id).Active() {
						c.ForceGC(c.ActiveHosts())
						if _, err := c.Join(id); err != nil {
							t.Fatalf("join: %v", err)
						}
						break
					}
				}
			}

			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("trial %d interval %d: %v", trial, iv, err)
			}
			for _, id := range c.ActiveHosts() {
				for k := 0; k < 15; k++ {
					w := rng.Intn(words)
					if got := getU64(c, id, r.ID, w*8, clocks[id]); got != ref[w] {
						t.Fatalf("trial %d interval %d: host %d word %d = %d, want %d",
							trial, iv, id, w, got, ref[w])
					}
				}
			}
		}
	}
}

// TestBulkTransferConsistency writes a large buffer from one host and
// streams it out from another, crossing many pages.
func TestBulkTransferConsistency(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	const n = 10*page.Size + 136
	r, err := c.Alloc("buf", n)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, n)
	rng := rand.New(rand.NewSource(42))
	rng.Read(src)
	c.Host(0).Write(r.ID, 0, src, clocks[0])
	barrier(c, clocks)
	dst := make([]byte, n)
	c.Host(1).Read(r.ID, 0, dst, clocks[1])
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

// TestDeterministicTraffic runs the same program twice and requires
// identical protocol counters, traffic and virtual times: the
// reproducibility contract of the simulation.
func TestDeterministicTraffic(t *testing.T) {
	run := func() (StatsSnapshot, int64, simtime.Seconds) {
		c, clocks := newTestCluster(t, 4, 4)
		r, _ := c.Alloc("a", 8*page.Size)
		for iv := 0; iv < 6; iv++ {
			for h := 0; h < 4; h++ {
				off := ((h*2+iv)%8)*page.Size + (h%3)*8
				putU64(c, HostID(h), r.ID, off, uint64(iv*100+h), clocks[h])
			}
			barrier(c, clocks)
			for h := 0; h < 4; h++ {
				getU64(c, HostID(h), r.ID, ((h+iv)%8)*page.Size, clocks[h])
			}
		}
		return c.Stats().Snapshot(), c.Fabric().Snapshot().TotalBytes(), clocks[0].Now()
	}
	s1, b1, t1 := run()
	s2, b2, t2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if b1 != b2 {
		t.Fatalf("traffic differs: %d vs %d", b1, b2)
	}
	if t1 != t2 {
		t.Fatalf("virtual time differs: %v vs %v", t1, t2)
	}
}

// TestWordEncoding sanity-checks the little-endian helpers used
// throughout the tests.
func TestWordEncoding(t *testing.T) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], 0x1122334455667788)
	if got := binary.LittleEndian.Uint64(b[:]); got != 0x1122334455667788 {
		t.Fatal("endianness helpers broken")
	}
}
