package dsm

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Covered-prefix garbage collection of consistency metadata. Two
// structures grow with interval count between full GCs and were
// previously rescanned linearly on the hot synchronisation paths:
//
//   - each writer's per-page diff chain (Host.diffs), scanned on every
//     fault, upgrade and GC pull;
//   - the cluster release log (Cluster.releaseLog), scanned on every
//     lock acquire.
//
// Both are append-only in ascending sequence order, and both have a
// covered prefix that no future operation can request: a diff with
// sequence at or below every copy's appliedSeq can never be fetched
// again (any future patch starts from some copy's appliedSeq, and a
// base refetch starts from the owner's), and a release-log entry at or
// below every active host's syncSeq has been honoured by everyone who
// will ever look. Pruning those prefixes — plus binary-searching the
// suffix instead of rescanning from the start — makes the amortised
// per-operation metadata cost independent of how many intervals have
// passed since the last full GC.
//
// Pruning is host-local bookkeeping only. It charges no virtual time,
// records no fabric traffic, and deliberately does NOT lower
// Host.diffBytes: the GC-trigger accounting must see exactly the
// storage the unpruned protocol would, so GC fires at the same
// barriers and every scenario record stays byte-identical. The
// differential suite in internal/bench asserts that force-enabled and
// disabled pruning produce identical encodings.

// CoalescingMode selects how eagerly metadata prefixes are pruned.
type CoalescingMode int32

const (
	// CoalesceAuto prunes opportunistically every coalesceStride
	// appends: amortised O(1) per append, the production default.
	CoalesceAuto CoalescingMode = iota
	// CoalesceOff never prunes: metadata accumulates until the next
	// full GC exactly as it did before prefix pruning existed. The
	// differential baseline.
	CoalesceOff
	// CoalesceForce prunes on every append: maximally eager, used by
	// the differential suite to surface any observable divergence.
	CoalesceForce
)

// coalesceStride is the append interval between prune attempts under
// CoalesceAuto: frequent enough that chains stay short, rare enough
// that the O(hosts) floor computation amortises away.
const coalesceStride = 32

var coalescingMode atomic.Int32

// SetCoalescing selects the metadata-pruning mode and returns a
// restore function. Like the coherence-mutation hook, it is for
// sequential test use and must not be toggled mid-simulation.
func SetCoalescing(mode CoalescingMode) (restore func()) {
	prev := coalescingMode.Load()
	coalescingMode.Store(int32(mode))
	return func() { coalescingMode.Store(prev) }
}

// ParseCoalescingMode maps the flag spellings to a mode.
func ParseCoalescingMode(s string) (CoalescingMode, error) {
	switch s {
	case "", "auto":
		return CoalesceAuto, nil
	case "off":
		return CoalesceOff, nil
	case "force":
		return CoalesceForce, nil
	}
	return 0, fmt.Errorf("dsm: unknown coalescing mode %q (want auto, off or force)", s)
}

// shouldPrune reports whether a structure that has grown to n entries
// should attempt a prune now.
func shouldPrune(n int) bool {
	switch CoalescingMode(coalescingMode.Load()) {
	case CoalesceOff:
		return false
	case CoalesceForce:
		return true
	default:
		return n%coalesceStride == 0
	}
}

// diffFloor returns the highest sequence F such that no future
// operation can request diffs of pk with sequence <= F: the minimum
// appliedSeq over every copy of the page. Hosts without a copy start
// from a base fetched off the owner, whose appliedSeq participates in
// the minimum, so the floor covers them too. The caller holds the
// directory write lock.
func (c *Cluster) diffFloor(pk pageKey) int32 {
	floor := c.seq
	for _, h := range c.hosts {
		st := &h.pages[pk.region][pk.page]
		if st.data == nil {
			continue
		}
		if st.appliedSeq < floor {
			floor = st.appliedSeq
		}
	}
	return floor
}

// pruneDiffChain drops the covered prefix of h's diff chain for pk.
// Entries are ascending by sequence; the prefix is released by zeroing
// the dropped records (so the page diffs become collectable) and
// re-slicing. diffBytes is intentionally left untouched — see the
// package comment above.
func (c *Cluster) pruneDiffChain(h *Host, pk pageKey) {
	chain := h.diffs[pk]
	if len(chain) == 0 {
		return
	}
	floor := c.diffFloor(pk)
	k := sort.Search(len(chain), func(i int) bool { return chain[i].seq > floor })
	if k == 0 {
		return
	}
	for i := 0; i < k; i++ {
		chain[i] = seqDiff{}
	}
	h.diffs[pk] = chain[k:]
}

// pruneReleaseLog drops the release-log prefix already honoured by
// every active host: entries ascending by sequence at or below the
// minimum active syncSeq can never be selected by a future acquire
// (joiners start synchronised to the joining barrier's sequence), and
// barriers clear the whole log regardless. The caller holds the
// directory write lock.
func (c *Cluster) pruneReleaseLog() {
	if len(c.releaseLog) == 0 {
		return
	}
	minSync := c.seq
	for _, h := range c.hosts {
		if h.active && h.syncSeq < minSync {
			minSync = h.syncSeq
		}
	}
	log := c.releaseLog
	k := sort.Search(len(log), func(i int) bool { return log[i].seq > minSync })
	if k == 0 {
		return
	}
	copy(log, log[k:])
	c.releaseLog = log[:len(log)-k]
}
