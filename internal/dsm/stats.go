package dsm

// Counter is a cluster-event counter. It keeps the Add/Load method
// shape of atomic.Int64 but increments are plain stores: the engine
// runs exactly one process of a cluster at a time and every process
// switch is a channel handoff (a happens-before edge), so counters are
// never touched concurrently. Fault-path increments sit right after
// 4 KB twin/fetch copies, where an atomic's store-buffer drain costs
// more than the bookkeeping itself at full scale.
type Counter int64

// Add increments the counter by n.
func (c *Counter) Add(n int64) { *c += Counter(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return int64(*c) }

// Stats counts DSM protocol events. All counters are cumulative for the
// lifetime of the cluster; use Snapshot and Delta to measure windows
// (for example, the cost attributable to one adaptation). Byte and
// message totals live on the network fabric; these counters track
// protocol objects, matching the columns of Table 1.
type Stats struct {
	PageFetches  Counter // full 4 KB page transfers
	PageBytes    Counter // payload bytes of page transfers
	DiffFetches  Counter // diff objects fetched (Table 1 "Diffs")
	DiffBytes    Counter // payload bytes of diff transfers
	DiffsCreated Counter // diffs made at interval close
	TwinsCreated Counter // twins made at first write
	// HomeFlushes/HomeFlushBytes count diffs pushed to page homes at
	// interval close, the HLRC analogue of diff fetches (always zero
	// under Tmk).
	HomeFlushes    Counter
	HomeFlushBytes Counter
	Barriers       Counter
	LockAcquires   Counter
	GCs            Counter
	ReadFaults     Counter // page-granularity access misses
	WriteFaults    Counter // first writes (twin events)
	// Hybrid-protocol classification census: how many pages the
	// classifier currently tags with each sharing pattern (a page moves
	// between buckets as its access history evolves; unknown pages are
	// in no bucket). Always zero under Tmk and HLRC.
	PagesSingleWriter     Counter
	PagesProducerConsumer Counter
	PagesMigratory        Counter
	PagesFalselyShared    Counter
	// HomeMigrations counts hybrid home moves: free flips at a
	// sole-writer close plus priced dominant-writer migrations, whose
	// transferred bytes accumulate in HomeMigrationBytes.
	HomeMigrations     Counter
	HomeMigrationBytes Counter
	// ElidedTwins/ElidedDiffs count the twin copies and diff objects the
	// hybrid protocol skipped for proven single-writer pages.
	ElidedTwins Counter
	ElidedDiffs Counter
}

// StatsSnapshot is an immutable copy of the counters.
type StatsSnapshot struct {
	PageFetches  int64
	PageBytes    int64
	DiffFetches  int64
	DiffBytes    int64
	DiffsCreated int64
	TwinsCreated int64
	// HomeFlushes/HomeFlushBytes are the HLRC home-push counters.
	HomeFlushes    int64
	HomeFlushBytes int64
	Barriers       int64
	LockAcquires   int64
	GCs            int64
	ReadFaults     int64
	WriteFaults    int64
	// Hybrid classification census and adaptation counters.
	PagesSingleWriter     int64
	PagesProducerConsumer int64
	PagesMigratory        int64
	PagesFalselyShared    int64
	HomeMigrations        int64
	HomeMigrationBytes    int64
	ElidedTwins           int64
	ElidedDiffs           int64
}

// Snapshot captures the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		PageFetches:    s.PageFetches.Load(),
		PageBytes:      s.PageBytes.Load(),
		DiffFetches:    s.DiffFetches.Load(),
		DiffBytes:      s.DiffBytes.Load(),
		DiffsCreated:   s.DiffsCreated.Load(),
		TwinsCreated:   s.TwinsCreated.Load(),
		HomeFlushes:    s.HomeFlushes.Load(),
		HomeFlushBytes: s.HomeFlushBytes.Load(),
		Barriers:       s.Barriers.Load(),
		LockAcquires:   s.LockAcquires.Load(),
		GCs:            s.GCs.Load(),
		ReadFaults:     s.ReadFaults.Load(),
		WriteFaults:    s.WriteFaults.Load(),

		PagesSingleWriter:     s.PagesSingleWriter.Load(),
		PagesProducerConsumer: s.PagesProducerConsumer.Load(),
		PagesMigratory:        s.PagesMigratory.Load(),
		PagesFalselyShared:    s.PagesFalselyShared.Load(),
		HomeMigrations:        s.HomeMigrations.Load(),
		HomeMigrationBytes:    s.HomeMigrationBytes.Load(),
		ElidedTwins:           s.ElidedTwins.Load(),
		ElidedDiffs:           s.ElidedDiffs.Load(),
	}
}

// Sub returns the difference between this snapshot and an earlier one.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		PageFetches:    s.PageFetches - earlier.PageFetches,
		PageBytes:      s.PageBytes - earlier.PageBytes,
		DiffFetches:    s.DiffFetches - earlier.DiffFetches,
		DiffBytes:      s.DiffBytes - earlier.DiffBytes,
		DiffsCreated:   s.DiffsCreated - earlier.DiffsCreated,
		TwinsCreated:   s.TwinsCreated - earlier.TwinsCreated,
		HomeFlushes:    s.HomeFlushes - earlier.HomeFlushes,
		HomeFlushBytes: s.HomeFlushBytes - earlier.HomeFlushBytes,
		Barriers:       s.Barriers - earlier.Barriers,
		LockAcquires:   s.LockAcquires - earlier.LockAcquires,
		GCs:            s.GCs - earlier.GCs,
		ReadFaults:     s.ReadFaults - earlier.ReadFaults,
		WriteFaults:    s.WriteFaults - earlier.WriteFaults,

		PagesSingleWriter:     s.PagesSingleWriter - earlier.PagesSingleWriter,
		PagesProducerConsumer: s.PagesProducerConsumer - earlier.PagesProducerConsumer,
		PagesMigratory:        s.PagesMigratory - earlier.PagesMigratory,
		PagesFalselyShared:    s.PagesFalselyShared - earlier.PagesFalselyShared,
		HomeMigrations:        s.HomeMigrations - earlier.HomeMigrations,
		HomeMigrationBytes:    s.HomeMigrationBytes - earlier.HomeMigrationBytes,
		ElidedTwins:           s.ElidedTwins - earlier.ElidedTwins,
		ElidedDiffs:           s.ElidedDiffs - earlier.ElidedDiffs,
	}
}

// Stats returns the cluster-wide counters.
func (c *Cluster) Stats() *Stats { return &c.stats }
