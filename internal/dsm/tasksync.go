package dsm

import "nowomp/internal/simtime"

// Task-runtime consistency entry points. Work stealing on a DSM ships
// a task closure between processes, and the thief must observe every
// shared-memory write that happened before the task became stealable.
// The task runtime brackets each steal (and each remotely-consumed task
// completion) with the same release/acquire pair the lock protocol
// uses: FlushInterval is the release half, AcquireInterval the acquire
// half. Both are priced — diff creation, invalidation and the later
// refetches all charge virtual time and fabric traffic — which is what
// makes the tasking-versus-loop-scheduling comparison meaningful:
// steals on a DSM are not free.

// HasOpenInterval reports whether the host has written shared memory
// since its interval last closed (at a barrier, lock release or flush).
func (h *Host) HasOpenInterval() bool {
	return len(h.written) > 0
}

// FlushInterval closes h's open interval outside any lock or barrier:
// the release half of a task-shipping handoff. It is a no-op (zero
// cost, zero traffic) when the host has not written since its interval
// last closed, so local-only task execution stays free. Diff-creation
// time is charged to clk, which need not be h's own process clock: a
// steal charges the thief, who waits for the victim's flush before the
// closure is shipped. Returns the number of diffs created.
func (c *Cluster) FlushInterval(h *Host, clk *simtime.Clock) int {
	if !h.HasOpenInterval() {
		return 0
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()
	return c.proto.flushIntervalLocked(h, clk)
}

// AcquireInterval performs acquire-side consistency for h without a
// lock: every page touched by a release interval the host has not yet
// synchronised with is invalidated or upgraded in place, exactly as a
// lock acquire does. The task runtime calls it on the thief after a
// steal and on a waiting parent when a remotely-executed child task
// completes. Costs (diff fetches for dirty pages) charge to clk; pages
// merely invalidated are repriced lazily at the next fault.
func (c *Cluster) AcquireInterval(h *Host, clk *simtime.Clock) {
	c.honourReleases(h, clk)
}
