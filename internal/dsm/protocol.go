package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// ProtocolKind selects the coherence protocol a cluster runs. The zero
// value is Tmk, the TreadMarks homeless lazy-release-consistency
// protocol the paper's system is built on, so existing configurations
// are unchanged.
type ProtocolKind uint8

const (
	// Tmk is homeless lazy release consistency in the TreadMarks
	// style: writers keep their diffs, readers fetch them writer by
	// writer at fault time, and a garbage-collection pass periodically
	// consolidates the accumulated diffs at per-page owners. This is
	// the default and reproduces the paper's system bit for bit.
	Tmk ProtocolKind = iota
	// HLRC is home-based lazy release consistency: every page has a
	// home host (assigned round-robin by page, re-homed round-robin at
	// adaptation points when its home leaves), writers push their
	// diffs to the home eagerly when an interval closes, faults pull
	// the whole page from the home, and garbage collection is trivial
	// because no diff ever outlives its interval close.
	HLRC
	// Hybrid is the adaptive per-page protocol: an HLRC-style
	// home-based baseline whose per-page classifier (classify.go)
	// migrates homes to dominant writers, switches diff-vs-whole-page
	// transfer on measured diff density, and elides twin/diff work for
	// proven single-writer pages (hybrid.go).
	Hybrid
)

// String names the protocol the way the tools' -protocol flag spells
// it.
func (k ProtocolKind) String() string {
	switch k {
	case Tmk:
		return "tmk"
	case HLRC:
		return "hlrc"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("protocol(%d)", int(k))
}

// ParseProtocol parses a -protocol flag value.
func ParseProtocol(s string) (ProtocolKind, error) {
	switch s {
	case "", "tmk":
		return Tmk, nil
	case "hlrc":
		return HLRC, nil
	case "hybrid":
		return Hybrid, nil
	}
	return Tmk, fmt.Errorf("dsm: unknown protocol %q (want tmk, hlrc or hybrid)", s)
}

// Protocol is the coherence machinery of a cluster: everything that
// decides how a page becomes readable, what happens when an interval
// closes, and how consistency state is reclaimed. The surrounding
// Cluster owns the parts that are protocol-independent — region
// bookkeeping, the interval sequence, the release log, barrier arrival
// and write-notice traffic, locks, and the adaptation entry points —
// and dispatches the protocol-specific steps through this interface.
//
// The interface is deliberately implementation-gated (unexported
// methods): the two implementations live in this package (tmk.go,
// hlrc.go) and share the Cluster's internals. The contract each must
// honour:
//
//   - fault makes h's copy of the page readable and current as of the
//     page's latest committed interval, charging the requester.
//   - closePage commits interval s for one page at a barrier; on
//     return no listed writer holds a twin and every active host's
//     copy is either invalid or current (writers' sub-word races must
//     panic via Cluster.checkWordRaces).
//   - flushIntervalLocked commits h's open interval on a release path
//     (lock release, task handoff) under the directory write lock,
//     appending affected pages to the release log.
//   - upgradeOrInvalidate performs acquire-side consistency for one
//     page: a stale clean copy goes invalid, a stale dirty copy is
//     brought current in place without losing the host's own writes.
//   - runGCLocked reclaims consistency state; afterwards every page's
//     directory owner holds a valid current copy and every other copy
//     is either valid-and-current or absent (the invariant the
//     adaptation data movement relies on).
//   - storageLocked reports the reclaimable consistency storage in
//     bytes; the barrier triggers runGCLocked when it passes the
//     configured threshold.
//   - initRegion materialises a freshly allocated region's pages and
//     sets their directory owners.
//   - leaveStrategy maps the configured normal-leave handoff onto what
//     the protocol supports (HLRC always re-homes round-robin).
type Protocol interface {
	// Kind identifies the protocol.
	Kind() ProtocolKind

	fault(h *Host, pk pageKey, clk *simtime.Clock)
	closePage(pk pageKey, writers []HostID, s int32, active []HostID, flush []simtime.Seconds)
	flushIntervalLocked(h *Host, clk *simtime.Clock) int
	upgradeOrInvalidate(h *Host, pk pageKey, clk *simtime.Clock)
	runGCLocked(active []HostID) simtime.Seconds
	storageLocked() int
	initRegion(r *Region)
	leaveStrategy(s LeaveStrategy) LeaveStrategy
	// elideTwin lets the protocol skip twin creation for a first write:
	// the page stays dirty with a nil twin and the protocol commits it
	// without a diff. Tmk and HLRC never elide; hybrid does for proven
	// single-writer pages.
	elideTwin(h *Host, pk pageKey) bool
}

// newProtocol builds the configured protocol for a cluster.
func newProtocol(k ProtocolKind, c *Cluster) (Protocol, error) {
	switch k {
	case Tmk:
		return &tmkProtocol{c: c}, nil
	case HLRC:
		return &hlrcProtocol{c: c}, nil
	case Hybrid:
		return &hybridProtocol{c: c}, nil
	}
	return nil, fmt.Errorf("dsm: unknown protocol kind %d", int(k))
}

// Protocol returns the cluster's coherence protocol kind.
func (c *Cluster) Protocol() ProtocolKind { return c.proto.Kind() }

// copyPageFrom is the whole-page transfer both protocols price the
// same way: src's copy of the page is duplicated for h, the request
// and payload are recorded on the fabric, the requester-observed
// fetch cost is charged to clk, and the page-fetch counters advance.
// role names src's protocol role ("owner", "home") in the panic when
// it holds no copy. Returns the copied data and its appliedSeq.
func (c *Cluster) copyPageFrom(h, src *Host, pk pageKey, role string, clk *simtime.Clock) ([]byte, int32) {
	sst := &src.pages[pk.region][pk.page]
	if sst.data == nil {
		panic(fmt.Sprintf("dsm: %s %d of page %d/%d holds no copy", role, src.id, pk.region, pk.page))
	}
	data := c.pagePool.Copy(sst.data)
	applied := sst.appliedSeq

	c.fabric.Record(h.machine, src.machine, msgHeader)
	c.fabric.Record(src.machine, h.machine, page.Size+msgHeader)
	clk.Advance(c.costs.PageFetch(h.machine, src.machine, page.Size))
	c.stats.PageFetches.Add(1)
	c.stats.PageBytes.Add(page.Size)
	return data, applied
}
