package dsm

import (
	"fmt"
	"sort"

	"nowomp/internal/simtime"
)

// ForceGC runs a garbage collection outside the automatic threshold
// trigger, as the adaptive system does at every adaptation point and
// before every checkpoint (sections 4.1-4.3). All active processes
// must be parked. Open intervals are closed first: the master may have
// written shared memory in the sequential section since the last
// barrier (for example a dynamic-schedule counter), and those writes
// must flush before the collection discards twins.
func (c *Cluster) ForceGC(active []HostID) simtime.Seconds {
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()
	c.closeOpenIntervalsLocked(active)
	return c.runGCLocked(active)
}

// closeOpenIntervalsLocked flushes any host's open interval exactly as
// a barrier would. At an adaptation point only the master can have
// one, so each dirty page has a single writer.
func (c *Cluster) closeOpenIntervalsLocked(active []HostID) {
	flush := make(map[HostID]simtime.Seconds)
	for _, id := range active {
		h := c.Host(id)
		w := h.takeWritten()
		if len(w) == 0 {
			continue
		}
		c.seq++
		s := c.seq
		for _, pk := range w {
			c.closePage(pk, []HostID{id}, s, active, flush)
		}
	}
}

// runGCLocked implements the TreadMarks garbage collection: every
// page's outstanding diffs are pulled to its designated owner, all
// twins, diffs and write notices are discarded, and stale copies are
// freed. Afterwards each page is either valid and up to date, or
// invalid with the owner field pointing at a host with a valid copy —
// the property that makes adaptation cheap. The caller holds the
// directory write lock; the returned duration is the barrier-observed
// GC cost (coordination plus the slowest host's diff pulls).
func (c *Cluster) runGCLocked(active []HostID) simtime.Seconds {
	gcSeq := c.seq
	c.stats.GCs.Add(1)

	pull := make(map[HostID]simtime.Seconds)
	totalPages := 0
	for ri := range c.dir.pages {
		r := RegionID(ri)
		metas := c.dir.pages[ri]
		totalPages += len(metas)
		for p := range metas {
			pm := &metas[p]
			if len(pm.notices) > 0 || pm.mode == ModeMulti {
				c.gcPage(r, p, pm, pull)
			}
			latest := pm.latestSeq()
			// Prune copies on every host, including hosts that have
			// left: valid-and-current copies survive, everything else
			// is freed.
			for _, h := range c.hosts {
				h.mu.Lock()
				st := &h.pages[r][p]
				st.twin = nil
				st.dirty = false
				switch {
				case h.id == pm.owner:
					st.appliedSeq = gcSeq
				case st.valid && st.appliedSeq >= latest:
					st.appliedSeq = gcSeq
				default:
					st.data = nil
					st.valid = false
					st.appliedSeq = 0
				}
				h.mu.Unlock()
			}
			pm.notices = nil
			pm.mode = ModeSingle
			pm.baseSeq = gcSeq
		}
	}

	// All consistency information is gone.
	for _, h := range c.hosts {
		h.mu.Lock()
		h.diffs = make(map[pageKey][]seqDiff)
		h.diffBytes = 0
		h.mu.Unlock()
	}
	c.releaseLog = c.releaseLog[:0]

	// Owner-table broadcast: the master tells everyone where the valid
	// copies live.
	master := c.Master()
	meta := msgHeader + 2*totalPages
	for _, id := range active {
		if id == master.id {
			continue
		}
		h := c.Host(id)
		c.fabric.Record(h.machine, master.machine, msgHeader)
		c.fabric.Record(master.machine, h.machine, meta)
	}

	elapsed := c.model.GC(totalPages, len(active))
	var maxPull simtime.Seconds
	for _, t := range pull {
		if t > maxPull {
			maxPull = t
		}
	}
	return elapsed + maxPull
}

// gcPage designates the page's owner (its last writer) and brings the
// owner's copy fully current by pulling outstanding diffs. Pull time
// accumulates per owner; pulls to distinct owners proceed in parallel
// on the switched network.
func (c *Cluster) gcPage(r RegionID, p int, pm *pageMeta, pull map[HostID]simtime.Seconds) {
	if len(pm.notices) > 0 {
		pm.owner = pm.notices[len(pm.notices)-1].writer
	}
	owner := c.Host(pm.owner)
	latest := pm.latestSeq()

	owner.mu.Lock()
	st := &owner.pages[r][p]
	if st.data == nil {
		owner.mu.Unlock()
		panic(fmt.Sprintf("dsm: gc: owner %d of page %d/%d holds no copy", pm.owner, r, p))
	}
	applied := st.appliedSeq
	current := st.valid && applied >= latest
	owner.mu.Unlock()
	if current {
		return
	}

	pk := pageKey{r, p}
	var pending []seqDiff
	for _, sd := range owner.localDiffs(pk) {
		if sd.seq > applied {
			pending = append(pending, sd)
		}
	}
	grouped := groupPending(pm, applied, pm.owner)
	writers := make([]HostID, 0, len(grouped))
	for w := range grouped {
		writers = append(writers, w)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	for _, w := range writers {
		src := c.Host(w)
		src.mu.Lock()
		wire := 0
		for _, sd := range src.diffs[pk] {
			if sd.seq > applied && sd.seq <= latest {
				pending = append(pending, sd)
				wire += sd.diff.WireSize()
			}
		}
		src.mu.Unlock()
		if wire == 0 {
			continue
		}
		c.fabric.Record(owner.machine, src.machine, msgHeader)
		c.fabric.Record(src.machine, owner.machine, wire+msgHeader)
		pull[pm.owner] += c.costs.DiffFetch(owner.machine, src.machine, wire)
		c.stats.DiffFetches.Add(1)
		c.stats.DiffBytes.Add(int64(wire))
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })

	owner.mu.Lock()
	st = &owner.pages[r][p]
	for _, sd := range pending {
		sd.diff.Apply(st.data)
	}
	st.appliedSeq = latest
	st.valid = true
	owner.mu.Unlock()
}
