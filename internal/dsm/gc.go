package dsm

import (
	"nowomp/internal/simtime"
)

// ForceGC runs a garbage collection outside the automatic threshold
// trigger, as the adaptive system does at every adaptation point and
// before every checkpoint (sections 4.1-4.3). All active processes
// must be parked. Open intervals are closed first: the master may have
// written shared memory in the sequential section since the last
// barrier (for example a dynamic-schedule counter), and those writes
// must flush before the collection discards twins. What the collection
// itself does is protocol-specific: Tmk pulls every page's outstanding
// diffs to its owner and discards all consistency metadata, while
// HLRC — whose homes are always current — merely prunes stale copies
// at zero cost.
func (c *Cluster) ForceGC(active []HostID) simtime.Seconds {
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()
	c.closeOpenIntervalsLocked(active)
	return c.proto.runGCLocked(active)
}

// closeOpenIntervalsLocked flushes any host's open interval exactly as
// a barrier would. At an adaptation point only the master can have
// one, so each dirty page has a single writer.
func (c *Cluster) closeOpenIntervalsLocked(active []HostID) {
	flush := make([]simtime.Seconds, len(c.hosts))
	for _, id := range active {
		h := c.Host(id)
		w := h.takeWritten()
		if len(w) == 0 {
			continue
		}
		c.seq++
		s := c.seq
		for _, pk := range w {
			c.proto.closePage(pk, []HostID{id}, s, active, flush)
		}
	}
}
