package dsm

import (
	"fmt"

	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// hlrcProtocol is home-based lazy release consistency, the protocol
// family later cluster-OpenMP systems adopted because homeless LRC's
// diff accumulation and garbage-collection costs dominate at scale:
//
//   - Every page has a home host, assigned round-robin by page across
//     the hosts active at allocation time (the directory owner field
//     doubles as the home).
//   - Writers still twin on first write, but when an interval closes
//     (barrier, lock release, task handoff) each writer diffs against
//     its twin and pushes the diff to the home eagerly, where it is
//     applied at once. No diff outlives its interval close, so there
//     is nothing to garbage-collect: runGCLocked only prunes stale
//     copies, at zero cost and zero traffic.
//   - A fault pulls the whole page from the home in one round trip —
//     no writer-by-writer diff chasing — which trades bytes for
//     messages exactly the way the literature describes.
//   - At an adaptation point a leaver's pages re-home round-robin
//     across the remaining hosts, like a departing worker's task
//     deque; joiners receive the page-location map and fault pages in
//     from their homes.
//
// All transfers are priced through the per-link machine.Costs layer,
// so a slow link to a home, or a loaded home machine, bends HLRC's
// costs differently from Tmk's — the divergence bench.Protocols
// measures.
type hlrcProtocol struct {
	c *Cluster
	// rr is the round-robin cursor for home assignment, advancing
	// across regions so multi-region programs balance too.
	rr int
}

// Kind identifies the protocol.
func (hp *hlrcProtocol) Kind() ProtocolKind { return HLRC }

// initRegion assigns each page a round-robin home among the active
// hosts and materialises the zero-filled page there; the master keeps
// a copy as well (it runs the sequential sections), which is current
// because both are zero.
func (hp *hlrcProtocol) initRegion(r *Region) {
	c := hp.c
	active := c.ActiveHosts()
	m := c.Master()
	for p := 0; p < r.NPages; p++ {
		home := active[hp.rr%len(active)]
		hp.rr++
		c.dir.pages[r.ID][p].owner = home
		hh := c.Host(home)
		st := &hh.pages[r.ID][p]
		st.data = c.newPage()
		st.valid = true
		if home != m.id {
			st := &m.pages[r.ID][p]
			st.data = c.newPage()
			st.valid = true
		}
	}
}

// leaveStrategy: a leaver's pages always re-home round-robin across
// the remaining hosts, regardless of the configured Tmk handoff.
func (hp *hlrcProtocol) leaveStrategy(LeaveStrategy) LeaveStrategy { return LeaveDirectHandoff }

// storageLocked: no diff ever outlives its interval close, so there is
// never reclaimable storage and the barrier GC trigger never fires.
func (hp *hlrcProtocol) storageLocked() int { return 0 }

// elideTwin: HLRC always twins on first write.
func (hp *hlrcProtocol) elideTwin(*Host, pageKey) bool { return false }

// fault pulls the whole page from its home in one round trip.
func (hp *hlrcProtocol) fault(h *Host, pk pageKey, clk *simtime.Clock) {
	c := hp.c
	meta := c.dir.meta(pk.region, pk.page)
	if meta.owner == h.id {
		panic(fmt.Sprintf("dsm: hlrc: home %d of page %d/%d has no valid copy", h.id, pk.region, pk.page))
	}
	data, applied := hp.fetchHomePage(h, pk, meta.owner, clk)
	st := &h.pages[pk.region][pk.page]
	c.releasePage(st.data)
	st.data = data
	st.appliedSeq = applied
	st.valid = true
}

// fetchHomePage copies the home's page to the requester, recording the
// traffic and charging the requester-observed fetch cost.
func (hp *hlrcProtocol) fetchHomePage(h *Host, pk pageKey, home HostID, clk *simtime.Clock) ([]byte, int32) {
	return hp.c.copyPageFrom(h, hp.c.Host(home), pk, "home", clk)
}

// takeDiff diffs the writer's page against its twin and consumes the
// twin/dirty state, charging diff creation to clk. Returns nil when
// the page is unchanged.
func (hp *hlrcProtocol) takeDiff(h *Host, pk pageKey, clk *simtime.Clock) *page.Diff {
	c := hp.c
	st := &h.pages[pk.region][pk.page]
	d := page.Make(st.twin, st.data)
	c.releasePage(st.twin)
	st.twin = nil
	st.dirty = false
	if d == nil {
		return nil
	}
	c.stats.DiffsCreated.Add(1)
	clk.Advance(c.costs.DiffCreate(h.machine, page.Size))
	return d
}

// pushDiff ships a taken diff to the home and applies it there,
// charging the one-way push to clk and recording the push and the
// home's ack on the fabric. For a writer that is its own home only the
// sequence commit remains.
func (hp *hlrcProtocol) pushDiff(h *Host, pk pageKey, home HostID, d *page.Diff, s int32, clk *simtime.Clock) {
	c := hp.c
	if home != h.id {
		hh := c.Host(home)
		wire := d.WireSize()
		c.fabric.Record(h.machine, hh.machine, wire+msgHeader)
		c.fabric.Record(hh.machine, h.machine, msgHeader)
		clk.Advance(c.costs.DiffFlush(h.machine, hh.machine, wire))
		c.stats.HomeFlushes.Add(1)
		c.stats.HomeFlushBytes.Add(int64(wire))
		hp.applyAtHome(h.id, hh, pk, d, s)
	} else {
		// The writer is the home: its copy already carries the words;
		// just commit the sequence number.
		st := &h.pages[pk.region][pk.page]
		st.appliedSeq = s
		st.valid = true
	}
}

// applyAtHome applies a pushed diff to the home's copy. If the home
// has the page dirty in its own open interval, the incoming words must
// be disjoint from the home's own modified words — an overlap is the
// sub-word race the Tmk paths panic on, and must be caught *before*
// the apply destroys the evidence — and the diff is applied to the
// twin as well, so the home's eventual flush carries only its own
// words.
func (hp *hlrcProtocol) applyAtHome(from HostID, hh *Host, pk pageKey, d *page.Diff, s int32) {
	st := &hh.pages[pk.region][pk.page]
	if st.data == nil {
		panic(fmt.Sprintf("dsm: hlrc: home %d of page %d/%d holds no copy", hh.id, pk.region, pk.page))
	}
	if st.dirty && st.twin != nil {
		if own := page.Make(st.twin, st.data); own != nil {
			if w, ok := d.FirstOverlap(own); ok {
				panic(hp.c.wordRaceMessage(from, hh.id, pk, w, "without synchronisation"))
			}
		}
		d.Apply(st.twin)
	}
	d.Apply(st.data)
	st.appliedSeq = s
	st.valid = true
}

// closePage commits interval s for one page at a barrier: every
// writer's diff is taken first, the writers' sub-word disjointness is
// asserted while the evidence is intact, and only then is each diff
// pushed to (and applied at) the home and stale copies invalidated.
func (hp *hlrcProtocol) closePage(pk pageKey, writers []HostID, s int32, active []HostID, flush []simtime.Seconds) {
	c := hp.c
	pm := c.dir.metaLocked(pk.region, pk.page)
	home := pm.owner
	prevLatest := pm.latestSeq()

	var made []writerDiff
	for _, w := range writers {
		h := c.Host(w)
		clk := simtime.NewClock(0)
		d := hp.takeDiff(h, pk, clk)
		flush[w] += clk.Now()
		if d != nil {
			made = append(made, writerDiff{writer: w, diff: d})
		}
	}
	c.checkWordRaces(pk, made)
	if len(made) == 0 {
		return // twins consumed, nothing changed
	}
	for _, wd := range made {
		h := c.Host(wd.writer)
		clk := simtime.NewClock(0)
		hp.pushDiff(h, pk, home, wd.diff, s, clk)
		flush[wd.writer] += clk.Now()
	}
	pm.baseSeq = s // latestSeq: the home is current as of s

	// Invalidate stale copies. A sole writer whose pre-write copy was
	// current is itself current (its copy equals the home's); every
	// other non-home copy now lacks words and goes invalid.
	sole := HostID(-1)
	if len(made) == 1 {
		sole = made[0].writer
	}
	for _, id := range active {
		if id == home {
			continue
		}
		h := c.Host(id)
		st := &h.pages[pk.region][pk.page]
		if id == sole && st.valid && st.appliedSeq >= prevLatest {
			st.appliedSeq = s
		} else if st.valid && st.appliedSeq < s {
			st.valid = false
		}
	}
}

// flushIntervalLocked commits h's open interval on a release path:
// each written page's diff is pushed to its home, the page goes on the
// release log so later acquirers honour the writes, and concurrent
// dirty peers are checked for sub-word races. The caller holds the
// directory write lock.
func (hp *hlrcProtocol) flushIntervalLocked(h *Host, clk *simtime.Clock) int {
	c := hp.c
	c.seq++
	s := c.seq
	made := 0
	for _, pk := range h.takeWritten() {
		pm := c.dir.metaLocked(pk.region, pk.page)
		prevLatest := pm.latestSeq()
		st := &h.pages[pk.region][pk.page]
		wasCurrent := st.appliedSeq >= prevLatest

		d := hp.takeDiff(h, pk, clk)
		if d == nil {
			continue
		}
		hp.pushDiff(h, pk, pm.owner, d, s, clk)
		if pm.owner != h.id {
			st := &h.pages[pk.region][pk.page]
			if wasCurrent {
				st.appliedSeq = s // current: old value plus own writes
			} else {
				st.valid = false // concurrent writers under other locks
			}
		}
		pm.baseSeq = s
		c.releaseLog = append(c.releaseLog, relEntry{pk: pk, seq: s})
		made++
		c.checkDirtyPeerRaces(h.id, pk, d)
	}
	if made > 0 && shouldPrune(len(c.releaseLog)) {
		c.pruneReleaseLog()
	}
	return made
}

// upgradeOrInvalidate performs acquire-side consistency for one page:
// a stale clean copy goes invalid (the next fault pulls the page from
// the home), a stale dirty copy is merged in place — the home's
// current page is fetched, becomes the new twin, and the host's own
// modified words are overlaid (disjoint from the committed words in a
// race-free program).
func (hp *hlrcProtocol) upgradeOrInvalidate(h *Host, pk pageKey, clk *simtime.Clock) {
	c := hp.c
	meta := c.dir.meta(pk.region, pk.page)
	latest := meta.latestSeq()
	st := &h.pages[pk.region][pk.page]
	if !st.valid || st.appliedSeq >= latest {
		return
	}
	if !st.dirty {
		st.valid = false
		return
	}
	own := page.Make(st.twin, st.data)
	c.releasePage(st.twin)
	c.releasePage(st.data)

	data, applied := hp.fetchHomePage(h, pk, meta.owner, clk)
	st = &h.pages[pk.region][pk.page]
	st.twin = c.pagePool.Copy(data)
	st.data = data
	own.Apply(st.data)
	st.appliedSeq = applied
}

// runGCLocked is trivial under HLRC: homes are always current, so the
// pass only prunes stale copies and normalises sequence numbers to
// restore the adaptation invariant (owner valid and current, every
// other copy valid-and-current or absent). No diffs exist, no pulls
// happen, and no time or traffic is charged.
func (hp *hlrcProtocol) runGCLocked(active []HostID) simtime.Seconds {
	c := hp.c
	gcSeq := c.seq
	c.stats.GCs.Add(1)
	for ri := range c.dir.pages {
		r := RegionID(ri)
		for p := range c.dir.pages[ri] {
			pm := &c.dir.pages[ri][p]
			latest := pm.latestSeq()
			for _, h := range c.hosts {
				st := &h.pages[r][p]
				c.releasePage(st.twin)
				st.twin = nil
				st.dirty = false
				switch {
				case h.id == pm.owner:
					if st.data == nil {
						panic(fmt.Sprintf("dsm: hlrc: gc: home %d of page %d/%d holds no copy", pm.owner, r, p))
					}
					st.appliedSeq = gcSeq
				case st.valid && st.appliedSeq >= latest:
					st.appliedSeq = gcSeq
				default:
					c.releasePage(st.data)
					st.data = nil
					st.valid = false
					st.appliedSeq = 0
				}
			}
			pm.clearNotices()
			pm.baseSeq = gcSeq
		}
	}
	c.releaseLog = c.releaseLog[:0]
	return 0
}
