package dsm

import (
	"testing"

	"nowomp/internal/engine"
	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

// TestWriteUnchangedValueCreatesNoDiff exercises the twin-discard path:
// a write that stores the value already present must not generate a
// diff or force readers to refetch on multi-writer pages.
func TestWriteUnchangedValueCreatesNoDiff(t *testing.T) {
	c, clocks := newTestCluster(t, 3, 3)
	r, _ := c.Alloc("a", page.Size)
	// Establish a multi-writer page.
	putU64(c, 0, r.ID, 0, 5, clocks[0])
	putU64(c, 1, r.ID, 8, 6, clocks[1])
	barrier(c, clocks)
	getU64(c, 0, r.ID, 8, clocks[0]) // host 0 becomes current

	created := c.Stats().DiffsCreated.Load()
	// Rewrite the same value: twin made, no diff at the barrier.
	putU64(c, 0, r.ID, 0, 5, clocks[0])
	barrier(c, clocks)
	if got := c.Stats().DiffsCreated.Load() - created; got != 0 {
		t.Fatalf("unchanged write created %d diffs, want 0", got)
	}
}

// TestMultiRegionIndependence checks that pages in different regions
// have independent metadata and ownership.
func TestMultiRegionIndependence(t *testing.T) {
	c, clocks := newTestCluster(t, 3, 3)
	r1, _ := c.Alloc("a", 2*page.Size)
	r2, _ := c.Alloc("b", 2*page.Size)
	putU64(c, 1, r1.ID, 0, 11, clocks[1])
	putU64(c, 2, r2.ID, 0, 22, clocks[2])
	barrier(c, clocks)
	if got := c.PageOwner(r1.ID, 0); got != 1 {
		t.Fatalf("region a page 0 owner = %d, want 1", got)
	}
	if got := c.PageOwner(r2.ID, 0); got != 2 {
		t.Fatalf("region b page 0 owner = %d, want 2", got)
	}
	if got := getU64(c, 0, r1.ID, 0, clocks[0]); got != 11 {
		t.Fatalf("region a reads %d", got)
	}
	if got := getU64(c, 0, r2.ID, 0, clocks[0]); got != 22 {
		t.Fatalf("region b reads %d", got)
	}
}

// TestLeaveAfterHeavySharing runs a conflicted workload, then a leave,
// and checks the post-leave ownership invariant: no page is owned by
// an inactive host and every owner holds a valid copy.
func TestLeaveAfterHeavySharing(t *testing.T) {
	c, clocks := newTestCluster(t, 4, 4)
	r, _ := c.Alloc("a", 6*page.Size)
	for it := 0; it < 5; it++ {
		for h := 0; h < 4; h++ {
			// All hosts write interleaved words across all pages.
			putU64(c, HostID(h), r.ID, (h*8+it*32)%(6*page.Size-8), uint64(it*10+h), clocks[h])
		}
		barrier(c, clocks)
	}
	c.ForceGC(c.ActiveHosts())
	if _, err := c.NormalLeave(2, LeaveViaMaster); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 6; p++ {
		owner := c.PageOwner(r.ID, p)
		if owner == 2 {
			t.Fatalf("page %d still owned by departed host", p)
		}
		if !c.Host(owner).Active() {
			t.Fatalf("page %d owned by inactive host %d", p, owner)
		}
		if !c.Host(owner).Valid(r.ID, p) {
			t.Fatalf("owner %d of page %d holds no valid copy", owner, p)
		}
	}
}

// TestGCWithInactiveStaleHost: a host leaves, its (cleared) state must
// not confuse later GCs, and rejoining mid-era works.
func TestGCLifecycleAcrossLeaveAndRejoin(t *testing.T) {
	c, clocks := newTestCluster(t, 3, 3)
	r, _ := c.Alloc("a", 4*page.Size)
	putU64(c, 2, r.ID, 2*page.Size, 7, clocks[2])
	barrier(c, clocks)
	c.ForceGC(c.ActiveHosts())
	if _, err := c.NormalLeave(2, LeaveViaMaster); err != nil {
		t.Fatal(err)
	}
	// More work and a GC with host 2 gone.
	putU64(c, 1, r.ID, 0, 8, clocks[1])
	barrier(c, []*simtime.Clock{clocks[0], clocks[1], clocks[2]})
	c.ForceGC(c.ActiveHosts())
	// Rejoin and read everything.
	if _, err := c.Join(2); err != nil {
		t.Fatal(err)
	}
	if got := getU64(c, 2, r.ID, 2*page.Size, clocks[2]); got != 7 {
		t.Fatalf("rejoined host reads %d, want 7", got)
	}
	if got := getU64(c, 2, r.ID, 0, clocks[2]); got != 8 {
		t.Fatalf("rejoined host reads %d, want 8", got)
	}
}

// TestBarrierActiveMismatchPanics documents the parked-processes
// contract.
func TestBarrierActiveMismatchPanics(t *testing.T) {
	c, _ := newTestCluster(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched arrivals must panic")
		}
	}()
	c.Barrier([]HostID{0, 1}, []simtime.Seconds{0})
}

// TestConservativeLockGrantFollowsVirtualTime: under the engine, the
// proc that requests a lock later in virtual time must wait for the
// virtually-earlier one even when its coroutine is registered first
// (and so would win any arrival-order race).
func TestConservativeLockGrantFollowsVirtualTime(t *testing.T) {
	c, _ := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)

	early := simtime.NewClock(1.0)
	late := simtime.NewClock(5.0)
	e := engine.New()
	c.BeginPhase(e)
	defer c.EndPhase()

	var order []int
	// The late requester is registered first: registration order must
	// not matter.
	e.Go("late", 1, late, func(*engine.Proc) {
		c.AcquireLock(1, c.Host(1), late)
		order = append(order, 2)
		putU64(c, 1, r.ID, 8, 2, late)
		c.ReleaseLock(1, c.Host(1), late)
	})
	e.Go("early", 0, early, func(*engine.Proc) {
		c.AcquireLock(1, c.Host(0), early)
		order = append(order, 1)
		putU64(c, 0, r.ID, 0, 1, early)
		c.ReleaseLock(1, c.Host(0), early)
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("grant order = %v, want virtual-time order [1 2]", order)
	}
	// The late acquirer's clock must sit after the early release.
	if late.Now() <= 5.0 {
		t.Fatalf("late clock = %v, want advanced past its request by lock costs", late.Now())
	}
}

// TestInstallRegionInvalidatesOtherCopies guards the recovery path.
func TestInstallRegionInvalidatesOtherCopies(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", page.Size)
	putU64(c, 0, r.ID, 0, 1, clocks[0])
	barrier(c, clocks)
	getU64(c, 1, r.ID, 0, clocks[1]) // host 1 caches

	fresh := make([]byte, page.Size)
	fresh[0] = 99
	if err := c.InstallRegion(r, fresh); err != nil {
		t.Fatal(err)
	}
	if got := getU64(c, 1, r.ID, 0, clocks[1]); got != 99 {
		t.Fatalf("host 1 read %d after install, want 99 (stale copy must be dropped)", got)
	}
	if err := c.InstallRegion(r, make([]byte, 7)); err == nil {
		t.Fatal("short install must fail")
	}
}

// TestDumpRegionRequiresCollectedMaster guards the checkpoint path.
func TestDumpRegionRequiresCollectedMaster(t *testing.T) {
	c, clocks := newTestCluster(t, 2, 2)
	r, _ := c.Alloc("a", 2*page.Size)
	putU64(c, 1, r.ID, 0, 3, clocks[1])
	barrier(c, clocks)
	c.ForceGC(c.ActiveHosts())
	// Master's copy of page 0 was pruned (host 1 owns it): dump fails.
	if _, err := c.DumpRegion(r); err == nil {
		t.Fatal("dump without collect must fail")
	}
	c.CollectToMaster()
	data, err := c.DumpRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 3 {
		t.Fatalf("dumped byte = %d, want 3", data[0])
	}
}
