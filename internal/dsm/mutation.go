package dsm

import (
	"fmt"
	"sync/atomic"
)

// Injected coherence mutations: deliberately broken protocol variants
// the scenario fuzzer uses to prove its oracles can detect real
// coherence bugs (and that its shrinker reduces a detection to a
// minimal scenario). Production code never enables a mutation; the
// check on the fault path is a single predictable-branch load of an
// atomic that is zero everywhere outside the fuzzer's self-tests.
//
// The mutations model real bug classes from this codebase's history:
// "drop-newest-diff" reproduces the shape of the stale-twin Tmk bug PR
// 5 fixed (a reader silently misses the newest writer's words — results
// are wrong but deterministic, so only a differential oracle catches
// it), and "fault-panic" stands in for any invariant violation that
// panics mid-run (word-race checks, deadlock diagnostics).

// mutation codes, stored in activeMutation.
const (
	mutationNone int32 = iota
	mutationDropNewestDiff
	mutationFaultPanic
)

var activeMutation atomic.Int32

// InjectCoherenceMutation enables a named protocol defect and returns a
// restore function that disables it again. Supported names:
//
//   - "drop-newest-diff": a Tmk read fault silently discards the
//     highest-sequence diff it should have applied, so the faulting
//     host computes on stale data. Deterministic — repeated runs agree
//     with each other and only cross-protocol or reference comparison
//     exposes the corruption.
//   - "fault-panic": the first Tmk read fault panics, modelling an
//     invariant-check firing mid-run.
//
// Only one mutation is active at a time; the hook is for sequential
// test use (set, run scenarios, restore) and must not be toggled while
// a simulation is in flight.
func InjectCoherenceMutation(name string) (restore func(), err error) {
	var code int32
	switch name {
	case "drop-newest-diff":
		code = mutationDropNewestDiff
	case "fault-panic":
		code = mutationFaultPanic
	default:
		return nil, fmt.Errorf("dsm: unknown coherence mutation %q", name)
	}
	activeMutation.Store(code)
	return func() { activeMutation.Store(mutationNone) }, nil
}
