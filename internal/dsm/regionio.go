package dsm

import (
	"fmt"

	"nowomp/internal/page"
)

// DumpRegion returns the full contents of a region read from the
// master's copies, without protocol traffic or cost. The master must
// hold a valid copy of every page — run CollectToMaster first; this is
// exactly the checkpoint sequence of section 4.3 (GC, collect, write).
func (c *Cluster) DumpRegion(r *Region) ([]byte, error) {
	m := c.Master()
	out := make([]byte, r.Bytes)
	for p := 0; p < r.NPages; p++ {
		st := &m.pages[r.ID][p]
		if !st.valid || st.data == nil {
			return nil, fmt.Errorf("dsm: dump %q: master lacks a valid copy of page %d (run CollectToMaster first)", r.Name, p)
		}
		lo := p * page.Size
		hi := lo + page.Size
		if hi > r.Bytes {
			hi = r.Bytes
		}
		copy(out[lo:hi], st.data[:hi-lo])
	}
	return out, nil
}

// InstallRegion overwrites a region's contents on the master, making
// the master the current owner of every page, without protocol traffic
// or cost. This is the recovery path: after a restart from checkpoint
// all shared state lives at the master and redistributes through
// ordinary page faults.
func (c *Cluster) InstallRegion(r *Region, data []byte) error {
	if len(data) != r.Bytes {
		return fmt.Errorf("dsm: install %q: got %d bytes, want %d", r.Name, len(data), r.Bytes)
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()
	m := c.Master()
	for p := 0; p < r.NPages; p++ {
		st := &m.pages[r.ID][p]
		if st.data == nil {
			st.data = c.newPage()
		}
		lo := p * page.Size
		hi := lo + page.Size
		if hi > r.Bytes {
			hi = r.Bytes
		}
		copy(st.data[:hi-lo], data[lo:hi])
		st.valid = true
		st.dirty = false
		c.releasePage(st.twin)
		st.twin = nil
		st.appliedSeq = c.seq
	}
	for p := 0; p < r.NPages; p++ {
		pm := c.dir.metaLocked(r.ID, p)
		pm.owner = m.id
		pm.mode = ModeSingle
		pm.clearNotices()
		pm.baseSeq = c.seq
		// Any other copies are stale relative to the installed state.
		for _, h := range c.hosts {
			if h.id == m.id {
				continue
			}
			st := &h.pages[r.ID][p]
			c.releasePage(st.data)
			c.releasePage(st.twin)
			*st = pageState{}
		}
	}
	return nil
}
