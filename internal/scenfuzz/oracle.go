package scenfuzz

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"strings"

	"nowomp/internal/scenario"
)

// Oracle names, in the order Check applies them. The shrinker treats
// the oracle name as the failure's identity: a candidate reproduces a
// failure only if the same oracle rejects it.
const (
	OraclePanic         = "panic"          // the run panicked (word race, deadlock, invariant)
	OracleRun           = "run-error"      // a valid spec failed to build or run
	OracleDeterminism   = "determinism"    // Result bytes differ across GOMAXPROCS or reruns
	OracleReference     = "reference"      // checksum differs from the sequential reference
	OracleCrossProtocol = "cross-protocol" // Tmk, HLRC and hybrid disagree on program output
	OracleTransparency  = "transparency"   // adaptive run disagrees with non-adaptive output
)

// Verdict is one spec's oracle outcome. Oracle is empty when every
// oracle passed.
type Verdict struct {
	Spec   scenario.Spec // normalized
	Hash   string
	Oracle string
	Detail string
}

// Failed reports whether any oracle rejected the spec.
func (v Verdict) Failed() bool { return v.Oracle != "" }

// gomaxprocsLevels are the parallelism levels the determinism oracle
// sweeps, mirroring the CI fingerprint gate's -cpu 1,4,16.
var gomaxprocsLevels = []int{1, 4, 16}

// runEncoded runs the spec behind the panic barrier and returns the
// Result with its canonical encoding — the bytes the determinism
// oracle compares and the farm would serve.
func runEncoded(s scenario.Spec) (scenario.Result, []byte, error) {
	res, err := s.RunChecked()
	if err != nil {
		return scenario.Result{}, nil, err
	}
	data, err := res.Encode()
	if err != nil {
		return scenario.Result{}, nil, err
	}
	return res, data, nil
}

// failure classifies a run error: recovered panics get the panic
// oracle, everything else the run oracle.
func failure(v *Verdict, err error) {
	v.Oracle = OracleRun
	if strings.Contains(err.Error(), "panicked") {
		v.Oracle = OraclePanic
	}
	v.Detail = err.Error()
}

// sameBits is bit-exact float equality: the transparency claim is that
// program output is identical, not approximately equal.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Check runs one spec under the full differential-oracle battery:
// determinism across GOMAXPROCS and reruns, checksum versus the
// sequential reference, cross-protocol output equivalence, and — for
// adaptive specs — transparency against the non-adaptive run. It
// normalizes the spec first and reports a run-error verdict if the
// spec is invalid (the generator never produces one; arbitrary fuzz
// inputs are filtered by the caller).
func Check(spec scenario.Spec) Verdict {
	v := Verdict{Spec: spec}
	norm, err := spec.Normalize()
	if err != nil {
		v.Oracle = OracleRun
		v.Detail = "spec does not normalize: " + err.Error()
		return v
	}
	v.Spec = norm
	if v.Hash, err = norm.Hash(); err != nil {
		v.Oracle = OracleRun
		v.Detail = err.Error()
		return v
	}

	base, baseBytes, err := runEncoded(norm)
	if err != nil {
		failure(&v, err)
		return v
	}

	// Determinism: identical spec, identical bytes, whatever the host
	// scheduler's parallelism. The sweep doubles as the rerun check.
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gmp := range gomaxprocsLevels {
		runtime.GOMAXPROCS(gmp)
		_, again, err := runEncoded(norm)
		if err != nil {
			failure(&v, fmt.Errorf("rerun at GOMAXPROCS=%d: %w", gmp, err))
			return v
		}
		if !bytes.Equal(baseBytes, again) {
			v.Oracle = OracleDeterminism
			v.Detail = fmt.Sprintf("Result bytes diverge at GOMAXPROCS=%d (base at %d)", gmp, prev)
			return v
		}
	}
	runtime.GOMAXPROCS(prev)

	// Reference: the parallel checksum is the sequential checksum.
	runner, err := norm.Runner()
	if err != nil {
		failure(&v, err)
		return v
	}
	if ref := runner.Reference(norm.Scale); !sameBits(base.Checksum, ref) {
		v.Oracle = OracleReference
		v.Detail = fmt.Sprintf("checksum %v, sequential reference %v", base.Checksum, ref)
		return v
	}

	// Cross-protocol: the coherence protocol is an implementation
	// detail — traffic and virtual times may differ, program output may
	// not. The equivalence is three-way: whatever protocol the spec
	// names, both counterparts must reproduce its checksum bit for bit.
	for _, proto := range []string{"tmk", "hlrc", "hybrid"} {
		if proto == norm.Protocol {
			continue
		}
		other := norm
		other.Protocol = proto
		otherRes, _, err := runEncoded(other)
		if err != nil {
			failure(&v, fmt.Errorf("%s counterpart: %w", other.Protocol, err))
			return v
		}
		if !sameBits(base.Checksum, otherRes.Checksum) {
			v.Oracle = OracleCrossProtocol
			v.Detail = fmt.Sprintf("%s checksum %v, %s checksum %v",
				norm.Protocol, base.Checksum, other.Protocol, otherRes.Checksum)
			return v
		}
	}

	// Transparency: team churn must not show in the program's output.
	if norm.Adaptive {
		steady := norm
		steady.Adaptive = false
		steady.Schedule = ""
		steady.Policy = ""
		steadyRes, _, err := runEncoded(steady)
		if err != nil {
			failure(&v, fmt.Errorf("non-adaptive counterpart: %w", err))
			return v
		}
		if !sameBits(base.Checksum, steadyRes.Checksum) {
			v.Oracle = OracleTransparency
			v.Detail = fmt.Sprintf("adaptive checksum %v, non-adaptive checksum %v",
				base.Checksum, steadyRes.Checksum)
			return v
		}
	}
	return v
}
