package scenfuzz

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nowomp/internal/dsm"
	"nowomp/internal/scenario"
)

// Self-test: the oracles exist to catch coherence bugs, so prove they
// do. A test-only mutation hook in the dsm package breaks the Tmk
// protocol in controlled ways; the battery must detect the breakage on
// generated scenarios and the shrinker must reduce the failure to a
// minimal spec — two hosts, no traces, no schedule.

var update = flag.Bool("update", false, "rewrite testdata/crashers from a live shrink")

const crasherFile = "drop-newest-diff.json"

// findMutationFailure generates specs from a fixed seed until the
// battery rejects one. The mutation is deterministic, so the first
// failing index is stable for a given seed.
func findMutationFailure(t *testing.T) Verdict {
	t.Helper()
	g := NewGen(11)
	for i := 0; i < 30; i++ {
		v := Check(g.Spec())
		if v.Failed() {
			t.Logf("spec %d caught by oracle %s: %s", i, v.Oracle, v.Detail)
			return v
		}
	}
	t.Fatal("injected drop-newest-diff mutation escaped 30 generated scenarios")
	return Verdict{}
}

func TestInjectedMutationCaughtAndShrunk(t *testing.T) {
	restore, err := dsm.InjectCoherenceMutation("drop-newest-diff")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	v := findMutationFailure(t)
	switch v.Oracle {
	case OracleReference, OracleCrossProtocol, OracleTransparency, OracleDeterminism:
	default:
		t.Fatalf("expected a differential oracle, got %s: %s", v.Oracle, v.Detail)
	}

	sh := Shrink(v, 0)
	t.Logf("shrunk in %d steps (%d attempts) to %+v", sh.Steps, sh.Attempts, sh.Spec)
	min := sh.Spec
	if min.Hosts > 2 {
		t.Errorf("minimal spec keeps %d hosts, want <= 2", min.Hosts)
	}
	if min.Machines != "" || min.Loads != "" || min.Links != "" {
		t.Errorf("minimal spec keeps machine traces: machines=%q loads=%q links=%q", min.Machines, min.Loads, min.Links)
	}
	if min.Schedule != "" || min.Policy != "" {
		t.Errorf("minimal spec keeps adapt inputs: schedule=%q policy=%q", min.Schedule, min.Policy)
	}
	if got := Check(min); got.Oracle != v.Oracle {
		t.Fatalf("minimal spec fails oracle %q, original failed %q", got.Oracle, v.Oracle)
	}

	if *update {
		canon, err := min.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join("testdata", "crashers")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, crasherFile), canon, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated testdata/crashers/%s", crasherFile)
	}

	// Transparency of the hook itself: with the mutation restored the
	// minimal spec must pass the whole battery.
	restore()
	if got := Check(min); got.Failed() {
		t.Fatalf("minimal spec still fails after restore: %s %s", got.Oracle, got.Detail)
	}
}

// TestCommittedCrasherReplay replays the committed minimal reproducer:
// healthy code passes it, the mutation is caught by it. This is the
// regression face of the self-test — if a refactor ever makes the
// oracles blind to this bug class, this test fails without needing the
// generator at all.
func TestCommittedCrasherReplay(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "crashers", crasherFile))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(spec); v.Failed() {
		t.Fatalf("committed crasher fails on healthy code: %s %s", v.Oracle, v.Detail)
	}
	restore, err := dsm.InjectCoherenceMutation("drop-newest-diff")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	if v := Check(spec); !v.Failed() {
		t.Fatal("drop-newest-diff mutation escaped the committed crasher spec")
	}
}

// TestPanicOracle checks the crash face: a protocol that panics
// mid-run must surface as a panic verdict (not kill the process) and
// shrink to a minimal multi-host spec.
func TestPanicOracle(t *testing.T) {
	restore, err := dsm.InjectCoherenceMutation("fault-panic")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	spec := scenario.Spec{Kernel: "gauss", Scale: 0.03, Procs: 3, Hosts: 4, Protocol: "tmk"}
	v := Check(spec)
	if v.Oracle != OraclePanic {
		t.Fatalf("oracle = %q (%s), want %q", v.Oracle, v.Detail, OraclePanic)
	}
	if !strings.Contains(v.Detail, "injected fault-panic") {
		t.Errorf("detail %q does not name the injected fault", v.Detail)
	}
	sh := Shrink(v, 60)
	if sh.Spec.Hosts > 2 || sh.Spec.Procs > 2 {
		t.Errorf("minimal panic spec is %dp/%dh, want <= 2p/2h", sh.Spec.Procs, sh.Spec.Hosts)
	}
}

// TestInjectMutationValidation pins the hook's error path: unknown
// mutation names must be rejected so a typo in a test cannot silently
// run with a healthy protocol.
func TestInjectMutationValidation(t *testing.T) {
	if _, err := dsm.InjectCoherenceMutation("no-such-mutation"); err == nil {
		t.Fatal("unknown mutation name was accepted")
	}
}
