package scenfuzz

import (
	"encoding/json"
	"fmt"
	"io"

	"nowomp/internal/scenario"
)

// Batch mode: generate -count specs from -seed, run each under the
// oracle battery, shrink every failure, and report. The report is a
// pure function of (seed, count): same seed, same specs, same
// verdicts, same minimal reproducers — which is what lets CI diff two
// runs as a determinism gate.

// BatchOptions configures one batch run.
type BatchOptions struct {
	// Seed seeds the generator (default 1999).
	Seed int64
	// Count is how many specs to generate and check (default 25).
	Count int
	// ShrinkBudget caps the shrink cost per failure
	// (DefaultShrinkBudget when zero); negative disables shrinking.
	ShrinkBudget int
	// FullScale mixes each kernel's near-1.0 scale points into the
	// generator grid (about one spec in three), verifying the oracle
	// battery at the paper's real problem sizes. Expect seconds to
	// minutes per full-scale spec.
	FullScale bool
	// Progress receives one line per spec (nil = silent). Progress
	// lines carry no wall-clock timing, keeping the stream
	// byte-deterministic.
	Progress io.Writer
}

// Failure is one oracle rejection with its minimal reproducer.
type Failure struct {
	Index  int           `json:"index"`
	Spec   scenario.Spec `json:"spec"`
	Hash   string        `json:"hash"`
	Oracle string        `json:"oracle"`
	Detail string        `json:"detail"`
	// Minimal is the shrunk spec, MinimalHash its content address and
	// ShrinkSteps how many reductions the shrinker accepted. When
	// shrinking is disabled Minimal equals Spec.
	Minimal     scenario.Spec `json:"minimal"`
	MinimalHash string        `json:"minimal_hash"`
	ShrinkSteps int           `json:"shrink_steps"`
}

// Report is a batch run's outcome.
type Report struct {
	Seed     int64     `json:"seed"`
	Count    int       `json:"count"`
	Passed   int       `json:"passed"`
	Failures []Failure `json:"failures"`
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.Seed == 0 {
		o.Seed = 1999
	}
	if o.Count <= 0 {
		o.Count = 25
	}
	return o
}

// Batch runs the deterministic batch harness.
func Batch(opt BatchOptions) Report {
	opt = opt.withDefaults()
	g := NewGen(opt.Seed)
	if opt.FullScale {
		g = NewGenFullScale(opt.Seed)
	}
	rep := Report{Seed: opt.Seed, Count: opt.Count}
	logf := func(format string, args ...any) {
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, format+"\n", args...)
		}
	}
	for i := 0; i < opt.Count; i++ {
		spec := g.Spec()
		v := Check(spec)
		if !v.Failed() {
			rep.Passed++
			logf("spec %3d pass %s %s/%dp/%dh scale %g", i, short(v.Hash), v.Spec.Kernel, v.Spec.Procs, v.Spec.Hosts, v.Spec.Scale)
			continue
		}
		f := Failure{Index: i, Spec: v.Spec, Hash: v.Hash, Oracle: v.Oracle, Detail: v.Detail,
			Minimal: v.Spec, MinimalHash: v.Hash}
		logf("spec %3d FAIL %s oracle=%s %s", i, short(v.Hash), v.Oracle, v.Detail)
		if opt.ShrinkBudget >= 0 {
			sh := Shrink(v, opt.ShrinkBudget)
			f.Minimal, f.MinimalHash, f.ShrinkSteps = sh.Spec, sh.Hash, sh.Steps
			if min, err := json.Marshal(sh.Spec); err == nil {
				logf("         shrunk in %d steps to %s %s", sh.Steps, short(sh.Hash), min)
			}
		}
		rep.Failures = append(rep.Failures, f)
	}
	return rep
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
