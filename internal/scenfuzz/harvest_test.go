package scenfuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestHarvestFullScaleCorpus is the harvest tool behind the committed
// near-1.0 corpus entries: it walks the full-scale generator stream,
// picks the first few near-1.0 specs on the cheap task kernels (the
// full oracle battery on the array kernels at scale 1.0 costs minutes
// per entry — too slow for corpus replay), runs each through the
// battery, and writes the passing canonical encodings to
// testdata/corpus. Gated behind SCENFUZZ_HARVEST=1 so plain `go test`
// never rewrites testdata; run manually when regenerating the corpus.
func TestHarvestFullScaleCorpus(t *testing.T) {
	if os.Getenv("SCENFUZZ_HARVEST") != "1" {
		t.Skip("harvest tool; set SCENFUZZ_HARVEST=1 to run")
	}
	cheap := map[string]bool{"quadrature": true, "mergesort": true}
	g := NewGenFullScale(1999)
	picked := 0
	for i := 0; i < 400 && picked < 3; i++ {
		s := g.Spec()
		if s.Scale < 0.9 || !cheap[s.Kernel] {
			continue
		}
		v := Check(s)
		if v.Failed() {
			t.Fatalf("full-scale spec %d failed oracle %s: %s\nspec: %+v", i, v.Oracle, v.Detail, s)
		}
		canon, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("%s-fullscale-%g-%dp%dh.json", s.Kernel, s.Scale, s.Procs, s.Hosts)
		path := filepath.Join("testdata", "corpus", name)
		if err := os.WriteFile(path, canon, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("harvested %s (stream index %d, hash %s)", name, i, short(v.Hash))
		picked++
	}
	if picked < 2 {
		t.Fatalf("only %d cheap near-1.0 specs in the stream prefix", picked)
	}
}

// TestHarvestHybridCorpus is the harvest tool behind the committed
// hybrid-protocol corpus entries: it walks the default batch stream
// (the seed the CI batch gate replays), picks the first few hybrid
// specs, runs each through the full battery — which includes the
// three-way cross-protocol oracle — and writes the passing canonical
// encodings to testdata/corpus. Gated like the full-scale harvest.
func TestHarvestHybridCorpus(t *testing.T) {
	if os.Getenv("SCENFUZZ_HARVEST") != "1" {
		t.Skip("harvest tool; set SCENFUZZ_HARVEST=1 to run")
	}
	g := NewGen(1999)
	picked := 0
	for i := 0; i < 200 && picked < 2; i++ {
		s := g.Spec()
		if s.Protocol != "hybrid" {
			continue
		}
		v := Check(s)
		if v.Failed() {
			t.Fatalf("hybrid spec %d failed oracle %s: %s\nspec: %+v", i, v.Oracle, v.Detail, s)
		}
		canon, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		kind := "steady"
		if s.Adaptive {
			kind = "churn"
		}
		name := fmt.Sprintf("%s-hybrid-%s-%dp%dh.json", s.Kernel, kind, s.Procs, s.Hosts)
		path := filepath.Join("testdata", "corpus", name)
		if err := os.WriteFile(path, canon, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("harvested %s (stream index %d, hash %s)", name, i, short(v.Hash))
		picked++
	}
	if picked < 2 {
		t.Fatalf("only %d hybrid specs in the stream prefix", picked)
	}
}
