package scenfuzz

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nowomp/internal/scenario"
)

// fuzzMaxScale / fuzzMaxHosts bound what the native fuzz target will
// simulate: arbitrary mutated inputs may describe arbitrarily large
// (but valid) scenarios, and the fuzz loop needs every accepted run to
// finish in tens of milliseconds. Specs beyond the bound still went
// through Decode and Normalize, so the parse/canonicalize surface is
// fuzzed at full width even when the simulation is skipped.
const (
	fuzzMaxScale = 0.1
	fuzzMaxHosts = 12
)

// corpusSpecs reads every committed corpus entry (canonical spec JSON).
func corpusSpecs(t testing.TB) map[string][]byte {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus entries under testdata/corpus")
	}
	out := make(map[string][]byte, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(f)] = data
	}
	return out
}

// FuzzScenario is the native fuzz face of the harness: a corpus entry
// is the canonical JSON of a scenario spec. Any input that decodes and
// normalizes into a small-enough scenario runs the full differential
// oracle battery; a failure is shrunk before reporting so the crash
// artifact already names the minimal reproducer.
func FuzzScenario(f *testing.F) {
	for _, data := range corpusSpecs(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scenario.Decode(data)
		if err != nil {
			return // malformed JSON or unknown fields: rejected is fine
		}
		norm, err := s.Normalize()
		if err != nil {
			return // invalid spec: rejected is fine
		}
		if norm.Scale > fuzzMaxScale || norm.Hosts > fuzzMaxHosts {
			return // valid but too expensive for the fuzz loop
		}
		v := Check(norm)
		if v.Failed() {
			sh := Shrink(v, 0)
			min, _ := json.Marshal(sh.Spec)
			t.Fatalf("oracle %s rejected scenario %s\ndetail: %s\nminimal reproducer (hash %s): %s",
				v.Oracle, v.Hash, v.Detail, sh.Hash, min)
		}
	})
}
