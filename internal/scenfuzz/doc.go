// Package scenfuzz fuzzes the simulator itself: a seeded generator
// composes random valid scenario.Specs — kernel x scale x team x
// machine speed/load traces x link scales x adapt schedules/policies x
// loop schedules x protocol — and runs each one under differential
// oracles that encode the paper's transparency claim:
//
//   - determinism: an identical spec produces a bit-identical Result
//     across GOMAXPROCS 1/4/16 and repeated runs;
//   - cross-protocol equivalence: Tmk and HLRC produce identical
//     program output (simulated times and traffic may differ, payload
//     results may not);
//   - transparency: an adaptive run (leave/join mid-execution) matches
//     the non-adaptive run's program output;
//   - reference: the parallel checksum equals the sequential
//     reference's, bit for bit;
//   - no panics: race-free kernels never trip a word-race check or the
//     engine's deadlock diagnostic.
//
// On failure the harness delta-debugs the spec down to a minimal
// reproducer — dropping hosts, flattening traces, shrinking scale,
// stripping adapt events, reverting fields to defaults — and reports
// the minimal spec plus its content hash, so any finding becomes a
// one-line testdata regression.
//
// The harness is wired three ways: a native `go test -fuzz` target
// (FuzzScenario, corpus entries are canonical spec JSON), a
// deterministic batch mode (Batch; cmd/nowomp-fuzz exposes -seed and
// -count for CI), and the committed corpus under testdata/ replayed as
// ordinary regression tests. The dsm package's injected coherence
// mutations prove the oracles detect real bug classes and that the
// shrinker reduces a detection to a two-host reproducer.
package scenfuzz
