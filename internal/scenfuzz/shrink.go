package scenfuzz

import (
	"strings"

	"nowomp/internal/adapt"
	"nowomp/internal/scenario"
)

// Delta-debugging shrinker: given a failing verdict, greedily apply
// the first candidate reduction that still fails the same oracle, and
// repeat until no reduction survives (or the check budget runs out).
// Reductions are ordered cheapest-win first — shrink the scale, drop
// processes and hosts, strip adapt events, flatten traces, revert
// fields to defaults — so the minimal reproducer is also the fastest
// to re-run as a committed regression.

// DefaultShrinkBudget bounds the oracle batteries one shrink may spend.
const DefaultShrinkBudget = 200

// ShrinkResult is the minimal reproducer the shrinker reached.
type ShrinkResult struct {
	Spec scenario.Spec
	Hash string
	// Attempts counts the oracle batteries spent, Steps the accepted
	// reductions.
	Attempts int
	Steps    int
}

// shrinkScales is the scale ladder, smallest first.
var shrinkScales = []float64{0.01, 0.02, 0.03, 0.05}

// candidates proposes one-step reductions of s, most valuable first.
// Every candidate is structurally valid (the caller still filters
// through Normalize before running it).
func candidates(s scenario.Spec) []scenario.Spec {
	var out []scenario.Spec
	try := func(mut func(*scenario.Spec)) {
		c := s
		mut(&c)
		out = append(out, c)
	}

	for _, sc := range shrinkScales {
		if sc < s.Scale {
			try(func(c *scenario.Spec) { c.Scale = sc })
		}
	}
	if s.Kernel != "jacobi" {
		try(func(c *scenario.Spec) { c.Kernel = "jacobi" })
	}
	for p := 1; p < s.Procs; p++ {
		p := p
		try(func(c *scenario.Spec) { c.Procs = p })
	}
	for h := s.Procs; h < s.Hosts; h++ {
		h := h
		try(func(c *scenario.Spec) { c.Hosts = h })
	}
	if s.Schedule != "" {
		try(func(c *scenario.Spec) { c.Schedule = "" })
		if events, err := adapt.ParseSchedule(s.Schedule); err == nil && len(events) > 1 {
			for i := range events {
				rest := make([]adapt.Event, 0, len(events)-1)
				rest = append(rest, events[:i]...)
				rest = append(rest, events[i+1:]...)
				sched := adapt.FormatSchedule(rest)
				try(func(c *scenario.Spec) { c.Schedule = sched })
			}
		}
	}
	if s.Policy != "" {
		try(func(c *scenario.Spec) { c.Policy = "" })
	}
	if s.Loads != "" && s.Policy == "" {
		try(func(c *scenario.Spec) { c.Loads = "" })
	}
	for _, c := range dropListItems(s.Loads, ";") {
		if c != "" || s.Policy == "" {
			c := c
			try(func(cc *scenario.Spec) { cc.Loads = c })
		}
	}
	// Flatten traces: truncate each machine's trace to its first step.
	if s.Loads != "" {
		entries := strings.Split(s.Loads, ";")
		for i, e := range entries {
			id, steps, ok := strings.Cut(e, "=")
			if !ok || !strings.Contains(steps, ",") {
				continue
			}
			flat := append([]string(nil), entries...)
			flat[i] = id + "=" + steps[:strings.Index(steps, ",")]
			spec := strings.Join(flat, ";")
			try(func(c *scenario.Spec) { c.Loads = spec })
		}
	}
	if s.Machines != "" {
		try(func(c *scenario.Spec) { c.Machines = "" })
		for _, c := range dropListItems(s.Machines, ",") {
			c := c
			try(func(cc *scenario.Spec) { cc.Machines = c })
		}
	}
	if s.Links != "" {
		try(func(c *scenario.Spec) { c.Links = "" })
		for _, c := range dropListItems(s.Links, ";") {
			c := c
			try(func(cc *scenario.Spec) { cc.Links = c })
		}
	}
	if s.Adaptive && s.Schedule == "" && s.Policy == "" {
		try(func(c *scenario.Spec) { c.Adaptive = false })
	}
	if s.Grace != 0 && s.Grace != 3 {
		try(func(c *scenario.Spec) { c.Grace = 0 })
	}
	if s.Verify {
		try(func(c *scenario.Spec) { c.Verify = false })
	}
	if s.Protocol != "tmk" && s.Protocol != "" {
		try(func(c *scenario.Spec) { c.Protocol = "tmk" })
	}
	return out
}

// dropListItems returns sep-joined copies of list each missing one
// item (only when the list has two or more).
func dropListItems(list, sep string) []string {
	if list == "" {
		return nil
	}
	items := strings.Split(list, sep)
	if len(items) < 2 {
		return nil
	}
	out := make([]string, 0, len(items))
	for i := range items {
		rest := make([]string, 0, len(items)-1)
		rest = append(rest, items[:i]...)
		rest = append(rest, items[i+1:]...)
		out = append(out, strings.Join(rest, sep))
	}
	return out
}

// Shrink reduces a failing verdict's spec to a minimal spec that still
// fails the same oracle. budget caps the oracle batteries spent
// (DefaultShrinkBudget when zero). The result carries the minimal
// spec's content hash, ready to commit as a testdata regression.
func Shrink(v Verdict, budget int) ShrinkResult {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	cur := v.Spec
	res := ShrinkResult{}
	for res.Attempts < budget {
		accepted := false
		for _, cand := range candidates(cur) {
			norm, err := cand.Normalize()
			if err != nil {
				continue // constraint violated (e.g. event host out of pool)
			}
			if res.Attempts >= budget {
				break
			}
			res.Attempts++
			if Check(norm).Oracle == v.Oracle {
				cur = norm
				res.Steps++
				accepted = true
				break
			}
		}
		if !accepted {
			break
		}
	}
	if norm, err := cur.Normalize(); err == nil {
		cur = norm
	}
	res.Spec = cur
	res.Hash, _ = cur.Hash()
	return res
}
