package scenfuzz

import (
	"bytes"
	"reflect"
	"testing"

	"nowomp/internal/scenario"
)

// TestCorpusReplay replays every committed corpus entry through the
// full oracle battery as an ordinary deterministic regression test —
// the corpus is useful under plain `go test`, not only under -fuzz.
func TestCorpusReplay(t *testing.T) {
	for name, data := range corpusSpecs(t) {
		t.Run(name, func(t *testing.T) {
			s, err := scenario.Decode(data)
			if err != nil {
				t.Fatalf("corpus entry does not decode: %v", err)
			}
			v := Check(s)
			if v.Failed() {
				t.Fatalf("oracle %s rejected committed corpus spec: %s", v.Oracle, v.Detail)
			}
			// Corpus entries are stored canonical: re-encoding must
			// reproduce the committed bytes exactly.
			canon, err := s.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, data) {
				t.Fatalf("corpus entry is not in canonical form:\n  committed: %s\n  canonical: %s", data, canon)
			}
		})
	}
}

// TestGeneratorValidAndDiverse checks the generator's two contracts:
// every spec normalizes (valid by construction) and the stream covers
// the interesting axes — kernels, both protocols, heterogeneity,
// adaptivity. No simulations run here; this is cheap.
func TestGeneratorValidAndDiverse(t *testing.T) {
	g := NewGen(3)
	kernelsSeen := map[string]bool{}
	protocols := map[string]bool{}
	var adaptive, hetero, multiProc int
	const n = 200
	for i := 0; i < n; i++ {
		s := g.Spec()
		if _, err := s.Normalize(); err != nil {
			t.Fatalf("generated spec %d does not normalize: %v\nspec: %+v", i, err, s)
		}
		kernelsSeen[s.Kernel] = true
		protocols[s.Protocol] = true
		if s.Adaptive {
			adaptive++
		}
		if s.Machines != "" || s.Loads != "" || s.Links != "" {
			hetero++
		}
		if s.Procs > 1 {
			multiProc++
		}
	}
	if len(kernelsSeen) < len(kernels) {
		t.Errorf("only %d of %d kernels drawn in %d specs: %v", len(kernelsSeen), len(kernels), n, kernelsSeen)
	}
	if !protocols["tmk"] || !protocols["hlrc"] || !protocols["hybrid"] {
		t.Errorf("protocol coverage incomplete: %v", protocols)
	}
	if adaptive == 0 || hetero == 0 {
		t.Errorf("no adaptive (%d) or heterogeneous (%d) specs in %d draws", adaptive, hetero, n)
	}
	if multiProc < n/2 {
		t.Errorf("only %d/%d specs are multi-process", multiProc, n)
	}
}

// TestGeneratorFullScaleGrid checks the opt-in full-scale mode: the
// stream stays valid by construction, mixes in near-1.0 scale points
// at a usable rate, and still covers the small grids. No simulations
// run here.
func TestGeneratorFullScaleGrid(t *testing.T) {
	g := NewGenFullScale(7)
	big, small := 0, 0
	const n = 200
	for i := 0; i < n; i++ {
		s := g.Spec()
		if _, err := s.Normalize(); err != nil {
			t.Fatalf("full-scale spec %d does not normalize: %v\nspec: %+v", i, err, s)
		}
		if s.Scale >= 0.9 {
			big++
		} else {
			small++
		}
	}
	if big == 0 || small == 0 {
		t.Errorf("full-scale stream unbalanced in %d draws: %d near-1.0, %d small", n, big, small)
	}
	// The default generator must be untouched by the full-scale grids:
	// same seed, same spec stream as always (the batch reproducibility
	// contract), and never a near-1.0 draw.
	d := NewGen(7)
	for i := 0; i < n; i++ {
		if s := d.Spec(); s.Scale >= 0.9 {
			t.Fatalf("default generator drew full-scale spec %d: %+v", i, s)
		}
	}
}

// TestBatchDeterministic runs the batch harness twice with the same
// seed and demands identical reports and identical progress bytes —
// the contract the CLI's CI determinism gate diffs for.
func TestBatchDeterministic(t *testing.T) {
	run := func() (Report, []byte) {
		var buf bytes.Buffer
		rep := Batch(BatchOptions{Seed: 5, Count: 4, Progress: &buf})
		return rep, buf.Bytes()
	}
	rep1, out1 := run()
	rep2, out2 := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("same seed, different reports:\n  first:  %+v\n  second: %+v", rep1, rep2)
	}
	if !bytes.Equal(out1, out2) {
		t.Errorf("same seed, different progress output:\n  first:\n%s\n  second:\n%s", out1, out2)
	}
	if rep1.Count != 4 || rep1.Passed+len(rep1.Failures) != 4 {
		t.Errorf("report does not account for every spec: %+v", rep1)
	}
}
