package scenfuzz

import (
	"bytes"
	"testing"

	"nowomp/internal/dsm"
)

// TestCoalescingBatchTransparent is the scenario-level half of the
// coalescing differential gate: a 50-spec generated batch — kernels,
// protocols, heterogeneity, adaptation schedules, the full generator
// surface — must produce byte-identical canonical Result encodings
// (virtual times, fabric bytes, messages, checksums) with metadata
// pruning force-enabled and disabled. The golden kernel matrix in
// internal/bench covers the fixed cells; this covers the randomized
// corner cases.
func TestCoalescingBatchTransparent(t *testing.T) {
	const specs = 50
	restore := dsm.SetCoalescing(dsm.CoalesceOff)
	defer restore()

	g := NewGen(1999)
	for i := 0; i < specs; i++ {
		spec := g.Spec()
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatalf("spec %d does not normalize: %v", i, err)
		}

		dsm.SetCoalescing(dsm.CoalesceOff)
		_, off, errOff := runEncoded(norm)
		dsm.SetCoalescing(dsm.CoalesceForce)
		_, force, errForce := runEncoded(norm)

		if (errOff == nil) != (errForce == nil) {
			t.Fatalf("spec %d (%s/%dp scale %g): off err %v, force err %v",
				i, norm.Kernel, norm.Procs, norm.Scale, errOff, errForce)
		}
		if errOff != nil {
			t.Fatalf("spec %d (%s/%dp scale %g) failed to run: %v",
				i, norm.Kernel, norm.Procs, norm.Scale, errOff)
		}
		if !bytes.Equal(off, force) {
			t.Errorf("spec %d (%s/%dp/%s scale %g): Result encodings diverge between coalescing off and force:\n  off:   %s\n  force: %s",
				i, norm.Kernel, norm.Procs, norm.Protocol, norm.Scale, off, force)
		}
	}
}
