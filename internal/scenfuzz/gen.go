package scenfuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"nowomp/internal/scenario"
)

// Gen is the seeded scenario generator. Every draw comes from one
// rand.Rand, so a seed fully determines the spec sequence — the batch
// mode's reproducibility contract. Specs are valid by construction
// (Normalize must accept every generated spec; a rejection is a
// generator bug the harness reports as such) and sized so one oracle
// battery stays in the tens-of-milliseconds range — unless full-scale
// mode widens the grid, see NewGenFullScale.
type Gen struct {
	rng       *rand.Rand
	fullScale bool
}

// NewGen returns a generator seeded with seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// NewGenFullScale returns a generator whose scale grid additionally
// includes each kernel's near-1.0 points (drawn for roughly one spec
// in three): the batch mode that verifies the oracle battery at the
// paper's real problem sizes. Full-scale batteries take seconds to
// minutes per spec, so this generator is opt-in (the tool's -fullscale
// flag) rather than the fuzz/batch default.
func NewGenFullScale(seed int64) *Gen {
	g := NewGen(seed)
	g.fullScale = true
	return g
}

// kernels lists every runnable kernel with the scale grids the
// generator samples for it: scales keeps the cost of one run small and
// gives the shrinker a ladder to descend; fullScales are the near-1.0
// points full-scale mode mixes in.
var kernels = []struct {
	name       string
	scales     []float64
	fullScales []float64
}{
	{"jacobi", []float64{0.02, 0.03, 0.05, 0.08}, []float64{0.9, 1.0}},
	{"gauss", []float64{0.02, 0.03, 0.05, 0.08}, []float64{0.9, 1.0}},
	{"fft3d", []float64{0.02, 0.03, 0.05}, []float64{0.9, 1.0}},
	{"nbf", []float64{0.02, 0.03, 0.05}, []float64{0.9, 1.0}},
	{"mergesort", []float64{0.02, 0.04, 0.06}, []float64{0.9, 1.0}},
	{"quadrature", []float64{0.02, 0.04, 0.06}, []float64{0.9, 1.0}},
}

func (g *Gen) pickF(vals []float64) float64 { return vals[g.rng.Intn(len(vals))] }
func (g *Gen) chance(n int) bool            { return g.rng.Intn(n) == 0 }

// distinctIDs draws k distinct machine ids from [lo, hosts), ascending.
func (g *Gen) distinctIDs(k, lo, hosts int) []int {
	if hosts-lo <= 0 {
		return nil
	}
	seen := map[int]bool{}
	for len(seen) < k && len(seen) < hosts-lo {
		seen[lo+g.rng.Intn(hosts-lo)] = true
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// machinesSpec draws a per-machine speed spec.
func (g *Gen) machinesSpec(hosts int) string {
	speeds := []float64{0.25, 0.5, 2, 4}
	var parts []string
	for _, id := range g.distinctIDs(1+g.rng.Intn(3), 0, hosts) {
		parts = append(parts, fmt.Sprintf("%d=%s", id, ftoa(g.pickF(speeds))))
	}
	return strings.Join(parts, ",")
}

// loadsSpec draws piecewise-constant load traces for one or two
// machines: strictly ascending step times, loads spanning idle to
// heavily shared.
func (g *Gen) loadsSpec(hosts int) string {
	loads := []float64{0, 0.5, 1, 2, 3}
	starts := []float64{0, 0.02, 0.05, 0.1}
	incs := []float64{0.05, 0.1, 0.25, 0.5}
	var entries []string
	for _, id := range g.distinctIDs(1+g.rng.Intn(2), 0, hosts) {
		t := g.pickF(starts)
		var steps []string
		for n := 1 + g.rng.Intn(3); n > 0; n-- {
			steps = append(steps, fmt.Sprintf("%s@%s", ftoa(g.pickF(loads)), ftoa(t)))
			t += g.pickF(incs)
		}
		entries = append(entries, fmt.Sprintf("%d=%s", id, strings.Join(steps, ",")))
	}
	return strings.Join(entries, ";")
}

// linksSpec draws one or two non-default duplex link overrides.
func (g *Gen) linksSpec(hosts int) string {
	if hosts < 2 {
		return ""
	}
	lats := []float64{2, 4, 8}
	bws := []float64{0.25, 0.5, 1}
	var entries []string
	for n := 1 + g.rng.Intn(2); n > 0; n-- {
		a := g.rng.Intn(hosts - 1)
		b := a + 1 + g.rng.Intn(hosts-a-1)
		entries = append(entries, fmt.Sprintf("%d-%d=lat:%s,bw:%s",
			a, b, ftoa(g.pickF(lats)), ftoa(g.pickF(bws))))
	}
	return strings.Join(entries, ";")
}

// scheduleSpec draws one to three join/leave events over the non-master
// hosts, with an occasional per-leave grace override.
func (g *Gen) scheduleSpec(hosts int) string {
	if hosts < 2 {
		return ""
	}
	times := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	var events []string
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		host := 1 + g.rng.Intn(hosts-1)
		kind := "leave"
		if g.chance(2) {
			kind = "join"
		}
		ev := fmt.Sprintf("%s:%s:%d", ftoa(g.pickF(times)), kind, host)
		if kind == "leave" && g.chance(4) {
			ev += ":grace=" + ftoa(g.pickF([]float64{0.5, 1}))
		}
		events = append(events, ev)
	}
	return strings.Join(events, ",")
}

// policySpec draws a load policy; the value sets guarantee low < high.
func (g *Gen) policySpec() string {
	s := fmt.Sprintf("high=%s,low=%s",
		ftoa(g.pickF([]float64{1, 1.5, 2})), ftoa(g.pickF([]float64{0, 0.25, 0.5})))
	if g.chance(2) {
		s += ",dwell=" + ftoa(g.pickF([]float64{0.1, 0.5, 1}))
	}
	return s
}

// Spec draws one random valid scenario.
func (g *Gen) Spec() scenario.Spec {
	k := kernels[g.rng.Intn(len(kernels))]
	procs := 1 + g.rng.Intn(5)
	hosts := procs + g.rng.Intn(4)

	scales := k.scales
	if g.fullScale && g.chance(3) {
		scales = k.fullScales
	}
	s := scenario.Spec{
		Kernel: k.name,
		Scale:  g.pickF(scales),
		Procs:  procs,
		Hosts:  hosts,
		Verify: g.chance(3),
	}
	switch g.rng.Intn(3) {
	case 0:
		s.Protocol = "tmk"
	case 1:
		s.Protocol = "hlrc"
	default:
		s.Protocol = "hybrid"
	}
	if g.chance(2) {
		s.Machines = g.machinesSpec(hosts)
	}
	if g.chance(2) {
		s.Loads = g.loadsSpec(hosts)
	}
	if g.chance(3) {
		s.Links = g.linksSpec(hosts)
	}
	if hosts >= 2 && g.chance(2) {
		s.Adaptive = true
		if !g.chance(3) {
			s.Schedule = g.scheduleSpec(hosts)
		}
		if s.Loads != "" && g.chance(2) {
			s.Policy = g.policySpec()
		}
		if g.chance(3) {
			s.Grace = g.pickF([]float64{0.5, 1.5})
		}
	}
	return s
}
