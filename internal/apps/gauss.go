package apps

import (
	"fmt"

	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// GaussConfig parameterises Gaussian elimination (without pivoting, as
// in the paper's simple numerical kernel) over an NxN float32 matrix.
// The paper runs 3072x3072, one elimination step per parallel
// construct, so there are N adaptation points.
type GaussConfig struct {
	N int
	// CostPerElem is the calibrated per-element-update compute charge.
	CostPerElem simtime.Seconds
}

// DefaultGauss returns the paper's Table 1 configuration.
func DefaultGauss() GaussConfig {
	return GaussConfig{N: 3072, CostPerElem: GaussCostPerElem}
}

// Scaled shrinks the matrix linearly; scale 1.0 is the paper's size.
// N is kept a multiple of 512 so rows stay 2 KB multiples: at the
// paper's 3072 a row is exactly three pages, which is why its Gauss
// shows zero diffs (block partitions are page-aligned); scaled runs
// preserve that property for power-of-two team sizes.
func (c GaussConfig) Scaled(s float64) GaussConfig {
	n := scaleDim(c.N, s, 512)
	n = (n + 256) / 512 * 512
	if n < 512 {
		n = 512
	}
	c.N = n
	return c
}

func (c GaussConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("apps: gauss needs N >= 2, got %d", c.N)
	}
	return nil
}

// gaussInit gives the deterministic, diagonally dominant initial
// matrix, so elimination without pivoting is numerically stable.
func gaussInit(i, j, n int) float32 {
	d := i - j
	if d < 0 {
		d = -d
	}
	v := float32(1) / float32(d+1)
	if i == j {
		v += float32(n)
	}
	return v
}

// RunGauss executes the kernel: at step k, every process eliminates
// column k from its own block of rows below k, reading the pivot row
// from its owner. Row ownership is stable across steps (the iteration
// space is always the full row range with a guard), which is why the
// paper's Gauss shows pure single-writer behaviour: full-page pivot
// fetches and zero diffs.
func RunGauss(rt *omp.Runtime, cfg GaussConfig) (Result, error) {
	if cfg.CostPerElem == 0 {
		cfg.CostPerElem = GaussCostPerElem
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := cfg.N
	a, err := omp.AllocMatrix[float32](rt, "gauss.a", n, n)
	if err != nil {
		return Result{}, err
	}
	procs := rt.NProcs()

	rt.For("gauss.init", 0, n, func(p *omp.Proc, lo, hi int) {
		row := make([]float32, n)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				row[j] = gaussInit(i, j, n)
			}
			a.WriteRow(p.Mem(), i, row)
		}
		p.ChargeUnits((hi-lo)*n, InitCostPerElement)
	})

	for k := 0; k < n-1; k++ {
		k := k
		rt.For("gauss.elim", 0, n, func(p *omp.Proc, lo, hi int) {
			if hi <= k+1 {
				return // all of this block is already triangularised
			}
			if lo < k+1 {
				lo = k + 1
			}
			width := n - k
			pivot := make([]float32, width)
			a.ReadRowRange(p.Mem(), k, k, n, pivot)
			for i := lo; i < hi; i++ {
				// Eliminate in place, span by span: WriteRowSpan faults
				// the row in and twins it exactly as the staged
				// read-then-write pair did, but the update runs directly
				// on page memory with no decode/encode round trip.
				var m float32
				for j := k; j < n; {
					s := a.WriteRowSpan(p.Mem(), i, j, n)
					// Slice the pivot window to exactly len(s) so the
					// element loop runs without bounds checks.
					pv := pivot[j-k : j-k+len(s)]
					q := 0
					if j == k {
						m = s[0] / pv[0]
						s[0] = 0
						q = 1
					}
					s2 := s[q:]
					pv2 := pv[q:][:len(s2)]
					for idx := range s2 {
						s2[idx] -= m * pv2[idx]
					}
					j += len(s)
				}
			}
			p.ChargeUnits((hi-lo)*width, cfg.CostPerElem)
		})
	}

	// Timing and traffic are measured at the end of the computation;
	// the verification checksum below is outside the paper's window.
	res := measure(rt, "gauss", procs)
	mp := rt.MasterProc()
	row := make([]float32, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		a.ReadRow(mp.Mem(), i, row)
		for _, v := range row {
			sum += float64(v)
		}
	}
	res.Checksum = sum
	return res, nil
}

// GaussReference computes the checksum of the identical sequential
// elimination: same float32 arithmetic in the same per-element order.
func GaussReference(cfg GaussConfig) float64 {
	n := cfg.N
	a := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = gaussInit(i, j, n)
		}
	}
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			m := a[i*n+k] / a[k*n+k]
			a[i*n+k] = 0
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= m * a[k*n+j]
			}
		}
	}
	sum := 0.0
	for _, v := range a {
		sum += float64(v)
	}
	return sum
}
