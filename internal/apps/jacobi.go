package apps

import (
	"fmt"

	"nowomp/internal/omp"
	"nowomp/internal/shmem"
	"nowomp/internal/simtime"
)

// JacobiConfig parameterises the Jacobi kernel: a 5-point stencil over
// an NxN float32 grid with two arrays swapped each iteration. The
// paper runs 2500x2500 for 1000 iterations (47.8 MB of shared memory).
type JacobiConfig struct {
	N     int
	Iters int
	// CostPerElem is the calibrated per-element-update compute charge.
	CostPerElem simtime.Seconds
}

// DefaultJacobi returns the paper's Table 1 configuration.
func DefaultJacobi() JacobiConfig {
	return JacobiConfig{N: 2500, Iters: 1000, CostPerElem: JacobiCostPerElem}
}

// Scaled shrinks the problem linearly (dimension and iteration count)
// for fast experiment runs; scale 1.0 is the paper's size.
func (c JacobiConfig) Scaled(s float64) JacobiConfig {
	c.N = evenDim(scaleDim(c.N, s, 32))
	c.Iters = scaleDim(c.Iters, s, 4)
	return c
}

func (c JacobiConfig) validate() error {
	if c.N < 3 || c.Iters < 1 {
		return fmt.Errorf("apps: jacobi needs N >= 3 and Iters >= 1, got N=%d Iters=%d", c.N, c.Iters)
	}
	return nil
}

// jacobiInit gives the deterministic initial grid value at (i, j),
// with hot boundary rows so the interior evolves.
func jacobiInit(i, j, n int) float32 {
	if i == 0 || i == n-1 || j == 0 || j == n-1 {
		return 100
	}
	return float32((i*31+j*17)%97) / 97
}

// RunJacobi executes the kernel on the runtime and returns the
// measured result. The checksum is the float64 sum of the final grid
// in row-major order, exactly matching JacobiReference.
func RunJacobi(rt *omp.Runtime, cfg JacobiConfig) (Result, error) {
	if cfg.CostPerElem == 0 {
		cfg.CostPerElem = JacobiCostPerElem
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := cfg.N
	grids := make([]*shmem.Matrix[float32], 2)
	for g := 0; g < 2; g++ {
		mx, err := omp.AllocMatrix[float32](rt, fmt.Sprintf("jacobi.grid%d", g), n, n)
		if err != nil {
			return Result{}, err
		}
		grids[g] = mx
	}
	procs := rt.NProcs()

	// Initialisation: each process writes its block of both arrays
	// (first-touch distribution; the boundary must exist in both since
	// it is never rewritten).
	rt.For("jacobi.init", 0, n, func(p *omp.Proc, lo, hi int) {
		row := make([]float32, n)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				row[j] = jacobiInit(i, j, n)
			}
			grids[0].WriteRow(p.Mem(), i, row)
			grids[1].WriteRow(p.Mem(), i, row)
		}
		p.ChargeUnits(2*(hi-lo)*n, InitCostPerElement)
	})

	cur := 0
	for it := 0; it < cfg.Iters; it++ {
		src, dst := grids[cur], grids[1-cur]
		rt.For("jacobi.sweep", 1, n-1, func(p *omp.Proc, lo, hi int) {
			up := make([]float32, n)
			mid := make([]float32, n)
			down := make([]float32, n)
			out := make([]float32, n)
			src.ReadRow(p.Mem(), lo-1, up)
			src.ReadRow(p.Mem(), lo, mid)
			for i := lo; i < hi; i++ {
				src.ReadRow(p.Mem(), i+1, down)
				out[0], out[n-1] = mid[0], mid[n-1]
				for j := 1; j < n-1; j++ {
					out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
				}
				dst.WriteRow(p.Mem(), i, out)
				up, mid, down = mid, down, up
			}
			p.ChargeUnits((hi-lo)*(n-2), cfg.CostPerElem)
		})
		cur = 1 - cur
	}

	// Timing and traffic are measured at the end of the computation;
	// the verification checksum below is not part of the run, matching
	// the paper's measurement window.
	res := measure(rt, "jacobi", procs)
	mp := rt.MasterProc()
	row := make([]float32, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		grids[cur].ReadRow(mp.Mem(), i, row)
		for _, v := range row {
			sum += float64(v)
		}
	}
	res.Checksum = sum
	return res, nil
}

// JacobiReference computes the checksum of an identical sequential
// run: same float32 arithmetic in the same per-element order, so the
// parallel result must match exactly.
func JacobiReference(cfg JacobiConfig) float64 {
	n := cfg.N
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = jacobiInit(i, j, n)
			b[i*n+j] = a[i*n+j]
		}
	}
	src, dst := a, b
	for it := 0; it < cfg.Iters; it++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dst[i*n+j] = 0.25 * (src[(i-1)*n+j] + src[(i+1)*n+j] + src[i*n+j-1] + src[i*n+j+1])
			}
		}
		src, dst = dst, src
	}
	sum := 0.0
	for _, v := range src {
		sum += float64(v)
	}
	return sum
}
