package apps

import (
	"fmt"

	"nowomp/internal/omp"
	"nowomp/internal/shmem"
	"nowomp/internal/simtime"
)

// JacobiConfig parameterises the Jacobi kernel: a 5-point stencil over
// an NxN float32 grid with two arrays swapped each iteration. The
// paper runs 2500x2500 for 1000 iterations (47.8 MB of shared memory).
type JacobiConfig struct {
	N     int
	Iters int
	// CostPerElem is the calibrated per-element-update compute charge.
	CostPerElem simtime.Seconds
}

// DefaultJacobi returns the paper's Table 1 configuration.
func DefaultJacobi() JacobiConfig {
	return JacobiConfig{N: 2500, Iters: 1000, CostPerElem: JacobiCostPerElem}
}

// Scaled shrinks the problem linearly (dimension and iteration count)
// for fast experiment runs; scale 1.0 is the paper's size.
func (c JacobiConfig) Scaled(s float64) JacobiConfig {
	c.N = evenDim(scaleDim(c.N, s, 32))
	c.Iters = scaleDim(c.Iters, s, 4)
	return c
}

func (c JacobiConfig) validate() error {
	if c.N < 3 || c.Iters < 1 {
		return fmt.Errorf("apps: jacobi needs N >= 3 and Iters >= 1, got N=%d Iters=%d", c.N, c.Iters)
	}
	return nil
}

// jacobiInit gives the deterministic initial grid value at (i, j),
// with hot boundary rows so the interior evolves.
func jacobiInit(i, j, n int) float32 {
	if i == 0 || i == n-1 || j == 0 || j == n-1 {
		return 100
	}
	return float32((i*31+j*17)%97) / 97
}

// RunJacobi executes the kernel on the runtime and returns the
// measured result. The checksum is the float64 sum of the final grid
// in row-major order, exactly matching JacobiReference.
func RunJacobi(rt *omp.Runtime, cfg JacobiConfig) (Result, error) {
	if cfg.CostPerElem == 0 {
		cfg.CostPerElem = JacobiCostPerElem
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := cfg.N
	grids := make([]*shmem.Matrix[float32], 2)
	for g := 0; g < 2; g++ {
		mx, err := omp.AllocMatrix[float32](rt, fmt.Sprintf("jacobi.grid%d", g), n, n)
		if err != nil {
			return Result{}, err
		}
		grids[g] = mx
	}
	procs := rt.NProcs()

	// Initialisation: each process writes its block of both arrays
	// (first-touch distribution; the boundary must exist in both since
	// it is never rewritten).
	rt.For("jacobi.init", 0, n, func(p *omp.Proc, lo, hi int) {
		row := make([]float32, n)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				row[j] = jacobiInit(i, j, n)
			}
			grids[0].WriteRow(p.Mem(), i, row)
			grids[1].WriteRow(p.Mem(), i, row)
		}
		p.ChargeUnits(2*(hi-lo)*n, InitCostPerElement)
	})

	cur := 0
	for it := 0; it < cfg.Iters; it++ {
		src, dst := grids[cur], grids[1-cur]
		rt.For("jacobi.sweep", 1, n-1, func(p *omp.Proc, lo, hi int) {
			// Both sides of the stencil run on page memory: the three
			// source rows and the output row are collected as typed span
			// lists once per row (the source lists rotate like the old
			// staging buffers, so each row is resolved once), and the
			// stencil itself runs over equal-length chunks with no
			// staging copy, no decode pass and no per-element accessor.
			// Page events are identical to the staged loop: the same
			// rows fault in and twin inside the same construct body.
			mem := p.Mem()
			collectRead := func(spans [][]float32, i int) [][]float32 {
				spans = spans[:0]
				for j := 0; j < n; {
					s := src.ReadRowSpan(mem, i, j, n)
					spans = append(spans, s)
					j += len(s)
				}
				return spans
			}
			var us, ms, ds, os [][]float32
			us = collectRead(us, lo-1)
			ms = collectRead(ms, lo)
			for i := lo; i < hi; i++ {
				ds = collectRead(ds, i+1)
				os = os[:0]
				for j := 0; j < n; {
					s := dst.WriteRowSpan(mem, i, j, n)
					os = append(os, s)
					j += len(s)
				}
				jacobiRowSpans(os, us, ms, ds, n)
				us, ms, ds = ms, ds, us
			}
			p.ChargeUnits((hi-lo)*(n-2), cfg.CostPerElem)
		})
		cur = 1 - cur
	}

	// Timing and traffic are measured at the end of the computation;
	// the verification checksum below is not part of the run, matching
	// the paper's measurement window.
	res := measure(rt, "jacobi", procs)
	mp := rt.MasterProc()
	row := make([]float32, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		grids[cur].ReadRow(mp.Mem(), i, row)
		for _, v := range row {
			sum += float64(v)
		}
	}
	res.Checksum = sum
	return res, nil
}

// jacobiRowSpans computes one output row of the 5-point stencil from
// span lists of the row above (us), the row itself (ms) and the row
// below (ds) into the output span list (os). Chunks are bounded by the
// nearest page break of any of the four rows; within a chunk all four
// views are re-sliced to a common length so the hot loop runs with
// every bounds check eliminated. The first and last grid columns copy
// the mid value, exactly like the staged loop did.
func jacobiRowSpans(os, us, ms, ds [][]float32, n int) {
	oi, ui, mi, di := 0, 0, 0, 0
	o, u, m, d := os[0], us[0], ms[0], ds[0]
	var left float32 // mid[j-1], carried across chunk boundaries
	for j := 0; j < n; {
		L := len(o)
		if len(u) < L {
			L = len(u)
		}
		if len(m) < L {
			L = len(m)
		}
		if len(d) < L {
			L = len(d)
		}
		o2, u2, m2, d2 := o[:L], u[:L], m[:L], d[:L]
		// The right neighbour of the chunk's last column lives either
		// later in the mid span or at the head of the next one.
		var right float32
		if L < len(m) {
			right = m[L]
		} else if j+L < n {
			right = ms[mi+1][0]
		}
		q0, q1 := 0, L // columns of this chunk that hold stencil output
		if j == 0 {
			o2[0] = m2[0]
			q0 = 1
		}
		if j+L == n {
			o2[L-1] = m2[L-1]
			q1 = L - 1
		}
		lo2, hi2 := q0, q1
		if lo2 < 1 {
			lo2 = 1
		}
		if hi2 > L-1 {
			hi2 = L - 1
		}
		for q := lo2; q < hi2; q++ {
			o2[q] = 0.25 * (u2[q] + d2[q] + m2[q-1] + m2[q+1])
		}
		if q0 == 0 && q0 < q1 {
			mr := right
			if L > 1 {
				mr = m2[1]
			}
			o2[0] = 0.25 * (u2[0] + d2[0] + left + mr)
		}
		if q1 == L && L >= 2 && L-1 >= q0 {
			o2[L-1] = 0.25 * (u2[L-1] + d2[L-1] + m2[L-2] + right)
		}
		left = m2[L-1]
		j += L
		o = o[L:]
		if len(o) == 0 && oi+1 < len(os) {
			oi++
			o = os[oi]
		}
		u = u[L:]
		if len(u) == 0 && ui+1 < len(us) {
			ui++
			u = us[ui]
		}
		m = m[L:]
		if len(m) == 0 && mi+1 < len(ms) {
			mi++
			m = ms[mi]
		}
		d = d[L:]
		if len(d) == 0 && di+1 < len(ds) {
			di++
			d = ds[di]
		}
	}
}

// JacobiReference computes the checksum of an identical sequential
// run: same float32 arithmetic in the same per-element order, so the
// parallel result must match exactly.
func JacobiReference(cfg JacobiConfig) float64 {
	n := cfg.N
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = jacobiInit(i, j, n)
			b[i*n+j] = a[i*n+j]
		}
	}
	src, dst := a, b
	for it := 0; it < cfg.Iters; it++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dst[i*n+j] = 0.25 * (src[(i-1)*n+j] + src[(i+1)*n+j] + src[i*n+j-1] + src[i*n+j+1])
			}
		}
		src, dst = dst, src
	}
	sum := 0.0
	for _, v := range src {
		sum += float64(v)
	}
	return sum
}
