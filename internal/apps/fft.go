package apps

import (
	"fmt"
	"math"
	"math/bits"
)

// fft1D performs an in-place unitary radix-2 FFT (decimation in time)
// on x, whose length must be a power of two. Unitary scaling (1/sqrt n)
// keeps magnitudes stable across the repeated transforms of the 3D-FFT
// benchmark's iteration loop.
func fft1D(x []complex128) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("apps: fft length %d is not a power of two", n))
	}
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size *= 2 {
		ang := -2 * math.Pi / float64(size)
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
	// Unitary normalisation.
	scale := complex(1/math.Sqrt(float64(n)), 0)
	for i := range x {
		x[i] *= scale
	}
}
