package apps

import (
	"fmt"

	"nowomp/internal/omp"
	"nowomp/internal/shmem"
	"nowomp/internal/simtime"
)

// NBFConfig parameterises the non-bonded-force kernel of a molecular
// dynamics code: Atoms atoms, each with Partners interaction partners
// drawn from a window around it (the array indices are not linear
// expressions in the loop variables — the paper's example of an
// irregular application). The paper runs 131072 atoms x 80 partners
// for 100 iterations with 52 MB of shared memory, dominated by the
// partner lists.
type NBFConfig struct {
	Atoms    int
	Partners int
	Iters    int
	// Window bounds how far a partner index may be from its atom;
	// zero means Atoms/16.
	Window int
	// PairCost is the calibrated per-interaction compute charge;
	// UpdateCost the per-atom position-update charge.
	PairCost   simtime.Seconds
	UpdateCost simtime.Seconds
}

// DefaultNBF returns the paper's Table 1 configuration.
func DefaultNBF() NBFConfig {
	return NBFConfig{
		Atoms: 131072, Partners: 80, Iters: 100,
		PairCost: NBFCostPerPair, UpdateCost: NBFCostPerUpdate,
	}
}

// Scaled shrinks atoms, partners and iterations linearly; scale 1.0
// is the paper's size. Atoms are kept a multiple of 4096 so the
// float64 position/force blocks stay page-aligned for power-of-two
// team sizes, preserving the paper's zero-diff behaviour.
func (c NBFConfig) Scaled(s float64) NBFConfig {
	a := scaleDim(c.Atoms, s, 4096)
	a = (a + 2048) / 4096 * 4096
	if a < 4096 {
		a = 4096
	}
	c.Atoms = a
	c.Partners = scaleDim(c.Partners, s, 4)
	c.Iters = scaleDim(c.Iters, s, 2)
	return c
}

func (c NBFConfig) validate() error {
	if c.Atoms < 2 || c.Partners < 1 || c.Iters < 1 {
		return fmt.Errorf("apps: nbf needs Atoms >= 2, Partners >= 1, Iters >= 1, got %+v", c)
	}
	return nil
}

func (c NBFConfig) window() int {
	w := c.Window
	if w <= 0 {
		w = c.Atoms / 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

// nbfPartner deterministically picks partner m of atom i within the
// window: irregular but reproducible.
func nbfPartner(i, m, atoms, window int) int32 {
	h := uint32(i*2654435761) ^ uint32(m*40503)
	h ^= h >> 13
	h *= 2246822519
	h ^= h >> 16
	off := int(h%uint32(2*window+1)) - window
	j := (i + off) % atoms
	if j < 0 {
		j += atoms
	}
	if j == i {
		j = (j + 1) % atoms
	}
	return int32(j)
}

func nbfInitPos(i int, d int) float64 {
	return float64((i*7+d*13)%1000)/1000 + float64(i)*1e-6
}

// nbfForce is the softened inverse-square pair interaction.
func nbfForce(xi, yi, zi, xj, yj, zj float64) (fx, fy, fz float64) {
	dx, dy, dz := xj-xi, yj-yi, zj-zi
	r2 := dx*dx + dy*dy + dz*dz + 0.01
	inv := 1 / (r2 * r2)
	return dx * inv, dy * inv, dz * inv
}

const nbfDT = 1e-7

// RunNBF executes the kernel: each iteration computes forces over the
// partner lists (reading other processes' position pages — the
// sustained traffic of Table 1) and then integrates positions, each
// process writing only its own block (single-writer pages, zero
// diffs). Positions and forces are float64 so block boundaries are
// word-aligned.
func RunNBF(rt *omp.Runtime, cfg NBFConfig) (Result, error) {
	if cfg.PairCost == 0 {
		cfg.PairCost = NBFCostPerPair
	}
	if cfg.UpdateCost == 0 {
		cfg.UpdateCost = NBFCostPerUpdate
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n, k := cfg.Atoms, cfg.Partners
	window := cfg.window()

	pos := make([]*shmem.Array[float64], 3)
	frc := make([]*shmem.Array[float64], 3)
	for d := 0; d < 3; d++ {
		var err error
		if pos[d], err = omp.Alloc[float64](rt, fmt.Sprintf("nbf.pos%d", d), n); err != nil {
			return Result{}, err
		}
		if frc[d], err = omp.Alloc[float64](rt, fmt.Sprintf("nbf.frc%d", d), n); err != nil {
			return Result{}, err
		}
	}
	partners, err := omp.Alloc[int32](rt, "nbf.partners", n*k)
	if err != nil {
		return Result{}, err
	}
	procs := rt.NProcs()

	rt.For("nbf.init", 0, n, func(p *omp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for d := 0; d < 3; d++ {
			for i := range buf {
				buf[i] = nbfInitPos(lo+i, d)
			}
			pos[d].WriteRange(p.Mem(), lo, buf)
			for i := range buf {
				buf[i] = 0
			}
			frc[d].WriteRange(p.Mem(), lo, buf)
		}
		plist := make([]int32, (hi-lo)*k)
		for i := lo; i < hi; i++ {
			for m := 0; m < k; m++ {
				plist[(i-lo)*k+m] = nbfPartner(i, m, n, window)
			}
		}
		partners.WriteRange(p.Mem(), lo*k, plist)
		p.ChargeUnits((hi-lo)*(k+6), InitCostPerElement)
	})

	for it := 0; it < cfg.Iters; it++ {
		// Force phase: irregular reads of partner positions.
		rt.For("nbf.force", 0, n, func(p *omp.Proc, lo, hi int) {
			cnt := hi - lo
			fx := make([]float64, cnt)
			fy := make([]float64, cnt)
			fz := make([]float64, cnt)
			px := make([]float64, cnt)
			py := make([]float64, cnt)
			pz := make([]float64, cnt)
			pos[0].ReadRange(p.Mem(), lo, hi, px)
			pos[1].ReadRange(p.Mem(), lo, hi, py)
			pos[2].ReadRange(p.Mem(), lo, hi, pz)
			plist := make([]int32, cnt*k)
			partners.ReadRange(p.Mem(), lo*k, hi*k, plist)
			// Partner positions are irregular random reads: the bundled
			// fault-aware reader resolves each index once and serves all
			// three components straight from page memory (faulting
			// exactly when per-component Gets would) without the
			// per-element accessor and decode overhead — the dominant
			// cost of this kernel at full scale.
			pv := shmem.Readers3(p.Mem(), pos[0], pos[1], pos[2])
			for i := 0; i < cnt; i++ {
				var sx, sy, sz float64
				xi, yi, zi := px[i], py[i], pz[i]
				row := plist[i*k : i*k+k]
				for _, jj := range row {
					xj, yj, zj := pv.Get3(int(jj))
					dx, dy, dz := nbfForce(xi, yi, zi, xj, yj, zj)
					sx += dx
					sy += dy
					sz += dz
				}
				fx[i], fy[i], fz[i] = sx, sy, sz
			}
			frc[0].WriteRange(p.Mem(), lo, fx)
			frc[1].WriteRange(p.Mem(), lo, fy)
			frc[2].WriteRange(p.Mem(), lo, fz)
			p.ChargeUnits(cnt*k, cfg.PairCost)
		})

		// Integration phase: each process updates its own positions.
		rt.For("nbf.update", 0, n, func(p *omp.Proc, lo, hi int) {
			cnt := hi - lo
			for d := 0; d < 3; d++ {
				// Integrate in place, span by span: positions and forces
				// are both float64 arrays starting at region offset 0, so
				// their spans break at the same element boundaries.
				for i := lo; i < hi; {
					ps := pos[d].WriteSpan(p.Mem(), i, hi)
					fs := frc[d].ReadSpan(p.Mem(), i, i+len(ps))
					for q, f := range fs {
						ps[q] += nbfDT * f
					}
					i += len(ps)
				}
			}
			p.ChargeUnits(cnt, cfg.UpdateCost)
		})
	}

	// Timing and traffic are measured at the end of the computation;
	// the verification checksum below is outside the paper's window.
	res := measure(rt, "nbf", procs)
	mp := rt.MasterProc()
	sum := 0.0
	buf := make([]float64, n)
	for d := 0; d < 3; d++ {
		pos[d].ReadRange(mp.Mem(), 0, n, buf)
		for _, v := range buf {
			sum += v
		}
	}
	res.Checksum = sum
	return res, nil
}

// NBFReference computes the checksum of the identical sequential run.
func NBFReference(cfg NBFConfig) float64 {
	n, k := cfg.Atoms, cfg.Partners
	window := cfg.window()
	pos := make([][]float64, 3)
	frc := make([][]float64, 3)
	for d := 0; d < 3; d++ {
		pos[d] = make([]float64, n)
		frc[d] = make([]float64, n)
		for i := 0; i < n; i++ {
			pos[d][i] = nbfInitPos(i, d)
		}
	}
	plist := make([]int32, n*k)
	for i := 0; i < n; i++ {
		for m := 0; m < k; m++ {
			plist[i*k+m] = nbfPartner(i, m, n, window)
		}
	}
	for it := 0; it < cfg.Iters; it++ {
		for i := 0; i < n; i++ {
			var sx, sy, sz float64
			for m := 0; m < k; m++ {
				j := plist[i*k+m]
				dx, dy, dz := nbfForce(pos[0][i], pos[1][i], pos[2][i], pos[0][j], pos[1][j], pos[2][j])
				sx += dx
				sy += dy
				sz += dz
			}
			frc[0][i], frc[1][i], frc[2][i] = sx, sy, sz
		}
		for d := 0; d < 3; d++ {
			for i := 0; i < n; i++ {
				pos[d][i] += nbfDT * frc[d][i]
			}
		}
	}
	sum := 0.0
	for d := 0; d < 3; d++ {
		for _, v := range pos[d] {
			sum += v
		}
	}
	return sum
}
