package apps

import (
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/omp"
)

func newRT(t *testing.T, hosts, procs int, adaptive bool) *omp.Runtime {
	t.Helper()
	rt, err := omp.New(omp.Config{Hosts: hosts, Procs: procs, Adaptive: adaptive})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// small app configs used across the verification tests.
func smallJacobi() JacobiConfig {
	c := DefaultJacobi()
	c.N, c.Iters = 64, 8
	return c
}

func smallGauss() GaussConfig {
	c := DefaultGauss()
	c.N = 64
	return c
}

func smallFFT() FFT3DConfig {
	// 16x16x16: an x-plane is exactly one 4 KB page, preserving the
	// full-scale property that plane partitions are page-aligned.
	c := DefaultFFT3D()
	c.NX, c.NY, c.NZ, c.Iters = 16, 16, 16, 3
	return c
}

func smallNBF() NBFConfig {
	// 2048 atoms: each float64 array is 4 pages, so 1/2/4-way block
	// partitions are page-aligned like the full-scale runs.
	c := DefaultNBF()
	c.Atoms, c.Partners, c.Iters = 2048, 8, 3
	return c
}

func TestJacobiMatchesReference(t *testing.T) {
	want := JacobiReference(smallJacobi())
	for _, procs := range []int{1, 2, 4} {
		rt := newRT(t, 4, procs, false)
		res, err := RunJacobi(rt, smallJacobi())
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Checksum != want {
			t.Fatalf("procs=%d: checksum %g, want %g (must match bit for bit)", procs, res.Checksum, want)
		}
		if res.Time <= 0 {
			t.Fatalf("procs=%d: no virtual time elapsed", procs)
		}
	}
}

func TestGaussMatchesReference(t *testing.T) {
	want := GaussReference(smallGauss())
	for _, procs := range []int{1, 3} {
		rt := newRT(t, 4, procs, false)
		res, err := RunGauss(rt, smallGauss())
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Checksum != want {
			t.Fatalf("procs=%d: checksum %g, want %g", procs, res.Checksum, want)
		}
	}
}

func TestFFT3DMatchesReference(t *testing.T) {
	want := FFT3DReference(smallFFT())
	for _, procs := range []int{1, 2, 4} {
		rt := newRT(t, 4, procs, false)
		res, err := RunFFT3D(rt, smallFFT())
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Checksum != want {
			t.Fatalf("procs=%d: checksum %g, want %g", procs, res.Checksum, want)
		}
	}
}

func TestNBFMatchesReference(t *testing.T) {
	want := NBFReference(smallNBF())
	for _, procs := range []int{1, 2, 4} {
		rt := newRT(t, 4, procs, false)
		res, err := RunNBF(rt, smallNBF())
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Checksum != want {
			t.Fatalf("procs=%d: checksum %g, want %g", procs, res.Checksum, want)
		}
	}
}

// TestSharingModes checks the Table 1 diff column's shape: Jacobi's
// partition-straddling pages produce diffs; Gauss, FFT and NBF are
// pure single-writer codes with zero diffs.
func TestSharingModes(t *testing.T) {
	rt := newRT(t, 4, 4, false)
	if res, err := RunJacobi(rt, smallJacobi()); err != nil {
		t.Fatal(err)
	} else if res.Diffs == 0 {
		t.Error("jacobi must produce diff traffic (boundary pages have two writers)")
	}

	for name, run := range map[string]func(*omp.Runtime) (Result, error){
		"gauss": func(rt *omp.Runtime) (Result, error) { return RunGauss(rt, smallGauss()) },
		"fft3d": func(rt *omp.Runtime) (Result, error) { return RunFFT3D(rt, smallFFT()) },
		"nbf":   func(rt *omp.Runtime) (Result, error) { return RunNBF(rt, smallNBF()) },
	} {
		rt := newRT(t, 4, 4, false)
		res, err := run(rt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Diffs != 0 {
			t.Errorf("%s fetched %d diffs, want 0 (single-writer pages only)", name, res.Diffs)
		}
		if res.Pages == 0 {
			t.Errorf("%s fetched no pages at all", name)
		}
	}
}

// TestParallelSpeedup checks the coarse Table 1 shape: more processes,
// less virtual time, on a compute-heavy configuration.
func TestParallelSpeedup(t *testing.T) {
	cfg := DefaultJacobi()
	cfg.N, cfg.Iters = 1024, 30
	var t1, t4 float64
	{
		rt := newRT(t, 4, 1, false)
		res, err := RunJacobi(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t1 = float64(res.Time)
	}
	{
		rt := newRT(t, 4, 4, false)
		res, err := RunJacobi(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t4 = float64(res.Time)
	}
	if t4 >= t1 {
		t.Fatalf("4-proc run (%g s) not faster than 1-proc (%g s)", t4, t1)
	}
	if t1/t4 < 2 {
		t.Fatalf("speedup %g too low for a compute-bound stencil", t1/t4)
	}
}

// TestOneProcRunsHaveNoTraffic mirrors Table 1's one-node rows: zero
// network transfers.
func TestOneProcRunsHaveNoTraffic(t *testing.T) {
	rt := newRT(t, 2, 1, false)
	res, err := RunJacobi(rt, smallJacobi())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 0 || res.Bytes != 0 || res.Messages != 0 || res.Diffs != 0 {
		t.Fatalf("1-proc run produced traffic: %+v", res)
	}
}

// TestAppsUnderAdaptation runs every kernel with a leave and a join
// mid-computation and requires the result to still match the
// sequential reference exactly: the transparency claim of the paper.
func TestAppsUnderAdaptation(t *testing.T) {
	type testCase struct {
		name string
		want float64
		run  func(rt *omp.Runtime) (Result, error)
	}
	cases := []testCase{
		{"jacobi", JacobiReference(smallJacobi()), func(rt *omp.Runtime) (Result, error) { return RunJacobi(rt, smallJacobi()) }},
		{"gauss", GaussReference(smallGauss()), func(rt *omp.Runtime) (Result, error) { return RunGauss(rt, smallGauss()) }},
		{"fft3d", FFT3DReference(smallFFT()), func(rt *omp.Runtime) (Result, error) { return RunFFT3D(rt, smallFFT()) }},
		{"nbf", NBFReference(smallNBF()), func(rt *omp.Runtime) (Result, error) { return RunNBF(rt, smallNBF()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := newRT(t, 5, 4, true)
			// A leave early on and a join that matures mid-run.
			if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: 0.0005}); err != nil {
				t.Fatal(err)
			}
			if err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: 4, At: 0.001}); err != nil {
				t.Fatal(err)
			}
			res, err := tc.run(rt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Checksum != tc.want {
				t.Fatalf("checksum with adaptation = %g, want %g", res.Checksum, tc.want)
			}
			if len(rt.AdaptLog()) == 0 {
				t.Fatal("no adaptation was recorded; events did not fire")
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	rt := newRT(t, 2, 1, false)
	if _, err := RunJacobi(rt, JacobiConfig{N: 2, Iters: 1}); err == nil {
		t.Error("jacobi N=2 must fail")
	}
	rt = newRT(t, 2, 1, false)
	if _, err := RunGauss(rt, GaussConfig{N: 1}); err == nil {
		t.Error("gauss N=1 must fail")
	}
	rt = newRT(t, 2, 1, false)
	if _, err := RunFFT3D(rt, FFT3DConfig{NX: 12, NY: 4, NZ: 4, Iters: 1}); err == nil {
		t.Error("fft3d non-power-of-two must fail")
	}
	rt = newRT(t, 2, 1, false)
	if _, err := RunNBF(rt, NBFConfig{Atoms: 1, Partners: 1, Iters: 1}); err == nil {
		t.Error("nbf Atoms=1 must fail")
	}
}

func TestScaledConfigs(t *testing.T) {
	j := DefaultJacobi().Scaled(0.1)
	if j.N != 250 || j.Iters != 100 {
		t.Errorf("jacobi scaled 0.1 = %+v", j)
	}
	g := DefaultGauss().Scaled(0.25)
	if g.N != 1024 {
		t.Errorf("gauss scaled 0.25 N = %d, want 1024 (page-aligned rows)", g.N)
	}
	f := DefaultFFT3D().Scaled(0.25)
	if f.NX != 32 || f.NY != 16 || f.NZ != 16 {
		t.Errorf("fft scaled 0.25 = %+v", f)
	}
	nb := DefaultNBF().Scaled(0.01)
	if nb.Atoms != 4096 || nb.Partners < 4 {
		t.Errorf("nbf scaled 0.01 = %+v, want 4096 atoms (page-aligned blocks)", nb)
	}
	// Scale 1.0 must be the paper's sizes.
	if d := DefaultJacobi().Scaled(1); d.N != 2500 || d.Iters != 1000 {
		t.Errorf("jacobi scale 1 changed: %+v", d)
	}
}

func TestRunnersRegistry(t *testing.T) {
	rs := Runners()
	if len(rs) != 4 {
		t.Fatalf("runners = %d, want 4", len(rs))
	}
	wantOrder := []string{"gauss", "jacobi", "fft3d", "nbf"}
	for i, r := range rs {
		if r.Name != wantOrder[i] {
			t.Fatalf("runner %d = %q, want %q", i, r.Name, wantOrder[i])
		}
	}
	if _, ok := RunnerByName("jacobi"); !ok {
		t.Fatal("RunnerByName(jacobi) not found")
	}
	if _, ok := RunnerByName("nope"); ok {
		t.Fatal("RunnerByName(nope) must fail")
	}
	// Tiny end-to-end run through the registry.
	r, _ := RunnerByName("fft3d")
	rt := newRT(t, 2, 2, false)
	res, err := r.Run(rt, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != r.Reference(0.05) {
		t.Fatalf("registry run checksum mismatch")
	}
}

// TestSharedMemoryFootprint sanity-checks the Table 1 "shared memory"
// column at full scale without running the kernels.
func TestSharedMemoryFootprint(t *testing.T) {
	j := DefaultJacobi()
	jacobiBytes := 2 * j.N * j.N * 4
	if mb := float64(jacobiBytes) / 1e6; mb < 45 || mb > 55 {
		t.Errorf("jacobi shared = %.1f MB, paper says 47.8 MB", mb)
	}
	g := DefaultGauss()
	gaussBytes := g.N * g.N * 4
	if mb := float64(gaussBytes) / 1e6; mb < 35 || mb > 50 {
		t.Errorf("gauss shared = %.1f MB, paper says 48 MB", mb)
	}
	n := DefaultNBF()
	nbfBytes := n.Atoms*n.Partners*4 + 6*n.Atoms*8
	if mb := float64(nbfBytes) / 1e6; mb < 40 || mb > 60 {
		t.Errorf("nbf shared = %.1f MB, paper says 52 MB", mb)
	}
}
