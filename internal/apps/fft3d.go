package apps

import (
	"fmt"
	"math"

	"nowomp/internal/omp"
	"nowomp/internal/shmem"
	"nowomp/internal/simtime"
)

// FFT3DConfig parameterises the NAS-style 3-D FFT: each iteration
// applies a 1-D transform along z and along y within x-planes, then
// transposes the array and transforms along the third dimension —
// "a sequence of 3 1-dimensional transforms, with a transposition of
// the matrix between the second and the third transform" (section
// 5.2). The paper runs 128x64x64 for 100 iterations.
type FFT3DConfig struct {
	NX, NY, NZ int // powers of two
	Iters      int
	// PassCost charges each point once per 1-D transform pass;
	// TransposeCost charges each point moved by the transposition.
	PassCost      simtime.Seconds
	TransposeCost simtime.Seconds
}

// DefaultFFT3D returns the paper's Table 1 configuration.
func DefaultFFT3D() FFT3DConfig {
	return FFT3DConfig{
		NX: 128, NY: 64, NZ: 64, Iters: 100,
		PassCost: FFTCostPerPass, TransposeCost: FFTCostTranspose,
	}
}

// Scaled shrinks each dimension to the nearest power of two and the
// iteration count linearly; scale 1.0 is the paper's size. NY and NZ
// keep a floor of 16 so an x-plane is at least one page and plane
// partitions stay page-aligned (the paper's zero-diff behaviour).
func (c FFT3DConfig) Scaled(s float64) FFT3DConfig {
	c.NX = scalePow2(c.NX, s, 8)
	c.NY = scalePow2(c.NY, s, 16)
	c.NZ = scalePow2(c.NZ, s, 16)
	c.Iters = scaleDim(c.Iters, s, 2)
	return c
}

func (c FFT3DConfig) validate() error {
	for _, d := range []int{c.NX, c.NY, c.NZ} {
		if d < 2 || d&(d-1) != 0 {
			return fmt.Errorf("apps: fft3d dims must be powers of two >= 2, got %dx%dx%d", c.NX, c.NY, c.NZ)
		}
	}
	if c.Iters < 1 {
		return fmt.Errorf("apps: fft3d needs Iters >= 1, got %d", c.Iters)
	}
	return nil
}

// fftInit gives the deterministic initial field.
func fftInit(i, total int) complex128 {
	re := math.Sin(float64(i) * 0.7)
	im := math.Cos(float64(i%total) * 0.3)
	return complex(re, im)
}

// RunFFT3D executes the kernel. Layout: the current array holds
// dims (dx, dy, dz) row-major with z fastest, partitioned by x-plane;
// an iteration transforms along z and y inside each plane (local),
// transposes into the partner array as (dz, dy, dx) — the all-to-all
// phase responsible for the FFT's dominant network traffic in Table 1
// — and transforms along the new fastest axis. Arrays and dimensions
// swap for the next iteration.
func RunFFT3D(rt *omp.Runtime, cfg FFT3DConfig) (Result, error) {
	if cfg.PassCost == 0 {
		cfg.PassCost = FFTCostPerPass
	}
	if cfg.TransposeCost == 0 {
		cfg.TransposeCost = FFTCostTranspose
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	total := cfg.NX * cfg.NY * cfg.NZ
	arrs := make([]*shmem.Array[complex128], 2)
	for i := range arrs {
		a, err := omp.Alloc[complex128](rt, fmt.Sprintf("fft.a%d", i), total)
		if err != nil {
			return Result{}, err
		}
		arrs[i] = a
	}
	procs := rt.NProcs()

	rt.For("fft.init", 0, total, func(p *omp.Proc, lo, hi int) {
		buf := make([]complex128, hi-lo)
		for i := range buf {
			buf[i] = fftInit(lo+i, total)
		}
		arrs[0].WriteRange(p.Mem(), lo, buf)
		p.ChargeUnits(hi-lo, InitCostPerElement)
	})

	cur := 0
	dx, dy, dz := cfg.NX, cfg.NY, cfg.NZ
	for it := 0; it < cfg.Iters; it++ {
		src, dst := arrs[cur], arrs[1-cur]

		// Passes 1 and 2: transform along z, then along y, inside each
		// x-plane. Planes are contiguous and block-partitioned, so this
		// phase is all local after the plane is resident.
		dyz := dy * dz
		rt.For("fft.planes", 0, dx, func(p *omp.Proc, lo, hi int) {
			plane := make([]complex128, dyz)
			col := make([]complex128, dy)
			for x := lo; x < hi; x++ {
				src.ReadRange(p.Mem(), x*dyz, (x+1)*dyz, plane)
				for y := 0; y < dy; y++ {
					fft1D(plane[y*dz : (y+1)*dz])
				}
				for z := 0; z < dz; z++ {
					for y := 0; y < dy; y++ {
						col[y] = plane[y*dz+z]
					}
					fft1D(col)
					for y := 0; y < dy; y++ {
						plane[y*dz+z] = col[y]
					}
				}
				src.WriteRange(p.Mem(), x*dyz, plane)
			}
			p.ChargeUnits(2*(hi-lo)*dyz, cfg.PassCost)
		})

		// Transposition: dst[z][y][x] = src[x][y][z], partitioned by
		// destination z-plane. Each process reads a z-slab of every
		// (x, y) pencil — the all-to-all exchange.
		dyx := dy * dx
		rt.For("fft.transpose", 0, dz, func(p *omp.Proc, lo, hi int) {
			nzb := hi - lo
			slab := make([]complex128, nzb)
			out := make([]complex128, nzb*dyx)
			for x := 0; x < dx; x++ {
				for y := 0; y < dy; y++ {
					base := (x*dy + y) * dz
					// A z-slab is a sub-run of one pencil; pencils are
					// power-of-two sized and aligned, so the slab sits in
					// one page and the typed span reads it without a
					// decode pass. The staged path covers dims large
					// enough to straddle pages.
					if s := src.ReadSpan(p.Mem(), base+lo, base+hi); len(s) == nzb {
						for zi, v := range s {
							out[zi*dyx+y*dx+x] = v
						}
					} else {
						src.ReadRange(p.Mem(), base+lo, base+hi, slab)
						for zi, v := range slab {
							out[zi*dyx+y*dx+x] = v
						}
					}
				}
			}
			dst.WriteRange(p.Mem(), lo*dyx, out)
			p.ChargeUnits(nzb*dyx, cfg.TransposeCost)
		})

		// Pass 3: transform along x, now the fastest axis of dst.
		rt.For("fft.third", 0, dz, func(p *omp.Proc, lo, hi int) {
			// Rows along the new fastest axis are power-of-two sized and
			// aligned, so each fits in one page span and the butterflies
			// run in place on page memory: the WriteSpan faults and twins
			// exactly as the staged read+write pair did.
			var row []complex128 // staged fallback for page-straddling dims
			for z := lo; z < hi; z++ {
				for y := 0; y < dy; y++ {
					off := (z*dy + y) * dx
					if s := dst.WriteSpan(p.Mem(), off, off+dx); len(s) == dx {
						fft1D(s)
						continue
					}
					if row == nil {
						row = make([]complex128, dx)
					}
					dst.ReadRange(p.Mem(), off, off+dx, row)
					fft1D(row)
					dst.WriteRange(p.Mem(), off, row)
				}
			}
			p.ChargeUnits((hi-lo)*dyx, cfg.PassCost)
		})

		cur = 1 - cur
		dx, dz = dz, dx
	}

	// Timing and traffic are measured at the end of the computation;
	// the verification checksum below is outside the paper's window.
	res := measure(rt, "fft3d", procs)
	mp := rt.MasterProc()
	const chunk = 4096
	sum := 0.0
	buf := make([]complex128, chunk)
	for off := 0; off < total; off += chunk {
		end := off + chunk
		if end > total {
			end = total
		}
		arrs[cur].ReadRange(mp.Mem(), off, end, buf[:end-off])
		for _, v := range buf[:end-off] {
			sum += math.Abs(real(v)) + math.Abs(imag(v))
		}
	}
	res.Checksum = sum
	return res, nil
}

// FFT3DReference computes the checksum of the identical sequential
// run: same transforms, same transposition, same order.
func FFT3DReference(cfg FFT3DConfig) float64 {
	total := cfg.NX * cfg.NY * cfg.NZ
	a := make([]complex128, total)
	b := make([]complex128, total)
	for i := range a {
		a[i] = fftInit(i, total)
	}
	src, dst := a, b
	dx, dy, dz := cfg.NX, cfg.NY, cfg.NZ
	col := make([]complex128, cfg.NY)
	for it := 0; it < cfg.Iters; it++ {
		dyz := dy * dz
		for x := 0; x < dx; x++ {
			plane := src[x*dyz : (x+1)*dyz]
			for y := 0; y < dy; y++ {
				fft1D(plane[y*dz : (y+1)*dz])
			}
			for z := 0; z < dz; z++ {
				for y := 0; y < dy; y++ {
					col[y] = plane[y*dz+z]
				}
				fft1D(col[:dy])
				for y := 0; y < dy; y++ {
					plane[y*dz+z] = col[y]
				}
			}
		}
		for x := 0; x < dx; x++ {
			for y := 0; y < dy; y++ {
				for z := 0; z < dz; z++ {
					dst[(z*dy+y)*dx+x] = src[(x*dy+y)*dz+z]
				}
			}
		}
		for z := 0; z < dz; z++ {
			for y := 0; y < dy; y++ {
				fft1D(dst[(z*dy+y)*dx : (z*dy+y)*dx+dx])
			}
		}
		src, dst = dst, src
		dx, dz = dz, dx
	}
	sum := 0.0
	for _, v := range src {
		sum += math.Abs(real(v)) + math.Abs(imag(v))
	}
	return sum
}
