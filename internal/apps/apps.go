// Package apps implements the four application kernels of the paper's
// evaluation (section 5.2) on the adaptive OpenMP runtime, plus
// sequential reference implementations used to verify that the DSM
// delivers exactly the same results:
//
//   - Jacobi: a two-array 5-point stencil over a 2500x2500 grid
//   - Gauss:  Gaussian elimination over a 3072x3072 matrix
//   - 3D-FFT: the NAS-style 3-D FFT (three 1-D transform passes with a
//     transposition between the second and third) on 128x64x64
//   - NBF:    the non-bonded-force kernel of a molecular dynamics code,
//     131072 atoms with 80 partners each — the irregular application
//
// Each kernel does its arithmetic for real (so results are verified
// bit-for-bit against the reference) and charges virtual compute time
// with per-element costs calibrated from the paper's one-processor
// runtimes in Table 1.
package apps

import (
	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// Calibrated per-unit compute costs, derived from Table 1's
// one-processor runs at full problem size:
//
//	Jacobi: 1283.63 s / (2500*2500*1000) element updates = 205.4 ns
//	Gauss:  1404.20 s / (3072^3/3)       element updates = 145.3 ns
//	3D-FFT: 289.90 s / 100 iters / 524288 points = 5.53 us per point
//	        per iteration, split over three transform passes and the
//	        transposition
//	NBF:    2398.79 s / (100*131072*80) interactions = 2.288 us
const (
	JacobiCostPerElem  = simtime.Seconds(205.4e-9)
	GaussCostPerElem   = simtime.Seconds(145.3e-9)
	FFTCostPerPass     = simtime.Seconds(1.60e-6) // x3 passes
	FFTCostTranspose   = simtime.Seconds(0.73e-6) // 3*1.60+0.73 = 5.53
	NBFCostPerPair     = simtime.Seconds(2.288e-6)
	NBFCostPerUpdate   = simtime.Seconds(50e-9)
	InitCostPerElement = simtime.Seconds(30e-9)
)

// Result summarises one application run, mirroring the columns of
// Table 1.
type Result struct {
	App   string
	Procs int
	// Time is the virtual wall-clock of the run.
	Time simtime.Seconds
	// Checksum verifies the computation against the reference.
	Checksum float64
	// SharedBytes is the allocated shared memory.
	SharedBytes int
	// Pages, Bytes, Messages, Diffs are the network-traffic columns:
	// full 4 KB page transfers, total payload bytes, message count and
	// diffs fetched.
	Pages    int64
	Bytes    int64
	Messages int64
	Diffs    int64
}

// MB returns the traffic volume in the paper's MB units.
func (r Result) MB() float64 { return float64(r.Bytes) / 1e6 }

// measure assembles a Result from the runtime's counters, taken at
// the end of the computation (verification output is excluded, like
// the paper's measurement window).
func measure(rt *omp.Runtime, app string, procs int) Result {
	stats := rt.Cluster().Stats().Snapshot()
	net := rt.Cluster().Fabric().Snapshot()
	return Result{
		App:         app,
		Procs:       procs,
		Time:        rt.Now(),
		SharedBytes: rt.Cluster().TotalSharedBytes(),
		Pages:       stats.PageFetches,
		Bytes:       net.TotalBytes(),
		Messages:    net.TotalMessages(),
		Diffs:       stats.DiffFetches,
	}
}

// Runner is the uniform entry point the tools and the benchmark
// harness use to run any of the four applications at a given scale.
type Runner struct {
	Name string
	// Run executes the kernel at the given linear scale (1.0 = the
	// paper's problem size) on the runtime.
	Run func(rt *omp.Runtime, scale float64) (Result, error)
	// Reference computes the sequential reference checksum at the same
	// scale.
	Reference func(scale float64) float64
}

// Runners lists the four applications in the paper's Table 1 order.
func Runners() []Runner {
	return []Runner{
		{
			Name: "gauss",
			Run: func(rt *omp.Runtime, s float64) (Result, error) {
				return RunGauss(rt, DefaultGauss().Scaled(s))
			},
			Reference: func(s float64) float64 { return GaussReference(DefaultGauss().Scaled(s)) },
		},
		{
			Name: "jacobi",
			Run: func(rt *omp.Runtime, s float64) (Result, error) {
				return RunJacobi(rt, DefaultJacobi().Scaled(s))
			},
			Reference: func(s float64) float64 { return JacobiReference(DefaultJacobi().Scaled(s)) },
		},
		{
			Name: "fft3d",
			Run: func(rt *omp.Runtime, s float64) (Result, error) {
				return RunFFT3D(rt, DefaultFFT3D().Scaled(s))
			},
			Reference: func(s float64) float64 { return FFT3DReference(DefaultFFT3D().Scaled(s)) },
		},
		{
			Name: "nbf",
			Run: func(rt *omp.Runtime, s float64) (Result, error) {
				return RunNBF(rt, DefaultNBF().Scaled(s))
			},
			Reference: func(s float64) float64 { return NBFReference(DefaultNBF().Scaled(s)) },
		},
	}
}

// TaskRunners lists the irregular kernels built on the task runtime
// (rt.Tasks). They are kept out of Runners so the Table 1 regeneration
// stays exactly the paper's four applications.
func TaskRunners() []Runner {
	return []Runner{
		{
			Name: "mergesort",
			Run: func(rt *omp.Runtime, s float64) (Result, error) {
				return RunMergesort(rt, DefaultSort().Scaled(s))
			},
			Reference: func(s float64) float64 { return MergesortReference(DefaultSort().Scaled(s)) },
		},
		{
			Name: "quadrature",
			Run: func(rt *omp.Runtime, s float64) (Result, error) {
				return RunQuadrature(rt, DefaultQuad().Scaled(s))
			},
			Reference: func(s float64) float64 { return QuadratureReference(DefaultQuad().Scaled(s)) },
		},
	}
}

// RunnerByName returns the runner with the given name, or false. Both
// the loop kernels and the task kernels are in scope.
func RunnerByName(name string) (Runner, bool) {
	for _, r := range append(Runners(), TaskRunners()...) {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// scaleDim scales a linear dimension, keeping a floor.
func scaleDim(n int, s float64, floor int) int {
	v := int(float64(n) * s)
	if v < floor {
		return floor
	}
	return v
}

// scalePow2 scales a power-of-two dimension to the nearest power of
// two, keeping a floor.
func scalePow2(n int, s float64, floor int) int {
	target := float64(n) * s
	p := floor
	for p*2 <= int(target+0.5) {
		p *= 2
	}
	return p
}

// evenDim rounds a dimension down to even, for word-aligned float32
// rows.
func evenDim(n int) int {
	if n%2 == 1 {
		return n + 1
	}
	return n
}
