package apps

import (
	"fmt"
	"math"

	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// QuadConfig parameterises the adaptive-quadrature kernel: recursive
// Simpson integration of a sharply peaked integrand tabulated in
// shared memory. The recursion refines only where the integrand is
// hard, so subtree costs differ by orders of magnitude — the skewed,
// input-dependent work distribution that defeats static partitioning
// and that tasking absorbs by stealing.
type QuadConfig struct {
	// Samples is the shared table resolution; evaluations interpolate
	// it linearly (two shared reads per evaluation).
	Samples int
	// Tol is the global error tolerance driving the refinement.
	Tol float64
	// SpawnDepth bounds task creation: intervals at depth < SpawnDepth
	// split into subtasks, deeper refinement runs inline.
	SpawnDepth int
	// MaxDepth caps the recursion.
	MaxDepth int
	// EvalCost is the compute charge per integrand evaluation
	// (0 = the calibrated default).
	EvalCost simtime.Seconds
}

// DefaultQuad returns the reference quadrature configuration.
func DefaultQuad() QuadConfig {
	return QuadConfig{Samples: 1 << 16, Tol: 2e-10, SpawnDepth: 9, MaxDepth: 40}
}

// Scaled loosens the tolerance (fewer refinement nodes) and shrinks
// the table; scale 1.0 is the reference setting.
func (c QuadConfig) Scaled(s float64) QuadConfig {
	if s <= 0 {
		s = 1
	}
	c.Samples = scalePow2(c.Samples, s, 1<<12)
	c.Tol = c.Tol / (s * s * s)
	return c
}

func (c QuadConfig) validate() error {
	if c.Samples < 16 {
		return fmt.Errorf("apps: quadrature needs Samples >= 16, got %d", c.Samples)
	}
	if c.Tol <= 0 {
		return fmt.Errorf("apps: quadrature needs a positive tolerance, got %g", c.Tol)
	}
	if c.SpawnDepth < 1 || c.MaxDepth <= c.SpawnDepth {
		return fmt.Errorf("apps: quadrature needs 1 <= SpawnDepth < MaxDepth, got %d, %d", c.SpawnDepth, c.MaxDepth)
	}
	return nil
}

// quadF is the tabulated integrand: a narrow Lorentzian peak riding on
// a smooth oscillation. Almost all refinement happens under the peak.
func quadF(x float64) float64 {
	d := x - 0.37
	return 1/(d*d+4e-4) + 2*math.Sin(8*x)
}

// quadSample evaluates the table-interpolated integrand. eval abstracts
// the table access so the parallel kernel (shared reads, priced) and
// the sequential reference (slice reads) share the arithmetic exactly.
func quadSample(eval func(j int) float64, samples int, x float64) float64 {
	pos := x * float64(samples-1)
	j := int(pos)
	if j >= samples-1 {
		j = samples - 2
	}
	frac := pos - float64(j)
	return eval(j)*(1-frac) + eval(j+1)*frac
}

func simpson(fa, fm, fb, h float64) float64 {
	return h / 6 * (fa + 4*fm + fb)
}

// quadAccept applies the Richardson acceptance test and returns the
// refined estimate when the interval is converged (or the depth cap is
// hit). Shared verbatim by the parallel kernel and the reference, so
// their recursion trees and floating-point results are identical.
func quadAccept(left, right, whole, tol float64, depth, maxDepth int) (float64, bool) {
	if depth >= maxDepth || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15, true
	}
	return 0, false
}

// RunQuadrature executes the kernel: the table is built by a parallel
// loop, then one task region integrates [0,1]. Each interval refine
// evaluates the two quarter points (two shared table reads and one
// EvalCost charge apiece, on the process that runs the task) and, when
// unconverged, descends — spawning its halves as tasks down to
// SpawnDepth, inline below. Results combine as left+right at every
// node regardless of where the children ran, so the value is
// schedule-independent and bit-identical to the sequential reference.
func RunQuadrature(rt *omp.Runtime, cfg QuadConfig) (Result, error) {
	if cfg.EvalCost == 0 {
		cfg.EvalCost = QuadEvalCost
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	s := cfg.Samples
	table, err := omp.Alloc[float64](rt, "quad.table", s)
	if err != nil {
		return Result{}, err
	}
	procs := rt.NProcs()

	rt.For("quad.init", 0, s, func(p *omp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = quadF(float64(lo+i) / float64(s-1))
		}
		table.WriteRange(p.Mem(), lo, buf)
		p.ChargeUnits(hi-lo, InitCostPerElement)
	})

	feval := func(tp *omp.TaskProc, x float64) float64 {
		tp.Charge(cfg.EvalCost)
		return quadSample(func(j int) float64 { return table.Get(tp.Mem(), j) }, s, x)
	}
	var rec func(tp *omp.TaskProc, a, b, fa, fm, fb, whole, tol float64, depth int) float64
	rec = func(tp *omp.TaskProc, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
		m := (a + b) / 2
		flm := feval(tp, (a+m)/2)
		frm := feval(tp, (m+b)/2)
		left := simpson(fa, flm, fm, m-a)
		right := simpson(fm, frm, fb, b-m)
		if v, done := quadAccept(left, right, whole, tol, depth, cfg.MaxDepth); done {
			return v
		}
		if depth < cfg.SpawnDepth {
			var l, r float64
			tp.Spawn(func(c *omp.TaskProc) {
				l = rec(c, a, m, fa, flm, fm, left, tol/2, depth+1)
			})
			tp.Spawn(func(c *omp.TaskProc) {
				r = rec(c, m, b, fm, frm, fb, right, tol/2, depth+1)
			})
			tp.TaskWait()
			return l + r
		}
		return rec(tp, a, m, fa, flm, fm, left, tol/2, depth+1) +
			rec(tp, m, b, fm, frm, fb, right, tol/2, depth+1)
	}

	var integral float64
	rt.Tasks("quad", func(tp *omp.TaskProc) {
		fa, fm, fb := feval(tp, 0), feval(tp, 0.5), feval(tp, 1)
		whole := simpson(fa, fm, fb, 1)
		integral = rec(tp, 0, 1, fa, fm, fb, whole, cfg.Tol, 0)
	})

	res := measure(rt, "quadrature", procs)
	res.Checksum = integral
	return res, nil
}

// QuadratureReference integrates the same configuration sequentially
// (plain slice, no runtime) with the identical recursion, for the
// bit-exact reference checksum.
func QuadratureReference(cfg QuadConfig) float64 {
	if cfg.EvalCost == 0 {
		cfg.EvalCost = QuadEvalCost
	}
	if err := cfg.validate(); err != nil {
		return math.NaN()
	}
	s := cfg.Samples
	table := make([]float64, s)
	for i := range table {
		table[i] = quadF(float64(i) / float64(s-1))
	}
	f := func(x float64) float64 {
		return quadSample(func(j int) float64 { return table[j] }, s, x)
	}
	var rec func(a, b, fa, fm, fb, whole, tol float64, depth int) float64
	rec = func(a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
		m := (a + b) / 2
		flm := f((a + m) / 2)
		frm := f((m + b) / 2)
		left := simpson(fa, flm, fm, m-a)
		right := simpson(fm, frm, fb, b-m)
		if v, done := quadAccept(left, right, whole, tol, depth, cfg.MaxDepth); done {
			return v
		}
		return rec(a, m, fa, flm, fm, left, tol/2, depth+1) +
			rec(m, b, fm, frm, fb, right, tol/2, depth+1)
	}
	fa, fm, fb := f(0), f(0.5), f(1)
	whole := simpson(fa, fm, fb, 1)
	return rec(0, 1, fa, fm, fb, whole, cfg.Tol, 0)
}
