package apps

import (
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/omp"
)

// Both tasking kernels at test scale.
func testSortConfig() SortConfig { return SortConfig{N: 1 << 15, Cutoff: 1 << 11} }
func testQuadConfig() QuadConfig {
	return QuadConfig{Samples: 1 << 13, Tol: 2e-7, SpawnDepth: 7, MaxDepth: 30}
}

// Mergesort checksums are bit-identical to the sequential reference
// across team sizes.
func TestMergesortMatchesReferenceAcrossTeamSizes(t *testing.T) {
	cfg := testSortConfig()
	want := MergesortReference(cfg)
	for _, procs := range []int{1, 2, 4, 7} {
		rt, err := omp.New(omp.Config{Hosts: 8, Procs: procs, Adaptive: true})
		if err != nil {
			t.Fatalf("New(%d): %v", procs, err)
		}
		res, err := RunMergesort(rt, cfg)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Checksum != want {
			t.Errorf("procs=%d: checksum %.17g, reference %.17g", procs, res.Checksum, want)
		}
	}
}

// Quadrature is schedule-independent: the integral is bit-identical to
// the sequential recursion for every team size.
func TestQuadratureMatchesReferenceAcrossTeamSizes(t *testing.T) {
	cfg := testQuadConfig()
	want := QuadratureReference(cfg)
	for _, procs := range []int{1, 2, 4, 7} {
		rt, err := omp.New(omp.Config{Hosts: 8, Procs: procs, Adaptive: true})
		if err != nil {
			t.Fatalf("New(%d): %v", procs, err)
		}
		res, err := RunQuadrature(rt, cfg)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Checksum != want {
			t.Errorf("procs=%d: integral %.17g, reference %.17g", procs, res.Checksum, want)
		}
	}
}

// Mid-run join and leave events leave both kernels' checksums exact.
func TestTaskKernelsUnderAdaptEvents(t *testing.T) {
	type kernel struct {
		name string
		run  func(rt *omp.Runtime) (Result, error)
		want float64
	}
	// Inflated per-unit costs stretch the regions past the ~0.76s spawn
	// lead a join event needs to mature mid-run.
	sortCfg, quadCfg := testSortConfig(), testQuadConfig()
	sortCfg.CompareCost = SortCompareCost * 100
	sortCfg.MergeCost = SortMergeCost * 100
	quadCfg.EvalCost = QuadEvalCost * 40
	kernels := []kernel{
		{"mergesort", func(rt *omp.Runtime) (Result, error) { return RunMergesort(rt, sortCfg) },
			MergesortReference(sortCfg)},
		{"quadrature", func(rt *omp.Runtime) (Result, error) { return RunQuadrature(rt, quadCfg) },
			QuadratureReference(quadCfg)},
	}
	for _, k := range kernels {
		rt, err := omp.New(omp.Config{Hosts: 8, Procs: 3, Adaptive: true})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := rt.Submit(adapt.Event{Kind: adapt.KindJoin, Host: 6, At: 0.01}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if err := rt.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 1, At: 0.9, Grace: 60}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		res, err := k.run(rt)
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		if res.Checksum != k.want {
			t.Errorf("%s under adapt events: checksum %.17g, reference %.17g", k.name, res.Checksum, k.want)
		}
		if len(rt.AdaptLog()) == 0 {
			t.Errorf("%s: no adaptation applied (run too short for the schedule?) final team %v, t=%v",
				k.name, rt.Team(), rt.Now())
		}
	}
}

// The task runners are registered and verify like the loop runners.
func TestTaskRunnersRegistered(t *testing.T) {
	for _, name := range []string{"mergesort", "quadrature"} {
		r, ok := RunnerByName(name)
		if !ok {
			t.Fatalf("RunnerByName(%q) not found", name)
		}
		rt, err := omp.New(omp.Config{Hosts: 4, Procs: 2, Adaptive: true})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := r.Run(rt, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := r.Reference(0.05); res.Checksum != want {
			t.Errorf("%s at scale 0.05: checksum %.17g, reference %.17g", name, res.Checksum, want)
		}
	}
	// Table 1 regeneration keeps exactly the paper's four applications.
	if got := len(Runners()); got != 4 {
		t.Errorf("Runners() lists %d kernels, want the paper's 4", got)
	}
}
