package apps

import (
	"fmt"
	"math/bits"
	"sort"

	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// Calibrated per-unit costs for the tasking kernels, in the style of
// the Table 1 constants: a comparison-swap step of an in-cache sort and
// a merge move on the paper's 300 MHz Pentium II.
const (
	SortCompareCost = simtime.Seconds(80e-9)
	SortMergeCost   = simtime.Seconds(60e-9)
	QuadEvalCost    = simtime.Seconds(25e-6)
)

// SortConfig parameterises the parallel mergesort kernel: the
// divide-and-conquer archetype of OpenMP tasking. N float64 keys are
// sorted by recursive task splitting down to Cutoff-sized leaves; each
// merge waits on its two child tasks, so the task tree is as deep as
// the recursion — precisely the shape loop schedules cannot express.
type SortConfig struct {
	// N is the key count, a power of two so every recursion boundary
	// stays page-aligned (512 float64 per 4 KB page).
	N int
	// Cutoff is the leaf run length sorted in place.
	Cutoff int
	// CompareCost is charged per element per level of the leaf sort;
	// MergeCost per element per merge. Zero means the calibrated
	// defaults.
	CompareCost simtime.Seconds
	MergeCost   simtime.Seconds
}

// DefaultSort returns the reference mergesort configuration: one
// million keys (8 MB of shared memory), 8 Ki-element leaves.
func DefaultSort() SortConfig {
	return SortConfig{N: 1 << 20, Cutoff: 1 << 13}
}

// Scaled shrinks the key count to the nearest power of two; scale 1.0
// is the reference size. The cutoff shrinks with it so small runs
// still build a tree.
func (c SortConfig) Scaled(s float64) SortConfig {
	c.N = scalePow2(c.N, s, 1<<12)
	for c.Cutoff > c.N/4 && c.Cutoff > 512 {
		c.Cutoff /= 2
	}
	return c
}

func (c SortConfig) validate() error {
	if c.N < 2 || c.N&(c.N-1) != 0 {
		return fmt.Errorf("apps: mergesort needs N a power of two >= 2, got %d", c.N)
	}
	if c.Cutoff < 2 {
		return fmt.Errorf("apps: mergesort needs Cutoff >= 2, got %d", c.Cutoff)
	}
	return nil
}

// sortValue is the deterministic unsorted input: a splitmix64 hash of
// the index mapped into [0,1).
func sortValue(i int) float64 {
	h := uint64(i)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// sortChecksum folds a sorted slice into the verification value: a
// position-weighted sum, so any misplaced element changes it.
func sortChecksum(v []float64) float64 {
	sum := 0.0
	for i, x := range v {
		sum += x * float64(i%101+1)
	}
	return sum
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// RunMergesort executes the kernel as one task region. Leaves read
// their range, sort it locally and write it back; interior tasks spawn
// their halves, taskwait, and merge — reading data their children may
// have produced on other processes, which is exactly the consistency
// the task runtime's steal-time release/acquire pays for.
func RunMergesort(rt *omp.Runtime, cfg SortConfig) (Result, error) {
	if cfg.CompareCost == 0 {
		cfg.CompareCost = SortCompareCost
	}
	if cfg.MergeCost == 0 {
		cfg.MergeCost = SortMergeCost
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := cfg.N
	data, err := omp.Alloc[float64](rt, "msort.data", n)
	if err != nil {
		return Result{}, err
	}
	procs := rt.NProcs()

	rt.For("msort.init", 0, n, func(p *omp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = sortValue(lo + i)
		}
		data.WriteRange(p.Mem(), lo, buf)
		p.ChargeUnits(hi-lo, InitCostPerElement)
	})

	var rec func(tp *omp.TaskProc, lo, hi int)
	rec = func(tp *omp.TaskProc, lo, hi int) {
		if hi-lo <= cfg.Cutoff {
			buf := make([]float64, hi-lo)
			data.ReadRange(tp.Mem(), lo, hi, buf)
			sort.Float64s(buf)
			data.WriteRange(tp.Mem(), lo, buf)
			tp.ChargeUnits((hi-lo)*log2ceil(hi-lo), cfg.CompareCost)
			return
		}
		mid := lo + (hi-lo)/2
		tp.Spawn(func(c *omp.TaskProc) { rec(c, lo, mid) })
		tp.Spawn(func(c *omp.TaskProc) { rec(c, mid, hi) })
		tp.TaskWait()
		left := make([]float64, mid-lo)
		right := make([]float64, hi-mid)
		data.ReadRange(tp.Mem(), lo, mid, left)
		data.ReadRange(tp.Mem(), mid, hi, right)
		merged := make([]float64, hi-lo)
		i, j := 0, 0
		for k := range merged {
			switch {
			case i == len(left):
				merged[k] = right[j]
				j++
			case j == len(right) || left[i] <= right[j]:
				merged[k] = left[i]
				i++
			default:
				merged[k] = right[j]
				j++
			}
		}
		data.WriteRange(tp.Mem(), lo, merged)
		tp.ChargeUnits(hi-lo, cfg.MergeCost)
	}
	rt.Tasks("msort", func(tp *omp.TaskProc) { rec(tp, 0, n) })

	res := measure(rt, "mergesort", procs)
	mp := rt.MasterProc()
	out := make([]float64, n)
	data.ReadRange(mp.Mem(), 0, n, out)
	for i := 1; i < n; i++ {
		if out[i-1] > out[i] {
			return res, fmt.Errorf("apps: mergesort output unsorted at %d", i)
		}
	}
	res.Checksum = sortChecksum(out)
	return res, nil
}

// MergesortReference computes the checksum of the identical sequential
// sort.
func MergesortReference(cfg SortConfig) float64 {
	v := make([]float64, cfg.N)
	for i := range v {
		v[i] = sortValue(i)
	}
	sort.Float64s(v)
	return sortChecksum(v)
}
