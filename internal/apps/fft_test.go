package apps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference with unitary scaling.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s / complex(math.Sqrt(float64(n)), 0)
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		fft1D(got)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: fft[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTUnitaryEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	energy := func(v []complex128) float64 {
		e := 0.0
		for _, c := range v {
			e += real(c)*real(c) + imag(c)*imag(c)
		}
		return e
	}
	before := energy(x)
	fft1D(x)
	after := energy(x)
	if math.Abs(before-after) > 1e-9*before {
		t.Fatalf("unitary FFT must preserve energy: %g -> %g", before, after)
	}
}

func TestFFTDCComponent(t *testing.T) {
	x := make([]complex128, 16)
	for i := range x {
		x[i] = 1
	}
	fft1D(x)
	if cmplx.Abs(x[0]-complex(4, 0)) > 1e-12 { // 16/sqrt(16)
		t.Fatalf("DC bin = %v, want 4", x[0])
	}
	for i := 1; i < 16; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two length must panic")
		}
	}()
	fft1D(make([]complex128, 12))
}

func TestFFTLengthOne(t *testing.T) {
	x := []complex128{3 + 4i}
	fft1D(x)
	if x[0] != 3+4i {
		t.Fatalf("length-1 FFT changed the value: %v", x[0])
	}
}
