// Package ckpt implements the fault-tolerance checkpointing of section
// 4.3 of Scherer et al. (PPoPP 1999). Checkpoints are taken only at
// adaptation points, where slave processes hold no private state: a
// garbage collection brings shared memory into a well-defined state,
// the master collects every page it lacks, and the master alone writes
// the checkpoint. Recovery restarts the master from the file; shared
// data redistributes through ordinary page faults.
//
// Where the paper's system checkpoints the master's whole process image
// with libckpt, this implementation saves the shared regions plus an
// application-supplied state map (the master's loop counters): at an
// adaptation point that *is* the recoverable state, which is exactly
// the argument the paper makes for checkpointing only there.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"nowomp/internal/dsm"
	"nowomp/internal/omp"
	"nowomp/internal/simtime"
)

// Snapshot is the on-disk checkpoint format.
type Snapshot struct {
	Version    int
	Regions    []omp.RegionDump
	Team       []int
	MasterTime float64
	Forks      int64
	State      map[string][]byte
	// Protocol records the coherence protocol of the checkpointed run
	// ("tmk" or "hlrc"); restore refuses a runtime configured with a
	// different one, because the two price the recovery differently.
	// Empty in pre-protocol snapshots, which restore as whatever the
	// config says (they were all Tmk).
	Protocol string
}

const version = 1

// Save checkpoints the runtime to w. It must be called between
// parallel constructs (an adaptation point). The state map carries the
// master program's resumption data — typically its outer iteration
// counter — gob-encoded per key.
func Save(rt *omp.Runtime, w io.Writer, state map[string]any) (dsm.TransferReport, error) {
	dumps, rep, err := rt.PrepareCheckpoint()
	if err != nil {
		return rep, fmt.Errorf("ckpt: collect: %w", err)
	}
	snap := Snapshot{
		Version:    version,
		Regions:    dumps,
		MasterTime: float64(rt.Now()),
		Forks:      rt.Forks(),
		State:      make(map[string][]byte, len(state)),
		Protocol:   rt.Cluster().Protocol().String(),
	}
	for _, h := range rt.Team() {
		snap.Team = append(snap.Team, int(h))
	}
	for k, v := range state {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return rep, fmt.Errorf("ckpt: encode state %q: %w", k, err)
		}
		snap.State[k] = buf.Bytes()
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return rep, fmt.Errorf("ckpt: write: %w", err)
	}
	return rep, nil
}

// SaveFile checkpoints the runtime to path, atomically (write to a
// temporary file, then rename), so a crash during checkpointing never
// corrupts the previous checkpoint.
func SaveFile(rt *omp.Runtime, path string, state map[string]any) (dsm.TransferReport, error) {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return dsm.TransferReport{}, fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	rep, err := Save(rt, tmp, state)
	if err != nil {
		tmp.Close()
		return rep, err
	}
	if err := tmp.Close(); err != nil {
		return rep, fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return rep, fmt.Errorf("ckpt: %w", err)
	}
	return rep, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Restored gives access to the application state saved in a snapshot.
type Restored struct {
	state map[string][]byte
}

// State decodes the value saved under key into ptr.
func (r *Restored) State(key string, ptr any) error {
	raw, ok := r.state[key]
	if !ok {
		return fmt.Errorf("ckpt: no state saved under %q", key)
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(ptr); err != nil {
		return fmt.Errorf("ckpt: decode state %q: %w", key, err)
	}
	return nil
}

// Keys lists the saved state keys.
func (r *Restored) Keys() []string {
	var ks []string
	for k := range r.state {
		ks = append(ks, k)
	}
	return ks
}

// Restore rebuilds a runtime from a checkpoint. The returned runtime
// is in restore mode: the master program must replay its shared-memory
// allocations (same names, sizes, order), which rebind to the
// checkpointed contents, and should then consult Restored.State to
// resume its outer loop.
func Restore(cfg omp.Config, r io.Reader) (*omp.Runtime, *Restored, error) {
	var snap Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("ckpt: read: %w", err)
	}
	if snap.Version != version {
		return nil, nil, fmt.Errorf("ckpt: snapshot version %d, want %d", snap.Version, version)
	}
	if len(snap.Team) == 0 {
		return nil, nil, fmt.Errorf("ckpt: snapshot has no team")
	}
	if snap.Protocol != "" && snap.Protocol != cfg.Protocol.String() {
		return nil, nil, fmt.Errorf("ckpt: snapshot was taken under the %s protocol, config selects %s; restore with the matching Config.Protocol",
			snap.Protocol, cfg.Protocol)
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	team := make([]dsm.HostID, len(snap.Team))
	for i, h := range snap.Team {
		if h < 0 || h >= cfg.Hosts {
			return nil, nil, fmt.Errorf("ckpt: checkpointed host %d outside pool of %d", h, cfg.Hosts)
		}
		team[i] = dsm.HostID(h)
	}
	if err := rt.RestoreTeam(team); err != nil {
		return nil, nil, err
	}
	rt.BeginRestore(snap.Regions, simtime.Seconds(snap.MasterTime), snap.Forks)
	return rt, &Restored{state: snap.State}, nil
}

// RestoreFile rebuilds a runtime from the checkpoint at path.
func RestoreFile(cfg omp.Config, path string) (*omp.Runtime, *Restored, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	return Restore(cfg, f)
}
