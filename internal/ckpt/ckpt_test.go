package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nowomp/internal/adapt"
	"nowomp/internal/dsm"
	"nowomp/internal/omp"
)

func buildAndRun(t *testing.T, rt *omp.Runtime, from, to int) float64 {
	t.Helper()
	a, err := rt.AllocFloat64("acc", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Restored() && from != 0 {
		t.Fatal("test misuse: fresh runtime must start at 0")
	}
	for it := from; it < to; it++ {
		rt.ParallelFor("step", 0, 2048, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			a.ReadRange(p.Mem(), lo, hi, buf)
			for i := range buf {
				buf[i] += float64(it + 1)
			}
			a.WriteRange(p.Mem(), lo, buf)
		})
	}
	return rt.ParallelForReduce("sum", 0, 2048, 0,
		func(x, y float64) float64 { return x + y },
		func(p *omp.Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a.Get(p.Mem(), i)
			}
			return s
		})
}

func TestCheckpointRestartMatchesUninterruptedRun(t *testing.T) {
	cfg := omp.Config{Hosts: 4, Procs: 3, Adaptive: true}

	// Uninterrupted run: 10 iterations.
	rtFull, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := buildAndRun(t, rtFull, 0, 10)

	// Interrupted run: 6 iterations, checkpoint, "crash", restore,
	// 4 more iterations.
	rt1, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = buildAndRunNoSum(t, rt1, 0, 6)
	var buf bytes.Buffer
	rep, err := Save(rt1, &buf, map[string]any{"iter": 6})
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("checkpoint must cost time (GC + collect)")
	}

	rt2, restored, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	var iter int
	if err := restored.State("iter", &iter); err != nil {
		t.Fatal(err)
	}
	if iter != 6 {
		t.Fatalf("restored iter = %d, want 6", iter)
	}
	if !rt2.Restored() {
		t.Fatal("runtime must report restored mode")
	}
	got := buildAndRun(t, rt2, iter, 10)
	if got != want {
		t.Fatalf("restarted result = %g, uninterrupted = %g", got, want)
	}
}

func buildAndRunNoSum(t *testing.T, rt *omp.Runtime, from, to int) float64 {
	t.Helper()
	a, err := rt.AllocFloat64("acc", 2048)
	if err != nil {
		t.Fatal(err)
	}
	for it := from; it < to; it++ {
		rt.ParallelFor("step", 0, 2048, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			a.ReadRange(p.Mem(), lo, hi, buf)
			for i := range buf {
				buf[i] += float64(it + 1)
			}
			a.WriteRange(p.Mem(), lo, buf)
		})
	}
	return 0
}

func TestRestorePreservesTeamAndClock(t *testing.T) {
	cfg := omp.Config{Hosts: 5, Procs: 4, Adaptive: true}
	rt1, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buildAndRunNoSum(t, rt1, 0, 3)
	timeBefore := rt1.Now()
	var buf bytes.Buffer
	if _, err := Save(rt1, &buf, nil); err != nil {
		t.Fatal(err)
	}
	rt2, _, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt2.Team(), rt1.Team()) {
		t.Fatalf("restored team %v, want %v", rt2.Team(), rt1.Team())
	}
	if rt2.Now() < timeBefore {
		t.Fatalf("restored clock %v precedes checkpoint time %v", rt2.Now(), timeBefore)
	}
	if rt2.Forks() != rt1.Forks() {
		t.Fatalf("restored forks %d, want %d", rt2.Forks(), rt1.Forks())
	}
}

func TestRestoreSmallerTeamAfterLeave(t *testing.T) {
	// Checkpoint taken when the team had shrunk: restore must not
	// resurrect the departed host.
	cfg := omp.Config{Hosts: 4, Procs: 4, Adaptive: true}
	rt1, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rt1.AllocFloat64("acc", 512)
	rt1.ParallelFor("w", 0, 512, func(p *omp.Proc, lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Set(p.Mem(), i, 1)
		}
	})
	if err := rt1.Submit(adapt.Event{Kind: adapt.KindLeave, Host: 2, At: rt1.Now()}); err != nil {
		t.Fatal(err)
	}
	rt1.Parallel("tick", func(p *omp.Proc) {})
	if rt1.NProcs() != 3 {
		t.Fatalf("team = %d, want 3", rt1.NProcs())
	}
	var buf bytes.Buffer
	if _, err := Save(rt1, &buf, nil); err != nil {
		t.Fatal(err)
	}
	rt2, _, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.NProcs() != 3 {
		t.Fatalf("restored team = %d, want 3", rt2.NProcs())
	}
	if rt2.Cluster().Host(dsm.HostID(2)).Active() {
		t.Fatal("departed host resurrected by restore")
	}
}

func TestSaveFileAtomicAndRestoreFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.ckpt")
	cfg := omp.Config{Hosts: 3, Procs: 2, Adaptive: true}
	rt1, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buildAndRunNoSum(t, rt1, 0, 2)
	if _, err := SaveFile(rt1, path, map[string]any{"iter": 2}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
	rt2, restored, err := RestoreFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	var iter int
	if err := restored.State("iter", &iter); err != nil || iter != 2 {
		t.Fatalf("iter = %d, err = %v", iter, err)
	}
	if rt2 == nil {
		t.Fatal("nil runtime")
	}
}

func TestRestoreErrors(t *testing.T) {
	cfg := omp.Config{Hosts: 3, Procs: 2, Adaptive: true}
	// Garbage input.
	if _, _, err := Restore(cfg, bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage input must fail")
	}
	// Allocation replay mismatch.
	rt1, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt1.AllocFloat64("acc", 128); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Save(rt1, &buf, nil); err != nil {
		t.Fatal(err)
	}
	rt2, _, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.AllocFloat64("other-name", 128); !errors.Is(err, omp.ErrRestoreMismatch) {
		t.Fatalf("mismatched allocation replay must fail with ErrRestoreMismatch, got %v", err)
	}
	// Missing state key.
	var r Restored
	var x int
	if err := (&r).State("nope", &x); err == nil {
		t.Fatal("missing key must fail")
	}
}

func TestRestoreFileMissing(t *testing.T) {
	cfg := omp.Config{Hosts: 2, Procs: 1, Adaptive: true}
	if _, _, err := RestoreFile(cfg, filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file must fail")
	}
}
