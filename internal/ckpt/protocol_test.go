package ckpt

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nowomp/internal/dsm"
	"nowomp/internal/omp"
)

// ckptProgram runs a few accumulation sweeps and checkpoints, then
// returns the snapshot bytes and the expected per-element value.
func ckptProgram(t *testing.T, proto dsm.ProtocolKind) ([]byte, float64) {
	t.Helper()
	rt, err := omp.New(omp.Config{Hosts: 4, Procs: 3, Adaptive: true, Protocol: proto})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	acc, err := omp.Alloc[float64](rt, "acc", n)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 3; it++ {
		rt.For("step", 0, n, func(p *omp.Proc, lo, hi int) {
			buf := make([]float64, hi-lo)
			acc.ReadRange(p.Mem(), lo, hi, buf)
			for i := range buf {
				buf[i]++
			}
			acc.WriteRange(p.Mem(), lo, buf)
		})
	}
	var buf bytes.Buffer
	if _, err := Save(rt, &buf, map[string]any{"iter": 3}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), 3
}

// TestRestoreUnderHLRC round-trips a checkpoint taken under HLRC: the
// restored runtime rebinds the allocation, resumes, and computes the
// same result.
func TestRestoreUnderHLRC(t *testing.T) {
	snap, want := ckptProgram(t, dsm.HLRC)
	rt, restored, err := Restore(omp.Config{Hosts: 4, Procs: 3, Adaptive: true, Protocol: dsm.HLRC},
		bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var iter int
	if err := restored.State("iter", &iter); err != nil {
		t.Fatal(err)
	}
	if iter != 3 {
		t.Fatalf("restored iter = %d, want 3", iter)
	}
	acc, err := omp.Alloc[float64](rt, "acc", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Cluster().Protocol() != dsm.HLRC {
		t.Fatalf("restored protocol = %v, want hlrc", rt.Cluster().Protocol())
	}
	// One more sweep on the restored team exercises redistribution
	// through faults from the master.
	rt.For("step", 0, 3000, func(p *omp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		acc.ReadRange(p.Mem(), lo, hi, buf)
		for i := range buf {
			buf[i]++
		}
		acc.WriteRange(p.Mem(), lo, buf)
	})
	got := acc.Get(rt.MasterProc().Mem(), 1500)
	if got != want+1 {
		t.Fatalf("element = %g after restore+sweep, want %g", got, want+1)
	}
}

// TestRestoreRejectsProtocolMismatch: a checkpoint taken under one
// protocol refuses to restore into a runtime configured with the
// other.
func TestRestoreRejectsProtocolMismatch(t *testing.T) {
	snap, _ := ckptProgram(t, dsm.HLRC)
	_, _, err := Restore(omp.Config{Hosts: 4, Procs: 3, Adaptive: true, Protocol: dsm.Tmk},
		bytes.NewReader(snap))
	if err == nil {
		t.Fatal("restore accepted a protocol mismatch")
	}
	if !strings.Contains(err.Error(), "hlrc") || !strings.Contains(err.Error(), "tmk") {
		t.Fatalf("mismatch error does not name both protocols: %v", err)
	}

	snap, _ = ckptProgram(t, dsm.Tmk)
	if _, _, err := Restore(omp.Config{Hosts: 4, Procs: 3, Adaptive: true, Protocol: dsm.Tmk},
		bytes.NewReader(snap)); err != nil {
		t.Fatalf("matching tmk restore failed: %v", err)
	}
}

// TestRestoreMismatchStillWrapsSentinels: the protocol check must not
// mask the existing sentinel behaviour for allocation replays.
func TestRestoreMismatchStillWrapsSentinels(t *testing.T) {
	snap, _ := ckptProgram(t, dsm.HLRC)
	rt, _, err := Restore(omp.Config{Hosts: 4, Procs: 3, Adaptive: true, Protocol: dsm.HLRC},
		bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := omp.Alloc[float64](rt, "wrong-name", 3000); !errors.Is(err, omp.ErrRestoreMismatch) {
		t.Fatalf("allocation replay divergence = %v, want ErrRestoreMismatch", err)
	}
}
