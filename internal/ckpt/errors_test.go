package ckpt

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"nowomp/internal/omp"
)

func TestSaveRejectsUnencodableState(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 2, Procs: 1, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat64("a", 16); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = Save(rt, &buf, map[string]any{"bad": make(chan int)})
	if err == nil || !strings.Contains(err.Error(), "encode state") {
		t.Fatalf("unencodable state must fail, got %v", err)
	}
}

func TestRestoreVersionMismatch(t *testing.T) {
	snap := Snapshot{Version: 999, Team: []int{0}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	_, _, err := Restore(omp.Config{Hosts: 2, Procs: 1, Adaptive: true}, &buf)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch must fail, got %v", err)
	}
}

func TestRestoreEmptyTeam(t *testing.T) {
	snap := Snapshot{Version: version}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	_, _, err := Restore(omp.Config{Hosts: 2, Procs: 1, Adaptive: true}, &buf)
	if err == nil || !strings.Contains(err.Error(), "no team") {
		t.Fatalf("empty team must fail, got %v", err)
	}
}

func TestRestoreHostOutsidePool(t *testing.T) {
	snap := Snapshot{Version: version, Team: []int{0, 9}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	_, _, err := Restore(omp.Config{Hosts: 2, Procs: 1, Adaptive: true}, &buf)
	if err == nil || !strings.Contains(err.Error(), "outside pool") {
		t.Fatalf("out-of-pool host must fail, got %v", err)
	}
}

func TestRestoredKeys(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 2, Procs: 1, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AllocFloat64("a", 16); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Save(rt, &buf, map[string]any{"x": 1, "y": "two"}); err != nil {
		t.Fatal(err)
	}
	_, restored, err := Restore(omp.Config{Hosts: 2, Procs: 1, Adaptive: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	keys := restored.Keys()
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want 2 entries", keys)
	}
	var y string
	if err := restored.State("y", &y); err != nil || y != "two" {
		t.Fatalf("y = %q, err %v", y, err)
	}
	// Type mismatch on decode.
	var wrong int
	if err := restored.State("y", &wrong); err == nil {
		t.Fatal("type-mismatched decode must fail")
	}
}

func TestSaveFileBadDirectory(t *testing.T) {
	rt, err := omp.New(omp.Config{Hosts: 2, Procs: 1, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SaveFile(rt, "/nonexistent-dir-xyz/x.ckpt", nil); err == nil {
		t.Fatal("unwritable directory must fail")
	}
}

func TestDirOf(t *testing.T) {
	if got := dirOf("/a/b/c.ckpt"); got != "/a/b" {
		t.Fatalf("dirOf = %q", got)
	}
	if got := dirOf("c.ckpt"); got != "." {
		t.Fatalf("dirOf bare = %q", got)
	}
}
