package ckpt

import (
	"bytes"
	"testing"

	"nowomp/internal/omp"
	"nowomp/internal/shmem"
)

// roundTrip checkpoints a runtime holding an Array[T] and a Matrix[T],
// restores it into a fresh runtime, replays the allocations, and
// verifies the contents survived byte-exactly. This covers the
// element-size-aware region replay for one Element instantiation.
func roundTrip[T shmem.Element](t *testing.T, at func(i int) T) {
	t.Helper()
	cfg := omp.Config{Hosts: 3, Procs: 2, Adaptive: true}
	rt, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n, rows, cols = 64, 8, 6
	arr, err := omp.Alloc[T](rt, "arr", n)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := omp.AllocMatrix[T](rt, "mx", rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	m := rt.MasterProc().Mem()
	vals := make([]T, n)
	for i := range vals {
		vals[i] = at(i)
	}
	arr.WriteRange(m, 0, vals)
	row := make([]T, cols)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = at(i*cols + j)
		}
		mx.WriteRow(m, i, row)
	}

	var buf bytes.Buffer
	if _, err := Save(rt, &buf, map[string]any{"it": 3}); err != nil {
		t.Fatal(err)
	}

	rt2, restored, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	arr2, err := omp.Alloc[T](rt2, "arr", n)
	if err != nil {
		t.Fatal(err)
	}
	mx2, err := omp.AllocMatrix[T](rt2, "mx", rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	m2 := rt2.MasterProc().Mem()
	got := make([]T, n)
	arr2.ReadRange(m2, 0, n, got)
	for i := range got {
		if got[i] != at(i) {
			t.Fatalf("restored arr[%d] = %v, want %v", i, got[i], at(i))
		}
	}
	for i := 0; i < rows; i++ {
		mx2.ReadRow(m2, i, row)
		for j := range row {
			if row[j] != at(i*cols+j) {
				t.Fatalf("restored mx(%d,%d) = %v, want %v", i, j, row[j], at(i*cols+j))
			}
		}
	}
	var it int
	if err := restored.State("it", &it); err != nil || it != 3 {
		t.Fatalf("restored state it = %d, err %v", it, err)
	}
}

func TestRoundTripAllElementTypes(t *testing.T) {
	roundTrip(t, func(i int) float32 { return float32(i) * 1.5 })
	roundTrip(t, func(i int) float64 { return float64(i)*0.25 - 3 })
	roundTrip(t, func(i int) complex128 { return complex(float64(i), -float64(i)) })
	roundTrip(t, func(i int) int32 { return int32(i*7 - 100) })
	roundTrip(t, func(i int) int64 { return int64(i)<<33 - 5 })
	roundTrip(t, func(i int) uint8 { return uint8(i * 3) })
}

// TestRoundTripLegacyAliases saves through the legacy typed
// allocators and replays through the generic ones (and vice versa),
// pinning that the alias types share the generic codec and region
// layout byte-for-byte.
func TestRoundTripLegacyAliases(t *testing.T) {
	cfg := omp.Config{Hosts: 2, Procs: 1, Adaptive: true}
	rt, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rt.MasterProc().Mem()

	f64, err := rt.AllocFloat64("f64", 16)
	if err != nil {
		t.Fatal(err)
	}
	f64.WriteRange(m, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f32, err := rt.AllocFloat32("f32", 8)
	if err != nil {
		t.Fatal(err)
	}
	f32.WriteRange(m, 0, []float32{0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5})
	z, err := rt.AllocComplex128("z", 4)
	if err != nil {
		t.Fatal(err)
	}
	z.WriteRange(m, 0, []complex128{1i, 2, 3 + 4i, -5})
	i32, err := rt.AllocInt32("i32", 8)
	if err != nil {
		t.Fatal(err)
	}
	i32.WriteRange(m, 0, []int32{-1, 2, -3, 4, -5, 6, -7, 8})
	m64, err := rt.AllocFloat64Matrix("m64", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m64.WriteRow(m, 1, []float64{9, 8, 7, 6})
	m32, err := rt.AllocFloat32Matrix("m32", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m32.WriteRow(m, 0, []float32{1, 2, 3, 4})

	var buf bytes.Buffer
	if _, err := Save(rt, &buf, nil); err != nil {
		t.Fatal(err)
	}
	rt2, _, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Replay through the generic allocators: same names, same element
	// sizes, so the byte-based replay must accept them.
	gf64, err := omp.Alloc[float64](rt2, "f64", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := omp.Alloc[float32](rt2, "f32", 8); err != nil {
		t.Fatal(err)
	}
	gz, err := omp.Alloc[complex128](rt2, "z", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := omp.Alloc[int32](rt2, "i32", 8); err != nil {
		t.Fatal(err)
	}
	gm64, err := omp.AllocMatrix[float64](rt2, "m64", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := omp.AllocMatrix[float32](rt2, "m32", 2, 4); err != nil {
		t.Fatal(err)
	}
	m2 := rt2.MasterProc().Mem()
	if v := gf64.Get(m2, 9); v != 10 {
		t.Fatalf("f64[9] = %v, want 10", v)
	}
	if v := gz.Get(m2, 2); v != 3+4i {
		t.Fatalf("z[2] = %v, want 3+4i", v)
	}
	rowBuf := make([]float64, 4)
	gm64.ReadRow(m2, 1, rowBuf)
	if rowBuf[0] != 9 || rowBuf[3] != 6 {
		t.Fatalf("m64 row 1 = %v, want [9 8 7 6]", rowBuf)
	}
}
