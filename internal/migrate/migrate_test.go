package migrate

import (
	"math"
	"testing"

	"nowomp/internal/dsm"
	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

func cluster(t *testing.T, hosts int) *dsm.Cluster {
	t.Helper()
	c, err := dsm.New(dsm.Config{MaxHosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < hosts; i++ {
		if _, err := c.Join(dsm.HostID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestPlanSizesImageFromSharedSpace(t *testing.T) {
	c := cluster(t, 3)
	c.Alloc("a", 10*page.Size)
	p := New(c, 1, 2, 5.0)
	m := c.Model()
	// The image is the full mapped shared space plus process overhead:
	// libckpt writes the whole heap, so image size tracks total shared
	// memory (the paper's 6.1-7.7 s costs correspond to 42-52 MB).
	wantImg := 10*page.Size + m.MigrationImageOverhead
	if p.ImageBytes != wantImg {
		t.Fatalf("ImageBytes = %d, want %d", p.ImageBytes, wantImg)
	}
	wantCost := float64(m.Migration(wantImg))
	if math.Abs(float64(p.Cost)-wantCost) > 1e-9 {
		t.Fatalf("Cost = %v, want %v", p.Cost, wantCost)
	}
	if p.End() != p.Start+p.Cost {
		t.Fatal("End must be Start+Cost")
	}
}

func TestExecuteMovesImageAndRebinds(t *testing.T) {
	c := cluster(t, 3)
	c.Alloc("a", 2*page.Size)
	p := New(c, 1, 2, 0)
	before := c.Fabric().Snapshot()
	p.Execute(c)
	w := c.Fabric().Snapshot().Sub(before)
	if got := w.LinkBytes(1, 2); got != int64(p.ImageBytes) {
		t.Fatalf("image traffic on 1->2 = %d, want %d", got, p.ImageBytes)
	}
	if got := c.Host(1).Machine(); got != c.Host(2).Machine() {
		t.Fatalf("leaver machine = %v, want co-located with target %v", got, c.Host(2).Machine())
	}
}

func TestAdjustArrivalsSerialisesRemainders(t *testing.T) {
	team := []dsm.HostID{0, 1, 2}
	p := Plan{Leaver: 2, Target: 1, Start: 10, Cost: 5}
	// Leaver had 8 s of work left at Start; target finishes during the
	// transfer.
	arr := []simtime.Seconds{12, 13, 18}
	p.AdjustArrivals(team, arr)
	// end = 15; remLeaver = 8; remTarget = 0 -> both done at 23.
	if arr[2] != 23 || arr[1] != 23 {
		t.Fatalf("arrivals = %v, want leaver and target at 23", arr)
	}
	if arr[0] != 12 {
		t.Fatalf("bystander arrival changed to %v", arr[0])
	}
}

func TestAdjustArrivalsTargetStillWorking(t *testing.T) {
	team := []dsm.HostID{0, 1}
	p := Plan{Leaver: 0, Target: 1, Start: 0, Cost: 4}
	arr := []simtime.Seconds{6, 10}
	p.AdjustArrivals(team, arr)
	// end = 4; remLeaver = 6; remTarget = 6 -> done at 16.
	if arr[0] != 16 || arr[1] != 16 {
		t.Fatalf("arrivals = %v, want both 16", arr)
	}
}

func TestAdjustArrivalsLeaverAlreadyDone(t *testing.T) {
	team := []dsm.HostID{0, 1}
	p := Plan{Leaver: 0, Target: 1, Start: 20, Cost: 4}
	arr := []simtime.Seconds{6, 10}
	p.AdjustArrivals(team, arr)
	// Leaver reached the barrier before Start: no remaining work, but
	// the process still rides through the migration window.
	if arr[0] != 24 {
		t.Fatalf("leaver arrival = %v, want 24 (migration end)", arr[0])
	}
}

func TestSelfMigrationPanics(t *testing.T) {
	c := cluster(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("self-migration must panic")
		}
	}()
	New(c, 1, 1, 0)
}

func TestMigrationCostMatchesPaperRates(t *testing.T) {
	c := cluster(t, 2)
	// A 47.8 MB application split over 8 processes: roughly 6 MB
	// resident; the paper reports 6.1-7.7 s total migration costs for
	// images in the tens of MB. Check the model's arithmetic directly.
	m := c.Model()
	img := 48 << 20
	got := float64(m.Migration(img))
	want := 0.7 + float64(img)/8.1e6
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Migration(48MB) = %v, want %v", got, want)
	}
	if got < 6 || got > 7.5 {
		t.Fatalf("48 MB migration = %.2f s, expected 6-7.5 s like the paper's per-app costs", got)
	}
}
