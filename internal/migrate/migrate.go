// Package migrate implements the urgent-leave path of Fig. 2c in the
// paper: when a leaving workstation's grace period expires before the
// computation reaches the next adaptation point, the process is moved
// to another node with a libckpt-style image transfer and executed
// there by multiplexing until the adaptation point, where a normal
// leave completes the departure.
//
// The paper measures the two direct cost components we model: creating
// a process on the new host (0.6-0.8 s) and moving the image at
// 8.1 MB/s. The image is the process's resident shared pages plus a
// fixed text/stack/runtime overhead.
package migrate

import (
	"fmt"

	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

// Plan describes one urgent-leave migration.
type Plan struct {
	// Leaver is the process being forced off its workstation; Target is
	// the workstation (identified by the host resident there) that will
	// multiplex it until the next adaptation point.
	Leaver dsm.HostID
	Target dsm.HostID

	// ImageBytes is the process image moved by the modified libckpt:
	// resident shared pages plus heap/stack/text overhead.
	ImageBytes int

	// Start is when the migration begins: the leave event's deadline
	// (event time + grace period).
	Start simtime.Seconds

	// Cost is spawn plus image transfer; the migrated process resumes
	// at Start+Cost.
	Cost simtime.Seconds
}

// New sizes and prices a migration of leaver onto target's machine,
// starting at the given deadline. The image is the full mapped shared
// space plus private overhead: TreadMarks maps the entire shared
// region in every process and libckpt writes out the whole heap and
// stack, which is why the paper's per-application migration costs
// (6.1-7.7 s) track total shared memory, not the process's partition.
func New(c *dsm.Cluster, leaver, target dsm.HostID, deadline simtime.Seconds) Plan {
	if leaver == target {
		panic(fmt.Sprintf("migrate: leaver %d cannot migrate to itself", leaver))
	}
	img := c.TotalSharedBytes() + c.Model().MigrationImageOverhead
	return Plan{
		Leaver:     leaver,
		Target:     target,
		ImageBytes: img,
		Start:      deadline,
		// Priced on the actual source->target link: a starved link can
		// undercut the libckpt rate and become the bottleneck.
		Cost: c.Costs().Migration(c.Host(leaver).Machine(), c.Host(target).Machine(), img),
	}
}

// End returns when the migrated process resumes on the target machine.
func (p Plan) End() simtime.Seconds { return p.Start + p.Cost }

// Execute records the image transfer on the network and rebinds the
// migrated process to the target's machine. The process keeps its own
// address space (it is a separate OS process co-located with the
// target's process); only CPU and NIC are now shared.
func (p Plan) Execute(c *dsm.Cluster) {
	src := c.Host(p.Leaver).Machine()
	dst := c.Host(p.Target).Machine()
	c.Fabric().Record(src, dst, p.ImageBytes)
	c.SetMachine(p.Leaver, int(dst))
}

// AdjustArrivals applies the multiplexing model to a phase's barrier
// arrival times (indexed like team). The leaver computes normally until
// Start, is frozen during the transfer, and then shares the target's
// CPU: the remaining work of both processes serialises, so both arrive
// at Start+Cost+remaining(leaver)+remaining(target). Every other
// process idles at the barrier until then (the paper notes multiplexing
// one node may idle the t-2 others).
func (p Plan) AdjustArrivals(team []dsm.HostID, arrivals []simtime.Seconds) {
	li, ti := -1, -1
	for i, h := range team {
		switch h {
		case p.Leaver:
			li = i
		case p.Target:
			ti = i
		}
	}
	if li < 0 {
		panic(fmt.Sprintf("migrate: leaver %d not in team %v", p.Leaver, team))
	}
	if ti < 0 {
		panic(fmt.Sprintf("migrate: target %d not in team %v", p.Target, team))
	}

	remLeaver := arrivals[li] - p.Start
	if remLeaver < 0 {
		remLeaver = 0
	}
	end := p.End()
	remTarget := arrivals[ti] - end
	if remTarget < 0 {
		remTarget = 0
	}
	done := end + remLeaver + remTarget
	if arrivals[li] < done {
		arrivals[li] = done
	}
	if arrivals[ti] < done {
		arrivals[ti] = done
	}
}
