package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"nowomp/internal/scenario"
)

// Job is one accepted submission's lifecycle record. Fields are
// guarded by the server's mutex; Done is closed on reaching a terminal
// state.
type Job struct {
	// ID is the server-assigned job id, Seq its admission order.
	ID  string
	Seq int64
	// Tenant is the submitting tenant, Hash the scenario's content
	// address, Spec its canonical form.
	Tenant string
	Hash   string
	Spec   scenario.Spec
	// State is queued, running, done or failed; Cache is the store's
	// disposition (hit, dedup or fresh).
	State string
	Cache Disposition
	// Err is the failure message of a failed job.
	Err string

	submitted time.Time
	started   time.Time
	finished  time.Time
	flight    *Flight
	// Done is closed when the job reaches done or failed.
	Done chan struct{}
}

// JobView is the JSON shape of GET /v1/jobs/{id}: lifecycle state plus
// the per-job latency split (queue wait, simulation, total) the stats
// and the load driver report.
type JobView struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	Cache  string `json:"cache"`
	Hash   string `json:"hash"`
	// QueueSeconds is time spent pending admission (for a dedup job:
	// waiting on the in-flight leader), SimSeconds time occupying a
	// worker, TotalSeconds submission to terminal state. All are real
	// (wall-clock) seconds — the service is a real server even though
	// the simulations inside it run on virtual time.
	QueueSeconds float64 `json:"queue_seconds"`
	SimSeconds   float64 `json:"sim_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
	Error        string  `json:"error,omitempty"`
	ResultURL    string  `json:"result_url,omitempty"`
}

// Server is the farm service: store + admission + workers behind the
// HTTP surface.
type Server struct {
	limits Limits
	store  *Store
	disp   *dispatcher

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int64
	busy int

	wg sync.WaitGroup
}

// NewServer builds the service and starts its worker pool.
func NewServer(limits Limits) *Server {
	s := &Server{
		limits: limits.withDefaults(),
		store:  NewStore(),
		jobs:   map[string]*Job{},
	}
	s.disp = newDispatcher(s.limits)
	for i := 0; i < s.limits.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close drains the worker pool. In-flight simulations finish; pending
// jobs are left queued.
func (s *Server) Close() {
	s.disp.close()
	s.wg.Wait()
}

// Store exposes the result store (tests and the driver read it).
func (s *Server) Store() *Store { return s.store }

var errQueueFull = errors.New("farm: tenant queue full")

// Submit runs the admission path for one scenario: normalize and hash
// the spec, consult the store (hit / dedup / fresh), and for a fresh
// hash admit into the tenant's queue. It returns the job, or the
// Retry-After seconds when the tenant's queue is full.
func (s *Server) Submit(tenantName string, spec scenario.Spec) (*Job, int, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, 0, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return nil, 0, err
	}
	if tenantName == "" {
		tenantName = "default"
	}

	now := time.Now()
	s.mu.Lock()
	disp, data, flight := s.store.Begin(hash)
	s.seq++
	j := &Job{
		ID: fmt.Sprintf("j-%06d", s.seq), Seq: s.seq,
		Tenant: tenantName, Hash: hash, Spec: norm,
		Cache: disp, State: "queued",
		submitted: now, Done: make(chan struct{}),
	}
	switch disp {
	case Hit:
		_ = data // the stored bytes are served via /v1/results/{hash}
		j.State = "done"
		j.started, j.finished = now, now
		close(j.Done)
		s.jobs[j.ID] = j
		s.mu.Unlock()
		s.disp.recordServed(tenantName, false)
	case Dedup:
		j.flight = flight
		s.jobs[j.ID] = j
		s.mu.Unlock()
		go s.awaitFlight(j)
	case Fresh:
		admitted, retryAfter := s.disp.enqueue(j)
		if !admitted {
			s.store.Abort(hash, flight, errQueueFull)
			s.seq-- // the job never existed
			s.mu.Unlock()
			return nil, retryAfter, errQueueFull
		}
		j.flight = flight
		s.jobs[j.ID] = j
		s.mu.Unlock()
	}
	return j, 0, nil
}

// worker drains the dispatcher: claim, simulate, store, finalize.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.disp.next()
		if j == nil {
			return
		}
		s.mu.Lock()
		j.State = "running"
		j.started = time.Now()
		s.busy++
		s.mu.Unlock()

		// RunChecked keeps a poisoned scenario from unwinding the worker:
		// a panicking simulation becomes one failed job, not a dead
		// service.
		res, err := j.Spec.RunChecked()
		var body []byte
		if err == nil {
			body, err = res.Encode()
		}
		s.store.Complete(j.Hash, j.flight, body, err)
		s.finalize(j, err)
		s.disp.finish(j, err != nil)
		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}
}

// awaitFlight completes a dedup job when its leader finishes.
func (s *Server) awaitFlight(j *Job) {
	<-j.flight.Done
	err := j.flight.Err
	s.mu.Lock()
	j.started = time.Now() // a dedup job never occupies a worker
	s.mu.Unlock()
	s.finalize(j, err)
	s.disp.recordServed(j.Tenant, err != nil)
}

// finalize moves a job to its terminal state.
func (s *Server) finalize(j *Job, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.State = "failed"
		j.Err = err.Error()
	} else {
		j.State = "done"
	}
	close(j.Done)
}

// view renders a job's JSON shape.
func (s *Server) view(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID: j.ID, Tenant: j.Tenant, State: j.State,
		Cache: j.Cache.String(), Hash: j.Hash, Error: j.Err,
	}
	switch j.State {
	case "running":
		v.QueueSeconds = j.started.Sub(j.submitted).Seconds()
		v.SimSeconds = time.Since(j.started).Seconds()
		v.TotalSeconds = time.Since(j.submitted).Seconds()
	case "done", "failed":
		v.QueueSeconds = j.started.Sub(j.submitted).Seconds()
		v.SimSeconds = j.finished.Sub(j.started).Seconds()
		v.TotalSeconds = j.finished.Sub(j.submitted).Seconds()
	default: // queued
		v.QueueSeconds = time.Since(j.submitted).Seconds()
		v.TotalSeconds = v.QueueSeconds
	}
	if j.State == "done" {
		v.ResultURL = "/v1/results/" + j.Hash
	}
	return v
}

// Stats is the GET /v1/stats document.
type Stats struct {
	Cache CacheStats `json:"cache"`
	// Jobs aggregates across tenants; Rejected counts 429s (rejected
	// submissions never become jobs, so submitted excludes them and
	// submitted == completed + failed + in progress).
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
	} `json:"jobs"`
	Pool struct {
		Workers int `json:"workers"`
		Busy    int `json:"busy"`
	} `json:"pool"`
	Tenants map[string]TenantStats `json:"tenants"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	var st Stats
	st.Cache = s.store.Stats()
	st.Tenants = s.disp.stats()
	for _, t := range st.Tenants {
		st.Jobs.Submitted += t.Submitted
		st.Jobs.Completed += t.Completed
		st.Jobs.Failed += t.Failed
		st.Jobs.Rejected += t.Rejected
	}
	s.mu.Lock()
	st.Pool.Workers = s.limits.Workers
	st.Pool.Busy = s.busy
	s.mu.Unlock()
	return st
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSubmit is POST /v1/jobs: body is a scenario spec, the tenant
// comes from the X-Tenant header (or ?tenant=), and ?wait=true blocks
// until the job reaches a terminal state.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := scenario.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenantName := r.Header.Get("X-Tenant")
	if tenantName == "" {
		tenantName = r.URL.Query().Get("tenant")
	}
	j, retryAfter, err := s.Submit(tenantName, spec)
	if errors.Is(err, errQueueFull) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": err.Error(), "retry_after_seconds": retryAfter,
		})
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		s.waitJob(j)
	}
	v := s.view(j)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	if v.State == "done" || v.State == "failed" {
		writeJSON(w, http.StatusOK, v)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// waitJob blocks for a terminal state up to the wait timeout.
func (s *Server) waitJob(j *Job) {
	select {
	case <-j.Done:
	case <-time.After(s.limits.WaitTimeout):
	}
}

// handleJob is GET /v1/jobs/{id} (with optional ?wait=true).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("farm: no such job"))
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		s.waitJob(j)
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

// handleResult is GET /v1/results/{hash}: the raw stored bytes —
// exactly what the simulation encoded, byte-identical on every fetch.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	data, ok := s.store.Lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("farm: no result for this hash"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
