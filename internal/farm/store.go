package farm

import "sync"

// Disposition classifies what the store decided about a submission.
type Disposition int

const (
	// Hit: the hash is cached; the stored bytes are the response.
	Hit Disposition = iota
	// Dedup: an identical submission is already in flight; wait for it.
	Dedup
	// Fresh: this submission is the hash's first — it must simulate.
	Fresh
)

func (d Disposition) String() string {
	switch d {
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	}
	return "fresh"
}

// Flight is one in-flight computation of a hash. The leader runs the
// simulation and calls Complete; every dedup waiter blocks on Done and
// then reads Data/Err. Both are immutable once Done is closed.
type Flight struct {
	// Done is closed when the leader completes (or aborts).
	Done chan struct{}
	// Data is the result body; Err the leader's failure.
	Data []byte
	Err  error
}

// Store is the content-addressed result store: canonical scenario hash
// -> result bytes, plus the single-flight table coalescing concurrent
// identical submissions. Determinism makes entries infinitely valid,
// so there is no eviction and no TTL.
type Store struct {
	mu      sync.Mutex
	entries map[string][]byte
	flights map[string]*Flight
	bytes   int64

	hits, misses, dedups int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: map[string][]byte{}, flights: map[string]*Flight{}}
}

// Lookup returns the cached bytes for a hash without touching the
// hit/miss counters (the raw GET /v1/results path).
func (s *Store) Lookup(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.entries[hash]
	return data, ok
}

// Begin classifies a submission. Hit returns the cached bytes. Dedup
// returns the flight to wait on. Fresh registers the caller as the
// hash's leader and returns the flight it must Complete (or Abort).
func (s *Store) Begin(hash string) (Disposition, []byte, *Flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.entries[hash]; ok {
		s.hits++
		return Hit, data, nil
	}
	if f, ok := s.flights[hash]; ok {
		s.dedups++
		return Dedup, nil, f
	}
	s.misses++
	f := &Flight{Done: make(chan struct{})}
	s.flights[hash] = f
	return Fresh, nil, f
}

// Complete finishes a flight: on success the bytes are stored under
// the hash; either way every waiter is released with the outcome.
func (s *Store) Complete(hash string, f *Flight, data []byte, err error) {
	s.mu.Lock()
	if err == nil {
		if _, ok := s.entries[hash]; !ok {
			s.entries[hash] = data
			s.bytes += int64(len(data))
		}
	}
	delete(s.flights, hash)
	s.mu.Unlock()
	f.Data, f.Err = data, err
	close(f.Done)
}

// Abort withdraws a Fresh registration that never ran (the leader was
// rejected by admission control before reaching a worker) and rolls
// back its miss. Any waiter that attached in between is released with
// the error.
func (s *Store) Abort(hash string, f *Flight, err error) {
	s.mu.Lock()
	delete(s.flights, hash)
	s.misses--
	s.mu.Unlock()
	f.Err = err
	close(f.Done)
}

// CacheStats is the store's counter snapshot.
type CacheStats struct {
	// Hits are submissions served from the store, Misses submissions
	// that led (or will lead) a fresh simulation, Dedups submissions
	// coalesced onto an in-flight one.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Dedups int64 `json:"dedups"`
	// Entries and Bytes size the store; Inflight counts open flights.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Inflight int   `json:"inflight"`
}

// Stats snapshots the counters.
func (s *Store) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{
		Hits: s.hits, Misses: s.misses, Dedups: s.dedups,
		Entries: len(s.entries), Bytes: s.bytes, Inflight: len(s.flights),
	}
}
