package farm

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"
)

// TestArrivalTraceSeededAndOrdered pins the generator: same seed, same
// trace; offsets ascending in [0,1); unknown kinds rejected.
func TestArrivalTraceSeededAndOrdered(t *testing.T) {
	for _, kind := range []string{"poisson", "diurnal", "mix"} {
		a, err := arrivalOffsets(kind, 64, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := arrivalOffsets(kind, 64, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: offsets not seeded: %g vs %g at %d", kind, a[i], b[i], i)
			}
			if a[i] < 0 || a[i] >= 1 {
				t.Fatalf("%s: offset %g out of [0,1)", kind, a[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: offsets not ascending at %d", kind, i)
			}
		}
	}
	if _, err := arrivalOffsets("weekly", 8, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

// TestDriveSmall runs the full driver loop against an in-process
// server: every job served, every response byte-identical to a
// sequential re-run, cache hits present, report assembled.
func TestDriveSmall(t *testing.T) {
	limits := Limits{Workers: 4, QueueCap: 16, MaxInflight: 2}
	srv := NewServer(limits)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report, err := Drive(DriveOptions{
		BaseURL: ts.URL, Jobs: 24, Seed: 42, Scale: 0.03,
		Tenants: 3, Trace: "mix", Horizon: 300 * time.Millisecond,
		Limits: limits,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := report.Farm
	if f == nil {
		t.Fatal("report has no farm section")
	}
	if !f.ByteIdentical {
		t.Fatal("served responses not byte-identical to sequential re-runs")
	}
	if f.Jobs != 24 || len(f.PerJob) != 24 {
		t.Fatalf("jobs %d, per-job %d, want 24", f.Jobs, len(f.PerJob))
	}
	if f.CacheHitRatio <= 0 {
		t.Fatalf("24 jobs over a 14-scenario catalogue produced no cache hits: %+v", f)
	}
	if f.ThroughputJobsPerSec <= 0 || f.P50Seconds < 0 || f.P99Seconds < f.P50Seconds {
		t.Fatalf("implausible aggregates: %+v", f)
	}
	if len(report.Results) == 0 || len(f.Tenants) == 0 {
		t.Fatalf("missing records or tenants: %d results, %d tenants", len(report.Results), len(f.Tenants))
	}
	// The unique-scenario records must cover every distinct hash seen.
	hashes := map[string]bool{}
	for _, j := range f.PerJob {
		hashes[j.Hash] = true
	}
	if len(report.Results) != len(hashes) {
		t.Fatalf("%d result records for %d unique hashes", len(report.Results), len(hashes))
	}
}
