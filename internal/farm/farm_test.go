package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nowomp/internal/dsm"
	"nowomp/internal/scenario"
)

func testSpec() scenario.Spec {
	return scenario.Spec{Kernel: "jacobi", Scale: 0.03, Procs: 4, Hosts: 6, Verify: true}
}

func specBody(t *testing.T, s scenario.Spec) []byte {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// post submits a spec and decodes the job view.
func post(t *testing.T, ts *httptest.Server, tenant string, s scenario.Spec, wait bool) (JobView, *http.Response) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=true"
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(specBody(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp
}

func get(t *testing.T, ts *httptest.Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// TestCacheHitIsByteIdentical pins the cache contract: the second
// submission of an identical spec is a hit, simulates nothing, and
// /v1/results serves exactly the bytes the fresh run produced.
func TestCacheHitIsByteIdentical(t *testing.T) {
	srv := NewServer(Limits{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v1, resp1 := post(t, ts, "alice", testSpec(), true)
	if resp1.StatusCode != http.StatusOK || v1.State != "done" || v1.Cache != "fresh" {
		t.Fatalf("fresh submit: %d %+v", resp1.StatusCode, v1)
	}
	fresh, code := get(t, ts, "/v1/results/"+v1.Hash)
	if code != http.StatusOK {
		t.Fatalf("results after fresh: %d", code)
	}

	v2, resp2 := post(t, ts, "bob", testSpec(), true)
	if resp2.StatusCode != http.StatusOK || v2.State != "done" || v2.Cache != "hit" {
		t.Fatalf("second submit not a hit: %d %+v", resp2.StatusCode, v2)
	}
	if v2.Hash != v1.Hash {
		t.Fatalf("hash mismatch: %s vs %s", v2.Hash, v1.Hash)
	}
	hit, _ := get(t, ts, "/v1/results/"+v2.Hash)
	if !bytes.Equal(fresh, hit) {
		t.Fatalf("hit body differs from fresh body:\n%s\nvs\n%s", fresh, hit)
	}

	// And both match a direct in-process run of the same spec.
	res, err := testSpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	local, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, local) {
		t.Fatalf("served body differs from direct run:\n%s\nvs\n%s", fresh, local)
	}

	st := srv.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Dedups != 0 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
}

// TestSingleFlightDedup pins coalescing: N concurrent identical
// submissions run the engine once; the rest attach as dedups and all
// get the same result.
func TestSingleFlightDedup(t *testing.T) {
	srv := NewServer(Limits{Workers: 4, MaxInflight: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	spec := scenario.Spec{Kernel: "nbf", Scale: 0.04, Procs: 4, Hosts: 6}
	views := make([]JobView, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i], _ = post(t, ts, fmt.Sprintf("tenant-%d", i%3), spec, true)
		}(i)
	}
	wg.Wait()

	for i, v := range views {
		if v.State != "done" {
			t.Fatalf("job %d not done: %+v", i, v)
		}
		if v.Hash != views[0].Hash {
			t.Fatalf("job %d hash differs", i)
		}
	}
	st := srv.Stats()
	if st.Cache.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 engine run", st.Cache.Misses)
	}
	if st.Cache.Hits+st.Cache.Dedups != n-1 {
		t.Errorf("hits %d + dedups %d != %d", st.Cache.Hits, st.Cache.Dedups, n-1)
	}
	if st.Jobs.Submitted != n || st.Jobs.Completed != n || st.Jobs.Failed != 0 {
		t.Errorf("job counters: %+v", st.Jobs)
	}
}

// TestStatsCountersAddUp submits a mixed batch and checks the ledger:
// submitted = completed + failed, and every completion is a hit, a
// dedup, or a fresh miss.
func TestStatsCountersAddUp(t *testing.T) {
	srv := NewServer(Limits{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := []scenario.Spec{
		{Kernel: "jacobi", Scale: 0.03, Procs: 2, Hosts: 4},
		{Kernel: "jacobi", Scale: 0.03, Procs: 2, Hosts: 4}, // hit
		{Kernel: "quadrature", Scale: 0.05, Procs: 2, Hosts: 4},
		{Kernel: "jacobi", Scale: 0.03, Procs: 2, Hosts: 4}, // hit
	}
	for _, s := range specs {
		if v, resp := post(t, ts, "carol", s, true); resp.StatusCode != http.StatusOK || v.State != "done" {
			t.Fatalf("submit: %d %+v", resp.StatusCode, v)
		}
	}
	st := srv.Stats()
	if st.Jobs.Submitted != 4 || st.Jobs.Completed != 4 || st.Jobs.Failed != 0 {
		t.Fatalf("jobs: %+v", st.Jobs)
	}
	if st.Cache.Hits+st.Cache.Dedups+st.Cache.Misses != st.Jobs.Submitted {
		t.Fatalf("dispositions %d+%d+%d do not cover %d submissions",
			st.Cache.Hits, st.Cache.Dedups, st.Cache.Misses, st.Jobs.Submitted)
	}
	if st.Cache.Entries != 2 || st.Cache.Bytes <= 0 {
		t.Fatalf("store: %+v", st.Cache)
	}
	ten := st.Tenants["carol"]
	if ten.Submitted != 4 || ten.Completed != 4 || ten.MaxQueueDepth < 1 {
		t.Fatalf("tenant: %+v", ten)
	}
}

// TestAdmissionRejectsWith429 fills one tenant's queue and checks the
// 429 + Retry-After path, the rejected counter, and that rejected
// submissions never become jobs.
func TestAdmissionRejectsWith429(t *testing.T) {
	// One worker, tiny queue, and slow-ish jobs so the queue backs up.
	srv := NewServer(Limits{Workers: 1, QueueCap: 2, MaxInflight: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Distinct hashes so nothing coalesces, heavy enough (~100ms of
	// real simulation each) that the single worker cannot drain the
	// queue between two back-to-back submissions.
	spec := func(i int) scenario.Spec {
		return scenario.Spec{Kernel: "jacobi", Scale: 0.25, Procs: 2, Hosts: 4 + i}
	}
	var rejected int
	var last *http.Response
	views := []JobView{}
	for i := 0; i < 6; i++ {
		v, resp := post(t, ts, "dave", spec(i), false)
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			last = resp
		} else if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			views = append(views, v)
		} else {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
	}
	_ = last
	if rejected == 0 {
		t.Fatal("queue never filled: no 429 observed")
	}
	// Drain the accepted jobs. A single wait=true GET can return a
	// still-running job when the simulation outlasts the server's
	// WaitTimeout (the race detector slows jobs ~20x), so poll like
	// the load driver does.
	for _, v := range views {
		for {
			body, code := get(t, ts, "/v1/jobs/"+v.ID+"?wait=true")
			if code != http.StatusOK {
				t.Fatalf("job %s: %d %s", v.ID, code, body)
			}
			if strings.Contains(string(body), `"done"`) {
				break
			}
			if !strings.Contains(string(body), `"running"`) && !strings.Contains(string(body), `"queued"`) {
				t.Fatalf("job %s in unexpected state: %s", v.ID, body)
			}
		}
	}
	st := srv.Stats()
	if st.Jobs.Rejected != int64(rejected) {
		t.Errorf("rejected counter %d, observed %d", st.Jobs.Rejected, rejected)
	}
	if st.Tenants["dave"].Rejected != int64(rejected) {
		t.Errorf("tenant rejected %d, observed %d", st.Tenants["dave"].Rejected, rejected)
	}
	if st.Tenants["dave"].MaxQueueDepth != 2 {
		t.Errorf("max queue depth %d, want 2", st.Tenants["dave"].MaxQueueDepth)
	}
	if int(st.Jobs.Submitted)+rejected != 6 {
		t.Errorf("submitted %d + rejected %d != 6", st.Jobs.Submitted, rejected)
	}
}

// TestMalformedRequests pins the 4xx surface.
func TestMalformedRequests(t *testing.T) {
	srv := NewServer(Limits{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"not json":      "{",
		"unknown field": `{"kernel":"jacobi","scael":0.1}`,
		"bad kernel":    `{"kernel":"nope"}`,
		"bad spec":      `{"kernel":"jacobi","procs":8,"hosts":2}`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if _, code := get(t, ts, "/v1/jobs/j-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if _, code := get(t, ts, "/v1/results/deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown result: %d, want 404", code)
	}
	if st := srv.Stats(); st.Jobs.Submitted != 0 {
		t.Errorf("malformed requests became jobs: %+v", st.Jobs)
	}
}

// TestDispatcherFIFOAndInflightCap pins the admission order
// structurally: per-tenant FIFO, global-FIFO among eligible tenants,
// and the per-tenant inflight cap making an over-subscribed tenant
// yield to others.
func TestDispatcherFIFOAndInflightCap(t *testing.T) {
	d := newDispatcher(Limits{QueueCap: 8, MaxInflight: 1}.withDefaults())
	job := func(seq int64, tenant string) *Job {
		return &Job{ID: fmt.Sprintf("j-%d", seq), Seq: seq, Tenant: tenant}
	}
	// Arrival order: a1 a2 b3 a4 b5.
	for _, j := range []*Job{job(1, "a"), job(2, "a"), job(3, "b"), job(4, "a"), job(5, "b")} {
		if ok, _ := d.enqueue(j); !ok {
			t.Fatalf("enqueue %s rejected", j.ID)
		}
	}
	// First claim: a's oldest (seq 1). With a at its inflight cap, the
	// next claim must skip a2/a4 and take b3.
	first := d.next()
	if first.Seq != 1 {
		t.Fatalf("first claim seq %d, want 1", first.Seq)
	}
	second := d.next()
	if second.Seq != 3 {
		t.Fatalf("second claim seq %d, want 3 (tenant a is at its cap)", second.Seq)
	}
	// Releasing a's slot makes a2 the globally oldest eligible again.
	d.finish(first, false)
	third := d.next()
	if third.Seq != 2 {
		t.Fatalf("third claim seq %d, want 2 (per-tenant FIFO)", third.Seq)
	}
	d.finish(second, false)
	d.finish(third, false)
	if d.next().Seq != 4 || d.next().Seq != 5 {
		t.Fatal("tail order violated")
	}
	// Queue-cap accounting: a sixth pending job for one tenant beyond
	// the cap is rejected and counted.
	small := newDispatcher(Limits{QueueCap: 1, MaxInflight: 1}.withDefaults())
	if ok, _ := small.enqueue(job(1, "c")); !ok {
		t.Fatal("first enqueue rejected")
	}
	ok, retry := small.enqueue(job(2, "c"))
	if ok || retry < 1 {
		t.Fatalf("over-cap enqueue: ok=%v retry=%d", ok, retry)
	}
	if st := small.stats()["c"]; st.Rejected != 1 || st.MaxQueueDepth != 1 {
		t.Fatalf("tenant stats: %+v", st)
	}
}

// TestFailedJobPath: a spec that passes Normalize but whose simulation
// dies mid-run surfaces as a failed job — the worker's panic barrier
// keeps the service alive — and dedup waiters share the failure. The
// mid-run death comes from the dsm package's injected fault-panic
// mutation (the sharpest case: a panic, not an error return).
func TestFailedJobPath(t *testing.T) {
	restore, err := dsm.InjectCoherenceMutation("fault-panic")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	srv := NewServer(Limits{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := scenario.Spec{Kernel: "jacobi", Scale: 0.03, Procs: 2, Hosts: 4}
	v, resp := post(t, ts, "erin", bad, true)
	if resp.StatusCode != http.StatusOK || v.State != "failed" || v.Error == "" {
		t.Fatalf("want failed job, got %d %+v", resp.StatusCode, v)
	}
	if !strings.Contains(v.Error, "panicked") {
		t.Errorf("failure should cite the recovered panic: %q", v.Error)
	}
	// The server survived: a healthy spec still runs to completion.
	restore()
	good, resp := post(t, ts, "erin", testSpec(), true)
	if resp.StatusCode != http.StatusOK || good.State != "done" {
		t.Fatalf("server did not survive the panic: %d %+v", resp.StatusCode, good)
	}
	if _, code := get(t, ts, "/v1/results/"+v.Hash); code != http.StatusNotFound {
		t.Errorf("failed job cached a result: %d", code)
	}
	st := srv.Stats()
	if st.Jobs.Failed != 1 {
		t.Errorf("failed counter: %+v", st.Jobs)
	}
}
