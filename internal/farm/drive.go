package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nowomp/internal/bench"
	"nowomp/internal/scenario"
)

// The synthetic load driver: a seeded arrival-trace generator plus an
// HTTP client fleet that drives a farm server the way a crowd of
// tenants would — Poisson bursts, diurnal swells, a mixed scenario
// catalogue with plenty of repeats — then audits the service: every
// served response must be byte-identical to a sequential re-run of the
// same scenario, and the report cites throughput, latency percentiles,
// the cache hit ratio and the admission-control record.

// DriveOptions configures one driver run.
type DriveOptions struct {
	// BaseURL is the farm server to drive, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Jobs is how many submissions to generate (default 96).
	Jobs int
	// Seed seeds the arrival/mix generator (default 1999, the paper's
	// year). The same seed generates the same submission sequence.
	Seed int64
	// Scale is the problem scale of every catalogue scenario (default
	// 0.04: a few tens of milliseconds per fresh simulation).
	Scale float64
	// Tenants is how many synthetic tenants submit (default 4).
	Tenants int
	// Trace picks the arrival process: "poisson" (square-wave bursts),
	// "diurnal" (sinusoidal swell), or "mix" (default: bursts for the
	// first half, diurnal for the second).
	Trace string
	// Horizon is the wall-clock window the arrivals are spread over
	// (default 3s).
	Horizon time.Duration
	// Limits echoes the server's limits into the report.
	Limits Limits
	// Progress receives one-line updates (nil = silent).
	Progress io.Writer
}

func (o DriveOptions) withDefaults() DriveOptions {
	if o.Jobs <= 0 {
		o.Jobs = 96
	}
	if o.Seed == 0 {
		o.Seed = 1999
	}
	if o.Scale <= 0 {
		o.Scale = 0.04
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.Trace == "" {
		o.Trace = "mix"
	}
	if o.Horizon <= 0 {
		o.Horizon = 3 * time.Second
	}
	return o
}

// Catalogue is the scenario mix the driver samples from: every kernel,
// both protocols, heterogeneity, link overrides and an adapt schedule,
// all at the driver's scale.
func Catalogue(scale float64) []scenario.Spec {
	return []scenario.Spec{
		{Kernel: "jacobi", Scale: scale, Procs: 4, Hosts: 6, Verify: true},
		{Kernel: "jacobi", Scale: scale, Procs: 8, Hosts: 10},
		{Kernel: "jacobi", Scale: scale, Procs: 4, Hosts: 6, Protocol: "hlrc"},
		{Kernel: "gauss", Scale: scale, Procs: 4, Hosts: 6},
		{Kernel: "gauss", Scale: scale, Procs: 4, Hosts: 6, Links: "0-3=lat:4,bw:0.25"},
		{Kernel: "fft3d", Scale: scale, Procs: 4, Hosts: 6},
		{Kernel: "nbf", Scale: scale, Procs: 4, Hosts: 6, Verify: true},
		{Kernel: "nbf", Scale: scale, Procs: 4, Hosts: 6,
			Machines: "1=0.5,3=2", Loads: "2=1.5@0"},
		{Kernel: "mergesort", Scale: scale, Procs: 4, Hosts: 6},
		{Kernel: "mergesort", Scale: scale, Procs: 4, Hosts: 6, Protocol: "hlrc"},
		{Kernel: "mergesort", Scale: scale, Procs: 4, Hosts: 6, Protocol: "hybrid"},
		{Kernel: "jacobi", Scale: scale, Procs: 4, Hosts: 6, Protocol: "hybrid"},
		{Kernel: "quadrature", Scale: scale, Procs: 4, Hosts: 6},
		{Kernel: "jacobi", Scale: scale, Procs: 4, Hosts: 6,
			Adaptive: true, Schedule: "0.05:leave:3,0.12:join:3"},
	}
}

// arrivalOffsets generates n arrival instants in [0, 1) under the
// named arrival process and rescales them onto the unit interval; the
// caller stretches them over the wall-clock horizon. Inter-arrival
// gaps are exponential with an instantaneous rate that follows the
// process shape, which is the standard inhomogeneous-Poisson
// construction.
func arrivalOffsets(kind string, n int, rng *rand.Rand) ([]float64, error) {
	rate := func(t float64) float64 { return 1 }
	switch kind {
	case "poisson":
		// Square-wave bursts: period 1/4 of the run, duty cycle 25%,
		// 16x rate inside a burst.
		rate = func(t float64) float64 {
			if math.Mod(t, float64(n)/4) < float64(n)/16 {
				return 16
			}
			return 0.5
		}
	case "diurnal":
		// A sinusoidal "day": quiet night, busy noon, two cycles.
		rate = func(t float64) float64 {
			return 1 + 0.9*math.Sin(2*math.Pi*t/(float64(n)/2)-math.Pi/2)
		}
	case "mix":
		rate = func(t float64) float64 {
			if t < float64(n)/2 {
				if math.Mod(t, float64(n)/8) < float64(n)/32 {
					return 16
				}
				return 0.5
			}
			return 1 + 0.9*math.Sin(2*math.Pi*t/(float64(n)/4)-math.Pi/2)
		}
	default:
		return nil, fmt.Errorf("farm: unknown trace %q (want poisson, diurnal or mix)", kind)
	}
	offsets := make([]float64, n)
	t := 0.0
	for i := 0; i < n; i++ {
		r := rate(t)
		if r < 1e-3 {
			r = 1e-3
		}
		t += rng.ExpFloat64() / r
		offsets[i] = t
	}
	max := offsets[n-1]
	for i := range offsets {
		offsets[i] /= max * 1.0001 // keep strictly inside [0, 1)
	}
	return offsets, nil
}

// submission is one generated job: who sends what, when.
type submission struct {
	offset float64 // fraction of the horizon
	tenant string
	spec   scenario.Spec
}

// generate builds the full seeded submission sequence.
func generate(opt DriveOptions) ([]submission, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	offsets, err := arrivalOffsets(opt.Trace, opt.Jobs, rng)
	if err != nil {
		return nil, err
	}
	catalogue := Catalogue(opt.Scale)
	subs := make([]submission, opt.Jobs)
	for i := range subs {
		subs[i] = submission{
			offset: offsets[i],
			tenant: fmt.Sprintf("tenant-%d", rng.Intn(opt.Tenants)),
			spec:   catalogue[rng.Intn(len(catalogue))],
		}
	}
	return subs, nil
}

// Drive generates the seeded trace, submits it against the server at
// BaseURL, audits byte-identity against sequential re-runs, and
// assembles the current-schema bench report. It fails on any transport
// error, failed job, or byte mismatch.
func Drive(opt DriveOptions) (*bench.Report, error) {
	opt = opt.withDefaults()
	subs, err := generate(opt)
	if err != nil {
		return nil, err
	}
	progress := func(format string, args ...any) {
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, format+"\n", args...)
		}
	}
	progress("driving %s: %d jobs, trace %s, seed %d, %d tenants over %v",
		opt.BaseURL, opt.Jobs, opt.Trace, opt.Seed, opt.Tenants, opt.Horizon)

	client := &http.Client{Timeout: 2 * time.Minute}
	views := make([]JobView, len(subs))
	errs := make([]error, len(subs))
	var retries429 atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub submission) {
			defer wg.Done()
			time.Sleep(time.Duration(sub.offset * float64(opt.Horizon)))
			views[i], errs[i] = submitOne(client, opt.BaseURL, sub, &retries429)
		}(i, sub)
	}
	wg.Wait()
	window := time.Since(start).Seconds()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("farm: job %d (%s %s): %w", i, subs[i].tenant, subs[i].spec.Kernel, err)
		}
	}
	progress("served %d jobs in %.2fs wall", len(subs), window)

	// Audit: every served response must be byte-identical to a
	// sequential re-run of the same scenario — the determinism contract
	// the cache stands on.
	unique := map[string]scenario.Spec{}
	for i, v := range views {
		unique[v.Hash] = subs[i].spec
	}
	identical := true
	records := []bench.Record{}
	for hash, spec := range unique {
		served, err := fetchResult(client, opt.BaseURL, hash)
		if err != nil {
			return nil, err
		}
		res, err := spec.Run()
		if err != nil {
			return nil, fmt.Errorf("farm: sequential re-run: %w", err)
		}
		local, err := res.Encode()
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(served, local) {
			identical = false
			progress("BYTE MISMATCH for %s (%s)", hash, spec.Kernel)
		}
		records = append(records, bench.Record{
			Scenario: fmt.Sprintf("%s/%s", res.Scenario, hash[:8]),
			Seconds:  res.Seconds, Bytes: res.Bytes, Messages: res.Messages,
		})
	}
	progress("byte-identity audit: %d unique scenarios, identical=%v", len(unique), identical)

	stats, err := fetchStats(client, opt.BaseURL)
	if err != nil {
		return nil, err
	}

	report := &bench.Report{
		Schema: bench.ReportSchema, Scale: opt.Scale, Hosts: scenario.DefaultHosts,
		Parallel: opt.Limits.withDefaults().Workers, WallSeconds: window,
		Results: records,
		Farm:    assemble(opt, subs, views, stats, window, identical, retries429.Load()),
	}
	return report, nil
}

// submitOne runs one job to a terminal state: POST (retrying after
// 429s per the server's Retry-After), then wait for completion.
func submitOne(client *http.Client, base string, sub submission, retries *atomic.Int64) (JobView, error) {
	body, err := json.Marshal(sub.spec)
	if err != nil {
		return JobView{}, err
	}
	var v JobView
	for attempt := 0; ; attempt++ {
		if attempt > 200 {
			return JobView{}, fmt.Errorf("still rejected after %d attempts", attempt)
		}
		req, err := http.NewRequest("POST", base+"/v1/jobs?wait=true", bytes.NewReader(body))
		if err != nil {
			return JobView{}, err
		}
		req.Header.Set("X-Tenant", sub.tenant)
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return JobView{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return JobView{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retries.Add(1)
			after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if after < 1 {
				after = 1
			}
			// Back off a fraction of Retry-After: the estimate is
			// conservative and the queue drains continuously.
			time.Sleep(time.Duration(after) * time.Second / 4)
			continue
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return JobView{}, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, data)
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return JobView{}, err
		}
		break
	}
	// The submit wait can time out under heavy backlog; poll the job
	// until it is terminal.
	for v.State != "done" && v.State != "failed" {
		resp, err := client.Get(base + "/v1/jobs/" + v.ID + "?wait=true")
		if err != nil {
			return JobView{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return JobView{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return JobView{}, fmt.Errorf("GET /v1/jobs/%s: %s: %s", v.ID, resp.Status, data)
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return JobView{}, err
		}
	}
	if v.State == "failed" {
		return v, fmt.Errorf("job %s failed: %s", v.ID, v.Error)
	}
	return v, nil
}

func fetchResult(client *http.Client, base, hash string) ([]byte, error) {
	resp, err := client.Get(base + "/v1/results/" + hash)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/results/%s: %s", hash, resp.Status)
	}
	return data, nil
}

func fetchStats(client *http.Client, base string) (Stats, error) {
	var st Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /v1/stats: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// assemble folds the run into the report's farm section.
func assemble(opt DriveOptions, subs []submission, views []JobView, stats Stats, window float64, identical bool, retries int64) *bench.FarmSection {
	limits := opt.Limits.withDefaults()
	sec := &bench.FarmSection{
		Trace: opt.Trace, Seed: opt.Seed, Jobs: len(views),
		Workers: limits.Workers, QueueCap: limits.QueueCap, MaxInflight: limits.MaxInflight,
		Retries429:    retries,
		ByteIdentical: identical,
		Tenants:       map[string]bench.FarmTenant{},
		PerJob:        make([]bench.FarmJob, len(views)),
	}
	totals := make([]float64, 0, len(views))
	hitsServed := 0
	for i, v := range views {
		sec.PerJob[i] = bench.FarmJob{
			Job: v.ID, Tenant: v.Tenant,
			Scenario: fmt.Sprintf("farm/%s/%dp", subs[i].spec.Kernel, normProcs(subs[i].spec)),
			Hash:     v.Hash, Cache: v.Cache,
			QueueSeconds: v.QueueSeconds, SimSeconds: v.SimSeconds, TotalSeconds: v.TotalSeconds,
		}
		totals = append(totals, v.TotalSeconds)
		if v.Cache != "fresh" {
			hitsServed++
		}
	}
	sort.Float64s(totals)
	sec.P50Seconds = quantile(totals, 0.50)
	sec.P95Seconds = quantile(totals, 0.95)
	sec.P99Seconds = quantile(totals, 0.99)
	if window > 0 {
		sec.ThroughputJobsPerSec = float64(len(views)) / window
	}
	if len(views) > 0 {
		sec.CacheHitRatio = float64(hitsServed) / float64(len(views))
	}
	for name, t := range stats.Tenants {
		sec.Tenants[name] = bench.FarmTenant{
			Submitted: t.Submitted, Completed: t.Completed,
			Rejected: t.Rejected, MaxQueueDepth: t.MaxQueueDepth,
		}
	}
	return sec
}

func normProcs(s scenario.Spec) int {
	if norm, err := s.Normalize(); err == nil {
		return norm.Procs
	}
	return s.Procs
}

// quantile is the nearest-rank percentile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
