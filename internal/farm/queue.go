package farm

import (
	"sync"
)

// Admission control: one FIFO queue per tenant with a bounded depth,
// drained by the global worker pool under a per-tenant inflight cap.
// The pool itself is the resident form of internal/bench's cell-pool
// mechanics — a fixed worker count bounding concurrent engine
// instances — but where the bench pool drains a known matrix and
// exits, the dispatcher blocks on a condition variable for the next
// eligible job: the oldest pending job among tenants below their
// inflight cap (global FIFO across tenants, strict FIFO within one).

// tenant is one tenant's admission state. All fields are guarded by
// the dispatcher's mutex.
type tenant struct {
	name    string
	pending []*Job // FIFO
	// inflight counts this tenant's jobs currently occupying workers.
	inflight int
	// maxDepth is the maximum observed pending-queue depth and
	// rejected the number of submissions turned away with 429 — the
	// admission-control evidence GET /v1/stats reports.
	maxDepth  int
	rejected  int64
	submitted int64
	completed int64
	failed    int64
}

// dispatcher owns the tenant queues and hands eligible jobs to
// workers.
type dispatcher struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenant
	limits  Limits
	closed  bool
}

func newDispatcher(limits Limits) *dispatcher {
	d := &dispatcher{tenants: map[string]*tenant{}, limits: limits}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *dispatcher) tenantLocked(name string) *tenant {
	t, ok := d.tenants[name]
	if !ok {
		t = &tenant{name: name}
		d.tenants[name] = t
	}
	return t
}

// enqueue admits a job into its tenant's queue, or reports the queue
// full (the 429 path). retryAfter estimates, in whole seconds, how
// long until the queue has drained enough to admit — the Retry-After
// the handler sends.
func (d *dispatcher) enqueue(j *Job) (admitted bool, retryAfter int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tenantLocked(j.Tenant)
	if len(t.pending) >= d.limits.QueueCap {
		t.rejected++
		// Drain estimate: the backlog ahead of us, served MaxInflight
		// at a time; assume a second per job as the floor.
		waves := (len(t.pending) + d.limits.MaxInflight - 1) / d.limits.MaxInflight
		if waves < 1 {
			waves = 1
		}
		return false, waves
	}
	t.submitted++
	t.pending = append(t.pending, j)
	if len(t.pending) > t.maxDepth {
		t.maxDepth = len(t.pending)
	}
	d.cond.Signal()
	return true, 0
}

// next blocks until an eligible job exists — the globally oldest
// pending job whose tenant is below its inflight cap — and claims it.
// It returns nil when the dispatcher is closed.
func (d *dispatcher) next() *Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return nil
		}
		var (
			best *tenant
		)
		for _, t := range d.tenants {
			if len(t.pending) == 0 || t.inflight >= d.limits.MaxInflight {
				continue
			}
			if best == nil || t.pending[0].Seq < best.pending[0].Seq {
				best = t
			}
		}
		if best != nil {
			j := best.pending[0]
			best.pending = best.pending[1:]
			best.inflight++
			return j
		}
		d.cond.Wait()
	}
}

// finish releases a claimed job's worker slot and records its outcome.
func (d *dispatcher) finish(j *Job, failed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tenantLocked(j.Tenant)
	t.inflight--
	if failed {
		t.failed++
	} else {
		t.completed++
	}
	// A slot freed may make this tenant's next job eligible, and
	// another worker may be waiting for exactly that.
	d.cond.Broadcast()
}

// recordServed counts a job that bypassed the queue (cache hit or
// dedup) toward the tenant's totals.
func (d *dispatcher) recordServed(tenantName string, failed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.tenantLocked(tenantName)
	t.submitted++
	if failed {
		t.failed++
	} else {
		t.completed++
	}
}

// close wakes every worker to exit.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// TenantStats is one tenant's admission snapshot in GET /v1/stats.
type TenantStats struct {
	// Queued and Inflight are the instantaneous queue depth and
	// running-job count.
	Queued   int `json:"queued"`
	Inflight int `json:"inflight"`
	// MaxQueueDepth is the highest pending depth ever observed and
	// Rejected the submissions refused with 429 — the admission-control
	// record the load driver cites.
	MaxQueueDepth int   `json:"max_queue_depth"`
	Rejected      int64 `json:"rejected"`
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
}

// stats snapshots every tenant.
func (d *dispatcher) stats() map[string]TenantStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]TenantStats, len(d.tenants))
	for name, t := range d.tenants {
		out[name] = TenantStats{
			Queued: len(t.pending), Inflight: t.inflight,
			MaxQueueDepth: t.maxDepth, Rejected: t.rejected,
			Submitted: t.submitted, Completed: t.completed, Failed: t.failed,
		}
	}
	return out
}
