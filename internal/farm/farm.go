// Package farm is the multi-tenant simulation service: a long-running
// HTTP/JSON server that accepts scenario jobs (internal/scenario
// specs), multiplexes concurrent engine instances across cores, and
// caches every result by the scenario's content address.
//
// The design cashes in PR 5's determinism contract: a scenario's
// outcome is a pure function of its canonical spec, so the SHA-256 of
// the canonical encoding is a sound cache key — identical request
// means identical bytes, forever. Three layers follow from that:
//
//   - Store: the content-addressed result store with single-flight
//     coalescing. A submission whose hash is cached is served without
//     simulating (hit); one whose hash is already being computed
//     attaches to the in-flight run without consuming a worker
//     (dedup); only the first submission of a hash simulates (fresh).
//
//   - Admission: per-tenant FIFO queues with a bounded depth and a
//     per-tenant inflight cap, drained by a bounded global worker pool
//     (the semaphore mechanics of internal/bench's cell pool, kept
//     resident). A full tenant queue rejects with 429 + Retry-After.
//
//   - Server: the HTTP surface — POST /v1/jobs, GET /v1/jobs/{id},
//     GET /v1/results/{hash}, GET /v1/stats — streaming the scenario
//     package's schema-2-shaped result JSON.
//
// Drive is the synthetic load driver: seeded Poisson-burst and diurnal
// arrival traces over a scenario mix, reporting cluster throughput,
// latency percentiles, admission-control behaviour and the cache hit
// ratio, and checking every served response byte-identical against a
// sequential re-run.
package farm

import "time"

// Limits bounds the service: the global worker pool and the per-tenant
// queues. The zero value of any field selects its default.
type Limits struct {
	// Workers is the global worker-pool size: at most this many engine
	// instances simulate concurrently (default 4).
	Workers int
	// QueueCap is the per-tenant pending-queue capacity; a submission
	// beyond it is rejected with 429 + Retry-After (default 32).
	QueueCap int
	// MaxInflight caps how many of one tenant's jobs may occupy
	// workers at once, so a burst from one tenant cannot starve the
	// pool (default 2).
	MaxInflight int
	// WaitTimeout bounds how long GET /v1/jobs/{id}?wait=true blocks
	// for a terminal state (default 30s).
	WaitTimeout time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.Workers <= 0 {
		l.Workers = 4
	}
	if l.QueueCap <= 0 {
		l.QueueCap = 32
	}
	if l.MaxInflight <= 0 {
		l.MaxInflight = 2
	}
	if l.WaitTimeout <= 0 {
		l.WaitTimeout = 30 * time.Second
	}
	return l
}
