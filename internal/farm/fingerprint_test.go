package farm

import (
	"bytes"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
)

// The farm extends the determinism contract over HTTP: the bytes
// /v1/results serves for a spec are exactly the bytes an in-process
// run encodes, whatever GOMAXPROCS the serving process runs under.
// farmGmpFingerprint persists across -cpu reruns of the test binary,
// so `go test -run FarmDeterminism -cpu 1,4,16` compares the served
// bytes across GOMAXPROCS settings within one process — the same gate
// the bench package runs for in-process results.
var farmGmpFingerprint struct {
	sync.Mutex
	byKey map[string]string
}

func TestFarmDeterminismAcrossGOMAXPROCS(t *testing.T) {
	// Catalogue entries spanning the axes: a verified baseline, the
	// HLRC and hybrid protocols, and an adaptive schedule.
	cat := Catalogue(0.02)
	specs := []int{0, 2, 11, 13}

	srv := NewServer(Limits{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var fp bytes.Buffer
	for _, i := range specs {
		spec := cat[i]
		v, resp := post(t, ts, "fingerprint", spec, true)
		if resp.StatusCode != 200 || v.State != "done" {
			t.Fatalf("catalogue[%d]: status %d, state %q, error %q", i, resp.StatusCode, v.State, v.Error)
		}
		served, code := get(t, ts, v.ResultURL)
		if code != 200 {
			t.Fatalf("catalogue[%d]: result fetch status %d", i, code)
		}

		// The farm-served bytes must equal an in-process run's encoding.
		res, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		local, err := res.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, local) {
			t.Errorf("catalogue[%d]: served result differs from in-process run:\nserved: %s\nlocal:  %s", i, served, local)
		}
		fp.Write(served)
		fp.WriteByte('\n')
	}

	farmGmpFingerprint.Lock()
	defer farmGmpFingerprint.Unlock()
	if farmGmpFingerprint.byKey == nil {
		farmGmpFingerprint.byKey = make(map[string]string)
	}
	prev, ok := farmGmpFingerprint.byKey["catalogue"]
	if !ok {
		farmGmpFingerprint.byKey["catalogue"] = fp.String()
		t.Logf("GOMAXPROCS=%d recorded baseline farm fingerprint", runtime.GOMAXPROCS(0))
		return
	}
	if fp.String() != prev {
		t.Errorf("farm fingerprint diverged at GOMAXPROCS=%d:\nfirst run:\n%s\nthis run:\n%s",
			runtime.GOMAXPROCS(0), prev, fp.String())
	}
}
