// Package simtime provides the virtual-time substrate for the adaptive
// NOW runtime: per-process clocks and a cost model calibrated from the
// measurements published in section 5.1 of Scherer et al. (PPoPP 1999).
//
// All results in the paper are wall-clock times and traffic volumes on a
// cluster of 300 MHz Pentium II machines connected by switched 100 Mbps
// Ethernet. The DSM protocol in this repository runs for real (real
// pages, twins, diffs, real application arithmetic); only time is
// virtual. Every protocol action charges its cost to the clock of the
// process that performs or waits for it, using the calibrated CostModel constants, so
// reported "seconds" follow the paper's own cost structure and are
// deterministic across runs.
package simtime
