package simtime

import (
	"math"
	"sync/atomic"
)

// Clock is the virtual clock of one logical process. Exactly one
// goroutine advances a clock at a time, but another may read it later
// (the discrete-event engine's scheduler goroutine evaluates wake
// conditions between dispatches), so the instant is stored atomically
// — the reads are already ordered by the engine's channel handshakes,
// and the atomic keeps any future cross-goroutine observer safe too.
type Clock struct {
	bits atomic.Uint64
}

// NewClock returns a clock set to the given instant.
func NewClock(at Seconds) *Clock {
	c := &Clock{}
	c.bits.Store(math.Float64bits(float64(at)))
	return c
}

// Now returns the current virtual instant.
func (c *Clock) Now() Seconds {
	return Seconds(math.Float64frombits(c.bits.Load()))
}

func (c *Clock) set(at Seconds) {
	c.bits.Store(math.Float64bits(float64(at)))
}

// Advance moves the clock forward by d. Negative advances are ignored:
// virtual time never runs backwards.
func (c *Clock) Advance(d Seconds) {
	if d > 0 {
		c.set(c.Now() + d)
	}
}

// AdvanceTo moves the clock forward to at if at is in the future.
func (c *Clock) AdvanceTo(at Seconds) {
	if at > c.Now() {
		c.set(at)
	}
}

// Sync sets both clocks to the later of the two instants, modelling a
// synchronous rendezvous. Both clocks must be quiescent (no concurrent
// advancement).
func Sync(a, b *Clock) {
	if a.Now() > b.Now() {
		b.set(a.Now())
	} else {
		a.set(b.Now())
	}
}

// Max returns the latest instant among the given clocks, or zero if
// none are given.
func Max(clocks ...*Clock) Seconds {
	var m Seconds
	for _, c := range clocks {
		if c != nil && c.Now() > m {
			m = c.Now()
		}
	}
	return m
}
