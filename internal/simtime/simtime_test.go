package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestPageFetchMatchesPaper(t *testing.T) {
	m := Default()
	got := float64(m.PageFetch(4096))
	if math.Abs(got-1308e-6) > 1e-9 {
		t.Fatalf("full page fetch = %g s, want 1308 us", got)
	}
}

func TestDiffFetchBounds(t *testing.T) {
	m := Default()
	lo := float64(m.DiffFetch(8))
	hi := float64(m.DiffFetch(4096))
	if lo < 313e-6 || lo > 500e-6 {
		t.Errorf("minimal diff fetch = %g s, want near 313 us", lo)
	}
	if math.Abs(hi-1544e-6) > 1e-9 {
		t.Errorf("full-page diff fetch = %g s, want 1544 us", hi)
	}
	if hi <= lo {
		t.Errorf("diff cost must grow with size: %g <= %g", hi, lo)
	}
}

func TestLockCostRange(t *testing.T) {
	m := Default()
	if got := float64(m.LockBase); math.Abs(got-178e-6) > 1e-12 {
		t.Errorf("uncontended lock = %g, want 178 us", got)
	}
	if got := float64(m.LockBase + m.LockForward); math.Abs(got-272e-6) > 1e-12 {
		t.Errorf("forwarded lock = %g, want 272 us", got)
	}
}

func TestMigrationRate(t *testing.T) {
	m := Default()
	img := 40 << 20 // 40 MB image
	got := float64(m.Migration(img))
	want := 0.7 + float64(img)/8.1e6
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("migration(40MB) = %g, want %g", got, want)
	}
}

func TestForkAndBarrierScale(t *testing.T) {
	m := Default()
	if m.Fork(1) != 0 {
		t.Errorf("fork of a 1-process team should be free")
	}
	if m.Barrier(1) != 0 {
		t.Errorf("barrier of a 1-process team should be free")
	}
	if m.Fork(8) <= m.Fork(2) {
		t.Errorf("fork cost must grow with team size")
	}
	if m.Barrier(8) <= m.Barrier(2) {
		t.Errorf("barrier cost must grow with team size")
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewClock(0)
	c.Advance(1.5)
	c.Advance(-3) // ignored
	if c.Now() != 1.5 {
		t.Fatalf("clock = %v, want 1.5", c.Now())
	}
	c.AdvanceTo(1.0) // in the past, ignored
	if c.Now() != 1.5 {
		t.Fatalf("AdvanceTo moved clock backwards to %v", c.Now())
	}
	c.AdvanceTo(2.0)
	if c.Now() != 2.0 {
		t.Fatalf("AdvanceTo = %v, want 2.0", c.Now())
	}
}

func TestSyncMeets(t *testing.T) {
	a, b := NewClock(1), NewClock(4)
	Sync(a, b)
	if a.Now() != 4 || b.Now() != 4 {
		t.Fatalf("sync: got %v, %v, want both 4", a.Now(), b.Now())
	}
}

func TestMaxClocks(t *testing.T) {
	if got := Max(); got != 0 {
		t.Fatalf("Max() = %v, want 0", got)
	}
	if got := Max(NewClock(2), nil, NewClock(7), NewClock(3)); got != 7 {
		t.Fatalf("Max = %v, want 7", got)
	}
}

func TestAdvancePropertyMonotone(t *testing.T) {
	f := func(steps []float64) bool {
		c := NewClock(0)
		prev := c.Now()
		for _, s := range steps {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			c.Advance(Seconds(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireLinear(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		wa, wb := m.Wire(int(a)), m.Wire(int(b))
		sum := m.Wire(int(a) + int(b))
		return math.Abs(float64(sum-(wa+wb))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsStringAdaptive(t *testing.T) {
	cases := []struct {
		s    Seconds
		want string
	}{
		{0, "0.000s"},
		{1.5, "1.500s"},
		{0.001, "0.001s"},
		{Micros(126), "126µs"},
		{Micros(63), "63µs"},
		{Micros(0.5), "0.5µs"},
		{Micros(-126), "-126µs"},
		{-2, "-2.000s"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Seconds(%g).String() = %q, want %q", float64(c.s), got, c.want)
		}
	}
}
