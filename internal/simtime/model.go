package simtime

import "fmt"

// Seconds is a span or instant of virtual time. Instants are measured
// from the start of the run.
type Seconds float64

// String formats a virtual duration adaptively: millisecond precision
// for durations of a millisecond and up, microseconds below that —
// the scale of the paper's micro-measurements, which would otherwise
// all print as "0.000s".
func (s Seconds) String() string {
	if s != 0 && s > -0.001 && s < 0.001 {
		return fmt.Sprintf("%.4gµs", float64(s)*1e6)
	}
	return fmt.Sprintf("%.3fs", float64(s))
}

// Micros builds a Seconds value from microseconds, the natural unit of
// the paper's micro-measurements.
func Micros(us float64) Seconds { return Seconds(us * 1e-6) }

// CostModel holds the calibrated constants of the simulated NOW. The
// zero value is unusable; start from Default and override as needed.
type CostModel struct {
	// OneWayLatency is half the measured 126 us round-trip latency of a
	// 1-byte message (section 5.1).
	OneWayLatency Seconds

	// LinkBandwidth is the payload bandwidth of one direction of a
	// switched full-duplex 100 Mbps Ethernet link, in bytes per second.
	LinkBandwidth float64

	// PageFetchBase is the fixed software cost of a full page transfer
	// beyond latency and wire time. Calibrated so that a 4 KB page
	// fetch totals the measured 1308 us.
	PageFetchBase Seconds

	// DiffFetchBase and DiffByteCost model diff requests: the paper
	// measures 313 us for a minimal diff up to 1544 us for a full-page
	// diff. DiffByteCost covers diff creation and application per byte,
	// on top of wire time.
	DiffFetchBase Seconds
	DiffByteCost  Seconds

	// LockBase is the cost of an uncontended lock acquire from the
	// manager (measured 178 us); LockForward is the extra hop when the
	// manager must forward to the current holder (up to 272 us total).
	LockBase    Seconds
	LockForward Seconds

	// BarrierBase and BarrierPerProc model the all-to-one/one-to-all
	// barrier: arrival messages plus a departure broadcast.
	BarrierBase    Seconds
	BarrierPerProc Seconds

	// TwinCost is the local cost of twinning one page (a 4 KB memcpy
	// plus bookkeeping on a 300 MHz Pentium II).
	TwinCost Seconds

	// DiffCreateByteCost is the local cost per byte of scanning a page
	// against its twin when an interval closes.
	DiffCreateByteCost Seconds

	// MsgOverhead is the per-message software overhead (UDP socket send
	// plus receive handling) applied to protocol messages that are not
	// already covered by the calibrated aggregates above.
	MsgOverhead Seconds

	// SpawnTime is the cost of creating a process on a remote host
	// (measured 0.6 to 0.8 s; we use the midpoint deterministically).
	SpawnTime Seconds

	// ConnectSetupTime is the cost for a joining process to establish
	// its mesh of connections before announcing itself to the master.
	ConnectSetupTime Seconds

	// MigrationBandwidth is the measured 8.1 MB/s at which libckpt
	// moves a process image to a new host.
	MigrationBandwidth float64

	// MigrationImageOverhead is the non-heap part of a process image
	// (text, stack, runtime) added to the resident shared pages.
	MigrationImageOverhead int

	// GCBase and GCPerPageMeta model the fixed cost of a garbage
	// collection round plus the per-page metadata exchanged (owner
	// table broadcast).
	GCBase        Seconds
	GCPerPageMeta Seconds

	// PageMapEntryBytes is the wire size of one entry of the
	// page-location map sent to a joining process (owner id, protocol
	// bit, region/page coordinates).
	PageMapEntryBytes int
}

// Default returns the cost model calibrated from section 5.1 of the
// paper. See CostModel field comments for the measurement each constant
// reproduces.
func Default() CostModel {
	m := CostModel{
		OneWayLatency:          Micros(63),   // 126 us round trip
		LinkBandwidth:          12.5e6,       // 100 Mbps, one direction
		LockBase:               Micros(178),  // uncontended acquire
		LockForward:            Micros(94),   // 272 us worst case
		BarrierBase:            Micros(252),  // two round trips
		BarrierPerProc:         Micros(30),   // arrival processing
		TwinCost:               Micros(35),   // 4 KB copy on a P-II
		DiffCreateByteCost:     Micros(0.02), // page/twin scan
		MsgOverhead:            Micros(60),   // UDP send+recv path
		SpawnTime:              0.7,          // 0.6-0.8 s midpoint
		ConnectSetupTime:       0.05,
		MigrationBandwidth:     8.1e6,
		MigrationImageOverhead: 2 << 20, // ~2 MB text+stack+runtime
		GCBase:                 Micros(2000),
		GCPerPageMeta:          Micros(0.6),
		PageMapEntryBytes:      4,
	}
	// A full 4 KB page fetch totals 1308 us: round trip + wire time +
	// fixed software cost.
	wire := Seconds(4096 / m.LinkBandwidth)
	m.PageFetchBase = Micros(1308) - 2*m.OneWayLatency - wire
	// Getting a diff takes 313 us (minimal) to 1544 us (full page),
	// measured end to end at the requester.
	m.DiffFetchBase = Micros(313) - 2*m.OneWayLatency
	m.DiffByteCost = (Micros(1544) - Micros(313) - wire) / 4096
	return m
}

// PageFetch returns the requester-observed cost of fetching a full page
// of the given payload size from another machine.
func (m *CostModel) PageFetch(bytes int) Seconds {
	return 2*m.OneWayLatency + m.PageFetchBase + m.Wire(bytes)
}

// DiffFetch returns the requester-observed cost of fetching and applying
// diffs totalling the given payload size from one writer.
func (m *CostModel) DiffFetch(bytes int) Seconds {
	return 2*m.OneWayLatency + m.DiffFetchBase + m.Wire(bytes) + Seconds(float64(bytes))*m.DiffByteCost
}

// Wire returns the serialisation time of a payload on one link.
func (m *CostModel) Wire(bytes int) Seconds {
	return Seconds(float64(bytes) / m.LinkBandwidth)
}

// Barrier returns the synchronisation cost of a barrier across n
// processes, excluding the wait for the slowest arrival.
func (m *CostModel) Barrier(n int) Seconds {
	if n <= 1 {
		return 0
	}
	return m.BarrierBase + Seconds(n)*m.BarrierPerProc
}

// Fork returns the master's cost of broadcasting a Tmk_fork to n-1
// waiting slaves.
func (m *CostModel) Fork(n int) Seconds {
	if n <= 1 {
		return 0
	}
	return m.OneWayLatency + Seconds(n-1)*m.MsgOverhead
}

// Migration returns the cost of moving a process image of the given
// size to a freshly spawned process on another machine (Fig. 2c): spawn,
// then image transfer at the measured libckpt rate.
func (m *CostModel) Migration(imageBytes int) Seconds {
	return m.SpawnTime + Seconds(float64(imageBytes)/m.MigrationBandwidth)
}

// GC returns the garbage-collection coordination cost for a run with
// npages shared pages across n processes, excluding diff pulls (charged
// separately as ordinary diff traffic).
func (m *CostModel) GC(npages, n int) Seconds {
	return m.GCBase + Seconds(npages)*m.GCPerPageMeta*Seconds(n)
}

// Validate reports whether the model is internally consistent.
func (m *CostModel) Validate() error {
	switch {
	case m.LinkBandwidth <= 0:
		return fmt.Errorf("simtime: LinkBandwidth must be positive, got %g", m.LinkBandwidth)
	case m.MigrationBandwidth <= 0:
		return fmt.Errorf("simtime: MigrationBandwidth must be positive, got %g", m.MigrationBandwidth)
	case m.OneWayLatency < 0 || m.PageFetchBase < 0 || m.DiffFetchBase < 0:
		return fmt.Errorf("simtime: negative base cost")
	}
	return nil
}
