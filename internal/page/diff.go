package page

import (
	"bytes"
	"fmt"
)

// Run is a maximal contiguous range of modified words within a page.
type Run struct {
	// Word is the index of the first modified word.
	Word uint16
	// Data holds the new contents, a multiple of WordBytes long.
	Data []byte
}

// Diff is the set of words of a page that changed between its twin and
// its current contents. The zero value is an empty diff.
type Diff struct {
	Runs []Run
}

// runHeaderBytes is the wire size of a run header: word index plus word
// count, two bytes each (TreadMarks encodes diffs as such run lists).
const runHeaderBytes = 4

// Make scans current against twin and returns their diff, or nil if
// the page is unchanged. Both slices must be exactly one page.
func Make(twin, current []byte) *Diff {
	mustPage(twin)
	mustPage(current)
	var d Diff
	w := 0
	for w < Words {
		off := w * WordBytes
		if bytes.Equal(twin[off:off+WordBytes], current[off:off+WordBytes]) {
			w++
			continue
		}
		start := w
		for w < Words {
			off = w * WordBytes
			if bytes.Equal(twin[off:off+WordBytes], current[off:off+WordBytes]) {
				break
			}
			w++
		}
		data := make([]byte, (w-start)*WordBytes)
		copy(data, current[start*WordBytes:w*WordBytes])
		d.Runs = append(d.Runs, Run{Word: uint16(start), Data: data})
	}
	if len(d.Runs) == 0 {
		return nil
	}
	return &d
}

// Apply writes the diff's runs into dst, which must be exactly one
// page. Applying diffs from concurrent writers of a race-free program
// is order-independent because their modified words are disjoint;
// applying diffs from successive intervals must happen in interval
// order.
func (d *Diff) Apply(dst []byte) {
	mustPage(dst)
	if d == nil {
		return
	}
	for _, r := range d.Runs {
		off := int(r.Word) * WordBytes
		if off+len(r.Data) > Size {
			panic(fmt.Sprintf("page: diff run at word %d with %d bytes overflows page", r.Word, len(r.Data)))
		}
		copy(dst[off:], r.Data)
	}
}

// WireSize returns the encoded size of the diff in bytes: payload plus
// per-run headers plus a fixed diff header. This is the payload charged
// to the network when a diff is fetched.
func (d *Diff) WireSize() int {
	if d == nil {
		return 0
	}
	n := runHeaderBytes // diff header: page id + run count
	for _, r := range d.Runs {
		n += runHeaderBytes + len(r.Data)
	}
	return n
}

// DataBytes returns the number of payload bytes carried by the diff.
func (d *Diff) DataBytes() int {
	if d == nil {
		return 0
	}
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// Overlaps reports whether two diffs modify any common word. Race-free
// programs produce non-overlapping diffs within one interval; the DSM
// asserts this in tests.
func (d *Diff) Overlaps(o *Diff) bool {
	_, ok := d.FirstOverlap(o)
	return ok
}

// FirstOverlap returns the lowest word index modified by both diffs,
// and whether one exists. The DSM's word-race diagnostics use it to
// name the conflicting word in their panic messages.
func (d *Diff) FirstOverlap(o *Diff) (int, bool) {
	if d == nil || o == nil {
		return 0, false
	}
	var mask [Words]bool
	for _, r := range d.Runs {
		for w := 0; w < len(r.Data)/WordBytes; w++ {
			mask[int(r.Word)+w] = true
		}
	}
	first, found := 0, false
	for _, r := range o.Runs {
		for w := 0; w < len(r.Data)/WordBytes; w++ {
			i := int(r.Word) + w
			if mask[i] && (!found || i < first) {
				first, found = i, true
			}
		}
	}
	return first, found
}

// Clone returns a deep copy of the diff.
func (d *Diff) Clone() *Diff {
	if d == nil {
		return nil
	}
	c := &Diff{Runs: make([]Run, len(d.Runs))}
	for i, r := range d.Runs {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		c.Runs[i] = Run{Word: r.Word, Data: data}
	}
	return c
}
