package page

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Run is a maximal contiguous range of modified words within a page.
type Run struct {
	// Word is the index of the first modified word.
	Word uint16
	// Data holds the new contents, a multiple of WordBytes long.
	Data []byte
}

// Diff is the set of words of a page that changed between its twin and
// its current contents. The zero value is an empty diff.
type Diff struct {
	Runs []Run
}

// runHeaderBytes is the wire size of a run header: word index plus word
// count, two bytes each (TreadMarks encodes diffs as such run lists).
const runHeaderBytes = 4

// maxRuns is the most runs one page can diff into: changed and
// unchanged words strictly alternating.
const maxRuns = Words / 2

// Make scans current against twin and returns their diff, or nil if
// the page is unchanged. Both slices must be exactly one page.
//
// The scan compares whole 8-byte words as uint64 loads — one compare
// per word instead of a bytes.Equal call per word — and the run
// payloads share a single backing buffer, so a Make costs at most
// three allocations (Diff, run headers, payload) however fragmented
// the modifications are.
func Make(twin, current []byte) *Diff {
	mustPage(twin)
	mustPage(current)

	// First pass: find the run boundaries and the payload total. The
	// boundary scratch lives on the stack.
	var starts, ends [maxRuns]uint16
	n := 0
	total := 0
	w := 0
	for w < Words {
		off := w * WordBytes
		if binary.LittleEndian.Uint64(twin[off:]) == binary.LittleEndian.Uint64(current[off:]) {
			w++
			continue
		}
		start := w
		for w < Words {
			off = w * WordBytes
			if binary.LittleEndian.Uint64(twin[off:]) == binary.LittleEndian.Uint64(current[off:]) {
				break
			}
			w++
		}
		starts[n], ends[n] = uint16(start), uint16(w)
		n++
		total += (w - start) * WordBytes
	}
	if n == 0 {
		return nil
	}

	// Second pass: copy the payloads into one shared backing buffer.
	backing := make([]byte, total)
	runs := make([]Run, n)
	off := 0
	for i := 0; i < n; i++ {
		lo, hi := int(starts[i])*WordBytes, int(ends[i])*WordBytes
		data := backing[off : off+(hi-lo) : off+(hi-lo)]
		copy(data, current[lo:hi])
		runs[i] = Run{Word: starts[i], Data: data}
		off += hi - lo
	}
	return &Diff{Runs: runs}
}

// Apply writes the diff's runs into dst, which must be exactly one
// page. Applying diffs from concurrent writers of a race-free program
// is order-independent because their modified words are disjoint;
// applying diffs from successive intervals must happen in interval
// order.
func (d *Diff) Apply(dst []byte) {
	mustPage(dst)
	if d == nil {
		return
	}
	for _, r := range d.Runs {
		off := int(r.Word) * WordBytes
		if off+len(r.Data) > Size {
			panic(fmt.Sprintf("page: diff run at word %d with %d bytes overflows page", r.Word, len(r.Data)))
		}
		copy(dst[off:], r.Data)
	}
}

// WireSize returns the encoded size of the diff in bytes: payload plus
// per-run headers plus a fixed diff header. This is the payload charged
// to the network when a diff is fetched.
func (d *Diff) WireSize() int {
	if d == nil {
		return 0
	}
	n := runHeaderBytes // diff header: page id + run count
	for _, r := range d.Runs {
		n += runHeaderBytes + len(r.Data)
	}
	return n
}

// DataBytes returns the number of payload bytes carried by the diff.
func (d *Diff) DataBytes() int {
	if d == nil {
		return 0
	}
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// Overlaps reports whether two diffs modify any common word. Race-free
// programs produce non-overlapping diffs within one interval; the DSM
// asserts this in tests.
func (d *Diff) Overlaps(o *Diff) bool {
	_, ok := d.FirstOverlap(o)
	return ok
}

// maskWords is the size of a per-page word bitset in uint64 lanes.
const maskWords = Words / 64

// FirstOverlap returns the lowest word index modified by both diffs,
// and whether one exists. The DSM's word-race diagnostics use it to
// name the conflicting word in their panic messages.
//
// Both diffs rasterise into 64-byte stack bitsets ([Words/64]uint64,
// not the [Words]bool mask this used to allocate per call); the lowest
// common word is the first set bit of their intersection.
func (d *Diff) FirstOverlap(o *Diff) (int, bool) {
	if d == nil || o == nil {
		return 0, false
	}
	var a, b [maskWords]uint64
	for _, r := range d.Runs {
		end := int(r.Word) + len(r.Data)/WordBytes
		for w := int(r.Word); w < end; w++ {
			a[w>>6] |= 1 << uint(w&63)
		}
	}
	for _, r := range o.Runs {
		end := int(r.Word) + len(r.Data)/WordBytes
		for w := int(r.Word); w < end; w++ {
			b[w>>6] |= 1 << uint(w&63)
		}
	}
	for i := 0; i < maskWords; i++ {
		if common := a[i] & b[i]; common != 0 {
			return i<<6 | bits.TrailingZeros64(common), true
		}
	}
	return 0, false
}

// Clone returns a deep copy of the diff. Like Make, the copy's run
// payloads share one backing buffer.
func (d *Diff) Clone() *Diff {
	if d == nil {
		return nil
	}
	backing := make([]byte, d.DataBytes())
	c := &Diff{Runs: make([]Run, len(d.Runs))}
	off := 0
	for i, r := range d.Runs {
		data := backing[off : off+len(r.Data) : off+len(r.Data)]
		copy(data, r.Data)
		c.Runs[i] = Run{Word: r.Word, Data: data}
		off += len(r.Data)
	}
	return c
}
