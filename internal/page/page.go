// Package page implements the 4 KB shared-memory page primitives of the
// TreadMarks protocol: twins (pristine copies taken at the first write
// of an interval) and word-granularity diffs (run-length encodings of
// the words that changed between a twin and the current page). Diffs
// are what make the multiple-writer protocol possible: two processes
// may modify disjoint words of the same page concurrently, and their
// diffs merge without conflict at the next synchronisation.
package page

import "fmt"

const (
	// Size is the shared-memory page size in bytes, matching the 4 KB
	// pages of the paper's FreeBSD/Pentium II testbed (Table 1 counts
	// transfers in 4 KB pages).
	Size = 4096

	// WordBytes is the diffing granularity. TreadMarks diffs at machine
	// word granularity; race-free programs never write the same word
	// from two processes in one interval, so word-granularity diffs
	// merge safely.
	WordBytes = 8

	// Words is the number of diffable words in a page.
	Words = Size / WordBytes
)

// Count returns the number of pages needed to hold the given byte size.
func Count(bytes int) int {
	if bytes < 0 {
		panic(fmt.Sprintf("page: negative region size %d", bytes))
	}
	return (bytes + Size - 1) / Size
}

// Twin returns a pristine copy of the page taken before the first write
// of an interval. The input must be exactly one page.
func Twin(data []byte) []byte {
	mustPage(data)
	t := make([]byte, Size)
	copy(t, data)
	return t
}

func mustPage(b []byte) {
	if len(b) != Size {
		panic(fmt.Sprintf("page: got %d bytes, want exactly %d", len(b), Size))
	}
}
