// Package page implements the 4 KB shared-memory page primitives of the
// TreadMarks protocol: twins (pristine copies taken at the first write
// of an interval) and word-granularity diffs (run-length encodings of
// the words that changed between a twin and the current page). Diffs
// are what make the multiple-writer protocol possible: two processes
// may modify disjoint words of the same page concurrently, and their
// diffs merge without conflict at the next synchronisation.
package page

import (
	"fmt"
	"sync"
)

const (
	// Size is the shared-memory page size in bytes, matching the 4 KB
	// pages of the paper's FreeBSD/Pentium II testbed (Table 1 counts
	// transfers in 4 KB pages).
	Size = 4096

	// WordBytes is the diffing granularity. TreadMarks diffs at machine
	// word granularity; race-free programs never write the same word
	// from two processes in one interval, so word-granularity diffs
	// merge safely.
	WordBytes = 8

	// Words is the number of diffable words in a page.
	Words = Size / WordBytes
)

// Count returns the number of pages needed to hold the given byte size.
func Count(bytes int) int {
	if bytes < 0 {
		panic(fmt.Sprintf("page: negative region size %d", bytes))
	}
	return (bytes + Size - 1) / Size
}

// pool recycles page-sized buffers: twins live for one interval and
// page copies are dropped at every refetch and garbage collection, so
// the hot paths would otherwise allocate a fresh 4 KB block per event.
// Pooling is invisible to the simulation — every Get is immediately
// and fully overwritten (Twin copies a whole page, Zeroed clears) — so
// results stay bit-exact no matter which buffer comes back.
var pool = sync.Pool{New: func() any { return new([Size]byte) }}

// Twin returns a pristine copy of the page taken before the first write
// of an interval (also the general "copy one page" allocator: fetches
// duplicate a remote copy through it). The input must be exactly one
// page. The buffer may be recycled; pass it to Release when provably
// dropping the last reference.
func Twin(data []byte) []byte {
	mustPage(data)
	t := pool.Get().(*[Size]byte)
	copy(t[:], data)
	return t[:]
}

// Zeroed returns a zero-filled page.
func Zeroed() []byte {
	t := pool.Get().(*[Size]byte)
	clear(t[:])
	return t[:]
}

// Release returns a page buffer obtained from Twin or Zeroed to the
// pool. nil is a no-op; so is a buffer of the wrong shape (a caller
// holding a foreign slice simply leaves it to the garbage collector).
// The caller must hold the only remaining reference.
func Release(b []byte) {
	if len(b) != Size || cap(b) != Size {
		return
	}
	pool.Put((*[Size]byte)(b))
}

func mustPage(b []byte) {
	if len(b) != Size {
		panic(fmt.Sprintf("page: got %d bytes, want exactly %d", len(b), Size))
	}
}

// Freelist is a single-owner page-buffer recycler. The shared pool
// above pays a synchronised Get/Put per twin, which the DSM hot path
// performs once per written page per interval — millions of times at
// full scale. A cluster whose events are serialised (the discrete-event
// engine runs exactly one process at a time) can recycle through a
// plain stack instead. Buffers are interchangeable with the shared
// pool's; each must be released to exactly one of the two.
type Freelist struct {
	free []*[Size]byte
}

func (f *Freelist) get() *[Size]byte {
	if n := len(f.free); n > 0 {
		t := f.free[n-1]
		f.free = f.free[:n-1]
		return t
	}
	return new([Size]byte)
}

// Copy returns a recycled buffer holding a copy of the page, the
// freelist counterpart of Twin.
func (f *Freelist) Copy(data []byte) []byte {
	mustPage(data)
	t := f.get()
	copy(t[:], data)
	return t[:]
}

// Zeroed returns a recycled zero-filled page.
func (f *Freelist) Zeroed() []byte {
	t := f.get()
	clear(t[:])
	return t[:]
}

// Release returns a buffer to the freelist. As with the pooled
// Release, nil and foreign slices are no-ops.
func (f *Freelist) Release(b []byte) {
	if len(b) != Size || cap(b) != Size {
		return
	}
	f.free = append(f.free, (*[Size]byte)(b))
}
