package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func fill(b []byte, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Read(b)
}

func TestCount(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 0}, {1, 1}, {Size, 1}, {Size + 1, 2}, {10 * Size, 10}, {10*Size - 1, 10},
	}
	for _, c := range cases {
		if got := Count(c.bytes); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestCountNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Count(-1) must panic")
		}
	}()
	Count(-1)
}

func TestTwinIsIndependentCopy(t *testing.T) {
	p := make([]byte, Size)
	fill(p, 1)
	tw := Twin(p)
	if !bytes.Equal(tw, p) {
		t.Fatal("twin must equal page at creation")
	}
	p[0] ^= 0xff
	if bytes.Equal(tw, p) {
		t.Fatal("twin must be an independent copy")
	}
}

func TestMakeNilOnUnchanged(t *testing.T) {
	p := make([]byte, Size)
	fill(p, 2)
	if d := Make(Twin(p), p); d != nil {
		t.Fatalf("diff of unchanged page = %v, want nil", d)
	}
}

func TestDiffRoundTrip(t *testing.T) {
	p := make([]byte, Size)
	fill(p, 3)
	tw := Twin(p)
	// Scatter writes: single word, a run, and the last word.
	p[0] = ^p[0]
	for i := 100 * WordBytes; i < 140*WordBytes; i++ {
		p[i] ^= 0x55
	}
	p[Size-1] ^= 0x01

	d := Make(tw, p)
	if d == nil {
		t.Fatal("expected non-nil diff")
	}
	got := Twin(tw) // fresh copy of the pristine page
	d.Apply(got)
	if !bytes.Equal(got, p) {
		t.Fatal("twin + diff != current page")
	}
}

func TestDiffRunCoalescing(t *testing.T) {
	p := make([]byte, Size)
	tw := Twin(p)
	// Two adjacent words then a gap then one word: expect 2 runs.
	copy(p[0:16], bytes.Repeat([]byte{1}, 16))
	p[64*WordBytes] = 9
	d := Make(tw, p)
	if len(d.Runs) != 2 {
		t.Fatalf("got %d runs, want 2: %+v", len(d.Runs), d.Runs)
	}
	if d.Runs[0].Word != 0 || len(d.Runs[0].Data) != 16 {
		t.Errorf("run 0 = word %d len %d, want word 0 len 16", d.Runs[0].Word, len(d.Runs[0].Data))
	}
	if d.Runs[1].Word != 64 || len(d.Runs[1].Data) != WordBytes {
		t.Errorf("run 1 = word %d len %d, want word 64 len 8", d.Runs[1].Word, len(d.Runs[1].Data))
	}
}

func TestWireSizeBounds(t *testing.T) {
	p := make([]byte, Size)
	tw := Twin(p)
	for i := range p {
		p[i] = 0xaa
	}
	d := Make(tw, p)
	if d.DataBytes() != Size {
		t.Fatalf("full-page diff payload = %d, want %d", d.DataBytes(), Size)
	}
	if d.WireSize() != Size+2*runHeaderBytes {
		t.Fatalf("full-page diff wire size = %d, want %d", d.WireSize(), Size+2*runHeaderBytes)
	}
	if (*Diff)(nil).WireSize() != 0 {
		t.Fatal("nil diff must have zero wire size")
	}
}

func TestDisjointWritersMerge(t *testing.T) {
	base := make([]byte, Size)
	fill(base, 4)
	// Writer A modifies the first half, writer B the second half,
	// both starting from the same base (the multiple-writer scenario
	// on a partition-straddling page).
	a, b := Twin(base), Twin(base)
	for i := 0; i < Size/2; i++ {
		a[i] ^= 0x0f
	}
	for i := Size / 2; i < Size; i++ {
		b[i] ^= 0xf0
	}
	da := Make(Twin(base), a)
	db := Make(Twin(base), b)
	if da.Overlaps(db) {
		t.Fatal("disjoint writers must produce non-overlapping diffs")
	}
	m1 := Twin(base)
	da.Apply(m1)
	db.Apply(m1)
	m2 := Twin(base)
	db.Apply(m2)
	da.Apply(m2)
	if !bytes.Equal(m1, m2) {
		t.Fatal("disjoint diff application must be order-independent")
	}
	for i := 0; i < Size/2; i++ {
		if m1[i] != base[i]^0x0f {
			t.Fatalf("merged page wrong at %d", i)
		}
	}
	for i := Size / 2; i < Size; i++ {
		if m1[i] != base[i]^0xf0 {
			t.Fatalf("merged page wrong at %d", i)
		}
	}
}

func TestOverlapsDetectsConflict(t *testing.T) {
	base := make([]byte, Size)
	a, b := Twin(base), Twin(base)
	a[8] = 1
	b[9] = 2 // same word as a's write (word 1)
	da := Make(Twin(base), a)
	db := Make(Twin(base), b)
	if !da.Overlaps(db) {
		t.Fatal("same-word writers must overlap")
	}
}

func TestClone(t *testing.T) {
	p := make([]byte, Size)
	fill(p, 5)
	tw := Twin(p)
	p[42] ^= 1
	d := Make(tw, p)
	c := d.Clone()
	c.Runs[0].Data[0] ^= 0xff
	out1, out2 := Twin(tw), Twin(tw)
	d.Apply(out1)
	c.Apply(out2)
	if bytes.Equal(out1, out2) {
		t.Fatal("clone must be deep: mutating the clone changed the original")
	}
	if (*Diff)(nil).Clone() != nil {
		t.Fatal("nil diff clone must be nil")
	}
}

// Property: for arbitrary mutations, twin+diff reconstructs the page
// and WireSize >= DataBytes.
func TestDiffReconstructionProperty(t *testing.T) {
	f := func(seed int64, writes []uint16) bool {
		p := make([]byte, Size)
		fill(p, seed)
		tw := Twin(p)
		for _, w := range writes {
			p[int(w)%Size] ^= byte(w >> 8)
		}
		d := Make(tw, p)
		got := Twin(tw)
		d.Apply(got)
		if !bytes.Equal(got, p) {
			return false
		}
		return d.WireSize() >= d.DataBytes()
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: diff payload is always a multiple of the word size and runs
// are sorted, non-adjacent and in-bounds.
func TestDiffShapeProperty(t *testing.T) {
	f := func(seed int64, writes []uint16) bool {
		p := make([]byte, Size)
		fill(p, seed)
		tw := Twin(p)
		for _, w := range writes {
			p[int(w)%Size] ^= 0xff
		}
		d := Make(tw, p)
		if d == nil {
			return len(writes) == 0 || bytes.Equal(tw, p)
		}
		prevEnd := -1
		for _, r := range d.Runs {
			if len(r.Data) == 0 || len(r.Data)%WordBytes != 0 {
				return false
			}
			if int(r.Word) <= prevEnd { // must leave a gap, else runs coalesce
				return false
			}
			end := int(r.Word) + len(r.Data)/WordBytes
			if end > Words {
				return false
			}
			prevEnd = end
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiffMakeSparse(b *testing.B) {
	p := make([]byte, Size)
	fill(p, 7)
	tw := Twin(p)
	p[100] ^= 1
	p[2000] ^= 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Make(tw, p)
	}
}

func BenchmarkDiffApplyFull(b *testing.B) {
	p := make([]byte, Size)
	fill(p, 8)
	tw := Twin(p)
	for i := range p {
		p[i] ^= 0x5a
	}
	d := Make(tw, p)
	dst := Twin(tw)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Apply(dst)
	}
}

func BenchmarkDiffFirstOverlap(b *testing.B) {
	p := make([]byte, Size)
	fill(p, 9)
	tw := Twin(p)
	// Two moderately dense writers with one common word near the end:
	// the bitset walk has to cover most of the mask before it hits.
	a := append([]byte(nil), p...)
	for i := 0; i < Size; i += 64 {
		a[i] ^= 1
	}
	c := append([]byte(nil), p...)
	for i := 32; i < Size; i += 64 {
		c[i] ^= 1
	}
	a[Size-8] ^= 1
	c[Size-8] ^= 1
	da := Make(tw, a)
	dc := Make(tw, c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := da.FirstOverlap(dc); !ok {
			b.Fatal("expected an overlap")
		}
	}
}

// TestHotPathAllocationPins pins the allocation counts of the codec
// hot paths, so an accidental heap escape (a reverted stack scratch
// buffer, a boxed scalar) fails loudly instead of surfacing as a GC
// regression in the bench matrix.
func TestHotPathAllocationPins(t *testing.T) {
	p := make([]byte, Size)
	fill(p, 10)
	tw := Twin(p)
	mod := append([]byte(nil), p...)
	for i := 0; i < Size; i += 128 {
		mod[i] ^= 1
	}
	other := append([]byte(nil), p...)
	for i := 64; i < Size; i += 128 {
		other[i] ^= 1
	}
	d := Make(tw, mod)
	od := Make(tw, other)

	if n := testing.AllocsPerRun(200, func() { d.Apply(p) }); n != 0 {
		t.Errorf("Diff.Apply allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { d.FirstOverlap(od) }); n != 0 {
		t.Errorf("Diff.FirstOverlap allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { d.Overlaps(od) }); n != 0 {
		t.Errorf("Diff.Overlaps allocates %v times per run, want 0", n)
	}
	// Make's scratch (run boundaries) lives on the stack; only the Diff
	// header, the run slice and the single payload backing buffer may
	// allocate.
	if n := testing.AllocsPerRun(200, func() { Make(tw, mod) }); n > 3 {
		t.Errorf("Diff.Make allocates %v times per run, want <= 3", n)
	}
}
