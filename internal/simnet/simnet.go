// Package simnet models the switched full-duplex 100 Mbps Ethernet of
// the paper's experimental environment (section 5.1). Because the
// switch isolates links, the network performance of individual links is
// independent; the paper's key micro-result is that adaptation cost is
// proportional to the maximum traffic on any single link. The fabric
// therefore tracks bytes and messages per directed link and can answer
// bottleneck queries over arbitrary measurement windows.
package simnet

import (
	"fmt"
	"sync"
)

// MachineID identifies a physical workstation on the fabric. Logical
// processes bind to machines; after an urgent-leave migration two
// processes may share one machine (and hence one pair of link
// directions) until the next adaptation point.
type MachineID int

// Fabric is a switched network of n machines. All methods are safe for
// concurrent use by the process goroutines of a running team.
type Fabric struct {
	mu    sync.Mutex
	n     int
	bytes []int64 // [from*n+to] payload bytes, from != to
	msgs  []int64
}

// New returns a fabric connecting n machines. n must be positive.
func New(n int) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: invalid machine count %d", n))
	}
	return &Fabric{n: n, bytes: make([]int64, n*n), msgs: make([]int64, n*n)}
}

// Machines returns the number of machines on the fabric.
func (f *Fabric) Machines() int { return f.n }

// Record accounts one message of the given payload size on the directed
// link from src to dst. Loopback traffic (src == dst) is free and not
// recorded, matching a process talking to a co-located process after
// migration.
func (f *Fabric) Record(src, dst MachineID, payload int) {
	if src == dst {
		return
	}
	f.check(src)
	f.check(dst)
	i := int(src)*f.n + int(dst)
	f.mu.Lock()
	f.bytes[i] += int64(payload)
	f.msgs[i]++
	f.mu.Unlock()
}

func (f *Fabric) check(m MachineID) {
	if m < 0 || int(m) >= f.n {
		panic(fmt.Sprintf("simnet: machine %d out of range [0,%d)", m, f.n))
	}
}

// Counters is a snapshot of the fabric's per-link accounting.
type Counters struct {
	n     int
	bytes []int64
	msgs  []int64
}

// Snapshot captures the current counters.
func (f *Fabric) Snapshot() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := Counters{n: f.n, bytes: make([]int64, len(f.bytes)), msgs: make([]int64, len(f.msgs))}
	copy(c.bytes, f.bytes)
	copy(c.msgs, f.msgs)
	return c
}

// Sub returns the traffic accumulated between an earlier snapshot and
// this one: the measurement-window primitive used by the adaptation
// micro-analysis.
func (c Counters) Sub(earlier Counters) Counters {
	if c.n != earlier.n {
		panic("simnet: snapshots from different fabrics")
	}
	d := Counters{n: c.n, bytes: make([]int64, len(c.bytes)), msgs: make([]int64, len(c.msgs))}
	for i := range c.bytes {
		d.bytes[i] = c.bytes[i] - earlier.bytes[i]
		d.msgs[i] = c.msgs[i] - earlier.msgs[i]
	}
	return d
}

// TotalBytes returns the sum of payload bytes over all links.
func (c Counters) TotalBytes() int64 {
	var t int64
	for _, b := range c.bytes {
		t += b
	}
	return t
}

// TotalMessages returns the sum of messages over all links.
func (c Counters) TotalMessages() int64 {
	var t int64
	for _, m := range c.msgs {
		t += m
	}
	return t
}

// LinkBytes returns the payload bytes recorded on the directed link
// src -> dst.
func (c Counters) LinkBytes(src, dst MachineID) int64 {
	if src == dst {
		return 0
	}
	return c.bytes[int(src)*c.n+int(dst)]
}

// MaxLink returns the busiest directed link in the window and its byte
// count: the bottleneck that, per section 5.4, determines the cost of
// an adaptation on a switched network.
func (c Counters) MaxLink() (src, dst MachineID, bytes int64) {
	var best int64 = -1
	for s := 0; s < c.n; s++ {
		for d := 0; d < c.n; d++ {
			if s == d {
				continue
			}
			if b := c.bytes[s*c.n+d]; b > best {
				best, src, dst = b, MachineID(s), MachineID(d)
			}
		}
	}
	if best < 0 {
		best = 0
	}
	return src, dst, best
}

// MachineBytes returns the total bytes entering and leaving machine m:
// the load on its full-duplex link (in, out).
func (c Counters) MachineBytes(m MachineID) (in, out int64) {
	for s := 0; s < c.n; s++ {
		if MachineID(s) == m {
			continue
		}
		in += c.bytes[s*c.n+int(m)]
		out += c.bytes[int(m)*c.n+s]
	}
	return in, out
}
