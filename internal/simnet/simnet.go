// Package simnet models the switched full-duplex 100 Mbps Ethernet of
// the paper's experimental environment (section 5.1). Because the
// switch isolates links, the network performance of individual links is
// independent; the paper's key micro-result is that adaptation cost is
// proportional to the maximum traffic on any single link. The fabric
// therefore tracks bytes and messages per directed link and can answer
// bottleneck queries over arbitrary measurement windows.
package simnet

import (
	"fmt"
	"sync/atomic"
)

// MachineID identifies a physical workstation on the fabric. Logical
// processes bind to machines; after an urgent-leave migration two
// processes may share one machine (and hence one pair of link
// directions) until the next adaptation point.
type MachineID int

// Fabric is a switched network of n machines. All methods are safe for
// concurrent use by the process goroutines of a running team. The
// byte/message counters are per-link atomics: Record is called on
// every protocol message, and a global mutex there would serialise
// pure counter traffic across unrelated links.
//
// Each directed link also carries optional latency/bandwidth scale
// factors over the baseline cost model (1.0 = the paper's switched
// 100 Mbps Ethernet). Scales are configured before the run starts and
// read-only afterwards; the cost layer (internal/machine) consults
// them when pricing transfers.
type Fabric struct {
	n     int
	bytes []atomic.Int64 // [from*n+to] payload bytes, from != to
	msgs  []atomic.Int64

	// latScale/bwScale are per-directed-link multipliers on the
	// baseline one-way latency and bandwidth; nil means all 1.0.
	latScale []float64
	bwScale  []float64
}

// New returns a fabric connecting n machines. n must be positive.
func New(n int) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: invalid machine count %d", n))
	}
	return &Fabric{n: n, bytes: make([]atomic.Int64, n*n), msgs: make([]atomic.Int64, n*n)}
}

// Machines returns the number of machines on the fabric.
func (f *Fabric) Machines() int { return f.n }

// Record accounts one message of the given payload size on the directed
// link from src to dst. Loopback traffic (src == dst) is free and not
// recorded, matching a process talking to a co-located process after
// migration.
func (f *Fabric) Record(src, dst MachineID, payload int) {
	if src == dst {
		return
	}
	f.check(src)
	f.check(dst)
	i := int(src)*f.n + int(dst)
	f.bytes[i].Add(int64(payload))
	f.msgs[i].Add(1)
}

// SetLinkScale overrides one directed link's latency and bandwidth
// scale factors (1.0 = baseline). Factors must be positive. Configure
// links before the run: Record and the cost layer read them without
// synchronisation.
func (f *Fabric) SetLinkScale(src, dst MachineID, lat, bw float64) {
	f.check(src)
	f.check(dst)
	if src == dst {
		panic(fmt.Sprintf("simnet: machine %d has no link to itself", src))
	}
	if lat <= 0 || bw <= 0 {
		panic(fmt.Sprintf("simnet: link %d->%d scales (lat %g, bw %g) must be positive", src, dst, lat, bw))
	}
	if f.latScale == nil {
		f.latScale = make([]float64, f.n*f.n)
		f.bwScale = make([]float64, f.n*f.n)
		for i := range f.latScale {
			f.latScale[i] = 1
			f.bwScale[i] = 1
		}
	}
	i := int(src)*f.n + int(dst)
	f.latScale[i] = lat
	f.bwScale[i] = bw
}

// SetDuplexScale overrides both directions of a full-duplex link pair
// with the same factors.
func (f *Fabric) SetDuplexScale(a, b MachineID, lat, bw float64) {
	f.SetLinkScale(a, b, lat, bw)
	f.SetLinkScale(b, a, lat, bw)
}

// LatencyScale returns the latency multiplier of the directed link
// src -> dst (1.0 when unconfigured). Loopback is 1.0 by convention
// (loopback transfers are free and never priced).
func (f *Fabric) LatencyScale(src, dst MachineID) float64 {
	if f.latScale == nil || src == dst {
		return 1
	}
	f.check(src)
	f.check(dst)
	return f.latScale[int(src)*f.n+int(dst)]
}

// BandwidthScale returns the bandwidth multiplier of the directed link
// src -> dst (1.0 when unconfigured).
func (f *Fabric) BandwidthScale(src, dst MachineID) float64 {
	if f.bwScale == nil || src == dst {
		return 1
	}
	f.check(src)
	f.check(dst)
	return f.bwScale[int(src)*f.n+int(dst)]
}

// Heterogeneous reports whether any link carries a non-default scale.
func (f *Fabric) Heterogeneous() bool {
	for i := range f.latScale {
		if f.latScale[i] != 1 || f.bwScale[i] != 1 {
			return true
		}
	}
	return false
}

func (f *Fabric) check(m MachineID) {
	if m < 0 || int(m) >= f.n {
		panic(fmt.Sprintf("simnet: machine %d out of range [0,%d)", m, f.n))
	}
}

// Counters is a snapshot of the fabric's per-link accounting.
type Counters struct {
	n     int
	bytes []int64
	msgs  []int64
}

// Snapshot captures the current counters. Each link's pair is read
// atomically but the snapshot as a whole is not a consistent cut;
// measurement windows are taken with the team parked, where the
// distinction cannot be observed.
func (f *Fabric) Snapshot() Counters {
	c := Counters{n: f.n, bytes: make([]int64, len(f.bytes)), msgs: make([]int64, len(f.msgs))}
	for i := range f.bytes {
		c.bytes[i] = f.bytes[i].Load()
		c.msgs[i] = f.msgs[i].Load()
	}
	return c
}

// Sub returns the traffic accumulated between an earlier snapshot and
// this one: the measurement-window primitive used by the adaptation
// micro-analysis.
func (c Counters) Sub(earlier Counters) Counters {
	if c.n != earlier.n {
		panic("simnet: snapshots from different fabrics")
	}
	d := Counters{n: c.n, bytes: make([]int64, len(c.bytes)), msgs: make([]int64, len(c.msgs))}
	for i := range c.bytes {
		d.bytes[i] = c.bytes[i] - earlier.bytes[i]
		d.msgs[i] = c.msgs[i] - earlier.msgs[i]
	}
	return d
}

// TotalBytes returns the sum of payload bytes over all links.
func (c Counters) TotalBytes() int64 {
	var t int64
	for _, b := range c.bytes {
		t += b
	}
	return t
}

// TotalMessages returns the sum of messages over all links.
func (c Counters) TotalMessages() int64 {
	var t int64
	for _, m := range c.msgs {
		t += m
	}
	return t
}

// LinkBytes returns the payload bytes recorded on the directed link
// src -> dst.
func (c Counters) LinkBytes(src, dst MachineID) int64 {
	if src == dst {
		return 0
	}
	return c.bytes[int(src)*c.n+int(dst)]
}

// MaxLink returns the busiest directed link in the window and its byte
// count: the bottleneck that, per section 5.4, determines the cost of
// an adaptation on a switched network.
func (c Counters) MaxLink() (src, dst MachineID, bytes int64) {
	var best int64 = -1
	for s := 0; s < c.n; s++ {
		for d := 0; d < c.n; d++ {
			if s == d {
				continue
			}
			if b := c.bytes[s*c.n+d]; b > best {
				best, src, dst = b, MachineID(s), MachineID(d)
			}
		}
	}
	if best < 0 {
		best = 0
	}
	return src, dst, best
}

// MachineBytes returns the total bytes entering and leaving machine m:
// the load on its full-duplex link (in, out).
func (c Counters) MachineBytes(m MachineID) (in, out int64) {
	for s := 0; s < c.n; s++ {
		if MachineID(s) == m {
			continue
		}
		in += c.bytes[s*c.n+int(m)]
		out += c.bytes[int(m)*c.n+s]
	}
	return in, out
}
