package simnet

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordAndTotals(t *testing.T) {
	f := New(4)
	f.Record(0, 1, 100)
	f.Record(0, 1, 50)
	f.Record(1, 0, 25)
	f.Record(2, 3, 4096)
	c := f.Snapshot()
	if got := c.TotalBytes(); got != 4271 {
		t.Fatalf("TotalBytes = %d, want 4271", got)
	}
	if got := c.TotalMessages(); got != 4 {
		t.Fatalf("TotalMessages = %d, want 4", got)
	}
	if got := c.LinkBytes(0, 1); got != 150 {
		t.Fatalf("LinkBytes(0,1) = %d, want 150", got)
	}
	if got := c.LinkBytes(1, 0); got != 25 {
		t.Fatalf("LinkBytes(1,0) = %d, want 25", got)
	}
}

func TestLoopbackFree(t *testing.T) {
	f := New(2)
	f.Record(1, 1, 1<<20)
	c := f.Snapshot()
	if c.TotalBytes() != 0 || c.TotalMessages() != 0 {
		t.Fatalf("loopback traffic must not be recorded, got %d bytes", c.TotalBytes())
	}
}

func TestMaxLink(t *testing.T) {
	f := New(3)
	f.Record(0, 1, 10)
	f.Record(1, 2, 500)
	f.Record(2, 0, 20)
	s, d, b := f.Snapshot().MaxLink()
	if s != 1 || d != 2 || b != 500 {
		t.Fatalf("MaxLink = %d->%d %d bytes, want 1->2 500", s, d, b)
	}
}

func TestMaxLinkEmpty(t *testing.T) {
	_, _, b := New(2).Snapshot().MaxLink()
	if b != 0 {
		t.Fatalf("empty fabric MaxLink bytes = %d, want 0", b)
	}
}

func TestWindowSub(t *testing.T) {
	f := New(2)
	f.Record(0, 1, 100)
	before := f.Snapshot()
	f.Record(0, 1, 300)
	f.Record(1, 0, 7)
	window := f.Snapshot().Sub(before)
	if got := window.LinkBytes(0, 1); got != 300 {
		t.Fatalf("window LinkBytes(0,1) = %d, want 300", got)
	}
	if got := window.TotalMessages(); got != 2 {
		t.Fatalf("window messages = %d, want 2", got)
	}
}

func TestMachineBytes(t *testing.T) {
	f := New(3)
	f.Record(0, 1, 10)
	f.Record(2, 1, 30)
	f.Record(1, 0, 5)
	in, out := f.Snapshot().MachineBytes(1)
	if in != 40 || out != 5 {
		t.Fatalf("MachineBytes(1) = in %d out %d, want 40, 5", in, out)
	}
}

func TestConcurrentRecording(t *testing.T) {
	f := New(4)
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := MachineID(w % 4)
			dst := MachineID((w + 1) % 4)
			for i := 0; i < each; i++ {
				f.Record(src, dst, 8)
			}
		}(w)
	}
	wg.Wait()
	c := f.Snapshot()
	if got := c.TotalBytes(); got != workers*each*8 {
		t.Fatalf("TotalBytes = %d, want %d", got, workers*each*8)
	}
	if got := c.TotalMessages(); got != workers*each {
		t.Fatalf("TotalMessages = %d, want %d", got, workers*each)
	}
}

func TestInvalidMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Record with out-of-range machine must panic")
		}
	}()
	New(2).Record(0, 5, 1)
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) must panic")
		}
	}()
	New(0)
}

// Property: conservation — the sum over per-machine in-flows equals the
// sum over out-flows equals total bytes.
func TestFlowConservation(t *testing.T) {
	f := func(events []uint16) bool {
		fb := New(5)
		for i, e := range events {
			src := MachineID(i % 5)
			dst := MachineID(int(e) % 5)
			fb.Record(src, dst, int(e%1000))
		}
		c := fb.Snapshot()
		var ins, outs int64
		for m := 0; m < 5; m++ {
			in, out := c.MachineBytes(MachineID(m))
			ins += in
			outs += out
		}
		return ins == c.TotalBytes() && outs == c.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
