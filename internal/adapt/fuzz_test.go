package adapt

import (
	"testing"
)

// FuzzParsePolicy asserts the load-policy flag parser never panics on
// arbitrary input and that accepted policies round-trip through
// FormatPolicy: parse -> format -> parse is the identity and the
// formatted form is a fixed point.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"", "high=1.5,low=0.25,dwell=2", "high=2,low=0.5", "low=1,high=2",
		"high=0", "high=1,low=1", "dwell=-1", "high=x", "=", "high=1,low=0,dwell=0",
		"high=1e308,low=1e-308", "HIGH=1", " high = 1 , low = 0 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePolicy(spec)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		if p == (LoadPolicy{}) {
			return // blank spec means "no policy" and has no canonical form
		}
		out := FormatPolicy(p)
		p2, err := ParsePolicy(out)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) accepted but its format %q did not re-parse: %v", spec, out, err)
		}
		if p2 != p {
			t.Fatalf("round-trip changed the policy: %+v -> %q -> %+v", p, out, p2)
		}
		if again := FormatPolicy(p2); again != out {
			t.Fatalf("format not a fixed point: %q -> %q -> %q", spec, out, again)
		}
	})
}
