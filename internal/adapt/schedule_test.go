package adapt

import (
	"strings"
	"testing"
)

func TestParseScheduleBasic(t *testing.T) {
	evs, err := ParseSchedule("12.5:leave:3,30:join:3,45:leave:7:grace=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].Kind != KindLeave || evs[0].Host != 3 || evs[0].At != 12.5 || evs[0].Grace != 0 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != KindJoin || evs[1].At != 30 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[2].Grace != 1 {
		t.Fatalf("event 2 grace = %v, want 1", evs[2].Grace)
	}
}

func TestParseScheduleShortKinds(t *testing.T) {
	evs, err := ParseSchedule("1:l:2, 2:j:2")
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Kind != KindLeave || evs[1].Kind != KindJoin {
		t.Fatalf("short kinds parsed wrong: %+v", evs)
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	evs, err := ParseSchedule("  ")
	if err != nil || evs != nil {
		t.Fatalf("empty schedule: %v, %v", evs, err)
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "12.5:leave:3,30:join:3,45:leave:7:grace=1"
	events, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSchedule(events)
	again, err := ParseSchedule(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if len(again) != len(events) {
		t.Fatalf("round trip changed event count: %d vs %d", len(again), len(events))
	}
	for i := range events {
		if events[i] != again[i] {
			t.Errorf("event %d changed in round trip: %+v vs %+v", i, events[i], again[i])
		}
	}
	if FormatSchedule(again) != out {
		t.Errorf("format not canonical: %q vs %q", FormatSchedule(again), out)
	}
	if FormatSchedule(nil) != "" {
		t.Error("empty schedule must format to the empty string")
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		in, wantSub string
	}{
		{"5:leave", "want TIME"},
		{"x:leave:3", "bad time"},
		{"-1:leave:3", "bad time"},
		{"5:vanish:3", "not join or leave"},
		{"5:leave:banana", "bad host"},
		{"5:leave:-2", "bad host"},
		{"5:leave:3:deadline=9", "unknown option"},
		{"5:leave:3:grace=zero", "bad grace"},
		{"5:leave:3:grace=-1", "bad grace"},
		{"5:join:3:grace=2", "only applies to leaves"},
	}
	for _, c := range cases {
		_, err := ParseSchedule(c.in)
		if err == nil {
			t.Errorf("ParseSchedule(%q): expected error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSchedule(%q) error %q, want substring %q", c.in, err, c.wantSub)
		}
	}
}
