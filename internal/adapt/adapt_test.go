package adapt

import (
	"reflect"
	"testing"

	"nowomp/internal/dsm"
	"nowomp/internal/page"
	"nowomp/internal/simtime"
)

func cluster(t *testing.T, hosts, active int) *dsm.Cluster {
	t.Helper()
	c, err := dsm.New(dsm.Config{MaxHosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < active; i++ {
		if _, err := c.Join(dsm.HostID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func team(n int) []dsm.HostID {
	t := make([]dsm.HostID, n)
	for i := range t {
		t[i] = dsm.HostID(i)
	}
	return t
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{})
	if err := m.Submit(Event{Kind: KindLeave, Host: 0, At: 1}); err == nil {
		t.Fatal("master leave must be rejected")
	}
	if err := m.Submit(Event{Kind: KindLeave, Host: 1, At: -1}); err == nil {
		t.Fatal("negative event time must be rejected")
	}
	if err := m.Submit(Event{Kind: KindLeave, Host: 1, At: 5}); err != nil {
		t.Fatalf("valid submit failed: %v", err)
	}
	if m.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", m.PendingCount())
	}
}

func TestDefaultGraceApplied(t *testing.T) {
	m := NewManager(Config{})
	if m.Config().DefaultGrace != DefaultGrace {
		t.Fatalf("default grace = %v, want %v", m.Config().DefaultGrace, DefaultGrace)
	}
}

func TestNormalLeaveAtPoint(t *testing.T) {
	c := cluster(t, 4, 4)
	c.Alloc("a", 8*page.Size)
	m := NewManager(Config{})
	if err := m.Submit(Event{Kind: KindLeave, Host: 2, At: 1.0}); err != nil {
		t.Fatal(err)
	}
	res, err := m.AtAdaptationPoint(c, team(4), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	want := []dsm.HostID{0, 1, 3}
	if !reflect.DeepEqual(res.Team, want) {
		t.Fatalf("team = %v, want %v", res.Team, want)
	}
	if len(res.Applied) != 1 || res.Applied[0].Urgent {
		t.Fatalf("applied = %+v, want one normal leave", res.Applied)
	}
	if res.GCElapsed <= 0 || res.Elapsed < res.GCElapsed {
		t.Fatalf("elapsed %v / gc %v inconsistent", res.Elapsed, res.GCElapsed)
	}
	if c.Host(2).Active() {
		t.Fatal("leaver still active")
	}
	if m.PendingCount() != 0 {
		t.Fatal("event still pending after application")
	}
}

func TestFutureEventsStayPending(t *testing.T) {
	c := cluster(t, 3, 3)
	m := NewManager(Config{})
	if err := m.Submit(Event{Kind: KindLeave, Host: 1, At: 100}); err != nil {
		t.Fatal(err)
	}
	res, err := m.AtAdaptationPoint(c, team(3), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) != 0 || m.PendingCount() != 1 {
		t.Fatal("future event must not be applied")
	}
	if !reflect.DeepEqual(res.Team, team(3)) {
		t.Fatal("team must be unchanged")
	}
}

func TestJoinWaitsForSpawn(t *testing.T) {
	c := cluster(t, 4, 3)
	c.Alloc("a", 4*page.Size)
	m := NewManager(Config{})
	model := c.Model()
	if err := m.Submit(Event{Kind: KindJoin, Host: 3, At: 1.0}); err != nil {
		t.Fatal(err)
	}
	// Too early: spawn+connect not finished.
	early := 1.0 + float64(model.SpawnTime)/2
	res, err := m.AtAdaptationPoint(c, team(3), simtime.Seconds(early))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) != 0 {
		t.Fatal("join applied before the new process was ready")
	}
	// Late enough.
	ready := simtime.Seconds(1.0) + model.SpawnTime + model.ConnectSetupTime + 0.001
	res, err = m.AtAdaptationPoint(c, team(3), ready)
	if err != nil {
		t.Fatal(err)
	}
	want := []dsm.HostID{0, 1, 2, 3}
	if !reflect.DeepEqual(res.Team, want) {
		t.Fatalf("team = %v, want %v", res.Team, want)
	}
	if !c.Host(3).Active() {
		t.Fatal("joiner not active")
	}
}

func TestSimultaneousEventsShareOneGC(t *testing.T) {
	c := cluster(t, 6, 6)
	c.Alloc("a", 12*page.Size)
	m := NewManager(Config{})
	if err := m.Submit(Event{Kind: KindLeave, Host: 4, At: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(Event{Kind: KindLeave, Host: 5, At: 0.6}); err != nil {
		t.Fatal(err)
	}
	gcs0 := c.Stats().GCs.Load()
	res, err := m.AtAdaptationPoint(c, team(6), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) != 2 {
		t.Fatalf("applied %d events, want 2", len(res.Applied))
	}
	if got := c.Stats().GCs.Load() - gcs0; got != 1 {
		t.Fatalf("GCs = %d, want 1 shared collection", got)
	}
	if !reflect.DeepEqual(res.Team, team(4)) {
		t.Fatalf("team = %v, want %v", res.Team, team(4))
	}
}

func TestUrgentLeaveMigratesAtJoin(t *testing.T) {
	c := cluster(t, 3, 3)
	r, _ := c.Alloc("a", 6*page.Size)
	// Make host 2 resident on some pages so the image has a size.
	clk := simtime.NewClock(0)
	buf := make([]byte, 8)
	c.Host(2).Read(r.ID, 0, buf, clk)

	m := NewManager(Config{DefaultGrace: 1.0})
	if err := m.Submit(Event{Kind: KindLeave, Host: 2, At: 1.0}); err != nil {
		t.Fatal(err)
	}
	tm := team(3)
	// Phase ends long after the 2.0 s deadline: urgent.
	arr := []simtime.Seconds{5, 5, 10}
	plans := m.AdjustJoin(c, tm, arr)
	if len(plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(plans))
	}
	p := plans[0]
	if p.Leaver != 2 || p.Target != 0 {
		t.Fatalf("plan = leaver %d target %d, want 2 -> 0 (successor in team order)", p.Leaver, p.Target)
	}
	if p.Start != 2.0 {
		t.Fatalf("migration start = %v, want deadline 2.0", p.Start)
	}
	// Leaver's remaining 8 s plus target's remaining work serialise.
	if arr[2] <= 10 || arr[0] != arr[2] {
		t.Fatalf("arrivals = %v: leaver and target must be delayed together", arr)
	}
	if arr[1] != 5 {
		t.Fatalf("bystander arrival = %v, want 5", arr[1])
	}
	// The leave then completes as a (recorded-urgent) leave at the
	// adaptation point.
	res, err := m.AtAdaptationPoint(c, tm, arr[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) != 1 || !res.Applied[0].Urgent || res.Applied[0].Plan == nil {
		t.Fatalf("applied = %+v, want one urgent leave with plan", res.Applied)
	}
	if !reflect.DeepEqual(res.Team, team(2)) {
		t.Fatalf("team = %v, want %v", res.Team, team(2))
	}
}

func TestGraceLongEnoughAvoidsMigration(t *testing.T) {
	c := cluster(t, 3, 3)
	c.Alloc("a", 2*page.Size)
	m := NewManager(Config{DefaultGrace: 100})
	if err := m.Submit(Event{Kind: KindLeave, Host: 1, At: 1.0}); err != nil {
		t.Fatal(err)
	}
	arr := []simtime.Seconds{5, 5, 5}
	if plans := m.AdjustJoin(c, team(3), arr); len(plans) != 0 {
		t.Fatalf("migration happened despite sufficient grace: %+v", plans)
	}
	if arr[1] != 5 {
		t.Fatal("arrivals must be untouched for normal leaves")
	}
}

func TestPerEventGraceOverride(t *testing.T) {
	c := cluster(t, 3, 3)
	c.Alloc("a", 2*page.Size)
	m := NewManager(Config{DefaultGrace: 100})
	// Tiny per-event grace forces urgency despite the long default.
	if err := m.Submit(Event{Kind: KindLeave, Host: 1, At: 1.0, Grace: 0.5}); err != nil {
		t.Fatal(err)
	}
	arr := []simtime.Seconds{5, 9, 5}
	if plans := m.AdjustJoin(c, team(3), arr); len(plans) != 1 {
		t.Fatal("per-event grace override did not trigger migration")
	}
}

func TestReassignShiftDown(t *testing.T) {
	tm := []dsm.HostID{0, 1, 2, 3, 4}
	got := Reassign(tm, map[dsm.HostID]bool{2: true}, nil, ShiftDown)
	if !reflect.DeepEqual(got, []dsm.HostID{0, 1, 3, 4}) {
		t.Fatalf("got %v", got)
	}
	got = Reassign(tm, map[dsm.HostID]bool{1: true, 4: true}, []dsm.HostID{7}, ShiftDown)
	if !reflect.DeepEqual(got, []dsm.HostID{0, 2, 3, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestReassignSwapLast(t *testing.T) {
	tm := []dsm.HostID{0, 1, 2, 3, 4}
	got := Reassign(tm, map[dsm.HostID]bool{2: true}, nil, SwapLast)
	if !reflect.DeepEqual(got, []dsm.HostID{0, 1, 4, 3}) {
		t.Fatalf("got %v", got)
	}
	// Leaver at the end: nothing to swap.
	got = Reassign(tm, map[dsm.HostID]bool{4: true}, nil, SwapLast)
	if !reflect.DeepEqual(got, []dsm.HostID{0, 1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
	// Two leavers, one at the end.
	got = Reassign(tm, map[dsm.HostID]bool{1: true, 4: true}, nil, SwapLast)
	if !reflect.DeepEqual(got, []dsm.HostID{0, 3, 2}) {
		t.Fatalf("got %v", got)
	}
	// Everyone but the master leaves.
	got = Reassign(tm, map[dsm.HostID]bool{1: true, 2: true, 3: true, 4: true}, nil, SwapLast)
	if !reflect.DeepEqual(got, []dsm.HostID{0}) {
		t.Fatalf("got %v", got)
	}
}

func TestReassignPreservesInput(t *testing.T) {
	tm := []dsm.HostID{0, 1, 2}
	_ = Reassign(tm, map[dsm.HostID]bool{1: true}, []dsm.HostID{5}, ShiftDown)
	if !reflect.DeepEqual(tm, []dsm.HostID{0, 1, 2}) {
		t.Fatalf("input team mutated: %v", tm)
	}
	_ = Reassign(tm, map[dsm.HostID]bool{1: true}, nil, SwapLast)
	if !reflect.DeepEqual(tm, []dsm.HostID{0, 1, 2}) {
		t.Fatalf("input team mutated by swap-last: %v", tm)
	}
}

func TestLogAccumulates(t *testing.T) {
	c := cluster(t, 3, 3)
	c.Alloc("a", 2*page.Size)
	m := NewManager(Config{})
	if err := m.Submit(Event{Kind: KindLeave, Host: 2, At: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AtAdaptationPoint(c, team(3), 1.0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(Event{Kind: KindJoin, Host: 2, At: 1.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AtAdaptationPoint(c, []dsm.HostID{0, 1}, 10.0); err != nil {
		t.Fatal(err)
	}
	log := m.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d records, want 2", len(log))
	}
	if log[0].Event.Kind != KindLeave || log[1].Event.Kind != KindJoin {
		t.Fatalf("log order wrong: %+v", log)
	}
}

// The filtered adaptation entry point: ineligible events stay queued
// while eligible ones apply, which is how the task runtime holds a
// leave until the departing process holds no task state.
func TestAtAdaptationPointWhereFiltersEvents(t *testing.T) {
	c := cluster(t, 6, 4)
	m := NewManager(Config{})
	if err := m.Submit(Event{Kind: KindLeave, Host: 2, At: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(Event{Kind: KindLeave, Host: 3, At: 1}); err != nil {
		t.Fatal(err)
	}
	holdHost3 := func(e Event) bool { return e.Host != 3 }

	if !m.HasEligible(c, team(4), 10, holdHost3) {
		t.Fatal("host 2's leave should be eligible")
	}
	res, err := m.AtAdaptationPointWhere(c, team(4), 10, holdHost3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) != 1 || res.Applied[0].Event.Host != 2 {
		t.Fatalf("applied %+v, want exactly host 2's leave", res.Applied)
	}
	if want := []dsm.HostID{0, 1, 3}; !reflect.DeepEqual(res.Team, want) {
		t.Fatalf("team %v, want %v", res.Team, want)
	}
	if m.PendingCount() != 1 {
		t.Fatalf("pending %d, want the held leave", m.PendingCount())
	}

	// Released filter: the held leave now applies.
	res, err = m.AtAdaptationPointWhere(c, res.Team, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) != 1 || res.Applied[0].Event.Host != 3 {
		t.Fatalf("applied %+v, want host 3's leave", res.Applied)
	}
	if m.PendingCount() != 0 {
		t.Fatalf("pending %d after release, want 0", m.PendingCount())
	}
}

// HasEligible mirrors the apply-side classification, including join
// maturity, without consuming anything.
func TestHasEligibleMaturity(t *testing.T) {
	c := cluster(t, 6, 2)
	m := NewManager(Config{})
	if err := m.Submit(Event{Kind: KindJoin, Host: 4, At: 1}); err != nil {
		t.Fatal(err)
	}
	lead := c.Model().SpawnTime + c.Model().ConnectSetupTime
	if m.HasEligible(c, team(2), 1+lead-0.001, nil) {
		t.Fatal("join eligible before its spawn lead time")
	}
	if !m.HasEligible(c, team(2), 1+lead, nil) {
		t.Fatal("join not eligible after its spawn lead time")
	}
	if m.PendingCount() != 1 {
		t.Fatal("HasEligible must not consume events")
	}
}
