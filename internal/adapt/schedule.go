package adapt

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

// ParseSchedule parses a comma-separated adapt-event schedule of the
// form
//
//	TIME:KIND:HOST[:grace=SECONDS]
//
// for example "12.5:leave:3,30:join:3,45:leave:7:grace=1". TIME is the
// virtual instant in seconds at which the event is raised, KIND is
// "join" or "leave", HOST is the workstation id. The optional grace
// suffix overrides the default grace period for a leave. This is the
// file/flag format the tools use to stand in for the paper's event
// daemons.
func ParseSchedule(s string) ([]Event, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var events []Event
	for _, item := range strings.Split(s, ",") {
		ev, err := parseEvent(strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// FormatSchedule renders events in ParseSchedule form; parsing the
// output reproduces the events (the canonical round trip the tools
// rely on when echoing a schedule back to the user).
func FormatSchedule(events []Event) string {
	parts := make([]string, len(events))
	for i, ev := range events {
		s := fmt.Sprintf("%s:%s:%d",
			strconv.FormatFloat(float64(ev.At), 'g', -1, 64), ev.Kind, ev.Host)
		if ev.Grace > 0 {
			s += fmt.Sprintf(":grace=%s", strconv.FormatFloat(float64(ev.Grace), 'g', -1, 64))
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

func parseEvent(item string) (Event, error) {
	parts := strings.Split(item, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return Event{}, fmt.Errorf("adapt: event %q: want TIME:KIND:HOST[:grace=G]", item)
	}
	t, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return Event{}, fmt.Errorf("adapt: event %q: bad time %q", item, parts[0])
	}
	var kind Kind
	switch strings.ToLower(parts[1]) {
	case "join", "j":
		kind = KindJoin
	case "leave", "l":
		kind = KindLeave
	default:
		return Event{}, fmt.Errorf("adapt: event %q: kind %q is not join or leave", item, parts[1])
	}
	host, err := strconv.Atoi(parts[2])
	if err != nil || host < 0 {
		return Event{}, fmt.Errorf("adapt: event %q: bad host %q", item, parts[2])
	}
	ev := Event{Kind: kind, Host: dsm.HostID(host), At: simtime.Seconds(t)}
	if len(parts) == 4 {
		g, ok := strings.CutPrefix(parts[3], "grace=")
		if !ok {
			return Event{}, fmt.Errorf("adapt: event %q: unknown option %q", item, parts[3])
		}
		gv, err := strconv.ParseFloat(g, 64)
		if err != nil || gv <= 0 || math.IsNaN(gv) || math.IsInf(gv, 0) {
			return Event{}, fmt.Errorf("adapt: event %q: bad grace %q", item, g)
		}
		if kind != KindLeave {
			return Event{}, fmt.Errorf("adapt: event %q: grace only applies to leaves", item)
		}
		ev.Grace = simtime.Seconds(gv)
	}
	return ev, nil
}
