package adapt

import (
	"testing"

	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/simtime"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	p, err := ParsePolicy("high=1.5,low=0.25,dwell=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.High != 1.5 || p.Low != 0.25 || p.Dwell != 2 {
		t.Fatalf("parsed %+v", p)
	}
	again, err := ParsePolicy(FormatPolicy(p))
	if err != nil {
		t.Fatalf("re-parse %q: %v", FormatPolicy(p), err)
	}
	if again != p {
		t.Errorf("round trip changed policy: %+v vs %+v", again, p)
	}
	// Dwell omitted: parses to the zero (defaulted-at-use) dwell and
	// still round-trips.
	p2, err := ParsePolicy("high=1,low=0")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Dwell != 0 {
		t.Errorf("omitted dwell parsed as %v", p2.Dwell)
	}
	again2, err := ParsePolicy(FormatPolicy(p2))
	if err != nil || again2 != p2 {
		t.Errorf("zero-dwell round trip: %+v vs %+v (%v)", again2, p2, err)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, spec := range []string{
		"nope", "high=x", "high=1,low=1", "high=1,low=2", "high=0,low=0",
		"high=1,low=-1", "high=1,low=0,dwell=0", "high=1,low=0,dwell=-1",
		"high=1,low=0,wibble=3",
	} {
		if _, err := ParsePolicy(spec); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", spec)
		}
	}
	p, err := ParsePolicy("")
	if err != nil {
		t.Errorf("empty policy spec must parse (as the zero policy), got %v", err)
	}
	if p != (LoadPolicy{}) {
		t.Errorf("empty spec gave %+v", p)
	}
}

// allHosts is the initial team used by the derive tests: every host
// the traces mention starts in the team.
var allHosts = []dsm.HostID{0, 1, 2, 3, 4, 5}

func mustTrace(t *testing.T, steps ...machine.Step) machine.Trace {
	t.Helper()
	tr, err := machine.NewTrace(steps...)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPolicyDeriveLeaveAndRejoin(t *testing.T) {
	p := LoadPolicy{High: 1.5, Low: 0.25, Dwell: 2}
	traces := map[dsm.HostID]machine.Trace{
		3: mustTrace(t, machine.Step{At: 5, Load: 2}, machine.Step{At: 15, Load: 0}),
	}
	events, err := p.Derive(traces, allHosts)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindLeave, Host: 3, At: 7},
		{Kind: KindJoin, Host: 3, At: 17},
	}
	if len(events) != len(want) {
		t.Fatalf("derived %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestPolicyDwellFiltersFlashLoad(t *testing.T) {
	p := LoadPolicy{High: 1.5, Low: 0.25, Dwell: 2}
	traces := map[dsm.HostID]machine.Trace{
		// 1.5 s spike: shorter than the 2 s dwell, must not fire.
		2: mustTrace(t, machine.Step{At: 4, Load: 3}, machine.Step{At: 5.5, Load: 0}),
	}
	events, err := p.Derive(traces, allHosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("flash load fired %v", events)
	}
}

func TestPolicyHysteresisHoldsInBand(t *testing.T) {
	p := LoadPolicy{High: 1.5, Low: 0.25, Dwell: 1}
	traces := map[dsm.HostID]machine.Trace{
		// After the leave the load settles inside the (Low, High) band:
		// the hysteresis must hold the machine out, no rejoin.
		4: mustTrace(t, machine.Step{At: 2, Load: 2}, machine.Step{At: 10, Load: 1}),
	}
	events, err := p.Derive(traces, allHosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindLeave {
		t.Errorf("want a single leave, got %v", events)
	}
}

func TestPolicyRunSpansSegments(t *testing.T) {
	p := LoadPolicy{High: 1.5, Low: 0.25, Dwell: 2}
	traces := map[dsm.HostID]machine.Trace{
		// Two back-to-back qualifying segments form one run: the dwell
		// counts from the run's start at t=5, not from the second step.
		1: mustTrace(t, machine.Step{At: 5, Load: 2}, machine.Step{At: 6, Load: 3}),
	}
	events, err := p.Derive(traces, allHosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].At != 7 || events[0].Kind != KindLeave {
		t.Errorf("want one leave at t=7, got %v", events)
	}
}

func TestPolicySkipsMaster(t *testing.T) {
	p := LoadPolicy{High: 1, Low: 0.5, Dwell: 1}
	traces := map[dsm.HostID]machine.Trace{
		0: mustTrace(t, machine.Step{At: 0, Load: 5}),
	}
	events, err := p.Derive(traces, allHosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("master must never leave, got %v", events)
	}
}

func TestPolicyDeriveSortedAcrossHosts(t *testing.T) {
	p := LoadPolicy{High: 1, Low: 0.5, Dwell: 1}
	traces := map[dsm.HostID]machine.Trace{
		5: mustTrace(t, machine.Step{At: 3, Load: 2}),
		2: mustTrace(t, machine.Step{At: 1, Load: 2}),
	}
	events, err := p.Derive(traces, allHosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Host != 2 || events[1].Host != 5 {
		t.Fatalf("events not time-sorted: %v", events)
	}
	if events[0].At != 2 || events[1].At != 4 {
		t.Errorf("fire times wrong: %v", events)
	}
}

// TestPolicySpareJoinsFirst pins the out-of-team seeding: a traced
// host outside the initial team is a spare, so its first event is a
// join once it has idled for a dwell — and only then can a load spike
// drive it out again.
func TestPolicySpareJoinsFirst(t *testing.T) {
	p := LoadPolicy{High: 1.5, Low: 0.25, Dwell: 2}
	traces := map[dsm.HostID]machine.Trace{
		// Idle until t=10, loaded until t=25, idle after.
		5: mustTrace(t, machine.Step{At: 10, Load: 4}, machine.Step{At: 25, Load: 0}),
	}
	events, err := p.Derive(traces, []dsm.HostID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindJoin, Host: 5, At: 2},
		{Kind: KindLeave, Host: 5, At: 12},
		{Kind: KindJoin, Host: 5, At: 27},
	}
	if len(events) != len(want) {
		t.Fatalf("derived %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
	// A spare that never idles long enough stays out entirely.
	busy := map[dsm.HostID]machine.Trace{
		4: mustTrace(t, machine.Step{At: 0, Load: 3}),
	}
	events, err = p.Derive(busy, []dsm.HostID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("busy spare must derive nothing, got %v", events)
	}
}

func TestPolicyDeriveRejectsInvalid(t *testing.T) {
	if _, err := (LoadPolicy{}).Derive(nil, nil); err == nil {
		t.Error("invalid policy accepted by Derive")
	}
}

func TestPolicyDefaultDwell(t *testing.T) {
	p := LoadPolicy{High: 1, Low: 0.5}
	traces := map[dsm.HostID]machine.Trace{
		1: mustTrace(t, machine.Step{At: 10, Load: 2}),
	}
	events, err := p.Derive(traces, allHosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].At != 10+DefaultDwell {
		t.Errorf("default dwell not applied: %v", events)
	}
}

// TestPolicyEventsDriveAdaptation closes the loop at the manager
// level: derived events apply at adaptation points exactly like
// hand-scheduled ones — leave first, rejoin once the load has dropped.
func TestPolicyEventsDriveAdaptation(t *testing.T) {
	c, err := dsm.New(dsm.Config{MaxHosts: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if _, err := c.Join(dsm.HostID(i)); err != nil {
			t.Fatal(err)
		}
	}
	p := LoadPolicy{High: 1.5, Low: 0.25, Dwell: 1}
	events, err := p.Derive(map[dsm.HostID]machine.Trace{
		2: mustTrace(t, machine.Step{At: 1, Load: 2}, machine.Step{At: 8, Load: 0}),
	}, []dsm.HostID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{})
	for _, ev := range events {
		if err := m.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	team := []dsm.HostID{0, 1, 2}
	res, err := m.AtAdaptationPoint(c, team, simtime.Seconds(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Applied) != 1 || res.Applied[0].Event.Kind != KindLeave {
		t.Fatalf("leave not applied at t=3: %+v", res.Applied)
	}
	if len(res.Team) != 2 {
		t.Fatalf("team after leave: %v", res.Team)
	}
	res2, err := m.AtAdaptationPoint(c, res.Team, simtime.Seconds(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Applied) != 1 || res2.Applied[0].Event.Kind != KindJoin {
		t.Fatalf("rejoin not applied at t=20: %+v", res2.Applied)
	}
	if len(res2.Team) != 3 {
		t.Fatalf("team after rejoin: %v", res2.Team)
	}
}
