package adapt

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/simtime"
)

// LoadPolicy turns per-machine background-load traces into adapt
// events, standing in for the paper's load-sensing daemons: a
// workstation whose load stays at or above High for a Dwell period is
// asked back by its owner (a leave event fires when the dwell
// completes), and one whose load stays at or below Low for a Dwell
// period is offered again (a join fires). The dwell filter keeps flash
// load — a spike shorter than Dwell — from thrashing the team, the
// hysteresis band between Low and High keeps a machine hovering at the
// threshold from oscillating.
//
// Because the traces are known functions of virtual time, the policy
// derives the complete event stream up front; the result is exactly
// what an online sensor sampling the same trace would emit, and it is
// deterministic by construction. Events still apply only at adaptation
// points, and joins still mature after the spawn lead time, exactly
// like hand-scheduled events.
type LoadPolicy struct {
	// High is the leave threshold (load >= High arms a leave).
	High float64
	// Low is the rejoin threshold (load <= Low arms a join). Must not
	// exceed High.
	Low float64
	// Dwell is how long the load must hold beyond a threshold before
	// the event fires; zero means DefaultDwell.
	Dwell simtime.Seconds
}

// DefaultDwell is the default dwell period: long enough to ignore the
// flash load of a compile or a mail check, short enough to give a
// reclaimed workstation back within a few parallel phases.
const DefaultDwell = simtime.Seconds(2.0)

// Validate reports whether the policy is well-formed.
func (p LoadPolicy) Validate() error {
	switch {
	case math.IsNaN(p.High) || math.IsInf(p.High, 0) ||
		math.IsNaN(p.Low) || math.IsInf(p.Low, 0) ||
		math.IsNaN(float64(p.Dwell)) || math.IsInf(float64(p.Dwell), 0):
		return fmt.Errorf("adapt: policy thresholds must be finite")
	case p.High <= 0:
		return fmt.Errorf("adapt: policy high threshold %g must be positive", p.High)
	case p.Low < 0:
		return fmt.Errorf("adapt: policy low threshold %g must be non-negative", p.Low)
	case p.Low >= p.High:
		return fmt.Errorf("adapt: policy low threshold %g must be below high %g", p.Low, p.High)
	case p.Dwell < 0:
		return fmt.Errorf("adapt: policy dwell %v must be non-negative", p.Dwell)
	}
	return nil
}

func (p LoadPolicy) dwell() simtime.Seconds {
	if p.Dwell == 0 {
		return DefaultDwell
	}
	return p.Dwell
}

// Derive computes the policy's event stream for the given load traces
// (keyed by the host bound to each machine; the master, host 0, never
// leaves and is skipped). team is the initial team: a traced host
// outside it starts as a spare, so its first event is a join once its
// load has sat at or below Low for a dwell — an idle spare is offered
// to the computation — and only then can a leave fire. Events come
// back sorted by time, then host.
func (p LoadPolicy) Derive(traces map[dsm.HostID]machine.Trace, team []dsm.HostID) ([]Event, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inTeam := make(map[dsm.HostID]bool, len(team))
	for _, h := range team {
		inTeam[h] = true
	}
	hosts := make([]dsm.HostID, 0, len(traces))
	for h := range traces {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })

	var events []Event
	for _, h := range hosts {
		if h == 0 {
			continue // the master cannot leave
		}
		events = append(events, p.deriveHost(h, traces[h], inTeam[h])...)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Host < events[j].Host
	})
	return events, nil
}

// deriveHost walks one trace's segments with a two-state machine:
// while the host is in the team, look for the first High-or-above run
// of at least Dwell; while it is out, look for the first Low-or-below
// run of at least Dwell; repeat. `in` seeds the state from the
// initial team membership.
func (p LoadPolicy) deriveHost(h dsm.HostID, tr machine.Trace, in bool) []Event {
	steps := tr.Steps()
	dwell := p.dwell()
	var events []Event
	// runStart is the instant the current qualifying run began, or NaN
	// when the current segment does not qualify.
	runStart := math.NaN()
	// The segment before the first step carries load 0 from t=0.
	segs := make([]machine.Step, 0, len(steps)+1)
	if len(steps) == 0 || steps[0].At > 0 {
		segs = append(segs, machine.Step{At: 0, Load: 0})
	}
	segs = append(segs, steps...)

	for i, s := range segs {
		qualifies := (in && s.Load >= p.High) || (!in && s.Load <= p.Low)
		if qualifies && math.IsNaN(runStart) {
			runStart = float64(s.At)
		}
		if !qualifies {
			runStart = math.NaN()
		}
		// Does the run reach Dwell before the next breakpoint (or does
		// the final segment hold forever)?
		for !math.IsNaN(runStart) {
			fire := simtime.Seconds(runStart) + dwell
			if i+1 < len(segs) && segs[i+1].At < fire {
				break // run may continue into the next segment
			}
			if in {
				events = append(events, Event{Kind: KindLeave, Host: h, At: fire})
			} else {
				events = append(events, Event{Kind: KindJoin, Host: h, At: fire})
			}
			in = !in
			// Re-evaluate this segment under the flipped state: a long
			// qualifying run for the new state starts afresh here.
			if (in && s.Load >= p.High) || (!in && s.Load <= p.Low) {
				runStart = float64(fire)
			} else {
				runStart = math.NaN()
			}
		}
	}
	return events
}

// ParsePolicy parses a compact load-policy spec of the form
//
//	high=H,low=L[,dwell=D]
//
// for example "high=1.5,low=0.25,dwell=2". The empty string yields the
// zero policy (which does not validate); flag plumbing treats it as
// "no policy".
func ParsePolicy(s string) (LoadPolicy, error) {
	s = strings.TrimSpace(s)
	var p LoadPolicy
	if s == "" {
		return p, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return LoadPolicy{}, fmt.Errorf("adapt: policy %q: want key=value", item)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return LoadPolicy{}, fmt.Errorf("adapt: policy %q: bad number %q", item, val)
		}
		switch key {
		case "high":
			p.High = f
		case "low":
			p.Low = f
		case "dwell":
			if f <= 0 {
				return LoadPolicy{}, fmt.Errorf("adapt: policy %q: dwell must be positive", item)
			}
			p.Dwell = simtime.Seconds(f)
		default:
			return LoadPolicy{}, fmt.Errorf("adapt: policy %q: unknown key %q (want high, low or dwell)", item, key)
		}
	}
	if err := p.Validate(); err != nil {
		return LoadPolicy{}, err
	}
	return p, nil
}

// FormatPolicy renders a policy in ParsePolicy form; parsing the
// output reproduces the policy.
func FormatPolicy(p LoadPolicy) string {
	s := fmt.Sprintf("high=%s,low=%s",
		strconv.FormatFloat(p.High, 'g', -1, 64),
		strconv.FormatFloat(p.Low, 'g', -1, 64))
	if p.Dwell != 0 {
		s += fmt.Sprintf(",dwell=%s", strconv.FormatFloat(float64(p.Dwell), 'g', -1, 64))
	}
	return s
}
