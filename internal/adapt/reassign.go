package adapt

import "nowomp/internal/dsm"

// ReassignStrategy selects how process ids are reassigned when the
// team changes. The strategy determines how much data the iteration
// re-partitioning moves afterwards (Figure 3 of the paper); better
// strategies are called out as future work in section 7, so both the
// paper's behaviour and an alternative are provided.
type ReassignStrategy int

const (
	// ShiftDown removes leavers and compacts the remaining processes
	// preserving their order, appending joiners at the end. This is the
	// behaviour Figure 3 illustrates: with a block partition, a leave
	// of the end process moves up to 50% of the data space, a leave of
	// a middle process up to 30%.
	ShiftDown ReassignStrategy = iota
	// SwapLast fills each leaver's slot with the current last process,
	// keeping every other process id (and hence its data partition)
	// unchanged.
	SwapLast
)

func (s ReassignStrategy) String() string {
	if s == ShiftDown {
		return "shift-down"
	}
	return "swap-last"
}

// Reassign computes the new process-id-to-host mapping after removing
// leavers from team and adding joiners. The slot index is the process
// id: the iteration partition of process i is determined only by
// (i, len(team)), so the mapping fully determines data movement.
func Reassign(team []dsm.HostID, leaving map[dsm.HostID]bool, joiners []dsm.HostID, s ReassignStrategy) []dsm.HostID {
	var out []dsm.HostID
	switch s {
	case SwapLast:
		out = append(out, team...)
		for i := 0; i < len(out); i++ {
			if !leaving[out[i]] {
				continue
			}
			// Drop trailing leavers, then fill this slot from the end.
			last := len(out) - 1
			for last > i && leaving[out[last]] {
				last--
			}
			if last == i {
				out = out[:i]
				break
			}
			out[i] = out[last]
			out = out[:last]
		}
	default: // ShiftDown
		for _, h := range team {
			if !leaving[h] {
				out = append(out, h)
			}
		}
	}
	return append(out, joiners...)
}
