// Package adapt implements the transparent adaptation machinery of
// sections 3 and 4 of Scherer et al. (PPoPP 1999): join and leave
// events submitted at any time, processed at the next adaptation point
// (the boundary of a parallel construct); grace periods that decide
// between cheap normal leaves and urgent leaves by migration; process-
// id reassignment; and the bookkeeping the evaluation section measures.
//
// The manager is deliberately mechanism-only: how events are generated
// (daemons, load sensors, schedules) is outside its scope, exactly as
// in the paper.
package adapt

import (
	"fmt"
	"sync"

	"nowomp/internal/dsm"
	"nowomp/internal/migrate"
	"nowomp/internal/simtime"
)

// Kind distinguishes join and leave events.
type Kind int

const (
	// KindJoin announces that a workstation has become available.
	KindJoin Kind = iota
	// KindLeave announces that a workstation wants its CPU back.
	KindLeave
)

func (k Kind) String() string {
	if k == KindJoin {
		return "join"
	}
	return "leave"
}

// Event is one adapt-event signal.
type Event struct {
	Kind Kind
	// Host is the workstation joining or leaving.
	Host dsm.HostID
	// At is the virtual instant the event is raised.
	At simtime.Seconds
	// Grace overrides the manager's default grace period for a leave;
	// zero means use the default. The paper stresses that the grace
	// period can be node-specific and even time-of-day dependent.
	Grace simtime.Seconds
}

// Config parameterises the manager.
type Config struct {
	// DefaultGrace is the leave grace period when an event does not
	// carry its own; the paper's experiments use 3 seconds.
	DefaultGrace simtime.Seconds
	// Strategy selects the normal-leave state handoff.
	Strategy dsm.LeaveStrategy
	// Reassign selects the process-id reassignment strategy.
	Reassign ReassignStrategy
}

// DefaultGrace is the grace period used by the paper's measurements.
const DefaultGrace = simtime.Seconds(3.0)

// Record is one applied adapt event, as logged for the evaluation.
type Record struct {
	Event    Event
	Urgent   bool
	Plan     *migrate.Plan // set for urgent leaves
	When     simtime.Seconds
	Transfer dsm.TransferReport
}

// pending wraps a submitted event with its processing state.
type pending struct {
	ev       Event
	migrated bool
	plan     *migrate.Plan
}

// Manager queues adapt events and applies them at adaptation points.
// Submit may be called from any goroutine; the apply entry points are
// called by the OpenMP runtime with all processes parked.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	pending []*pending
	log     []Record
}

// NewManager returns a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	if cfg.DefaultGrace <= 0 {
		cfg.DefaultGrace = DefaultGrace
	}
	return &Manager{cfg: cfg}
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit queues an event. Leave events for the master are rejected:
// the master can migrate but cannot perform a normal leave (the
// paper's current limitation, section 4.4).
func (m *Manager) Submit(e Event) error {
	if e.Kind == KindLeave && e.Host == 0 {
		return fmt.Errorf("adapt: the master process cannot leave")
	}
	if e.At < 0 {
		return fmt.Errorf("adapt: event time %v is negative", e.At)
	}
	m.mu.Lock()
	m.pending = append(m.pending, &pending{ev: e})
	m.mu.Unlock()
	return nil
}

// PendingCount returns the number of events not yet applied.
func (m *Manager) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Log returns the applied-event records in application order.
func (m *Manager) Log() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.log))
	copy(out, m.log)
	return out
}

func (m *Manager) grace(e Event) simtime.Seconds {
	if e.Grace > 0 {
		return e.Grace
	}
	return m.cfg.DefaultGrace
}

// AdjustJoin is called when a parallel phase's processes have produced
// their barrier-arrival times, before the join completes. Leave events
// whose grace period expires before their process reaches the
// adaptation point become urgent: the process image migrates to
// another team member's machine and the multiplexing model adjusts the
// arrivals (Fig. 2c). Returns the executed migration plans.
func (m *Manager) AdjustJoin(c *dsm.Cluster, team []dsm.HostID, arrivals []simtime.Seconds) []migrate.Plan {
	m.mu.Lock()
	defer m.mu.Unlock()

	var plans []migrate.Plan
	for _, p := range m.pending {
		if p.ev.Kind != KindLeave || p.migrated {
			continue
		}
		idx := -1
		for i, h := range team {
			if h == p.ev.Host {
				idx = i
			}
		}
		if idx < 0 {
			continue // host not in this team
		}
		deadline := p.ev.At + m.grace(p.ev)
		if p.ev.At > arrivals[idx] || deadline >= arrivals[idx] {
			continue // event in the future, or the point is reached in time
		}
		target := team[(idx+1)%len(team)]
		plan := migrate.New(c, p.ev.Host, target, deadline)
		plan.Execute(c)
		plan.AdjustArrivals(team, arrivals)
		p.migrated = true
		p.plan = &plan
		plans = append(plans, plan)
	}
	return plans
}

// PointResult reports what an adaptation point did.
type PointResult struct {
	// Team is the process-id-to-host mapping for the next fork.
	Team []dsm.HostID
	// Elapsed is the time the adaptation point added beyond a plain
	// fork: garbage collection plus state transfer.
	Elapsed simtime.Seconds
	// Applied lists the events handled here.
	Applied []Record
	// GCElapsed is the garbage-collection share of Elapsed.
	GCElapsed simtime.Seconds
}

// AtAdaptationPoint applies all matured events at a fork boundary:
// first one garbage collection (shared by every event processed here —
// which is why simultaneous adapt events are cheaper than successive
// ones, section 5.4), then normal leaves, then joins, then process-id
// reassignment. All processes must be parked.
func (m *Manager) AtAdaptationPoint(c *dsm.Cluster, team []dsm.HostID, now simtime.Seconds) (PointResult, error) {
	return m.AtAdaptationPointWhere(c, team, now, nil)
}

// classify splits the pending queue into matured-and-eligible leaves
// and joins plus the untouched remainder. eligible (nil = all) lets a
// caller hold back specific events: the task runtime defers a leave
// until the departing process holds no task state, while joins and
// other leaves proceed. Caller holds m.mu.
func (m *Manager) classify(model simtime.CostModel, team []dsm.HostID, now simtime.Seconds,
	eligible func(Event) bool) (leaves, joins, rest []*pending) {

	inTeam := make(map[dsm.HostID]bool, len(team))
	for _, h := range team {
		inTeam[h] = true
	}
	for _, p := range m.pending {
		ok := eligible == nil || eligible(p.ev)
		switch {
		case ok && p.ev.Kind == KindLeave && p.ev.At <= now && inTeam[p.ev.Host]:
			leaves = append(leaves, p)
		case ok && p.ev.Kind == KindJoin && p.ev.At+model.SpawnTime+model.ConnectSetupTime <= now && !inTeam[p.ev.Host]:
			// The new process was spawned asynchronously when the event
			// arrived; it is ready once its connections are set up.
			joins = append(joins, p)
		default:
			rest = append(rest, p)
		}
	}
	return leaves, joins, rest
}

// HasEligible reports whether AtAdaptationPointWhere would apply at
// least one event at virtual instant now under the given eligibility
// filter. The task runtime polls it at every task scheduling point and
// only pays for an adaptation (interval flushes, GC) when one will
// actually happen.
func (m *Manager) HasEligible(c *dsm.Cluster, team []dsm.HostID, now simtime.Seconds, eligible func(Event) bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	leaves, joins, _ := m.classify(c.Model(), team, now, eligible)
	return len(leaves) > 0 || len(joins) > 0
}

// AtAdaptationPointWhere is AtAdaptationPoint restricted to events the
// eligibility filter accepts (nil accepts all). Ineligible events stay
// queued for a later point.
func (m *Manager) AtAdaptationPointWhere(c *dsm.Cluster, team []dsm.HostID, now simtime.Seconds,
	eligible func(Event) bool) (PointResult, error) {

	m.mu.Lock()
	defer m.mu.Unlock()

	leaves, joins, rest := m.classify(c.Model(), team, now, eligible)
	if len(leaves) == 0 && len(joins) == 0 {
		return PointResult{Team: team}, nil
	}
	m.pending = rest

	res := PointResult{}
	res.GCElapsed = c.ForceGC(hostSet(team))
	res.Elapsed = res.GCElapsed

	leaving := make(map[dsm.HostID]bool, len(leaves))
	for _, p := range leaves {
		rep, err := c.NormalLeave(p.ev.Host, m.cfg.Strategy)
		if err != nil {
			return PointResult{}, fmt.Errorf("adapt: leave of host %d: %w", p.ev.Host, err)
		}
		res.Elapsed += rep.Elapsed
		leaving[p.ev.Host] = true
		rec := Record{Event: p.ev, Urgent: p.migrated, Plan: p.plan, When: now, Transfer: rep}
		res.Applied = append(res.Applied, rec)
		m.log = append(m.log, rec)
	}
	var joiners []dsm.HostID
	for _, p := range joins {
		rep, err := c.Join(p.ev.Host)
		if err != nil {
			return PointResult{}, fmt.Errorf("adapt: join of host %d: %w", p.ev.Host, err)
		}
		res.Elapsed += rep.Elapsed
		joiners = append(joiners, p.ev.Host)
		rec := Record{Event: p.ev, When: now, Transfer: rep}
		res.Applied = append(res.Applied, rec)
		m.log = append(m.log, rec)
	}

	res.Team = Reassign(team, leaving, joiners, m.cfg.Reassign)
	return res, nil
}

func hostSet(team []dsm.HostID) []dsm.HostID {
	out := make([]dsm.HostID, len(team))
	copy(out, team)
	return out
}
