package shmem

import (
	"testing"
)

// TestSpanAllocationPins pins the span-level kernel fast paths to zero
// heap allocations in steady state: a full sweep through ReadSpan or
// WriteSpan (the loop shape every span kernel uses), random access
// through a Reader, and the bundled Reader3 must all serve straight
// out of page memory. A change that makes the typed reinterpretation
// or the fault-test escape fails here rather than as a throughput
// regression in the scale-1.0 matrix.
func TestSpanAllocationPins(t *testing.T) {
	c, ctxs := testCluster(t, 1)
	m := ctxs[0]

	af, err := Alloc[float64](c, "span64", 2048)
	if err != nil {
		t.Fatal(err)
	}
	b0, err := Alloc[float64](c, "span64b", 2048)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := Alloc[float64](c, "span64c", 2048)
	if err != nil {
		t.Fatal(err)
	}
	// Touch everything once so the steady state has no faults or twins.
	for i := 0; i < af.Len(); i++ {
		af.Set(m, i, float64(i))
		b0.Set(m, i, 1)
		b1.Set(m, i, 2)
	}

	if n := testing.AllocsPerRun(100, func() {
		for lo := 0; lo < af.Len(); {
			s := af.ReadSpan(m, lo, af.Len())
			lo += len(s)
		}
	}); n != 0 {
		t.Errorf("ReadSpan sweep allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		for lo := 0; lo < af.Len(); {
			s := af.WriteSpan(m, lo, af.Len())
			for i := range s {
				s[i] += 1
			}
			lo += len(s)
		}
	}); n != 0 {
		t.Errorf("WriteSpan sweep allocates %v times per run, want 0", n)
	}

	r := af.Reader(m)
	if n := testing.AllocsPerRun(200, func() { _ = r.Get(17) }); n != 0 {
		t.Errorf("Reader.Get allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = af.Reader(m) }); n != 0 {
		t.Errorf("Reader construction allocates %v times per run, want 0", n)
	}
	r3 := Readers3(m, af, b0, b1)
	if n := testing.AllocsPerRun(200, func() { _, _, _ = r3.Get3(33) }); n != 0 {
		t.Errorf("Reader3.Get3 allocates %v times per run, want 0", n)
	}
}

// BenchmarkSpanSweep measures the span fast path against the
// per-element accessor on the same access pattern — the before/after
// of the span-level kernel rewrite, kept as a pin so the gap cannot
// silently close.
func BenchmarkSpanSweep(b *testing.B) {
	c, ctxs := testCluster(b, 1)
	m := ctxs[0]
	af, err := Alloc[float64](c, "bench64", 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < af.Len(); i++ {
		af.Set(m, i, float64(i))
	}

	b.Run("read-span", func(b *testing.B) {
		b.SetBytes(int64(af.Len() * 8))
		var sum float64
		for n := 0; n < b.N; n++ {
			for lo := 0; lo < af.Len(); {
				s := af.ReadSpan(m, lo, af.Len())
				for _, v := range s {
					sum += v
				}
				lo += len(s)
			}
		}
		sink = sum
	})
	b.Run("read-element", func(b *testing.B) {
		b.SetBytes(int64(af.Len() * 8))
		var sum float64
		for n := 0; n < b.N; n++ {
			for i := 0; i < af.Len(); i++ {
				sum += af.Get(m, i)
			}
		}
		sink = sum
	})
	b.Run("write-span", func(b *testing.B) {
		b.SetBytes(int64(af.Len() * 8))
		for n := 0; n < b.N; n++ {
			for lo := 0; lo < af.Len(); {
				s := af.WriteSpan(m, lo, af.Len())
				for i := range s {
					s[i] += 1
				}
				lo += len(s)
			}
		}
	})
	b.Run("write-element", func(b *testing.B) {
		b.SetBytes(int64(af.Len() * 8))
		for n := 0; n < b.N; n++ {
			for i := 0; i < af.Len(); i++ {
				af.Set(m, i, af.Get(m, i)+1)
			}
		}
	})
}

// sink keeps benchmark loop results observable so the compiler cannot
// elide the reads.
var sink float64
