package shmem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

func testCluster(t testing.TB, hosts int) (*dsm.Cluster, []Context) {
	t.Helper()
	c, err := dsm.New(dsm.Config{MaxHosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]Context, hosts)
	ctxs[0] = Context{Host: c.Master(), Clock: simtime.NewClock(0)}
	for i := 1; i < hosts; i++ {
		if _, err := c.Join(dsm.HostID(i)); err != nil {
			t.Fatal(err)
		}
		ctxs[i] = Context{Host: c.Host(dsm.HostID(i)), Clock: simtime.NewClock(0)}
	}
	return c, ctxs
}

func syncAll(c *dsm.Cluster, ctxs []Context) {
	active := c.ActiveHosts()
	arr := make([]simtime.Seconds, len(active))
	for i, id := range active {
		arr[i] = ctxs[id].Clock.Now()
	}
	res := c.Barrier(active, arr)
	for _, id := range active {
		ctxs[id].Clock.AdvanceTo(res.ReleaseTime)
	}
}

func TestFloat64ArrayRoundTrip(t *testing.T) {
	c, ctxs := testCluster(t, 2)
	a, err := AllocFloat64(c, "v", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i += 97 {
		a.Set(ctxs[0], i, float64(i)*1.5)
	}
	syncAll(c, ctxs)
	for i := 0; i < a.Len(); i += 97 {
		if got := a.Get(ctxs[1], i); got != float64(i)*1.5 {
			t.Fatalf("a[%d] = %g, want %g", i, got, float64(i)*1.5)
		}
	}
}

func TestFloat64SpecialValues(t *testing.T) {
	c, ctxs := testCluster(t, 2)
	a, _ := AllocFloat64(c, "v", 8)
	vals := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, math.SmallestNonzeroFloat64, -1.25}
	a.WriteRange(ctxs[0], 0, vals)
	syncAll(c, ctxs)
	got := make([]float64, 8)
	a.ReadRange(ctxs[1], 0, 8, got)
	for i, want := range vals {
		if math.IsNaN(want) {
			if !math.IsNaN(got[i]) {
				t.Fatalf("elem %d = %g, want NaN", i, got[i])
			}
			continue
		}
		if got[i] != want || math.Signbit(got[i]) != math.Signbit(want) {
			t.Fatalf("elem %d = %g, want %g", i, got[i], want)
		}
	}
}

func TestMatrixRows(t *testing.T) {
	c, ctxs := testCluster(t, 3)
	mx, err := AllocFloat64Matrix(c, "m", 20, 33)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, mx.Cols())
	for i := 0; i < mx.Rows(); i++ {
		for j := range row {
			row[j] = float64(i*1000 + j)
		}
		mx.WriteRow(ctxs[i%3], i, row)
	}
	syncAll(c, ctxs)
	got := make([]float64, mx.Cols())
	for i := 0; i < mx.Rows(); i++ {
		mx.ReadRow(ctxs[(i+1)%3], i, got)
		for j := range got {
			if got[j] != float64(i*1000+j) {
				t.Fatalf("m[%d][%d] = %g, want %d", i, j, got[j], i*1000+j)
			}
		}
	}
	if mx.Get(ctxs[0], 7, 13) != 7013 {
		t.Fatal("Get(7,13) wrong")
	}
	mx.Set(ctxs[0], 7, 13, -1)
	if mx.Get(ctxs[0], 7, 13) != -1 {
		t.Fatal("Set(7,13) did not stick")
	}
}

func TestComplexArray(t *testing.T) {
	c, ctxs := testCluster(t, 2)
	a, err := AllocComplex128(c, "z", 256)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]complex128, 256)
	for i := range src {
		src[i] = complex(float64(i), -float64(i)/3)
	}
	a.WriteRange(ctxs[0], 0, src)
	syncAll(c, ctxs)
	dst := make([]complex128, 256)
	a.ReadRange(ctxs[1], 0, 256, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("z[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
	a.Set(ctxs[1], 3, 5+7i)
	if got := a.Get(ctxs[1], 3); got != 5+7i {
		t.Fatalf("Get(3) = %v, want 5+7i", got)
	}
}

func TestInt32Array(t *testing.T) {
	c, ctxs := testCluster(t, 2)
	a, err := AllocInt32(c, "idx", 513)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]int32, 513)
	for i := range src {
		src[i] = int32(i*3 - 700)
	}
	a.WriteRange(ctxs[0], 0, src)
	syncAll(c, ctxs)
	dst := make([]int32, 513)
	a.ReadRange(ctxs[1], 0, 513, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("idx[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	if got := a.Get(ctxs[1], 512); got != src[512] {
		t.Fatalf("Get(512) = %d", got)
	}
}

func TestBoundsPanics(t *testing.T) {
	c, ctxs := testCluster(t, 1)
	a, _ := AllocFloat64(c, "v", 10)
	mx, _ := AllocFloat64Matrix(c, "m", 4, 4)
	cases := []func(){
		func() { a.Get(ctxs[0], 10) },
		func() { a.Set(ctxs[0], -1, 0) },
		func() { a.ReadRange(ctxs[0], 5, 11, make([]float64, 6)) },
		func() { a.ReadRange(ctxs[0], 0, 5, make([]float64, 4)) },
		func() { mx.Get(ctxs[0], 4, 0) },
		func() { mx.WriteRow(ctxs[0], 0, make([]float64, 3)) },
		func() { a.Get(Context{}, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAllocErrors(t *testing.T) {
	c, _ := testCluster(t, 1)
	if _, err := AllocFloat64(c, "bad", 0); err == nil {
		t.Fatal("AllocFloat64(0) must fail")
	}
	if _, err := AllocFloat64Matrix(c, "bad", 0, 5); err == nil {
		t.Fatal("AllocFloat64Matrix(0,5) must fail")
	}
	if _, err := AllocComplex128(c, "bad", -1); err == nil {
		t.Fatal("AllocComplex128(-1) must fail")
	}
	if _, err := AllocInt32(c, "bad", 0); err == nil {
		t.Fatal("AllocInt32(0) must fail")
	}
}

// Property: WriteRange then ReadRange is the identity for arbitrary
// offsets and payloads (single host, no sync needed).
func TestFloat64RangeRoundTripProperty(t *testing.T) {
	c, ctxs := testCluster(t, 1)
	a, _ := AllocFloat64(c, "v", 2048)
	f := func(off uint16, raw []float64) bool {
		lo := int(off) % 1024
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		a.WriteRange(ctxs[0], lo, raw)
		got := make([]float64, len(raw))
		a.ReadRange(ctxs[0], lo, lo+len(raw), got)
		for i := range raw {
			if got[i] != raw[i] && !(math.IsNaN(got[i]) && math.IsNaN(raw[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved writers on disjoint stripes merge correctly
// through barriers.
func TestStripedWritersProperty(t *testing.T) {
	const n = 4096
	c, ctxs := testCluster(t, 4)
	a, _ := AllocFloat64(c, "v", n)
	rng := rand.New(rand.NewSource(99))
	ref := make([]float64, n)
	for round := 0; round < 5; round++ {
		for h := 0; h < 4; h++ {
			// Host h writes stripe h::4 — disjoint words, shared pages.
			for i := h; i < n; i += 4 {
				if rng.Intn(3) == 0 {
					v := rng.NormFloat64()
					ref[i] = v
					a.Set(ctxs[h], i, v)
				}
			}
		}
		syncAll(c, ctxs)
		for h := 0; h < 4; h++ {
			i := rng.Intn(n)
			if got := a.Get(ctxs[h], i); got != ref[i] {
				t.Fatalf("round %d host %d: a[%d] = %g, want %g", round, h, i, got, ref[i])
			}
		}
	}
}
