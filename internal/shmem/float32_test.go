package shmem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat32ArrayRoundTrip(t *testing.T) {
	c, ctxs := testCluster(t, 2)
	a, err := AllocFloat32(c, "v", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2000 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < a.Len(); i += 53 {
		a.Set(ctxs[0], i, float32(i)*0.25)
	}
	syncAll(c, ctxs)
	for i := 0; i < a.Len(); i += 53 {
		if got := a.Get(ctxs[1], i); got != float32(i)*0.25 {
			t.Fatalf("a[%d] = %g", i, got)
		}
	}
}

func TestFloat32SpecialValues(t *testing.T) {
	c, ctxs := testCluster(t, 2)
	a, _ := AllocFloat32(c, "v", 6)
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	vals := []float32{0, float32(math.Copysign(0, -1)), inf, -inf, nan, math.MaxFloat32}
	a.WriteRange(ctxs[0], 0, vals)
	syncAll(c, ctxs)
	got := make([]float32, 6)
	a.ReadRange(ctxs[1], 0, 6, got)
	for i, want := range vals {
		if math.IsNaN(float64(want)) {
			if !math.IsNaN(float64(got[i])) {
				t.Fatalf("elem %d = %g, want NaN", i, got[i])
			}
			continue
		}
		if got[i] != want || math.Signbit(float64(got[i])) != math.Signbit(float64(want)) {
			t.Fatalf("elem %d = %g, want %g", i, got[i], want)
		}
	}
}

func TestFloat32MatrixRowsAndRanges(t *testing.T) {
	c, ctxs := testCluster(t, 3)
	mx, err := AllocFloat32Matrix(c, "m", 16, 40)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Rows() != 16 || mx.Cols() != 40 {
		t.Fatalf("dims = %dx%d", mx.Rows(), mx.Cols())
	}
	row := make([]float32, 40)
	for i := 0; i < 16; i++ {
		for j := range row {
			row[j] = float32(i*100 + j)
		}
		mx.WriteRow(ctxs[i%3], i, row)
	}
	syncAll(c, ctxs)
	// Partial row ranges, the Gauss access pattern.
	part := make([]float32, 25)
	mx.ReadRowRange(ctxs[1], 7, 15, 40, part)
	for j, v := range part {
		if v != float32(700+15+j) {
			t.Fatalf("row 7 col %d = %g", 15+j, v)
		}
	}
	for j := range part {
		part[j] = -part[j]
	}
	mx.WriteRowRange(ctxs[1], 7, 15, part)
	syncAll(c, ctxs)
	if got := mx.Get(ctxs[2], 7, 20); got != -float32(700+20) {
		t.Fatalf("m[7][20] = %g", got)
	}
	mx.Set(ctxs[2], 7, 20, 5)
	if got := mx.Get(ctxs[2], 7, 20); got != 5 {
		t.Fatalf("Set did not stick: %g", got)
	}
}

func TestFloat32Bounds(t *testing.T) {
	c, ctxs := testCluster(t, 1)
	a, _ := AllocFloat32(c, "v", 8)
	mx, _ := AllocFloat32Matrix(c, "m", 4, 4)
	cases := []func(){
		func() { a.Get(ctxs[0], 8) },
		func() { a.Set(ctxs[0], -1, 0) },
		func() { a.ReadRange(ctxs[0], 0, 9, make([]float32, 9)) },
		func() { a.ReadRange(ctxs[0], 0, 4, make([]float32, 3)) },
		func() { a.WriteRange(ctxs[0], 6, make([]float32, 3)) },
		func() { mx.Get(ctxs[0], 4, 0) },
		func() { mx.ReadRow(ctxs[0], -1, make([]float32, 4)) },
		func() { mx.WriteRow(ctxs[0], 0, make([]float32, 5)) },
		func() { mx.ReadRowRange(ctxs[0], 0, 2, 5, make([]float32, 3)) },
		func() { mx.WriteRowRange(ctxs[0], 0, 3, make([]float32, 2)) },
		func() { a.Get(Context{}, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	if _, err := AllocFloat32(c, "bad", 0); err == nil {
		t.Fatal("AllocFloat32(0) must fail")
	}
	if _, err := AllocFloat32Matrix(c, "bad", 3, 0); err == nil {
		t.Fatal("AllocFloat32Matrix(3,0) must fail")
	}
}

// Property: float32 range writes round-trip exactly (bit patterns
// preserved through the byte encoding).
func TestFloat32RoundTripProperty(t *testing.T) {
	c, ctxs := testCluster(t, 1)
	a, _ := AllocFloat32(c, "v", 1024)
	f := func(off uint16, raw []float32) bool {
		lo := int(off) % 512
		if len(raw) > 512 {
			raw = raw[:512]
		}
		a.WriteRange(ctxs[0], lo, raw)
		got := make([]float32, len(raw))
		a.ReadRange(ctxs[0], lo, lo+len(raw), got)
		for i := range raw {
			if got[i] != raw[i] && !(math.IsNaN(float64(got[i])) && math.IsNaN(float64(raw[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The remaining view types' bounds checks.
func TestComplexAndInt32Bounds(t *testing.T) {
	c, ctxs := testCluster(t, 1)
	z, _ := AllocComplex128(c, "z", 8)
	n, _ := AllocInt32(c, "n", 8)
	cases := []func(){
		func() { z.ReadRange(ctxs[0], 0, 9, make([]complex128, 9)) },
		func() { z.ReadRange(ctxs[0], 0, 4, make([]complex128, 3)) },
		func() { z.WriteRange(ctxs[0], 7, make([]complex128, 2)) },
		func() { n.ReadRange(ctxs[0], -1, 4, make([]int32, 5)) },
		func() { n.ReadRange(ctxs[0], 0, 4, make([]int32, 5)) },
		func() { n.WriteRange(ctxs[0], 7, make([]int32, 2)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	if z.Region() == nil || n.Region() == nil {
		t.Fatal("Region accessors must work")
	}
}
