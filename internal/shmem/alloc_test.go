package shmem

import (
	"testing"

	"nowomp/internal/dsm"
)

// TestAccessorAllocationPins pins the element accessors to zero heap
// allocations: Get/Set decode and encode straight against page memory
// through Host.ReadSpan/WriteSpan, and the scalar codec (encodeOne/
// decodeOne) must stay escape-analysis friendly — a change that boxes
// the scalar or re-introduces a staging buffer fails here, not as a
// GC regression in the bench matrix.
func TestAccessorAllocationPins(t *testing.T) {
	c, ctxs := testCluster(t, 1)
	m := ctxs[0]

	af, err := Alloc[float64](c, "pin64", 2048)
	if err != nil {
		t.Fatal(err)
	}
	a32, err := Alloc[float32](c, "pin32", 2048)
	if err != nil {
		t.Fatal(err)
	}
	// Touch everything once so the steady state has no faults or twins.
	for i := 0; i < af.Len(); i++ {
		af.Set(m, i, float64(i))
		a32.Set(m, i, float32(i))
	}

	if n := testing.AllocsPerRun(200, func() { af.Set(m, 17, 3.5) }); n != 0 {
		t.Errorf("float64 Set allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = af.Get(m, 17) }); n != 0 {
		t.Errorf("float64 Get allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { a32.Set(m, 33, 1.25) }); n != 0 {
		t.Errorf("float32 Set allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = a32.Get(m, 33) }); n != 0 {
		t.Errorf("float32 Get allocates %v times per run, want 0", n)
	}

	// The bulk accessors stage nothing either: decode/encode runs page
	// by page against the host's own buffers.
	dst := make([]float64, 1024)
	if n := testing.AllocsPerRun(50, func() { af.ReadRange(m, 0, 1024, dst) }); n != 0 {
		t.Errorf("ReadRange allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { af.WriteRange(m, 0, dst) }); n != 0 {
		t.Errorf("WriteRange allocates %v times per run, want 0", n)
	}
}

func BenchmarkArrayGetSet(b *testing.B) {
	c, ctxs := benchCluster(b)
	m := ctxs[0]
	a, err := Alloc[float64](c, "bench", 4096)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		a.Set(m, i, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 4095
		a.Set(m, j, a.Get(m, j)+1)
	}
}

func BenchmarkArrayReadRange(b *testing.B) {
	c, ctxs := benchCluster(b)
	m := ctxs[0]
	a, err := Alloc[float32](c, "bench", 8192)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float32, 8192)
	a.WriteRange(m, 0, buf)
	b.SetBytes(int64(len(buf) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ReadRange(m, 0, 8192, buf)
	}
}

func benchCluster(b *testing.B) (*dsm.Cluster, []Context) {
	b.Helper()
	return testCluster(b, 1)
}
