package shmem

import "nowomp/internal/dsm"

// Float32Array is a shared vector of float32. The paper's numeric
// kernels (Jacobi, Gauss) use single precision — their Table 1 memory
// footprints only fit 32-bit elements — so the reproduction does too.
//
// Caution: diffs merge at 8-byte word granularity, so two processes
// must not write the two halves of the same word in one interval.
// Row-partitioned matrices with even row lengths satisfy this.
type Float32Array = Array[float32]

// Float32Matrix is a shared row-major rows x cols float32 matrix.
// Rows with an even number of elements are word-aligned, so row-
// partitioned writers never collide within a diff word.
type Float32Matrix = Matrix[float32]

// AllocFloat32 allocates a shared float32 vector.
func AllocFloat32(c *dsm.Cluster, name string, n int) (*Float32Array, error) {
	return Alloc[float32](c, name, n)
}

// AllocFloat32Matrix allocates a shared float32 matrix.
func AllocFloat32Matrix(c *dsm.Cluster, name string, rows, cols int) (*Float32Matrix, error) {
	return AllocMatrix[float32](c, name, rows, cols)
}
