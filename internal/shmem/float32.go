package shmem

import (
	"encoding/binary"
	"fmt"
	"math"

	"nowomp/internal/dsm"
)

// Float32Array is a shared vector of float32. The paper's numeric
// kernels (Jacobi, Gauss) use single precision — their Table 1 memory
// footprints only fit 32-bit elements — so the reproduction does too.
//
// Caution: diffs merge at 8-byte word granularity, so two processes
// must not write the two halves of the same word in one interval.
// Row-partitioned matrices with even row lengths satisfy this.
type Float32Array struct {
	region *dsm.Region
	n      int
}

// AllocFloat32 allocates a shared float32 vector.
func AllocFloat32(c *dsm.Cluster, name string, n int) (*Float32Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmem: array %q must have positive length, got %d", name, n)
	}
	r, err := c.Alloc(name, n*4)
	if err != nil {
		return nil, err
	}
	return &Float32Array{region: r, n: n}, nil
}

// Len returns the number of elements.
func (a *Float32Array) Len() int { return a.n }

// Region exposes the backing region.
func (a *Float32Array) Region() *dsm.Region { return a.region }

func (a *Float32Array) check(lo, hi int) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("shmem: range [%d,%d) outside array %q of %d elements",
			lo, hi, a.region.Name, a.n))
	}
}

// Get reads element i.
func (a *Float32Array) Get(m Context, i int) float32 {
	mustContext(m)
	a.check(i, i+1)
	var b [4]byte
	m.Host.Read(a.region.ID, i*4, b[:], m.Clock)
	return math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
}

// Set writes element i.
func (a *Float32Array) Set(m Context, i int, v float32) {
	mustContext(m)
	a.check(i, i+1)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	m.Host.Write(a.region.ID, i*4, b[:], m.Clock)
}

// ReadRange copies elements [lo,hi) into dst (length hi-lo).
func (a *Float32Array) ReadRange(m Context, lo, hi int, dst []float32) {
	mustContext(m)
	a.check(lo, hi)
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("shmem: dst has %d elements, want %d", len(dst), hi-lo))
	}
	buf := make([]byte, (hi-lo)*4)
	m.Host.Read(a.region.ID, lo*4, buf, m.Clock)
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
}

// WriteRange copies src into elements [lo, lo+len(src)).
func (a *Float32Array) WriteRange(m Context, lo int, src []float32) {
	mustContext(m)
	a.check(lo, lo+len(src))
	buf := make([]byte, len(src)*4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	m.Host.Write(a.region.ID, lo*4, buf, m.Clock)
}

// Float32Matrix is a shared row-major rows x cols float32 matrix.
// Rows with an even number of elements are word-aligned, so row-
// partitioned writers never collide within a diff word.
type Float32Matrix struct {
	arr  Float32Array
	rows int
	cols int
}

// AllocFloat32Matrix allocates a shared float32 matrix.
func AllocFloat32Matrix(c *dsm.Cluster, name string, rows, cols int) (*Float32Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("shmem: matrix %q needs positive dims, got %dx%d", name, rows, cols)
	}
	a, err := AllocFloat32(c, name, rows*cols)
	if err != nil {
		return nil, err
	}
	return &Float32Matrix{arr: *a, rows: rows, cols: cols}, nil
}

// Rows returns the row count.
func (mx *Float32Matrix) Rows() int { return mx.rows }

// Cols returns the column count.
func (mx *Float32Matrix) Cols() int { return mx.cols }

// Region exposes the backing region.
func (mx *Float32Matrix) Region() *dsm.Region { return mx.arr.region }

func (mx *Float32Matrix) checkRow(i int) {
	if i < 0 || i >= mx.rows {
		panic(fmt.Sprintf("shmem: row %d outside matrix %q with %d rows", i, mx.arr.region.Name, mx.rows))
	}
}

// Get reads element (i, j).
func (mx *Float32Matrix) Get(m Context, i, j int) float32 {
	mx.checkRow(i)
	return mx.arr.Get(m, i*mx.cols+j)
}

// Set writes element (i, j).
func (mx *Float32Matrix) Set(m Context, i, j int, v float32) {
	mx.checkRow(i)
	mx.arr.Set(m, i*mx.cols+j, v)
}

// ReadRow copies row i into dst (length cols).
func (mx *Float32Matrix) ReadRow(m Context, i int, dst []float32) {
	mx.checkRow(i)
	mx.arr.ReadRange(m, i*mx.cols, (i+1)*mx.cols, dst)
}

// WriteRow copies src (length cols) into row i.
func (mx *Float32Matrix) WriteRow(m Context, i int, src []float32) {
	mx.checkRow(i)
	if len(src) != mx.cols {
		panic(fmt.Sprintf("shmem: row has %d elements, want %d", len(src), mx.cols))
	}
	mx.arr.WriteRange(m, i*mx.cols, src)
}

// ReadRowRange copies row i columns [jlo,jhi) into dst.
func (mx *Float32Matrix) ReadRowRange(m Context, i, jlo, jhi int, dst []float32) {
	mx.checkRow(i)
	if jlo < 0 || jhi > mx.cols || jlo > jhi {
		panic(fmt.Sprintf("shmem: columns [%d,%d) outside matrix with %d cols", jlo, jhi, mx.cols))
	}
	mx.arr.ReadRange(m, i*mx.cols+jlo, i*mx.cols+jhi, dst)
}

// WriteRowRange copies src into row i starting at column jlo.
func (mx *Float32Matrix) WriteRowRange(m Context, i, jlo int, src []float32) {
	mx.checkRow(i)
	if jlo < 0 || jlo+len(src) > mx.cols {
		panic(fmt.Sprintf("shmem: columns [%d,%d) outside matrix with %d cols", jlo, jlo+len(src), mx.cols))
	}
	mx.arr.WriteRange(m, i*mx.cols+jlo, src)
}
