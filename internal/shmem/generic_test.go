package shmem

import (
	"testing"

	"nowomp/internal/dsm"
)

func masterCluster(t *testing.T) (*dsm.Cluster, Context) {
	t.Helper()
	c, ctxs := testCluster(t, 1)
	return c, ctxs[0]
}

// roundTripArray exercises Get/Set/ReadRange/WriteRange for one
// Element instantiation against a reference slice.
func roundTripArray[T Element](t *testing.T, name string, vals []T) {
	t.Helper()
	c, m := masterCluster(t)
	a, err := Alloc[T](c, name, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != len(vals) {
		t.Fatalf("%s: Len = %d, want %d", name, a.Len(), len(vals))
	}
	if got, want := a.Region().Bytes, len(vals)*Sizeof[T](); got != want {
		t.Fatalf("%s: region is %d bytes, want %d", name, got, want)
	}
	a.WriteRange(m, 0, vals)
	got := make([]T, len(vals))
	a.ReadRange(m, 0, len(vals), got)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: ReadRange[%d] = %v, want %v", name, i, got[i], vals[i])
		}
	}
	// Element accessors against the bulk contents.
	for i := range vals {
		if v := a.Get(m, i); v != vals[i] {
			t.Fatalf("%s: Get(%d) = %v, want %v", name, i, v, vals[i])
		}
	}
	a.Set(m, 1, vals[0])
	if v := a.Get(m, 1); v != vals[0] {
		t.Fatalf("%s: Set/Get(1) = %v, want %v", name, v, vals[0])
	}
}

func TestArrayRoundTripAllElements(t *testing.T) {
	roundTripArray(t, "f32", []float32{0, -1.5, 3.25, 1e-20, 7})
	roundTripArray(t, "f64", []float64{0, -1.5, 3.25, 1e-300, 7})
	roundTripArray(t, "z128", []complex128{0, complex(1.5, -2.5), complex(-1e10, 3)})
	roundTripArray(t, "i32", []int32{0, -7, 1 << 30, 42})
	roundTripArray(t, "i64", []int64{0, -7, 1 << 60, 42})
	roundTripArray(t, "u8", []uint8{0, 255, 7, 128, 1, 2, 3, 4})
}

func roundTripMatrix[T Element](t *testing.T, name string, rows, cols int, at func(i, j int) T) {
	t.Helper()
	c, m := masterCluster(t)
	mx, err := AllocMatrix[T](c, name, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Rows() != rows || mx.Cols() != cols {
		t.Fatalf("%s: dims %dx%d, want %dx%d", name, mx.Rows(), mx.Cols(), rows, cols)
	}
	row := make([]T, cols)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = at(i, j)
		}
		mx.WriteRow(m, i, row)
	}
	got := make([]T, cols)
	for i := 0; i < rows; i++ {
		mx.ReadRow(m, i, got)
		for j := range got {
			if got[j] != at(i, j) {
				t.Fatalf("%s: (%d,%d) = %v, want %v", name, i, j, got[j], at(i, j))
			}
		}
		if v := mx.Get(m, i, 0); v != at(i, 0) {
			t.Fatalf("%s: Get(%d,0) = %v, want %v", name, i, v, at(i, 0))
		}
	}
	// Partial-row accessors.
	part := make([]T, cols-1)
	mx.ReadRowRange(m, 0, 1, cols, part)
	for j := range part {
		if part[j] != at(0, j+1) {
			t.Fatalf("%s: ReadRowRange[%d] = %v, want %v", name, j, part[j], at(0, j+1))
		}
	}
	mx.Set(m, 1, 1, at(0, 0))
	if v := mx.Get(m, 1, 1); v != at(0, 0) {
		t.Fatalf("%s: Set/Get(1,1) = %v, want %v", name, v, at(0, 0))
	}
}

func TestMatrixRoundTripAllElements(t *testing.T) {
	roundTripMatrix(t, "mf32", 4, 6, func(i, j int) float32 { return float32(i*10+j) + 0.5 })
	roundTripMatrix(t, "mf64", 4, 6, func(i, j int) float64 { return float64(i*10+j) + 0.25 })
	roundTripMatrix(t, "mz", 3, 4, func(i, j int) complex128 { return complex(float64(i), float64(j)) })
	roundTripMatrix(t, "mi32", 4, 6, func(i, j int) int32 { return int32(i*100 - j) })
	roundTripMatrix(t, "mi64", 4, 6, func(i, j int) int64 { return int64(i)<<40 - int64(j) })
	roundTripMatrix(t, "mu8", 4, 8, func(i, j int) uint8 { return uint8(i*16 + j) })
}

// TestLegacyAliasesAreGenericViews pins the API contract that the
// legacy typed names are aliases, not distinct types: a *Float64Array
// must be assignable to *Array[float64] and vice versa.
func TestLegacyAliasesAreGenericViews(t *testing.T) {
	c, m := masterCluster(t)
	legacy, err := AllocFloat64(c, "v", 8)
	if err != nil {
		t.Fatal(err)
	}
	var generic *Array[float64] = legacy
	generic.Set(m, 3, 1.5)
	if v := legacy.Get(m, 3); v != 1.5 {
		t.Fatalf("aliased view read %v, want 1.5", v)
	}
	mx, err := AllocFloat32Matrix(c, "m", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var gmx *Matrix[float32] = mx
	gmx.Set(m, 1, 2, 2.5)
	if v := mx.Get(m, 1, 2); v != 2.5 {
		t.Fatalf("aliased matrix read %v, want 2.5", v)
	}
}

// TestMatrixColumnBounds pins that an out-of-range column panics
// instead of silently reading the adjacent row (the flat index would
// still be in range).
func TestMatrixColumnBounds(t *testing.T) {
	c, m := masterCluster(t)
	mx, err := AllocMatrix[float32](c, "m", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"Get col too large": func() { mx.Get(m, 0, 5) },
		"Get col negative":  func() { mx.Get(m, 0, -1) },
		"Set col too large": func() { mx.Set(m, 0, 4, 1) },
		"Get row too large": func() { mx.Get(m, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSizeof(t *testing.T) {
	if got := Sizeof[float32](); got != 4 {
		t.Fatalf("Sizeof[float32] = %d", got)
	}
	if got := Sizeof[float64](); got != 8 {
		t.Fatalf("Sizeof[float64] = %d", got)
	}
	if got := Sizeof[complex128](); got != 16 {
		t.Fatalf("Sizeof[complex128] = %d", got)
	}
	if got := Sizeof[int32](); got != 4 {
		t.Fatalf("Sizeof[int32] = %d", got)
	}
	if got := Sizeof[int64](); got != 8 {
		t.Fatalf("Sizeof[int64] = %d", got)
	}
	if got := Sizeof[uint8](); got != 1 {
		t.Fatalf("Sizeof[uint8] = %d", got)
	}
}
