package shmem

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"nowomp/internal/dsm"
)

// Element is the set of element types a shared view can hold. Every
// element is marshalled little-endian into the byte-addressed DSM
// region, so checkpoints and diffs are layout-stable across the
// instantiations.
//
// Caution: diffs merge at 8-byte word granularity, so for element
// types smaller than a word two processes must not write within the
// same word in one interval. Row-partitioned matrices whose rows are
// a multiple of 8 bytes (even float32/int32 rows, 8-aligned uint8
// rows) satisfy this.
type Element interface {
	float32 | float64 | complex128 | int32 | int64 | uint8
}

// Sizeof returns the byte size of T's shared-memory representation.
func Sizeof[T Element]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// encodeSlice marshals src into buf (little-endian bit patterns); buf
// must hold len(src)*Sizeof[T] bytes. Together with decodeSlice it is
// the single codec path shared by every Element instantiation. The
// 4-byte loops re-slice buf to the exact length first (so the bounds
// checks hoist out of the loop) and store element pairs as one 64-bit
// word — this is the hottest code in the whole simulator, run once
// per element of every bulk access.
func encodeSlice[T Element](src []T, buf []byte) {
	if nativeLE {
		// The host's memory layout equals the codec's: the encode is a
		// single typed memmove into page memory (see span.go for why
		// the reinterpretation is sound).
		copy(typedSpan[T](buf, Sizeof[T]())[:len(src)], src)
		return
	}
	switch s := any(src).(type) {
	case []float32:
		buf = buf[:4*len(s)]
		i := 0
		for ; i+1 < len(s); i += 2 {
			w := uint64(math.Float32bits(s[i])) | uint64(math.Float32bits(s[i+1]))<<32
			binary.LittleEndian.PutUint64(buf[4*i:], w)
		}
		if i < len(s) {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(s[i]))
		}
	case []float64:
		buf = buf[:8*len(s)]
		for i, v := range s {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
	case []complex128:
		buf = buf[:16*len(s)]
		for i, v := range s {
			binary.LittleEndian.PutUint64(buf[16*i:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(buf[16*i+8:], math.Float64bits(imag(v)))
		}
	case []int32:
		buf = buf[:4*len(s)]
		i := 0
		for ; i+1 < len(s); i += 2 {
			w := uint64(uint32(s[i])) | uint64(uint32(s[i+1]))<<32
			binary.LittleEndian.PutUint64(buf[4*i:], w)
		}
		if i < len(s) {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(s[i]))
		}
	case []int64:
		buf = buf[:8*len(s)]
		for i, v := range s {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
		}
	case []uint8:
		copy(buf, s)
	}
}

// encodeOne marshals a single element into buf, the scalar fast path
// behind Set: unlike encodeSlice it boxes a scalar rather than a
// slice, which escape analysis keeps off the heap (pinned by an
// AllocsPerRun test).
func encodeOne[T Element](v T, buf []byte) {
	if nativeLE {
		_ = buf[unsafe.Sizeof(v)-1] // bounds check before the unsafe store
		*(*T)(unsafe.Pointer(&buf[0])) = v
		return
	}
	switch s := any(v).(type) {
	case float32:
		binary.LittleEndian.PutUint32(buf, math.Float32bits(s))
	case float64:
		binary.LittleEndian.PutUint64(buf, math.Float64bits(s))
	case complex128:
		binary.LittleEndian.PutUint64(buf, math.Float64bits(real(s)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(s)))
	case int32:
		binary.LittleEndian.PutUint32(buf, uint32(s))
	case int64:
		binary.LittleEndian.PutUint64(buf, uint64(s))
	case uint8:
		buf[0] = s
	}
}

// decodeOne unmarshals a single element from buf, the scalar fast
// path behind Get.
func decodeOne[T Element](buf []byte) T {
	if nativeLE {
		var z T
		_ = buf[unsafe.Sizeof(z)-1] // bounds check before the unsafe load
		return *(*T)(unsafe.Pointer(&buf[0]))
	}
	var v T
	switch d := any(&v).(type) {
	case *float32:
		*d = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	case *float64:
		*d = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	case *complex128:
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		*d = complex(re, im)
	case *int32:
		*d = int32(binary.LittleEndian.Uint32(buf))
	case *int64:
		*d = int64(binary.LittleEndian.Uint64(buf))
	case *uint8:
		*d = buf[0]
	}
	return v
}

// decodeSlice unmarshals buf into dst; buf must hold
// len(dst)*Sizeof[T] bytes. Mirrors encodeSlice's loop structure for
// the same reasons.
func decodeSlice[T Element](buf []byte, dst []T) {
	if nativeLE {
		copy(dst, typedSpan[T](buf, Sizeof[T]())[:len(dst)])
		return
	}
	switch d := any(dst).(type) {
	case []float32:
		buf = buf[:4*len(d)]
		i := 0
		for ; i+1 < len(d); i += 2 {
			w := binary.LittleEndian.Uint64(buf[4*i:])
			d[i] = math.Float32frombits(uint32(w))
			d[i+1] = math.Float32frombits(uint32(w >> 32))
		}
		if i < len(d) {
			d[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case []float64:
		buf = buf[:8*len(d)]
		for i := range d {
			d[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
	case []complex128:
		buf = buf[:16*len(d)]
		for i := range d {
			re := math.Float64frombits(binary.LittleEndian.Uint64(buf[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(buf[16*i+8:]))
			d[i] = complex(re, im)
		}
	case []int32:
		buf = buf[:4*len(d)]
		i := 0
		for ; i+1 < len(d); i += 2 {
			w := binary.LittleEndian.Uint64(buf[4*i:])
			d[i] = int32(uint32(w))
			d[i+1] = int32(uint32(w >> 32))
		}
		if i < len(d) {
			d[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	case []int64:
		buf = buf[:8*len(d)]
		for i := range d {
			d[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
	case []uint8:
		copy(d, buf)
	}
}

// Array is a shared vector of T backed by one DSM region. The same
// handle is shared by all processes (the Tmk_distribute idiom); faults
// and costs accrue to the accessing process named by the Context.
//
// Word granularity: diffs merge at 8-byte words (page.WordBytes), so
// for element types smaller than a word — float32, int32, uint8 — two
// processes must not write within the same 8-byte span in one
// interval, or one update is lost. Partition concurrent writers on
// boundaries that are multiples of 8 bytes (for float32, even element
// indices; for uint8, multiples of 8). The DSM turns a violation into
// a panic at the interval close rather than silent corruption.
type Array[T Element] struct {
	region *dsm.Region
	n      int
	elem   int
}

// Alloc allocates a shared vector of n elements of T. Master-only,
// before the first fork, like Tmk_malloc.
func Alloc[T Element](c *dsm.Cluster, name string, n int) (*Array[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmem: array %q must have positive length, got %d", name, n)
	}
	elem := Sizeof[T]()
	r, err := c.Alloc(name, n*elem)
	if err != nil {
		return nil, err
	}
	return &Array[T]{region: r, n: n, elem: elem}, nil
}

// Len returns the number of elements.
func (a *Array[T]) Len() int { return a.n }

// Region exposes the backing region (checkpoint and test hook).
func (a *Array[T]) Region() *dsm.Region { return a.region }

func (a *Array[T]) check(lo, hi int) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("shmem: range [%d,%d) outside array %q of %d elements",
			lo, hi, a.region.Name, a.n))
	}
}

// Get reads element i, decoding straight out of page memory. An
// element never straddles a page: arrays start at region offset 0 and
// the page size is a multiple of every element size.
func (a *Array[T]) Get(m Context, i int) T {
	mustContext(m)
	a.check(i, i+1)
	return decodeOne[T](m.Host.ReadSpan(a.region.ID, i*a.elem, a.elem, m.Clock))
}

// Set writes element i, encoding straight into page memory.
func (a *Array[T]) Set(m Context, i int, v T) {
	mustContext(m)
	a.check(i, i+1)
	encodeOne(v, m.Host.WriteSpan(a.region.ID, i*a.elem, a.elem, m.Clock))
}

// ReadRange copies elements [lo,hi) into dst, which must have length
// hi-lo. Bulk accessors amortise the page-granularity fault checks
// over the whole range, which is how compiled OpenMP loop bodies
// access shared arrays; elements decode page by page straight out of
// page memory, with no staging buffer in between.
func (a *Array[T]) ReadRange(m Context, lo, hi int, dst []T) {
	mustContext(m)
	a.check(lo, hi)
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("shmem: dst has %d elements, want %d", len(dst), hi-lo))
	}
	off := lo * a.elem
	for len(dst) > 0 {
		b := m.Host.ReadSpan(a.region.ID, off, len(dst)*a.elem, m.Clock)
		k := len(b) / a.elem
		decodeSlice(b, dst[:k])
		dst = dst[k:]
		off += len(b)
	}
}

// WriteRange copies src into elements [lo, lo+len(src)), encoding
// page by page straight into page memory.
func (a *Array[T]) WriteRange(m Context, lo int, src []T) {
	mustContext(m)
	a.check(lo, lo+len(src))
	off := lo * a.elem
	for len(src) > 0 {
		b := m.Host.WriteSpan(a.region.ID, off, len(src)*a.elem, m.Clock)
		k := len(b) / a.elem
		encodeSlice(src[:k], b)
		src = src[k:]
		off += len(b)
	}
}

// Matrix is a shared row-major rows x cols matrix of T.
//
// Word granularity: like Array, concurrent writers must stay 8 bytes
// apart within one interval. Row-partitioned access satisfies this
// whenever a row's byte width is a multiple of 8 — any float64 or
// complex128 matrix, float32/int32 matrices with even column counts,
// uint8 matrices with columns a multiple of 8. Other widths make rows
// share words across row boundaries; the DSM flags such concurrent
// writes at the interval close.
type Matrix[T Element] struct {
	arr  Array[T]
	rows int
	cols int
}

// AllocMatrix allocates a shared rows x cols matrix of T.
func AllocMatrix[T Element](c *dsm.Cluster, name string, rows, cols int) (*Matrix[T], error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("shmem: matrix %q needs positive dims, got %dx%d", name, rows, cols)
	}
	a, err := Alloc[T](c, name, rows*cols)
	if err != nil {
		return nil, err
	}
	return &Matrix[T]{arr: *a, rows: rows, cols: cols}, nil
}

// Rows returns the row count.
func (mx *Matrix[T]) Rows() int { return mx.rows }

// Cols returns the column count.
func (mx *Matrix[T]) Cols() int { return mx.cols }

// Region exposes the backing region.
func (mx *Matrix[T]) Region() *dsm.Region { return mx.arr.region }

func (mx *Matrix[T]) checkRow(i int) {
	if i < 0 || i >= mx.rows {
		panic(fmt.Sprintf("shmem: row %d outside matrix %q with %d rows", i, mx.arr.region.Name, mx.rows))
	}
}

func (mx *Matrix[T]) checkElem(i, j int) {
	mx.checkRow(i)
	if j < 0 || j >= mx.cols {
		panic(fmt.Sprintf("shmem: column %d outside matrix %q with %d cols", j, mx.arr.region.Name, mx.cols))
	}
}

// Get reads element (i, j).
func (mx *Matrix[T]) Get(m Context, i, j int) T {
	mx.checkElem(i, j)
	return mx.arr.Get(m, i*mx.cols+j)
}

// Set writes element (i, j).
func (mx *Matrix[T]) Set(m Context, i, j int, v T) {
	mx.checkElem(i, j)
	mx.arr.Set(m, i*mx.cols+j, v)
}

// ReadRow copies row i into dst (length cols).
func (mx *Matrix[T]) ReadRow(m Context, i int, dst []T) {
	mx.checkRow(i)
	mx.arr.ReadRange(m, i*mx.cols, (i+1)*mx.cols, dst)
}

// WriteRow copies src (length cols) into row i.
func (mx *Matrix[T]) WriteRow(m Context, i int, src []T) {
	mx.checkRow(i)
	if len(src) != mx.cols {
		panic(fmt.Sprintf("shmem: row has %d elements, want %d", len(src), mx.cols))
	}
	mx.arr.WriteRange(m, i*mx.cols, src)
}

// ReadRowRange copies row i columns [jlo,jhi) into dst.
func (mx *Matrix[T]) ReadRowRange(m Context, i, jlo, jhi int, dst []T) {
	mx.checkRow(i)
	if jlo < 0 || jhi > mx.cols || jlo > jhi {
		panic(fmt.Sprintf("shmem: columns [%d,%d) outside matrix with %d cols", jlo, jhi, mx.cols))
	}
	mx.arr.ReadRange(m, i*mx.cols+jlo, i*mx.cols+jhi, dst)
}

// WriteRowRange copies src into row i starting at column jlo.
func (mx *Matrix[T]) WriteRowRange(m Context, i, jlo int, src []T) {
	mx.checkRow(i)
	if jlo < 0 || jlo+len(src) > mx.cols {
		panic(fmt.Sprintf("shmem: columns [%d,%d) outside matrix with %d cols", jlo, jlo+len(src), mx.cols))
	}
	mx.arr.WriteRange(m, i*mx.cols+jlo, src)
}
